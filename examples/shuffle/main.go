// Shuffle: a MapReduce all-to-all shuffle over a dumbbell network
// (two racks joined by one trunk) — the classic network-bound
// workload. Compares the three schedulers and the switching/packet
// extensions on the same instance, then refines the best.
package main

import (
	"fmt"
	"log"

	edgesched "repro"

	"repro/internal/sched"
)

func main() {
	// 8 mappers, 4 reducers, heavy shuffle partitions.
	g := edgesched.MapReduce(8, 4, 50, 120, 200)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	// Two racks of 4, trunk at half the rack-link speed.
	net := edgesched.Dumbbell(4, 4, edgesched.Uniform(1), edgesched.Uniform(2), 1)
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v   network: %v\n\n", g, net)

	show := func(name string, a edgesched.Algorithm) float64 {
		s, err := a.Schedule(g, net)
		if err != nil {
			log.Fatal(err)
		}
		if err := edgesched.Verify(s); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		cs := s.CommStats()
		fmt.Printf("%-22s makespan %9.1f   (routed %d edges, mean %.1f hops)\n",
			name, s.Makespan, cs.RoutedEdges, cs.MeanHops)
		return s.Makespan
	}

	show("BA", edgesched.BA())
	show("OIHSA", edgesched.OIHSA())
	show("BBSA", edgesched.BBSA())

	// Extensions on the OIHSA stack.
	base := sched.NewOIHSA().Opts
	sf := base
	sf.Switching = sched.StoreAndForward
	show("OIHSA store-and-fwd", edgesched.Custom("OIHSA/sf", sf))
	pk := base
	pk.Engine = sched.EnginePackets
	pk.PacketSize = 50
	show("OIHSA packets(50)", edgesched.Custom("OIHSA/pkt", pk))
	eager := base
	eager.CommStart = sched.CommAtSourceFinish
	show("OIHSA eager-start", edgesched.Custom("OIHSA/eager", eager))

	// Local search on top of the best constructive algorithm.
	s, st, err := edgesched.Refine(g, net, edgesched.RefineOptions{
		Base: edgesched.BBSA(), MaxIters: 300, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s makespan %9.1f   (%+.1f%% over BBSA, %d evals)\n",
		"BBSA + local search", s.Makespan, st.ImprovementPct(), st.Evaluations)
}
