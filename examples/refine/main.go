// Refine: start from each constructive scheduler's result and improve
// the task-to-processor assignment by iterated local search, printing
// the gains and the analysis of the best schedule found. This is the
// expensive end of the design space the paper's introduction cites
// (genetic / simulated-annealing schedulers) realized on the
// contention-aware model.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	edgesched "repro"
)

func main() {
	// Seed 42 is the documented default instance; the refinement
	// search derives its own seed from it, so one flag pins the whole
	// run.
	seed := flag.Int64("seed", 42, "seed for the instance and the refinement search")
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	g := edgesched.RandomLayered(r, edgesched.LayeredParams{
		Tasks:    60,
		TaskCost: edgesched.CostDist{Lo: 1, Hi: 100},
		EdgeCost: edgesched.CostDist{Lo: 1, Hi: 100},
	})
	g.ScaleToCCR(1.5)
	net := edgesched.RandomCluster(r, edgesched.ClusterParams{
		Processors: 8,
		ProcSpeed:  edgesched.Uniform(1),
		LinkSpeed:  edgesched.Uniform(1),
	})
	fmt.Printf("graph: %v   network: %v\n\n", g, net)

	var best *edgesched.Schedule
	for _, base := range []edgesched.Algorithm{edgesched.BA(), edgesched.OIHSA(), edgesched.BBSA()} {
		s0, err := base.Schedule(g, net)
		if err != nil {
			log.Fatal(err)
		}
		s, st, err := edgesched.Refine(g, net, edgesched.RefineOptions{
			Base:     base,
			MaxIters: 400,
			Patience: 120,
			Seed:     *seed + 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := edgesched.Verify(s); err != nil {
			log.Fatalf("%s: %v", base.Name(), err)
		}
		fmt.Printf("%-6s %10.1f  ->  refined %10.1f  (%+.1f%%, %d evaluations, %d accepted moves)\n",
			base.Name(), s0.Makespan, s.Makespan, st.ImprovementPct(),
			st.Evaluations, st.Improvements)
		if best == nil || s.Makespan < best.Makespan {
			best = s
		}
	}

	fmt.Println("\nanalysis of the best refined schedule:")
	if err := edgesched.WriteAnalysis(os.Stdout, edgesched.Analyze(best)); err != nil {
		log.Fatal(err)
	}
}
