// Pipeline: schedule a deep streaming pipeline (a stencil sweep, like
// iterative image filters or a time-stepped simulation) on a processor
// ring, where every transfer competes for the same few cables — the
// scenario where bandwidth sharing (BBSA) shines. Also demonstrates
// JSON export for downstream tooling.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	edgesched "repro"
)

func main() {
	// 16 rows x 12 columns stencil: each task needs its three upstream
	// neighbours' tiles.
	g := edgesched.Stencil(16, 12, 30, 30)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// A ring of six processors: transfers between non-adjacent owners
	// traverse intermediate cables, creating real multi-hop contention.
	net := edgesched.Ring(6, edgesched.Uniform(1), edgesched.Uniform(1))
	fmt.Printf("graph: %v   network: %v\n\n", g, net)

	type row struct {
		name     string
		makespan float64
		hops     float64
		routed   int
	}
	var rows []row
	var bbsa *edgesched.Schedule
	for _, alg := range []edgesched.Algorithm{edgesched.BA(), edgesched.OIHSA(), edgesched.BBSA()} {
		s, err := alg.Schedule(g, net)
		if err != nil {
			log.Fatal(err)
		}
		if err := edgesched.Verify(s); err != nil {
			log.Fatalf("%s: %v", alg.Name(), err)
		}
		cs := s.CommStats()
		rows = append(rows, row{alg.Name(), s.Makespan, cs.MeanHops, cs.RoutedEdges})
		if alg.Name() == "BBSA" {
			bbsa = s
		}
	}
	fmt.Printf("%-7s %10s %8s %12s\n", "algo", "makespan", "hops", "routed-edges")
	for _, r := range rows {
		fmt.Printf("%-7s %10.1f %8.2f %12d\n", r.name, r.makespan, r.hops, r.routed)
	}

	// Export the BBSA schedule as JSON (for a visualizer, a database,
	// or diffing across runs) and report its size.
	var buf bytes.Buffer
	if err := edgesched.WriteScheduleJSON(&buf, bbsa); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBBSA schedule JSON: %d bytes (first line: %.60s...)\n",
		buf.Len(), firstLine(buf.String()))

	// Show how much each ring cable is actually used.
	fmt.Println("\nBBSA link traffic (exclusive '#' / shared '+'):")
	if err := edgesched.WriteGantt(os.Stdout, bbsa, 76, true); err != nil {
		log.Fatal(err)
	}
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
