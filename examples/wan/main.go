// WAN scheduling: the paper's §6 scenario — a random wide-area network
// of switches, each hosting a handful of processors — scheduled with
// all three algorithms across a CCR sweep, printing an inline
// improvement table (a miniature Figure 1).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	edgesched "repro"
)

func main() {
	// The fixed default keeps the printed table reproducible run to
	// run; any other seed gives a different (but internally
	// consistent) WAN and graph population.
	seed := flag.Int64("seed", 2006, "seed for the network and the per-cell task graphs")
	flag.Parse()

	// Build one fixed WAN: ~48 processors across switches with U(4,16)
	// processors each, random trunks between switches.
	r := rand.New(rand.NewSource(*seed))
	net := edgesched.RandomCluster(r, edgesched.ClusterParams{
		Processors: 48,
		ProcSpeed:  edgesched.Uniform(1),
		LinkSpeed:  edgesched.Uniform(1),
	})
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %v\n\n", net)

	fmt.Printf("%-6s %14s %14s %14s %10s %10s\n",
		"CCR", "BA", "OIHSA", "BBSA", "OIHSA+%", "BBSA+%")
	for _, ccr := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		// Average over a few random task graphs per CCR.
		var mBA, mOI, mBB float64
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			gr := rand.New(rand.NewSource(*seed + int64(100*ccr) + int64(rep)))
			g := edgesched.RandomLayered(gr, edgesched.LayeredParams{
				Tasks:    200,
				TaskCost: edgesched.CostDist{Lo: 1, Hi: 1000},
				EdgeCost: edgesched.CostDist{Lo: 1, Hi: 1000},
			})
			g.ScaleToCCR(ccr)
			for _, run := range []struct {
				alg edgesched.Algorithm
				out *float64
			}{
				{edgesched.BA(), &mBA},
				{edgesched.OIHSA(), &mOI},
				{edgesched.BBSA(), &mBB},
			} {
				s, err := run.alg.Schedule(g, net)
				if err != nil {
					log.Fatal(err)
				}
				if err := edgesched.Verify(s); err != nil {
					log.Fatalf("%s: %v", run.alg.Name(), err)
				}
				*run.out += s.Makespan / reps
			}
		}
		fmt.Printf("%-6.1f %14.1f %14.1f %14.1f %9.1f%% %9.1f%%\n",
			ccr, mBA, mOI, mBB,
			100*(mBA-mOI)/mBA, 100*(mBA-mBB)/mBA)
	}
	fmt.Println("\n(improvements are vs BA; positive = shorter makespan)")
}
