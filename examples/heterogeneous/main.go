// Heterogeneous cluster: schedule a Gaussian-elimination task graph on
// a machine mixing fast and slow processors and links, and show how
// much of the classic (contention-free) model's prediction survives
// contact with the network.
package main

import (
	"fmt"
	"log"

	edgesched "repro"
)

func main() {
	// Gaussian elimination on a 12x12 matrix: a classic scheduling
	// benchmark with a shrinking wavefront of parallelism.
	g := edgesched.GaussianElimination(12, 40, 40)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// A two-level cluster: one rack of four fast processors on fast
	// links, one rack of four slow processors on slow links, joined by
	// a single trunk — classic heterogeneous contention.
	net := edgesched.NewTopology()
	core := net.AddSwitch("core")
	fast := net.AddSwitch("rack-fast")
	slow := net.AddSwitch("rack-slow")
	net.AddDuplex(fast, core, 4)
	net.AddDuplex(slow, core, 1)
	for i := 0; i < 4; i++ {
		p := net.AddProcessor(fmt.Sprintf("fast%d", i), 4)
		net.AddDuplex(p, fast, 4)
	}
	for i := 0; i < 4; i++ {
		p := net.AddProcessor(fmt.Sprintf("slow%d", i), 1)
		net.AddDuplex(p, slow, 1)
	}
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %v   network: %v (MLS=%.2f)\n\n", g, net, net.MeanLinkSpeed())

	// What the contention-free literature would predict...
	ideal, err := edgesched.Classic().Schedule(g, net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classic model predicts      %8.2f (not network-feasible)\n", ideal.Makespan)

	// ...what its assignment actually costs under contention...
	replay, err := edgesched.ClassicReplay().Schedule(g, net)
	if err != nil {
		log.Fatal(err)
	}
	if err := edgesched.Verify(replay); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classic assignment replayed %8.2f (+%.0f%% over prediction)\n",
		replay.Makespan, 100*(replay.Makespan-ideal.Makespan)/ideal.Makespan)

	// ...and what the contention-aware schedulers achieve.
	for _, alg := range []edgesched.Algorithm{edgesched.BA(), edgesched.OIHSA(), edgesched.BBSA()} {
		s, err := alg.Schedule(g, net)
		if err != nil {
			log.Fatal(err)
		}
		if err := edgesched.Verify(s); err != nil {
			log.Fatalf("%s: %v", alg.Name(), err)
		}
		fmt.Printf("%-27s %8.2f\n", alg.Name(), s.Makespan)
	}

	// Fast processors should do most of the work under any sensible
	// schedule; show the utilization split for BBSA.
	s, err := edgesched.BBSA().Schedule(g, net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBBSA processor utilization:")
	util := s.ProcUtilization()
	for _, p := range net.Processors() {
		fmt.Printf("  %-6s %5.1f%%\n", net.Node(p).Name, 100*util[p])
	}

	// The same scenario at a larger random scale, to show the effect
	// is robust: heterogeneous random clusters per the paper's §6.
	inst := edgesched.GenerateInstance(edgesched.WorkloadParams{
		Processors: 16, CCR: 2, Heterogeneous: true, Seed: 7,
	})
	fmt.Printf("\nrandom heterogeneous instance: %v on %v\n", inst.Graph, inst.Net)
	for _, alg := range []edgesched.Algorithm{edgesched.BA(), edgesched.OIHSA(), edgesched.BBSA()} {
		s, err := alg.Schedule(inst.Graph, inst.Net)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s makespan = %10.2f\n", alg.Name(), s.Makespan)
	}
}
