// Quickstart: build a small task graph and a switched cluster, then
// compare the three contention-aware schedulers on it and show the
// winner's Gantt chart.
package main

import (
	"fmt"
	"log"
	"os"

	edgesched "repro"
)

func main() {
	// A little image-processing style pipeline: load, two parallel
	// filter stages (each with three workers), merge, encode.
	g := edgesched.NewGraph()
	load := g.AddTask("load", 20)
	merge := g.AddTask("merge", 30)
	encode := g.AddTask("encode", 40)
	g.AddEdge(merge, encode, 30)
	for stage := 0; stage < 2; stage++ {
		for w := 0; w < 3; w++ {
			f := g.AddTask(fmt.Sprintf("filter%d_%d", stage, w), 50)
			g.AddEdge(load, f, 30) // ship tiles out
			g.AddEdge(f, merge, 30)
		}
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// Four identical processors around one switch: every transfer
	// shares the hub's cables, so communication contention is real.
	net := edgesched.Star(4, edgesched.Uniform(1), edgesched.Uniform(1))

	fmt.Printf("graph: %v   network: %v\n\n", g, net)
	var best *edgesched.Schedule
	for _, alg := range []edgesched.Algorithm{edgesched.BA(), edgesched.OIHSA(), edgesched.BBSA()} {
		s, err := alg.Schedule(g, net)
		if err != nil {
			log.Fatal(err)
		}
		if err := edgesched.Verify(s); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", alg.Name(), err)
		}
		fmt.Printf("%-6s makespan = %7.2f (verified)\n", alg.Name(), s.Makespan)
		if best == nil || s.Makespan < best.Makespan {
			best = s
		}
	}

	fmt.Printf("\nbest schedule (%s):\n", best.Algorithm)
	if err := edgesched.WriteGantt(os.Stdout, best, 90, true); err != nil {
		log.Fatal(err)
	}
}
