package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/graphio"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/verify"
)

func testEngine(t *testing.T) *sched.Engine {
	t.Helper()
	topo := network.Star(4, network.Uniform(1), network.Uniform(1))
	eng, err := sched.NewEngine(topo, sched.EngineOptions{
		Name: "OIHSA", Opts: sched.NewOIHSA().Opts, WarmRoutes: true, SelfCheckEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Drain)
	return eng
}

func testGraphJSON(t *testing.T, seed int64) ([]byte, *dag.Graph) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    18,
		TaskCost: dag.CostDist{Lo: 1, Hi: 40},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 150},
	})
	var buf bytes.Buffer
	if err := graphio.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), g
}

// TestScheduleEndpoint pins the daemon's round trip: a posted graph
// comes back scheduled, with the same makespan the engine produces
// directly (the handler is a transport, not a policy layer), and the
// verifier accepts the direct run.
func TestScheduleEndpoint(t *testing.T) {
	eng := testEngine(t)
	srv := httptest.NewServer(newServer(eng, true))
	defer srv.Close()

	body, g := testGraphJSON(t, 5)
	resp, err := http.Post(srv.URL+"/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got scheduleResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}

	want, err := eng.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	if res := verify.Verify(want); !res.OK() {
		t.Fatalf("invalid schedule: %v", res)
	}
	// edgelint:ignore floateq — same engine, same graph: bit-identical
	if got.Makespan != want.Makespan {
		t.Fatalf("served makespan %v, engine makespan %v", got.Makespan, want.Makespan)
	}
	if len(got.Tasks) != len(want.Tasks) {
		t.Fatalf("%d tasks served, %d scheduled", len(got.Tasks), len(want.Tasks))
	}
	for i, tp := range want.Tasks {
		g := got.Tasks[i]
		// edgelint:ignore floateq — bit-identical round trip
		if g.Task != int(tp.Task) || g.Proc != int(tp.Proc) || g.Start != tp.Start || g.Finish != tp.Finish {
			t.Fatalf("task %d served %+v, scheduled %+v", i, g, tp)
		}
	}
}

// TestScheduleEndpointFull pins the ?full=1 variant: the complete
// schedule JSON parses and carries per-edge placements.
func TestScheduleEndpointFull(t *testing.T) {
	eng := testEngine(t)
	srv := httptest.NewServer(newServer(eng, false))
	defer srv.Close()

	body, _ := testGraphJSON(t, 6)
	resp, err := http.Post(srv.URL+"/schedule?full=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var full map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tasks", "makespan"} {
		if _, ok := full[key]; !ok {
			t.Fatalf("full schedule JSON missing %q (has %v)", key, keys(full))
		}
	}
}

func keys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestBadRequests pins the error mapping: malformed and invalid graphs
// are the client's fault (400), never a daemon crash.
func TestBadRequests(t *testing.T) {
	eng := testEngine(t)
	srv := httptest.NewServer(newServer(eng, false))
	defer srv.Close()

	for name, body := range map[string]string{
		"malformed": "{not json",
		"cyclic":    `{"tasks":[{"name":"a","cost":1},{"name":"b","cost":1}],"edges":[{"from":0,"to":1,"cost":1},{"from":1,"to":0,"cost":1}]}`,
	} {
		resp, err := http.Post(srv.URL+"/schedule", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s graph: status %d, want 400", name, resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /schedule: status %d, want 405", resp.StatusCode)
	}
}

// TestStatsEndpoint pins that the counters are served and move.
func TestStatsEndpoint(t *testing.T) {
	eng := testEngine(t)
	srv := httptest.NewServer(newServer(eng, false))
	defer srv.Close()

	body, _ := testGraphJSON(t, 7)
	resp, err := http.Post(srv.URL+"/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st sched.EngineStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.Failures != 0 {
		t.Fatalf("stats after one request: %+v", st)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}
