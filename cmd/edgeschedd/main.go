// Command edgeschedd is the scheduling daemon: it loads one network
// topology at startup, builds a long-lived sched.Engine for a chosen
// algorithm, and serves scheduling requests over HTTP/JSON. The
// topology's route cache is warmed once and shared by every request;
// per-request scheduler state is pooled — so steady-state requests pay
// only for the work that is genuinely theirs, and throughput scales
// with concurrent clients while every schedule stays bit-identical to
// a cold single-threaded run (spot-checked at runtime via
// -self-check-every).
//
// Usage:
//
//	edgeschedd -topology net.json -algo OIHSA -addr :8080
//	edgeschedd -topology star:8 -addr 127.0.0.1:0 -addr-file port.txt
//
// -topology accepts either a topology JSON file or a builder spec —
// star:N, ring:N, line:N, fully:N, hypercube:D (unit speeds) — so
// smoke setups need no fixture files.
//
// Endpoints:
//
//	POST /schedule      task graph JSON in, schedule summary out
//	POST /schedule?full=1   full schedule JSON out (tasks, edges, routes)
//	GET  /stats         engine counters (requests, cache, contention)
//	GET  /healthz       200 once serving
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting,
// in-flight requests finish, then the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/graphio"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "topology JSON file (required)")
		algo      = flag.String("algo", "OIHSA", "algorithm: BA, BA-EFT, OIHSA or BBSA")
		addr      = flag.String("addr", ":8080", "listen address (host:0 picks a free port)")
		addrFile  = flag.String("addr-file", "", "write the actual listen address to this file (for :0 discovery)")
		maxConc   = flag.Int("max-concurrent", 0, "max requests scheduled simultaneously (0 = GOMAXPROCS)")
		maxQueue  = flag.Int("max-queue", 256, "max requests waiting for a slot before 503 (0 = unbounded)")
		warm      = flag.Bool("warm", true, "precompute all processor-pair routes at startup")
		selfCheck = flag.Int("self-check-every", 1000, "re-run every Nth request cold and require bit-identical output (0 = off)")
		doVerify  = flag.Bool("verify", false, "run the full schedule validator on every response (slower)")
		rdTimeout = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout")
	)
	flag.Parse()
	if *topoPath == "" {
		fatal(errors.New("-topology is required"))
	}

	topo, err := loadTopology(*topoPath)
	if err != nil {
		fatal(err)
	}

	ls, err := preset(*algo)
	if err != nil {
		fatal(err)
	}
	eng, err := sched.NewEngine(topo, sched.EngineOptions{
		Name:           ls.AlgorithmName,
		Opts:           ls.Opts,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		WarmRoutes:     *warm,
		SelfCheckEvery: *selfCheck,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	srv := &http.Server{Handler: newServer(eng, *doVerify), ReadTimeout: *rdTimeout}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "edgeschedd: draining")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// edgelint:ignore errflow — shutdown timeout only abandons
		// stragglers; the engine drain below still waits for admitted work.
		srv.Shutdown(ctx)
		eng.Drain()
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "edgeschedd: %s serving %s on %s (%d processors, %d links)\n",
		ls.AlgorithmName, *topoPath, ln.Addr(), topo.NumProcessors(), topo.NumLinks())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "edgeschedd: drained after %d requests (%d failed), cache hit rate %.1f%%\n",
		st.Requests, st.Failures, 100*st.CacheHitRate)
}

// loadTopology resolves -topology: a builder spec like "star:8"
// (unit speeds) or a topology JSON file.
func loadTopology(arg string) (*network.Topology, error) {
	if kind, nStr, ok := strings.Cut(arg, ":"); ok {
		if n, err := strconv.Atoi(nStr); err == nil {
			one := network.Uniform(1)
			switch kind {
			case "star":
				return network.Star(n, one, one), nil
			case "ring":
				return network.Ring(n, one, one), nil
			case "line":
				return network.Line(n, one, one), nil
			case "fully":
				return network.FullyConnected(n, one, one), nil
			case "hypercube":
				return network.Hypercube(n, one, one), nil
			default:
				return nil, fmt.Errorf("unknown topology spec %q (valid: star:N, ring:N, line:N, fully:N, hypercube:D, or a JSON file)", arg)
			}
		}
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	topo, err := graphio.ReadTopology(f)
	if err != nil {
		return nil, fmt.Errorf("reading topology %s: %w", arg, err)
	}
	return topo, nil
}

// preset resolves an algorithm name to its scheduler preset.
func preset(name string) (*sched.ListScheduler, error) {
	switch name {
	case "BA", "ba":
		return sched.NewBA(), nil
	case "BA-EFT", "ba-eft", "BASinnen":
		return sched.NewBASinnen(), nil
	case "OIHSA", "oihsa":
		return sched.NewOIHSA(), nil
	case "BBSA", "bbsa":
		return sched.NewBBSA(), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (valid: BA, BA-EFT, OIHSA, BBSA)", name)
}

// scheduleResponse is the compact /schedule reply: the placement
// essentials without the per-link occupation detail of ?full=1.
type scheduleResponse struct {
	Algorithm string          `json:"algorithm"`
	Makespan  float64         `json:"makespan"`
	Tasks     []taskPlacement `json:"tasks"`
	Edges     int             `json:"edges_routed"`
}

type taskPlacement struct {
	Task   int     `json:"task"`
	Proc   int     `json:"proc"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
}

// newServer wires the engine into an HTTP handler. Split from main so
// the daemon's behaviour is testable with httptest.
func newServer(eng *sched.Engine, verifyEach bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, eng.Stats())
	})
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a task graph JSON", http.StatusMethodNotAllowed)
			return
		}
		g, err := graphio.ReadGraph(r.Body)
		if err != nil {
			http.Error(w, "bad graph: "+err.Error(), http.StatusBadRequest)
			return
		}
		s, err := eng.Schedule(g)
		if err != nil {
			http.Error(w, err.Error(), statusOf(err))
			return
		}
		if verifyEach {
			if res := verify.Verify(s); !res.OK() {
				http.Error(w, "schedule failed verification: "+res.Err().Error(),
					http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("full") != "" {
			// edgelint:ignore errflow — mid-stream write errors mean the
			// client went away; nothing useful can be reported to it.
			trace.WriteScheduleJSON(w, s)
			return
		}
		resp := scheduleResponse{Algorithm: s.Algorithm, Makespan: s.Makespan,
			Tasks: make([]taskPlacement, len(s.Tasks))}
		for i, tp := range s.Tasks {
			resp.Tasks[i] = taskPlacement{Task: int(tp.Task), Proc: int(tp.Proc),
				Start: tp.Start, Finish: tp.Finish}
		}
		for _, es := range s.Edges {
			if es != nil {
				resp.Edges++
			}
		}
		writeJSON(w, resp)
	})
	return mux
}

// statusOf maps engine errors to HTTP statuses: overload and drain are
// the retryable 503s, everything else is the client's graph.
func statusOf(err error) int {
	if errors.Is(err, sched.ErrOverloaded) || errors.Is(err, sched.ErrEngineClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, v any) {
	// edgelint:ignore errflow — mid-stream write errors mean the client
	// went away; nothing useful can be reported to it.
	json.NewEncoder(w).Encode(v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edgeschedd:", err)
	os.Exit(1)
}
