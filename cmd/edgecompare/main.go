// Command edgecompare runs every scheduler in the library — the
// paper's three, the stronger baselines, the model extensions, and
// optionally the metaheuristic refiners — over a common grid of random
// instances and prints a league table of mean makespans normalized to
// BA.
//
// Usage:
//
//	edgecompare -procs 16 -ccrs 0.5,2,8 -reps 3
//	edgecompare -hetero -refiners
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/refine"
	"repro/internal/sched"
	"repro/internal/verify"
	"repro/internal/workload"
)

type contender struct {
	name string
	run  func(inst workload.Instance) (float64, error)
}

func algoContender(a sched.Algorithm) contender {
	return contender{name: a.Name(), run: func(inst workload.Instance) (float64, error) {
		s, err := a.Schedule(inst.Graph, inst.Net)
		if err != nil {
			return 0, err
		}
		if res := verify.Verify(s); !res.OK() {
			return 0, fmt.Errorf("%s: %v", a.Name(), res.Err())
		}
		return s.Makespan, nil
	}}
}

func main() {
	var (
		procs    = flag.Int("procs", 16, "processors per instance")
		ccrs     = flag.String("ccrs", "0.5,2,8", "comma-separated CCR values")
		reps     = flag.Int("reps", 3, "instances per CCR")
		minTasks = flag.Int("min-tasks", 100, "minimum tasks per instance")
		maxTasks = flag.Int("max-tasks", 300, "maximum tasks per instance")
		hetero   = flag.Bool("hetero", false, "heterogeneous speeds U(1,10)")
		seed     = flag.Int64("seed", 1, "base random seed")
		refiners = flag.Bool("refiners", false, "include the (slow) metaheuristic refiners")
	)
	flag.Parse()

	ccrVals, err := parseFloats(*ccrs)
	if err != nil {
		fatal(err)
	}

	contenders := []contender{
		algoContender(sched.NewBA()),
		algoContender(sched.NewBASinnen()),
		algoContender(sched.NewOIHSA()),
		algoContender(sched.NewBBSA()),
		algoContender(sched.NewDLS()),
		algoContender(sched.NewCPOP()),
		algoContender(sched.NewClassicReplay()),
	}
	// Extensions on the OIHSA stack.
	eager := sched.NewOIHSA().Opts
	eager.CommStart = sched.CommAtSourceFinish
	contenders = append(contenders, algoContender(sched.NewCustom("OIHSA/eager", eager)))
	pkts := sched.NewOIHSA().Opts
	pkts.Engine = sched.EnginePackets
	pkts.Insertion = sched.InsertionBasic
	pkts.PacketSize = 100
	contenders = append(contenders, algoContender(sched.NewCustom("OIHSA/packets", pkts)))
	ins := sched.NewOIHSA().Opts
	ins.TaskPolicy = sched.TaskInsertion
	contenders = append(contenders, algoContender(sched.NewCustom("OIHSA/task-ins", ins)))
	if *refiners {
		contenders = append(contenders,
			contender{name: "Refined(BBSA)", run: func(inst workload.Instance) (float64, error) {
				s, _, err := refine.Refine(inst.Graph, inst.Net, refine.Options{Seed: 7})
				if err != nil {
					return 0, err
				}
				return s.Makespan, nil
			}},
			contender{name: "Annealed(BBSA)", run: func(inst workload.Instance) (float64, error) {
				s, _, err := refine.Anneal(inst.Graph, inst.Net, refine.SAOptions{Seed: 7})
				if err != nil {
					return 0, err
				}
				return s.Makespan, nil
			}},
			contender{name: "Evolved(BBSA)", run: func(inst workload.Instance) (float64, error) {
				s, _, err := refine.Evolve(inst.Graph, inst.Net, refine.GAOptions{Seed: 7})
				if err != nil {
					return 0, err
				}
				return s.Makespan, nil
			}},
		)
	}

	sums := make([]float64, len(contenders))
	instances := 0
	for _, ccr := range ccrVals {
		for rep := 0; rep < *reps; rep++ {
			inst := workload.Generate(workload.Params{
				Processors:    *procs,
				CCR:           ccr,
				Heterogeneous: *hetero,
				MinTasks:      *minTasks,
				MaxTasks:      *maxTasks,
				Seed:          *seed*1000003 + int64(ccr*10)*7 + int64(rep),
			})
			instances++
			for i, c := range contenders {
				m, err := c.run(inst)
				if err != nil {
					fatal(err)
				}
				sums[i] += m
			}
		}
	}
	base := sums[0]
	type row struct {
		name string
		mean float64
	}
	rows := make([]row, len(contenders))
	for i, c := range contenders {
		rows[i] = row{name: c.name, mean: sums[i] / float64(instances)}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mean < rows[j].mean })
	system := "homogeneous"
	if *hetero {
		system = "heterogeneous"
	}
	fmt.Printf("league table over %d instances (%s, %d processors, CCR ∈ {%s}):\n\n",
		instances, system, *procs, *ccrs)
	fmt.Printf("%-18s %14s %10s\n", "scheduler", "mean makespan", "vs BA")
	fmt.Println(strings.Repeat("-", 45))
	for _, r := range rows {
		fmt.Printf("%-18s %14.1f %+9.1f%%\n", r.name, r.mean, 100*(base/float64(instances)-r.mean)/(base/float64(instances)))
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edgecompare:", err)
	os.Exit(1)
}
