// Command edgeload drives a running edgeschedd with concurrent
// clients and reports serving throughput and latency: schedules per
// second, p50/p95/p99 latency, and error counts. It pre-generates a
// pool of random task graphs (so generation cost never pollutes the
// measurement), round-robins them across N closed-loop clients for a
// fixed duration, and exits non-zero if any request failed or the
// measured throughput is zero — which makes it directly usable as a
// smoke gate in CI (see `make load-smoke`).
//
// Usage:
//
//	edgeload -url http://127.0.0.1:8080 -clients 16 -duration 10s
//	edgeload -url http://$(cat port.txt) -duration 5s -out LOAD.json
//
// With -out, a benchdiff-style snapshot is written: LoadSchedule's
// ns_per_op is the mean request latency and min_ns_per_op the p50, so
// successive load runs can be diffed with the same tooling as the
// microbenchmarks.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dag"
	"repro/internal/graphio"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "edgeschedd base URL")
		clients  = flag.Int("clients", 8, "concurrent closed-loop clients")
		duration = flag.Duration("duration", 5*time.Second, "measurement duration")
		graphs   = flag.Int("graphs", 16, "distinct pre-generated task graphs")
		tasks    = flag.Int("tasks", 30, "tasks per generated graph")
		seed     = flag.Int64("seed", 1, "graph generation seed")
		out      = flag.String("out", "", "write a benchdiff-style snapshot to this file")
	)
	flag.Parse()

	bodies := makeBodies(*graphs, *tasks, *seed)

	// One warmup request outside the measurement window: it surfaces
	// connection/config errors immediately and lets the daemon's route
	// cache warm before the clock starts.
	client := &http.Client{Timeout: 60 * time.Second}
	if err := post(client, *url, bodies[0]); err != nil {
		fatal(fmt.Errorf("warmup request: %w", err))
	}

	var (
		requests atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
		latMu    sync.Mutex
		lats     []time.Duration
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 4096)
			for i := c; time.Now().Before(deadline); i++ {
				start := time.Now()
				err := post(client, *url, bodies[i%len(bodies)])
				lat := time.Since(start)
				requests.Add(1)
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				local = append(local, lat)
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(c)
	}
	wg.Wait()

	n := requests.Load()
	fails := failures.Load()
	elapsed := *duration
	throughput := float64(n-fails) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	fmt.Printf("edgeload: %d clients x %v against %s\n", *clients, elapsed, *url)
	fmt.Printf("  requests    %d (%d failed)\n", n, fails)
	fmt.Printf("  throughput  %.1f schedules/sec\n", throughput)
	if len(lats) > 0 {
		fmt.Printf("  latency     p50 %v  p95 %v  p99 %v  max %v\n",
			pct(lats, 50), pct(lats, 95), pct(lats, 99), lats[len(lats)-1])
	}
	if *out != "" {
		if err := writeSnapshot(*out, lats, n, throughput); err != nil {
			fatal(err)
		}
		fmt.Printf("  snapshot    %s\n", *out)
	}
	if err, _ := firstErr.Load().(error); err != nil {
		fmt.Fprintf(os.Stderr, "edgeload: first error: %v\n", err)
	}
	if fails > 0 || throughput == 0 {
		os.Exit(1)
	}
}

// makeBodies pre-generates the request payloads: distinct layered DAGs
// of varying shape, serialized once.
func makeBodies(graphs, tasks int, seed int64) [][]byte {
	bodies := make([][]byte, graphs)
	for i := range bodies {
		r := rand.New(rand.NewSource(seed + int64(i)))
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    tasks/2 + r.Intn(tasks/2+1) + 1,
			TaskCost: dag.CostDist{Lo: 1, Hi: 50},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
		})
		var buf bytes.Buffer
		if err := graphio.WriteGraph(&buf, g); err != nil {
			fatal(err)
		}
		bodies[i] = buf.Bytes()
	}
	return bodies
}

// post sends one scheduling request and drains the response.
func post(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url+"/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// pct returns the p'th percentile of the sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// snapshot mirrors cmd/benchdiff's schema so load runs can be diffed
// with the same tooling as the microbenchmark snapshots.
type snapshot struct {
	Created    string            `json:"created"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Command    string            `json:"command"`
	Benchmarks map[string]sample `json:"benchmarks"`
}

type sample struct {
	Samples     int     `json:"samples"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MinNsPerOp  float64 `json:"min_ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func writeSnapshot(path string, lats []time.Duration, n int64, throughput float64) error {
	var mean float64
	for _, l := range lats {
		mean += float64(l)
	}
	if len(lats) > 0 {
		mean /= float64(len(lats))
	}
	snap := snapshot{
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Command:    fmt.Sprintf("edgeload %v", os.Args[1:]),
		Benchmarks: map[string]sample{
			"LoadSchedule": {
				Samples:    1,
				Iterations: n,
				NsPerOp:    mean,
				MinNsPerOp: float64(pct(lats, 50)),
			},
			"LoadThroughput": {
				Samples:    1,
				Iterations: n,
				NsPerOp:    1e9 / max(throughput, 1e-9),
				MinNsPerOp: 1e9 / max(throughput, 1e-9),
			},
		},
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edgeload:", err)
	os.Exit(1)
}
