// Command edgesim regenerates the paper's evaluation: the four figures
// (improvement of OIHSA/BBSA over BA vs CCR and vs machine size, in
// homogeneous and heterogeneous systems) and the ablation studies
// listed in DESIGN.md.
//
// Usage:
//
//	edgesim -figure 1                 # reduced-scale Figure 1
//	edgesim -figure 3 -full           # full paper-scale Figure 3
//	edgesim -ablation routing         # A1 ablation
//	edgesim -all                      # all four figures
//	edgesim -figure 2 -csv            # machine-readable output
//
// Reduced-scale defaults finish in seconds; -full runs the complete
// §6 sweeps (minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiment"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "paper figure to regenerate (1-4)")
		all      = flag.Bool("all", false, "regenerate all four figures")
		ablation = flag.String("ablation", "", "ablation to run: "+strings.Join(experiment.AblationNames(), ", "))
		suite    = flag.String("suite", "", "run a whole campaign from a JSON suite file")
		outDir   = flag.String("out", "results", "output directory for -suite")
		families = flag.Bool("families", false, "compare the algorithms per structured DAG family")
		full     = flag.Bool("full", false, "full paper-scale sweep (slow) instead of reduced defaults")
		reps     = flag.Int("reps", 0, "replications per sweep cell (0 = default)")
		seed     = flag.Int64("seed", 1, "base random seed")
		procs    = flag.String("procs", "", "comma-separated processor counts (overrides default)")
		ccrs     = flag.String("ccrs", "", "comma-separated CCR values (overrides default)")
		minTasks = flag.Int("min-tasks", 0, "minimum tasks per instance (0 = default)")
		maxTasks = flag.Int("max-tasks", 0, "maximum tasks per instance (0 = default)")
		hetero   = flag.Bool("hetero", false, "heterogeneous speeds for ablations (figures fix this themselves)")
		doVerify = flag.Bool("verify", false, "verify every produced schedule (slower)")
		csv      = flag.Bool("csv", false, "emit CSV instead of a text table")
		workers  = flag.Int("workers", 0, "concurrent sweep cells (0 = GOMAXPROCS, 1 = serial)")
		probeWks = flag.Int("probe-workers", 0, "goroutines per EFT processor-probe fan-out (0 = scheduler default, 1 = sequential; schedules are identical at any setting)")
	)
	flag.Parse()

	cfg := experiment.Config{Seed: *seed, Heterogeneous: *hetero, Verify: *doVerify}
	if *full {
		cfg = experiment.PaperConfig(*hetero)
		cfg.Seed = *seed
		cfg.Verify = *doVerify
	}
	cfg.Workers = *workers
	cfg.ProbeWorkers = *probeWks
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *minTasks > 0 {
		cfg.MinTasks = *minTasks
	}
	if *maxTasks > 0 {
		cfg.MaxTasks = *maxTasks
	}
	var err error
	if cfg.Procs, err = parseInts(*procs, cfg.Procs); err != nil {
		fatal(err)
	}
	if cfg.CCRs, err = parseFloats(*ccrs, cfg.CCRs); err != nil {
		fatal(err)
	}

	switch {
	case *families:
		procs := 8
		if len(cfg.Procs) > 0 {
			procs = cfg.Procs[0]
		}
		ccr := 2.0
		if len(cfg.CCRs) > 0 {
			ccr = cfg.CCRs[0]
		}
		res, err := experiment.Families(experiment.FamilyConfig{
			Processors:    procs,
			Heterogeneous: cfg.Heterogeneous,
			CCR:           ccr,
			Reps:          cfg.Reps,
			Seed:          cfg.Seed,
			Verify:        cfg.Verify,
		})
		if err != nil {
			fatal(err)
		}
		if err := res.WriteTable(os.Stdout); err != nil {
			fatal(err)
		}
	case *suite != "":
		f, err := os.Open(*suite)
		if err != nil {
			fatal(err)
		}
		spec, err := experiment.LoadSuite(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if err := experiment.RunSuite(spec, *outDir, os.Stdout); err != nil {
			fatal(err)
		}
	case *ablation != "":
		res, err := experiment.Ablation(*ablation, cfg)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteTable(os.Stdout); err != nil {
			fatal(err)
		}
	case *all:
		for n := 1; n <= 4; n++ {
			if err := runFigure(n, cfg, *csv); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	case *figure >= 1 && *figure <= 4:
		if err := runFigure(*figure, cfg, *csv); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFigure(n int, cfg experiment.Config, csv bool) error {
	sw, err := experiment.Figure(n, cfg)
	if err != nil {
		return err
	}
	if csv {
		return sw.WriteCSV(os.Stdout)
	}
	return sw.WriteTable(os.Stdout)
}

func parseInts(s string, def []int) ([]int, error) {
	if s == "" {
		return def, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string, def []float64) ([]float64, error) {
	if s == "" {
		return def, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edgesim:", err)
	os.Exit(1)
}
