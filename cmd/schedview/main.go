// Command schedview schedules one workload instance with a chosen
// algorithm and prints the result: summary, text Gantt chart (with
// per-link rows), or a JSON/CSV dump.
//
// Usage:
//
//	schedview -algo oihsa -procs 8 -ccr 2 -tasks 60
//	schedview -algo bbsa -hetero -gantt -links
//	schedview -algo ba -json > schedule.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/graphio"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/workload"
)

func main() {
	var (
		algo    = flag.String("algo", "oihsa", "algorithm: ba, ba-eft, oihsa, bbsa, dls, cpop, classic, replay")
		procs   = flag.Int("procs", 8, "number of processors")
		ccr     = flag.Float64("ccr", 1.0, "communication-computation ratio")
		tasks   = flag.Int("tasks", 50, "number of tasks")
		hetero  = flag.Bool("hetero", false, "heterogeneous speeds U(1,10)")
		seed    = flag.Int64("seed", 1, "random seed")
		gantt   = flag.Bool("gantt", true, "print the Gantt chart")
		links   = flag.Bool("links", false, "include per-link rows in the Gantt chart")
		width   = flag.Int("width", 100, "Gantt chart width in cells")
		asJSON  = flag.Bool("json", false, "dump the schedule as JSON")
		asCSV   = flag.Bool("csv", false, "dump the schedule events as CSV")
		analyze = flag.Bool("analyze", false, "print the schedule analysis (speedup, bounds, critical chain)")
		svg     = flag.Bool("svg", false, "emit the schedule as an SVG Gantt chart")
		html    = flag.Bool("html", false, "emit a self-contained HTML report (Gantt + analysis)")
		events  = flag.Int("events", 0, "print the first N chronological events (0 = off)")
		dagFile = flag.String("dag", "", "load the task graph from a JSON file (see dagview -json) instead of generating one")
		netFile = flag.String("net", "", "load the topology from a JSON file (see netview -json) instead of generating one")
	)
	flag.Parse()

	var a sched.Algorithm
	switch strings.ToLower(*algo) {
	case "ba":
		a = sched.NewBA()
	case "ba-eft", "basinnen":
		a = sched.NewBASinnen()
	case "oihsa":
		a = sched.NewOIHSA()
	case "bbsa":
		a = sched.NewBBSA()
	case "dls":
		a = sched.NewDLS()
	case "cpop":
		a = sched.NewCPOP()
	case "classic":
		a = sched.NewClassic()
	case "replay", "classic-replay":
		a = sched.NewClassicReplay()
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	inst := workload.Generate(workload.Params{
		Processors:    *procs,
		CCR:           *ccr,
		Heterogeneous: *hetero,
		MinTasks:      *tasks,
		MaxTasks:      *tasks,
		Seed:          *seed,
	})
	if *dagFile != "" {
		f, err := os.Open(*dagFile)
		if err != nil {
			fatal(err)
		}
		inst.Graph, err = graphio.ReadGraph(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *netFile != "" {
		f, err := os.Open(*netFile)
		if err != nil {
			fatal(err)
		}
		inst.Net, err = graphio.ReadTopology(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	s, err := a.Schedule(inst.Graph, inst.Net)
	if err != nil {
		fatal(err)
	}
	if res := verify.Verify(s); !res.OK() {
		fatal(fmt.Errorf("schedule failed verification: %v", res.Err()))
	}

	switch {
	case *html:
		if err := trace.WriteHTMLReport(os.Stdout, s); err != nil {
			fatal(err)
		}
	case *svg:
		if err := trace.WriteGanttSVG(os.Stdout, s, trace.SVGOptions{Links: *links}); err != nil {
			fatal(err)
		}
	case *asJSON:
		if err := trace.WriteScheduleJSON(os.Stdout, s); err != nil {
			fatal(err)
		}
	case *asCSV:
		if err := trace.WriteScheduleCSV(os.Stdout, s); err != nil {
			fatal(err)
		}
	default:
		cs := s.CommStats()
		fmt.Printf("%s on %s: tasks=%d edges=%d (%d routed, mean %.1f hops)\n",
			s.Algorithm, inst.Net, inst.Graph.NumTasks(), inst.Graph.NumEdges(),
			cs.RoutedEdges, cs.MeanHops)
		fmt.Printf("makespan = %.2f (verified)\n", s.Makespan)
		if *gantt {
			if err := trace.WriteGantt(os.Stdout, s, trace.GanttOptions{Width: *width, Links: *links}); err != nil {
				fatal(err)
			}
		}
		if *analyze {
			if err := analysis.WriteReport(os.Stdout, analysis.Analyze(s)); err != nil {
				fatal(err)
			}
		}
		if *events > 0 {
			if err := trace.WriteEventLog(os.Stdout, s, *events); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedview:", err)
	os.Exit(1)
}
