package main

import (
	"encoding/json"
	"errors"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean runs the whole suite over the repository itself: the
// tree must stay free of findings (modulo justified edgelint:ignore
// directives), the same gate CI enforces with `go run ./cmd/edgelint`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	diags, failures, err := runLint("../..", []string{"./..."}, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Errorf("failed to analyze %s", f.String())
	}
	for _, d := range diags {
		t.Error(d.String())
	}
}

// TestListAnalyzers pins the -list output: every registered analyzer
// appears on its own line, name first, with its one-line doc, in
// alphabetical order.
func TestListAnalyzers(t *testing.T) {
	var b strings.Builder
	listAnalyzers(&b)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines for %d analyzers:\n%s", len(lines), len(all), b.String())
	}
	prev := ""
	for i, line := range lines {
		a := all[i]
		if !strings.HasPrefix(line, a.Name) {
			t.Errorf("line %d = %q, want it to start with %q", i, line, a.Name)
		}
		if !strings.Contains(line, a.Doc) {
			t.Errorf("line %d = %q does not include the doc %q", i, line, a.Doc)
		}
		if a.Name <= prev {
			t.Errorf("registry out of alphabetical order: %q after %q", a.Name, prev)
		}
		prev = a.Name
	}
	for _, name := range []string{"clonecheck", "immutable", "aliasret", "noalloc"} {
		if !strings.Contains(b.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	picked, err := selectAnalyzers("floateq,errflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "floateq" || picked[1].Name != "errflow" {
		t.Fatalf("picked %v", picked)
	}
	every, err := selectAnalyzers("")
	if err != nil || len(every) != len(all) {
		t.Fatalf("empty -only must select the full suite, got %d, %v", len(every), err)
	}
}

// TestSelectAnalyzersUnknown pins the rejection contract: an unknown
// name errors (the driver exits non-zero on it) and the message names
// every valid analyzer so the caller can fix the flag without -list.
func TestSelectAnalyzersUnknown(t *testing.T) {
	_, err := selectAnalyzers("nonsense")
	if err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"nonsense"`) {
		t.Errorf("error %q does not name the offending analyzer", msg)
	}
	for _, a := range all {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error %q does not list valid analyzer %s", msg, a.Name)
		}
	}
}

// TestAnalyzerPanicIsFailure pins the driver-robustness contract: an
// analyzer that panics on some unit fails that unit (and only that
// unit) instead of crashing the process or silently passing — the
// remaining units are still analyzed and the run reports the failure.
func TestAnalyzerPanicIsFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks real packages")
	}
	boom := &lint.Analyzer{
		Name: "boom",
		Doc:  "synthetic analyzer that panics on every unit",
		Run:  func(pass *lint.Pass) error { panic("kaboom") },
	}
	diags, failures, err := runLint("../..", []string{"./internal/fptime"}, []*lint.Analyzer{boom})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("panicking analyzer produced diagnostics: %v", diags)
	}
	if len(failures) == 0 {
		t.Fatal("panicking analyzer reported no failure — the run would read as a clean pass")
	}
	for _, f := range failures {
		if !strings.Contains(f.String(), "panicked") || !strings.Contains(f.String(), "kaboom") {
			t.Errorf("failure %q does not describe the panic", f.String())
		}
	}
	if code := exitCode(diags, failures); code != 3 {
		t.Errorf("exit code %d for a run with failures, want 3", code)
	}
}

// TestBrokenPackageIsFailure pins the load half of the same contract:
// a package that does not type-check comes back as a Failure while the
// run goes on, rather than aborting with an error (which previously
// dropped all diagnostics) or being silently skipped.
func TestBrokenPackageIsFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module brokenmod\n\ngo 1.22\n")
	write("broken.go", "package brokenmod\n\nfunc f() int { return undefinedIdent }\n")
	diags, failures, err := runLint(dir, []string{"./..."}, all)
	if err != nil {
		t.Fatalf("broken package aborted the run: %v", err)
	}
	if len(failures) == 0 {
		t.Fatal("broken package produced no failure — it would read as a clean pass")
	}
	if code := exitCode(diags, failures); code != 3 {
		t.Errorf("exit code %d for a run with failures, want 3", code)
	}
}

// TestNoAllocCatchesRemovedWaiver is the live teeth check for the
// noalloc gate: copy the module, strip the coldpath waivers out of the
// real internal/sched journal, and the analyzer must flag the now
// unexcused append through the annotated touch* roots. If this test
// fails, the repo's clean self-run proves nothing — the roots are not
// actually reaching the hot-path code.
func TestNoAllocCatchesRemovedWaiver(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks the module")
	}
	src, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	err = filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if rel != "." && (strings.HasPrefix(d.Name(), ".") || d.Name() == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if d.Name() != "go.mod" && !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		dst := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	jp := filepath.Join(dir, "internal", "sched", "journal.go")
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	stripped := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "edgelint:coldpath") {
			stripped++
			continue
		}
		kept = append(kept, line)
	}
	if stripped == 0 {
		t.Fatal("journal.go has no coldpath waiver to strip — update this test")
	}
	if err := os.WriteFile(jp, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	na, err := selectAnalyzers("noalloc")
	if err != nil {
		t.Fatal(err)
	}
	diags, failures, err := runLint(dir, []string{"./internal/sched"}, na)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Fatalf("failed to analyze %s", f.String())
	}
	if len(diags) == 0 {
		t.Fatal("stripping the journal waiver produced no noalloc finding — the gate has no teeth")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "append") && strings.Contains(d.Message, "put") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no diagnostic names the journal append through put; got:\n%v", diags)
	}
}

// TestExitCode pins the verdict precedence: failures dominate findings.
func TestExitCode(t *testing.T) {
	d := []lint.Diagnostic{{}}
	f := []lint.Failure{{Path: "p", Err: errFailed}}
	if got := exitCode(nil, nil); got != 0 {
		t.Errorf("clean run: exit %d, want 0", got)
	}
	if got := exitCode(d, nil); got != 1 {
		t.Errorf("findings only: exit %d, want 1", got)
	}
	if got := exitCode(nil, f); got != 3 {
		t.Errorf("failures only: exit %d, want 3", got)
	}
	if got := exitCode(d, f); got != 3 {
		t.Errorf("findings+failures: exit %d, want 3 (partial run is not a pass)", got)
	}
}

var errFailed = errors.New("failed")

// TestSortDiagnostics pins the deterministic report order: file, then
// line, then column, then analyzer.
func TestSortDiagnostics(t *testing.T) {
	mk := func(file string, line, col int, an string) lint.Diagnostic {
		return lint.Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: an,
		}
	}
	diags := []lint.Diagnostic{
		mk("b.go", 1, 1, "floateq"),
		mk("a.go", 2, 1, "txnjournal"),
		mk("a.go", 2, 1, "immutable"),
		mk("a.go", 1, 9, "floateq"),
	}
	sortDiagnostics(diags)
	var got []string
	for _, d := range diags {
		got = append(got, d.Pos.Filename+":"+d.Analyzer)
	}
	want := []string{"a.go:floateq", "a.go:immutable", "a.go:txnjournal", "b.go:floateq"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestWriteJSON checks the -json wire shape, including that an empty
// run encodes as [] rather than null.
func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	diags := []lint.Diagnostic{{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "detfold",
		Message:  "order-dependent float accumulation",
	}}
	if err := writeJSON(&b, diags); err != nil {
		t.Fatal(err)
	}
	var got []jsonDiag
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(got) != 1 || got[0] != (jsonDiag{"x.go", 3, 7, "detfold", "order-dependent float accumulation"}) {
		t.Fatalf("round-trip %+v", got)
	}

	b.Reset()
	if err := writeJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(b.String()); s != "[]" {
		t.Fatalf("empty run encodes as %q, want []", s)
	}
}
