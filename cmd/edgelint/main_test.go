package main

import (
	"strings"
	"testing"
)

// TestRepoIsClean runs the whole suite over the repository itself: the
// tree must stay free of findings (modulo justified edgelint:ignore
// directives), the same gate CI enforces with `go run ./cmd/edgelint`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	diags, err := runLint("../..", []string{"./..."}, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Error(d.String())
	}
}

// TestListAnalyzers pins the -list output: every registered analyzer
// appears on its own line, name first, with its one-line doc, in
// alphabetical order.
func TestListAnalyzers(t *testing.T) {
	var b strings.Builder
	listAnalyzers(&b)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines for %d analyzers:\n%s", len(lines), len(all), b.String())
	}
	prev := ""
	for i, line := range lines {
		a := all[i]
		if !strings.HasPrefix(line, a.Name) {
			t.Errorf("line %d = %q, want it to start with %q", i, line, a.Name)
		}
		if !strings.Contains(line, a.Doc) {
			t.Errorf("line %d = %q does not include the doc %q", i, line, a.Doc)
		}
		if a.Name <= prev {
			t.Errorf("registry out of alphabetical order: %q after %q", a.Name, prev)
		}
		prev = a.Name
	}
	for _, name := range []string{"clonecheck", "immutable", "aliasret"} {
		if !strings.Contains(b.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	picked, err := selectAnalyzers("floateq,errflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "floateq" || picked[1].Name != "errflow" {
		t.Fatalf("picked %v", picked)
	}
	if _, err := selectAnalyzers("nonsense"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	every, err := selectAnalyzers("")
	if err != nil || len(every) != len(all) {
		t.Fatalf("empty -only must select the full suite, got %d, %v", len(every), err)
	}
}
