package main

import "testing"

// TestRepoIsClean runs the whole suite over the repository itself: the
// tree must stay free of findings (modulo justified edgelint:ignore
// directives), the same gate CI enforces with `go run ./cmd/edgelint`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	diags, err := runLint("../..", []string{"./..."}, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Error(d.String())
	}
}

func TestSelectAnalyzers(t *testing.T) {
	picked, err := selectAnalyzers("floateq,errflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "floateq" || picked[1].Name != "errflow" {
		t.Fatalf("picked %v", picked)
	}
	if _, err := selectAnalyzers("nonsense"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	every, err := selectAnalyzers("")
	if err != nil || len(every) != len(all) {
		t.Fatalf("empty -only must select the full suite, got %d, %v", len(every), err)
	}
}
