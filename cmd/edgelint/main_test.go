package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean runs the whole suite over the repository itself: the
// tree must stay free of findings (modulo justified edgelint:ignore
// directives), the same gate CI enforces with `go run ./cmd/edgelint`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	diags, err := runLint("../..", []string{"./..."}, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Error(d.String())
	}
}

// TestListAnalyzers pins the -list output: every registered analyzer
// appears on its own line, name first, with its one-line doc, in
// alphabetical order.
func TestListAnalyzers(t *testing.T) {
	var b strings.Builder
	listAnalyzers(&b)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines for %d analyzers:\n%s", len(lines), len(all), b.String())
	}
	prev := ""
	for i, line := range lines {
		a := all[i]
		if !strings.HasPrefix(line, a.Name) {
			t.Errorf("line %d = %q, want it to start with %q", i, line, a.Name)
		}
		if !strings.Contains(line, a.Doc) {
			t.Errorf("line %d = %q does not include the doc %q", i, line, a.Doc)
		}
		if a.Name <= prev {
			t.Errorf("registry out of alphabetical order: %q after %q", a.Name, prev)
		}
		prev = a.Name
	}
	for _, name := range []string{"clonecheck", "immutable", "aliasret"} {
		if !strings.Contains(b.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	picked, err := selectAnalyzers("floateq,errflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "floateq" || picked[1].Name != "errflow" {
		t.Fatalf("picked %v", picked)
	}
	every, err := selectAnalyzers("")
	if err != nil || len(every) != len(all) {
		t.Fatalf("empty -only must select the full suite, got %d, %v", len(every), err)
	}
}

// TestSelectAnalyzersUnknown pins the rejection contract: an unknown
// name errors (the driver exits non-zero on it) and the message names
// every valid analyzer so the caller can fix the flag without -list.
func TestSelectAnalyzersUnknown(t *testing.T) {
	_, err := selectAnalyzers("nonsense")
	if err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"nonsense"`) {
		t.Errorf("error %q does not name the offending analyzer", msg)
	}
	for _, a := range all {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error %q does not list valid analyzer %s", msg, a.Name)
		}
	}
}

// TestSortDiagnostics pins the deterministic report order: file, then
// line, then column, then analyzer.
func TestSortDiagnostics(t *testing.T) {
	mk := func(file string, line, col int, an string) lint.Diagnostic {
		return lint.Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: an,
		}
	}
	diags := []lint.Diagnostic{
		mk("b.go", 1, 1, "floateq"),
		mk("a.go", 2, 1, "txnjournal"),
		mk("a.go", 2, 1, "immutable"),
		mk("a.go", 1, 9, "floateq"),
	}
	sortDiagnostics(diags)
	var got []string
	for _, d := range diags {
		got = append(got, d.Pos.Filename+":"+d.Analyzer)
	}
	want := []string{"a.go:floateq", "a.go:immutable", "a.go:txnjournal", "b.go:floateq"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestWriteJSON checks the -json wire shape, including that an empty
// run encodes as [] rather than null.
func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	diags := []lint.Diagnostic{{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "detfold",
		Message:  "order-dependent float accumulation",
	}}
	if err := writeJSON(&b, diags); err != nil {
		t.Fatal(err)
	}
	var got []jsonDiag
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(got) != 1 || got[0] != (jsonDiag{"x.go", 3, 7, "detfold", "order-dependent float accumulation"}) {
		t.Fatalf("round-trip %+v", got)
	}

	b.Reset()
	if err := writeJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(b.String()); s != "[]" {
		t.Fatalf("empty run encodes as %q, want []", s)
	}
}
