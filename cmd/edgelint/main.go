// Command edgelint is the repository's domain-specific static
// analysis driver. It runs the repro/internal/lint analyzers — the
// mechanical form of the invariants the paper reproduction depends on
// — over the given go package patterns (default ./...):
//
//	aliasret      methods on cloned/immutable types returning internal slices/maps
//	clonecheck    Clone methods that shallow-copy reference-bearing fields
//	errflow       dropped errors from this module's exported APIs
//	floateq       bare float64 time/cost comparisons (use internal/fptime)
//	immutable     writes to edgelint:immutable types outside their constructors
//	routerconfine *network.Router values crossing goroutine boundaries
//	seededrand    unseeded randomness and wall-clock time in libraries
//	txnjournal    un-journaled stores to transactional scheduler state
//	verifysched   test schedules that never pass through verify.Verify
//
// Usage:
//
//	go run ./cmd/edgelint [-list] [-only name,name] [patterns...]
//
// Diagnostics print as file:line:col: message (analyzer). A finding on
// a given line can be suppressed, with justification, by
//
//	// edgelint:ignore <analyzer> — <reason>
//
// on the offending line or the line above. Exits 1 if any diagnostic
// is reported, 2 on driver errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/aliasret"
	"repro/internal/lint/clonecheck"
	"repro/internal/lint/errflow"
	"repro/internal/lint/floateq"
	"repro/internal/lint/immutable"
	"repro/internal/lint/routerconfine"
	"repro/internal/lint/seededrand"
	"repro/internal/lint/txnjournal"
	"repro/internal/lint/verifysched"
)

// all is the suite, alphabetically.
var all = []*lint.Analyzer{
	aliasret.Analyzer,
	clonecheck.Analyzer,
	errflow.Analyzer,
	floateq.Analyzer,
	immutable.Analyzer,
	routerconfine.Analyzer,
	seededrand.Analyzer,
	txnjournal.Analyzer,
	verifysched.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	if *list {
		listAnalyzers(os.Stdout)
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgelint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := runLint(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgelint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "edgelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// listAnalyzers prints the registry, one analyzer per line.
func listAnalyzers(w io.Writer) {
	for _, a := range all {
		fmt.Fprintf(w, "%-12s %s\n", a.Name, a.Doc)
	}
}

// selectAnalyzers resolves the -only flag against the registry.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// runLint loads the packages (with test files, like go vet) and applies
// the analyzers to every unit.
func runLint(dir string, patterns []string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, error) {
	units, err := lint.LoadPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []lint.Diagnostic
	for _, u := range units {
		ds, err := u.Run(analyzers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", u.Path, err)
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}
