// Command edgelint is the repository's domain-specific static
// analysis driver. It runs the repro/internal/lint analyzers — the
// mechanical form of the invariants the paper reproduction depends on
// — over the given go package patterns (default ./...):
//
//	aliasret      methods on cloned/immutable types returning internal slices/maps
//	clonecheck    Clone methods that shallow-copy reference-bearing fields
//	detfold       order-dependent float folds in map/channel/select merges
//	errflow       dropped errors from this module's exported APIs
//	floateq       bare float64 time/cost comparisons (use internal/fptime)
//	immutable     writes to edgelint:immutable types outside their constructors
//	noalloc       allocating constructs reachable from edgelint:noalloc hot paths
//	routerconfine *network.Router values crossing goroutine boundaries
//	seededrand    unseeded randomness and wall-clock time in libraries
//	txnjournal    un-journaled stores to transactional scheduler state
//	verifysched   test schedules that never pass through verify.Verify
//
// Packages are analyzed in dependency order and share one fact store,
// so marker facts and function summaries exported while analyzing a
// package are visible when its importers are analyzed: the analyzers
// see through package boundaries.
//
// Usage:
//
//	go run ./cmd/edgelint [-list] [-json] [-only name,name] [patterns...]
//
// Diagnostics print as file:line:col: message (analyzer), ordered by
// file, line, column, analyzer; -json emits the same findings as a
// JSON array of {file,line,col,analyzer,message} objects. A finding on
// a given line can be suppressed, with justification, by
//
//	// edgelint:ignore <analyzer> — <reason>
//
// on the offending line or the line above. Exits 1 if any diagnostic
// is reported, 2 on driver errors, and 3 when one or more packages
// could not be analyzed (load or type-check failure, analyzer panic) —
// a partial run must not read as a clean pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/aliasret"
	"repro/internal/lint/clonecheck"
	"repro/internal/lint/detfold"
	"repro/internal/lint/errflow"
	"repro/internal/lint/floateq"
	"repro/internal/lint/immutable"
	"repro/internal/lint/noalloc"
	"repro/internal/lint/routerconfine"
	"repro/internal/lint/seededrand"
	"repro/internal/lint/txnjournal"
	"repro/internal/lint/verifysched"
)

// all is the suite, alphabetically.
var all = []*lint.Analyzer{
	aliasret.Analyzer,
	clonecheck.Analyzer,
	detfold.Analyzer,
	errflow.Analyzer,
	floateq.Analyzer,
	immutable.Analyzer,
	noalloc.Analyzer,
	routerconfine.Analyzer,
	seededrand.Analyzer,
	txnjournal.Analyzer,
	verifysched.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	flag.Parse()

	if *list {
		listAnalyzers(os.Stdout)
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgelint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, failures, err := runLint(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgelint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "edgelint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "edgelint: failed to analyze", f.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "edgelint: %d finding(s)\n", len(diags))
	}
	os.Exit(exitCode(diags, failures))
}

// exitCode is the driver's verdict: 3 when any package could not be
// analyzed (even if the rest produced findings — a partial run is not
// a pass), 1 for findings, 0 for a clean full run.
func exitCode(diags []lint.Diagnostic, failures []lint.Failure) int {
	switch {
	case len(failures) > 0:
		return 3
	case len(diags) > 0:
		return 1
	}
	return 0
}

// listAnalyzers prints the registry, one analyzer per line.
func listAnalyzers(w io.Writer) {
	for _, a := range all {
		fmt.Fprintf(w, "%-12s %s\n", a.Name, a.Doc)
	}
}

// selectAnalyzers resolves the -only flag against the registry.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			names := make([]string, len(all))
			for i, a := range all {
				names[i] = a.Name
			}
			return nil, fmt.Errorf("unknown analyzer %q (valid: %s)",
				name, strings.Join(names, ", "))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// jsonDiag is the -json wire shape of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the diagnostics as an indented JSON array (an empty
// run prints [], not null, so consumers can range unconditionally).
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runLint loads the packages (with test files, like go vet) and applies
// the analyzers to every unit. Units arrive in dependency order from
// LoadPackages and share one fact store, so facts exported while
// analyzing a package are importable when its dependents run.
func runLint(dir string, patterns []string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, []lint.Failure, error) {
	units, failures, err := lint.LoadPackages(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	facts := lint.NewFacts()
	var diags []lint.Diagnostic
	for _, u := range units {
		ds, err := u.RunWith(analyzers, facts)
		if err != nil {
			// An analyzer error (including a recovered panic) on one
			// unit fails that unit, not the whole run: the remaining
			// packages still get analyzed and the driver exits 3.
			failures = append(failures, lint.Failure{Path: u.Path, Err: err})
			continue
		}
		diags = append(diags, ds...)
	}
	sortDiagnostics(diags)
	return diags, failures, nil
}

// sortDiagnostics fixes the report order — file, line, column,
// analyzer — so output is deterministic and independent of the
// dependency order the units were analyzed in.
func sortDiagnostics(diags []lint.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
