// Command benchdiff runs the repository benchmark suite, snapshots the
// results as BENCH_<n>.json, and reports the change against the
// previous snapshot so performance regressions show up as a reviewable
// diff instead of an anecdote.
//
// Usage:
//
//	benchdiff -run               # run the suite, write the next BENCH_<n>.json, compare
//	benchdiff -parse out.txt     # convert saved `go test -bench` output to the next snapshot
//	benchdiff -compare A.json B.json   # print the delta table between two snapshots
//	benchdiff -run -count 3 -bench 'Figure'   # narrower/faster run
//	benchdiff -check -count 3 -benchtime 5x   # CI gate vs the latest committed snapshot
//
// Snapshots aggregate `go test -bench . -benchmem -count N` samples per
// benchmark (mean and best ns/op, mean B/op and allocs/op). The delta
// table reports the percentage change of the mean ns/op and mean
// allocs/op; negative is faster/leaner. Changes within ±3% on ns/op is
// noise on most machines — read the direction of the whole table, not a
// single row.
//
// The -check mode is the non-flaky smoke gate: it re-runs only the
// benchmarks named by -gate, compares their best-of-count ns/op (the
// min is far less noisy than the mean on shared CI machines) against
// the latest committed BENCH_<n>.json, and exits non-zero if any gated
// benchmark regressed by more than -max-regress percent. The threshold
// is deliberately generous — the gate exists to catch accidental
// algorithmic regressions (linear rescans, lost caches), not to police
// single-digit noise; the committed snapshot trail is the precise
// record.
//
// -check also gates allocs/op, which unlike wall time is deterministic:
// a gated benchmark whose baseline allocs/op is zero must stay at
// exactly zero (the zero-alloc pin — one allocation on a steady-state
// path is a real leak, not noise), and a nonzero baseline tolerates the
// same -max-regress percentage as ns/op.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Sample is the aggregated measurement of one benchmark.
type Sample struct {
	Samples     int     `json:"samples"`       // -count repetitions seen
	Iterations  int64   `json:"iterations"`    // b.N of the last repetition
	NsPerOp     float64 `json:"ns_per_op"`     // mean over repetitions
	MinNsPerOp  float64 `json:"min_ns_per_op"` // best repetition
	BytesPerOp  float64 `json:"bytes_per_op"`  // mean
	AllocsPerOp float64 `json:"allocs_per_op"` // mean
}

// Snapshot is the on-disk BENCH_<n>.json format.
type Snapshot struct {
	Created    string            `json:"created"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Command    string            `json:"command"`
	Benchmarks map[string]Sample `json:"benchmarks"`
}

func main() {
	var (
		run       = flag.Bool("run", false, "run the benchmark suite and snapshot the results")
		parse     = flag.String("parse", "", "parse saved `go test -bench` output from a file instead of running")
		compare   = flag.Bool("compare", false, "compare two snapshot files given as arguments")
		check     = flag.Bool("check", false, "gate: fail if a -gate benchmark regressed vs the latest snapshot")
		count     = flag.Int("count", 5, "benchmark repetitions (-run/-check)")
		bench     = flag.String("bench", ".", "benchmark selection regexp (-run)")
		benchTime = flag.String("benchtime", "", "go test -benchtime (-run/-check); empty uses the go default")
		gate      = flag.String("gate", defaultGate, "comma-separated benchmark names guarded by -check")
		maxPct    = flag.Float64("max-regress", 50, "percent min-ns/op regression -check tolerates")
		pkg       = flag.String("pkg", ".", "package to benchmark (-run/-check)")
		dir       = flag.String("dir", ".", "directory holding BENCH_<n>.json snapshots")
		timeOut   = flag.String("timeout", "60m", "go test timeout (-run/-check)")
	)
	flag.Parse()

	switch {
	case *compare:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two snapshot files"))
		}
		old, err := load(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		cur, err := load(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		printDelta(os.Stdout, flag.Arg(0), flag.Arg(1), old, cur)
	case *parse != "":
		text, err := os.ReadFile(*parse)
		if err != nil {
			fatal(err)
		}
		snap := newSnapshot("parsed from " + *parse)
		snap.Benchmarks = parseBench(string(text))
		if len(snap.Benchmarks) == 0 {
			fatal(fmt.Errorf("no benchmark lines found in %s", *parse))
		}
		if err := saveAndCompare(*dir, snap); err != nil {
			fatal(err)
		}
	case *run:
		out, args, err := runBench(*bench, *count, *benchTime, *timeOut, *pkg)
		if err != nil {
			fatal(err)
		}
		snap := newSnapshot("go " + strings.Join(args, " "))
		snap.Benchmarks = parseBench(out)
		if len(snap.Benchmarks) == 0 {
			fatal(fmt.Errorf("benchmark run produced no parsable lines"))
		}
		if err := saveAndCompare(*dir, snap); err != nil {
			fatal(err)
		}
	case *check:
		if err := runCheck(*dir, *gate, *count, *benchTime, *timeOut, *pkg, *maxPct); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// defaultGate lists the benchmarks the -check gate guards: the four
// end-to-end scheduler presets plus the large-graph EFT baseline (the
// macro paths every kernel change flows through) and the two
// 10^4-scale bandwidth sweeps, whose tens of milliseconds per op make
// them regression-stable and which are exactly where a lost index or a
// reintroduced linear rescan in the BBSA ledger shows up first.
// The 10^4-processor EFT benchmark guards the wide-machine paths the
// columnar state refactor optimizes: per-fork column clones, the
// pooled replica reuse and the lower-bound sweep. Single-digit-
// microsecond micro-benchmarks stay out of the ns/op gate — too noisy
// to time on a shared machine — but the 10^4-scale probe kernels are
// in for their allocs/op, which is deterministic: their baselines are
// zero and the gate pins them there (the noalloc analyzer's claim,
// re-checked at runtime). ScheduleBASinnenLarge additionally carries
// an explicit @allocs entry so its allocation count stays pinned even
// if the wall-time entry is ever relaxed: its allocs/op is the
// flat-state series' headline number.
// BenchmarkEngineThroughput guards the serving path: its wall time is
// the engine's whole value proposition (64 schedules against a warm
// shared cache and pooled states), and its @allocs entry pins the
// steady-state allocations per wave — a leak in resetFor or a lost
// pool hit shows up here as a multiple, not a percent.
const defaultGate = "BenchmarkScheduleBA,BenchmarkScheduleBASinnen,BenchmarkScheduleBASinnenLarge,BenchmarkScheduleBASinnenLarge@allocs," +
	"BenchmarkScheduleBASinnenManyProcs,BenchmarkScheduleOIHSA,BenchmarkScheduleBBSA," +
	"BenchmarkBandwidthAllocForward/jobs=10000,BenchmarkBandwidthEstimateFinish/segs=10000,BenchmarkTimelineProbeBasic/slots=10000@allocs," +
	"BenchmarkEngineThroughput,BenchmarkEngineThroughput@allocs"

// runBench shells out to go test -bench and returns its stdout.
func runBench(bench string, count int, benchTime, timeOut, pkg string) (string, []string, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem",
		"-count", strconv.Itoa(count)}
	if benchTime != "" {
		args = append(args, "-benchtime", benchTime)
	}
	args = append(args, "-timeout", timeOut, pkg)
	fmt.Fprintln(os.Stderr, "benchdiff: go "+strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return "", args, fmt.Errorf("go test -bench: %w", err)
	}
	return string(out), args, nil
}

// runCheck re-runs the gated benchmarks and fails on any regression
// beyond maxPct versus the latest committed snapshot.
func runCheck(dir, gate string, count int, benchTime, timeOut, pkg string, maxPct float64) error {
	prev, err := latest(dir)
	if err != nil {
		return err
	}
	if prev == 0 {
		return fmt.Errorf("-check needs a committed BENCH_<n>.json baseline in %s", dir)
	}
	prevPath := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", prev))
	old, err := load(prevPath)
	if err != nil {
		return err
	}
	entries := splitGate(gate)
	if len(entries) == 0 {
		return fmt.Errorf("-gate names no benchmarks")
	}
	cur := map[string]Sample{}
	for _, group := range gateGroups(entries) {
		out, _, err := runBench(gatePattern(group), count, benchTime, timeOut, pkg)
		if err != nil {
			return err
		}
		for name, s := range parseBench(out) {
			cur[name] = s
		}
	}
	if len(cur) == 0 {
		return fmt.Errorf("gate run produced no parsable benchmark lines")
	}
	violations := gateViolations(old.Benchmarks, cur, entries, maxPct)
	for _, entry := range entries {
		name, _ := gateName(entry)
		o, inOld := old.Benchmarks[name]
		n, inCur := cur[name]
		switch {
		case !inOld:
			fmt.Printf("%-34s not in %s; skipped\n", name, prevPath)
		case !inCur:
			fmt.Printf("%-34s MISSING from gate run\n", name)
		default:
			fmt.Printf("%-34s min %14.0f -> %14.0f ns/op  %+6.1f%%  %6.0f -> %6.0f allocs/op\n",
				name, o.MinNsPerOp, n.MinNsPerOp, pct(o.MinNsPerOp, n.MinNsPerOp),
				o.AllocsPerOp, n.AllocsPerOp)
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchdiff: REGRESSION "+v)
		}
		return fmt.Errorf("%d of %d gated benchmarks regressed beyond +%.0f%% vs %s",
			len(violations), len(entries), maxPct, prevPath)
	}
	fmt.Printf("benchdiff: %d gated benchmarks within +%.0f%% of %s\n", len(entries), maxPct, prevPath)
	return nil
}

// gateGroups buckets the gated names by nesting depth (number of "/"
// levels), shallow first. go test only *times* benchmarks whose full
// identifier is as deep as the -bench pattern — a flat benchmark under
// a two-level pattern runs once in sub-benchmark discovery mode and
// reports nothing — so whole-benchmark and sub-benchmark gates cannot
// share one `go test` invocation; runCheck runs one per depth group.
func gateGroups(names []string) [][]string {
	byDepth := map[int][]string{}
	maxDepth := 0
	for _, name := range names {
		d := strings.Count(name, "/")
		byDepth[d] = append(byDepth[d], name)
		if d > maxDepth {
			maxDepth = d
		}
	}
	var groups [][]string
	for d := 0; d <= maxDepth; d++ {
		if g := byDepth[d]; len(g) > 0 {
			groups = append(groups, g)
		}
	}
	return groups
}

// gatePattern builds the `go test -bench` selection for one depth
// group of gated names. go test splits a -bench pattern on "/" and
// applies one element per benchmark nesting level, so a gate name like
// "BenchmarkBandwidthAllocForward/jobs=10000" cannot be quoted into a
// single flat alternation — instead the names' components are
// alternated level by level. Within one group the cross product can at
// most run extra gated parents' sub-benchmarks, whose lines the gate
// comparison ignores.
func gatePattern(names []string) string {
	var levels [][]string
	for _, name := range names {
		name, _ = gateName(name)
		for l, part := range strings.Split(name, "/") {
			if l == len(levels) {
				levels = append(levels, nil)
			}
			q := regexp.QuoteMeta(part)
			dup := false
			for _, seen := range levels[l] {
				if seen == q {
					dup = true
					break
				}
			}
			if !dup {
				levels[l] = append(levels[l], q)
			}
		}
	}
	parts := make([]string, len(levels))
	for l, alts := range levels {
		parts[l] = "^(" + strings.Join(alts, "|") + ")$"
	}
	return strings.Join(parts, "/")
}

// gateName splits one -gate entry into the benchmark name and whether
// the entry is gated on allocs/op only. A "@allocs" suffix opts a
// benchmark out of the ns/op comparison: sub-microsecond kernels are
// too noisy to time at -benchtime 5x on a shared machine, but their
// allocation count is deterministic and worth pinning.
func gateName(entry string) (name string, allocsOnly bool) {
	return strings.CutSuffix(entry, "@allocs")
}

// splitGate parses the comma-separated gate list, dropping empties.
func splitGate(gate string) []string {
	var names []string
	for _, n := range strings.Split(gate, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// gateViolations compares the gated benchmarks' best-of-count ns/op
// and mean allocs/op between the baseline and the current run. A gated
// benchmark missing from the current run is a violation (the gate must
// not silently shrink); one missing from the baseline is skipped (it
// is new and has no reference yet). Allocation counts are
// deterministic, so a zero-alloc baseline is an exact pin: any
// allocation at all is a violation, with no percentage headroom.
func gateViolations(old, cur map[string]Sample, names []string, maxPct float64) []string {
	var out []string
	for _, entry := range names {
		name, allocsOnly := gateName(entry)
		o, inOld := old[name]
		if !inOld {
			continue
		}
		n, inCur := cur[name]
		if !inCur {
			out = append(out, fmt.Sprintf("%s: missing from gate run", name))
			continue
		}
		if d := pct(o.MinNsPerOp, n.MinNsPerOp); !allocsOnly && d > maxPct {
			out = append(out, fmt.Sprintf("%s: min ns/op %+.1f%% (%.0f -> %.0f, limit +%.0f%%)",
				name, d, o.MinNsPerOp, n.MinNsPerOp, maxPct))
		}
		switch {
		case o.AllocsPerOp == 0 && n.AllocsPerOp > 0:
			out = append(out, fmt.Sprintf("%s: allocs/op %.1f, baseline pinned at 0",
				name, n.AllocsPerOp))
		case o.AllocsPerOp > 0:
			if d := pct(o.AllocsPerOp, n.AllocsPerOp); d > maxPct {
				out = append(out, fmt.Sprintf("%s: allocs/op %+.1f%% (%.0f -> %.0f, limit +%.0f%%)",
					name, d, o.AllocsPerOp, n.AllocsPerOp, maxPct))
			}
		}
	}
	return out
}

func newSnapshot(command string) *Snapshot {
	return &Snapshot{
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Command:    command,
		Benchmarks: map[string]Sample{},
	}
}

// benchLine matches the head of one `go test -bench` result line, e.g.
//
//	BenchmarkFigure1-8   5   234567890 ns/op   123456 B/op   1234 allocs/op
//
// Custom metrics (b.ReportMetric) may appear between ns/op and the
// -benchmem columns, so bytes and allocs are extracted separately.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)
	bytesUnit  = regexp.MustCompile(`\s([\d.]+) B/op`)
	allocsUnit = regexp.MustCompile(`\s([\d.]+) allocs/op`)
)

// parseBench aggregates repeated benchmark lines (from -count N) into
// one Sample per benchmark name. The -<GOMAXPROCS> suffix is stripped
// so snapshots from differently sized machines stay comparable by name.
func parseBench(text string) map[string]Sample {
	type acc struct {
		n                  int
		iters              int64
		ns, minNs, b, alcs float64
	}
	accs := map[string]*acc{}
	for _, line := range strings.Split(text, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		a := accs[name]
		if a == nil {
			a = &acc{minNs: ns}
			accs[name] = a
		}
		a.n++
		a.iters = iters
		a.ns += ns
		if ns < a.minNs {
			a.minNs = ns
		}
		if bm := bytesUnit.FindStringSubmatch(line); bm != nil {
			v, _ := strconv.ParseFloat(bm[1], 64)
			a.b += v
		}
		if am := allocsUnit.FindStringSubmatch(line); am != nil {
			v, _ := strconv.ParseFloat(am[1], 64)
			a.alcs += v
		}
	}
	out := map[string]Sample{}
	for name, a := range accs {
		n := float64(a.n)
		out[name] = Sample{
			Samples:     a.n,
			Iterations:  a.iters,
			NsPerOp:     a.ns / n,
			MinNsPerOp:  a.minNs,
			BytesPerOp:  a.b / n,
			AllocsPerOp: a.alcs / n,
		}
	}
	return out
}

// snapFile names the numbered snapshot files.
var snapFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latest returns the highest snapshot index in dir (0 if none).
func latest(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, e := range entries {
		if m := snapFile.FindStringSubmatch(e.Name()); m != nil {
			if n, _ := strconv.Atoi(m[1]); n > max {
				max = n
			}
		}
	}
	return max, nil
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// saveAndCompare writes the next BENCH_<n>.json and, when a previous
// snapshot exists, prints the delta table against it.
func saveAndCompare(dir string, snap *Snapshot) error {
	prev, err := latest(dir)
	if err != nil {
		return err
	}
	next := prev + 1
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next))
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
	if prev == 0 {
		fmt.Println("no previous snapshot; nothing to compare")
		return nil
	}
	prevPath := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", prev))
	old, err := load(prevPath)
	if err != nil {
		return err
	}
	printDelta(os.Stdout, prevPath, path, old, snap)
	return nil
}

// printDelta renders the comparison table between two snapshots.
func printDelta(w *os.File, oldName, newName string, old, cur *Snapshot) {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\n%s -> %s\n", oldName, newName)
	fmt.Fprintf(w, "%-34s %14s %14s %8s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ%", "allocs/op", "Δ%")
	for _, name := range names {
		n := cur.Benchmarks[name]
		o, ok := old.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-34s %14s %14.0f %8s %12.0f %8s\n",
				name, "-", n.NsPerOp, "new", n.AllocsPerOp, "new")
			continue
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %+7.1f%% %12.0f %+7.1f%%\n",
			name, o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp),
			n.AllocsPerOp, pct(o.AllocsPerOp, n.AllocsPerOp))
	}
	for name := range old.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "%-34s removed\n", name)
		}
	}
}

// pct is the percentage change from old to new; 0 when old is 0.
func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
