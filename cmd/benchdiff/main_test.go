package main

import (
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro
BenchmarkFigure1-8   	       2	 500000000 ns/op	20000000 B/op	  300000 allocs/op
BenchmarkFigure1-8   	       2	 520000000 ns/op	20000000 B/op	  300000 allocs/op
BenchmarkBFSRoute-8  	 1000000	      1050 ns/op	     512 B/op	      12 allocs/op
BenchmarkBFSRoute-8  	 1000000	       950 ns/op	     512 B/op	      12 allocs/op
BenchmarkAblationX   	      10	 100000000 ns/op	        26.00 improv_%	 4000000 B/op	   50000 allocs/op
PASS
ok  	repro	12.3s
`

func TestParseBenchAggregates(t *testing.T) {
	got := parseBench(sampleOutput)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	// Custom b.ReportMetric columns must not hide the -benchmem ones.
	abl := got["BenchmarkAblationX"]
	if abl.BytesPerOp != 4000000 || abl.AllocsPerOp != 50000 {
		t.Fatalf("custom-metric line parsed as %+v", abl)
	}
	fig, ok := got["BenchmarkFigure1"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if fig.Samples != 2 || math.Abs(fig.NsPerOp-510000000) > 1 {
		t.Fatalf("Figure1 sample %+v", fig)
	}
	if fig.MinNsPerOp != 500000000 {
		t.Fatalf("Figure1 min %v, want 5e8", fig.MinNsPerOp)
	}
	bfs := got["BenchmarkBFSRoute"]
	if math.Abs(bfs.NsPerOp-1000) > 1e-9 || bfs.AllocsPerOp != 12 || bfs.BytesPerOp != 512 {
		t.Fatalf("BFSRoute sample %+v", bfs)
	}
	if bfs.Iterations != 1000000 {
		t.Fatalf("BFSRoute iterations %d", bfs.Iterations)
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	if got := parseBench("PASS\nok repro 1s\n--- BENCH: x\n"); len(got) != 0 {
		t.Fatalf("parsed noise as benchmarks: %v", got)
	}
}

func TestPct(t *testing.T) {
	if got := pct(200, 100); got != -50 {
		t.Fatalf("pct(200,100)=%v", got)
	}
	if got := pct(0, 100); got != 0 {
		t.Fatalf("pct(0,100)=%v", got)
	}
}

func TestLatestSnapshotIndex(t *testing.T) {
	dir := t.TempDir()
	if n, err := latest(dir); err != nil || n != 0 {
		t.Fatalf("empty dir: n=%d err=%v", n, err)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_x.json", "other.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := latest(dir); err != nil || n != 3 {
		t.Fatalf("n=%d err=%v, want 3", n, err)
	}
}

func TestSaveAndCompareRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := newSnapshot("test")
	snap.Benchmarks = parseBench(sampleOutput)
	if err := saveAndCompare(dir, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := load(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Benchmarks) != 3 || loaded.Command != "test" {
		t.Fatalf("round trip lost data: %+v", loaded)
	}
	// A second snapshot bumps the index and compares cleanly.
	if err := saveAndCompare(dir, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Fatal(err)
	}
}

func TestGateViolations(t *testing.T) {
	old := map[string]Sample{
		"BenchmarkA": {MinNsPerOp: 1000},
		"BenchmarkB": {MinNsPerOp: 2000},
		"BenchmarkC": {MinNsPerOp: 3000},
	}
	cur := map[string]Sample{
		"BenchmarkA": {MinNsPerOp: 1400}, // +40%: inside a 50% limit
		"BenchmarkB": {MinNsPerOp: 3100}, // +55%: regression
		// BenchmarkC missing from the gate run: violation
		"BenchmarkD": {MinNsPerOp: 99}, // new, no baseline: skipped
	}
	names := []string{"BenchmarkA", "BenchmarkB", "BenchmarkC", "BenchmarkD"}
	got := gateViolations(old, cur, names, 50)
	if len(got) != 2 {
		t.Fatalf("got %d violations %v, want 2", len(got), got)
	}
	// Improvements never trip the gate, whatever the magnitude.
	fast := map[string]Sample{"BenchmarkA": {MinNsPerOp: 10}}
	if v := gateViolations(old, fast, []string{"BenchmarkA"}, 50); len(v) != 0 {
		t.Fatalf("improvement flagged as regression: %v", v)
	}
}

func TestGateViolationsAllocs(t *testing.T) {
	old := map[string]Sample{
		"BenchmarkZero":  {MinNsPerOp: 1000, AllocsPerOp: 0},
		"BenchmarkSome":  {MinNsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkSome2": {MinNsPerOp: 1000, AllocsPerOp: 100},
	}
	cur := map[string]Sample{
		// A zero-alloc baseline is an exact pin: even a fractional mean
		// (one alloc in some -count repetitions) is a violation.
		"BenchmarkZero":  {MinNsPerOp: 1000, AllocsPerOp: 0.2},
		"BenchmarkSome":  {MinNsPerOp: 1000, AllocsPerOp: 140}, // +40%: inside a 50% limit
		"BenchmarkSome2": {MinNsPerOp: 1000, AllocsPerOp: 160}, // +60%: regression
	}
	names := []string{"BenchmarkZero", "BenchmarkSome", "BenchmarkSome2"}
	got := gateViolations(old, cur, names, 50)
	if len(got) != 2 {
		t.Fatalf("got %d violations %v, want 2", len(got), got)
	}
	if !strings.Contains(got[0], "pinned at 0") {
		t.Errorf("zero-alloc violation %q does not name the pin", got[0])
	}
	// Exactly zero stays clean, and fewer allocs never trips.
	clean := map[string]Sample{
		"BenchmarkZero": {MinNsPerOp: 1000, AllocsPerOp: 0},
		"BenchmarkSome": {MinNsPerOp: 1000, AllocsPerOp: 10},
	}
	if v := gateViolations(old, clean, []string{"BenchmarkZero", "BenchmarkSome"}, 50); len(v) != 0 {
		t.Fatalf("clean allocs flagged: %v", v)
	}
}

func TestGateAllocsOnlyEntries(t *testing.T) {
	if name, ok := gateName("BenchmarkX/slots=10@allocs"); name != "BenchmarkX/slots=10" || !ok {
		t.Fatalf("gateName = %q, %v", name, ok)
	}
	if name, ok := gateName("BenchmarkX"); name != "BenchmarkX" || ok {
		t.Fatalf("gateName = %q, %v", name, ok)
	}
	old := map[string]Sample{"BenchmarkMicro": {MinNsPerOp: 900, AllocsPerOp: 0}}
	// A 3x ns/op swing on an @allocs entry is ignored — sub-microsecond
	// kernels cannot be timed reliably at -benchtime 5x — but a single
	// allocation still trips the zero pin.
	noisy := map[string]Sample{"BenchmarkMicro": {MinNsPerOp: 2700, AllocsPerOp: 0}}
	if v := gateViolations(old, noisy, []string{"BenchmarkMicro@allocs"}, 50); len(v) != 0 {
		t.Fatalf("@allocs entry tripped the ns gate: %v", v)
	}
	leaky := map[string]Sample{"BenchmarkMicro": {MinNsPerOp: 900, AllocsPerOp: 1}}
	if v := gateViolations(old, leaky, []string{"BenchmarkMicro@allocs"}, 50); len(v) != 1 {
		t.Fatalf("@allocs entry missed the zero-alloc pin: %v", v)
	}
	// The suffix never leaks into the -bench pattern.
	if p := gatePattern([]string{"BenchmarkMicro@allocs"}); p != "^(BenchmarkMicro)$" {
		t.Fatalf("gatePattern = %q", p)
	}
}

func TestSplitGate(t *testing.T) {
	got := splitGate(" BenchmarkA, ,BenchmarkB,")
	if len(got) != 2 || got[0] != "BenchmarkA" || got[1] != "BenchmarkB" {
		t.Fatalf("splitGate = %v", got)
	}
	if got := splitGate(""); got != nil {
		t.Fatalf("splitGate(empty) = %v, want nil", got)
	}
}

func TestGateGroups(t *testing.T) {
	// Mixed-depth gates split by depth, shallow first: go test only
	// times benchmarks as deep as the pattern, so a flat gate under a
	// two-level pattern would run in discovery mode and report nothing.
	groups := gateGroups([]string{
		"BenchmarkA",
		"BenchmarkSub/jobs=10000",
		"BenchmarkB",
		"BenchmarkSub2/segs=500",
	})
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(groups), groups)
	}
	if got := strings.Join(groups[0], ","); got != "BenchmarkA,BenchmarkB" {
		t.Errorf("depth-0 group %q", got)
	}
	if got := strings.Join(groups[1], ","); got != "BenchmarkSub/jobs=10000,BenchmarkSub2/segs=500" {
		t.Errorf("depth-1 group %q", got)
	}
	// Uniform depth stays a single group.
	if g := gateGroups([]string{"BenchmarkA", "BenchmarkB"}); len(g) != 1 {
		t.Errorf("flat names split into %d groups", len(g))
	}
}

func TestGatePattern(t *testing.T) {
	// Flat names collapse to the single-level alternation.
	flat := gatePattern([]string{"BenchmarkA", "BenchmarkB"})
	if flat != "^(BenchmarkA|BenchmarkB)$" {
		t.Fatalf("flat pattern %q", flat)
	}
	// Sub-benchmark names contribute one alternation per "/" level —
	// never a "/" inside a quoted name, which go test would split.
	subs := gatePattern([]string{
		"BenchmarkSub/jobs=10000",
		"BenchmarkSub2/jobs=10000",
		"BenchmarkSub2/segs=500",
	})
	want := `^(BenchmarkSub|BenchmarkSub2)$/^(jobs=10000|segs=500)$`
	if subs != want {
		t.Fatalf("sub-benchmark pattern %q, want %q", subs, want)
	}
	// The per-level regexps must actually match the components.
	lvl0 := strings.Split(subs, "/")[0]
	for _, name := range []string{"BenchmarkSub", "BenchmarkSub2"} {
		ok, err := regexp.MatchString(lvl0, name)
		if err != nil || !ok {
			t.Fatalf("level-0 pattern %q does not match %q (err %v)", lvl0, name, err)
		}
	}
}

func TestDefaultGateNamesExistInSuite(t *testing.T) {
	// The default gate must name real benchmarks: every entry has to
	// appear in the repository bench suite, or the gate silently skips.
	// Sub-benchmark entries check the parent declaration plus the
	// b.Run name prefix (sub names are produced via fmt.Sprintf).
	data, err := os.ReadFile(filepath.Join("..", "..", "bench_test.go"))
	if err != nil {
		t.Skipf("bench suite not readable: %v", err)
	}
	for _, entry := range splitGate(defaultGate) {
		name, _ := gateName(entry)
		parts := strings.SplitN(name, "/", 2)
		decl := "func " + parts[0] + "(b *testing.B)"
		if !strings.Contains(string(data), decl) {
			t.Errorf("default gate names %s, but %q not found in bench_test.go", name, decl)
		}
		if len(parts) == 2 {
			prefix, _, ok := strings.Cut(parts[1], "=")
			if !ok {
				t.Errorf("gate sub-benchmark %s has no key=value form", name)
				continue
			}
			if !strings.Contains(string(data), `"`+prefix+`=`) {
				t.Errorf("default gate names %s, but no b.Run name %q in bench_test.go", name, prefix+"=…")
			}
		}
	}
}
