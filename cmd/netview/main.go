// Command netview generates network topologies and prints statistics
// or Graphviz DOT for inspection.
//
// Usage:
//
//	netview -kind cluster -procs 32
//	netview -kind mesh -rows 4 -cols 4 -dot > mesh.dot
//	netview -kind cluster -procs 16 -hetero
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/graphio"
	"repro/internal/network"
	"repro/internal/trace"
)

func main() {
	var (
		kind   = flag.String("kind", "cluster", "topology: cluster, fully, ring, line, star, bus, mesh, torus, hypercube, fattree, torus3d, tree, dumbbell, dragonfly, butterfly")
		procs  = flag.Int("procs", 16, "number of processors")
		rows   = flag.Int("rows", 4, "mesh/torus rows")
		cols   = flag.Int("cols", 4, "mesh/torus columns")
		dim    = flag.Int("dim", 3, "hypercube dimension")
		hetero = flag.Bool("hetero", false, "heterogeneous speeds U(1,10)")
		seed   = flag.Int64("seed", 1, "random seed")
		dot    = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
		asJSON = flag.Bool("json", false, "emit the topology as JSON (loadable by schedview -net)")
	)
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	proc := network.Uniform(1)
	link := network.Uniform(1)
	if *hetero {
		proc = network.UniformRange(r, 1, 10)
		link = network.UniformRange(r, 1, 10)
	}
	var t *network.Topology
	switch strings.ToLower(*kind) {
	case "cluster":
		t = network.RandomCluster(r, network.RandomClusterParams{
			Processors: *procs, ProcSpeed: proc, LinkSpeed: link})
	case "fully":
		t = network.FullyConnected(*procs, proc, link)
	case "ring":
		t = network.Ring(*procs, proc, link)
	case "line":
		t = network.Line(*procs, proc, link)
	case "star":
		t = network.Star(*procs, proc, link)
	case "bus":
		t = network.Bus(*procs, proc, 1)
	case "mesh":
		t = network.Mesh2D(*rows, *cols, proc, link)
	case "torus":
		t = network.Torus2D(*rows, *cols, proc, link)
	case "hypercube":
		t = network.Hypercube(*dim, proc, link)
	case "fattree":
		t = network.FatTree(4, (*procs+3)/4, proc, link)
	case "torus3d":
		t = network.Torus3D(*rows, *cols, *dim, proc, link)
	case "tree":
		t = network.SwitchTree(2, *dim, (*procs+3)/4, proc, link)
	case "dumbbell":
		t = network.Dumbbell(*procs/2, *procs-*procs/2, proc, link, 1)
	case "dragonfly":
		t = network.Dragonfly(*dim, (*procs+*dim-1)/(*dim), proc, link, link)
	case "butterfly":
		t = network.ButterflyNet(*dim, proc, link)
	default:
		fatal(fmt.Errorf("unknown topology kind %q", *kind))
	}
	if err := t.Validate(); err != nil {
		fatal(err)
	}
	if *dot {
		if err := trace.WriteTopologyDOT(os.Stdout, t); err != nil {
			fatal(err)
		}
		return
	}
	if *asJSON {
		if err := graphio.WriteTopology(os.Stdout, t); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println(t)
	fmt.Printf("mean link speed (MLS) = %.4g\n", t.MeanLinkSpeed())
	// Route-length statistics between the first few processor pairs.
	ps := t.Processors()
	var totalHops, pairs int
	for i := 0; i < len(ps) && i < 8; i++ {
		for j := 0; j < len(ps) && j < 8; j++ {
			if i == j {
				continue
			}
			route, err := t.BFSRoute(ps[i], ps[j])
			if err != nil {
				fatal(err)
			}
			totalHops += len(route)
			pairs++
		}
	}
	if pairs > 0 {
		fmt.Printf("mean BFS route length over %d sampled pairs = %.2f links\n",
			pairs, float64(totalHops)/float64(pairs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netview:", err)
	os.Exit(1)
}
