// Command dagview generates task graphs and prints statistics or
// Graphviz DOT for inspection.
//
// Usage:
//
//	dagview -kind random -tasks 50 -ccr 2
//	dagview -kind fft -size 3 -dot > fft.dot
//	dagview -kind gauss -size 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/dag"
	"repro/internal/graphio"
	"repro/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "random", "graph kind: random, chain, forkjoin, diamond, intree, outtree, fft, gauss, laplace, stencil, lu, cholesky, divconq, mapreduce, sp, montage, epigenomics")
		tasks    = flag.Int("tasks", 50, "tasks for random graphs")
		size     = flag.Int("size", 4, "size parameter: chain length, fork width, tree depth, fft log2 points, matrix n, grid n")
		degree   = flag.Int("degree", 2, "tree degree")
		taskCost = flag.Float64("task-cost", 10, "task cost for regular graphs")
		edgeCost = flag.Float64("edge-cost", 10, "edge cost for regular graphs")
		ccr      = flag.Float64("ccr", 0, "rescale edge costs to this CCR (0 = keep)")
		seed     = flag.Int64("seed", 1, "random seed")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
		asJSON   = flag.Bool("json", false, "emit the graph as JSON (loadable by schedview -dag)")
	)
	flag.Parse()

	var g *dag.Graph
	switch strings.ToLower(*kind) {
	case "random":
		r := rand.New(rand.NewSource(*seed))
		g = dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    *tasks,
			TaskCost: dag.CostDist{Lo: 1, Hi: 1000},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 1000},
		})
	case "chain":
		g = dag.Chain(*size, *taskCost, *edgeCost)
	case "forkjoin":
		g = dag.ForkJoin(*size, *taskCost, *edgeCost)
	case "diamond":
		g = dag.Diamond(*taskCost, *edgeCost)
	case "intree":
		g = dag.InTree(*degree, *size, *taskCost, *edgeCost)
	case "outtree":
		g = dag.OutTree(*degree, *size, *taskCost, *edgeCost)
	case "fft":
		g = dag.FFT(*size, *taskCost, *edgeCost)
	case "gauss":
		g = dag.GaussianElimination(*size, *taskCost, *edgeCost)
	case "laplace":
		g = dag.Laplace(*size, *taskCost, *edgeCost)
	case "stencil":
		g = dag.Stencil(*size, *size, *taskCost, *edgeCost)
	case "lu":
		g = dag.LU(*size, *taskCost, *edgeCost)
	case "cholesky":
		g = dag.Cholesky(*size, *taskCost, *edgeCost)
	case "divconq":
		g = dag.DivideConquer(*size, *taskCost, *taskCost, *taskCost, *edgeCost)
	case "mapreduce":
		g = dag.MapReduce(*size, (*size+1)/2, *taskCost, *taskCost, *edgeCost)
	case "montage":
		g = dag.Montage(*size, *taskCost, *edgeCost)
	case "epigenomics":
		g = dag.Epigenomics(*size, *size, *taskCost, *edgeCost)
	case "sp":
		r := rand.New(rand.NewSource(*seed))
		g = dag.RandomSeriesParallel(r, *size,
			dag.CostDist{Lo: 1, Hi: 1000}, dag.CostDist{Lo: 1, Hi: 1000})
	default:
		fatal(fmt.Errorf("unknown graph kind %q", *kind))
	}
	if *ccr > 0 {
		g.ScaleToCCR(*ccr)
	}
	if err := g.Validate(); err != nil {
		fatal(err)
	}
	if *dot {
		if err := trace.WriteDAGDOT(os.Stdout, g); err != nil {
			fatal(err)
		}
		return
	}
	if *asJSON {
		if err := graphio.WriteGraph(os.Stdout, g); err != nil {
			fatal(err)
		}
		return
	}
	cp, err := g.CriticalPathLength()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s graph: %v\n", *kind, g)
	fmt.Printf("sources=%d sinks=%d\n", len(g.Sources()), len(g.Sinks()))
	fmt.Printf("total computation=%.4g total communication=%.4g\n", g.TotalTaskCost(), g.TotalEdgeCost())
	fmt.Printf("critical path (incl. communication)=%.4g\n", cp)
	order, err := g.PriorityOrder()
	if err != nil {
		fatal(err)
	}
	n := len(order)
	if n > 10 {
		n = 10
	}
	fmt.Printf("first %d tasks by priority: %v\n", n, order[:n])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagview:", err)
	os.Exit(1)
}
