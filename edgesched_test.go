package edgesched_test

import (
	"bytes"
	"strings"
	"testing"

	edgesched "repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	g := edgesched.NewGraph()
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 20)
	c := g.AddTask("c", 20)
	d := g.AddTask("d", 10)
	g.AddEdge(a, b, 15)
	g.AddEdge(a, c, 15)
	g.AddEdge(b, d, 15)
	g.AddEdge(c, d, 15)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	net := edgesched.Star(3, edgesched.Uniform(1), edgesched.Uniform(1))
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []edgesched.Algorithm{
		edgesched.BA(), edgesched.BASinnen(), edgesched.OIHSA(),
		edgesched.BBSA(), edgesched.ClassicReplay(),
	} {
		s, err := alg.Schedule(g, net)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := edgesched.Verify(s); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if s.Makespan < 60 { // critical path a+b+d = 40 plus any comm; serial = 60
			t.Logf("%s: makespan %.1f", alg.Name(), s.Makespan)
		}
	}
}

func TestFacadeExports(t *testing.T) {
	var buf bytes.Buffer
	g := edgesched.Diamond(5, 5)
	if err := edgesched.WriteDAGDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Error("DAG DOT broken")
	}
	buf.Reset()
	net := edgesched.Ring(4, edgesched.Uniform(1), edgesched.Uniform(1))
	if err := edgesched.WriteTopologyDOT(&buf, net); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph topology") {
		t.Error("topology DOT broken")
	}

	s, err := edgesched.BA().Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := edgesched.Verify(s); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := edgesched.WriteGantt(&buf, s, 50, true); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := edgesched.WriteScheduleJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := edgesched.WriteScheduleCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWorkloadAndFigure(t *testing.T) {
	inst := edgesched.GenerateInstance(edgesched.WorkloadParams{
		Processors: 4, CCR: 1, MinTasks: 30, MaxTasks: 30, Seed: 3,
	})
	if inst.Graph.NumTasks() != 30 || inst.Net.NumProcessors() != 4 {
		t.Fatalf("instance shape wrong")
	}
	sw, err := edgesched.Figure(1, edgesched.ExperimentConfig{
		Reps: 1, Seed: 1, MinTasks: 30, MaxTasks: 30,
		Procs: []int{4}, CCRs: []float64{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 1 {
		t.Fatalf("points %d", len(sw.Points))
	}
	full := edgesched.PaperConfig(false)
	if len(full.CCRs) != 19 {
		t.Fatalf("paper config CCRs %d", len(full.CCRs))
	}
}

func TestFacadeGenerators(t *testing.T) {
	graphs := []*edgesched.Graph{
		edgesched.Chain(4, 1, 1),
		edgesched.ForkJoin(3, 1, 1),
		edgesched.Diamond(1, 1),
		edgesched.InTree(2, 2, 1, 1),
		edgesched.OutTree(2, 2, 1, 1),
		edgesched.FFT(2, 1, 1),
		edgesched.GaussianElimination(4, 1, 1),
		edgesched.Laplace(3, 1, 1),
		edgesched.Stencil(3, 3, 1, 1),
	}
	for i, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("graph %d: %v", i, err)
		}
	}
	topos := []*edgesched.Topology{
		edgesched.FullyConnected(3, edgesched.Uniform(1), edgesched.Uniform(1)),
		edgesched.Line(3, edgesched.Uniform(1), edgesched.Uniform(1)),
		edgesched.Bus(3, edgesched.Uniform(1), 1),
		edgesched.Mesh2D(2, 2, edgesched.Uniform(1), edgesched.Uniform(1)),
		edgesched.Torus2D(3, 3, edgesched.Uniform(1), edgesched.Uniform(1)),
		edgesched.Hypercube(2, edgesched.Uniform(1), edgesched.Uniform(1)),
		edgesched.FatTree(2, 2, edgesched.Uniform(1), edgesched.Uniform(1)),
	}
	for i, top := range topos {
		if err := top.Validate(); err != nil {
			t.Errorf("topology %d: %v", i, err)
		}
	}
}

func TestFacadeCustomOptions(t *testing.T) {
	g := edgesched.Diamond(10, 10)
	net := edgesched.Line(2, edgesched.Uniform(1), edgesched.Uniform(1))
	alg := edgesched.Custom("mine", edgesched.Options{})
	s, err := alg.Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	if s.Algorithm != "mine" {
		t.Errorf("algorithm name %q", s.Algorithm)
	}
	if err := edgesched.Verify(s); err != nil {
		t.Fatal(err)
	}
}
