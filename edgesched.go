// Package edgesched is a contention-aware task scheduling library for
// parallel and distributed systems, reproducing Han & Wang, "Edge
// Scheduling Algorithms in Parallel and Distributed Systems"
// (ICPP 2006).
//
// Unlike the classic model — fully connected processors with unlimited
// concurrent communication — this library schedules every
// communication (DAG edge) onto the links of an explicit network
// topology, honouring link exclusivity (or fractional bandwidth) and
// the link causality condition of cut-through routing. It provides:
//
//   - BA: the baseline Basic Algorithm (BFS minimal routing, basic
//     insertion on links).
//   - OIHSA: Optimal Insertion Hybrid Scheduling Algorithm — modified
//     Dijkstra routing over current link workload, costliest-edge-first
//     ordering, and optimal slot insertion that defers already-placed
//     communications within their causality slack.
//   - BBSA: Bandwidth Based Scheduling Algorithm — transfers share
//     link bandwidth fractionally, with downstream links forwarding
//     chunks no faster than they arrive.
//
// The package is a thin facade over the implementation packages:
// internal/dag (task graphs), internal/network (topologies and
// routing), internal/linksched (link timelines), internal/sched (the
// algorithms), internal/verify (schedule validation),
// internal/workload and internal/experiment (the paper's evaluation).
//
// # Quick start
//
//	g := edgesched.NewGraph()
//	a := g.AddTask("a", 10)
//	b := g.AddTask("b", 20)
//	g.AddEdge(a, b, 100)
//
//	net := edgesched.Star(4, edgesched.Uniform(1), edgesched.Uniform(1))
//
//	s, err := edgesched.OIHSA().Schedule(g, net)
//	if err != nil { ... }
//	fmt.Println(s.Makespan)
package edgesched

import (
	"io"

	"repro/internal/analysis"
	"repro/internal/dag"
	"repro/internal/experiment"
	"repro/internal/graphio"
	"repro/internal/network"
	"repro/internal/refine"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/workload"
)

// Task graph types.
type (
	// Graph is a weighted directed acyclic task graph.
	Graph = dag.Graph
	// TaskID identifies a task within a Graph.
	TaskID = dag.TaskID
	// EdgeID identifies a communication edge within a Graph.
	EdgeID = dag.EdgeID
	// CostDist is a uniform integer cost distribution U(Lo, Hi).
	CostDist = dag.CostDist
)

// Network types.
type (
	// Topology is the network graph of processors, switches and links.
	Topology = network.Topology
	// NodeID identifies a network node.
	NodeID = network.NodeID
	// LinkID identifies a link or hyperedge.
	LinkID = network.LinkID
	// Route is the ordered list of links a communication traverses.
	Route = network.Route
	// SpeedFn supplies speeds to topology builders.
	SpeedFn = network.SpeedFn
	// ClusterParams parameterizes RandomCluster.
	ClusterParams = network.RandomClusterParams
	// LayeredParams parameterizes RandomLayered.
	LayeredParams = dag.RandomLayeredParams
)

// Scheduling types.
type (
	// Algorithm is the common scheduler interface.
	Algorithm = sched.Algorithm
	// Schedule is a complete scheduling result.
	Schedule = sched.Schedule
	// TaskPlacement is one task's scheduled execution.
	TaskPlacement = sched.TaskPlacement
	// EdgeSchedule is one edge's scheduled communication.
	EdgeSchedule = sched.EdgeSchedule
	// Options selects the policies of the unified list scheduler.
	Options = sched.Options
	// RouteCache memoizes BFS routes; share one across runs (via
	// Options.RouteCache) to amortize static route work.
	RouteCache = network.RouteCache
)

// Serving types.
type (
	// Engine is a long-lived, concurrency-safe scheduling engine
	// serving many DAGs against one shared topology.
	Engine = sched.Engine
	// EngineOptions configures an Engine.
	EngineOptions = sched.EngineOptions
	// EngineStats is a snapshot of an Engine's counters.
	EngineStats = sched.EngineStats
)

// NewEngine builds a scheduling engine serving the given policies
// against one immutable topology.
func NewEngine(net *Topology, opts EngineOptions) (*Engine, error) {
	return sched.NewEngine(net, opts)
}

// NewRouteCache returns a route cache for sharing across Schedule runs.
func NewRouteCache(capacity int) *RouteCache { return network.NewRouteCache(capacity) }

// DiffSchedules reports the first difference between two schedules
// ("" when bit-identical); exact comparison, for determinism checks.
func DiffSchedules(a, b *Schedule) string { return sched.DiffSchedules(a, b) }

// NewGraph returns an empty task graph.
func NewGraph() *Graph { return dag.New() }

// NewTopology returns an empty network topology.
func NewTopology() *Topology { return network.NewTopology() }

// BA returns the baseline Basic Algorithm.
func BA() Algorithm { return sched.NewBA() }

// BASinnen returns the strong-baseline Basic Algorithm variant with
// tentative contention-aware earliest-finish processor selection.
func BASinnen() Algorithm { return sched.NewBASinnen() }

// OIHSA returns the Optimal Insertion Hybrid Scheduling Algorithm.
func OIHSA() Algorithm { return sched.NewOIHSA() }

// BBSA returns the Bandwidth Based Scheduling Algorithm.
func BBSA() Algorithm { return sched.NewBBSA() }

// DLS returns contention-aware Dynamic Level Scheduling.
func DLS() Algorithm { return sched.NewDLS() }

// CPOP returns contention-aware Critical-Path-On-a-Processor.
func CPOP() Algorithm { return sched.NewCPOP() }

// Classic returns the contention-free ideal-model list scheduler.
func Classic() Algorithm { return sched.NewClassic() }

// ClassicReplay returns the scheduler that replays the ideal-model
// assignment on the real network under contention.
func ClassicReplay() Algorithm { return sched.NewClassicReplay() }

// Custom returns a list scheduler with explicit policy options.
func Custom(name string, opts Options) Algorithm { return sched.NewCustom(name, opts) }

// Topology builders.
var (
	// Uniform returns a SpeedFn yielding a constant speed.
	Uniform = network.Uniform
	// UniformRange returns a SpeedFn drawing integer speeds uniformly.
	UniformRange = network.UniformRange
	// FullyConnected builds a complete processor graph.
	FullyConnected = network.FullyConnected
	// Ring builds a duplex processor ring.
	Ring = network.Ring
	// Line builds a duplex processor chain.
	Line = network.Line
	// Star builds processors around one switch.
	Star = network.Star
	// Bus builds processors sharing one hyperedge.
	Bus = network.Bus
	// Mesh2D builds a processor mesh.
	Mesh2D = network.Mesh2D
	// Torus2D builds a processor torus.
	Torus2D = network.Torus2D
	// Hypercube builds a processor hypercube.
	Hypercube = network.Hypercube
	// FatTree builds a two-level switch tree.
	FatTree = network.FatTree
	// RandomCluster builds the paper's random switched WAN.
	RandomCluster = network.RandomCluster
	// Torus3D builds a 3-D processor torus.
	Torus3D = network.Torus3D
	// SwitchTree builds a k-ary multilevel switch tree.
	SwitchTree = network.SwitchTree
	// Dumbbell builds two clusters joined by a single trunk.
	Dumbbell = network.Dumbbell
	// Dragonfly builds a simplified dragonfly network.
	Dragonfly = network.Dragonfly
	// ButterflyNet builds a k-stage butterfly indirect network.
	ButterflyNet = network.ButterflyNet
)

// Graph generators.
var (
	// RandomLayered builds a random layered DAG.
	RandomLayered = dag.RandomLayered
	// Chain builds a linear task chain.
	Chain = dag.Chain
	// ForkJoin builds a fork-join graph.
	ForkJoin = dag.ForkJoin
	// Diamond builds the 4-task diamond.
	Diamond = dag.Diamond
	// InTree builds a reduction tree.
	InTree = dag.InTree
	// OutTree builds a fan-out tree.
	OutTree = dag.OutTree
	// FFT builds a radix-2 FFT butterfly graph.
	FFT = dag.FFT
	// GaussianElimination builds a Gaussian-elimination graph.
	GaussianElimination = dag.GaussianElimination
	// Laplace builds a 2-D wavefront graph.
	Laplace = dag.Laplace
	// Stencil builds a layered 1-D stencil graph.
	Stencil = dag.Stencil
	// LU builds a tiled LU-decomposition graph.
	LU = dag.LU
	// Cholesky builds a tiled Cholesky-factorization graph.
	Cholesky = dag.Cholesky
	// DivideConquer builds a split/compute/merge recursion graph.
	DivideConquer = dag.DivideConquer
	// MapReduce builds an all-to-all shuffle graph.
	MapReduce = dag.MapReduce
	// RandomSeriesParallel builds a random series-parallel workflow.
	RandomSeriesParallel = dag.RandomSeriesParallel
	// Montage builds a Montage-style astronomy workflow.
	Montage = dag.Montage
	// Epigenomics builds an Epigenomics-style pipeline workflow.
	Epigenomics = dag.Epigenomics
)

// Verify checks every invariant of the edge-scheduling model against
// the schedule and returns nil if it is valid.
func Verify(s *Schedule) error { return verify.Verify(s).Err() }

// AnalysisReport is the quantitative diagnosis of a schedule: speedup,
// lower bounds, utilizations, contention delays, and the critical
// chain pinning the makespan.
type AnalysisReport = analysis.Report

// Analyze computes the full analysis report for a schedule.
func Analyze(s *Schedule) *AnalysisReport { return analysis.Analyze(s) }

// WriteAnalysis renders an analysis report as readable text.
func WriteAnalysis(w io.Writer, r *AnalysisReport) error { return analysis.WriteReport(w, r) }

// ScheduleComparison quantifies how two schedules of one instance
// differ (moved tasks, rerouted edges, load shift).
type ScheduleComparison = analysis.Comparison

// CompareSchedules computes the comparison of two schedules of the
// same graph and network.
func CompareSchedules(a, b *Schedule) (*ScheduleComparison, error) { return analysis.Compare(a, b) }

// WriteComparison renders a schedule comparison as readable text.
func WriteComparison(w io.Writer, c *ScheduleComparison) error {
	return analysis.WriteComparison(w, c)
}

// WriteHTMLReport renders a self-contained HTML report of the
// schedule: headline metrics, inline SVG Gantt, utilizations, and the
// critical-chain analysis.
func WriteHTMLReport(w io.Writer, s *Schedule) error { return trace.WriteHTMLReport(w, s) }

// WriteGantt renders the schedule as a text Gantt chart. With links
// set, per-link occupation rows are included.
func WriteGantt(w io.Writer, s *Schedule, width int, links bool) error {
	return trace.WriteGantt(w, s, trace.GanttOptions{Width: width, Links: links})
}

// WriteGanttSVG renders the schedule as a self-contained SVG Gantt
// chart; with links set, per-link occupation rows are included.
func WriteGanttSVG(w io.Writer, s *Schedule, width int, links bool) error {
	return trace.WriteGanttSVG(w, s, trace.SVGOptions{Width: width, Links: links})
}

// WriteScheduleJSON dumps the schedule as indented JSON.
func WriteScheduleJSON(w io.Writer, s *Schedule) error { return trace.WriteScheduleJSON(w, s) }

// WriteScheduleCSV dumps the schedule's events as CSV.
func WriteScheduleCSV(w io.Writer, s *Schedule) error { return trace.WriteScheduleCSV(w, s) }

// WriteDAGDOT renders a task graph in Graphviz DOT.
func WriteDAGDOT(w io.Writer, g *Graph) error { return trace.WriteDAGDOT(w, g) }

// WriteTopologyDOT renders a topology in Graphviz DOT.
func WriteTopologyDOT(w io.Writer, t *Topology) error { return trace.WriteTopologyDOT(w, t) }

// Experiment facade.
type (
	// ExperimentConfig controls a figure or ablation sweep.
	ExperimentConfig = experiment.Config
	// Sweep is a completed figure.
	Sweep = experiment.Sweep
	// WorkloadParams describes one §6 instance.
	WorkloadParams = workload.Params
	// Instance is one generated problem.
	Instance = workload.Instance
)

// Figure regenerates one of the paper's figures (1–4).
func Figure(n int, cfg ExperimentConfig) (*Sweep, error) { return experiment.Figure(n, cfg) }

// PaperConfig returns the full-scale §6 sweep configuration.
func PaperConfig(heterogeneous bool) ExperimentConfig {
	return experiment.PaperConfig(heterogeneous)
}

// GenerateInstance builds one reproducible §6 problem instance.
func GenerateInstance(p WorkloadParams) Instance { return workload.Generate(p) }

// Refinement facade.
type (
	// RefineOptions configures the iterated local search.
	RefineOptions = refine.Options
	// RefineStats reports what the search did.
	RefineStats = refine.Stats
)

// Refine improves a schedule by iterated local search over the
// task-to-processor assignment. The result is never worse than the
// base algorithm's schedule.
func Refine(g *Graph, net *Topology, opt RefineOptions) (*Schedule, RefineStats, error) {
	return refine.Refine(g, net, opt)
}

// Metaheuristic refiner option types.
type (
	// SAOptions configures the simulated-annealing refiner.
	SAOptions = refine.SAOptions
	// GAOptions configures the genetic refiner.
	GAOptions = refine.GAOptions
)

// Anneal refines an assignment by simulated annealing.
func Anneal(g *Graph, net *Topology, opt SAOptions) (*Schedule, RefineStats, error) {
	return refine.Anneal(g, net, opt)
}

// Evolve refines an assignment with a genetic algorithm.
func Evolve(g *Graph, net *Topology, opt GAOptions) (*Schedule, RefineStats, error) {
	return refine.Evolve(g, net, opt)
}

// ScheduleAssignment schedules the graph with a fixed task-to-processor
// assignment under the given policies.
func ScheduleAssignment(g *Graph, net *Topology, assign []NodeID, opts Options, name string) (*Schedule, error) {
	return sched.ScheduleAssignment(g, net, assign, opts, name)
}

// Graph and topology persistence (JSON).
var (
	// WriteGraphJSON serializes a task graph as JSON.
	WriteGraphJSON = graphio.WriteGraph
	// ReadGraphJSON parses and validates a task graph from JSON.
	ReadGraphJSON = graphio.ReadGraph
	// WriteTopologyJSON serializes a topology as JSON.
	WriteTopologyJSON = graphio.WriteTopology
	// ReadTopologyJSON parses and validates a topology from JSON.
	ReadTopologyJSON = graphio.ReadTopology
)
