package edgesched_test

import (
	"fmt"
	"os"

	edgesched "repro"
)

// ExampleOIHSA schedules a two-task pipeline on a two-processor
// machine and prints the verified makespan.
func ExampleOIHSA() {
	g := edgesched.NewGraph()
	a := g.AddTask("produce", 10)
	b := g.AddTask("consume", 10)
	g.AddEdge(a, b, 40)

	net := edgesched.Line(2, edgesched.Uniform(1), edgesched.Uniform(1))

	s, err := edgesched.OIHSA().Schedule(g, net)
	if err != nil {
		panic(err)
	}
	if err := edgesched.Verify(s); err != nil {
		panic(err)
	}
	// The 40-unit transfer is slower than just running both tasks
	// locally, so the scheduler keeps them on one processor.
	fmt.Println(s.Makespan)
	// Output: 20
}

// ExampleBBSA shows bandwidth sharing: two equal transfers leave one
// processor at the same time and may split the uplink.
func ExampleBBSA() {
	g := edgesched.NewGraph()
	src := g.AddTask("src", 2)
	l := g.AddTask("left", 1)
	r := g.AddTask("right", 1)
	g.AddEdge(src, l, 10)
	g.AddEdge(src, r, 10)

	net := edgesched.Star(3, edgesched.Uniform(1), edgesched.Uniform(1))
	s, err := edgesched.BBSA().Schedule(g, net)
	if err != nil {
		panic(err)
	}
	fmt.Println(edgesched.Verify(s) == nil)
	// Output: true
}

// ExampleVerify demonstrates that the verifier rejects a corrupted
// schedule.
func ExampleVerify() {
	g := edgesched.Diamond(10, 10)
	net := edgesched.Line(2, edgesched.Uniform(1), edgesched.Uniform(1))
	s, err := edgesched.BA().Schedule(g, net)
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", edgesched.Verify(s) == nil)

	s.Makespan *= 2 // corrupt it
	fmt.Println("corrupted detected:", edgesched.Verify(s) != nil)
	// Output:
	// valid: true
	// corrupted detected: true
}

// ExampleGenerateInstance builds a reproducible paper-style instance.
func ExampleGenerateInstance() {
	inst := edgesched.GenerateInstance(edgesched.WorkloadParams{
		Processors: 4,
		CCR:        2,
		MinTasks:   50,
		MaxTasks:   50,
		Seed:       1,
	})
	fmt.Println(inst.Graph.NumTasks(), inst.Net.NumProcessors())
	// Output: 50 4
}

// ExampleWriteGantt renders a small schedule as a text Gantt chart.
func ExampleWriteGantt() {
	g := edgesched.NewGraph()
	g.AddTask("only", 10)
	net := edgesched.Star(1, edgesched.Uniform(1), edgesched.Uniform(1))
	s, err := edgesched.BA().Schedule(g, net)
	if err != nil {
		panic(err)
	}
	if err := edgesched.WriteGantt(os.Stdout, s, 10, false); err != nil {
		panic(err)
	}
	// Output:
	// BA  makespan=10.00  (each cell = 1.00 time units)
	// P0       |0000000000|
}

// ExampleScheduleAssignment prices a hand-written placement.
func ExampleScheduleAssignment() {
	g := edgesched.NewGraph()
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.AddEdge(a, b, 10)
	net := edgesched.Line(2, edgesched.Uniform(1), edgesched.Uniform(1))
	procs := net.Processors()

	s, err := edgesched.ScheduleAssignment(g, net,
		[]edgesched.NodeID{procs[0], procs[1]}, edgesched.Options{}, "manual")
	if err != nil {
		panic(err)
	}
	// a: [0,10]; transfer: [10,20]; b: [20,30].
	fmt.Println(s.Makespan)
	// Output: 30
}
