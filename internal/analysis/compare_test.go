package analysis

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
)

func TestCompareIdenticalSchedules(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    30,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
	})
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	a := schedule(t, sched.NewOIHSA(), g, net)
	b := schedule(t, sched.NewOIHSA(), g, net)
	c, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.MovedTasks != 0 || c.ReroutedEdges != 0 || c.MeanStartShift != 0 ||
		c.ProcLoadShift != 0 || c.ImprovementPct != 0 {
		t.Fatalf("identical schedules compare as different: %+v", c)
	}
}

func TestCompareDifferentAlgorithms(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    40,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
	})
	net := network.RandomCluster(r, network.RandomClusterParams{
		Processors: 6, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
	a := schedule(t, sched.NewBA(), g, net)
	b := schedule(t, sched.NewOIHSA(), g, net)
	c, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * (a.Makespan - b.Makespan) / a.Makespan
	if math.Abs(c.ImprovementPct-want) > 1e-9 {
		t.Fatalf("improvement %v, want %v", c.ImprovementPct, want)
	}
	if c.RoutedA == 0 && c.RoutedB == 0 {
		t.Fatal("no routed edges in either schedule (degenerate instance)")
	}
	if c.ProcLoadShift < 0 || c.ProcLoadShift > 2+1e-9 {
		t.Fatalf("load shift %v outside [0,2]", c.ProcLoadShift)
	}
	var buf bytes.Buffer
	if err := WriteComparison(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "schedule comparison") {
		t.Fatal("comparison rendering broken")
	}
}

func TestCompareRejectsMismatchedInstances(t *testing.T) {
	g1 := dag.Chain(3, 10, 10)
	g2 := dag.Chain(4, 10, 10)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	a := schedule(t, sched.NewBA(), g1, net)
	b := schedule(t, sched.NewBA(), g2, net)
	if _, err := Compare(a, b); err == nil {
		t.Fatal("mismatched graphs accepted")
	}
}
