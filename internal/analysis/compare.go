package analysis

import (
	"fmt"
	"io"

	"repro/internal/network"
	"repro/internal/sched"
)

// Comparison quantifies how two schedules of the same graph on the
// same network differ — used to study what a refiner or an alternative
// policy actually changed.
type Comparison struct {
	NameA, NameB string
	MakespanA    float64
	MakespanB    float64
	// ImprovementPct is 100·(A−B)/A: positive when B is shorter.
	ImprovementPct float64
	// MovedTasks counts tasks placed on different processors.
	MovedTasks int
	// MeanStartShift is the mean |start_B − start_A| over all tasks.
	MeanStartShift float64
	// RoutedA/RoutedB count network-crossing edges in each schedule.
	RoutedA, RoutedB int
	// RerputedEdges counts edges whose route changed (among edges
	// routed in both schedules).
	ReroutedEdges int
	// ProcLoadShift is the total absolute difference in per-processor
	// busy time, normalized by total work (0 = identical load
	// distribution, 2 = completely disjoint).
	ProcLoadShift float64
}

// Compare computes the comparison of two schedules. It returns an
// error if the schedules are for different graphs or networks (by
// size; deep identity is the caller's responsibility).
func Compare(a, b *sched.Schedule) (*Comparison, error) {
	if a.Graph.NumTasks() != b.Graph.NumTasks() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		return nil, fmt.Errorf("analysis: schedules cover different graphs (%d/%d tasks)",
			a.Graph.NumTasks(), b.Graph.NumTasks())
	}
	if a.Net.NumNodes() != b.Net.NumNodes() {
		return nil, fmt.Errorf("analysis: schedules cover different networks")
	}
	c := &Comparison{
		NameA:     a.Algorithm,
		NameB:     b.Algorithm,
		MakespanA: a.Makespan,
		MakespanB: b.Makespan,
	}
	if a.Makespan > 0 {
		c.ImprovementPct = 100 * (a.Makespan - b.Makespan) / a.Makespan
	}
	shift := 0.0
	loadA := map[network.NodeID]float64{}
	loadB := map[network.NodeID]float64{}
	for i := range a.Tasks {
		ta, tb := a.Tasks[i], b.Tasks[i]
		if ta.Proc != tb.Proc {
			c.MovedTasks++
		}
		d := tb.Start - ta.Start
		if d < 0 {
			d = -d
		}
		shift += d
		loadA[ta.Proc] += ta.Finish - ta.Start
		loadB[tb.Proc] += tb.Finish - tb.Start
	}
	if n := len(a.Tasks); n > 0 {
		c.MeanStartShift = shift / float64(n)
	}
	// Sum in processor-list order: float addition over map iteration
	// would make totalWork (and ProcLoadShift) vary run to run.
	totalWork := 0.0
	for _, p := range a.Net.Processors() {
		totalWork += loadA[p]
	}
	if totalWork > 0 {
		diff := 0.0
		for _, p := range a.Net.Processors() {
			d := loadA[p] - loadB[p]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		c.ProcLoadShift = diff / totalWork
	}
	for i := range a.Edges {
		ea, eb := a.Edges[i], b.Edges[i]
		if ea != nil {
			c.RoutedA++
		}
		if eb != nil {
			c.RoutedB++
		}
		if ea != nil && eb != nil && !sameRoute(ea.Route, eb.Route) {
			c.ReroutedEdges++
		}
	}
	return c, nil
}

func sameRoute(a, b network.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteComparison renders the comparison as readable text.
func WriteComparison(w io.Writer, c *Comparison) error {
	_, err := fmt.Fprintf(w, `schedule comparison: %s -> %s
  makespan %.2f -> %.2f (%+.1f%%)
  moved tasks: %d   mean |start shift|: %.2f
  routed edges: %d -> %d (%d rerouted)
  processor load shift: %.1f%% of total work
`,
		c.NameA, c.NameB, c.MakespanA, c.MakespanB, c.ImprovementPct,
		c.MovedTasks, c.MeanStartShift,
		c.RoutedA, c.RoutedB, c.ReroutedEdges,
		100*c.ProcLoadShift)
	return err
}
