// Package analysis computes quantitative diagnostics of a schedule:
// speedup and efficiency against serial execution, lower bounds on the
// achievable makespan, per-resource utilization, contention delays of
// the routed communications, and the schedule's critical chain (the
// sequence of tasks, transfers, and waits that pins the makespan).
package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/fptime"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Report is the full analysis of one schedule.
type Report struct {
	Algorithm string
	Makespan  float64

	// SerialTime is the best single-processor execution time: total
	// work divided by the fastest processor's speed.
	SerialTime float64
	// Speedup is SerialTime / Makespan.
	Speedup float64
	// Efficiency is Speedup / #processors.
	Efficiency float64

	// CPBound is the critical-path lower bound: the longest
	// computation-only path executed at the fastest processor speed.
	// No schedule on this machine can beat it.
	CPBound float64
	// WorkBound is the work lower bound: total work divided by the
	// aggregate processing speed.
	WorkBound float64

	// ProcUtil summarizes per-processor busy fractions of [0, makespan].
	ProcUtil stats.Summary
	// LinkUtil summarizes per-used-link busy fractions.
	LinkUtil stats.Summary
	// BusiestLink identifies the most loaded link (-1 if none used).
	BusiestLink     network.LinkID
	BusiestLinkUtil float64

	// RoutedEdges is the number of communications that crossed the
	// network; ContentionDelay summarizes, for each of them,
	// arrival − base − bottleneck transfer time: the extra time caused
	// by contention, routing detours, and hop/switching rules.
	RoutedEdges     int
	ContentionDelay stats.Summary
	// WorstDelays lists the (up to) ten most-delayed communications.
	WorstDelays []EdgeDelay

	// CriticalChain is the blocking chain ending at the task that
	// finishes last, in execution order.
	CriticalChain []ChainLink
	// ChainBreakdown sums the chain's time by category.
	ChainBreakdown Breakdown
}

// ChainKind categorizes a segment of the critical chain.
type ChainKind int

const (
	// ChainCompute is a task execution.
	ChainCompute ChainKind = iota
	// ChainComm is a communication transfer (base to arrival).
	ChainComm
	// ChainProcWait is time a task waited for its processor to free up.
	ChainProcWait
	// ChainIdle is unattributed wait (e.g. ready-time gaps).
	ChainIdle
)

func (k ChainKind) String() string {
	switch k {
	case ChainCompute:
		return "compute"
	case ChainComm:
		return "comm"
	case ChainProcWait:
		return "proc-wait"
	case ChainIdle:
		return "idle"
	}
	return fmt.Sprintf("ChainKind(%d)", int(k))
}

// ChainLink is one segment of the critical chain.
type ChainLink struct {
	Kind  ChainKind
	Start float64
	End   float64
	// Task is set for compute and proc-wait segments.
	Task dag.TaskID
	// Edge is set for comm segments.
	Edge dag.EdgeID
	// Detail is a short human-readable description.
	Detail string
}

// Dur returns the segment duration.
func (c ChainLink) Dur() float64 { return c.End - c.Start }

// Breakdown aggregates chain time per category.
type Breakdown struct {
	Compute  float64
	Comm     float64
	ProcWait float64
	Idle     float64
}

// Total returns the sum over all categories.
func (b Breakdown) Total() float64 { return b.Compute + b.Comm + b.ProcWait + b.Idle }

// Analyze computes the full report for a schedule. Ideal
// (contention-free) schedules get utilization/speedup metrics but no
// link or contention analysis.
func Analyze(s *sched.Schedule) *Report {
	r := &Report{Algorithm: s.Algorithm, Makespan: s.Makespan, BusiestLink: -1}
	analyzeSpeedup(s, r)
	analyzeUtilization(s, r)
	if !s.Ideal {
		analyzeContention(s, r)
		analyzeCriticalChain(s, r)
	}
	return r
}

func analyzeSpeedup(s *sched.Schedule, r *Report) {
	fastest := 0.0
	totalSpeed := 0.0
	for _, p := range s.Net.Processors() {
		sp := s.Net.Node(p).Speed
		totalSpeed += sp
		if sp > fastest {
			fastest = sp
		}
	}
	if fastest <= 0 {
		return
	}
	work := s.Graph.TotalTaskCost()
	r.SerialTime = work / fastest
	if s.Makespan > 0 {
		r.Speedup = r.SerialTime / s.Makespan
		r.Efficiency = r.Speedup / float64(s.Net.NumProcessors())
	}
	r.WorkBound = work / totalSpeed
	// Critical path of computation only (communication can be hidden
	// by colocations, so only w counts), at the fastest speed.
	cp := computeOnlyCriticalPath(s.Graph)
	r.CPBound = cp / fastest
}

// computeOnlyCriticalPath returns the longest path counting only task
// costs.
func computeOnlyCriticalPath(g *dag.Graph) float64 {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	longest := make([]float64, g.NumTasks())
	best := 0.0
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		down := 0.0
		for _, eid := range g.Succ(id) {
			if v := longest[g.Edge(eid).To]; v > down {
				down = v
			}
		}
		longest[id] = g.Task(id).Cost + down
		if longest[id] > best {
			best = longest[id]
		}
	}
	return best
}

func analyzeUtilization(s *sched.Schedule, r *Report) {
	if s.Makespan <= 0 {
		return
	}
	var procs []float64
	for _, u := range s.ProcUtilization() {
		procs = append(procs, u)
	}
	sort.Float64s(procs)
	r.ProcUtil = stats.Summarize(procs)

	busy := map[network.LinkID]float64{}
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		for _, pl := range es.Placements {
			if pl.Chunks == nil {
				busy[pl.Link] += pl.Finish - pl.Start
				continue
			}
			for _, c := range pl.Chunks {
				busy[pl.Link] += (c.End - c.Start) * c.Rate
			}
		}
	}
	// Scan links in ID order: map iteration would pick an arbitrary
	// BusiestLink among exact-utilization ties; first-wins over the
	// sorted IDs pins ties to the lowest link ID.
	ids := make([]network.LinkID, 0, len(busy))
	for id := range busy {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var links []float64
	for _, id := range ids {
		u := busy[id] / s.Makespan
		links = append(links, u)
		if u > r.BusiestLinkUtil {
			r.BusiestLinkUtil = u
			r.BusiestLink = id
		}
	}
	sort.Float64s(links)
	r.LinkUtil = stats.Summarize(links)
}

// EdgeDelay records one routed edge's avoidable delay for the
// worst-offender table.
type EdgeDelay struct {
	Edge  dag.EdgeID
	Delay float64
	Hops  int
}

func analyzeContention(s *sched.Schedule, r *Report) {
	var delays []float64
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		r.RoutedEdges++
		cost := s.Graph.Edge(es.Edge).Cost
		// Uncontended cut-through arrival = base + bottleneck link
		// transfer time (+ hop delays). Store-and-forward would sum
		// the legs; using the cut-through bound keeps the metric an
		// upper bound on avoidable delay in both modes.
		bottleneck := 0.0
		for _, lid := range es.Route {
			if d := cost / s.Net.Link(lid).Speed; d > bottleneck {
				bottleneck = d
			}
		}
		ideal := es.Base + bottleneck + float64(len(es.Route)-1)*s.HopDelay
		d := es.Arrival - ideal
		if d < 0 {
			d = 0
		}
		delays = append(delays, d)
		r.WorstDelays = append(r.WorstDelays, EdgeDelay{Edge: es.Edge, Delay: d, Hops: len(es.Route)})
	}
	r.ContentionDelay = stats.Summarize(delays)
	sort.Slice(r.WorstDelays, func(i, j int) bool {
		// edgelint:ignore floateq — exact sort tiebreak for a stable order.
		if r.WorstDelays[i].Delay != r.WorstDelays[j].Delay {
			return r.WorstDelays[i].Delay > r.WorstDelays[j].Delay
		}
		return r.WorstDelays[i].Edge < r.WorstDelays[j].Edge
	})
	if len(r.WorstDelays) > 10 {
		r.WorstDelays = r.WorstDelays[:10]
	}
}

// analyzeCriticalChain walks backwards from the last-finishing task,
// attributing each wait to its cause.
func analyzeCriticalChain(s *sched.Schedule, r *Report) {
	// Last task by finish.
	last := dag.TaskID(-1)
	for _, tp := range s.Tasks {
		if last < 0 || tp.Finish > s.Tasks[last].Finish {
			last = tp.Task
		}
	}
	if last < 0 {
		return
	}
	// Previous task per (proc, start) for proc-wait attribution.
	prevOnProc := map[dag.TaskID]dag.TaskID{}
	byProc := map[network.NodeID][]dag.TaskID{}
	for _, tp := range s.Tasks {
		byProc[tp.Proc] = append(byProc[tp.Proc], tp.Task)
	}
	for _, ids := range byProc {
		sort.Slice(ids, func(i, j int) bool { return s.Tasks[ids[i]].Start < s.Tasks[ids[j]].Start })
		for i := 1; i < len(ids); i++ {
			prevOnProc[ids[i]] = ids[i-1]
		}
	}

	var chain []ChainLink
	cur := last
	guard := 0
	for guard < 4*s.Graph.NumTasks()+8 {
		guard++
		tp := s.Tasks[cur]
		chain = append(chain, ChainLink{
			Kind: ChainCompute, Start: tp.Start, End: tp.Finish, Task: cur,
			Detail: fmt.Sprintf("task %s on %s", s.Graph.Task(cur).Name, s.Net.Node(tp.Proc).Name),
		})
		// What pinned tp.Start?
		// 1. The latest-arriving incoming communication.
		bestArr := 0.0
		bestEdge := dag.EdgeID(-1)
		for _, eid := range s.Graph.Pred(cur) {
			arr := s.ArrivalOf(eid)
			if arr > bestArr {
				bestArr = arr
				bestEdge = eid
			}
		}
		// 2. The previous task on the processor.
		prev, hasPrev := prevOnProc[cur]
		prevFinish := 0.0
		if hasPrev {
			prevFinish = s.Tasks[prev].Finish
		}
		const tol = 1e-6
		switch {
		case hasPrev && fptime.Geq(prevFinish, bestArr) && fptime.Geq(prevFinish, tp.Start):
			// Processor was the binding constraint; continue through
			// the blocking task. Everything between data readiness and
			// start is processor wait.
			if tp.Start-bestArr > tol {
				chain = append(chain, ChainLink{
					Kind: ChainProcWait, Start: bestArr, End: tp.Start, Task: cur,
					Detail: fmt.Sprintf("waiting for %s on %s", s.Graph.Task(prev).Name, s.Net.Node(tp.Proc).Name),
				})
			}
			cur = prev
		case bestEdge >= 0 && fptime.Geq(bestArr, tp.Start):
			// Data arrival was binding.
			es := s.Edges[bestEdge]
			e := s.Graph.Edge(bestEdge)
			next := e.From
			if es != nil {
				chain = append(chain, ChainLink{
					Kind: ChainComm, Start: es.Base, End: es.Arrival, Edge: bestEdge,
					Detail: fmt.Sprintf("edge %s->%s over %d links", s.Graph.Task(e.From).Name, s.Graph.Task(e.To).Name, len(es.Route)),
				})
				// Under the at-ready rule the transfer could not begin
				// before the LAST predecessor finished; that task, not
				// necessarily the edge's source, pins the chain.
				latest := e.From
				for _, eid := range s.Graph.Pred(cur) {
					if f := s.Tasks[s.Graph.Edge(eid).From].Finish; f > s.Tasks[latest].Finish {
						latest = s.Graph.Edge(eid).From
					}
				}
				if fptime.Close(s.Tasks[latest].Finish, es.Base) {
					next = latest
				}
			}
			cur = next
		case bestEdge >= 0:
			// Neither resource pins start exactly (e.g. the ready-time
			// rule); attribute as idle and follow the latest data.
			chain = append(chain, ChainLink{
				Kind: ChainIdle, Start: bestArr, End: tp.Start, Task: cur,
				Detail: "ready-time / scheduling gap",
			})
			cur = s.Graph.Edge(bestEdge).From
		default:
			// A source task: the chain is complete.
			guard = math.MaxInt32
		}
		if guard == math.MaxInt32 {
			break
		}
	}
	// Reverse into execution order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	r.CriticalChain = chain
	for _, c := range chain {
		switch c.Kind {
		case ChainCompute:
			r.ChainBreakdown.Compute += c.Dur()
		case ChainComm:
			r.ChainBreakdown.Comm += c.Dur()
		case ChainProcWait:
			r.ChainBreakdown.ProcWait += c.Dur()
		case ChainIdle:
			r.ChainBreakdown.Idle += c.Dur()
		}
	}
}

// WriteReport renders the report as readable text.
func WriteReport(w io.Writer, r *Report) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("schedule analysis: %s\n", r.Algorithm); err != nil {
		return err
	}
	if err := p("  makespan %12.2f   (lower bounds: critical path %.2f, work %.2f)\n",
		r.Makespan, r.CPBound, r.WorkBound); err != nil {
		return err
	}
	if err := p("  speedup  %12.2f   efficiency %.1f%%   (serial %.2f)\n",
		r.Speedup, 100*r.Efficiency, r.SerialTime); err != nil {
		return err
	}
	if err := p("  processor utilization: mean %.1f%%  max %.1f%%\n",
		100*r.ProcUtil.Mean, 100*r.ProcUtil.Max); err != nil {
		return err
	}
	if r.LinkUtil.N > 0 {
		if err := p("  link utilization (used links): mean %.1f%%  busiest L%d at %.1f%%\n",
			100*r.LinkUtil.Mean, r.BusiestLink, 100*r.BusiestLinkUtil); err != nil {
			return err
		}
	}
	if r.RoutedEdges > 0 {
		if err := p("  contention delay over %d routed edges: mean %.2f  max %.2f\n",
			r.RoutedEdges, r.ContentionDelay.Mean, r.ContentionDelay.Max); err != nil {
			return err
		}
		for i, d := range r.WorstDelays {
			if d.Delay <= 0 || i >= 5 {
				break
			}
			if err := p("    worst #%d: edge %d delayed %.2f over %d hops\n", i+1, d.Edge, d.Delay, d.Hops); err != nil {
				return err
			}
		}
	}
	if len(r.CriticalChain) > 0 {
		b := r.ChainBreakdown
		if err := p("  critical chain (%d segments): compute %.1f, comm %.1f, proc-wait %.1f, idle %.1f\n",
			len(r.CriticalChain), b.Compute, b.Comm, b.ProcWait, b.Idle); err != nil {
			return err
		}
		for _, c := range r.CriticalChain {
			if err := p("    [%9.2f, %9.2f] %-9s %s\n", c.Start, c.End, c.Kind, c.Detail); err != nil {
				return err
			}
		}
	}
	return nil
}
