package analysis

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/verify"
)

func schedule(t *testing.T, algo sched.Algorithm, g *dag.Graph, net *network.Topology) *sched.Schedule {
	t.Helper()
	s, err := algo.Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	if res := verify.Verify(s); !res.OK() {
		t.Fatalf("%s produced an invalid schedule: %v", algo.Name(), res.Err())
	}
	return s
}

func TestSpeedupSingleChain(t *testing.T) {
	// A chain cannot be parallelized: speedup must be ≤ 1 and the
	// critical-path bound equals serial time.
	g := dag.Chain(5, 10, 1)
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	s := schedule(t, sched.NewOIHSA(), g, net)
	r := Analyze(s)
	if r.SerialTime != 50 {
		t.Fatalf("serial time %v, want 50", r.SerialTime)
	}
	if r.CPBound != 50 {
		t.Fatalf("CP bound %v, want 50", r.CPBound)
	}
	if r.Speedup > 1+1e-9 {
		t.Fatalf("speedup %v > 1 on a chain", r.Speedup)
	}
	if r.Makespan < r.CPBound-1e-9 {
		t.Fatalf("makespan %v beats the critical-path bound %v", r.Makespan, r.CPBound)
	}
}

func TestBoundsHoldOnRandomInstances(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    50,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
		})
		net := network.RandomCluster(r, network.RandomClusterParams{
			Processors: 6,
			ProcSpeed:  network.UniformRange(r, 1, 10),
			LinkSpeed:  network.UniformRange(r, 1, 10),
		})
		for _, algo := range []sched.Algorithm{sched.NewBA(), sched.NewOIHSA(), sched.NewBBSA()} {
			s := schedule(t, algo, g, net)
			rep := Analyze(s)
			if s.Makespan < rep.CPBound-1e-6 {
				t.Errorf("%s: makespan %v beats CP bound %v", algo.Name(), s.Makespan, rep.CPBound)
			}
			if s.Makespan < rep.WorkBound-1e-6 {
				t.Errorf("%s: makespan %v beats work bound %v", algo.Name(), s.Makespan, rep.WorkBound)
			}
			if rep.Efficiency < 0 || rep.Efficiency > 1+1e-9 {
				t.Errorf("%s: efficiency %v outside [0,1]", algo.Name(), rep.Efficiency)
			}
			if rep.ProcUtil.Max > 1+1e-9 {
				t.Errorf("%s: processor utilization %v > 1", algo.Name(), rep.ProcUtil.Max)
			}
			if rep.LinkUtil.Max > 1+1e-6 {
				t.Errorf("%s: link utilization %v > 1", algo.Name(), rep.LinkUtil.Max)
			}
			if rep.ContentionDelay.Min < 0 {
				t.Errorf("%s: negative contention delay", algo.Name())
			}
		}
	}
}

func TestCriticalChainCoversMakespan(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    40,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
	})
	net := network.RandomCluster(r, network.RandomClusterParams{
		Processors: 6, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
	s := schedule(t, sched.NewOIHSA(), g, net)
	rep := Analyze(s)
	if len(rep.CriticalChain) == 0 {
		t.Fatal("no critical chain")
	}
	lastSeg := rep.CriticalChain[len(rep.CriticalChain)-1]
	if math.Abs(lastSeg.End-s.Makespan) > 1e-6 {
		t.Fatalf("chain ends at %v, makespan %v", lastSeg.End, s.Makespan)
	}
	// The chain must start at (or very near) time 0 at a source task.
	first := rep.CriticalChain[0]
	if first.Start > 1e-6 {
		t.Fatalf("chain starts at %v, expected a source task at 0", first.Start)
	}
	// Segments are in non-decreasing time order with no inversions.
	for i := 1; i < len(rep.CriticalChain); i++ {
		if rep.CriticalChain[i].Start < rep.CriticalChain[i-1].Start-1e-6 {
			t.Fatalf("chain segments out of order at %d", i)
		}
	}
	// Breakdown must be positive and dominated by real categories.
	if rep.ChainBreakdown.Total() <= 0 {
		t.Fatal("empty chain breakdown")
	}
	if rep.ChainBreakdown.Compute <= 0 {
		t.Fatal("chain has no compute time")
	}
}

func TestChainProcWaitDetected(t *testing.T) {
	// Two independent heavy tasks forced onto one processor: the
	// second waits for the first — the chain must contain a proc-wait.
	g := dag.New()
	g.AddTask("t1", 50)
	g.AddTask("t2", 50)
	net := network.Star(1, network.Uniform(1), network.Uniform(1))
	s := schedule(t, sched.NewBA(), g, net)
	rep := Analyze(s)
	found := false
	for _, c := range rep.CriticalChain {
		if c.Kind == ChainProcWait {
			found = true
		}
	}
	if !found {
		t.Fatalf("no proc-wait segment in chain: %+v", rep.CriticalChain)
	}
	if rep.ChainBreakdown.ProcWait <= 0 {
		t.Fatal("proc-wait not accounted")
	}
}

func TestChainCommDetected(t *testing.T) {
	// A two-task chain across two processors with a big transfer: the
	// chain must contain a comm segment when tasks land apart; force
	// that with the EFT scheduler on zero-attraction workloads.
	g := dag.New()
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	c := g.AddTask("c", 10)
	g.AddEdge(a, c, 10)
	g.AddEdge(b, c, 10)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := schedule(t, sched.NewBA(), g, net)
	rep := Analyze(s)
	// a and b run in parallel on the two processors; c needs a transfer
	// from one of them.
	if s.Tasks[a].Proc != s.Tasks[b].Proc {
		foundComm := false
		for _, cl := range rep.CriticalChain {
			if cl.Kind == ChainComm {
				foundComm = true
			}
		}
		if !foundComm {
			t.Fatalf("no comm segment in chain: %+v", rep.CriticalChain)
		}
	}
}

func TestContentionDelayZeroOnPrivateLink(t *testing.T) {
	// A single transfer on an otherwise empty network has no
	// avoidable delay.
	g := dag.Chain(2, 10, 50)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := schedule(t, sched.NewBASinnen(), g, net)
	rep := Analyze(s)
	if rep.RoutedEdges > 0 && rep.ContentionDelay.Max > 1e-6 {
		t.Fatalf("unexpected contention delay %v", rep.ContentionDelay.Max)
	}
}

func TestAnalyzeIdealSchedule(t *testing.T) {
	g := dag.Diamond(10, 10)
	net := network.Star(3, network.Uniform(1), network.Uniform(1))
	s := schedule(t, sched.NewClassic(), g, net)
	rep := Analyze(s)
	if rep.Speedup <= 0 {
		t.Fatal("no speedup computed for ideal schedule")
	}
	if len(rep.CriticalChain) != 0 {
		t.Fatal("ideal schedules must not get a chain analysis")
	}
}

func TestWriteReport(t *testing.T) {
	g := dag.ForkJoin(3, 10, 20)
	net := network.Star(3, network.Uniform(1), network.Uniform(1))
	s := schedule(t, sched.NewOIHSA(), g, net)
	var buf bytes.Buffer
	if err := WriteReport(&buf, Analyze(s)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"makespan", "speedup", "processor utilization", "critical chain"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestChainKindString(t *testing.T) {
	if ChainCompute.String() != "compute" || ChainComm.String() != "comm" ||
		ChainProcWait.String() != "proc-wait" || ChainIdle.String() != "idle" {
		t.Fatal("chain kind strings")
	}
}
