// Package verify checks every invariant of the edge-scheduling model
// against a produced schedule: task precedence and data-ready times,
// processor exclusivity, route connectivity, link causality along every
// route, exclusive-slot non-overlap, and bandwidth capacity for
// fractional transfers. The scheduling algorithms are trusted nowhere —
// integration and property tests run every schedule through Verify.
package verify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fptime"
	"repro/internal/linksched"
	"repro/internal/network"
	"repro/internal/sched"
)

// All float comparisons go through internal/fptime's verification
// helpers (AbsTol/RelTol regime); see that package for the rationale.
func geq(a, b float64) bool { return fptime.Geq(a, b) }

// Violation describes one broken invariant.
type Violation struct {
	Rule string // short rule identifier, e.g. "precedence"
	Msg  string
}

func (v Violation) String() string { return v.Rule + ": " + v.Msg }

// Result aggregates all violations found in one schedule.
type Result struct {
	Violations []Violation
}

// OK reports whether no violations were found.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the schedule is valid, or an error summarizing
// the first violations.
func (r *Result) Err() error {
	if r.OK() {
		return nil
	}
	msg := r.Violations[0].String()
	if n := len(r.Violations); n > 1 {
		msg = fmt.Sprintf("%s (and %d more violations)", msg, n-1)
	}
	return fmt.Errorf("verify: %s", msg)
}

func (r *Result) addf(rule, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// Verify checks the full invariant set of the edge-scheduling model.
// Ideal (contention-free) schedules get the reduced check set that is
// meaningful for them: placement sanity, processor exclusivity, and
// ideal-model precedence.
func Verify(s *sched.Schedule) *Result {
	r := &Result{}
	if s.Graph == nil || s.Net == nil {
		r.addf("structure", "schedule is missing graph or network")
		return r
	}
	verifyPlacements(s, r)
	verifyProcessorExclusivity(s, r)
	if s.Ideal {
		verifyIdealPrecedence(s, r)
	} else {
		verifyPrecedence(s, r)
		verifyRoutes(s, r)
		verifyLinkCausality(s, r)
		verifyLinkCapacity(s, r)
		verifyVolumes(s, r)
	}
	verifyMakespan(s, r)
	return r
}

// verifyPlacements checks every task is on a processor with the right
// execution time.
func verifyPlacements(s *sched.Schedule, r *Result) {
	if len(s.Tasks) != s.Graph.NumTasks() {
		r.addf("structure", "schedule has %d task placements, graph has %d tasks", len(s.Tasks), s.Graph.NumTasks())
		return
	}
	check := func(tp sched.TaskPlacement, what string) {
		if tp.Proc < 0 || int(tp.Proc) >= s.Net.NumNodes() {
			r.addf("placement", "%s %d mapped to invalid node %d", what, tp.Task, tp.Proc)
			return
		}
		node := s.Net.Node(tp.Proc)
		if node.Kind != network.Processor {
			r.addf("placement", "%s %d mapped to non-processor node %s", what, tp.Task, node.Name)
			return
		}
		if !fptime.Geq(tp.Start, 0) {
			r.addf("placement", "%s %d starts at negative time %v", what, tp.Task, tp.Start)
		}
		want := s.Graph.Task(tp.Task).Cost / node.Speed
		if !fptime.Close(tp.Finish-tp.Start, want) {
			r.addf("placement", "%s %d runs %v, want %v on %s", what, tp.Task, tp.Finish-tp.Start, want, node.Name)
		}
	}
	for _, tp := range s.Tasks {
		check(tp, "task")
	}
	for _, tp := range s.Duplicates {
		check(tp, "duplicate")
		if s.Graph.InDegree(tp.Task) != 0 {
			r.addf("placement", "duplicate of task %d which has predecessors (unsupported)", tp.Task)
		}
	}
}

// verifyProcessorExclusivity checks that tasks on the same processor
// never overlap.
func verifyProcessorExclusivity(s *sched.Schedule, r *Result) {
	byProc := map[network.NodeID][]sched.TaskPlacement{}
	for _, tp := range s.Tasks {
		byProc[tp.Proc] = append(byProc[tp.Proc], tp)
	}
	for _, tp := range s.Duplicates {
		byProc[tp.Proc] = append(byProc[tp.Proc], tp)
	}
	for proc, tps := range byProc {
		sort.Slice(tps, func(i, j int) bool { return tps[i].Start < tps[j].Start })
		for i := 1; i < len(tps); i++ {
			if !geq(tps[i].Start, tps[i-1].Finish) {
				r.addf("processor", "tasks %d and %d overlap on node %d ([%v,%v] vs [%v,%v])",
					tps[i-1].Task, tps[i].Task, proc,
					tps[i-1].Start, tps[i-1].Finish, tps[i].Start, tps[i].Finish)
			}
		}
	}
}

// verifyPrecedence checks data-ready times under the contention model:
// a task starts only after all incoming communications arrive.
func verifyPrecedence(s *sched.Schedule, r *Result) {
	if len(s.Edges) != s.Graph.NumEdges() {
		r.addf("structure", "schedule has %d edge entries, graph has %d edges", len(s.Edges), s.Graph.NumEdges())
		return
	}
	for _, e := range s.Graph.Edges() {
		src, dst := s.Tasks[e.From], s.Tasks[e.To]
		es := s.Edges[e.ID]
		if src.Proc == dst.Proc {
			if es != nil {
				r.addf("edge", "edge %d is intra-processor but has a network schedule", e.ID)
			}
			if !geq(dst.Start, src.Finish) {
				r.addf("precedence", "task %d starts at %v before predecessor %d finishes at %v",
					e.To, dst.Start, e.From, src.Finish)
			}
			continue
		}
		if es == nil {
			// Legal when a duplicate of the source task finishes on the
			// destination processor before the consumer starts.
			satisfied := false
			for _, d := range s.Duplicates {
				if d.Task == e.From && d.Proc == dst.Proc && geq(dst.Start, d.Finish) {
					satisfied = true
					break
				}
			}
			if !satisfied {
				r.addf("edge", "edge %d crosses processors but has no network schedule (and no satisfying duplicate)", e.ID)
			}
			continue
		}
		if es.SrcProc != src.Proc || es.DstProc != dst.Proc {
			r.addf("edge", "edge %d schedule endpoints (%d->%d) disagree with task placements (%d->%d)",
				e.ID, es.SrcProc, es.DstProc, src.Proc, dst.Proc)
		}
		if !geq(dst.Start, es.Arrival) {
			r.addf("precedence", "task %d starts at %v before edge %d arrives at %v",
				e.To, dst.Start, e.ID, es.Arrival)
		}
		if n := len(es.Placements); n > 0 {
			last := es.Placements[n-1]
			if !fptime.Close(last.Finish, es.Arrival) {
				r.addf("edge", "edge %d arrival %v disagrees with last-link finish %v", e.ID, es.Arrival, last.Finish)
			}
			first := es.Placements[0]
			if !geq(first.Start, src.Finish) {
				r.addf("causality", "edge %d enters the network at %v before source task finishes at %v",
					e.ID, first.Start, src.Finish)
			}
			if !geq(first.Finish, src.Finish) {
				r.addf("causality", "edge %d leaves first link at %v before source task finishes at %v",
					e.ID, first.Finish, src.Finish)
			}
		}
	}
}

// verifyIdealPrecedence checks precedence under the classic
// contention-free model with MLS communication delays.
func verifyIdealPrecedence(s *sched.Schedule, r *Result) {
	mls := s.Net.MeanLinkSpeed()
	for _, e := range s.Graph.Edges() {
		src, dst := s.Tasks[e.From], s.Tasks[e.To]
		arr := src.Finish
		if src.Proc != dst.Proc {
			arr += e.Cost / mls
		}
		if !geq(dst.Start, arr) {
			r.addf("precedence", "ideal: task %d starts at %v before data from %d arrives at %v",
				e.To, dst.Start, e.From, arr)
		}
	}
}

// verifyRoutes checks every edge schedule's route is a connected path
// between its processors with one placement per link.
func verifyRoutes(s *sched.Schedule, r *Result) {
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		if err := s.Net.ValidateRoute(es.SrcProc, es.DstProc, es.Route); err != nil {
			r.addf("route", "edge %d: %v", es.Edge, err)
		}
		if len(es.Placements) != len(es.Route) {
			r.addf("route", "edge %d has %d placements for %d route links", es.Edge, len(es.Placements), len(es.Route))
			continue
		}
		for i, p := range es.Placements {
			if p.Link != es.Route[i] {
				r.addf("route", "edge %d placement %d on link %d, route says %d", es.Edge, i, p.Link, es.Route[i])
			}
		}
	}
}

// verifyLinkCausality checks the link causality condition along every
// route: start and finish times are non-decreasing from link to link.
func verifyLinkCausality(s *sched.Schedule, r *Result) {
	hd := s.HopDelay
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		for i := 1; i < len(es.Placements); i++ {
			prev, cur := es.Placements[i-1], es.Placements[i]
			if s.Switching == sched.StoreAndForward {
				if !geq(cur.Start, prev.Finish+hd) {
					r.addf("causality", "edge %d (store-and-forward) starts on link %d at %v before link %d finished at %v (+hop delay %v)",
						es.Edge, cur.Link, cur.Start, prev.Link, prev.Finish, hd)
				}
				continue
			}
			if !geq(cur.Start, prev.Start+hd) {
				r.addf("causality", "edge %d starts on link %d at %v before link %d at %v (+hop delay %v)",
					es.Edge, cur.Link, cur.Start, prev.Link, prev.Start, hd)
			}
			if !geq(cur.Finish, prev.Finish+hd) {
				r.addf("causality", "edge %d finishes on link %d at %v before link %d at %v (+hop delay %v)",
					es.Edge, cur.Link, cur.Finish, prev.Link, prev.Finish, hd)
			}
		}
		// For chunked (bandwidth) transfers additionally check that the
		// cumulative outflow on each link never exceeds the cumulative
		// inflow from the previous link (shifted by the hop delay),
		// sampled at chunk boundaries.
		for i := 1; i < len(es.Placements); i++ {
			prev, cur := es.Placements[i-1], es.Placements[i]
			if prev.Chunks == nil || cur.Chunks == nil {
				continue
			}
			for _, c := range cur.Chunks {
				for _, t := range []float64{c.Start, c.End} {
					in := volumeBy(prev.Chunks, t-hd)
					out := volumeBy(cur.Chunks, t)
					if !fptime.LeqRel(out, in, 1e-6) {
						r.addf("causality", "edge %d: link %d forwarded %v by t=%v but only %v arrived from link %d",
							es.Edge, cur.Link, out, t, in, prev.Link)
					}
				}
			}
		}
	}
}

// volumeBy returns the data volume moved by the chunk list up to time t.
func volumeBy(chunks []linksched.Chunk, t float64) float64 {
	v := 0.0
	for _, c := range chunks {
		if fptime.LeqEps(c.End, t) {
			v += c.Volume
		} else if c.Start < t {
			frac := (t - c.Start) / (c.End - c.Start)
			v += c.Volume * frac
		}
	}
	return v
}

// verifyLinkCapacity checks per-link resource limits: exclusive slots
// never overlap, and bandwidth shares never sum above 1. Slot
// placements count as rate-1.0 uses so mixed schedules are handled.
func verifyLinkCapacity(s *sched.Schedule, r *Result) {
	type eventT struct {
		t    float64
		rate float64
	}
	uses := map[network.LinkID][]eventT{}
	add := func(l network.LinkID, start, end, rate float64) {
		if fptime.Leq(end-start, 0) {
			return
		}
		uses[l] = append(uses[l], eventT{t: start, rate: rate}, eventT{t: end, rate: -rate})
	}
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		for _, p := range es.Placements {
			if p.Chunks == nil {
				add(p.Link, p.Start, p.Finish, 1)
				continue
			}
			for _, c := range p.Chunks {
				if !fptime.Geq(c.Rate, 0) || !fptime.Leq(c.Rate, 1) {
					r.addf("capacity", "edge %d chunk on link %d has rate %v outside [0,1]", es.Edge, p.Link, c.Rate)
				}
				add(p.Link, c.Start, c.End, c.Rate)
			}
		}
	}
	for l, evs := range uses {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].rate < evs[j].rate // process releases first
		})
		// An overload only counts if it persists: adjacent start/end
		// events can be separated by float noise, producing a
		// zero-duration load spike that is not a real conflict.
		load := 0.0
		for i, ev := range evs {
			load += ev.rate
			if load <= 1+1e-5 {
				continue
			}
			until := ev.t
			if i+1 < len(evs) {
				until = evs[i+1].t
			}
			if !fptime.Leq(until-ev.t, 0) {
				r.addf("capacity", "link %d oversubscribed: load %.6f during [%v, %v]", l, load, ev.t, until)
				break
			}
		}
	}
}

// verifyVolumes checks each placement moves the edge's full
// communication volume: slot duration = c(e)/s(L) for exclusive slots,
// sum of chunk volumes = c(e) for bandwidth transfers.
func verifyVolumes(s *sched.Schedule, r *Result) {
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		cost := s.Graph.Edge(es.Edge).Cost
		for _, p := range es.Placements {
			link := s.Net.Link(p.Link)
			if p.Chunks == nil {
				want := cost / link.Speed
				if !fptime.Close(p.Finish-p.Start, want) {
					r.addf("volume", "edge %d occupies link %d for %v, want %v",
						es.Edge, p.Link, p.Finish-p.Start, want)
				}
				continue
			}
			vol := 0.0
			prevEnd := math.Inf(-1)
			for _, c := range p.Chunks {
				vol += c.Volume
				if !fptime.Geq(c.Start, prevEnd) {
					r.addf("volume", "edge %d chunks overlap on link %d", es.Edge, p.Link)
				}
				prevEnd = c.End
				wantVol := c.Rate * link.Speed * (c.End - c.Start)
				if !fptime.CloseRel(c.Volume, wantVol, 1e-6) {
					r.addf("volume", "edge %d chunk on link %d carries %v, rate*speed*dur=%v",
						es.Edge, p.Link, c.Volume, wantVol)
				}
			}
			if !fptime.CloseRel(vol, cost, 1e-6) {
				r.addf("volume", "edge %d moved %v over link %d, want %v", es.Edge, vol, p.Link, cost)
			}
		}
	}
}

// verifyMakespan checks the reported makespan matches the placements.
func verifyMakespan(s *sched.Schedule, r *Result) {
	m := 0.0
	for _, tp := range s.Tasks {
		if tp.Finish > m {
			m = tp.Finish
		}
	}
	if !fptime.Close(s.Makespan, m) {
		r.addf("makespan", "reported %v, placements say %v", s.Makespan, m)
	}
}
