package verify

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
)

// validSchedule builds a known-good schedule to corrupt in tests.
func validSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	r := rand.New(rand.NewSource(8))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    30,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
	})
	net := network.RandomCluster(r, network.RandomClusterParams{
		Processors: 6, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
	s, err := sched.NewOIHSA().Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	if res := Verify(s); !res.OK() {
		t.Fatalf("baseline schedule invalid: %v", res.Err())
	}
	return s
}

// firstRouted returns the index of an edge that crosses the network.
func firstRouted(s *sched.Schedule) int {
	for i, es := range s.Edges {
		if es != nil && len(es.Placements) > 0 {
			return i
		}
	}
	return -1
}

func expectViolation(t *testing.T, s *sched.Schedule, rule string) {
	t.Helper()
	res := Verify(s)
	if res.OK() {
		t.Fatalf("corrupted schedule passed verification (expected %q violation)", rule)
	}
	for _, v := range res.Violations {
		if v.Rule == rule {
			return
		}
	}
	var got []string
	for _, v := range res.Violations {
		got = append(got, v.Rule)
	}
	t.Fatalf("expected %q violation, got %s", rule, strings.Join(got, ", "))
}

func TestVerifyValidSchedules(t *testing.T) {
	s := validSchedule(t)
	if res := Verify(s); !res.OK() {
		t.Fatal(res.Err())
	}
	if err := (&Result{}).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsWrongMakespan(t *testing.T) {
	s := validSchedule(t)
	s.Makespan *= 2
	expectViolation(t, s, "makespan")
}

func TestDetectsTaskOnSwitch(t *testing.T) {
	s := validSchedule(t)
	// Find a switch node.
	for _, n := range s.Net.Nodes() {
		if n.Kind == network.Switch {
			s.Tasks[0].Proc = n.ID
			break
		}
	}
	expectViolation(t, s, "placement")
}

func TestDetectsWrongExecutionTime(t *testing.T) {
	s := validSchedule(t)
	s.Tasks[0].Finish += 5
	expectViolation(t, s, "placement")
}

func TestDetectsProcessorOverlap(t *testing.T) {
	s := validSchedule(t)
	// Move every task of some processor to start at 0.
	proc := s.Tasks[0].Proc
	count := 0
	for i := range s.Tasks {
		if s.Tasks[i].Proc == proc {
			d := s.Tasks[i].Finish - s.Tasks[i].Start
			s.Tasks[i].Start = 0
			s.Tasks[i].Finish = d
			count++
		}
	}
	if count < 2 {
		t.Skip("need two tasks on one processor")
	}
	expectViolation(t, s, "processor")
}

func TestDetectsPrecedenceViolation(t *testing.T) {
	s := validSchedule(t)
	// Pick an edge and move its destination before the data arrives.
	i := firstRouted(s)
	if i < 0 {
		t.Skip("no routed edge")
	}
	to := s.Graph.Edge(dag.EdgeID(i)).To
	d := s.Tasks[to].Finish - s.Tasks[to].Start
	s.Tasks[to].Start = 0
	s.Tasks[to].Finish = d
	res := Verify(s)
	if res.OK() {
		t.Fatal("precedence violation not caught")
	}
}

func TestDetectsMissingEdgeSchedule(t *testing.T) {
	s := validSchedule(t)
	i := firstRouted(s)
	if i < 0 {
		t.Skip("no routed edge")
	}
	s.Edges[i] = nil
	expectViolation(t, s, "edge")
}

func TestDetectsCausalityViolation(t *testing.T) {
	s := validSchedule(t)
	// Find an edge with ≥ 2 legs and break the start monotonicity.
	for _, es := range s.Edges {
		if es == nil || len(es.Placements) < 2 {
			continue
		}
		es.Placements[1].Start = es.Placements[0].Start - 50
		es.Placements[1].Finish = es.Placements[0].Finish - 50
		expectViolation(t, s, "causality")
		return
	}
	t.Skip("no multi-leg edge")
}

func TestDetectsLinkOverlap(t *testing.T) {
	s := validSchedule(t)
	// Two placements forced onto the same link at the same time.
	var a, b *sched.EdgePlacement
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		for i := range es.Placements {
			p := &es.Placements[i]
			if a == nil {
				a = p
			} else if p != a {
				b = p
				break
			}
		}
		if b != nil {
			break
		}
	}
	if a == nil || b == nil {
		t.Skip("need two placements")
	}
	b.Link = a.Link
	b.Start = a.Start
	b.Finish = a.Finish
	res := Verify(s)
	if res.OK() {
		t.Fatal("link overlap not caught")
	}
}

func TestDetectsWrongVolume(t *testing.T) {
	s := validSchedule(t)
	i := firstRouted(s)
	if i < 0 {
		t.Skip("no routed edge")
	}
	pl := &s.Edges[i].Placements[0]
	pl.Finish += 10 // slot longer than c/s
	res := Verify(s)
	if res.OK() {
		t.Fatal("wrong slot duration not caught")
	}
}

func TestDetectsBadRoute(t *testing.T) {
	s := validSchedule(t)
	i := firstRouted(s)
	if i < 0 {
		t.Skip("no routed edge")
	}
	// Truncate the route: it no longer reaches the destination.
	es := s.Edges[i]
	if len(es.Route) < 2 {
		// Make the route start from the wrong place instead.
		es.SrcProc = es.DstProc
	}
	es.Route = es.Route[:len(es.Route)-1]
	es.Placements = es.Placements[:len(es.Placements)-1]
	expectViolation(t, s, "route")
}

func TestDetectsOversubscribedBandwidth(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    30,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
	})
	net := network.RandomCluster(r, network.RandomClusterParams{
		Processors: 6, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
	s, err := sched.NewBBSA().Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	if res := Verify(s); !res.OK() {
		t.Fatalf("baseline BBSA schedule invalid: %v", res.Err())
	}
	// Inflate one chunk's rate beyond 1.
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		for li := range es.Placements {
			if len(es.Placements[li].Chunks) > 0 {
				es.Placements[li].Chunks[0].Rate = 1.5
				expectViolation(t, s, "capacity")
				return
			}
		}
	}
	t.Skip("no chunked placement")
}

func TestDetectsChunkVolumeMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g := dag.Diamond(10, 50)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	_ = r
	s, err := sched.NewBBSA().Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		for li := range es.Placements {
			if len(es.Placements[li].Chunks) > 0 {
				es.Placements[li].Chunks[0].Volume *= 0.5
				expectViolation(t, s, "volume")
				return
			}
		}
	}
	t.Skip("no chunked placement")
}

func TestVerifyIdealSchedule(t *testing.T) {
	g := dag.Diamond(10, 50)
	net := network.Line(3, network.Uniform(1), network.Uniform(1))
	s, err := sched.NewClassic().Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	if res := Verify(s); !res.OK() {
		t.Fatalf("ideal schedule invalid: %v", res.Err())
	}
	// Break ideal precedence.
	to := s.Graph.Edge(0).To
	d := s.Tasks[to].Finish - s.Tasks[to].Start
	s.Tasks[to].Start = 0
	s.Tasks[to].Finish = d
	res := Verify(s)
	if res.OK() {
		t.Fatal("ideal precedence violation not caught")
	}
}

func TestResultErrSummarizesCount(t *testing.T) {
	r := &Result{}
	r.addf("a", "first")
	r.addf("b", "second")
	err := r.Err()
	if err == nil || !strings.Contains(err.Error(), "1 more") {
		t.Fatalf("err %v", err)
	}
	if r.Violations[0].String() != "a: first" {
		t.Fatalf("violation string %q", r.Violations[0].String())
	}
}

func TestVerifyMissingGraph(t *testing.T) {
	res := Verify(&sched.Schedule{})
	if res.OK() {
		t.Fatal("schedule without graph accepted")
	}
}

func TestDetectsBogusDuplicate(t *testing.T) {
	// A schedule claiming an unscheduled cross-processor edge is
	// covered by a duplicate must have a real, timely duplicate.
	g := dag.New()
	src := g.AddTask("src", 2)
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.AddEdge(src, a, 500)
	g.AddEdge(src, b, 500)
	net := network.Star(2, network.Uniform(1), network.Uniform(1))
	opts := sched.NewOIHSA().Opts
	opts.Duplication = true
	s, err := sched.NewCustom("dup", opts).Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	if res := Verify(s); !res.OK() {
		t.Fatalf("baseline: %v", res.Err())
	}
	if len(s.Duplicates) == 0 {
		t.Fatalf("instance did not duplicate (placements: src=%d a=%d b=%d)",
			s.Tasks[src].Proc, s.Tasks[a].Proc, s.Tasks[b].Proc)
	}
	// Corrupt 1: duplicate finishes after the consumer starts.
	good := s.Duplicates[0]
	s.Duplicates[0].Start += 1e6
	s.Duplicates[0].Finish += 1e6
	if res := Verify(s); res.OK() {
		t.Fatal("late duplicate accepted")
	}
	s.Duplicates[0] = good
	// Corrupt 2: duplicate of a task with predecessors.
	s.Duplicates = append(s.Duplicates, sched.TaskPlacement{
		Task: a, Proc: s.Tasks[a].Proc, Start: 0, Finish: 10,
	})
	expectViolation(t, s, "placement")
	s.Duplicates = s.Duplicates[:1]
	// Corrupt 3: drop the duplicate entirely — the edge is uncovered.
	s.Duplicates = nil
	expectViolation(t, s, "edge")
}
