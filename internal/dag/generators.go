package dag

import (
	"fmt"
	"math/rand"
)

// CostDist describes a uniform integer cost distribution U(Lo, Hi)
// (inclusive), matching the paper's U(i,j) notation in §6.
type CostDist struct {
	Lo, Hi int
}

// Sample draws one value from the distribution.
func (d CostDist) Sample(r *rand.Rand) float64 {
	if d.Hi <= d.Lo {
		return float64(d.Lo)
	}
	return float64(d.Lo + r.Intn(d.Hi-d.Lo+1))
}

// RandomLayeredParams parameterizes RandomLayered. The defaults used by
// the experiment harness mirror the paper's §6 setup: |V| ∈ U(40,1000),
// task and edge costs ∈ U(1,1000), then rescaled to a target CCR.
type RandomLayeredParams struct {
	Tasks     int      // total number of tasks (≥ 1)
	TaskCost  CostDist // computation cost distribution
	EdgeCost  CostDist // communication cost distribution
	FanOut    int      // max successors sampled per task (default 4)
	LayerSize int      // mean layer width (default ~sqrt(Tasks))
}

// RandomLayered builds a random layered DAG in the style used by the
// scheduling literature the paper cites (Bajaj & Agrawal, TPDS 2004):
// tasks are partitioned into consecutive layers of random width, and
// each task receives edges from randomly chosen tasks of earlier layers
// so that every non-first-layer task has at least one predecessor (the
// graph is "connected downward" and always acyclic).
func RandomLayered(r *rand.Rand, p RandomLayeredParams) *Graph {
	if p.Tasks < 1 {
		p.Tasks = 1
	}
	if p.FanOut <= 0 {
		p.FanOut = 4
	}
	if p.LayerSize <= 0 {
		p.LayerSize = isqrt(p.Tasks)
		if p.LayerSize < 1 {
			p.LayerSize = 1
		}
	}
	g := New()
	// Partition tasks into layers of width U(1, 2*LayerSize-1) so the
	// mean width is LayerSize.
	var layers [][]TaskID
	remaining := p.Tasks
	for remaining > 0 {
		w := 1 + r.Intn(2*p.LayerSize-1+1)
		if w > remaining {
			w = remaining
		}
		layer := make([]TaskID, 0, w)
		for i := 0; i < w; i++ {
			layer = append(layer, g.AddTask("", p.TaskCost.Sample(r)))
		}
		layers = append(layers, layer)
		remaining -= w
	}
	// Wire edges: each task in layer k>0 gets 1..FanOut predecessors
	// drawn from all earlier layers (biased to the previous layer).
	for k := 1; k < len(layers); k++ {
		prev := layers[k-1]
		for _, to := range layers[k] {
			npred := 1 + r.Intn(p.FanOut)
			used := map[TaskID]bool{}
			for i := 0; i < npred; i++ {
				var from TaskID
				if r.Intn(100) < 70 || k == 1 {
					from = prev[r.Intn(len(prev))]
				} else {
					kk := r.Intn(k)
					from = layers[kk][r.Intn(len(layers[kk]))]
				}
				if used[from] {
					continue
				}
				used[from] = true
				g.AddEdge(from, to, p.EdgeCost.Sample(r))
			}
		}
	}
	return g
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// Chain builds a linear chain n0 -> n1 -> ... -> n(k-1) with the given
// uniform task and edge costs.
func Chain(k int, taskCost, edgeCost float64) *Graph {
	g := New()
	prev := TaskID(-1)
	for i := 0; i < k; i++ {
		id := g.AddTask("", taskCost)
		if prev >= 0 {
			g.AddEdge(prev, id, edgeCost)
		}
		prev = id
	}
	return g
}

// ForkJoin builds a fork-join graph: one source task fanning out to
// width parallel tasks which all join into one sink.
func ForkJoin(width int, taskCost, edgeCost float64) *Graph {
	g := New()
	src := g.AddTask("fork", taskCost)
	sink := g.AddTask("join", taskCost)
	for i := 0; i < width; i++ {
		mid := g.AddTask(fmt.Sprintf("w%d", i), taskCost)
		g.AddEdge(src, mid, edgeCost)
		g.AddEdge(mid, sink, edgeCost)
	}
	return g
}

// Diamond builds the classic 4-task diamond: a -> {b, c} -> d.
func Diamond(taskCost, edgeCost float64) *Graph {
	g := New()
	a := g.AddTask("a", taskCost)
	b := g.AddTask("b", taskCost)
	c := g.AddTask("c", taskCost)
	d := g.AddTask("d", taskCost)
	g.AddEdge(a, b, edgeCost)
	g.AddEdge(a, c, edgeCost)
	g.AddEdge(b, d, edgeCost)
	g.AddEdge(c, d, edgeCost)
	return g
}

// OutTree builds a complete out-tree (rooted fan-out tree) of the given
// degree and depth; depth 0 is a single task.
func OutTree(degree, depth int, taskCost, edgeCost float64) *Graph {
	g := New()
	root := g.AddTask("root", taskCost)
	frontier := []TaskID{root}
	for d := 0; d < depth; d++ {
		var next []TaskID
		for _, p := range frontier {
			for c := 0; c < degree; c++ {
				id := g.AddTask("", taskCost)
				g.AddEdge(p, id, edgeCost)
				next = append(next, id)
			}
		}
		frontier = next
	}
	return g
}

// InTree builds a complete in-tree (reduction tree): leaves feed upward
// into a single final task. degree is the reduction arity.
func InTree(degree, depth int, taskCost, edgeCost float64) *Graph {
	g := New()
	// Build level by level from the leaves.
	width := 1
	for i := 0; i < depth; i++ {
		width *= degree
	}
	level := make([]TaskID, width)
	for i := range level {
		level[i] = g.AddTask("", taskCost)
	}
	for width > 1 {
		width /= degree
		next := make([]TaskID, width)
		for i := range next {
			next[i] = g.AddTask("", taskCost)
			for c := 0; c < degree; c++ {
				g.AddEdge(level[i*degree+c], next[i], edgeCost)
			}
		}
		level = next
	}
	return g
}

// FFT builds the task graph of a radix-2 FFT butterfly on 2^logN
// points: logN+1 rows of 2^logN tasks, each task in row r>0 depending
// on its own column and the butterfly partner column of row r-1. This
// is a standard benchmark graph in the scheduling literature.
func FFT(logN int, taskCost, edgeCost float64) *Graph {
	n := 1 << uint(logN)
	g := New()
	prev := make([]TaskID, n)
	for i := 0; i < n; i++ {
		prev[i] = g.AddTask(fmt.Sprintf("fft0_%d", i), taskCost)
	}
	for r := 1; r <= logN; r++ {
		cur := make([]TaskID, n)
		stride := 1 << uint(logN-r)
		for i := 0; i < n; i++ {
			cur[i] = g.AddTask(fmt.Sprintf("fft%d_%d", r, i), taskCost)
			g.AddEdge(prev[i], cur[i], edgeCost)
			g.AddEdge(prev[i^stride], cur[i], edgeCost)
		}
		prev = cur
	}
	return g
}

// GaussianElimination builds the task graph of Gaussian elimination on
// an n x n matrix: for each pivot step k there is a pivot task followed
// by update tasks for columns k+1..n-1, with the usual dependencies.
// Total tasks: n-1 pivots + sum_{k} (n-1-k) updates.
func GaussianElimination(n int, taskCost, edgeCost float64) *Graph {
	g := New()
	// update[j] holds the task that last wrote column j.
	last := make([]TaskID, n)
	for j := range last {
		last[j] = -1
	}
	for k := 0; k < n-1; k++ {
		piv := g.AddTask(fmt.Sprintf("piv%d", k), taskCost)
		if last[k] >= 0 {
			g.AddEdge(last[k], piv, edgeCost)
		}
		for j := k + 1; j < n; j++ {
			upd := g.AddTask(fmt.Sprintf("upd%d_%d", k, j), taskCost)
			g.AddEdge(piv, upd, edgeCost)
			if last[j] >= 0 {
				g.AddEdge(last[j], upd, edgeCost)
			}
			last[j] = upd
		}
	}
	return g
}

// Laplace builds the task graph of a wavefront (Laplace equation /
// dynamic-programming style) sweep over an n x n grid: task (i,j)
// depends on (i-1,j) and (i,j-1).
func Laplace(n int, taskCost, edgeCost float64) *Graph {
	g := New()
	ids := make([][]TaskID, n)
	for i := 0; i < n; i++ {
		ids[i] = make([]TaskID, n)
		for j := 0; j < n; j++ {
			ids[i][j] = g.AddTask(fmt.Sprintf("l%d_%d", i, j), taskCost)
			if i > 0 {
				g.AddEdge(ids[i-1][j], ids[i][j], edgeCost)
			}
			if j > 0 {
				g.AddEdge(ids[i][j-1], ids[i][j], edgeCost)
			}
		}
	}
	return g
}

// Stencil builds a layered 1-D stencil graph: rows of width tasks where
// task (r, i) depends on (r-1, i-1), (r-1, i), (r-1, i+1) as available.
func Stencil(rows, width int, taskCost, edgeCost float64) *Graph {
	g := New()
	prev := make([]TaskID, width)
	for i := 0; i < width; i++ {
		prev[i] = g.AddTask("", taskCost)
	}
	for r := 1; r < rows; r++ {
		cur := make([]TaskID, width)
		for i := 0; i < width; i++ {
			cur[i] = g.AddTask("", taskCost)
			for d := -1; d <= 1; d++ {
				if j := i + d; j >= 0 && j < width {
					g.AddEdge(prev[j], cur[i], edgeCost)
				}
			}
		}
		prev = cur
	}
	return g
}
