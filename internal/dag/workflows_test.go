package dag

import "testing"

func TestMontageShape(t *testing.T) {
	w := 5
	g := Montage(w, 10, 20)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tasks: w projections + (w-1) diffs + fit + bg + w corrections + merge.
	want := w + (w - 1) + 1 + 1 + w + 1
	if g.NumTasks() != want {
		t.Fatalf("tasks %d, want %d", g.NumTasks(), want)
	}
	if len(g.Sources()) != w {
		t.Fatalf("sources %d, want %d projections", len(g.Sources()), w)
	}
	if len(g.Sinks()) != 1 {
		t.Fatalf("sinks %d, want 1 (mAdd)", len(g.Sinks()))
	}
	// Minimum width clamps to 2.
	if Montage(1, 1, 1).NumTasks() != Montage(2, 1, 1).NumTasks() {
		t.Fatal("width clamp broken")
	}
}

func TestEpigenomicsShape(t *testing.T) {
	g := Epigenomics(3, 4, 10, 20)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 2+3*4 {
		t.Fatalf("tasks %d, want 14", g.NumTasks())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatalf("sources/sinks %d/%d", len(g.Sources()), len(g.Sinks()))
	}
	// Critical path: split + depth stages + merge, with edges.
	cp, err := g.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	want := 6*10.0 + 5*20.0 // 6 tasks, 5 edges on the longest path
	if cp != want {
		t.Fatalf("critical path %v, want %v", cp, want)
	}
	// Degenerate parameters clamp to 1.
	if Epigenomics(0, 0, 1, 1).NumTasks() != 3 {
		t.Fatal("clamp broken")
	}
}

func TestWidth(t *testing.T) {
	if w := Chain(5, 1, 1).Width(); w != 1 {
		t.Fatalf("chain width %d, want 1", w)
	}
	if w := ForkJoin(6, 1, 1).Width(); w != 6 {
		t.Fatalf("fork-join width %d, want 6", w)
	}
	if w := Epigenomics(4, 3, 1, 1).Width(); w != 4 {
		t.Fatalf("epigenomics width %d, want 4", w)
	}
	if w := New().Width(); w != 0 {
		t.Fatalf("empty width %d", w)
	}
}

func TestDensity(t *testing.T) {
	g := Diamond(1, 1) // 4 tasks, 4 edges, max 6
	if d := g.Density(); d < 0.66 || d > 0.67 {
		t.Fatalf("diamond density %v", d)
	}
	single := New()
	single.AddTask("x", 1)
	if single.Density() != 0 {
		t.Fatal("singleton density must be 0")
	}
}
