package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUShape(t *testing.T) {
	n := 4
	g := LU(n, 10, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tasks per step k: 1 diag + (n-1-k) row + (n-1-k) col + (n-1-k)^2 gemm.
	want := 0
	for k := 0; k < n; k++ {
		r := n - 1 - k
		want += 1 + 2*r + r*r
	}
	if g.NumTasks() != want {
		t.Fatalf("tasks %d, want %d", g.NumTasks(), want)
	}
	// A single source (the first getrf) and growing dependencies.
	if len(g.Sources()) != 1 {
		t.Fatalf("sources %d, want 1 (getrf0)", len(g.Sources()))
	}
}

func TestCholeskyShape(t *testing.T) {
	n := 4
	g := Cholesky(n, 10, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// potrf: n; trsm: sum(n-1-k) = n(n-1)/2; syrk: same; gemm: sum C(n-1-k, 2).
	want := n + n*(n-1)/2 + n*(n-1)/2
	for k := 0; k < n; k++ {
		r := n - 1 - k
		want += r * (r - 1) / 2
	}
	if g.NumTasks() != want {
		t.Fatalf("tasks %d, want %d", g.NumTasks(), want)
	}
	if len(g.Sources()) != 1 {
		t.Fatalf("sources %d, want 1 (potrf0)", len(g.Sources()))
	}
}

func TestDivideConquerShape(t *testing.T) {
	g := DivideConquer(3, 1, 2, 3, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// depth 3: 7 splits + 8 leaves + 7 merges.
	if g.NumTasks() != 22 {
		t.Fatalf("tasks %d, want 22", g.NumTasks())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatalf("sources/sinks %d/%d, want 1/1", len(g.Sources()), len(g.Sinks()))
	}
	// Depth 0 degenerates to a single leaf.
	if DivideConquer(0, 1, 2, 3, 4).NumTasks() != 1 {
		t.Fatal("depth-0 divide and conquer")
	}
}

func TestMapReduceShape(t *testing.T) {
	m, r := 4, 2
	g := MapReduce(m, r, 10, 20, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 2+m+r {
		t.Fatalf("tasks %d", g.NumTasks())
	}
	// Edges: m source->map + m*r shuffle + r reduce->sink.
	if g.NumEdges() != m+m*r+r {
		t.Fatalf("edges %d, want %d", g.NumEdges(), m+m*r+r)
	}
	// Every reducer has m predecessors.
	for _, task := range g.Tasks() {
		if len(task.Name) >= 6 && task.Name[:6] == "reduce" {
			if g.InDegree(task.ID) != m {
				t.Fatalf("reducer %s has %d preds, want %d", task.Name, g.InDegree(task.ID), m)
			}
		}
	}
}

func TestRandomSeriesParallelProperty(t *testing.T) {
	f := func(seed int64, d uint8) bool {
		r := rand.New(rand.NewSource(seed))
		depth := int(d % 6)
		g := RandomSeriesParallel(r, depth, CostDist{Lo: 1, Hi: 10}, CostDist{Lo: 1, Hi: 10})
		if g.NumTasks() < 1 {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExtraGeneratorsSchedulable(t *testing.T) {
	// Smoke: all extra generators must at least topo-sort and produce
	// positive critical paths.
	r := rand.New(rand.NewSource(1))
	graphs := []*Graph{
		LU(3, 10, 10),
		Cholesky(3, 10, 10),
		DivideConquer(2, 1, 2, 3, 4),
		MapReduce(3, 2, 10, 20, 5),
		RandomSeriesParallel(r, 4, CostDist{Lo: 1, Hi: 10}, CostDist{Lo: 1, Hi: 10}),
	}
	for i, g := range graphs {
		cp, err := g.CriticalPathLength()
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if cp <= 0 {
			t.Fatalf("graph %d: empty critical path", i)
		}
	}
}
