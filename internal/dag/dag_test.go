package dag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddTaskAndEdge(t *testing.T) {
	g := New()
	a := g.AddTask("a", 1)
	b := g.AddTask("", 2)
	e := g.AddEdge(a, b, 3)
	if g.NumTasks() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts: %d tasks %d edges", g.NumTasks(), g.NumEdges())
	}
	if g.Task(b).Name != "n1" {
		t.Errorf("auto name %q, want n1", g.Task(b).Name)
	}
	if ed := g.Edge(e); ed.From != a || ed.To != b || ed.Cost != 3 {
		t.Errorf("edge %+v", ed)
	}
	if len(g.Succ(a)) != 1 || len(g.Pred(b)) != 1 {
		t.Errorf("adjacency broken")
	}
	if g.InDegree(a) != 0 || g.OutDegree(a) != 1 {
		t.Errorf("degrees broken")
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New()
	a := g.AddTask("a", 1)
	for _, f := range []func(){
		func() { g.AddEdge(a, a, 1) },
		func() { g.AddEdge(a, 99, 1) },
		func() { g.AddEdge(-1, a, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := New()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.AddEdge(a, b, 1)
	g.AddEdge(b, c, 1)
	g.AddEdge(c, a, 1)
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("got %v, want ErrCycle", err)
	}
}

func TestValidateRejectsBadCosts(t *testing.T) {
	g := New()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.AddEdge(a, b, 1)
	g.SetTaskCost(a, -1)
	if err := g.Validate(); err == nil {
		t.Fatal("negative task cost accepted")
	}
	g.SetTaskCost(a, 1)
	g.SetEdgeCost(0, math.NaN())
	if err := g.Validate(); err == nil {
		t.Fatal("NaN edge cost accepted")
	}
}

func TestValidateRejectsDuplicateEdge(t *testing.T) {
	g := New()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.AddEdge(a, b, 1)
	g.AddEdge(a, b, 2)
	if err := g.Validate(); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestTopoOrderDeterministicAndValid(t *testing.T) {
	g := Diamond(1, 1)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[TaskID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topo order", e.From, e.To)
		}
	}
}

func TestBottomLevelsChain(t *testing.T) {
	g := Chain(3, 10, 5) // bl: n2=10, n1=25, n0=40
	bl, err := g.BottomLevels()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{40, 25, 10}
	for i, w := range want {
		if bl[i] != w {
			t.Errorf("bl[%d]=%v, want %v", i, bl[i], w)
		}
	}
	cp, err := g.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 40 {
		t.Errorf("critical path %v, want 40", cp)
	}
}

func TestTopLevelsChain(t *testing.T) {
	g := Chain(3, 10, 5) // tl: n0=0, n1=15, n2=30
	tl, err := g.TopLevels()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 15, 30}
	for i, w := range want {
		if tl[i] != w {
			t.Errorf("tl[%d]=%v, want %v", i, tl[i], w)
		}
	}
}

func TestPriorityOrderIsTopological(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		g := RandomLayered(r, RandomLayeredParams{
			Tasks:    1 + r.Intn(120),
			TaskCost: CostDist{Lo: 0, Hi: 10}, // zero costs stress tie-breaking
			EdgeCost: CostDist{Lo: 0, Hi: 10},
		})
		order, err := g.PriorityOrder()
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != g.NumTasks() {
			t.Fatalf("order misses tasks")
		}
		pos := make([]int, g.NumTasks())
		for i, id := range order {
			pos[id] = i
		}
		bl, err := g.BottomLevels()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("trial %d: priority order not topological on edge %d->%d", trial, e.From, e.To)
			}
		}
		for i := 1; i < len(order); i++ {
			// Bottom levels must be non-increasing only along comparable
			// pairs; globally we check the sort key ordering held.
			if bl[order[i-1]] < bl[order[i]]-1e-12 {
				t.Fatalf("trial %d: priority order not sorted by bottom level", trial)
			}
		}
	}
}

func TestAlternativePriorityOrdersAreTopological(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		g := RandomLayered(r, RandomLayeredParams{
			Tasks:    1 + r.Intn(100),
			TaskCost: CostDist{Lo: 0, Hi: 20},
			EdgeCost: CostDist{Lo: 0, Hi: 20},
		})
		for name, fn := range map[string]func() ([]TaskID, error){
			"comp": g.CompPriorityOrder,
			"crit": g.CriticalityPriorityOrder,
		} {
			order, err := fn()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(order) != g.NumTasks() {
				t.Fatalf("%s: covers %d of %d tasks", name, len(order), g.NumTasks())
			}
			pos := make([]int, g.NumTasks())
			for i, id := range order {
				pos[id] = i
			}
			for _, e := range g.Edges() {
				if pos[e.From] >= pos[e.To] {
					t.Fatalf("%s: order not topological on edge %d->%d (trial %d)", name, e.From, e.To, trial)
				}
			}
		}
	}
}

func TestCriticalityOrderPutsCriticalPathFirst(t *testing.T) {
	// Chain a->b->c plus a cheap independent task: the chain is the
	// critical path and must precede the cheap task.
	g := New()
	a := g.AddTask("a", 100)
	b := g.AddTask("b", 100)
	cheap := g.AddTask("cheap", 1)
	g.AddEdge(a, b, 10)
	order, err := g.CriticalityPriorityOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[TaskID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[cheap] < pos[a] || pos[cheap] < pos[b] {
		t.Fatalf("cheap off-path task ordered before the critical path: %v", order)
	}
}

func TestSourcesAndSinks(t *testing.T) {
	g := Diamond(1, 1)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Errorf("sources %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Errorf("sinks %v", s)
	}
}

func TestCCRAndScale(t *testing.T) {
	g := Chain(3, 10, 5)
	// mean task 10, mean edge 5 → CCR 0.5
	if got := g.CCR(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CCR=%v, want 0.5", got)
	}
	g.ScaleToCCR(2)
	if got := g.CCR(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("scaled CCR=%v, want 2", got)
	}
	if got := g.Edge(0).Cost; math.Abs(got-20) > 1e-12 {
		t.Fatalf("edge cost %v, want 20", got)
	}
	// No-edge graph: CCR 0, scaling is a no-op.
	g2 := New()
	g2.AddTask("x", 5)
	if g2.CCR() != 0 {
		t.Errorf("no-edge CCR should be 0")
	}
	g2.ScaleToCCR(3) // must not panic
}

func TestCloneIsDeep(t *testing.T) {
	g := Diamond(1, 1)
	c := g.Clone()
	c.SetTaskCost(0, 99)
	c.SetEdgeCost(0, 99)
	c.AddTask("extra", 1)
	if g.Task(0).Cost == 99 || g.Edge(0).Cost == 99 || g.NumTasks() != 4 {
		t.Fatal("clone shares state with original")
	}
}

func TestString(t *testing.T) {
	g := Chain(2, 1, 1)
	if s := g.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		name          string
		g             *Graph
		tasks, edges  int
		sources, sink int
	}{
		{"chain", Chain(5, 1, 1), 5, 4, 1, 1},
		{"forkjoin", ForkJoin(3, 1, 1), 5, 6, 1, 1},
		{"diamond", Diamond(1, 1), 4, 4, 1, 1},
		{"outtree", OutTree(2, 3, 1, 1), 15, 14, 1, 8},
		{"intree", InTree(2, 3, 1, 1), 15, 14, 8, 1},
		{"fft8", FFT(3, 1, 1), 32, 48, 8, 8},
		{"laplace3", Laplace(3, 1, 1), 9, 12, 1, 1},
		{"stencil", Stencil(3, 4, 1, 1), 12, 20, 4, 4},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if c.g.NumTasks() != c.tasks {
			t.Errorf("%s: %d tasks, want %d", c.name, c.g.NumTasks(), c.tasks)
		}
		if c.g.NumEdges() != c.edges {
			t.Errorf("%s: %d edges, want %d", c.name, c.g.NumEdges(), c.edges)
		}
		if got := len(c.g.Sources()); got != c.sources {
			t.Errorf("%s: %d sources, want %d", c.name, got, c.sources)
		}
		if got := len(c.g.Sinks()); got != c.sink {
			t.Errorf("%s: %d sinks, want %d", c.name, got, c.sink)
		}
	}
}

func TestGaussianEliminationShape(t *testing.T) {
	n := 5
	g := GaussianElimination(n, 1, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// n-1 pivots plus sum_{k=0}^{n-2}(n-1-k) updates.
	wantTasks := (n - 1) + (n-1)*n/2 - 0
	updates := 0
	for k := 0; k < n-1; k++ {
		updates += n - 1 - k
	}
	wantTasks = (n - 1) + updates
	if g.NumTasks() != wantTasks {
		t.Errorf("tasks %d, want %d", g.NumTasks(), wantTasks)
	}
	// Exactly one final sink (the last update of column n-1)?
	// The elimination ends with upd over column n-1 at step n-2; other
	// columns' last updates also have no successors. Just require ≥1
	// sink and a critical path of at least n-1 pivots.
	cp, err := g.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if cp < float64(n-1) {
		t.Errorf("critical path %v too short", cp)
	}
}

func TestFFTDependencies(t *testing.T) {
	g := FFT(2, 1, 1) // 4 points, 3 rows of 4
	// Every non-first-row task must have exactly 2 predecessors.
	for _, task := range g.Tasks() {
		if task.ID < 4 {
			if g.InDegree(task.ID) != 0 {
				t.Errorf("row-0 task %d has predecessors", task.ID)
			}
			continue
		}
		if g.InDegree(task.ID) != 2 {
			t.Errorf("task %d has %d predecessors, want 2", task.ID, g.InDegree(task.ID))
		}
	}
}

func TestRandomLayeredProperty(t *testing.T) {
	f := func(seed int64, n uint16, fan uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tasks := int(n%800) + 1
		g := RandomLayered(r, RandomLayeredParams{
			Tasks:    tasks,
			TaskCost: CostDist{Lo: 1, Hi: 1000},
			EdgeCost: CostDist{Lo: 1, Hi: 1000},
			FanOut:   int(fan%6) + 1,
		})
		if g.NumTasks() != tasks {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		// Every non-source task has at least one predecessor by
		// construction; sources live in the first layer only.
		order, err := g.TopoOrder()
		return err == nil && len(order) == tasks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCostDistSample(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := CostDist{Lo: 3, Hi: 7}
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		v := d.Sample(r)
		if v < 3 || v > 7 {
			t.Fatalf("sample %v outside [3,7]", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("expected all 5 values, saw %d", len(seen))
	}
	// Degenerate distribution.
	if v := (CostDist{Lo: 4, Hi: 4}).Sample(r); v != 4 {
		t.Errorf("degenerate sample %v", v)
	}
}
