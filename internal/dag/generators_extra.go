package dag

import (
	"fmt"
	"math/rand"
)

// LU builds the task graph of tiled LU decomposition on an n x n tile
// matrix with the classic kernels: diag (getrf), row/col panel updates
// (trsm), and trailing updates (gemm). Dependencies follow the standard
// tiled algorithm.
func LU(n int, taskCost, edgeCost float64) *Graph {
	g := New()
	// last[i][j] is the task that last wrote tile (i, j).
	last := make([][]TaskID, n)
	for i := range last {
		last[i] = make([]TaskID, n)
		for j := range last[i] {
			last[i][j] = -1
		}
	}
	dep := func(t TaskID, i, j int) {
		if last[i][j] >= 0 {
			g.AddEdge(last[i][j], t, edgeCost)
		}
		last[i][j] = t
	}
	readDep := func(t TaskID, i, j int) {
		if last[i][j] >= 0 {
			g.AddEdge(last[i][j], t, edgeCost)
		}
	}
	for k := 0; k < n; k++ {
		diag := g.AddTask(fmt.Sprintf("getrf%d", k), taskCost)
		dep(diag, k, k)
		for j := k + 1; j < n; j++ {
			row := g.AddTask(fmt.Sprintf("trsmR%d_%d", k, j), taskCost)
			readDep(row, k, k)
			dep(row, k, j)
		}
		for i := k + 1; i < n; i++ {
			col := g.AddTask(fmt.Sprintf("trsmC%d_%d", k, i), taskCost)
			readDep(col, k, k)
			dep(col, i, k)
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				upd := g.AddTask(fmt.Sprintf("gemm%d_%d_%d", k, i, j), taskCost)
				readDep(upd, i, k)
				readDep(upd, k, j)
				dep(upd, i, j)
			}
		}
	}
	return g
}

// Cholesky builds the task graph of tiled Cholesky factorization on an
// n x n tile matrix (potrf / trsm / syrk / gemm kernels, lower
// triangle).
func Cholesky(n int, taskCost, edgeCost float64) *Graph {
	g := New()
	last := make([][]TaskID, n)
	for i := range last {
		last[i] = make([]TaskID, n)
		for j := range last[i] {
			last[i][j] = -1
		}
	}
	dep := func(t TaskID, i, j int) {
		if last[i][j] >= 0 {
			g.AddEdge(last[i][j], t, edgeCost)
		}
		last[i][j] = t
	}
	readDep := func(t TaskID, i, j int) {
		if last[i][j] >= 0 {
			g.AddEdge(last[i][j], t, edgeCost)
		}
	}
	for k := 0; k < n; k++ {
		potrf := g.AddTask(fmt.Sprintf("potrf%d", k), taskCost)
		dep(potrf, k, k)
		for i := k + 1; i < n; i++ {
			trsm := g.AddTask(fmt.Sprintf("trsm%d_%d", k, i), taskCost)
			readDep(trsm, k, k)
			dep(trsm, i, k)
		}
		for i := k + 1; i < n; i++ {
			syrk := g.AddTask(fmt.Sprintf("syrk%d_%d", k, i), taskCost)
			readDep(syrk, i, k)
			dep(syrk, i, i)
			for j := k + 1; j < i; j++ {
				gemm := g.AddTask(fmt.Sprintf("gemm%d_%d_%d", k, i, j), taskCost)
				readDep(gemm, i, k)
				readDep(gemm, j, k)
				dep(gemm, i, j)
			}
		}
	}
	return g
}

// DivideConquer builds a divide-and-conquer graph: a binary out-tree
// of split tasks of the given depth, leaf compute tasks, and a mirrored
// in-tree of merge tasks — the shape of mergesort, FFT recursion, or
// map-reduce with hierarchical reduction.
func DivideConquer(depth int, splitCost, leafCost, mergeCost, edgeCost float64) *Graph {
	g := New()
	var build func(d int) (TaskID, TaskID) // returns (entry, exit)
	build = func(d int) (TaskID, TaskID) {
		if d == 0 {
			leaf := g.AddTask("", leafCost)
			return leaf, leaf
		}
		split := g.AddTask("", splitCost)
		merge := g.AddTask("", mergeCost)
		for c := 0; c < 2; c++ {
			in, out := build(d - 1)
			g.AddEdge(split, in, edgeCost)
			g.AddEdge(out, merge, edgeCost)
		}
		return split, merge
	}
	build(depth)
	return g
}

// MapReduce builds an m-mapper, r-reducer shuffle graph: one source
// (input split), m map tasks, r reduce tasks each consuming every
// mapper's partition (the all-to-all shuffle), and a sink. The shuffle
// is the canonical network-contention stress.
func MapReduce(m, r int, mapCost, reduceCost, shuffleCost float64) *Graph {
	g := New()
	src := g.AddTask("input", 1)
	sink := g.AddTask("output", 1)
	maps := make([]TaskID, m)
	for i := 0; i < m; i++ {
		maps[i] = g.AddTask(fmt.Sprintf("map%d", i), mapCost)
		g.AddEdge(src, maps[i], shuffleCost)
	}
	for j := 0; j < r; j++ {
		red := g.AddTask(fmt.Sprintf("reduce%d", j), reduceCost)
		for i := 0; i < m; i++ {
			g.AddEdge(maps[i], red, shuffleCost)
		}
		g.AddEdge(red, sink, shuffleCost)
	}
	return g
}

// RandomSeriesParallel builds a random series-parallel DAG by
// recursively composing series and parallel blocks, a common model of
// structured workflows. The result has at least one task and a single
// source and sink for depth ≥ 1.
func RandomSeriesParallel(r *rand.Rand, depth int, taskCost, edgeCost CostDist) *Graph {
	g := New()
	var build func(d int) (TaskID, TaskID)
	build = func(d int) (TaskID, TaskID) {
		if d == 0 || r.Intn(4) == 0 {
			t := g.AddTask("", taskCost.Sample(r))
			return t, t
		}
		if r.Intn(2) == 0 {
			// Series: A then B.
			aIn, aOut := build(d - 1)
			bIn, bOut := build(d - 1)
			g.AddEdge(aOut, bIn, edgeCost.Sample(r))
			return aIn, bOut
		}
		// Parallel: fork into 2-3 branches and join.
		fork := g.AddTask("", taskCost.Sample(r))
		join := g.AddTask("", taskCost.Sample(r))
		branches := 2 + r.Intn(2)
		for b := 0; b < branches; b++ {
			in, out := build(d - 1)
			g.AddEdge(fork, in, edgeCost.Sample(r))
			g.AddEdge(out, join, edgeCost.Sample(r))
		}
		return fork, join
	}
	build(depth)
	return g
}
