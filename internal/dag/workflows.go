package dag

import "fmt"

// Montage builds a synthetic Montage-style astronomy workflow, a
// standard benchmark shape in workflow-scheduling studies: w parallel
// projection tasks, a quadratic-ish layer of overlap-difference tasks
// joining neighbouring projections, a fit/concat reduction, a
// background-model task fanned back out to w correction tasks, and a
// final mosaic merge.
func Montage(w int, taskCost, edgeCost float64) *Graph {
	if w < 2 {
		w = 2
	}
	g := New()
	proj := make([]TaskID, w)
	for i := range proj {
		proj[i] = g.AddTask(fmt.Sprintf("mProject%d", i), taskCost)
	}
	// Differences between neighbouring projections.
	var diffs []TaskID
	for i := 0; i+1 < w; i++ {
		d := g.AddTask(fmt.Sprintf("mDiff%d", i), taskCost/2)
		g.AddEdge(proj[i], d, edgeCost)
		g.AddEdge(proj[i+1], d, edgeCost)
		diffs = append(diffs, d)
	}
	fit := g.AddTask("mConcatFit", taskCost)
	for _, d := range diffs {
		g.AddEdge(d, fit, edgeCost/2)
	}
	bg := g.AddTask("mBgModel", taskCost)
	g.AddEdge(fit, bg, edgeCost/2)
	merge := g.AddTask("mAdd", 2*taskCost)
	for i := range proj {
		corr := g.AddTask(fmt.Sprintf("mBackground%d", i), taskCost/2)
		g.AddEdge(bg, corr, edgeCost/2)
		g.AddEdge(proj[i], corr, edgeCost)
		g.AddEdge(corr, merge, edgeCost)
	}
	return g
}

// Epigenomics builds a synthetic Epigenomics-style bioinformatics
// workflow: `lanes` independent pipelines of `depth` sequential stages
// fed by one split task, merged by one final task — long chains with a
// single synchronization at each end.
func Epigenomics(lanes, depth int, taskCost, edgeCost float64) *Graph {
	if lanes < 1 {
		lanes = 1
	}
	if depth < 1 {
		depth = 1
	}
	g := New()
	split := g.AddTask("split", taskCost)
	merge := g.AddTask("merge", taskCost)
	for l := 0; l < lanes; l++ {
		prev := split
		for d := 0; d < depth; d++ {
			t := g.AddTask(fmt.Sprintf("lane%d_s%d", l, d), taskCost)
			g.AddEdge(prev, t, edgeCost)
			prev = t
		}
		g.AddEdge(prev, merge, edgeCost)
	}
	return g
}

// Width returns the maximum number of tasks in any single layer of the
// graph's longest-path layering — a practical measure of available
// parallelism for experiment reporting. (The true maximum antichain is
// NP-hard to compute in general DAG weighted settings; layer width is
// the standard proxy.)
func (g *Graph) Width() int {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	depth := make([]int, g.NumTasks())
	maxDepth := 0
	for _, id := range order {
		d := 0
		for _, eid := range g.pred[id] {
			if v := depth[g.edges[eid].From] + 1; v > d {
				d = v
			}
		}
		depth[id] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	counts := make([]int, maxDepth+1)
	width := 0
	for _, d := range depth {
		counts[d]++
		if counts[d] > width {
			width = counts[d]
		}
	}
	return width
}

// Density returns |E| divided by the maximum possible edge count of a
// DAG on the same tasks, n(n−1)/2; 0 for graphs with fewer than two
// tasks.
func (g *Graph) Density() float64 {
	n := len(g.tasks)
	if n < 2 {
		return 0
	}
	return float64(len(g.edges)) / (float64(n) * float64(n-1) / 2)
}
