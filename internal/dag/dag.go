// Package dag implements weighted directed acyclic task graphs for
// static scheduling: tasks carry computation costs, edges carry
// communication costs, and the package provides the structural queries
// (predecessors, successors, topological order, bottom levels, CCR)
// that list-scheduling algorithms need.
package dag

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// TaskID identifies a task within a Graph. IDs are dense indices
// assigned in insertion order, starting at 0.
type TaskID int

// EdgeID identifies an edge within a Graph. IDs are dense indices
// assigned in insertion order, starting at 0.
type EdgeID int

// Task is a node of the task graph.
type Task struct {
	ID   TaskID
	Name string
	// Cost is the computation cost w(n). On a processor with speed s
	// the execution time is Cost/s.
	Cost float64
}

// Edge is a communication dependency between two tasks.
type Edge struct {
	ID   EdgeID
	From TaskID
	To   TaskID
	// Cost is the communication cost c(e). On a link with speed s the
	// transfer time is Cost/s.
	Cost float64
}

// Graph is a directed acyclic task graph G = (V, E, w, c).
//
// The zero value is an empty graph ready for use. Graphs are built with
// AddTask and AddEdge and are not safe for concurrent mutation. Once a
// schedule run starts the graph is treated as frozen: forked scheduler
// states share it without copying.
// edgelint:immutable AddTask AddEdge SetTaskCost SetEdgeCost ScaleToCCR — frozen once scheduling starts
type Graph struct {
	tasks []Task
	edges []Edge
	succ  [][]EdgeID // outgoing edge IDs per task
	pred  [][]EdgeID // incoming edge IDs per task
}

// New returns an empty task graph.
func New() *Graph { return &Graph{} }

// AddTask appends a task with the given name and computation cost and
// returns its ID.
func (g *Graph) AddTask(name string, cost float64) TaskID {
	id := TaskID(len(g.tasks))
	if name == "" {
		name = fmt.Sprintf("n%d", id)
	}
	g.tasks = append(g.tasks, Task{ID: id, Name: name, Cost: cost})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddEdge adds a communication edge from one task to another and
// returns its ID. It panics if either endpoint does not exist or if
// from == to; acyclicity is checked by Validate, not here.
func (g *Graph) AddEdge(from, to TaskID, cost float64) EdgeID {
	if !g.hasTask(from) || !g.hasTask(to) {
		panic(fmt.Sprintf("dag: AddEdge(%d, %d): task does not exist", from, to))
	}
	if from == to {
		panic(fmt.Sprintf("dag: AddEdge: self-loop on task %d", from))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Cost: cost})
	g.succ[from] = append(g.succ[from], id)
	g.pred[to] = append(g.pred[to], id)
	return id
}

func (g *Graph) hasTask(id TaskID) bool { return id >= 0 && int(id) < len(g.tasks) }

// NumTasks reports the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Task returns the task with the given ID.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Tasks returns all tasks in ID order. The slice is shared; do not modify.
// edgelint:ignore aliasret — read-only iteration accessor on the hot path
func (g *Graph) Tasks() []Task { return g.tasks }

// Edges returns all edges in ID order. The slice is shared; do not modify.
// edgelint:ignore aliasret — read-only iteration accessor on the hot path
func (g *Graph) Edges() []Edge { return g.edges }

// Succ returns the IDs of the edges leaving task id. Shared; do not modify.
// edgelint:ignore aliasret — read-only iteration accessor on the hot path
func (g *Graph) Succ(id TaskID) []EdgeID { return g.succ[id] }

// Pred returns the IDs of the edges entering task id. Shared; do not modify.
// edgelint:ignore aliasret — read-only iteration accessor on the hot path
func (g *Graph) Pred(id TaskID) []EdgeID { return g.pred[id] }

// InDegree reports the number of incoming edges of task id.
func (g *Graph) InDegree(id TaskID) int { return len(g.pred[id]) }

// OutDegree reports the number of outgoing edges of task id.
func (g *Graph) OutDegree(id TaskID) int { return len(g.succ[id]) }

// Sources returns the tasks without predecessors, in ID order.
func (g *Graph) Sources() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.pred[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Sinks returns the tasks without successors, in ID order.
func (g *Graph) Sinks() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.succ[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// SetTaskCost replaces the computation cost of task id.
func (g *Graph) SetTaskCost(id TaskID, cost float64) { g.tasks[id].Cost = cost }

// SetEdgeCost replaces the communication cost of edge id.
func (g *Graph) SetEdgeCost(id EdgeID, cost float64) { g.edges[id].Cost = cost }

// ErrCycle is reported by Validate and TopoOrder when the graph
// contains a directed cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// Validate checks structural invariants: the graph must be acyclic and
// all costs must be non-negative and finite. Multiple edges between the
// same pair of tasks are rejected too, since an edge models the single
// data transfer between two tasks.
func (g *Graph) Validate() error {
	for _, t := range g.tasks {
		if t.Cost < 0 || math.IsNaN(t.Cost) || t.Cost > 1e300 {
			return fmt.Errorf("dag: task %d (%s) has invalid cost %v", t.ID, t.Name, t.Cost)
		}
	}
	seen := make(map[[2]TaskID]bool, len(g.edges))
	for _, e := range g.edges {
		if e.Cost < 0 || math.IsNaN(e.Cost) || e.Cost > 1e300 {
			return fmt.Errorf("dag: edge %d (%d->%d) has invalid cost %v", e.ID, e.From, e.To, e.Cost)
		}
		k := [2]TaskID{e.From, e.To}
		if seen[k] {
			return fmt.Errorf("dag: duplicate edge %d->%d", e.From, e.To)
		}
		seen[k] = true
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the task IDs in a topological order (Kahn's
// algorithm, smallest-ID-first among ready tasks so the order is
// deterministic). It returns ErrCycle if the graph is cyclic.
func (g *Graph) TopoOrder() ([]TaskID, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for i := range g.tasks {
		indeg[i] = len(g.pred[i])
	}
	// Min-heap over ready task IDs for deterministic output.
	ready := &taskIDHeap{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for ready.len() > 0 {
		id := ready.pop()
		order = append(order, id)
		for _, eid := range g.succ[id] {
			to := g.edges[eid].To
			indeg[to]--
			if indeg[to] == 0 {
				ready.push(to)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// taskIDHeap is a tiny binary min-heap of TaskIDs.
type taskIDHeap struct{ a []TaskID }

func (h *taskIDHeap) len() int { return len(h.a) }

func (h *taskIDHeap) push(x TaskID) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *taskIDHeap) pop() TaskID {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.a[l] < h.a[s] {
			s = l
		}
		if r < last && h.a[r] < h.a[s] {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

// BottomLevels computes bl(n) = w(n) + max over successors of
// (c(e) + bl(succ)) for every task (paper §2.1). The result is indexed
// by TaskID. It returns ErrCycle for cyclic graphs.
func (g *Graph) BottomLevels() ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, len(g.tasks))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		for _, eid := range g.succ[id] {
			e := g.edges[eid]
			if v := e.Cost + bl[e.To]; v > best {
				best = v
			}
		}
		bl[id] = g.tasks[id].Cost + best
	}
	return bl, nil
}

// TopLevels computes tl(n) = max over predecessors of
// (tl(pred) + w(pred) + c(e)), the length of the longest path entering
// the task excluding the task itself.
func (g *Graph) TopLevels() ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	tl := make([]float64, len(g.tasks))
	for _, id := range order {
		best := 0.0
		for _, eid := range g.pred[id] {
			e := g.edges[eid]
			if v := tl[e.From] + g.tasks[e.From].Cost + e.Cost; v > best {
				best = v
			}
		}
		tl[id] = best
	}
	return tl, nil
}

// CriticalPathLength returns the length of the longest path through the
// graph counting both computation and communication costs, i.e. the
// maximum bottom level.
func (g *Graph) CriticalPathLength() (float64, error) {
	bl, err := g.BottomLevels()
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, v := range bl {
		if v > best {
			best = v
		}
	}
	return best, nil
}

// PriorityOrder returns the task IDs sorted by decreasing bottom level,
// breaking ties by topological rank and then by ID. With positive task
// costs this order is always a valid topological order (bl strictly
// decreases along edges); ties from zero-cost tasks are resolved by the
// topological rank so the property holds for all valid graphs.
func (g *Graph) PriorityOrder() ([]TaskID, error) {
	bl, err := g.BottomLevels()
	if err != nil {
		return nil, err
	}
	return g.orderByKeyDesc(bl)
}

// orderByKeyDesc sorts tasks by decreasing key, tie-broken by
// topological rank (so any key that is non-increasing along edges
// yields a valid topological order) and then by ID.
func (g *Graph) orderByKeyDesc(key []float64) ([]TaskID, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]int, len(g.tasks))
	for i, id := range topo {
		rank[id] = i
	}
	order := make([]TaskID, len(g.tasks))
	copy(order, topo)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if key[a] != key[b] {
			return key[a] > key[b]
		}
		if rank[a] != rank[b] {
			return rank[a] < rank[b]
		}
		return a < b
	})
	return order, nil
}

// CompPriorityOrder returns the tasks sorted by decreasing
// computation-only bottom level (communication costs ignored).
func (g *Graph) CompPriorityOrder() ([]TaskID, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, len(g.tasks))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		for _, eid := range g.succ[id] {
			if v := bl[g.edges[eid].To]; v > best {
				best = v
			}
		}
		bl[id] = g.tasks[id].Cost + best
	}
	return g.orderByKeyDesc(bl)
}

// CriticalityPriorityOrder returns the tasks sorted by decreasing
// bl + tl (path length through the task): critical-path tasks first,
// as CPOP-style rankings use. The key is not monotone along edges, so
// the tie-break machinery enforces a valid topological order by
// sorting on the longest-path-through value, which IS equal for all
// tasks of the critical path; the final order remains topological
// because orderByKeyDesc is stable on topological rank only for equal
// keys — therefore the key is clamped to be non-increasing along the
// topological order first.
func (g *Graph) CriticalityPriorityOrder() ([]TaskID, error) {
	bl, err := g.BottomLevels()
	if err != nil {
		return nil, err
	}
	tl, err := g.TopLevels()
	if err != nil {
		return nil, err
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	key := make([]float64, len(g.tasks))
	for i := range key {
		key[i] = bl[i] + tl[i]
	}
	// Clamp: a task's key must not exceed any predecessor's key, so
	// that sorting by decreasing key is a topological order.
	for _, id := range topo {
		for _, eid := range g.pred[id] {
			if k := key[g.edges[eid].From]; k < key[id] {
				key[id] = k
			}
		}
	}
	return g.orderByKeyDesc(key)
}

// TotalTaskCost returns the sum of all computation costs.
func (g *Graph) TotalTaskCost() float64 {
	sum := 0.0
	for _, t := range g.tasks {
		sum += t.Cost
	}
	return sum
}

// TotalEdgeCost returns the sum of all communication costs.
func (g *Graph) TotalEdgeCost() float64 {
	sum := 0.0
	for _, e := range g.edges {
		sum += e.Cost
	}
	return sum
}

// CCR returns the communication-to-computation ratio of the graph: the
// mean edge cost divided by the mean task cost. It returns 0 for a
// graph with no edges or zero total task cost.
func (g *Graph) CCR() float64 {
	if len(g.edges) == 0 || len(g.tasks) == 0 {
		return 0
	}
	meanW := g.TotalTaskCost() / float64(len(g.tasks))
	if meanW == 0 {
		return 0
	}
	meanC := g.TotalEdgeCost() / float64(len(g.edges))
	return meanC / meanW
}

// ScaleToCCR multiplies all edge costs by a common factor so that the
// graph's CCR becomes the target value. It is a no-op on graphs with no
// edges or zero computation cost.
func (g *Graph) ScaleToCCR(target float64) {
	cur := g.CCR()
	if cur == 0 {
		return
	}
	f := target / cur
	for i := range g.edges {
		g.edges[i].Cost *= f
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		tasks: append([]Task(nil), g.tasks...),
		edges: append([]Edge(nil), g.edges...),
		succ:  make([][]EdgeID, len(g.succ)),
		pred:  make([][]EdgeID, len(g.pred)),
	}
	for i := range g.succ {
		c.succ[i] = append([]EdgeID(nil), g.succ[i]...)
		c.pred[i] = append([]EdgeID(nil), g.pred[i]...)
	}
	return c
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("dag{tasks:%d edges:%d ccr:%.2f}", len(g.tasks), len(g.edges), g.CCR())
}
