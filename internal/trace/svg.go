package trace

import (
	"fmt"
	"io"
	"math"

	"repro/internal/fptime"
	"repro/internal/network"
	"repro/internal/sched"
)

// SVGOptions controls SVG Gantt rendering.
type SVGOptions struct {
	// Width is the drawing width in pixels (default 900).
	Width int
	// RowHeight is the height of one resource row (default 22).
	RowHeight int
	// Links adds one row per used link under the processor rows.
	Links bool
}

// palette is a set of readable bar fills cycled by task ID.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// WriteGanttSVG renders the schedule as a self-contained SVG document:
// one row per processor (and optionally per used link), a time axis,
// task bars labelled with task names, and link occupations (full-height
// for exclusive slots, proportional height for bandwidth shares).
func WriteGanttSVG(w io.Writer, s *sched.Schedule, opt SVGOptions) error {
	if opt.Width <= 0 {
		opt.Width = 900
	}
	if opt.RowHeight <= 0 {
		opt.RowHeight = 22
	}
	const leftMargin = 90
	const topMargin = 28
	rowH := float64(opt.RowHeight)
	plotW := float64(opt.Width - leftMargin - 10)
	makespan := s.Makespan
	if makespan <= 0 {
		makespan = 1
	}
	x := func(t float64) float64 { return float64(leftMargin) + t/makespan*plotW }

	// Collect rows: processors first, then used links.
	type rowT struct {
		label string
		link  network.LinkID // -1 for processors
	}
	var rows []rowT
	rowOf := map[network.NodeID]int{}
	for _, p := range s.Net.Processors() {
		rowOf[p] = len(rows)
		rows = append(rows, rowT{label: s.Net.Node(p).Name, link: -1})
	}
	linkRow := map[network.LinkID]int{}
	if opt.Links {
		for _, es := range s.Edges {
			if es == nil {
				continue
			}
			for _, pl := range es.Placements {
				if _, ok := linkRow[pl.Link]; ok {
					continue
				}
				l := s.Net.Link(pl.Link)
				label := fmt.Sprintf("L%d", pl.Link)
				if !l.IsBus() {
					label = fmt.Sprintf("%s>%s", s.Net.Node(l.From).Name, s.Net.Node(l.To).Name)
				}
				linkRow[pl.Link] = len(rows)
				rows = append(rows, rowT{label: label, link: pl.Link})
			}
		}
	}
	height := topMargin + len(rows)*opt.RowHeight + 30

	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n",
		opt.Width, height); err != nil {
		return err
	}
	if err := p(`<text x="%d" y="16" font-size="13">%s — makespan %.2f</text>`+"\n",
		leftMargin, xmlEscape(s.Algorithm), s.Makespan); err != nil {
		return err
	}
	// Row backgrounds and labels.
	for i, r := range rows {
		y := float64(topMargin + i*opt.RowHeight)
		fill := "#f6f6f6"
		if i%2 == 1 {
			fill = "#ededed"
		}
		if err := p(`<rect x="%d" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			leftMargin, y, plotW, rowH, fill); err != nil {
			return err
		}
		if err := p(`<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			leftMargin-6, y+rowH-7, xmlEscape(r.label)); err != nil {
			return err
		}
	}
	// Time axis ticks (5 divisions).
	axisY := float64(topMargin + len(rows)*opt.RowHeight)
	for i := 0; i <= 5; i++ {
		t := makespan * float64(i) / 5
		if err := p(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ccc"/>`+"\n",
			x(t), topMargin, x(t), axisY); err != nil {
			return err
		}
		if err := p(`<text x="%.1f" y="%.1f" text-anchor="middle" fill="#555">%.4g</text>`+"\n",
			x(t), axisY+14, t); err != nil {
			return err
		}
	}
	// Task bars.
	for _, tp := range s.Tasks {
		row, ok := rowOf[tp.Proc]
		if !ok {
			continue
		}
		y := float64(topMargin+row*opt.RowHeight) + 2
		wpx := math.Max(x(tp.Finish)-x(tp.Start), 1)
		color := palette[int(tp.Task)%len(palette)]
		name := s.Graph.Task(tp.Task).Name
		if err := p(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" rx="2"><title>%s [%.2f, %.2f]</title></rect>`+"\n",
			x(tp.Start), y, wpx, rowH-4, color, xmlEscape(name), tp.Start, tp.Finish); err != nil {
			return err
		}
		if wpx > 30 {
			if err := p(`<text x="%.1f" y="%.1f" fill="#fff">%s</text>`+"\n",
				x(tp.Start)+3, y+rowH-9, xmlEscape(name)); err != nil {
				return err
			}
		}
	}
	// Link occupations.
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		color := palette[int(es.Edge)%len(palette)]
		for _, pl := range es.Placements {
			row, ok := linkRow[pl.Link]
			if !ok {
				continue
			}
			y := float64(topMargin+row*opt.RowHeight) + 2
			title := fmt.Sprintf("edge %d", es.Edge)
			if pl.Chunks == nil {
				wpx := math.Max(x(pl.Finish)-x(pl.Start), 1)
				if err := p(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.8"><title>%s [%.2f, %.2f]</title></rect>`+"\n",
					x(pl.Start), y, wpx, rowH-4, color, title, pl.Start, pl.Finish); err != nil {
					return err
				}
				continue
			}
			for _, c := range pl.Chunks {
				if fptime.LeqEps(c.End, c.Start) {
					continue
				}
				h := (rowH - 4) * c.Rate
				wpx := math.Max(x(c.End)-x(c.Start), 1)
				if err := p(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.7"><title>%s rate %.0f%%</title></rect>`+"\n",
					x(c.Start), y+(rowH-4)-h, wpx, h, color, title, 100*c.Rate); err != nil {
					return err
				}
			}
		}
	}
	return p("</svg>\n")
}

// xmlEscape escapes the five XML special characters.
func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		case '\'':
			out = append(out, "&apos;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
