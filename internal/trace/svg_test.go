package trace

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
)

func TestWriteGanttSVGWellFormed(t *testing.T) {
	for _, algo := range []sched.Algorithm{sched.NewBA(), sched.NewBBSA()} {
		s := sampleSchedule(t, algo)
		var buf bytes.Buffer
		if err := WriteGanttSVG(&buf, s, SVGOptions{Links: true}); err != nil {
			t.Fatal(err)
		}
		// The output must be well-formed XML.
		dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
		for {
			_, err := dec.Token()
			if err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("%s: invalid XML: %v", algo.Name(), err)
			}
		}
		out := buf.String()
		if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
			t.Fatalf("%s: not an svg document", algo.Name())
		}
		// One bar per task at least.
		if strings.Count(out, "<rect") < s.Graph.NumTasks() {
			t.Errorf("%s: fewer rects than tasks", algo.Name())
		}
		if !strings.Contains(out, "makespan") {
			t.Errorf("%s: missing title", algo.Name())
		}
	}
}

func TestWriteGanttSVGEscapesNames(t *testing.T) {
	g := dag.New()
	g.AddTask(`evil<&>"name'`, 10)
	net := network.Star(2, network.Uniform(1), network.Uniform(1))
	s := mustSchedule(t, sched.NewBA(), g, net)
	var buf bytes.Buffer
	if err := WriteGanttSVG(&buf, s, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "evil<&>") {
		t.Fatal("task name not escaped")
	}
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML with special chars: %v", err)
		}
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c"'d'`); got != "a&lt;b&gt;&amp;&quot;c&quot;&apos;d&apos;" {
		t.Fatalf("escaped %q", got)
	}
	if got := xmlEscape("plain"); got != "plain" {
		t.Fatalf("escaped %q", got)
	}
}
