package trace

import (
	"fmt"
	"io"

	"repro/internal/dag"
	"repro/internal/network"
)

// WriteDAGDOT renders the task graph in Graphviz DOT: nodes labelled
// "name (cost)", edges labelled with their communication cost.
func WriteDAGDOT(w io.Writer, g *dag.Graph) error {
	if _, err := fmt.Fprintln(w, "digraph tasks {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=TB; node [shape=ellipse];"); err != nil {
		return err
	}
	for _, t := range g.Tasks() {
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\\n%.4g\"];\n", t.ID, t.Name, t.Cost); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%.4g\"];\n", e.From, e.To, e.Cost); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteTopologyDOT renders the network topology in Graphviz DOT.
// Processors are boxes, switches diamonds; duplex link pairs are drawn
// once as an undirected-looking edge, lone directed links with arrows,
// and hyperedges (buses) as a hexagonal junction node.
func WriteTopologyDOT(w io.Writer, t *network.Topology) error {
	if _, err := fmt.Fprintln(w, "graph topology {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  layout=neato; overlap=false;"); err != nil {
		return err
	}
	for _, n := range t.Nodes() {
		shape := "box"
		label := n.Name
		if n.Kind == network.Switch {
			shape = "diamond"
		} else {
			label = fmt.Sprintf("%s\\ns=%.4g", n.Name, n.Speed)
		}
		if _, err := fmt.Fprintf(w, "  %s [shape=%s, label=\"%s\"];\n", sanitizeID(n.Name), shape, label); err != nil {
			return err
		}
	}
	// Collect duplex pairs so each cable prints once.
	type pair struct{ a, b network.NodeID }
	seen := map[pair]bool{}
	for _, l := range t.Links() {
		if l.IsBus() {
			bus := fmt.Sprintf("bus%d", l.ID)
			if _, err := fmt.Fprintf(w, "  %s [shape=hexagon, label=\"bus %.4g\"];\n", bus, l.Speed); err != nil {
				return err
			}
			for _, m := range l.Members {
				if _, err := fmt.Fprintf(w, "  %s -- %s;\n", sanitizeID(t.Node(m).Name), bus); err != nil {
					return err
				}
			}
			continue
		}
		p := pair{l.From, l.To}
		rp := pair{l.To, l.From}
		if seen[rp] {
			continue // second direction of a duplex pair
		}
		seen[p] = true
		from := sanitizeID(t.Node(l.From).Name)
		to := sanitizeID(t.Node(l.To).Name)
		if _, err := fmt.Fprintf(w, "  %s -- %s [label=\"%.4g\"];\n", from, to, l.Speed); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
