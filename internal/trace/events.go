package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sched"
)

// Event is one timestamped occurrence in a schedule's execution.
type Event struct {
	Time float64
	Kind string // "task-start", "task-finish", "xfer-start", "xfer-finish"
	Text string
}

// Events flattens a schedule into its chronological event sequence:
// task starts/finishes on processors and transfer starts/arrivals on
// the network. Ties are ordered finish-before-start, then by text, so
// the narration is deterministic.
func Events(s *sched.Schedule) []Event {
	var evs []Event
	for _, tp := range s.Tasks {
		name := s.Graph.Task(tp.Task).Name
		proc := s.Net.Node(tp.Proc).Name
		evs = append(evs,
			Event{Time: tp.Start, Kind: "task-start",
				Text: fmt.Sprintf("task %s starts on %s", name, proc)},
			Event{Time: tp.Finish, Kind: "task-finish",
				Text: fmt.Sprintf("task %s finishes on %s", name, proc)},
		)
	}
	for _, es := range s.Edges {
		if es == nil || len(es.Placements) == 0 {
			continue
		}
		e := s.Graph.Edge(es.Edge)
		from := s.Graph.Task(e.From).Name
		to := s.Graph.Task(e.To).Name
		src := s.Net.Node(es.SrcProc).Name
		dst := s.Net.Node(es.DstProc).Name
		evs = append(evs,
			Event{Time: es.Placements[0].Start, Kind: "xfer-start",
				Text: fmt.Sprintf("transfer %s->%s leaves %s (%d links)", from, to, src, len(es.Route))},
			Event{Time: es.Arrival, Kind: "xfer-finish",
				Text: fmt.Sprintf("transfer %s->%s arrives at %s", from, to, dst)},
		)
	}
	sort.Slice(evs, func(i, j int) bool {
		// edgelint:ignore floateq — exact sort tiebreak for a stable order.
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		fi := evs[i].Kind == "task-finish" || evs[i].Kind == "xfer-finish"
		fj := evs[j].Kind == "task-finish" || evs[j].Kind == "xfer-finish"
		if fi != fj {
			return fi // finishes before starts at the same instant
		}
		return evs[i].Text < evs[j].Text
	})
	return evs
}

// WriteEventLog renders the chronological narration of a schedule,
// one event per line. limit > 0 truncates the log to the first limit
// events (with a trailing note).
func WriteEventLog(w io.Writer, s *sched.Schedule, limit int) error {
	evs := Events(s)
	total := len(evs)
	if limit > 0 && len(evs) > limit {
		evs = evs[:limit]
	}
	for _, ev := range evs {
		if _, err := fmt.Fprintf(w, "t=%12.3f  %-12s %s\n", ev.Time, ev.Kind, ev.Text); err != nil {
			return err
		}
	}
	if len(evs) < total {
		if _, err := fmt.Fprintf(w, "... (%d more events)\n", total-len(evs)); err != nil {
			return err
		}
	}
	return nil
}
