package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/verify"
)

func sampleSchedule(t *testing.T, algo sched.Algorithm) *sched.Schedule {
	t.Helper()
	g := dag.ForkJoin(3, 10, 20)
	net := network.Star(3, network.Uniform(1), network.Uniform(1))
	return mustSchedule(t, algo, g, net)
}

func mustSchedule(t *testing.T, algo sched.Algorithm, g *dag.Graph, net *network.Topology) *sched.Schedule {
	t.Helper()
	s, err := algo.Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	if res := verify.Verify(s); !res.OK() {
		t.Fatalf("%s produced an invalid schedule: %v", algo.Name(), res.Err())
	}
	return s
}

func TestWriteGantt(t *testing.T) {
	s := sampleSchedule(t, sched.NewBA())
	var buf bytes.Buffer
	if err := WriteGantt(&buf, s, GanttOptions{Width: 60, Links: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, p := range s.Net.Processors() {
		if !strings.Contains(out, s.Net.Node(p).Name) {
			t.Errorf("gantt missing processor %s", s.Net.Node(p).Name)
		}
	}
	if !strings.Contains(out, "makespan") {
		t.Error("gantt missing makespan header")
	}
	if !strings.Contains(out, "#") {
		t.Error("gantt missing link occupation marks")
	}
	// Every row body must be exactly 60 cells wide.
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			j := strings.LastIndexByte(line, '|')
			if j-i-1 != 60 {
				t.Errorf("row width %d, want 60: %q", j-i-1, line)
			}
		}
	}
}

func TestWriteGanttSharedBandwidthMarks(t *testing.T) {
	// A random instance big enough that BBSA certainly routes edges.
	r := rand.New(rand.NewSource(2))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    40,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
	})
	net := network.Star(5, network.Uniform(1), network.Uniform(1))
	s := mustSchedule(t, sched.NewBBSA(), g, net)
	if s.CommStats().RoutedEdges == 0 {
		t.Skip("instance had no routed edges")
	}
	var buf bytes.Buffer
	if err := WriteGantt(&buf, s, GanttOptions{Width: 40, Links: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "L") {
		t.Error("no link rows rendered")
	}
}

func TestWriteGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGantt(&buf, &sched.Schedule{}, GanttOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Errorf("unexpected output %q", buf.String())
	}
}

func TestWriteScheduleCSV(t *testing.T) {
	s := sampleSchedule(t, sched.NewBA())
	var buf bytes.Buffer
	if err := WriteScheduleCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "kind,id,resource,start,finish,detail" {
		t.Fatalf("header %q", lines[0])
	}
	var tasks, edges int
	for _, l := range lines[1:] {
		switch {
		case strings.HasPrefix(l, "task,"):
			tasks++
		case strings.HasPrefix(l, "edge,"), strings.HasPrefix(l, "chunk,"):
			edges++
		default:
			t.Errorf("unexpected row %q", l)
		}
	}
	if tasks != s.Graph.NumTasks() {
		t.Errorf("%d task rows, want %d", tasks, s.Graph.NumTasks())
	}
	if edges == 0 {
		t.Error("no edge rows")
	}
}

func TestWriteScheduleJSONRoundTrips(t *testing.T) {
	for _, algo := range []sched.Algorithm{sched.NewBA(), sched.NewBBSA()} {
		s := sampleSchedule(t, algo)
		var buf bytes.Buffer
		if err := WriteScheduleJSON(&buf, s); err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: invalid JSON: %v", algo.Name(), err)
		}
		if doc["algorithm"] != s.Algorithm {
			t.Errorf("algorithm %v", doc["algorithm"])
		}
		if doc["makespan"].(float64) != s.Makespan {
			t.Errorf("makespan %v", doc["makespan"])
		}
		if n := len(doc["tasks"].([]any)); n != s.Graph.NumTasks() {
			t.Errorf("tasks %d", n)
		}
	}
}

func TestWriteDAGDOT(t *testing.T) {
	g := dag.Diamond(5, 7)
	var buf bytes.Buffer
	if err := WriteDAGDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph tasks {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a digraph: %q", out)
	}
	if strings.Count(out, "->") != g.NumEdges() {
		t.Errorf("edge count mismatch")
	}
}

func TestWriteTopologyDOT(t *testing.T) {
	top := network.Star(3, network.Uniform(2), network.Uniform(1))
	var buf bytes.Buffer
	if err := WriteTopologyDOT(&buf, top); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph topology {") {
		t.Fatalf("not a graph: %q", out)
	}
	// Duplex pairs render once: star of 3 has 3 cables.
	if got := strings.Count(out, " -- "); got != 3 {
		t.Errorf("%d cables rendered, want 3", got)
	}
	if !strings.Contains(out, "diamond") {
		t.Error("switch shape missing")
	}
}

func TestWriteTopologyDOTBus(t *testing.T) {
	top := network.Bus(3, network.Uniform(1), 2)
	var buf bytes.Buffer
	if err := WriteTopologyDOT(&buf, top); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hexagon") {
		t.Error("bus junction missing")
	}
}

func TestSanitizeID(t *testing.T) {
	if got := sanitizeID("P0-x.y z"); got != "P0_x_y_z" {
		t.Fatalf("sanitized %q", got)
	}
}

func TestWriteDAGDOTEdgeLabels(t *testing.T) {
	g := dag.Chain(3, 7, 13)
	var buf bytes.Buffer
	if err := WriteDAGDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `label="13"`) {
		t.Errorf("edge cost label missing:\n%s", out)
	}
	if !strings.Contains(out, `label="n0\n7"`) {
		t.Errorf("task label missing:\n%s", out)
	}
}

func TestWriteScheduleCSVChunks(t *testing.T) {
	// BBSA emits chunk rows.
	r := rand.New(rand.NewSource(4))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    30,
		TaskCost: dag.CostDist{Lo: 1, Hi: 50},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
	})
	net := network.Star(5, network.Uniform(1), network.Uniform(1))
	s := mustSchedule(t, sched.NewBBSA(), g, net)
	if s.CommStats().RoutedEdges == 0 {
		t.Skip("no routed edges")
	}
	var buf bytes.Buffer
	if err := WriteScheduleCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "chunk,") {
		t.Error("no chunk rows for a bandwidth schedule")
	}
}
