package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
)

func TestWriteHTMLReport(t *testing.T) {
	for _, algo := range []sched.Algorithm{sched.NewOIHSA(), sched.NewBBSA()} {
		s := sampleSchedule(t, algo)
		var buf bytes.Buffer
		if err := WriteHTMLReport(&buf, s); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{
			"<!DOCTYPE html>", "<svg", "</svg>", "Gantt chart",
			"Processors", s.Algorithm, "speedup",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: report missing %q", algo.Name(), want)
			}
		}
	}
}

func TestWriteHTMLReportIdeal(t *testing.T) {
	g := dag.Diamond(10, 10)
	net := network.Star(3, network.Uniform(1), network.Uniform(1))
	s := mustSchedule(t, sched.NewClassic(), g, net)
	var buf bytes.Buffer
	if err := WriteHTMLReport(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "Critical chain") {
		t.Error("ideal report must not include chain analysis")
	}
}

func TestWriteHTMLReportEscapesNames(t *testing.T) {
	g := dag.New()
	g.AddTask(`<script>alert(1)</script>`, 10)
	net := network.Star(2, network.Uniform(1), network.Uniform(1))
	s := mustSchedule(t, sched.NewBA(), g, net)
	var buf bytes.Buffer
	if err := WriteHTMLReport(&buf, s); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert(1)</script>") {
		t.Fatal("task name not escaped in HTML report")
	}
}
