package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sched"
)

func TestEventsChronologicalAndComplete(t *testing.T) {
	s := sampleSchedule(t, sched.NewOIHSA())
	evs := Events(s)
	// Two events per task plus two per routed edge.
	routed := s.CommStats().RoutedEdges
	want := 2*s.Graph.NumTasks() + 2*routed
	if len(evs) != want {
		t.Fatalf("%d events, want %d", len(evs), want)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time-1e-12 {
			t.Fatalf("events out of order at %d", i)
		}
	}
	starts, finishes := 0, 0
	for _, ev := range evs {
		switch ev.Kind {
		case "task-start":
			starts++
		case "task-finish":
			finishes++
		}
	}
	if starts != s.Graph.NumTasks() || finishes != s.Graph.NumTasks() {
		t.Fatalf("task events %d/%d", starts, finishes)
	}
}

func TestWriteEventLog(t *testing.T) {
	s := sampleSchedule(t, sched.NewBA())
	var buf bytes.Buffer
	if err := WriteEventLog(&buf, s, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "task-start") || !strings.Contains(out, "t=") {
		t.Fatalf("log output %q", out)
	}
	// Truncation.
	buf.Reset()
	if err := WriteEventLog(&buf, s, 3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 || !strings.Contains(lines[3], "more events") {
		t.Fatalf("truncated log: %q", buf.String())
	}
}

func TestEventsDeterministic(t *testing.T) {
	s := sampleSchedule(t, sched.NewBBSA())
	a := Events(s)
	b := Events(s)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}
