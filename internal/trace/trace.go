// Package trace renders schedules, task graphs, and topologies for
// humans and downstream tools: text Gantt charts, CSV event dumps,
// JSON documents, and Graphviz DOT.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/network"
	"repro/internal/sched"
)

// GanttOptions controls text Gantt rendering.
type GanttOptions struct {
	// Width is the number of character cells of the time axis
	// (default 80).
	Width int
	// Links additionally renders one row per network link that carries
	// traffic.
	Links bool
}

// WriteGantt renders the schedule as a text Gantt chart: one row per
// processor (and optionally per used link), time flowing rightward.
// Task cells show the task ID modulo 10; link cells show '#' for
// exclusive occupation and '+' for partial (shared-bandwidth) use.
func WriteGantt(w io.Writer, s *sched.Schedule, opt GanttOptions) error {
	if opt.Width <= 0 {
		opt.Width = 80
	}
	if s.Makespan <= 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	scale := float64(opt.Width) / s.Makespan
	cell := func(t float64) int {
		c := int(t * scale)
		if c >= opt.Width {
			c = opt.Width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	if _, err := fmt.Fprintf(w, "%s  makespan=%.2f  (each cell = %.2f time units)\n",
		s.Algorithm, s.Makespan, s.Makespan/float64(opt.Width)); err != nil {
		return err
	}
	// Processor rows in insertion order.
	rows := map[network.NodeID][]rune{}
	for _, p := range s.Net.Processors() {
		row := make([]rune, opt.Width)
		for i := range row {
			row[i] = '.'
		}
		rows[p] = row
	}
	for _, tp := range s.Tasks {
		row := rows[tp.Proc]
		if row == nil {
			continue
		}
		lo, hi := cell(tp.Start), cell(tp.Finish)
		for i := lo; i <= hi && i < opt.Width; i++ {
			row[i] = rune('0' + int(tp.Task)%10)
		}
	}
	for _, p := range s.Net.Processors() {
		if _, err := fmt.Fprintf(w, "%-8s |%s|\n", s.Net.Node(p).Name, string(rows[p])); err != nil {
			return err
		}
	}
	if !opt.Links {
		return nil
	}
	// Link rows, only for links that carry traffic, in link-ID order.
	type linkRow struct {
		id  network.LinkID
		row []rune
	}
	lrs := map[network.LinkID]*linkRow{}
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		for _, pl := range es.Placements {
			lr := lrs[pl.Link]
			if lr == nil {
				row := make([]rune, opt.Width)
				for i := range row {
					row[i] = '.'
				}
				lr = &linkRow{id: pl.Link, row: row}
				lrs[pl.Link] = lr
			}
			mark := func(a, b float64, full bool) {
				lo, hi := cell(a), cell(b)
				for i := lo; i <= hi && i < opt.Width; i++ {
					if full {
						lr.row[i] = '#'
					} else if lr.row[i] != '#' {
						lr.row[i] = '+'
					}
				}
			}
			if pl.Chunks == nil {
				mark(pl.Start, pl.Finish, true)
			} else {
				for _, c := range pl.Chunks {
					mark(c.Start, c.End, c.Rate > 0.999)
				}
			}
		}
	}
	ids := make([]network.LinkID, 0, len(lrs))
	for id := range lrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l := s.Net.Link(id)
		name := fmt.Sprintf("L%d", id)
		if !l.IsBus() {
			name = fmt.Sprintf("L%d:%s>%s", id, s.Net.Node(l.From).Name, s.Net.Node(l.To).Name)
		}
		if _, err := fmt.Fprintf(w, "%-14s |%s|\n", name, string(lrs[id].row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteScheduleCSV dumps every scheduled event (task executions and
// per-link edge occupations) as CSV rows:
// kind,id,resource,start,finish,detail.
func WriteScheduleCSV(w io.Writer, s *sched.Schedule) error {
	if _, err := fmt.Fprintln(w, "kind,id,resource,start,finish,detail"); err != nil {
		return err
	}
	for _, tp := range s.Tasks {
		name := s.Graph.Task(tp.Task).Name
		if _, err := fmt.Fprintf(w, "task,%d,%s,%.6f,%.6f,%s\n",
			tp.Task, s.Net.Node(tp.Proc).Name, tp.Start, tp.Finish, name); err != nil {
			return err
		}
	}
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		for leg, pl := range es.Placements {
			if pl.Chunks == nil {
				if _, err := fmt.Fprintf(w, "edge,%d,L%d,%.6f,%.6f,leg%d\n",
					es.Edge, pl.Link, pl.Start, pl.Finish, leg); err != nil {
					return err
				}
				continue
			}
			for _, c := range pl.Chunks {
				if _, err := fmt.Fprintf(w, "chunk,%d,L%d,%.6f,%.6f,leg%d rate=%.3f vol=%.3f\n",
					es.Edge, pl.Link, c.Start, c.End, leg, c.Rate, c.Volume); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// scheduleJSON is the stable JSON shape of a schedule dump.
type scheduleJSON struct {
	Algorithm string           `json:"algorithm"`
	Makespan  float64          `json:"makespan"`
	Tasks     []taskJSON       `json:"tasks"`
	Edges     []edgeJSON       `json:"edges,omitempty"`
	Stats     *sched.CommStats `json:"commStats,omitempty"`
}

type taskJSON struct {
	ID     int     `json:"id"`
	Name   string  `json:"name"`
	Proc   string  `json:"processor"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
}

type edgeJSON struct {
	ID      int       `json:"id"`
	From    int       `json:"from"`
	To      int       `json:"to"`
	Route   []int     `json:"route"`
	Arrival float64   `json:"arrival"`
	Legs    []legJSON `json:"legs"`
}

type legJSON struct {
	Link   int         `json:"link"`
	Start  float64     `json:"start"`
	Finish float64     `json:"finish"`
	Chunks []chunkJSON `json:"chunks,omitempty"`
}

type chunkJSON struct {
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Rate   float64 `json:"rate"`
	Volume float64 `json:"volume"`
}

// WriteScheduleJSON dumps the schedule as indented JSON.
func WriteScheduleJSON(w io.Writer, s *sched.Schedule) error {
	doc := scheduleJSON{Algorithm: s.Algorithm, Makespan: s.Makespan}
	for _, tp := range s.Tasks {
		doc.Tasks = append(doc.Tasks, taskJSON{
			ID:     int(tp.Task),
			Name:   s.Graph.Task(tp.Task).Name,
			Proc:   s.Net.Node(tp.Proc).Name,
			Start:  tp.Start,
			Finish: tp.Finish,
		})
	}
	for _, es := range s.Edges {
		if es == nil {
			continue
		}
		e := s.Graph.Edge(es.Edge)
		ej := edgeJSON{ID: int(es.Edge), From: int(e.From), To: int(e.To), Arrival: es.Arrival}
		for _, lid := range es.Route {
			ej.Route = append(ej.Route, int(lid))
		}
		for _, pl := range es.Placements {
			lj := legJSON{Link: int(pl.Link), Start: pl.Start, Finish: pl.Finish}
			for _, c := range pl.Chunks {
				lj.Chunks = append(lj.Chunks, chunkJSON{Start: c.Start, End: c.End, Rate: c.Rate, Volume: c.Volume})
			}
			ej.Legs = append(ej.Legs, lj)
		}
		doc.Edges = append(doc.Edges, ej)
	}
	cs := s.CommStats()
	doc.Stats = &cs
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// sanitizeID makes a string safe as a DOT node identifier.
func sanitizeID(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
