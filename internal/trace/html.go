package trace

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/sched"
)

// htmlReport is the template context of WriteHTMLReport.
type htmlReport struct {
	Algorithm   string
	Makespan    float64
	Tasks       int
	Edges       int
	Routed      int
	MeanHops    float64
	Speedup     float64
	Efficiency  float64
	CPBound     float64
	WorkBound   float64
	ProcRows    []htmlProcRow
	ChainRows   []htmlChainRow
	Breakdown   analysis.Breakdown
	GanttSVG    template.HTML
	ContMean    float64
	ContMax     float64
	HasAnalysis bool
}

type htmlProcRow struct {
	Name    string
	Tasks   int
	UtilPct float64
}

type htmlChainRow struct {
	Kind   string
	Start  float64
	End    float64
	Dur    float64
	Detail string
}

var htmlTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Algorithm}} schedule report</title>
<style>
body { font-family: sans-serif; margin: 24px; color: #222; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
table { border-collapse: collapse; margin-top: 8px; }
td, th { border: 1px solid #ccc; padding: 4px 10px; font-size: 13px; text-align: right; }
th { background: #f0f0f0; } td.l, th.l { text-align: left; }
.metrics span { display: inline-block; margin-right: 24px; font-size: 14px; }
.metrics b { font-size: 18px; }
</style></head><body>
<h1>{{.Algorithm}} — makespan {{printf "%.2f" .Makespan}}</h1>
<div class="metrics">
<span>tasks <b>{{.Tasks}}</b></span>
<span>edges <b>{{.Edges}}</b> ({{.Routed}} routed{{if .Routed}}, mean {{printf "%.1f" .MeanHops}} hops{{end}})</span>
{{if .HasAnalysis}}
<span>speedup <b>{{printf "%.2f" .Speedup}}</b></span>
<span>efficiency <b>{{printf "%.1f" .Efficiency}}%</b></span>
<span>bounds: CP {{printf "%.1f" .CPBound}} / work {{printf "%.1f" .WorkBound}}</span>
{{end}}
</div>
<h2>Gantt chart</h2>
{{.GanttSVG}}
{{if .ProcRows}}<h2>Processors</h2>
<table><tr><th class="l">processor</th><th>tasks</th><th>utilization</th></tr>
{{range .ProcRows}}<tr><td class="l">{{.Name}}</td><td>{{.Tasks}}</td><td>{{printf "%.1f" .UtilPct}}%</td></tr>
{{end}}</table>{{end}}
{{if .HasAnalysis}}
<h2>Contention</h2>
<p>Avoidable communication delay over {{.Routed}} routed edges: mean {{printf "%.2f" .ContMean}}, max {{printf "%.2f" .ContMax}}.</p>
<h2>Critical chain</h2>
<p>compute {{printf "%.1f" .Breakdown.Compute}} · comm {{printf "%.1f" .Breakdown.Comm}} · processor wait {{printf "%.1f" .Breakdown.ProcWait}} · idle {{printf "%.1f" .Breakdown.Idle}}</p>
<table><tr><th>start</th><th>end</th><th>duration</th><th class="l">kind</th><th class="l">detail</th></tr>
{{range .ChainRows}}<tr><td>{{printf "%.2f" .Start}}</td><td>{{printf "%.2f" .End}}</td><td>{{printf "%.2f" .Dur}}</td><td class="l">{{.Kind}}</td><td class="l">{{.Detail}}</td></tr>
{{end}}</table>
{{end}}
</body></html>
`))

// WriteHTMLReport renders a self-contained HTML report: headline
// metrics, the SVG Gantt chart (inline), per-processor utilization,
// and the analysis package's contention and critical-chain findings.
func WriteHTMLReport(w io.Writer, s *sched.Schedule) error {
	rep := analysis.Analyze(s)
	cs := s.CommStats()
	ctx := htmlReport{
		Algorithm:   s.Algorithm,
		Makespan:    s.Makespan,
		Tasks:       len(s.Tasks),
		Edges:       s.Graph.NumEdges(),
		Routed:      cs.RoutedEdges,
		MeanHops:    cs.MeanHops,
		Speedup:     rep.Speedup,
		Efficiency:  100 * rep.Efficiency,
		CPBound:     rep.CPBound,
		WorkBound:   rep.WorkBound,
		Breakdown:   rep.ChainBreakdown,
		ContMean:    rep.ContentionDelay.Mean,
		ContMax:     rep.ContentionDelay.Max,
		HasAnalysis: !s.Ideal,
	}
	// Per-processor table.
	util := s.ProcUtilization()
	count := map[string]int{}
	for _, tp := range s.Tasks {
		count[s.Net.Node(tp.Proc).Name]++
	}
	for _, p := range s.Net.Processors() {
		name := s.Net.Node(p).Name
		ctx.ProcRows = append(ctx.ProcRows, htmlProcRow{
			Name:    name,
			Tasks:   count[name],
			UtilPct: 100 * util[p],
		})
	}
	sort.Slice(ctx.ProcRows, func(i, j int) bool { return ctx.ProcRows[i].Name < ctx.ProcRows[j].Name })
	for _, c := range rep.CriticalChain {
		ctx.ChainRows = append(ctx.ChainRows, htmlChainRow{
			Kind: c.Kind.String(), Start: c.Start, End: c.End, Dur: c.Dur(), Detail: c.Detail,
		})
	}
	// Inline SVG. The SVG writer escapes all user-controlled strings,
	// so embedding it as template.HTML is safe.
	var svg strings.Builder
	if err := WriteGanttSVG(&svg, s, SVGOptions{Width: 1000, Links: true}); err != nil {
		return fmt.Errorf("trace: embedding svg: %w", err)
	}
	ctx.GanttSVG = template.HTML(svg.String())
	return htmlTmpl.Execute(w, ctx)
}
