package network

import "fmt"

// Route is a path through the network: the ordered list of links an
// edge's communication traverses from a source processor to a target
// processor. An intra-processor route is the empty slice. Routes
// handed out by the route cache are shared between forked scheduler
// states and must never be written after they are built.
// edgelint:immutable — cached routes are shared read-only
type Route []LinkID

// ErrNoRoute is returned when no path exists between two nodes.
type ErrNoRoute struct {
	From, To NodeID
}

func (e *ErrNoRoute) Error() string {
	return fmt.Sprintf("network: no route from node %d to node %d", e.From, e.To)
}

// BFSRoute returns a minimal route (fewest links) from src to dst using
// breadth-first search with deterministic tie-breaking by link
// insertion order, as used by the Basic Algorithm. src == dst yields an
// empty route. The search runs on a pooled Router; hold a Router (see
// NewRouter) to also reuse a route cache across calls.
func (t *Topology) BFSRoute(src, dst NodeID) (Route, error) {
	r := t.router()
	// edgelint:ignore routerconfine — exclusive handoff: the Router is
	// fetched from and returned to the pool by this goroutine only, and
	// sync.Pool never hands one value to two goroutines at once.
	defer t.routers.Put(r)
	return r.BFSRoute(src, dst)
}

func (t *Topology) unwind(prev []hop, src, dst NodeID) Route {
	var rev []LinkID
	for n := dst; n != src; n = prev[n].To {
		rev = append(rev, prev[n].Link)
	}
	route := make(Route, len(rev))
	for i := range rev {
		route[i] = rev[len(rev)-1-i]
	}
	return route
}

// Label is the state the modified Dijkstra search propagates along a
// tentative route: the scheduled start and finish time of the edge's
// communication on the most recent link. Labels are ordered primarily
// by Finish and secondarily by Start; Hops breaks remaining ties so
// that among equally fast routes the shortest is preferred.
type Label struct {
	Start  float64
	Finish float64
	Hops   int
}

// Less reports whether l is strictly better than m. The comparisons
// are exact on purpose: label dominance must be a strict weak order,
// and an epsilon here would make routing sensitive to insertion order.
func (l Label) Less(m Label) bool {
	// edgelint:ignore floateq — exact lexicographic label dominance.
	if l.Finish != m.Finish {
		return l.Finish < m.Finish
	}
	// edgelint:ignore floateq — exact lexicographic label dominance.
	if l.Start != m.Start {
		return l.Start < m.Start
	}
	return l.Hops < m.Hops
}

// RelaxFunc computes the label after traversing link l with the current
// label cur: typically it probes the link's timeline for the earliest
// feasible slot honouring the link causality condition. It must be
// monotone: a worse input label must not produce a better output label.
type RelaxFunc func(l Link, cur Label) Label

// DijkstraRoute finds the route from src to dst minimizing the final
// label under the given relaxation, implementing the paper's modified
// routing algorithm (§4.3): "the minimal criterion is the finish time
// of the edge on each link by basic insertion". init is the label at
// the source node (its Finish is normally the source task's finish
// time, Start likewise). src == dst yields an empty route. The search
// runs on a pooled Router (see NewRouter for a dedicated one).
func (t *Topology) DijkstraRoute(src, dst NodeID, init Label, relax RelaxFunc) (Route, Label, error) {
	r := t.router()
	// edgelint:ignore routerconfine — exclusive handoff: the Router is
	// fetched from and returned to the pool by this goroutine only, and
	// sync.Pool never hands one value to two goroutines at once.
	defer t.routers.Put(r)
	return r.DijkstraRoute(src, dst, init, relax)
}

// router fetches a scratch Router from the topology's pool.
func (t *Topology) router() *Router {
	if v := t.routers.Get(); v != nil {
		return v.(*Router)
	}
	return t.NewRouter(nil)
}

type labelItem struct {
	node  NodeID
	label Label
}

type labelQueue []labelItem

func (q labelQueue) Len() int { return len(q) }
func (q labelQueue) Less(i, j int) bool {
	if q[i].label.Less(q[j].label) {
		return true
	}
	if q[j].label.Less(q[i].label) {
		return false
	}
	return q[i].node < q[j].node
}
func (q labelQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *labelQueue) Push(x any)   { *q = append(*q, x.(labelItem)) }
func (q *labelQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// RouteNodes expands a route starting at src into the sequence of nodes
// visited, validating that consecutive links connect. It is used by the
// schedule verifier.
func (t *Topology) RouteNodes(src NodeID, r Route) ([]NodeID, error) {
	nodes := []NodeID{src}
	cur := src
	for i, lid := range r {
		if lid < 0 || int(lid) >= len(t.links) {
			return nil, fmt.Errorf("network: route hop %d: link %d does not exist", i, lid)
		}
		l := t.links[lid]
		var next NodeID = -1
		if l.IsBus() {
			// The bus must contain cur; the next node is determined by
			// the following hop (or the route's destination). We cannot
			// resolve it locally, so pick the unique member that makes
			// the rest of the route valid; for verification purposes we
			// defer to the caller by trying each member.
			found := false
			for _, m := range l.Members {
				if m == cur {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("network: route hop %d: node %d not on bus %d", i, cur, lid)
			}
			// Choose the member that the next link (if any) departs
			// from, otherwise leave ambiguous and take the first
			// non-cur member; the verifier checks the final node is the
			// destination separately.
			if i+1 < len(r) {
				nxt := t.links[r[i+1]]
				for _, m := range l.Members {
					if m == cur {
						continue
					}
					if nxt.IsBus() {
						for _, m2 := range nxt.Members {
							if m2 == m {
								next = m
								break
							}
						}
					} else if nxt.From == m {
						next = m
					}
					if next >= 0 {
						break
					}
				}
			}
			if next < 0 {
				for _, m := range l.Members {
					if m != cur {
						next = m
						break
					}
				}
			}
		} else {
			if l.From != cur {
				return nil, fmt.Errorf("network: route hop %d: link %d departs from node %d, not %d", i, lid, l.From, cur)
			}
			next = l.To
		}
		nodes = append(nodes, next)
		cur = next
	}
	return nodes, nil
}

// ValidateRoute checks that r is a connected path from processor src to
// processor dst.
func (t *Topology) ValidateRoute(src, dst NodeID, r Route) error {
	if src == dst {
		if len(r) != 0 {
			return fmt.Errorf("network: intra-processor route must be empty, got %d links", len(r))
		}
		return nil
	}
	if len(r) == 0 {
		return fmt.Errorf("network: empty route between distinct nodes %d and %d", src, dst)
	}
	nodes, err := t.RouteNodes(src, r)
	if err != nil {
		return err
	}
	last := nodes[len(nodes)-1]
	// For routes ending on a bus the heuristic expansion may have
	// picked the wrong member; accept if dst is on the final bus.
	if last != dst {
		fl := t.links[r[len(r)-1]]
		if fl.IsBus() {
			for _, m := range fl.Members {
				if m == dst {
					return nil
				}
			}
		}
		return fmt.Errorf("network: route ends at node %d, want %d", last, dst)
	}
	return nil
}
