package network

import (
	"container/heap"
	"fmt"
)

// Route is a path through the network: the ordered list of links an
// edge's communication traverses from a source processor to a target
// processor. An intra-processor route is the empty slice.
type Route []LinkID

// ErrNoRoute is returned when no path exists between two nodes.
type ErrNoRoute struct {
	From, To NodeID
}

func (e *ErrNoRoute) Error() string {
	return fmt.Sprintf("network: no route from node %d to node %d", e.From, e.To)
}

// BFSRoute returns a minimal route (fewest links) from src to dst using
// breadth-first search with deterministic tie-breaking by link
// insertion order, as used by the Basic Algorithm. src == dst yields an
// empty route.
func (t *Topology) BFSRoute(src, dst NodeID) (Route, error) {
	t.checkNode(src)
	t.checkNode(dst)
	if src == dst {
		return Route{}, nil
	}
	prev := make([]hop, len(t.nodes))
	for i := range prev {
		prev[i] = hop{Link: -1, To: -1}
	}
	seen := make([]bool, len(t.nodes))
	seen[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, h := range t.adj[n] {
			if seen[h.To] {
				continue
			}
			seen[h.To] = true
			prev[h.To] = hop{Link: h.Link, To: n}
			if h.To == dst {
				return t.unwind(prev, src, dst), nil
			}
			queue = append(queue, h.To)
		}
	}
	return nil, &ErrNoRoute{From: src, To: dst}
}

func (t *Topology) unwind(prev []hop, src, dst NodeID) Route {
	var rev []LinkID
	for n := dst; n != src; n = prev[n].To {
		rev = append(rev, prev[n].Link)
	}
	route := make(Route, len(rev))
	for i := range rev {
		route[i] = rev[len(rev)-1-i]
	}
	return route
}

// Label is the state the modified Dijkstra search propagates along a
// tentative route: the scheduled start and finish time of the edge's
// communication on the most recent link. Labels are ordered primarily
// by Finish and secondarily by Start; Hops breaks remaining ties so
// that among equally fast routes the shortest is preferred.
type Label struct {
	Start  float64
	Finish float64
	Hops   int
}

// Less reports whether l is strictly better than m. The comparisons
// are exact on purpose: label dominance must be a strict weak order,
// and an epsilon here would make routing sensitive to insertion order.
func (l Label) Less(m Label) bool {
	// edgelint:ignore floateq — exact lexicographic label dominance.
	if l.Finish != m.Finish {
		return l.Finish < m.Finish
	}
	// edgelint:ignore floateq — exact lexicographic label dominance.
	if l.Start != m.Start {
		return l.Start < m.Start
	}
	return l.Hops < m.Hops
}

// RelaxFunc computes the label after traversing link l with the current
// label cur: typically it probes the link's timeline for the earliest
// feasible slot honouring the link causality condition. It must be
// monotone: a worse input label must not produce a better output label.
type RelaxFunc func(l Link, cur Label) Label

// DijkstraRoute finds the route from src to dst minimizing the final
// label under the given relaxation, implementing the paper's modified
// routing algorithm (§4.3): "the minimal criterion is the finish time
// of the edge on each link by basic insertion". init is the label at
// the source node (its Finish is normally the source task's finish
// time, Start likewise). src == dst yields an empty route.
func (t *Topology) DijkstraRoute(src, dst NodeID, init Label, relax RelaxFunc) (Route, Label, error) {
	t.checkNode(src)
	t.checkNode(dst)
	if src == dst {
		return Route{}, init, nil
	}
	const unvisited = -2
	prev := make([]hop, len(t.nodes))
	best := make([]Label, len(t.nodes))
	state := make([]int8, len(t.nodes)) // 0 unseen, 1 open, 2 closed
	for i := range prev {
		prev[i] = hop{Link: -1, To: unvisited}
	}
	pq := &labelQueue{}
	heap.Init(pq)
	best[src] = init
	state[src] = 1
	heap.Push(pq, labelItem{node: src, label: init})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(labelItem)
		if state[it.node] == 2 {
			continue
		}
		if best[it.node].Less(it.label) {
			continue // stale entry
		}
		state[it.node] = 2
		if it.node == dst {
			return t.unwind(prev, src, dst), best[dst], nil
		}
		for _, h := range t.adj[it.node] {
			if state[h.To] == 2 {
				continue
			}
			nl := relax(t.links[h.Link], best[it.node])
			nl.Hops = best[it.node].Hops + 1
			if state[h.To] == 0 || nl.Less(best[h.To]) {
				best[h.To] = nl
				prev[h.To] = hop{Link: h.Link, To: it.node}
				state[h.To] = 1
				heap.Push(pq, labelItem{node: h.To, label: nl})
			}
		}
	}
	return nil, Label{}, &ErrNoRoute{From: src, To: dst}
}

type labelItem struct {
	node  NodeID
	label Label
}

type labelQueue []labelItem

func (q labelQueue) Len() int { return len(q) }
func (q labelQueue) Less(i, j int) bool {
	if q[i].label.Less(q[j].label) {
		return true
	}
	if q[j].label.Less(q[i].label) {
		return false
	}
	return q[i].node < q[j].node
}
func (q labelQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *labelQueue) Push(x any)   { *q = append(*q, x.(labelItem)) }
func (q *labelQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// RouteNodes expands a route starting at src into the sequence of nodes
// visited, validating that consecutive links connect. It is used by the
// schedule verifier.
func (t *Topology) RouteNodes(src NodeID, r Route) ([]NodeID, error) {
	nodes := []NodeID{src}
	cur := src
	for i, lid := range r {
		if lid < 0 || int(lid) >= len(t.links) {
			return nil, fmt.Errorf("network: route hop %d: link %d does not exist", i, lid)
		}
		l := t.links[lid]
		var next NodeID = -1
		if l.IsBus() {
			// The bus must contain cur; the next node is determined by
			// the following hop (or the route's destination). We cannot
			// resolve it locally, so pick the unique member that makes
			// the rest of the route valid; for verification purposes we
			// defer to the caller by trying each member.
			found := false
			for _, m := range l.Members {
				if m == cur {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("network: route hop %d: node %d not on bus %d", i, cur, lid)
			}
			// Choose the member that the next link (if any) departs
			// from, otherwise leave ambiguous and take the first
			// non-cur member; the verifier checks the final node is the
			// destination separately.
			if i+1 < len(r) {
				nxt := t.links[r[i+1]]
				for _, m := range l.Members {
					if m == cur {
						continue
					}
					if nxt.IsBus() {
						for _, m2 := range nxt.Members {
							if m2 == m {
								next = m
								break
							}
						}
					} else if nxt.From == m {
						next = m
					}
					if next >= 0 {
						break
					}
				}
			}
			if next < 0 {
				for _, m := range l.Members {
					if m != cur {
						next = m
						break
					}
				}
			}
		} else {
			if l.From != cur {
				return nil, fmt.Errorf("network: route hop %d: link %d departs from node %d, not %d", i, lid, l.From, cur)
			}
			next = l.To
		}
		nodes = append(nodes, next)
		cur = next
	}
	return nodes, nil
}

// ValidateRoute checks that r is a connected path from processor src to
// processor dst.
func (t *Topology) ValidateRoute(src, dst NodeID, r Route) error {
	if src == dst {
		if len(r) != 0 {
			return fmt.Errorf("network: intra-processor route must be empty, got %d links", len(r))
		}
		return nil
	}
	if len(r) == 0 {
		return fmt.Errorf("network: empty route between distinct nodes %d and %d", src, dst)
	}
	nodes, err := t.RouteNodes(src, r)
	if err != nil {
		return err
	}
	last := nodes[len(nodes)-1]
	// For routes ending on a bus the heuristic expansion may have
	// picked the wrong member; accept if dst is on the final bus.
	if last != dst {
		fl := t.links[r[len(r)-1]]
		if fl.IsBus() {
			for _, m := range fl.Members {
				if m == dst {
					return nil
				}
			}
		}
		return fmt.Errorf("network: route ends at node %d, want %d", last, dst)
	}
	return nil
}
