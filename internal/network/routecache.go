package network

import (
	"container/list"
	"sync"
)

// DefaultRouteCacheSize is the entry capacity of a route cache created
// with size 0. A sweep instance touches at most |P|·(|P|−1) ordered
// processor pairs; 4096 covers a 64-processor machine completely.
const DefaultRouteCacheSize = 4096

// RouteCache memoizes BFS minimal routes between node pairs. Because a
// Topology is immutable during scheduling and BFSRoute is a pure
// function of the topology, a (src, dst) pair always yields the same
// route; the schedulers' processor probes recompute it thousands of
// times per sweep. The cache is a bounded LRU and safe for concurrent
// use, so forked scheduler states probing candidate processors in
// parallel can share one instance.
//
// Cached routes are shared slices: callers must treat them as
// read-only, as all scheduler code does.
type RouteCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // *routeEntry, front = most recently used
	byKey map[routeKey]*list.Element

	hits, misses int64
}

type routeKey struct {
	src, dst NodeID
}

type routeEntry struct {
	key   routeKey
	route Route
	err   error
}

// NewRouteCache returns an empty cache holding at most capacity
// entries (DefaultRouteCacheSize when capacity is 0 or negative).
func NewRouteCache(capacity int) *RouteCache {
	if capacity <= 0 {
		capacity = DefaultRouteCacheSize
	}
	return &RouteCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[routeKey]*list.Element),
	}
}

// lookup returns the cached route (or routing error) for the pair and
// whether it was present.
//
// edgelint:noalloc
func (c *RouteCache) lookup(src, dst NodeID) (Route, error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[routeKey{src, dst}]
	if !ok {
		c.misses++
		return nil, nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e := el.Value.(*routeEntry)
	return e.route, e.err, true
}

// store records the route (or routing error) for the pair, evicting
// the least recently used entry when full.
//
// edgelint:coldpath — cache fill, once per (src, dst) pair
func (c *RouteCache) store(src, dst NodeID, route Route, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := routeKey{src, dst}
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*routeEntry)
		e.route, e.err = route, err
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*routeEntry).key)
	}
	c.byKey[key] = c.order.PushFront(&routeEntry{key: key, route: route, err: err})
}

// Len reports the number of cached pairs.
func (c *RouteCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports the lookup hit and miss counts so far.
func (c *RouteCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
