package network

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultRouteCacheSize is the entry capacity of a route cache created
// with size 0. A sweep instance touches at most |P|·(|P|−1) ordered
// processor pairs; 4096 covers a 64-processor machine completely.
const DefaultRouteCacheSize = 4096

// RouteCache memoizes BFS minimal routes between node pairs. Because a
// Topology is immutable during scheduling and BFSRoute is a pure
// function of the topology, a (src, dst) pair always yields the same
// route; the schedulers' processor probes recompute it thousands of
// times per sweep. The cache is a bounded LRU and safe for concurrent
// use, so forked scheduler states probing candidate processors in
// parallel — and, via sched.Engine, independent Schedule requests
// running concurrently — can share one instance.
//
// The cache is internally sharded: each shard is an independent LRU
// under its own mutex, and a (src, dst) pair hashes to exactly one
// shard, so concurrent lookups of distinct pairs mostly touch distinct
// locks. NewRouteCache builds a single shard (the historical
// behaviour, exact global LRU); NewShardedRouteCache spreads the
// capacity over a power-of-two shard count for concurrent callers.
// Sharding changes only eviction locality, never cached values — a
// route is a pure function of the topology either way.
//
// Every lock acquisition first tries a non-blocking TryLock and counts
// the failures, so the cache measures its own mutex contention:
// Contention() reports how many lookups/stores had to wait. The
// engine's load statistics surface it, making "do we need more
// shards?" a measured question instead of a guess.
//
// Cached routes are shared slices: callers must treat them as
// read-only, as all scheduler code does.
type RouteCache struct {
	shards []routeShard
	mask   uint32
}

// routeShard is one independently locked LRU of the cache.
type routeShard struct {
	mu        sync.Mutex
	contended atomic.Int64 // TryLock failures (lock waits)

	cap   int
	order *list.List // *routeEntry, front = most recently used
	byKey map[routeKey]*list.Element

	hits, misses int64
}

type routeKey struct {
	src, dst NodeID
}

type routeEntry struct {
	key   routeKey
	route Route
	err   error
}

// NewRouteCache returns an empty single-shard cache holding at most
// capacity entries (DefaultRouteCacheSize when capacity is 0 or
// negative).
func NewRouteCache(capacity int) *RouteCache {
	return NewShardedRouteCache(capacity, 1)
}

// NewShardedRouteCache returns an empty cache of the given total
// capacity spread over shards independently locked LRUs. The shard
// count is rounded up to a power of two (1 when zero or negative);
// capacity defaults like NewRouteCache and is divided evenly, so
// per-shard eviction approximates the global LRU.
func NewShardedRouteCache(capacity, shards int) *RouteCache {
	if capacity <= 0 {
		capacity = DefaultRouteCacheSize
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &RouteCache{shards: make([]routeShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].order = list.New()
		c.shards[i].byKey = make(map[routeKey]*list.Element)
	}
	return c
}

// shard maps a node pair to its shard. The multiply-xor mix spreads
// the low bits of both IDs so dense processor ID ranges do not pile
// onto one shard.
//
// edgelint:noalloc
func (c *RouteCache) shard(src, dst NodeID) *routeShard {
	h := uint32(src)*0x9E3779B1 ^ uint32(dst)*0x85EBCA77
	h ^= h >> 15
	return &c.shards[h&c.mask]
}

// lock acquires the shard mutex, counting the acquisitions that had to
// wait so cache contention is measured rather than guessed.
//
// edgelint:noalloc
func (s *routeShard) lock() {
	if !s.mu.TryLock() {
		s.contended.Add(1)
		s.mu.Lock()
	}
}

// lookup returns the cached route (or routing error) for the pair and
// whether it was present.
//
// edgelint:noalloc
func (c *RouteCache) lookup(src, dst NodeID) (Route, error, bool) {
	s := c.shard(src, dst)
	s.lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[routeKey{src, dst}]
	if !ok {
		s.misses++
		return nil, nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	e := el.Value.(*routeEntry)
	return e.route, e.err, true
}

// store records the route (or routing error) for the pair, evicting
// the shard's least recently used entry when full.
//
// edgelint:coldpath — cache fill, once per (src, dst) pair
func (c *RouteCache) store(src, dst NodeID, route Route, err error) {
	s := c.shard(src, dst)
	s.lock()
	defer s.mu.Unlock()
	key := routeKey{src, dst}
	if el, ok := s.byKey[key]; ok {
		s.order.MoveToFront(el)
		e := el.Value.(*routeEntry)
		e.route, e.err = route, err
		return
	}
	if s.order.Len() >= s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byKey, oldest.Value.(*routeEntry).key)
	}
	s.byKey[key] = s.order.PushFront(&routeEntry{key: key, route: route, err: err})
}

// Len reports the number of cached pairs.
func (c *RouteCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats reports the lookup hit and miss counts so far.
func (c *RouteCache) Stats() (hits, misses int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// HitRate reports the fraction of lookups served from the cache (0
// when nothing was looked up yet).
func (c *RouteCache) HitRate() float64 {
	hits, misses := c.Stats()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Contention reports how many lock acquisitions (lookups, stores and
// stat reads) found their shard mutex held and had to wait. A number
// that grows with client count faster than the request rate is the
// signal to raise the shard count.
func (c *RouteCache) Contention() int64 {
	n := int64(0)
	for i := range c.shards {
		n += c.shards[i].contended.Load()
	}
	return n
}

// NumShards reports the shard count (a power of two).
func (c *RouteCache) NumShards() int { return len(c.shards) }
