package network

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddProcessorAndSwitch(t *testing.T) {
	top := NewTopology()
	p := top.AddProcessor("", 2)
	s := top.AddSwitch("")
	if top.NumNodes() != 2 || top.NumProcessors() != 1 {
		t.Fatalf("counts wrong: %v", top)
	}
	if n := top.Node(p); n.Kind != Processor || n.Speed != 2 || n.Name != "P0" {
		t.Errorf("processor %+v", n)
	}
	if n := top.Node(s); n.Kind != Switch || n.Name != "S1" {
		t.Errorf("switch %+v", n)
	}
	if Processor.String() != "processor" || Switch.String() != "switch" {
		t.Errorf("kind strings")
	}
}

func TestAddLinkPanics(t *testing.T) {
	top := NewTopology()
	a := top.AddProcessor("a", 1)
	for _, f := range []func(){
		func() { top.AddLink(a, a, 1) },
		func() { top.AddLink(a, 99, 1) },
		func() { top.AddLink(a, a+1, 0) },
		func() { top.AddBus([]NodeID{a}, 1) },
		func() { top.AddBus([]NodeID{a, a}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDuplexCreatesTwoLinks(t *testing.T) {
	top := NewTopology()
	a := top.AddProcessor("a", 1)
	b := top.AddProcessor("b", 1)
	f, r := top.AddDuplex(a, b, 3)
	if top.NumLinks() != 2 {
		t.Fatalf("links %d", top.NumLinks())
	}
	lf, lr := top.Link(f), top.Link(r)
	if lf.From != a || lf.To != b || lr.From != b || lr.To != a {
		t.Errorf("duplex endpoints wrong")
	}
	if lf.Speed != 3 || lr.Speed != 3 {
		t.Errorf("duplex speeds wrong")
	}
}

func TestValidateDisconnected(t *testing.T) {
	top := NewTopology()
	top.AddProcessor("a", 1)
	top.AddProcessor("b", 1)
	if err := top.Validate(); err == nil {
		t.Fatal("disconnected processors accepted")
	}
}

func TestValidateNoProcessors(t *testing.T) {
	top := NewTopology()
	top.AddSwitch("s")
	if err := top.Validate(); err == nil {
		t.Fatal("processor-less topology accepted")
	}
}

func TestMeanLinkSpeed(t *testing.T) {
	top := NewTopology()
	a := top.AddProcessor("a", 1)
	b := top.AddProcessor("b", 1)
	top.AddLink(a, b, 2)
	top.AddLink(b, a, 4)
	if got := top.MeanLinkSpeed(); got != 3 {
		t.Fatalf("MLS=%v, want 3", got)
	}
	if got := NewTopology().MeanLinkSpeed(); got != 1 {
		t.Fatalf("empty MLS=%v, want 1", got)
	}
}

func TestBFSRouteLine(t *testing.T) {
	top := Line(4, Uniform(1), Uniform(1))
	ps := top.Processors()
	route, err := top.BFSRoute(ps[0], ps[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 3 {
		t.Fatalf("route length %d, want 3", len(route))
	}
	if err := top.ValidateRoute(ps[0], ps[3], route); err != nil {
		t.Fatal(err)
	}
	// Self-route is empty.
	r0, err := top.BFSRoute(ps[1], ps[1])
	if err != nil || len(r0) != 0 {
		t.Fatalf("self route %v, %v", r0, err)
	}
}

func TestBFSRouteNoPath(t *testing.T) {
	top := NewTopology()
	a := top.AddProcessor("a", 1)
	b := top.AddProcessor("b", 1)
	top.AddLink(a, b, 1) // one-way only
	if _, err := top.BFSRoute(b, a); err == nil {
		t.Fatal("expected no-route error")
	} else if _, ok := err.(*ErrNoRoute); !ok {
		t.Fatalf("error type %T", err)
	}
}

func TestBFSRoutePrefersFewestHops(t *testing.T) {
	// Triangle a-b-c plus direct a-c: route a→c must be one hop.
	top := NewTopology()
	a := top.AddProcessor("a", 1)
	b := top.AddProcessor("b", 1)
	c := top.AddProcessor("c", 1)
	top.AddDuplex(a, b, 1)
	top.AddDuplex(b, c, 1)
	top.AddDuplex(a, c, 1)
	route, err := top.BFSRoute(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 1 {
		t.Fatalf("route %v, want single hop", route)
	}
}

func TestDijkstraRoutePrefersFastPath(t *testing.T) {
	// a→c direct on a slow link vs a→b→c on fast links: for a large
	// transfer the two-hop fast path finishes earlier (cut-through:
	// finish ≈ max per-link time, not sum).
	top := NewTopology()
	a := top.AddProcessor("a", 1)
	b := top.AddProcessor("b", 1)
	c := top.AddProcessor("c", 1)
	top.AddLink(a, c, 1)  // slow direct
	top.AddLink(a, b, 10) // fast two-hop
	top.AddLink(b, c, 10)
	cost := 100.0
	relax := func(l Link, cur Label) Label {
		dur := cost / l.Speed
		start := cur.Start
		finish := start + dur
		if finish < cur.Finish {
			finish = cur.Finish
		}
		return Label{Start: start, Finish: finish}
	}
	route, label, err := top.DijkstraRoute(a, c, Label{}, relax)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 {
		t.Fatalf("route %v, want the two-hop fast path", route)
	}
	if math.Abs(label.Finish-10) > 1e-9 {
		t.Fatalf("finish %v, want 10", label.Finish)
	}
}

func TestDijkstraEqualsBFSHopsOnUniformRelax(t *testing.T) {
	// With a relax that adds 1 per hop, Dijkstra minimizes hops and
	// must match BFS route lengths everywhere.
	r := rand.New(rand.NewSource(9))
	top := RandomCluster(r, RandomClusterParams{Processors: 20})
	relax := func(l Link, cur Label) Label {
		return Label{Start: cur.Start, Finish: cur.Finish + 1}
	}
	ps := top.Processors()
	for i := 0; i < 10; i++ {
		a, b := ps[r.Intn(len(ps))], ps[r.Intn(len(ps))]
		bfs, err := top.BFSRoute(a, b)
		if err != nil {
			t.Fatal(err)
		}
		dij, _, err := top.DijkstraRoute(a, b, Label{}, relax)
		if err != nil {
			t.Fatal(err)
		}
		if len(bfs) != len(dij) {
			t.Fatalf("hop counts differ: bfs %d, dijkstra %d", len(bfs), len(dij))
		}
	}
}

func TestRouteNodesRejectsBrokenRoute(t *testing.T) {
	top := Line(3, Uniform(1), Uniform(1))
	ps := top.Processors()
	route, err := top.BFSRoute(ps[0], ps[2])
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the route: first link no longer departs from ps[0].
	rev := Route{route[1], route[0]}
	if err := top.ValidateRoute(ps[0], ps[2], rev); err == nil {
		t.Fatal("broken route accepted")
	}
	// Wrong destination.
	if err := top.ValidateRoute(ps[0], ps[1], route); err == nil {
		t.Fatal("wrong destination accepted")
	}
	// Non-empty self route.
	if err := top.ValidateRoute(ps[0], ps[0], route); err == nil {
		t.Fatal("non-empty self route accepted")
	}
	// Empty cross route.
	if err := top.ValidateRoute(ps[0], ps[2], Route{}); err == nil {
		t.Fatal("empty cross route accepted")
	}
}

func TestBusRouting(t *testing.T) {
	top := Bus(3, Uniform(1), 2)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	ps := top.Processors()
	route, err := top.BFSRoute(ps[0], ps[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 1 || !top.Link(route[0]).IsBus() {
		t.Fatalf("bus route %v", route)
	}
	if err := top.ValidateRoute(ps[0], ps[2], route); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderShapes(t *testing.T) {
	cases := []struct {
		name         string
		top          *Topology
		procs, links int
	}{
		{"fully4", FullyConnected(4, Uniform(1), Uniform(1)), 4, 12},
		{"ring5", Ring(5, Uniform(1), Uniform(1)), 5, 10},
		{"line4", Line(4, Uniform(1), Uniform(1)), 4, 6},
		{"star3", Star(3, Uniform(1), Uniform(1)), 3, 6},
		{"bus4", Bus(4, Uniform(1), 1), 4, 1},
		{"mesh23", Mesh2D(2, 3, Uniform(1), Uniform(1)), 6, 14},
		{"hyper3", Hypercube(3, Uniform(1), Uniform(1)), 8, 24},
		{"fattree", FatTree(2, 3, Uniform(1), Uniform(1)), 6, 16},
	}
	for _, c := range cases {
		if err := c.top.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if c.top.NumProcessors() != c.procs {
			t.Errorf("%s: %d procs, want %d", c.name, c.top.NumProcessors(), c.procs)
		}
		if c.top.NumLinks() != c.links {
			t.Errorf("%s: %d links, want %d", c.name, c.top.NumLinks(), c.links)
		}
	}
}

func TestTorusWraparound(t *testing.T) {
	top := Torus2D(3, 3, Uniform(1), Uniform(1))
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mesh 3x3 has 2*(2*3 + 3*2) = 24 directed links; torus adds
	// 2*3 + 2*3 duplex wraparounds = 12 more.
	if top.NumLinks() != 36 {
		t.Fatalf("links %d, want 36", top.NumLinks())
	}
	// Opposite corner reachable in ≤ 2 hops thanks to wraparound.
	route, err := top.BFSRoute(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) > 2 {
		t.Fatalf("torus route %d hops, want ≤2", len(route))
	}
}

func TestRandomClusterProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		procs := int(n%120) + 1
		top := RandomCluster(r, RandomClusterParams{Processors: procs})
		if top.NumProcessors() != procs {
			return false
		}
		if top.Validate() != nil {
			return false
		}
		// Every processor hangs off exactly one switch (one duplex pair).
		for _, p := range top.Processors() {
			if len(top.Neighbors(p)) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomClusterPerSwitchBounds(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	top := RandomCluster(r, RandomClusterParams{Processors: 100, MinPerSW: 4, MaxPerSW: 16})
	perSwitch := map[NodeID]int{}
	for _, p := range top.Processors() {
		sw := top.Neighbors(p)[0].To
		if top.Node(sw).Kind != Switch {
			t.Fatalf("processor %d not attached to a switch", p)
		}
		perSwitch[sw]++
	}
	for sw, n := range perSwitch {
		if n > 16 {
			t.Errorf("switch %d hosts %d processors (max 16)", sw, n)
		}
	}
}

func TestUniformRangeBounds(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	fn := UniformRange(r, 1, 10)
	for i := 0; i < 100; i++ {
		v := fn()
		if v < 1 || v > 10 || v != math.Trunc(v) {
			t.Fatalf("speed %v outside integer U(1,10)", v)
		}
	}
	if v := UniformRange(r, 5, 5)(); v != 5 {
		t.Fatalf("degenerate UniformRange %v", v)
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	top := Star(3, Uniform(1), Uniform(1))
	deg := top.Degrees()
	// Hub has 3 outgoing links, each processor 1.
	hubDeg := 0
	for _, n := range top.Nodes() {
		if n.Kind == Switch {
			hubDeg = deg[n.ID]
		}
	}
	if hubDeg != 3 {
		t.Errorf("hub degree %d, want 3", hubDeg)
	}
}

func TestLabelLess(t *testing.T) {
	a := Label{Start: 1, Finish: 5, Hops: 2}
	b := Label{Start: 0, Finish: 6, Hops: 1}
	if !a.Less(b) || b.Less(a) {
		t.Errorf("finish should dominate")
	}
	c := Label{Start: 0, Finish: 5, Hops: 9}
	if !c.Less(a) {
		t.Errorf("start should break finish ties")
	}
	d := Label{Start: 1, Finish: 5, Hops: 1}
	if !d.Less(a) {
		t.Errorf("hops should break remaining ties")
	}
}
