// Package network models the communication system of a parallel or
// distributed machine as the topology graph TG = {N, P, D, H} of
// Sinnen & Sousa's edge-scheduling model: N is the set of network nodes
// (processors and switches), P ⊆ N the processors, D the set of
// directed point-to-point links, and H the set of hyperedges (buses,
// i.e. multidirectional shared links).
//
// The package also provides the two routing algorithms the paper uses:
// breadth-first minimal routing (BA) and a modified Dijkstra search
// whose distance metric is supplied by the caller (OIHSA/BBSA §4.3).
package network

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a network node (processor or switch).
type NodeID int

// LinkID identifies a communication resource: either a directed
// point-to-point link or a hyperedge (bus). Hyperedges occupy a single
// LinkID even though they connect many nodes, because they are a single
// contended resource.
type LinkID int

// NodeKind distinguishes processors from switches.
type NodeKind int

const (
	// Processor nodes execute tasks.
	Processor NodeKind = iota
	// Switch nodes only forward communication.
	Switch
)

func (k NodeKind) String() string {
	switch k {
	case Processor:
		return "processor"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a vertex of the topology graph.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
	// Speed is the processing speed s(P) for processors; it is
	// meaningless for switches and left at 0.
	Speed float64
}

// Link is a communication resource. A point-to-point link is directed
// from From to To; a hyperedge (bus) has Members instead and carries
// communication between any ordered pair of members.
type Link struct {
	ID   LinkID
	From NodeID // point-to-point only
	To   NodeID // point-to-point only
	// Members is non-nil for hyperedges and lists the attached nodes.
	Members []NodeID
	// Speed is the data transfer speed s(L): an edge with
	// communication cost c occupies the link for c/Speed time units.
	Speed float64
}

// IsBus reports whether the link is a hyperedge.
func (l Link) IsBus() bool { return l.Members != nil }

// hop is one adjacency entry: traversing link Link leads to node To.
type hop struct {
	Link LinkID
	To   NodeID
}

// Topology is the network graph. Build it with AddProcessor, AddSwitch,
// AddLink, AddDuplex and AddBus; it is immutable during scheduling —
// forked scheduler states and the shared route cache depend on it
// never changing after construction.
// edgelint:immutable AddProcessor AddSwitch AddLink AddDuplex AddBus — frozen once scheduling starts
type Topology struct {
	nodes []Node
	links []Link
	adj   [][]hop  // outgoing hops per node, deterministic order
	procs []NodeID // processor IDs in insertion order

	// routers pools scratch Routers for the one-shot BFSRoute and
	// DijkstraRoute convenience methods, so casual callers get buffer
	// reuse without holding a Router themselves.
	routers sync.Pool
}

// NewTopology returns an empty topology.
func NewTopology() *Topology { return &Topology{} }

// AddProcessor adds a processor with the given name and speed and
// returns its node ID.
func (t *Topology) AddProcessor(name string, speed float64) NodeID {
	id := NodeID(len(t.nodes))
	if name == "" {
		name = fmt.Sprintf("P%d", len(t.procs))
	}
	t.nodes = append(t.nodes, Node{ID: id, Kind: Processor, Name: name, Speed: speed})
	t.adj = append(t.adj, nil)
	t.procs = append(t.procs, id)
	return id
}

// AddSwitch adds a switch with the given name and returns its node ID.
func (t *Topology) AddSwitch(name string) NodeID {
	id := NodeID(len(t.nodes))
	if name == "" {
		name = fmt.Sprintf("S%d", id)
	}
	t.nodes = append(t.nodes, Node{ID: id, Kind: Switch, Name: name})
	t.adj = append(t.adj, nil)
	return id
}

// AddLink adds a directed point-to-point link and returns its ID.
// It panics on invalid endpoints or non-positive speed.
func (t *Topology) AddLink(from, to NodeID, speed float64) LinkID {
	t.checkNode(from)
	t.checkNode(to)
	if from == to {
		panic(fmt.Sprintf("network: AddLink: self-link on node %d", from))
	}
	if speed <= 0 {
		panic(fmt.Sprintf("network: AddLink: non-positive speed %v", speed))
	}
	id := LinkID(len(t.links))
	t.links = append(t.links, Link{ID: id, From: from, To: to, Speed: speed})
	t.adj[from] = append(t.adj[from], hop{Link: id, To: to})
	return id
}

// AddDuplex adds a pair of opposite directed links with the same speed
// and returns both IDs (forward, backward). This models a full-duplex
// cable as two independent contended resources, the common convention
// in the contention-aware scheduling literature.
func (t *Topology) AddDuplex(a, b NodeID, speed float64) (LinkID, LinkID) {
	return t.AddLink(a, b, speed), t.AddLink(b, a, speed)
}

// AddBus adds a hyperedge (shared bus) connecting all members and
// returns its ID. Any ordered pair of distinct members can communicate
// over the bus, all sharing one contended resource.
func (t *Topology) AddBus(members []NodeID, speed float64) LinkID {
	if len(members) < 2 {
		panic("network: AddBus: needs at least two members")
	}
	if speed <= 0 {
		panic(fmt.Sprintf("network: AddBus: non-positive speed %v", speed))
	}
	seen := map[NodeID]bool{}
	for _, m := range members {
		t.checkNode(m)
		if seen[m] {
			panic(fmt.Sprintf("network: AddBus: duplicate member %d", m))
		}
		seen[m] = true
	}
	id := LinkID(len(t.links))
	ms := append([]NodeID(nil), members...)
	t.links = append(t.links, Link{ID: id, Members: ms, Speed: speed})
	for _, m := range members {
		for _, o := range members {
			if o != m {
				t.adj[m] = append(t.adj[m], hop{Link: id, To: o})
			}
		}
	}
	return id
}

func (t *Topology) checkNode(id NodeID) {
	if id < 0 || int(id) >= len(t.nodes) {
		panic(fmt.Sprintf("network: node %d does not exist", id))
	}
}

// NumNodes reports the number of nodes (processors + switches).
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks reports the number of links (including hyperedges).
func (t *Topology) NumLinks() int { return len(t.links) }

// NumProcessors reports the number of processors.
func (t *Topology) NumProcessors() int { return len(t.procs) }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Nodes returns all nodes in ID order. The slice is shared; do not modify.
// edgelint:ignore aliasret — read-only iteration accessor on the hot path
func (t *Topology) Nodes() []Node { return t.nodes }

// Links returns all links in ID order. The slice is shared; do not modify.
// edgelint:ignore aliasret — read-only iteration accessor on the hot path
func (t *Topology) Links() []Link { return t.links }

// Processors returns the processor node IDs in insertion order.
// The slice is shared; do not modify.
// edgelint:ignore aliasret — read-only iteration accessor on the hot path
func (t *Topology) Processors() []NodeID { return t.procs }

// MeanLinkSpeed returns the average transfer speed over all links
// (the paper's MLS). It returns 1 for a topology without links so that
// division by MLS stays meaningful.
func (t *Topology) MeanLinkSpeed() float64 {
	if len(t.links) == 0 {
		return 1
	}
	sum := 0.0
	for _, l := range t.links {
		sum += l.Speed
	}
	return sum / float64(len(t.links))
}

// HarmonicMeanLinkSpeed returns the harmonic mean of link speeds: the
// speed whose reciprocal is the average per-unit transfer time. For
// estimating the expected duration of a transfer over an unknown link
// this is the correct averaging (transfer times are reciprocals of
// speeds); on heterogeneous networks it is substantially lower than
// the arithmetic mean. Returns 1 for a topology without links.
func (t *Topology) HarmonicMeanLinkSpeed() float64 {
	if len(t.links) == 0 {
		return 1
	}
	sum := 0.0
	for _, l := range t.links {
		sum += 1 / l.Speed
	}
	return float64(len(t.links)) / sum
}

// Validate checks that every pair of processors can communicate, that
// all speeds are positive, and that adjacency is consistent.
func (t *Topology) Validate() error {
	for _, n := range t.nodes {
		if n.Kind == Processor && n.Speed <= 0 {
			return fmt.Errorf("network: processor %s has non-positive speed %v", n.Name, n.Speed)
		}
	}
	for _, l := range t.links {
		if l.Speed <= 0 {
			return fmt.Errorf("network: link %d has non-positive speed %v", l.ID, l.Speed)
		}
	}
	if len(t.procs) == 0 {
		return fmt.Errorf("network: no processors")
	}
	// Reachability from the first processor must cover all processors.
	reach := t.reachableFrom(t.procs[0])
	for _, p := range t.procs {
		if !reach[p] {
			return fmt.Errorf("network: processor %s unreachable from %s",
				t.nodes[p].Name, t.nodes[t.procs[0]].Name)
		}
	}
	return nil
}

func (t *Topology) reachableFrom(src NodeID) []bool {
	seen := make([]bool, len(t.nodes))
	seen[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, h := range t.adj[n] {
			if !seen[h.To] {
				seen[h.To] = true
				queue = append(queue, h.To)
			}
		}
	}
	return seen
}

// Neighbors returns the outgoing hops of a node as (link, destination)
// pairs in deterministic order. The slice is shared; do not modify.
func (t *Topology) Neighbors(id NodeID) []struct {
	Link LinkID
	To   NodeID
} {
	out := make([]struct {
		Link LinkID
		To   NodeID
	}, len(t.adj[id]))
	for i, h := range t.adj[id] {
		out[i].Link = h.Link
		out[i].To = h.To
	}
	return out
}

// Degrees returns the out-degree of every node, useful for topology
// statistics in experiments.
func (t *Topology) Degrees() []int {
	out := make([]int, len(t.nodes))
	for i := range t.adj {
		out[i] = len(t.adj[i])
	}
	return out
}

// String returns a short human-readable summary.
func (t *Topology) String() string {
	sw := len(t.nodes) - len(t.procs)
	return fmt.Sprintf("net{procs:%d switches:%d links:%d}", len(t.procs), sw, len(t.links))
}

// SortedProcessorNames returns the processor names sorted
// lexicographically; handy for stable test output.
func (t *Topology) SortedProcessorNames() []string {
	names := make([]string, 0, len(t.procs))
	for _, p := range t.procs {
		names = append(names, t.nodes[p].Name)
	}
	sort.Strings(names)
	return names
}
