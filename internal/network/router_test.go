package network

import (
	"math/rand"
	"reflect"
	"testing"
)

// routerTopologies builds a varied set of shapes for equivalence tests.
func routerTopologies(r *rand.Rand) []*Topology {
	return []*Topology{
		Line(6, Uniform(1), Uniform(1)),
		Star(8, Uniform(1), Uniform(1)),
		Ring(7, Uniform(1), Uniform(1)),
		Mesh2D(3, 4, Uniform(1), Uniform(1)),
		FatTree(3, 3, Uniform(1), Uniform(1)),
		Bus(5, Uniform(1), 1),
		RandomCluster(r, RandomClusterParams{Processors: 12}),
	}
}

func TestRouterMatchesTopologyBFS(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for ti, top := range routerTopologies(r) {
		router := top.NewRouter(NewRouteCache(0))
		procs := top.Processors()
		for _, src := range procs {
			for _, dst := range procs {
				want, werr := top.BFSRoute(src, dst)
				// Twice: the second call must come from the cache and
				// still be identical.
				for pass := 0; pass < 2; pass++ {
					got, gerr := router.BFSRoute(src, dst)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("topology %d %v->%v pass %d: err %v vs %v", ti, src, dst, pass, gerr, werr)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("topology %d %v->%v pass %d: route %v, want %v", ti, src, dst, pass, got, want)
					}
					if werr == nil && src != dst {
						if err := top.ValidateRoute(src, dst, got); err != nil {
							t.Fatalf("topology %d: invalid route: %v", ti, err)
						}
					}
				}
			}
		}
	}
}

func TestRouterMatchesTopologyDijkstra(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	relax := func(l Link, cur Label) Label {
		return Label{Start: cur.Start, Finish: cur.Finish + 1/l.Speed}
	}
	for ti, top := range routerTopologies(r) {
		router := top.NewRouter(nil)
		procs := top.Processors()
		for _, src := range procs {
			for _, dst := range procs {
				want, wl, werr := top.DijkstraRoute(src, dst, Label{}, relax)
				got, gl, gerr := router.DijkstraRoute(src, dst, Label{}, relax)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("topology %d %v->%v: err %v vs %v", ti, src, dst, gerr, werr)
				}
				if !reflect.DeepEqual(got, want) || gl != wl {
					t.Fatalf("topology %d %v->%v: route %v label %+v, want %v %+v", ti, src, dst, got, gl, want, wl)
				}
			}
		}
	}
}

func TestRouterScratchSurvivesReuse(t *testing.T) {
	// Many searches on one Router must not corrupt each other: interleave
	// BFS and Dijkstra over all pairs twice and compare against fresh
	// routers.
	top := Mesh2D(4, 4, Uniform(1), Uniform(2))
	relax := func(l Link, cur Label) Label {
		return Label{Finish: cur.Finish + 1/l.Speed}
	}
	shared := top.NewRouter(nil)
	procs := top.Processors()
	for pass := 0; pass < 2; pass++ {
		for _, src := range procs {
			for _, dst := range procs {
				fresh := top.NewRouter(nil)
				wb, werr := fresh.BFSRoute(src, dst)
				gb, gerr := shared.BFSRoute(src, dst)
				if werr != nil || gerr != nil {
					t.Fatalf("bfs %v->%v: %v / %v", src, dst, werr, gerr)
				}
				if !reflect.DeepEqual(gb, wb) {
					t.Fatalf("bfs %v->%v diverged on reuse", src, dst)
				}
				wd, _, werr := fresh.DijkstraRoute(src, dst, Label{}, relax)
				gd, _, gerr := shared.DijkstraRoute(src, dst, Label{}, relax)
				if werr != nil || gerr != nil {
					t.Fatalf("dijkstra %v->%v: %v / %v", src, dst, werr, gerr)
				}
				if !reflect.DeepEqual(gd, wd) {
					t.Fatalf("dijkstra %v->%v diverged on reuse", src, dst)
				}
			}
		}
	}
}

func TestRouteCacheHitsAndEviction(t *testing.T) {
	top := Line(8, Uniform(1), Uniform(1))
	cache := NewRouteCache(3)
	router := top.NewRouter(cache)
	procs := top.Processors()

	mustRoute := func(src, dst NodeID) Route {
		t.Helper()
		route, err := router.BFSRoute(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		return route
	}

	// Three distinct pairs fill the cache.
	mustRoute(procs[0], procs[1])
	mustRoute(procs[0], procs[2])
	mustRoute(procs[0], procs[3])
	if n := cache.Len(); n != 3 {
		t.Fatalf("cache holds %d entries, want 3", n)
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 0/3", hits, misses)
	}
	// Re-querying hits.
	first := mustRoute(procs[0], procs[1])
	if hits, _ := cache.Stats(); hits != 1 {
		t.Fatalf("hits=%d, want 1", hits)
	}
	// A fourth pair evicts the least recently used — (0,2), because
	// (0,1) was just refreshed.
	mustRoute(procs[0], procs[4])
	if n := cache.Len(); n != 3 {
		t.Fatalf("cache holds %d entries after eviction, want 3", n)
	}
	hits0, misses0 := cache.Stats()
	mustRoute(procs[0], procs[1]) // still cached
	mustRoute(procs[0], procs[2]) // evicted → miss
	hits1, misses1 := cache.Stats()
	if hits1-hits0 != 1 || misses1-misses0 != 1 {
		t.Fatalf("after eviction: Δhits=%d Δmisses=%d, want 1/1", hits1-hits0, misses1-misses0)
	}
	// Cached route identical to a fresh computation.
	fresh, err := top.BFSRoute(procs[0], procs[1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, fresh) {
		t.Fatalf("cached route %v differs from fresh %v", first, fresh)
	}
}

func TestRouteCacheCachesRoutingErrors(t *testing.T) {
	top := NewTopology()
	a := top.AddProcessor("a", 1)
	b := top.AddProcessor("b", 1)
	cache := NewRouteCache(0)
	router := top.NewRouter(cache)
	for pass := 0; pass < 2; pass++ {
		if _, err := router.BFSRoute(a, b); err == nil {
			t.Fatalf("pass %d: expected no-route error", pass)
		}
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 (error cached)", hits, misses)
	}
}

func TestRouteCacheConcurrentSharing(t *testing.T) {
	// Several routers sharing one cache, hammering the same pairs. Run
	// under -race this checks the locking.
	top := Mesh2D(3, 3, Uniform(1), Uniform(1))
	cache := NewRouteCache(16)
	procs := top.Processors()
	done := make(chan Route)
	for w := 0; w < 4; w++ {
		go func() {
			router := top.NewRouter(cache)
			var last Route
			for i := 0; i < 50; i++ {
				for _, src := range procs {
					for _, dst := range procs {
						route, err := router.BFSRoute(src, dst)
						if err != nil {
							panic(err)
						}
						last = route
					}
				}
			}
			done <- last
		}()
	}
	want := <-done
	for w := 1; w < 4; w++ {
		if got := <-done; !reflect.DeepEqual(got, want) {
			t.Fatalf("worker routes diverged: %v vs %v", got, want)
		}
	}
}
