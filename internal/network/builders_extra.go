package network

import "fmt"

// Torus3D builds an x*y*z processor torus with duplex links along all
// three dimensions (wraparound only on dimensions longer than 2).
func Torus3D(x, y, z int, proc, link SpeedFn) *Topology {
	t := NewTopology()
	id := func(i, j, k int) NodeID { return NodeID((i*y+j)*z + k) }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				t.AddProcessor(fmt.Sprintf("P%d_%d_%d", i, j, k), proc())
			}
		}
	}
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					t.AddDuplex(id(i, j, k), id(i+1, j, k), link())
				} else if x > 2 {
					t.AddDuplex(id(i, j, k), id(0, j, k), link())
				}
				if j+1 < y {
					t.AddDuplex(id(i, j, k), id(i, j+1, k), link())
				} else if y > 2 {
					t.AddDuplex(id(i, j, k), id(i, 0, k), link())
				}
				if k+1 < z {
					t.AddDuplex(id(i, j, k), id(i, j, k+1), link())
				} else if z > 2 {
					t.AddDuplex(id(i, j, k), id(i, j, 0), link())
				}
			}
		}
	}
	return t
}

// SwitchTree builds a k-ary tree of switches of the given depth with
// `down` processors per leaf switch — the generalized multilevel
// cluster (FatTree is the depth-1 special case).
func SwitchTree(arity, depth, down int, proc, link SpeedFn) *Topology {
	t := NewTopology()
	root := t.AddSwitch("root")
	level := []NodeID{root}
	for d := 0; d < depth; d++ {
		var next []NodeID
		for _, parent := range level {
			for c := 0; c < arity; c++ {
				sw := t.AddSwitch("")
				t.AddDuplex(sw, parent, link())
				next = append(next, sw)
			}
		}
		level = next
	}
	for _, leaf := range level {
		for i := 0; i < down; i++ {
			p := t.AddProcessor("", proc())
			t.AddDuplex(p, leaf, link())
		}
	}
	return t
}

// Dumbbell builds two Star clusters of na and nb processors whose hub
// switches are joined by a single duplex trunk of the given speed —
// the canonical bottleneck scenario for contention-aware scheduling.
func Dumbbell(na, nb int, proc, link SpeedFn, trunkSpeed float64) *Topology {
	t := NewTopology()
	a := t.AddSwitch("hubA")
	b := t.AddSwitch("hubB")
	t.AddDuplex(a, b, trunkSpeed)
	for i := 0; i < na; i++ {
		p := t.AddProcessor(fmt.Sprintf("A%d", i), proc())
		t.AddDuplex(p, a, link())
	}
	for i := 0; i < nb; i++ {
		p := t.AddProcessor(fmt.Sprintf("B%d", i), proc())
		t.AddDuplex(p, b, link())
	}
	return t
}

// Dragonfly builds a simplified dragonfly: groups of `groupSize`
// processors fully connected inside each group (via a group switch to
// keep link counts moderate), and one global duplex link between every
// pair of group switches.
func Dragonfly(groups, groupSize int, proc, local, global SpeedFn) *Topology {
	t := NewTopology()
	sws := make([]NodeID, groups)
	for g := 0; g < groups; g++ {
		sws[g] = t.AddSwitch(fmt.Sprintf("G%d", g))
		for i := 0; i < groupSize; i++ {
			p := t.AddProcessor("", proc())
			t.AddDuplex(p, sws[g], local())
		}
	}
	for i := 0; i < groups; i++ {
		for j := i + 1; j < groups; j++ {
			t.AddDuplex(sws[i], sws[j], global())
		}
	}
	return t
}

// ButterflyNet builds a k-stage butterfly indirect network connecting
// 2^k processors on the left to the same processors' receive side via
// switch stages. To remain a practical scheduling substrate, the
// processors are attached at both ends of the butterfly and all links
// are duplex, yielding multiple disjoint routes between most pairs.
func ButterflyNet(k int, proc, link SpeedFn) *Topology {
	t := NewTopology()
	n := 1 << uint(k)
	procs := make([]NodeID, n)
	for i := 0; i < n; i++ {
		procs[i] = t.AddProcessor("", proc())
	}
	// k+1 columns of n switches.
	cols := make([][]NodeID, k+1)
	for c := 0; c <= k; c++ {
		cols[c] = make([]NodeID, n)
		for i := 0; i < n; i++ {
			cols[c][i] = t.AddSwitch(fmt.Sprintf("S%d_%d", c, i))
		}
	}
	for i := 0; i < n; i++ {
		t.AddDuplex(procs[i], cols[0][i], link())
		t.AddDuplex(procs[i], cols[k][i], link())
	}
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			t.AddDuplex(cols[c][i], cols[c+1][i], link())
			t.AddDuplex(cols[c][i], cols[c+1][i^(1<<uint(c))], link())
		}
	}
	return t
}
