package network

import (
	"fmt"
	"math/rand"
)

// SpeedFn supplies node or link speeds to topology builders. Uniform(1)
// produces homogeneous systems; UniformRange(r, 1, 10) matches the
// paper's heterogeneous setup (§6).
type SpeedFn func() float64

// Uniform returns a SpeedFn yielding the constant v.
func Uniform(v float64) SpeedFn { return func() float64 { return v } }

// UniformRange returns a SpeedFn drawing integer speeds from U(lo, hi)
// (inclusive) as in the paper's U(1,10) processor and link speeds.
func UniformRange(r *rand.Rand, lo, hi int) SpeedFn {
	return func() float64 {
		if hi <= lo {
			return float64(lo)
		}
		return float64(lo + r.Intn(hi-lo+1))
	}
}

// FullyConnected builds n processors with a duplex link between every
// pair — the classic model's assumption realized as an explicit
// topology (every pair still contends on its own private cable).
func FullyConnected(n int, proc, link SpeedFn) *Topology {
	t := NewTopology()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = t.AddProcessor("", proc())
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := link()
			t.AddDuplex(ids[i], ids[j], s)
		}
	}
	return t
}

// Ring builds n processors in a duplex ring.
func Ring(n int, proc, link SpeedFn) *Topology {
	t := NewTopology()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = t.AddProcessor("", proc())
	}
	for i := 0; i < n; i++ {
		t.AddDuplex(ids[i], ids[(i+1)%n], link())
	}
	return t
}

// Line builds n processors in a duplex chain.
func Line(n int, proc, link SpeedFn) *Topology {
	t := NewTopology()
	prev := NodeID(-1)
	for i := 0; i < n; i++ {
		id := t.AddProcessor("", proc())
		if prev >= 0 {
			t.AddDuplex(prev, id, link())
		}
		prev = id
	}
	return t
}

// Star builds n processors all attached to one central switch by duplex
// links — the typical single-switch cluster.
func Star(n int, proc, link SpeedFn) *Topology {
	t := NewTopology()
	sw := t.AddSwitch("hub")
	for i := 0; i < n; i++ {
		p := t.AddProcessor("", proc())
		t.AddDuplex(p, sw, link())
	}
	return t
}

// Bus builds n processors sharing a single hyperedge, the strongest
// possible contention scenario.
func Bus(n int, proc SpeedFn, busSpeed float64) *Topology {
	t := NewTopology()
	members := make([]NodeID, n)
	for i := 0; i < n; i++ {
		members[i] = t.AddProcessor("", proc())
	}
	t.AddBus(members, busSpeed)
	return t
}

// Mesh2D builds a rows x cols processor mesh with duplex links between
// grid neighbours.
func Mesh2D(rows, cols int, proc, link SpeedFn) *Topology {
	t := NewTopology()
	ids := make([][]NodeID, rows)
	for i := 0; i < rows; i++ {
		ids[i] = make([]NodeID, cols)
		for j := 0; j < cols; j++ {
			ids[i][j] = t.AddProcessor(fmt.Sprintf("P%d_%d", i, j), proc())
			if i > 0 {
				t.AddDuplex(ids[i-1][j], ids[i][j], link())
			}
			if j > 0 {
				t.AddDuplex(ids[i][j-1], ids[i][j], link())
			}
		}
	}
	return t
}

// Torus2D builds a rows x cols processor torus (mesh with wraparound).
func Torus2D(rows, cols int, proc, link SpeedFn) *Topology {
	t := Mesh2D(rows, cols, proc, link)
	// Wraparound links. Node IDs follow row-major insertion order.
	id := func(i, j int) NodeID { return NodeID(i*cols + j) }
	if rows > 2 {
		for j := 0; j < cols; j++ {
			t.AddDuplex(id(rows-1, j), id(0, j), link())
		}
	}
	if cols > 2 {
		for i := 0; i < rows; i++ {
			t.AddDuplex(id(i, cols-1), id(i, 0), link())
		}
	}
	return t
}

// Hypercube builds a 2^dim processor hypercube.
func Hypercube(dim int, proc, link SpeedFn) *Topology {
	t := NewTopology()
	n := 1 << uint(dim)
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = t.AddProcessor("", proc())
	}
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			j := i ^ (1 << uint(d))
			if j > i {
				t.AddDuplex(ids[i], ids[j], link())
			}
		}
	}
	return t
}

// FatTree builds a two-level switch tree: leaves of `down` processors
// hang off each of `leafSwitches` edge switches, which all connect to a
// single core switch. It is a common cluster shape with a contended
// core.
func FatTree(leafSwitches, down int, proc, link SpeedFn) *Topology {
	t := NewTopology()
	core := t.AddSwitch("core")
	for s := 0; s < leafSwitches; s++ {
		sw := t.AddSwitch(fmt.Sprintf("S%d", s))
		t.AddDuplex(sw, core, link())
		for i := 0; i < down; i++ {
			p := t.AddProcessor("", proc())
			t.AddDuplex(p, sw, link())
		}
	}
	return t
}

// RandomClusterParams parameterizes RandomCluster, the paper's §6
// topology: "each switch connects with U[4,16] processors and there
// exists a path between any pair of switches. The switches are
// connected randomly to simulate real wide area network."
type RandomClusterParams struct {
	Processors  int // total processors (≥ 1)
	MinPerSW    int // min processors per switch (default 4)
	MaxPerSW    int // max processors per switch (default 16)
	ExtraTrunks int // extra random switch-switch links beyond the
	// spanning tree; default: one per two switches
	ProcSpeed SpeedFn
	LinkSpeed SpeedFn
}

// RandomCluster builds the paper's random WAN-style topology. Switches
// are created until every processor is attached, wired into a random
// spanning tree plus ExtraTrunks random trunks so that a path exists
// between every pair while leaving room for route diversity.
func RandomCluster(r *rand.Rand, p RandomClusterParams) *Topology {
	if p.Processors < 1 {
		p.Processors = 1
	}
	if p.MinPerSW <= 0 {
		p.MinPerSW = 4
	}
	if p.MaxPerSW < p.MinPerSW {
		p.MaxPerSW = p.MinPerSW
	}
	if p.ProcSpeed == nil {
		p.ProcSpeed = Uniform(1)
	}
	if p.LinkSpeed == nil {
		p.LinkSpeed = Uniform(1)
	}
	t := NewTopology()
	var switches []NodeID
	remaining := p.Processors
	for remaining > 0 {
		take := p.MinPerSW + r.Intn(p.MaxPerSW-p.MinPerSW+1)
		if take > remaining {
			take = remaining
		}
		sw := t.AddSwitch("")
		switches = append(switches, sw)
		for i := 0; i < take; i++ {
			proc := t.AddProcessor("", p.ProcSpeed())
			t.AddDuplex(proc, sw, p.LinkSpeed())
		}
		remaining -= take
	}
	// Random spanning tree over switches: attach each new switch to a
	// random earlier one.
	for i := 1; i < len(switches); i++ {
		j := r.Intn(i)
		t.AddDuplex(switches[i], switches[j], p.LinkSpeed())
	}
	// Extra trunks for path diversity.
	extra := p.ExtraTrunks
	if extra == 0 {
		extra = len(switches) / 2
	}
	if len(switches) > 1 {
		for k := 0; k < extra; k++ {
			i := r.Intn(len(switches))
			j := r.Intn(len(switches))
			if i == j {
				continue
			}
			t.AddDuplex(switches[i], switches[j], p.LinkSpeed())
		}
	}
	return t
}
