package network

import (
	"testing"
)

func TestTorus3D(t *testing.T) {
	top := Torus3D(3, 3, 3, Uniform(1), Uniform(1))
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.NumProcessors() != 27 {
		t.Fatalf("procs %d, want 27", top.NumProcessors())
	}
	// Full 3-D torus on 3^3: each node has 6 neighbours, each duplex
	// cable counted once per direction: 27*6 = 162 directed links.
	if top.NumLinks() != 162 {
		t.Fatalf("links %d, want 162", top.NumLinks())
	}
	// Wraparound shortens corner-to-corner routes to ≤ 3 hops.
	route, err := top.BFSRoute(0, 26)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) > 3 {
		t.Fatalf("route %d hops, want ≤ 3", len(route))
	}
}

func TestTorus3DNoWraparoundOnShortDims(t *testing.T) {
	top := Torus3D(2, 2, 2, Uniform(1), Uniform(1))
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2-long dimensions must not get duplicate wraparound cables: a
	// 2x2x2 torus is exactly a 3-cube: 8 procs * 3 cables = 12 duplex.
	if top.NumLinks() != 24 {
		t.Fatalf("links %d, want 24", top.NumLinks())
	}
}

func TestSwitchTree(t *testing.T) {
	top := SwitchTree(2, 2, 3, Uniform(1), Uniform(1))
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// depth 2, arity 2: 1 + 2 + 4 switches; 4 leaves * 3 procs.
	if top.NumProcessors() != 12 {
		t.Fatalf("procs %d, want 12", top.NumProcessors())
	}
	if got := top.NumNodes() - top.NumProcessors(); got != 7 {
		t.Fatalf("switches %d, want 7", got)
	}
	// Processors under different leaves route through the tree.
	ps := top.Processors()
	route, err := top.BFSRoute(ps[0], ps[11])
	if err != nil {
		t.Fatal(err)
	}
	if len(route) < 4 {
		t.Fatalf("cross-tree route %d hops, want ≥ 4", len(route))
	}
}

func TestDumbbell(t *testing.T) {
	top := Dumbbell(3, 4, Uniform(1), Uniform(2), 0.5)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.NumProcessors() != 7 {
		t.Fatalf("procs %d", top.NumProcessors())
	}
	// Cross-cluster routes pass the trunk: 3 hops.
	ps := top.Processors()
	route, err := top.BFSRoute(ps[0], ps[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 3 {
		t.Fatalf("cross route %d hops, want 3", len(route))
	}
}

func TestDragonfly(t *testing.T) {
	top := Dragonfly(4, 3, Uniform(1), Uniform(4), Uniform(1))
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.NumProcessors() != 12 {
		t.Fatalf("procs %d", top.NumProcessors())
	}
	// Global links: C(4,2) duplex pairs = 12 directed; local: 12*2.
	if top.NumLinks() != 12+24 {
		t.Fatalf("links %d, want 36", top.NumLinks())
	}
}

func TestButterflyNet(t *testing.T) {
	top := ButterflyNet(3, Uniform(1), Uniform(1))
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.NumProcessors() != 8 {
		t.Fatalf("procs %d", top.NumProcessors())
	}
	// 4 columns of 8 switches.
	if got := top.NumNodes() - top.NumProcessors(); got != 32 {
		t.Fatalf("switches %d, want 32", got)
	}
	// Any pair of processors is connected.
	ps := top.Processors()
	if _, err := top.BFSRoute(ps[0], ps[7]); err != nil {
		t.Fatal(err)
	}
}
