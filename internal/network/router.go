package network

import "container/heap"

// Router runs route searches over one topology with reusable scratch
// buffers, eliminating the per-call allocations (visit marks,
// predecessor arrays, label heaps) that dominate the schedulers' hot
// probe loops. A Router is NOT safe for concurrent use: create one per
// goroutine (forked scheduler states each own one) and share a
// RouteCache between them instead.
//
// The search algorithms are byte-for-byte the same as the Topology
// convenience methods — same traversal order, same deterministic
// tie-breaking — so routes are identical whichever entry point is
// used.
type Router struct {
	top   *Topology
	cache *RouteCache // optional; memoizes BFS (static) routes only

	// epoch-stamped visit marks: mark[n] == epoch means "touched in
	// the current search", so buffers never need clearing.
	epoch  uint64
	seen   []uint64 // BFS visited
	open   []uint64 // Dijkstra open set
	closed []uint64 // Dijkstra closed set

	prev  []hop
	queue []NodeID
	best  []Label
	pq    labelQueue
}

// NewRouter returns a Router over the topology. cache may be nil; a
// non-nil cache is consulted and filled by BFSRoute and may be shared
// between Routers (it is concurrency-safe).
func (t *Topology) NewRouter(cache *RouteCache) *Router {
	n := len(t.nodes)
	return &Router{
		top:    t,
		cache:  cache,
		seen:   make([]uint64, n),
		open:   make([]uint64, n),
		closed: make([]uint64, n),
		prev:   make([]hop, n),
		best:   make([]Label, n),
	}
}

// BFSRoute returns a minimal route (fewest links) from src to dst,
// consulting the route cache first when one is attached. Semantics are
// identical to Topology.BFSRoute.
//
// edgelint:noalloc — the steady-state path is a cache hit; the miss
// path (bfs + store) is cold, amortized by the route cache.
func (r *Router) BFSRoute(src, dst NodeID) (Route, error) {
	t := r.top
	t.checkNode(src)
	t.checkNode(dst)
	if src == dst {
		return Route{}, nil
	}
	if r.cache != nil {
		if route, err, ok := r.cache.lookup(src, dst); ok {
			return route, err
		}
	}
	route, err := r.bfs(src, dst)
	if r.cache != nil {
		r.cache.store(src, dst, route, err)
	}
	return route, err
}

// bfs is the uncached breadth-first search over the Router's reused
// scratch arrays.
//
// edgelint:coldpath — runs once per (src, dst) pair; the LRU route
// cache serves every later request (static topologies never evict a
// live working set in practice).
func (r *Router) bfs(src, dst NodeID) (Route, error) {
	t := r.top
	r.epoch++
	e := r.epoch
	r.seen[src] = e
	queue := append(r.queue[:0], src)
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		for _, h := range t.adj[n] {
			if r.seen[h.To] == e {
				continue
			}
			r.seen[h.To] = e
			r.prev[h.To] = hop{Link: h.Link, To: n}
			if h.To == dst {
				r.queue = queue
				return t.unwind(r.prev, src, dst), nil
			}
			queue = append(queue, h.To)
		}
	}
	r.queue = queue
	return nil, &ErrNoRoute{From: src, To: dst}
}

// DijkstraRoute finds the route from src to dst minimizing the final
// label under the given relaxation. Semantics are identical to
// Topology.DijkstraRoute; only the scratch state is reused.
func (r *Router) DijkstraRoute(src, dst NodeID, init Label, relax RelaxFunc) (Route, Label, error) {
	t := r.top
	t.checkNode(src)
	t.checkNode(dst)
	if src == dst {
		return Route{}, init, nil
	}
	r.epoch++
	e := r.epoch
	r.pq = r.pq[:0]
	pq := &r.pq
	r.best[src] = init
	r.open[src] = e
	heap.Push(pq, labelItem{node: src, label: init})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(labelItem)
		if r.closed[it.node] == e {
			continue
		}
		if r.best[it.node].Less(it.label) {
			continue // stale entry
		}
		r.closed[it.node] = e
		if it.node == dst {
			return t.unwind(r.prev, src, dst), r.best[dst], nil
		}
		for _, h := range t.adj[it.node] {
			if r.closed[h.To] == e {
				continue
			}
			nl := relax(t.links[h.Link], r.best[it.node])
			nl.Hops = r.best[it.node].Hops + 1
			if r.open[h.To] != e || nl.Less(r.best[h.To]) {
				r.best[h.To] = nl
				r.prev[h.To] = hop{Link: h.Link, To: it.node}
				r.open[h.To] = e
				heap.Push(pq, labelItem{node: h.To, label: nl})
			}
		}
	}
	return nil, Label{}, &ErrNoRoute{From: src, To: dst}
}
