package linksched

import (
	"reflect"
	"testing"
)

// TestCopyFromIndependence mirrors the Clone independence tests for
// the buffer-reusing copy path: CopyFrom into a warm (previously
// filled) destination must produce a deep copy, not an aliased one.
func TestCopyFromIndependence(t *testing.T) {
	orig := buildTimeline()
	before := timelineBytes(orig)

	var c Timeline
	c.InsertBasic(Owner{Edge: 50}, Request{ES: 0, PF: 0, Dur: 1}) // warm buffers
	c.CopyFrom(orig)
	if got := timelineBytes(&c); !reflect.DeepEqual(before, got) {
		t.Fatalf("CopyFrom did not reproduce the source: %v, want %v", got, before)
	}
	c.InsertBasic(Owner{Edge: 9}, Request{ES: 0, PF: 0, Dur: 10})
	c.InsertOptimal(Owner{Edge: 10}, Request{ES: 0, PF: 0, Dur: 1},
		func(Owner) float64 { return 100 })
	if got := timelineBytes(orig); !reflect.DeepEqual(before, got) {
		t.Fatalf("mutating a CopyFrom copy changed the original:\nbefore %v\nafter  %v", before, got)
	}
}

// TestBWCopyFromIndependence is the bandwidth-ledger counterpart.
func TestBWCopyFromIndependence(t *testing.T) {
	orig := buildBWTimeline()
	before := bwBytes(orig)

	var c BWTimeline
	c.Alloc(Owner{Edge: 50}, 0, 5, 1, 1) // warm buffers
	c.CopyFrom(orig)
	if got := bwBytes(&c); !reflect.DeepEqual(before, got) {
		t.Fatalf("CopyFrom did not reproduce the source: %v, want %v", got, before)
	}
	c.Alloc(Owner{Edge: 9}, 0, 50, 1, 1)
	if got := bwBytes(orig); !reflect.DeepEqual(before, got) {
		t.Fatalf("mutating a BWTimeline CopyFrom copy changed the original")
	}
}

// TestCopyTimelinesColumn covers the arena-backed bulk path: a mixed
// column (empty, small, index-carrying timelines) copied into both a
// cold (nil) and a warm destination must be deep and shape-preserving,
// and carved windows must not bleed into their arena neighbors when
// one copy grows afterwards.
func TestCopyTimelinesColumn(t *testing.T) {
	src := make([]Timeline, 3)
	src[1].CopyFrom(buildTimeline())
	// Push src[2] past one block so it carries blkEnd/blkGap summaries.
	for i := 0; i < gapBlock+8; i++ {
		src[2].InsertBasic(Owner{Edge: i}, Request{ES: float64(2 * i), PF: float64(2 * i), Dur: 1})
	}
	want := [][]Slot{nil, timelineBytes(&src[1]), timelineBytes(&src[2])}

	check := func(name string, dst []Timeline) {
		t.Helper()
		if len(dst) != len(src) {
			t.Fatalf("%s: %d timelines, want %d", name, len(dst), len(src))
		}
		for i := range dst {
			if got := dst[i].Slots(); !reflect.DeepEqual(append([]Slot(nil), got...), want[i]) {
				t.Fatalf("%s: timeline %d = %v, want %v", name, i, got, want[i])
			}
			if err := dst[i].Validate(); err != nil {
				t.Fatalf("%s: timeline %d index invalid after copy: %v", name, i, err)
			}
		}
	}

	cold := CopyTimelines(nil, src)
	check("cold", cold)
	// Neighbor-bleed probe: grow the middle copy; its arena-carved
	// window must reallocate privately instead of overwriting slots of
	// the timeline carved after it.
	cold[1].InsertBasic(Owner{Edge: 77}, Request{ES: 1e6, PF: 1e6, Dur: 1})
	if got := append([]Slot(nil), cold[2].Slots()...); !reflect.DeepEqual(got, want[2]) {
		t.Fatal("growing one carved timeline bled into its arena neighbor")
	}

	warm := CopyTimelines(cold, src)
	check("warm", warm)
	for i := range warm {
		warm[i].InsertBasic(Owner{Edge: 88}, Request{ES: 2e6, PF: 2e6, Dur: 1})
	}
	for i := range src {
		if got := timelineBytes(&src[i]); !reflect.DeepEqual(got, want[i]) && want[i] != nil {
			t.Fatalf("mutating a warm copy changed source timeline %d", i)
		}
	}

	if CopyTimelines(warm, nil) != nil {
		t.Fatal("nil source must yield a nil column")
	}
}

// TestCopyBWTimelinesColumn covers the bandwidth column bulk path.
func TestCopyBWTimelinesColumn(t *testing.T) {
	src := make([]BWTimeline, 2)
	src[1].CopyFrom(buildBWTimeline())
	want := [][]SegmentInfo{nil, bwBytes(&src[1])}

	dst := CopyBWTimelines(nil, src)
	for i := range dst {
		if got := bwBytes(&dst[i]); !reflect.DeepEqual(got, want[i]) && want[i] != nil {
			t.Fatalf("timeline %d = %v, want %v", i, got, want[i])
		}
	}
	dst[1].Alloc(Owner{Edge: 9}, 0, 50, 1, 1)
	if got := bwBytes(&src[1]); !reflect.DeepEqual(got, want[1]) {
		t.Fatal("mutating a bulk-copied BWTimeline changed the source")
	}
	if CopyBWTimelines(dst, nil) != nil {
		t.Fatal("nil source must yield a nil column")
	}
}
