package linksched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func totalVolume(cs []Chunk) float64 {
	v := 0.0
	for _, c := range cs {
		v += c.Volume
	}
	return v
}

func TestAllocIdleLink(t *testing.T) {
	bw := NewBWTimeline()
	cs := bw.Alloc(o(0, 0), 5, 10, 2, 0) // volume 10 at speed 2 → 5 time units
	if len(cs) != 1 {
		t.Fatalf("chunks=%d, want 1: %+v", len(cs), cs)
	}
	c := cs[0]
	if c.Start != 5 || math.Abs(c.End-10) > Eps || c.Rate != 1 {
		t.Fatalf("chunk %+v, want [5,10] rate 1", c)
	}
	if math.Abs(c.Volume-10) > Eps {
		t.Fatalf("volume %v, want 10", c.Volume)
	}
	if err := bw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocSharesBandwidth(t *testing.T) {
	bw := NewBWTimeline()
	// Edge 0 takes 50% over [0,10] (cap 0.5), leaving 50%.
	cs0 := bw.Alloc(o(0, 0), 0, 5, 1, 0.5)
	if len(cs0) != 1 || math.Abs(cs0[0].End-10) > Eps {
		t.Fatalf("edge0 chunks %+v", cs0)
	}
	// Edge 1 uncapped from 0: gets 0.5 over [0,10], then 1.0 after.
	cs1 := bw.Alloc(o(1, 0), 0, 10, 1, 0)
	if len(cs1) != 2 {
		t.Fatalf("edge1 chunks %+v", cs1)
	}
	if math.Abs(cs1[0].Rate-0.5) > Eps || math.Abs(cs1[0].End-10) > Eps {
		t.Fatalf("edge1 first chunk %+v", cs1[0])
	}
	if math.Abs(cs1[1].Rate-1.0) > Eps || math.Abs(cs1[1].End-15) > Eps {
		t.Fatalf("edge1 second chunk %+v", cs1[1])
	}
	if math.Abs(totalVolume(cs1)-10) > 1e-9 {
		t.Fatalf("edge1 moved %v, want 10", totalVolume(cs1))
	}
	if err := bw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocWaitsForSaturatedLink(t *testing.T) {
	bw := NewBWTimeline()
	bw.Alloc(o(0, 0), 0, 10, 1, 0) // full bandwidth [0,10]
	cs := bw.Alloc(o(1, 0), 0, 5, 1, 0)
	if len(cs) != 1 || cs[0].Start != 10 || math.Abs(cs[0].End-15) > Eps {
		t.Fatalf("chunks %+v, want one chunk [10,15]", cs)
	}
}

func TestAllocZeroVolume(t *testing.T) {
	bw := NewBWTimeline()
	cs := bw.Alloc(o(0, 0), 7, 0, 1, 0)
	if len(cs) != 1 || cs[0].Start != 7 || cs[0].End != 7 || cs[0].Volume != 0 {
		t.Fatalf("chunks %+v", cs)
	}
	if bw.NumSegments() != 0 {
		t.Fatalf("zero-volume alloc must not reserve")
	}
}

func TestEstimateFinishMatchesAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	bw := NewBWTimeline()
	for i := 0; i < 40; i++ {
		es := r.Float64() * 50
		vol := r.Float64()*20 + 0.1
		speed := r.Float64()*9 + 1
		s1, f1 := bw.EstimateFinish(es, vol, speed)
		cs := bw.Alloc(o(i, 0), es, vol, speed, 0)
		if math.Abs(cs[0].Start-s1) > 1e-9 {
			t.Fatalf("i=%d: estimate start %v, alloc start %v", i, s1, cs[0].Start)
		}
		if math.Abs(cs[len(cs)-1].End-f1) > 1e-6 {
			t.Fatalf("i=%d: estimate finish %v, alloc finish %v", i, f1, cs[len(cs)-1].End)
		}
		if err := bw.Validate(); err != nil {
			t.Fatalf("i=%d: %v", i, err)
		}
	}
}

func TestForwardSameSpeedIdleLink(t *testing.T) {
	up := NewBWTimeline()
	down := NewBWTimeline()
	in := up.Alloc(o(0, 0), 0, 10, 1, 0) // [0,10] rate 1
	out := down.Forward(o(0, 1), in, 1, 1, 0)
	// Cut-through at equal speed: downstream mirrors upstream.
	if len(out) != 1 || out[0].Start != 0 || math.Abs(out[0].End-10) > Eps {
		t.Fatalf("out %+v", out)
	}
	if math.Abs(totalVolume(out)-10) > 1e-9 {
		t.Fatalf("volume %v", totalVolume(out))
	}
}

func TestForwardFasterLinkIsRateCapped(t *testing.T) {
	up := NewBWTimeline()
	down := NewBWTimeline()
	in := up.Alloc(o(0, 0), 0, 10, 1, 0) // rate 1 at speed 1 → 10s
	out := down.Forward(o(0, 1), in, 1, 2, 0)
	// Downstream speed 2 but inflow is 1 byte/s → rate 0.5, same 10s.
	if len(out) != 1 {
		t.Fatalf("out %+v", out)
	}
	if math.Abs(out[0].Rate-0.5) > Eps || math.Abs(out[0].End-10) > Eps {
		t.Fatalf("out %+v, want rate 0.5 end 10", out[0])
	}
}

func TestForwardSlowerLinkStretches(t *testing.T) {
	up := NewBWTimeline()
	down := NewBWTimeline()
	in := up.Alloc(o(0, 0), 0, 10, 2, 0) // [0,5] at speed 2
	out := down.Forward(o(0, 1), in, 2, 1, 0)
	// Downstream speed 1: takes 10s even though data arrives in 5.
	if math.Abs(out[len(out)-1].End-10) > Eps {
		t.Fatalf("out %+v, want end 10", out)
	}
	if math.Abs(totalVolume(out)-10) > 1e-9 {
		t.Fatalf("volume %v", totalVolume(out))
	}
}

func TestForwardNeverOutrunsInflow(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		up := NewBWTimeline()
		down := NewBWTimeline()
		// Random pre-existing load on both links.
		for i := 0; i < 5; i++ {
			up.Alloc(o(100+i, 0), r.Float64()*20, r.Float64()*10, 1, r.Float64())
			down.Alloc(o(200+i, 0), r.Float64()*20, r.Float64()*10, 1, r.Float64())
		}
		vol := r.Float64()*15 + 0.5
		speedUp := r.Float64()*9 + 1
		speedDown := r.Float64()*9 + 1
		in := up.Alloc(o(0, 0), r.Float64()*10, vol, speedUp, 0)
		out := down.Forward(o(0, 1), in, speedUp, speedDown, 0)
		if math.Abs(totalVolume(out)-vol) > 1e-6*vol+1e-9 {
			t.Fatalf("trial %d: forwarded %v of %v", trial, totalVolume(out), vol)
		}
		// Cumulative outflow ≤ cumulative inflow at all chunk edges.
		cum := func(cs []Chunk, x float64) float64 {
			v := 0.0
			for _, c := range cs {
				if c.End <= x {
					v += c.Volume
				} else if c.Start < x {
					v += c.Volume * (x - c.Start) / (c.End - c.Start)
				}
			}
			return v
		}
		for _, c := range out {
			for _, x := range []float64{c.Start, (c.Start + c.End) / 2, c.End} {
				if cum(out, x) > cum(in, x)+1e-6*vol+1e-9 {
					t.Fatalf("trial %d: outflow %v > inflow %v at t=%v",
						trial, cum(out, x), cum(in, x), x)
				}
			}
		}
		if err := down.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestNoUnderflowHangAtLargeTimes(t *testing.T) {
	// Regression: at large absolute times, the drain time of a tiny
	// residual volume can underflow one ulp of the clock
	// (cur + need == cur), which used to spin Alloc/EstimateFinish
	// forever. Found by the Figure 3 full-scale run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		bw := NewBWTimeline()
		// Occupy [1e9, 1e9+1000] fully, then transfer a volume whose
		// remaining-time steps underflow at t ≈ 1e9.
		bw.Alloc(o(0, 0), 1e9, 1000*1000, 1000, 0)
		bw.EstimateFinish(1e9, 1e-5, 1000)
		bw.Alloc(o(1, 0), 1e9, 1e-5, 1000, 0)
		if err := bw.Validate(); err != nil {
			t.Errorf("validate: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("bandwidth timeline spun on underflowing residual volume")
	}
}

func TestBWSnapshotRestore(t *testing.T) {
	bw := NewBWTimeline()
	bw.Alloc(o(0, 0), 0, 5, 1, 0)
	snap := bw.Snapshot()
	bw.Alloc(o(1, 0), 0, 5, 1, 0)
	segsAfter := bw.NumSegments()
	bw.Restore(snap)
	if bw.NumSegments() == segsAfter {
		t.Fatalf("restore did not shrink segments")
	}
	// The restored timeline must behave like the original: edge 1 can
	// again start at 5 (after edge 0's full-bandwidth transfer).
	cs := bw.Alloc(o(2, 0), 0, 5, 1, 0)
	if cs[0].Start != 5 {
		t.Fatalf("after restore start=%v, want 5", cs[0].Start)
	}
}

// Property: any interleaving of capped allocations keeps every segment
// within capacity and moves exactly the requested volume.
func TestAllocCapacityProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		bw := NewBWTimeline()
		count := int(n%20) + 1
		for i := 0; i < count; i++ {
			es := r.Float64() * 40
			vol := r.Float64()*12 + 0.01
			speed := r.Float64()*9 + 1
			cap := 0.0
			if r.Intn(2) == 0 {
				cap = r.Float64()*0.9 + 0.05
			}
			cs := bw.Alloc(o(i, 0), es, vol, speed, cap)
			if math.Abs(totalVolume(cs)-vol) > 1e-6*vol+1e-9 {
				return false
			}
			for _, c := range cs {
				if c.Start < es-Eps {
					return false
				}
				if cap > 0 && c.Rate > cap+Eps {
					return false
				}
			}
		}
		return bw.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: chunks returned by Alloc are time-ordered and
// non-overlapping.
func TestAllocChunkOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bw := NewBWTimeline()
		for i := 0; i < 10; i++ {
			cs := bw.Alloc(o(i, 0), r.Float64()*20, r.Float64()*10+0.1, 1, r.Float64()*0.5+0.25)
			prevEnd := math.Inf(-1)
			for _, c := range cs {
				if c.Start < prevEnd-Eps || c.End < c.Start-Eps {
					return false
				}
				prevEnd = c.End
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentsExposure(t *testing.T) {
	bw := NewBWTimeline()
	bw.Alloc(o(0, 0), 0, 10, 1, 0.5)
	bw.Alloc(o(1, 0), 0, 5, 1, 0.25)
	segs := bw.Segments()
	if len(segs) == 0 {
		t.Fatal("no segments exposed")
	}
	for _, s := range segs {
		if s.End < s.Start {
			t.Fatalf("inverted segment %+v", s)
		}
		sum := 0.0
		for _, u := range s.Uses {
			if u.Rate <= 0 {
				t.Fatalf("non-positive share %+v", u)
			}
			sum += u.Rate
		}
		if math.Abs((1-sum)-s.Avail) > 1e-9 {
			t.Fatalf("segment books don't balance: %+v", s)
		}
	}
}

func TestForwardZeroVolumeChunks(t *testing.T) {
	down := NewBWTimeline()
	// All-empty input yields a single empty output chunk.
	out := down.Forward(o(0, 1), []Chunk{{Start: 5, End: 5}}, 1, 1, 0)
	if len(out) != 1 || out[0].Volume != 0 {
		t.Fatalf("out %+v", out)
	}
	// Entirely empty input also yields a placeholder.
	out = down.Forward(o(1, 1), nil, 1, 1, 0)
	if len(out) != 1 {
		t.Fatalf("out %+v", out)
	}
}

func TestForwardWithHopDelayShiftsStart(t *testing.T) {
	up := NewBWTimeline()
	down := NewBWTimeline()
	in := up.Alloc(o(0, 0), 0, 10, 1, 0) // [0,10]
	out := down.Forward(o(0, 1), in, 1, 1, 3)
	if out[0].Start < 3-Eps {
		t.Fatalf("hop delay ignored: start %v", out[0].Start)
	}
}

func TestBWValidateCatchesCorruption(t *testing.T) {
	bw := NewBWTimeline()
	bw.Alloc(o(0, 0), 0, 10, 1, 0.5)
	if err := bw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the books directly.
	s0 := &bw.chunks[0].segs[0]
	s0.avail = 0.9 // inconsistent with the 0.5 share
	if err := bw.Validate(); err == nil {
		t.Fatal("inconsistent avail accepted")
	}
	s0.avail = 0.5
	s0.uses[0].rate = 1.5
	if err := bw.Validate(); err == nil {
		t.Fatal("share > 1 accepted")
	}
	s0.uses[0].rate = 0.5
	end := s0.end
	s0.end = s0.start - 1
	if err := bw.Validate(); err == nil {
		t.Fatal("inverted segment accepted")
	}
	s0.end = end
	// Corrupting a block summary without reindexing must be caught too.
	bw.chunks[0].maxAvail = 0.25
	if err := bw.Validate(); err == nil {
		t.Fatal("stale block summary accepted")
	}
	bw.reindexChunk(0)
	// A segment count out of sync with the slabs must be caught.
	bw.nsegs++
	if err := bw.Validate(); err == nil {
		t.Fatal("wrong segment count accepted")
	}
	bw.nsegs--
	// A boundary beyond the tracked magnitude bound must be caught.
	bw.maxAbs = s0.end / 2
	if err := bw.Validate(); err == nil {
		t.Fatal("boundary beyond maxAbs accepted")
	}
}
