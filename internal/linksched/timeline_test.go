package linksched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func o(edge, leg int) Owner { return Owner{Edge: edge, Leg: leg} }

func TestProbeBasicEmpty(t *testing.T) {
	tl := NewTimeline()
	start, finish := tl.ProbeBasic(Request{ES: 5, PF: 5, Dur: 3})
	if start != 5 || finish != 8 {
		t.Fatalf("got [%v,%v], want [5,8]", start, finish)
	}
}

func TestProbeBasicLowerBoundFromPF(t *testing.T) {
	// PF=10, Dur=2 → slot must end at ≥10, so start ≥ 8 even though ES=0.
	tl := NewTimeline()
	start, finish := tl.ProbeBasic(Request{ES: 0, PF: 10, Dur: 2})
	if start != 8 || finish != 10 {
		t.Fatalf("got [%v,%v], want [8,10]", start, finish)
	}
}

func TestProbeBasicZeroDur(t *testing.T) {
	tl := NewTimeline()
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 100})
	start, finish := tl.ProbeBasic(Request{ES: 3, PF: 7, Dur: 0})
	if start != 7 || finish != 7 {
		t.Fatalf("zero-duration request got [%v,%v], want [7,7]", start, finish)
	}
	if tl.Len() != 1 {
		t.Fatalf("probe must not mutate")
	}
}

func TestInsertBasicFindsGap(t *testing.T) {
	tl := NewTimeline()
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 4})   // [0,4]
	tl.InsertBasic(o(1, 0), Request{ES: 10, PF: 10, Dur: 4}) // [10,14]
	// Dur 5 fits in the gap [4,10].
	start, finish := tl.InsertBasic(o(2, 0), Request{ES: 0, PF: 0, Dur: 5})
	if start != 4 || finish != 9 {
		t.Fatalf("got [%v,%v], want [4,9]", start, finish)
	}
	// Dur 7 does not fit in any gap; must append at 14.
	start, finish = tl.InsertBasic(o(3, 0), Request{ES: 0, PF: 0, Dur: 7})
	if start != 14 || finish != 21 {
		t.Fatalf("got [%v,%v], want [14,21]", start, finish)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBasicRespectsES(t *testing.T) {
	tl := NewTimeline()
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 2}) // [0,2]
	// Gap before slot ends at 0; ES=1 prevents using [0,?]... gap [2,inf).
	start, _ := tl.InsertBasic(o(1, 0), Request{ES: 1, PF: 1, Dur: 3})
	if start != 2 {
		t.Fatalf("start=%v, want 2", start)
	}
}

func TestInsertBasicTightGapBoundary(t *testing.T) {
	tl := NewTimeline()
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 4})   // [0,4]
	tl.InsertBasic(o(1, 0), Request{ES: 0, PF: 0, Dur: 6})   // [4,10]
	tl.InsertBasic(o(2, 0), Request{ES: 12, PF: 12, Dur: 4}) // [12,16]
	// Exactly fills [10,12].
	start, finish := tl.InsertBasic(o(3, 0), Request{ES: 0, PF: 0, Dur: 2})
	if start != 10 || finish != 12 {
		t.Fatalf("got [%v,%v], want [10,12]", start, finish)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func noSlack(Owner) float64 { return 0 }

func TestOptimalEqualsBasicWithZeroSlack(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a, b := NewTimeline(), NewTimeline()
		for i := 0; i < 10; i++ {
			req := Request{
				ES:  float64(r.Intn(50)),
				Dur: 1 + float64(r.Intn(10)),
			}
			req.PF = req.ES + float64(r.Intn(5))
			s1, f1 := a.InsertBasic(o(i, 0), req)
			s2, f2, moved := b.InsertOptimal(o(i, 0), req, noSlack)
			if len(moved) != 0 {
				t.Fatalf("trial %d: zero slack must not move slots", trial)
			}
			if s1 != s2 || f1 != f2 {
				t.Fatalf("trial %d insert %d: basic [%v,%v] != optimal [%v,%v]", trial, i, s1, f1, s2, f2)
			}
		}
	}
}

func TestOptimalDefersSlotToOpenGap(t *testing.T) {
	tl := NewTimeline()
	// Slot A [0,4] with slack 5 (pretend its next-link placement allows it).
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 4})
	slack := func(ow Owner) float64 {
		if ow.Edge == 0 {
			return 5
		}
		return 0
	}
	// New edge needs [0,3] — basic would give [4,7], optimal defers A.
	start, finish, moved := tl.InsertOptimal(o(1, 0), Request{ES: 0, PF: 0, Dur: 3}, slack)
	if start != 0 || finish != 3 {
		t.Fatalf("got [%v,%v], want [0,3]", start, finish)
	}
	if len(moved) != 1 || moved[0].Owner.Edge != 0 {
		t.Fatalf("expected slot A moved, got %+v", moved)
	}
	if moved[0].Start != 3 || moved[0].End != 7 {
		t.Fatalf("slot A moved to [%v,%v], want [3,7]", moved[0].Start, moved[0].End)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalRespectsSlackLimit(t *testing.T) {
	tl := NewTimeline()
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 4}) // [0,4]
	slack := func(ow Owner) float64 { return 2 }           // can move to at most [2,6]
	// Dur 3 before the slot requires deferring by 3 > 2: infeasible,
	// must append at 4.
	start, finish, moved := tl.InsertOptimal(o(1, 0), Request{ES: 0, PF: 0, Dur: 3}, slack)
	if start != 4 || finish != 7 || len(moved) != 0 {
		t.Fatalf("got [%v,%v] moved=%v, want [4,7] no moves", start, finish, moved)
	}
}

func TestOptimalChainedDeferral(t *testing.T) {
	// Slots [0,2], [2,4], each with slack 3. Gap structure: none.
	// Inserting Dur 2 at time 0 pushes both right by 2 ≤ slack chain.
	tl := NewTimeline()
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 2})
	tl.InsertBasic(o(1, 0), Request{ES: 0, PF: 0, Dur: 2})
	slack := func(Owner) float64 { return 3 }
	start, finish, moved := tl.InsertOptimal(o(2, 0), Request{ES: 0, PF: 0, Dur: 2}, slack)
	if start != 0 || finish != 2 {
		t.Fatalf("got [%v,%v], want [0,2]", start, finish)
	}
	if len(moved) != 2 {
		t.Fatalf("want 2 moved slots, got %d", len(moved))
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	// accum for slot 0 = min(3, accum1 + gap0) = min(3, 3+0) = 3 ≥ 2 ✓
	slots := tl.Slots()
	if slots[0].Start != 0 || slots[1].Start != 2 || slots[2].Start != 4 {
		t.Fatalf("unexpected layout %+v", slots)
	}
}

func TestOptimalAccumLimitedByDownstreamSlack(t *testing.T) {
	// Slot A [0,2] slack 10, slot B [2,4] slack 1: pushing A right
	// requires pushing B; accum for A = min(10, 1 + gap 0) = 1, so a
	// Dur-2 insertion before A is infeasible, Dur-1 is feasible.
	tl := NewTimeline()
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 2})
	tl.InsertBasic(o(1, 0), Request{ES: 0, PF: 0, Dur: 2})
	slack := func(ow Owner) float64 {
		if ow.Edge == 0 {
			return 10
		}
		return 1
	}
	start, _, _ := tl.ProbeOptimal(Request{ES: 0, PF: 0, Dur: 2}, slack)
	if start != 4 {
		t.Fatalf("Dur 2: start=%v, want 4 (append)", start)
	}
	start, finish, moved := tl.InsertOptimal(o(2, 0), Request{ES: 0, PF: 0, Dur: 1}, slack)
	if start != 0 || finish != 1 {
		t.Fatalf("Dur 1: got [%v,%v], want [0,1]", start, finish)
	}
	if len(moved) != 2 {
		t.Fatalf("want both slots moved, got %+v", moved)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalPrefersEarliestFeasiblePosition(t *testing.T) {
	// Slots [0,2] (no slack) and [10,12] (no slack): a Dur-2 edge with
	// ES 0 should land in the gap at [2,4], not append at 12.
	tl := NewTimeline()
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 2})
	tl.InsertBasic(o(1, 0), Request{ES: 10, PF: 10, Dur: 2})
	start, finish, moved := tl.InsertOptimal(o(2, 0), Request{ES: 0, PF: 0, Dur: 2}, noSlack)
	if start != 2 || finish != 4 || len(moved) != 0 {
		t.Fatalf("got [%v,%v] moved=%v, want [2,4]", start, finish, moved)
	}
}

func TestSnapshotRestore(t *testing.T) {
	tl := NewTimeline()
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 2})
	snap := tl.Snapshot()
	tl.InsertBasic(o(1, 0), Request{ES: 0, PF: 0, Dur: 2})
	tl.InsertOptimal(o(2, 0), Request{ES: 0, PF: 0, Dur: 1}, noSlack)
	if tl.Len() != 3 {
		t.Fatalf("len=%d, want 3", tl.Len())
	}
	tl.Restore(snap)
	if tl.Len() != 1 {
		t.Fatalf("after restore len=%d, want 1", tl.Len())
	}
	if s := tl.Slots()[0]; s.Start != 0 || s.End != 2 {
		t.Fatalf("restored slot %+v", s)
	}
}

func TestUtilizationAndLastEnd(t *testing.T) {
	tl := NewTimeline()
	if tl.LastEnd() != 0 {
		t.Fatalf("empty LastEnd=%v", tl.LastEnd())
	}
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 2})
	tl.InsertBasic(o(1, 0), Request{ES: 6, PF: 6, Dur: 2})
	if got := tl.LastEnd(); got != 8 {
		t.Fatalf("LastEnd=%v, want 8", got)
	}
	if got := tl.Utilization(8); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Utilization=%v, want 0.5", got)
	}
	if got := tl.Utilization(0); got != 0 {
		t.Fatalf("Utilization(0)=%v", got)
	}
}

// Property: after any sequence of basic insertions, the timeline is
// valid and every slot honours its request's lower bound.
func TestBasicInsertionProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		count := int(n%32) + 1
		for i := 0; i < count; i++ {
			es := r.Float64() * 100
			pf := es + r.Float64()*20
			dur := r.Float64()*10 + 0.01
			start, finish := tl.InsertBasic(o(i, 0), Request{ES: es, PF: pf, Dur: dur})
			if start < es-Eps || finish < pf-Eps {
				return false
			}
			if math.Abs((finish-start)-dur) > Eps {
				return false
			}
		}
		return tl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: optimal insertion never yields a later start than basic
// insertion would on the same timeline state, and the timeline stays
// valid even with random (but honest) slack values.
func TestOptimalNeverWorseThanBasicProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		slacks := map[Owner]float64{}
		slackFn := func(ow Owner) float64 { return slacks[ow] }
		count := int(n%24) + 2
		for i := 0; i < count; i++ {
			es := r.Float64() * 60
			pf := es + r.Float64()*10
			dur := r.Float64()*8 + 0.01
			req := Request{ES: es, PF: pf, Dur: dur}
			basicStart, _ := tl.ProbeBasic(req)
			optStart, optFinish, _ := tl.ProbeOptimal(req, slackFn)
			if optStart > basicStart+Eps {
				return false
			}
			if optStart < req.lowerBound()-Eps {
				return false
			}
			start, finish, _ := tl.InsertOptimal(o(i, 0), req, slackFn)
			if start != optStart || finish != optFinish {
				return false
			}
			if tl.Validate() != nil {
				return false
			}
			// Give this slot a random future slack for later rounds.
			slacks[o(i, 0)] = r.Float64() * 5
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: slots shifted by optimal insertion move right by at most
// their slack.
func TestOptimalShiftWithinSlackProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		slacks := map[Owner]float64{}
		slackFn := func(ow Owner) float64 { return slacks[ow] }
		starts := map[Owner]float64{}
		for i := 0; i < 12; i++ {
			es := r.Float64() * 30
			dur := r.Float64()*6 + 0.01
			req := Request{ES: es, PF: es, Dur: dur}
			start, _, moved := tl.InsertOptimal(o(i, 0), req, slackFn)
			starts[o(i, 0)] = start
			for _, m := range moved {
				maxAllowed := starts[m.Owner] + slacks[m.Owner]
				if m.Start > maxAllowed+Eps {
					return false
				}
				starts[m.Owner] = m.Start
				slacks[m.Owner] = maxAllowed - m.Start // remaining slack
			}
			slacks[o(i, 0)] = r.Float64() * 4
		}
		return tl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotDur(t *testing.T) {
	s := Slot{Start: 3, End: 8}
	if s.Dur() != 5 {
		t.Fatalf("dur %v", s.Dur())
	}
}

func TestTimelineValidateCatchesCorruption(t *testing.T) {
	tl := NewTimeline()
	tl.InsertBasic(o(0, 0), Request{ES: 0, PF: 0, Dur: 5})
	tl.InsertBasic(o(1, 0), Request{ES: 10, PF: 10, Dur: 5})
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	tl.slots[1].Start = 2 // overlap with slot 0
	if err := tl.Validate(); err == nil {
		t.Fatal("overlap accepted")
	}
	tl.slots[1].Start = 10
	tl.slots[0].End = tl.slots[0].Start - 1 // inverted
	if err := tl.Validate(); err == nil {
		t.Fatal("inverted slot accepted")
	}
	tl.slots[0].End = 5
	tl.slots[0].Start = -1 // negative
	if err := tl.Validate(); err == nil {
		t.Fatal("negative slot accepted")
	}
}
