package linksched

import (
	"reflect"
	"testing"
)

// buildTimeline fills a timeline with a few non-adjacent slots.
func buildTimeline() *Timeline {
	t := NewTimeline()
	t.InsertBasic(Owner{Edge: 1}, Request{ES: 0, PF: 0, Dur: 3})
	t.InsertBasic(Owner{Edge: 2}, Request{ES: 5, PF: 6, Dur: 2})
	t.InsertBasic(Owner{Edge: 3}, Request{ES: 1, PF: 1, Dur: 1})
	return t
}

// timelineBytes snapshots a timeline's full observable state.
func timelineBytes(t *Timeline) []Slot {
	return append([]Slot(nil), t.Slots()...)
}

// TestTimelineCloneIndependence mutates a clone and asserts the
// original is byte-identical — the dynamic ground truth mirrored
// statically by the clonecheck analyzer.
func TestTimelineCloneIndependence(t *testing.T) {
	orig := buildTimeline()
	before := timelineBytes(orig)

	c := orig.Clone()
	c.InsertBasic(Owner{Edge: 9}, Request{ES: 0, PF: 0, Dur: 10})
	c.InsertOptimal(Owner{Edge: 10}, Request{ES: 0, PF: 0, Dur: 1},
		func(Owner) float64 { return 100 })

	if got := timelineBytes(orig); !reflect.DeepEqual(before, got) {
		t.Fatalf("mutating a Timeline clone changed the original:\nbefore %v\nafter  %v", before, got)
	}

	// And the other direction: mutating the original must not reach
	// the clone.
	cb := timelineBytes(c)
	orig.InsertBasic(Owner{Edge: 11}, Request{ES: 20, PF: 20, Dur: 5})
	if got := timelineBytes(c); !reflect.DeepEqual(cb, got) {
		t.Fatalf("mutating the original Timeline changed its clone")
	}
}

// buildBWTimeline reserves overlapping bandwidth shares.
func buildBWTimeline() *BWTimeline {
	t := NewBWTimeline()
	t.Alloc(Owner{Edge: 1}, 0, 30, 1, 0.5)
	t.Alloc(Owner{Edge: 2}, 5, 20, 1, 0.75)
	return t
}

// bwBytes snapshots the full observable segment state.
func bwBytes(t *BWTimeline) []SegmentInfo {
	return t.Segments()
}

// TestBWTimelineCloneIndependence mutates a BWTimeline clone and
// asserts the original is byte-identical.
func TestBWTimelineCloneIndependence(t *testing.T) {
	orig := buildBWTimeline()
	before := bwBytes(orig)

	c := orig.Clone()
	c.Alloc(Owner{Edge: 9}, 0, 50, 1, 1)
	c.Forward(Owner{Edge: 10}, []Chunk{{Start: 0, End: 4, Rate: 0.25}}, 1, 1, 0.5)

	if got := bwBytes(orig); !reflect.DeepEqual(before, got) {
		t.Fatalf("mutating a BWTimeline clone changed the original:\nbefore %v\nafter  %v", before, got)
	}

	cb := bwBytes(c)
	orig.Alloc(Owner{Edge: 11}, 0, 10, 1, 1)
	if got := bwBytes(c); !reflect.DeepEqual(cb, got) {
		t.Fatalf("mutating the original BWTimeline changed its clone")
	}
}
