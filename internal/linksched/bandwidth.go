package linksched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fptime"
)

// Chunk is one contiguous piece of a communication transferred on a
// link at a constant fraction of the link's bandwidth. BBSA spreads an
// edge's volume over chunks with varying rates (§5).
type Chunk struct {
	Start  float64
	End    float64
	Rate   float64 // fraction of the link's bandwidth in (0, 1]
	Volume float64 // data moved: Rate * linkSpeed * (End-Start)
}

// use records one owner's bandwidth share within a segment.
type use struct {
	owner Owner
	rate  float64
}

// seg is a maximal interval of a bandwidth timeline with a constant set
// of bandwidth shares. Segments are sorted, non-overlapping; time not
// covered by any segment is fully idle.
type seg struct {
	start, end float64
	avail      float64 // remaining bandwidth fraction in [0, 1]
	uses       []use
}

// bwBlock is the nominal slab size of the chunked segment store: slabs
// hold between 1 and 2*bwBlock segments and split in half when they
// overflow, so an insert moves O(bwBlock) segments instead of the whole
// ledger. One slab is also one summary block for the availability
// index, mirroring gapBlock on the exclusive-slot Timeline.
const bwBlock = 32

// bwChunk is one slab of the chunked segment store together with the
// block summaries the sublinear kernels prune on. The summaries are
// pure folds of the slab's segments — recomputed by reindexChunk after
// every mutation of the slab and verified exactly by Validate.
type bwChunk struct {
	segs []seg // 1..2*bwBlock segments, globally sorted

	// maxAvail is the exact float64 max of the segments' avail: a slab
	// with maxAvail <= Eps is fully saturated everywhere it covers.
	maxAvail float64
	// maxGap is the largest idle gap between consecutive segments
	// inside the slab (start[i] - end[i-1]); -Inf below two segments.
	// A slab whose maxGap is safely below Eps has no internal gap the
	// walk could stop in.
	maxGap float64
	// minEndDiff is the smallest spacing of consecutive segment ends
	// inside the slab (end[i] - end[i-1]); +Inf below two segments.
	// When it is safely above Eps, the cursor's end <= cur+Eps advance
	// can never hop two of the slab's segments at once, which is what
	// lets skipSaturated consume the slab in one step.
	minEndDiff float64
}

// lastEnd is the slab's greatest segment end (ends increase strictly).
func (c *bwChunk) lastEnd() float64 { return c.segs[len(c.segs)-1].end }

// BWTimeline is the per-link bandwidth ledger used by BBSA: multiple
// communications may share a link concurrently as long as their
// bandwidth fractions sum to at most 1.
//
// Segments live in chunked slabs (bwChunk) rather than one flat slice,
// so reserve's splits and gap-fills cost O(bwBlock), and each slab
// carries saturation summaries that let Alloc/EstimateFinish skip
// saturated stretches block-by-block. Both kernels remain bit-identical
// to the retained linear reference (bwRef in reference.go): pruning is
// conservative only, enforced by the differential sweeps and
// FuzzBWTimelineDifferential.
//
// The zero value is an idle timeline ready for use.
type BWTimeline struct {
	chunks []bwChunk
	nsegs  int // total segments across chunks

	// maxAbs bounds the magnitude of every segment boundary ever
	// stored, scaling the float-safety slack of the block prunes: the
	// summary folds are exact, but the gap/spacing differences they
	// summarize carry one subtraction rounding of at most
	// 2*ulp(maxAbs). Only grows, surviving Restore, like Timeline's.
	maxAbs float64
}

// NewBWTimeline returns an idle bandwidth timeline.
func NewBWTimeline() *BWTimeline { return &BWTimeline{} }

// Reset empties the ledger in place, retaining the slab backing array
// so a pooled scheduler state reuses it on its next request. The
// result is indistinguishable from a fresh zero-value ledger — maxAbs
// rewinds too, so the prune slack of a reused ledger matches a cold
// run bit-for-bit.
func (t *BWTimeline) Reset() {
	t.chunks = t.chunks[:0]
	t.nsegs = 0
	t.maxAbs = 0
}

// ResetBWTimelines empties every ledger of the column in place,
// retaining all backing capacity (see Reset).
func ResetBWTimelines(ts []BWTimeline) {
	for i := range ts {
		ts[i].Reset()
	}
}

// SegmentInfo exposes one segment for verification and display.
type SegmentInfo struct {
	Start, End float64
	Avail      float64
	Uses       []SegmentUse
}

// SegmentUse is one owner's share within a segment.
type SegmentUse struct {
	Owner Owner
	Rate  float64
}

// Segments returns a copy of the current segments in time order.
func (t *BWTimeline) Segments() []SegmentInfo {
	out := make([]SegmentInfo, 0, t.nsegs)
	for ci := range t.chunks {
		for _, s := range t.chunks[ci].segs {
			info := SegmentInfo{Start: s.start, End: s.end, Avail: s.avail}
			for _, u := range s.uses {
				info.Uses = append(info.Uses, SegmentUse{Owner: u.owner, Rate: u.rate})
			}
			out = append(out, info)
		}
	}
	return out
}

// seek returns the position of the first segment whose end lies beyond
// y, or (len(chunks), 0) past the last segment. Segment ends increase
// strictly across the whole store (Validate enforces this exactly), so
// the two-level binary search — slab by last end, then within the slab
// — lands on the same segment a flat sort.Search would.
func (t *BWTimeline) seek(y float64) (ci, si int) {
	ci = sort.Search(len(t.chunks), func(i int) bool { return t.chunks[i].lastEnd() > y })
	if ci == len(t.chunks) {
		return ci, 0
	}
	c := &t.chunks[ci]
	si = sort.Search(len(c.segs), func(i int) bool { return c.segs[i].end > y })
	return ci, si
}

// seekEps is THE availability-cursor predicate: the first segment whose
// end lies beyond x+Eps. Formerly availAt's sort.Search closure, with
// hand-rolled linear replicas in reserve and EstimateFinish (×2); the
// cursor convention now lives here and in advanceEps only.
func (t *BWTimeline) seekEps(x float64) (ci, si int) { return t.seek(x + Eps) }

// advance moves the cursor one segment forward.
func (t *BWTimeline) advance(ci, si int) (int, int) {
	if si++; si == len(t.chunks[ci].segs) {
		return ci + 1, 0
	}
	return ci, si
}

// advanceEps advances the cursor past every segment ending at or before
// x+Eps — seekEps's predicate applied linearly from a known position,
// as the kernels' monotone cursors require (amortized O(1) per call).
// Slabs that fail the predicate wholesale (last end <= x+Eps) are
// hopped in one exact step.
func (t *BWTimeline) advanceEps(ci, si int, x float64) (int, int) {
	y := x + Eps
	for ci < len(t.chunks) {
		c := &t.chunks[ci]
		// edgelint:ignore floateq — exact replica of seekEps's
		// sort.Search(end > x+Eps) predicate; must match bit-for-bit.
		if si == 0 && !(c.lastEnd() > y) {
			ci++
			continue
		}
		// edgelint:ignore floateq — exact replica of seekEps's predicate.
		if c.segs[si].end > y {
			return ci, si
		}
		if si++; si == len(c.segs) {
			ci, si = ci+1, 0
		}
	}
	return ci, 0
}

// skipSaturated advances cur (and the cursor) through the maximal run
// of saturated coverage starting at cur, exactly as the per-segment
// loop "cur = until; advance" of the linear kernels would: each step
// requires the next segment to lead cur with no gap (start <= cur+Eps)
// and to be saturated (avail <= Eps), and moves cur to its end. Whole
// slabs are consumed in one step when their summaries prove every
// per-segment test inside would pass: fully saturated (maxAvail <= Eps,
// an exact fold), no internal gap (maxGap safely under Eps), and no
// chance of the cursor hopping two segments at once (minEndDiff safely
// over Eps) — "safely" meaning beyond the one-subtraction rounding
// slack scaled by maxAbs, so the block test can only be conservative.
func (t *BWTimeline) skipSaturated(ci, si int, cur float64) (int, int, float64) {
	ci, si = t.advanceEps(ci, si, cur)
	// The summarized differences and the kernels' cur+Eps additions
	// each round by one ulp of their operands' scale — at most
	// (maxAbs+Eps)*2^-52 combined. 4e-15 over-covers that ~10× (the
	// +Eps term keeps the floor honest when boundaries are tiny) while
	// leaving the prunes engaged at any magnitude below ~2.5e5
	// (Eps/4e-15). Beyond that the slabs are walked segment by segment
	// — still exact, merely linear.
	slack := (t.maxAbs + Eps) * 4e-15
	for ci < len(t.chunks) {
		c := &t.chunks[ci]
		// edgelint:ignore floateq — conservative block prune: the exact
		// entering-gap test plus summary thresholds; any slab that
		// fails falls through to the authoritative per-segment walk.
		if si == 0 && !(c.segs[0].start > cur+Eps) &&
			c.maxAvail <= Eps && c.maxGap < Eps-slack && c.minEndDiff > Eps+slack {
			cur = c.lastEnd()
			ci, si = t.advanceEps(ci+1, 0, cur)
			continue
		}
		s := &c.segs[si]
		// edgelint:ignore floateq — exact replicas of the linear
		// kernels' gap (start > cur+Eps) and saturation (avail > Eps)
		// stop tests.
		if s.start > cur+Eps || s.avail > Eps {
			break
		}
		cur = s.end
		ci, si = t.advanceEps(ci, si, cur)
	}
	return ci, si, cur
}

// foldMaxAbs grows the magnitude bound to cover |x|.
func (t *BWTimeline) foldMaxAbs(x float64) {
	if m := math.Abs(x); m > t.maxAbs {
		t.maxAbs = m
	}
}

// reindexChunk recomputes chunk ci's summaries from its segments.
func (t *BWTimeline) reindexChunk(ci int) {
	c := &t.chunks[ci]
	maxAvail, maxGap, minEndDiff := math.Inf(-1), math.Inf(-1), math.Inf(1)
	for i := range c.segs {
		if a := c.segs[i].avail; a > maxAvail {
			maxAvail = a
		}
		if i > 0 {
			if g := c.segs[i].start - c.segs[i-1].end; g > maxGap {
				maxGap = g
			}
			if d := c.segs[i].end - c.segs[i-1].end; d < minEndDiff {
				minEndDiff = d
			}
		}
	}
	c.maxAvail, c.maxGap, c.minEndDiff = maxAvail, maxGap, minEndDiff
}

// insertSegAt inserts s before the segment at (ci, si); (len(chunks),
// 0) appends past the last segment. The receiving slab splits in half
// when it outgrows 2*bwBlock, and the touched slabs are reindexed. It
// returns the inserted segment's (possibly relocated) position. Cost:
// O(bwBlock) segment movement plus, on the rare split, O(len(chunks))
// header movement — never the O(total segments) memmove of the flat
// store.
func (t *BWTimeline) insertSegAt(ci, si int, s seg) (int, int) {
	if ci == len(t.chunks) {
		if len(t.chunks) == 0 {
			t.chunks = append(t.chunks, bwChunk{})
		} else {
			ci = len(t.chunks) - 1
			si = len(t.chunks[ci].segs)
		}
	}
	c := &t.chunks[ci]
	c.segs = append(c.segs, seg{})
	copy(c.segs[si+1:], c.segs[si:])
	c.segs[si] = s
	t.nsegs++
	if len(c.segs) > 2*bwBlock {
		// Split in half. The right half must be a fresh slice: the
		// truncated left slab's capacity region still holds stale seg
		// structs whose use slices would otherwise be shared backings.
		half := len(c.segs) / 2
		rest := make([]seg, len(c.segs)-half, 2*bwBlock+1)
		copy(rest, c.segs[half:])
		t.chunks = append(t.chunks, bwChunk{})
		copy(t.chunks[ci+2:], t.chunks[ci+1:])
		t.chunks[ci].segs = t.chunks[ci].segs[:half]
		t.chunks[ci+1] = bwChunk{segs: rest}
		t.reindexChunk(ci)
		t.reindexChunk(ci + 1)
		if si >= half {
			return ci + 1, si - half
		}
		return ci, si
	}
	t.reindexChunk(ci)
	return ci, si
}

// split ensures a segment boundary exists at time x. Only called for x
// within or at the edge of existing segments; callers re-seek rather
// than keep an index, since a slab split relocates segments.
func (t *BWTimeline) split(x float64) {
	ci, si := t.seek(x)
	if ci == len(t.chunks) {
		return
	}
	s := &t.chunks[ci].segs[si]
	if fptime.GeqEps(s.start, x) || fptime.LeqEps(s.end, x) {
		return // boundary already (approximately) present
	}
	left := seg{start: s.start, end: x, avail: s.avail, uses: append([]use(nil), s.uses...)}
	s.start = x
	t.insertSegAt(ci, si, left)
}

// reserve books rate bandwidth for owner over [a, b], splitting
// segments and creating new segments over idle time as needed. The
// caller must have verified availability.
func (t *BWTimeline) reserve(owner Owner, a, b, rate float64) {
	if b-a <= Eps || rate <= Eps {
		return
	}
	t.foldMaxAbs(a)
	t.foldMaxAbs(b)
	t.split(a)
	t.split(b)
	// Walk from a to b covering idle gaps with fresh segments, starting
	// at the first segment still relevant past a — the same cursor the
	// linear kernel derived by advancing its split index over segments
	// ending at or before a+Eps.
	cur := a
	ci, si := t.seekEps(a)
	for fptime.LessEps(cur, b) {
		if ci < len(t.chunks) && fptime.LeqEps(t.chunks[ci].segs[si].start, cur) {
			s := &t.chunks[ci].segs[si]
			end := s.end
			if end > b {
				end = b
			}
			s.avail -= rate
			if s.avail < 0 {
				s.avail = 0
			}
			s.uses = append(s.uses, use{owner: owner, rate: rate})
			t.reindexChunk(ci)
			cur = end
			ci, si = t.advance(ci, si)
			continue
		}
		// Idle gap from cur to the next segment start (or to b).
		gapEnd := b
		if ci < len(t.chunks) && t.chunks[ci].segs[si].start < gapEnd {
			gapEnd = t.chunks[ci].segs[si].start
		}
		ns := seg{start: cur, end: gapEnd, avail: 1 - rate, uses: []use{{owner: owner, rate: rate}}}
		ci, si = t.insertSegAt(ci, si, ns)
		cur = gapEnd
		ci, si = t.advance(ci, si)
	}
}

// availAt returns the remaining bandwidth fraction at time x and the
// time at which that fraction next changes (availability horizon).
func (t *BWTimeline) availAt(x float64) (avail, until float64) {
	ci, si := t.seekEps(x)
	if ci == len(t.chunks) {
		return 1, math.Inf(1)
	}
	s := &t.chunks[ci].segs[si]
	if s.start > x+Eps {
		return 1, s.start // idle gap before the segment
	}
	return s.avail, s.end
}

// Alloc transfers volume units of data starting no earlier than es,
// using at each instant min(cap, remaining bandwidth) of the link whose
// transfer speed is speed. cap ≤ 0 means uncapped (full remaining
// bandwidth, as on the first route link). It reserves the bandwidth for
// owner and returns the chunks produced. A zero or negative volume
// yields a single empty chunk at es.
func (t *BWTimeline) Alloc(owner Owner, es, volume, speed, cap float64) []Chunk {
	if cap <= 0 || cap > 1 {
		cap = 1
	}
	if volume <= Eps {
		return []Chunk{{Start: es, End: es, Rate: 0, Volume: 0}}
	}
	var out []Chunk
	cur := math.Max(es, 0)
	remaining := volume
	for remaining > volume*1e-9+Eps/2 {
		avail, until := t.availAt(cur)
		rate := math.Min(avail, cap)
		if rate <= Eps {
			// Link saturated here; wait for the next change point,
			// hopping whole saturated slabs via the block summaries.
			// (With cap <= Eps every rate is saturated regardless of
			// availability, so there is nothing to skip to.)
			cur = until
			if cap > Eps {
				ci, si := t.seekEps(cur)
				_, _, cur = t.skipSaturated(ci, si, cur)
			}
			continue
		}
		// Time to drain the remaining volume at this rate.
		need := remaining / (rate * speed)
		end := cur + need
		if end > until {
			end = until
		}
		// edgelint:ignore floateq — exact zero-progress guard; an epsilon
		// here would abandon transfers that advance in sub-Eps steps.
		if end <= cur {
			// The residual volume's transfer time underflows the float
			// resolution at this time scale; it is negligible (≤ 1e-9
			// of the total), so stop rather than loop forever.
			break
		}
		moved := rate * speed * (end - cur)
		if moved > remaining {
			moved = remaining
		}
		t.reserve(owner, cur, end, rate)
		out = appendChunk(out, Chunk{Start: cur, End: end, Rate: rate, Volume: moved})
		remaining -= moved
		cur = end
	}
	return out
}

// appendChunk merges chunks that are contiguous with equal rate.
func appendChunk(cs []Chunk, c Chunk) []Chunk {
	if n := len(cs); n > 0 {
		last := &cs[n-1]
		if math.Abs(last.End-c.Start) <= Eps && math.Abs(last.Rate-c.Rate) <= Eps {
			last.End = c.End
			last.Volume += c.Volume
			return cs
		}
	}
	return append(cs, c)
}

// EstimateFinish computes, without mutating the timeline, when a
// transfer of volume at link speed speed starting no earlier than es
// (uncapped) would start and finish. Used as the modified-Dijkstra
// probe for BBSA routing.
//
// edgelint:noalloc
func (t *BWTimeline) EstimateFinish(es, volume, speed float64) (start, finish float64) {
	if volume <= Eps {
		return es, es
	}
	cur := math.Max(es, 0)
	remaining := volume
	start = -1
	// Monotone segment cursor: one seek seeds the walk, each iteration
	// advances in amortized O(1), and saturated stretches are hopped
	// slab-by-slab via the block summaries — the availability answers
	// are the ones availAt would give at every step.
	ci, si := t.seekEps(cur)
	for remaining > volume*1e-9+Eps/2 {
		avail, until := 1.0, math.Inf(1)
		if ci < len(t.chunks) {
			if s := &t.chunks[ci].segs[si]; s.start > cur+Eps {
				avail, until = 1, s.start // idle gap before the segment
			} else {
				avail, until = s.avail, s.end
			}
		}
		if avail <= Eps {
			cur = until
			ci, si, cur = t.skipSaturated(ci, si, cur)
			continue
		}
		if start < 0 {
			start = cur
		}
		need := remaining / (avail * speed)
		end := cur + need
		if end > until {
			end = until
		}
		// edgelint:ignore floateq — exact zero-progress guard, see Alloc.
		if end <= cur {
			// Residual transfer time underflows the float resolution;
			// the remaining volume is negligible at this time scale.
			break
		}
		remaining -= avail * speed * (end - cur)
		cur = end
		ci, si = t.advanceEps(ci, si, cur)
	}
	if start < 0 {
		start = cur
	}
	return start, cur
}

// Forward transfers the chunk sequence produced on the previous route
// link onto this link, honouring the link causality condition: chunk k
// is forwarded starting no earlier than its start on the previous link
// (plus the optional per-hop switching delay) and no earlier than the
// completion of chunk k-1's forwarding, at a bandwidth fraction of at
// most
//
//	min(rbr, prevRate · prevSpeed / speed)        (paper formula 4)
//
// so that the cumulative outflow never exceeds the cumulative inflow
// (Theorem 3). It reserves bandwidth for owner and returns the chunks
// produced on this link.
func (t *BWTimeline) Forward(owner Owner, in []Chunk, prevSpeed, speed, hopDelay float64) []Chunk {
	var out []Chunk
	cursor := 0.0
	for _, c := range in {
		if c.Volume <= Eps {
			if len(out) == 0 {
				out = append(out, Chunk{Start: c.Start + hopDelay, End: c.Start + hopDelay})
			}
			continue
		}
		es := math.Max(cursor, c.Start+hopDelay)
		cap := c.Rate * prevSpeed / speed
		cs := t.Alloc(owner, es, c.Volume, speed, cap)
		for _, oc := range cs {
			out = appendChunk(out, oc)
		}
		if n := len(out); n > 0 {
			cursor = out[n-1].End
		}
	}
	if len(out) == 0 {
		out = append(out, Chunk{})
	}
	return out
}

// Validate checks the ledger invariants: segments sorted, non-
// overlapping, with strictly increasing ends (the two-level search and
// the slab hops rely on that exactly); each segment's shares summing to
// 1-avail with avail ∈ [0, 1]; boundaries bounded by maxAbs; and every
// slab's summaries exactly equal to a fresh recomputation.
func (t *BWTimeline) Validate() error {
	i := 0
	prevEnd := math.Inf(-1)
	for ci := range t.chunks {
		for _, s := range t.chunks[ci].segs {
			if fptime.LessEps(s.end, s.start) {
				return fmt.Errorf("linksched: bw segment %d inverted [%v, %v]", i, s.start, s.end)
			}
			if fptime.LessEps(s.start, prevEnd) {
				return fmt.Errorf("linksched: bw segment %d overlaps previous", i)
			}
			// edgelint:ignore floateq — the chunked binary search and
			// the advanceEps slab hop assume exactly increasing ends.
			if s.end <= prevEnd {
				return fmt.Errorf("linksched: bw segment %d end %v not increasing past %v", i, s.end, prevEnd)
			}
			sum := 0.0
			for _, u := range s.uses {
				if u.rate <= 0 || u.rate > 1+Eps {
					return fmt.Errorf("linksched: bw segment %d has invalid share %v", i, u.rate)
				}
				sum += u.rate
			}
			if sum > 1+1e-6 {
				return fmt.Errorf("linksched: bw segment %d oversubscribed: shares sum to %v", i, sum)
			}
			if math.Abs((1-sum)-s.avail) > 1e-6 {
				return fmt.Errorf("linksched: bw segment %d avail %v inconsistent with shares %v", i, s.avail, sum)
			}
			if math.Abs(s.start) > t.maxAbs || math.Abs(s.end) > t.maxAbs {
				return fmt.Errorf("linksched: bw segment %d [%v, %v] exceeds magnitude bound %v", i, s.start, s.end, t.maxAbs)
			}
			prevEnd = s.end
			i++
		}
	}
	if i != t.nsegs {
		return fmt.Errorf("linksched: bw store counts %d segments, holds %d", t.nsegs, i)
	}
	return t.validateChunks()
}

// validateChunks checks the slab structure and recomputes every block
// summary, comparing exactly: the summaries are folds of the very
// float64 values the recomputation reads, so any difference is an
// index-maintenance bug, not rounding.
func (t *BWTimeline) validateChunks() error {
	for ci := range t.chunks {
		c := &t.chunks[ci]
		if len(c.segs) == 0 {
			return fmt.Errorf("linksched: bw chunk %d is empty", ci)
		}
		if len(c.segs) > 2*bwBlock {
			return fmt.Errorf("linksched: bw chunk %d holds %d segments (max %d)", ci, len(c.segs), 2*bwBlock)
		}
		maxAvail, maxGap, minEndDiff := math.Inf(-1), math.Inf(-1), math.Inf(1)
		for i := range c.segs {
			if a := c.segs[i].avail; a > maxAvail {
				maxAvail = a
			}
			if i > 0 {
				if g := c.segs[i].start - c.segs[i-1].end; g > maxGap {
					maxGap = g
				}
				if d := c.segs[i].end - c.segs[i-1].end; d < minEndDiff {
					minEndDiff = d
				}
			}
		}
		// edgelint:ignore floateq — exact equality by design: same
		// floats, same fold as reindexChunk.
		if c.maxAvail != maxAvail || c.maxGap != maxGap || c.minEndDiff != minEndDiff {
			return fmt.Errorf("linksched: bw chunk %d summaries (%v, %v, %v) != recomputed (%v, %v, %v)",
				ci, c.maxAvail, c.maxGap, c.minEndDiff, maxAvail, maxGap, minEndDiff)
		}
	}
	return nil
}

// Clone returns an independent deep copy of the timeline: mutations of
// either copy never affect the other. Used by forked scheduler states
// probing processor candidates in parallel.
func (t *BWTimeline) Clone() *BWTimeline {
	cp := make([]bwChunk, len(t.chunks))
	for i := range t.chunks {
		c := &t.chunks[i]
		segs := make([]seg, len(c.segs))
		for j, s := range c.segs {
			segs[j] = seg{start: s.start, end: s.end, avail: s.avail, uses: append([]use(nil), s.uses...)}
		}
		cp[i] = bwChunk{segs: segs, maxAvail: c.maxAvail, maxGap: c.maxGap, minEndDiff: c.minEndDiff}
	}
	return &BWTimeline{chunks: cp, nsegs: t.nsegs, maxAbs: t.maxAbs}
}

// BWSnapshot captures a BWTimeline for later Restore.
type BWSnapshot struct {
	chunks []bwChunk
	nsegs  int
	maxAbs float64
}

// Snapshot returns a restorable deep copy of the current state.
func (t *BWTimeline) Snapshot() BWSnapshot {
	return t.SnapshotInto(BWSnapshot{})
}

// SnapshotInto captures the current state reusing the buffers of a
// stale snapshot (one that will never be restored again), including the
// per-slab segment slices and per-segment use slices. See
// Timeline.SnapshotInto.
//
// edgelint:noalloc
func (t *BWTimeline) SnapshotInto(old BWSnapshot) BWSnapshot {
	return BWSnapshot{chunks: copyChunks(old.chunks, t.chunks), nsegs: t.nsegs, maxAbs: t.maxAbs}
}

// Restore resets the timeline to a previously captured snapshot,
// including the block summaries — no reindex needed.
//
// edgelint:noalloc
func (t *BWTimeline) Restore(s BWSnapshot) {
	t.chunks = copyChunks(t.chunks, s.chunks)
	t.nsegs = s.nsegs
	t.maxAbs = s.maxAbs
}

// copyChunks deep-copies src into dst's backing storage, reusing the
// outer slice, the per-slab segment slices, and the per-segment use
// buffers they already hold. dst and src never share those buffers
// (snapshots copy out of the timeline, the timeline copies out of
// snapshots), so the element-wise copies cannot alias.
func copyChunks(dst, src []bwChunk) []bwChunk {
	n := len(src)
	if cap(dst) < n {
		// edgelint:coldpath — one-time snapshot-buffer growth; the
		// capacity persists across transactions via the stale snapshot.
		dst = append(dst[:cap(dst)], make([]bwChunk, n-cap(dst))...)
	}
	dst = dst[:n]
	for i := range src {
		c := &src[i]
		dst[i].segs = copySegs(dst[i].segs, c.segs)
		dst[i].maxAvail, dst[i].maxGap, dst[i].minEndDiff = c.maxAvail, c.maxGap, c.minEndDiff
	}
	return dst
}

// copySegs deep-copies src into dst's backing storage, reusing the
// outer slice and the per-segment use buffers it already holds. dst and
// src never share use slices (snapshots copy out of the timeline, the
// timeline copies out of snapshots), so the element-wise copy cannot
// alias.
func copySegs(dst, src []seg) []seg {
	n := len(src)
	if cap(dst) < n {
		// edgelint:coldpath — one-time snapshot-buffer growth; the
		// capacity persists across transactions via the stale snapshot.
		dst = append(dst[:cap(dst)], make([]seg, n-cap(dst))...)
	}
	dst = dst[:n]
	for i, s := range src {
		dst[i].start, dst[i].end, dst[i].avail = s.start, s.end, s.avail
		dst[i].uses = append(dst[i].uses[:0], s.uses...)
	}
	return dst
}

// CopyFrom makes t an independent deep copy of src, reusing t's slab
// and use buffers when they have capacity (see copyChunks). The warm
// path — a pooled replica re-cloned from a same-topology state — does
// not allocate.
func (t *BWTimeline) CopyFrom(src *BWTimeline) {
	t.chunks = copyChunks(t.chunks, src.chunks)
	t.nsegs = src.nsegs
	t.maxAbs = src.maxAbs
}

// CopyBWTimelines deep-copies the bandwidth ledgers of src into dst,
// growing dst as needed and reusing the slab/segment/use buffers its
// elements already hold. A nil src yields a nil dst, preserving the
// parent's column shape exactly.
func CopyBWTimelines(dst, src []BWTimeline) []BWTimeline {
	if src == nil {
		return nil
	}
	if cap(dst) < len(src) {
		dst = make([]BWTimeline, len(src))
	}
	dst = dst[:len(src)]
	for i := range src {
		dst[i].CopyFrom(&src[i])
	}
	return dst
}

// NumSegments reports the number of segments (for tests/statistics).
func (t *BWTimeline) NumSegments() int { return t.nsegs }
