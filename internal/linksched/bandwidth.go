package linksched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fptime"
)

// Chunk is one contiguous piece of a communication transferred on a
// link at a constant fraction of the link's bandwidth. BBSA spreads an
// edge's volume over chunks with varying rates (§5).
type Chunk struct {
	Start  float64
	End    float64
	Rate   float64 // fraction of the link's bandwidth in (0, 1]
	Volume float64 // data moved: Rate * linkSpeed * (End-Start)
}

// use records one owner's bandwidth share within a segment.
type use struct {
	owner Owner
	rate  float64
}

// seg is a maximal interval of a bandwidth timeline with a constant set
// of bandwidth shares. Segments are sorted, non-overlapping; time not
// covered by any segment is fully idle.
type seg struct {
	start, end float64
	avail      float64 // remaining bandwidth fraction in [0, 1]
	uses       []use
}

// BWTimeline is the per-link bandwidth ledger used by BBSA: multiple
// communications may share a link concurrently as long as their
// bandwidth fractions sum to at most 1.
//
// The zero value is an idle timeline ready for use.
type BWTimeline struct {
	segs []seg
}

// NewBWTimeline returns an idle bandwidth timeline.
func NewBWTimeline() *BWTimeline { return &BWTimeline{} }

// SegmentInfo exposes one segment for verification and display.
type SegmentInfo struct {
	Start, End float64
	Avail      float64
	Uses       []SegmentUse
}

// SegmentUse is one owner's share within a segment.
type SegmentUse struct {
	Owner Owner
	Rate  float64
}

// Segments returns a copy of the current segments in time order.
func (t *BWTimeline) Segments() []SegmentInfo {
	out := make([]SegmentInfo, len(t.segs))
	for i, s := range t.segs {
		info := SegmentInfo{Start: s.start, End: s.end, Avail: s.avail}
		for _, u := range s.uses {
			info.Uses = append(info.Uses, SegmentUse{Owner: u.owner, Rate: u.rate})
		}
		out[i] = info
	}
	return out
}

// split ensures a segment boundary exists at time x and returns the
// index of the first segment whose end lies beyond x (after any
// insertion), so callers can keep walking without re-searching. Only
// called for x within or at the edge of existing segments.
func (t *BWTimeline) split(x float64) int {
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].end > x })
	if i == len(t.segs) {
		return i
	}
	s := &t.segs[i]
	if fptime.GeqEps(s.start, x) || fptime.LeqEps(s.end, x) {
		return i // boundary already (approximately) present
	}
	left := seg{start: s.start, end: x, avail: s.avail, uses: append([]use(nil), s.uses...)}
	s.start = x
	t.segs = append(t.segs, seg{})
	copy(t.segs[i+1:], t.segs[i:])
	t.segs[i] = left
	return i + 1 // the right half, now starting at x
}

// reserve books rate bandwidth for owner over [a, b], splitting
// segments and creating new segments over idle time as needed. The
// caller must have verified availability.
func (t *BWTimeline) reserve(owner Owner, a, b, rate float64) {
	if b-a <= Eps || rate <= Eps {
		return
	}
	ia := t.split(a)
	t.split(b) // inserts at an index >= ia, so ia stays valid
	// Walk from a to b covering idle gaps with fresh segments. The
	// walk starts where split(a) left off: segment ends never decrease,
	// so advancing linearly over the (at most one, Eps-short) segment
	// still ending at or before a+Eps reproduces the binary search the
	// scan previously redid from scratch.
	cur := a
	i := ia
	// edgelint:ignore floateq — exact replica of the former
	// sort.Search(end > a+Eps) predicate; must match it bit-for-bit.
	for i < len(t.segs) && t.segs[i].end <= a+Eps {
		i++
	}
	for fptime.LessEps(cur, b) {
		if i < len(t.segs) && fptime.LeqEps(t.segs[i].start, cur) {
			s := &t.segs[i]
			end := s.end
			if end > b {
				end = b
			}
			s.avail -= rate
			if s.avail < 0 {
				s.avail = 0
			}
			s.uses = append(s.uses, use{owner: owner, rate: rate})
			cur = end
			i++
			continue
		}
		// Idle gap from cur to the next segment start (or to b).
		gapEnd := b
		if i < len(t.segs) && t.segs[i].start < gapEnd {
			gapEnd = t.segs[i].start
		}
		ns := seg{start: cur, end: gapEnd, avail: 1 - rate, uses: []use{{owner: owner, rate: rate}}}
		t.segs = append(t.segs, seg{})
		copy(t.segs[i+1:], t.segs[i:])
		t.segs[i] = ns
		cur = gapEnd
		i++
	}
}

// availAt returns the remaining bandwidth fraction at time x and the
// time at which that fraction next changes (availability horizon).
func (t *BWTimeline) availAt(x float64) (avail, until float64) {
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].end > x+Eps })
	if i == len(t.segs) {
		return 1, math.Inf(1)
	}
	s := t.segs[i]
	if s.start > x+Eps {
		return 1, s.start // idle gap before segment i
	}
	return s.avail, s.end
}

// Alloc transfers volume units of data starting no earlier than es,
// using at each instant min(cap, remaining bandwidth) of the link whose
// transfer speed is speed. cap ≤ 0 means uncapped (full remaining
// bandwidth, as on the first route link). It reserves the bandwidth for
// owner and returns the chunks produced. A zero or negative volume
// yields a single empty chunk at es.
func (t *BWTimeline) Alloc(owner Owner, es, volume, speed, cap float64) []Chunk {
	if cap <= 0 || cap > 1 {
		cap = 1
	}
	if volume <= Eps {
		return []Chunk{{Start: es, End: es, Rate: 0, Volume: 0}}
	}
	var out []Chunk
	cur := math.Max(es, 0)
	remaining := volume
	for remaining > volume*1e-9+Eps/2 {
		avail, until := t.availAt(cur)
		rate := math.Min(avail, cap)
		if rate <= Eps {
			// Link saturated here; wait for the next change point.
			cur = until
			continue
		}
		// Time to drain the remaining volume at this rate.
		need := remaining / (rate * speed)
		end := cur + need
		if end > until {
			end = until
		}
		// edgelint:ignore floateq — exact zero-progress guard; an epsilon
		// here would abandon transfers that advance in sub-Eps steps.
		if end <= cur {
			// The residual volume's transfer time underflows the float
			// resolution at this time scale; it is negligible (≤ 1e-9
			// of the total), so stop rather than loop forever.
			break
		}
		moved := rate * speed * (end - cur)
		if moved > remaining {
			moved = remaining
		}
		t.reserve(owner, cur, end, rate)
		out = appendChunk(out, Chunk{Start: cur, End: end, Rate: rate, Volume: moved})
		remaining -= moved
		cur = end
	}
	return out
}

// appendChunk merges chunks that are contiguous with equal rate.
func appendChunk(cs []Chunk, c Chunk) []Chunk {
	if n := len(cs); n > 0 {
		last := &cs[n-1]
		if math.Abs(last.End-c.Start) <= Eps && math.Abs(last.Rate-c.Rate) <= Eps {
			last.End = c.End
			last.Volume += c.Volume
			return cs
		}
	}
	return append(cs, c)
}

// EstimateFinish computes, without mutating the timeline, when a
// transfer of volume at link speed speed starting no earlier than es
// (uncapped) would start and finish. Used as the modified-Dijkstra
// probe for BBSA routing.
func (t *BWTimeline) EstimateFinish(es, volume, speed float64) (start, finish float64) {
	if volume <= Eps {
		return es, es
	}
	cur := math.Max(es, 0)
	remaining := volume
	start = -1
	// Monotone segment cursor: cur only moves forward, and segment ends
	// never decrease, so one binary search seeds the walk and each
	// iteration advances the index in amortized O(1) instead of
	// re-searching from t=0 — the availability answers are the ones
	// availAt would give at every step.
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].end > cur+Eps })
	for remaining > volume*1e-9+Eps/2 {
		avail, until := 1.0, math.Inf(1)
		if i < len(t.segs) {
			if s := &t.segs[i]; s.start > cur+Eps {
				avail, until = 1, s.start // idle gap before segment i
			} else {
				avail, until = s.avail, s.end
			}
		}
		if avail <= Eps {
			cur = until
			// edgelint:ignore floateq — exact replica of availAt's
			// sort.Search(end > cur+Eps) predicate.
			for i < len(t.segs) && t.segs[i].end <= cur+Eps {
				i++
			}
			continue
		}
		if start < 0 {
			start = cur
		}
		need := remaining / (avail * speed)
		end := cur + need
		if end > until {
			end = until
		}
		// edgelint:ignore floateq — exact zero-progress guard, see Alloc.
		if end <= cur {
			// Residual transfer time underflows the float resolution;
			// the remaining volume is negligible at this time scale.
			break
		}
		remaining -= avail * speed * (end - cur)
		cur = end
		// edgelint:ignore floateq — exact replica of availAt's
		// sort.Search(end > cur+Eps) predicate.
		for i < len(t.segs) && t.segs[i].end <= cur+Eps {
			i++
		}
	}
	if start < 0 {
		start = cur
	}
	return start, cur
}

// Forward transfers the chunk sequence produced on the previous route
// link onto this link, honouring the link causality condition: chunk k
// is forwarded starting no earlier than its start on the previous link
// (plus the optional per-hop switching delay) and no earlier than the
// completion of chunk k-1's forwarding, at a bandwidth fraction of at
// most
//
//	min(rbr, prevRate · prevSpeed / speed)        (paper formula 4)
//
// so that the cumulative outflow never exceeds the cumulative inflow
// (Theorem 3). It reserves bandwidth for owner and returns the chunks
// produced on this link.
func (t *BWTimeline) Forward(owner Owner, in []Chunk, prevSpeed, speed, hopDelay float64) []Chunk {
	var out []Chunk
	cursor := 0.0
	for _, c := range in {
		if c.Volume <= Eps {
			if len(out) == 0 {
				out = append(out, Chunk{Start: c.Start + hopDelay, End: c.Start + hopDelay})
			}
			continue
		}
		es := math.Max(cursor, c.Start+hopDelay)
		cap := c.Rate * prevSpeed / speed
		cs := t.Alloc(owner, es, c.Volume, speed, cap)
		for _, oc := range cs {
			out = appendChunk(out, oc)
		}
		if n := len(out); n > 0 {
			cursor = out[n-1].End
		}
	}
	if len(out) == 0 {
		out = append(out, Chunk{})
	}
	return out
}

// Validate checks the timeline invariants: segments sorted and
// non-overlapping, each segment's shares summing to 1-avail with
// avail ∈ [0, 1].
func (t *BWTimeline) Validate() error {
	prevEnd := math.Inf(-1)
	for i, s := range t.segs {
		if fptime.LessEps(s.end, s.start) {
			return fmt.Errorf("linksched: bw segment %d inverted [%v, %v]", i, s.start, s.end)
		}
		if fptime.LessEps(s.start, prevEnd) {
			return fmt.Errorf("linksched: bw segment %d overlaps previous", i)
		}
		sum := 0.0
		for _, u := range s.uses {
			if u.rate <= 0 || u.rate > 1+Eps {
				return fmt.Errorf("linksched: bw segment %d has invalid share %v", i, u.rate)
			}
			sum += u.rate
		}
		if sum > 1+1e-6 {
			return fmt.Errorf("linksched: bw segment %d oversubscribed: shares sum to %v", i, sum)
		}
		if math.Abs((1-sum)-s.avail) > 1e-6 {
			return fmt.Errorf("linksched: bw segment %d avail %v inconsistent with shares %v", i, s.avail, sum)
		}
		prevEnd = s.end
	}
	return nil
}

// Clone returns an independent deep copy of the timeline: mutations of
// either copy never affect the other. Used by forked scheduler states
// probing processor candidates in parallel.
func (t *BWTimeline) Clone() *BWTimeline {
	cp := make([]seg, len(t.segs))
	for i, s := range t.segs {
		cp[i] = seg{start: s.start, end: s.end, avail: s.avail, uses: append([]use(nil), s.uses...)}
	}
	return &BWTimeline{segs: cp}
}

// BWSnapshot captures a BWTimeline for later Restore.
type BWSnapshot struct {
	segs []seg
}

// Snapshot returns a restorable deep copy of the current state.
func (t *BWTimeline) Snapshot() BWSnapshot {
	return t.SnapshotInto(BWSnapshot{})
}

// SnapshotInto captures the current state reusing the buffers of a
// stale snapshot (one that will never be restored again), including the
// per-segment use slices. See Timeline.SnapshotInto.
func (t *BWTimeline) SnapshotInto(old BWSnapshot) BWSnapshot {
	return BWSnapshot{segs: copySegs(old.segs, t.segs)}
}

// Restore resets the timeline to a previously captured snapshot.
func (t *BWTimeline) Restore(s BWSnapshot) {
	t.segs = copySegs(t.segs, s.segs)
}

// copySegs deep-copies src into dst's backing storage, reusing the
// outer slice and the per-segment use buffers it already holds. dst and
// src never share use slices (snapshots copy out of the timeline, the
// timeline copies out of snapshots), so the element-wise copy cannot
// alias.
func copySegs(dst, src []seg) []seg {
	n := len(src)
	if cap(dst) < n {
		dst = append(dst[:cap(dst)], make([]seg, n-cap(dst))...)
	}
	dst = dst[:n]
	for i, s := range src {
		dst[i].start, dst[i].end, dst[i].avail = s.start, s.end, s.avail
		dst[i].uses = append(dst[i].uses[:0], s.uses...)
	}
	return dst
}

// NumSegments reports the number of segments (for tests/statistics).
func (t *BWTimeline) NumSegments() int { return len(t.segs) }
