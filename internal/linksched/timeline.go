// Package linksched provides the per-link data structures of the edge
// scheduling model: exclusive-slot timelines (used by BA's basic
// insertion and OIHSA's optimal insertion) and fractional-bandwidth
// timelines (used by BBSA).
//
// Times are float64; a tiny epsilon absorbs rounding noise in the
// interval arithmetic.
package linksched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fptime"
)

// Eps is the tolerance used in interval comparisons. It aliases the
// shared fptime epsilon so every package compares times identically.
const Eps = fptime.Eps

// Owner identifies which communication occupies a slot: the DAG edge's
// integer ID plus the leg (index of the link within the edge's route).
type Owner struct {
	Edge int // dag.EdgeID of the communication
	Leg  int // position of this link in the edge's route
}

// Slot is an occupied time interval on an exclusive-slot timeline.
type Slot struct {
	Start float64
	End   float64
	Owner Owner
}

// Dur returns the slot length.
func (s Slot) Dur() float64 { return s.End - s.Start }

// Timeline is the occupied-slot queue of one link under exclusive
// (full-bandwidth, non-preemptive) communication: at most one edge uses
// the link at a time. Slots are kept sorted by start time and never
// overlap.
//
// The zero value is an empty timeline ready for use.
type Timeline struct {
	slots []Slot
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Len reports the number of occupied slots.
func (t *Timeline) Len() int { return len(t.slots) }

// Slots returns the occupied slots in start order. The slice is shared;
// do not modify.
// edgelint:ignore aliasret — read-only iteration accessor on the hot path
func (t *Timeline) Slots() []Slot { return t.slots }

// Request describes the placement constraints of one edge on one link,
// derived from the link causality condition of cut-through routing:
//
//   - ES is the edge's start time on the previous route link (or the
//     source task's finish time on the first link); the slot must start
//     at or after ES.
//   - PF is the edge's finish time on the previous route link (or the
//     source task's finish time on the first link); the slot must end
//     at or after PF.
//   - Dur is the transfer time on this link, c(e)/s(L).
//
// The effective lower bound for the slot start is
// max(ES, PF-Dur): starting there makes both conditions hold with a
// slot of exactly Dur length (the paper's "virtual start time", §2.2).
type Request struct {
	ES  float64
	PF  float64
	Dur float64
}

// lowerBound returns the earliest admissible slot start.
func (r Request) lowerBound() float64 {
	lb := r.ES
	if v := r.PF - r.Dur; v > lb {
		lb = v
	}
	if lb < 0 {
		lb = 0
	}
	return lb
}

// ProbeBasic computes, without mutating the timeline, the slot the
// basic insertion policy (Sinnen's BA, §3) would allocate: the earliest
// idle interval at or after the request's lower bound that fits Dur.
// It returns the slot's start and end times.
func (t *Timeline) ProbeBasic(req Request) (start, finish float64) {
	lb := req.lowerBound()
	if req.Dur <= 0 {
		return lb, lb
	}
	prevEnd := 0.0
	for _, s := range t.slots {
		gapStart := prevEnd
		if gapStart < lb {
			gapStart = lb
		}
		if fptime.LeqEps(gapStart+req.Dur, s.Start) {
			return gapStart, gapStart + req.Dur
		}
		if s.End > prevEnd {
			prevEnd = s.End
		}
	}
	start = prevEnd
	if start < lb {
		start = lb
	}
	return start, start + req.Dur
}

// InsertBasic allocates a slot by the basic insertion policy and
// records it. It returns the slot's start and end times.
func (t *Timeline) InsertBasic(owner Owner, req Request) (start, finish float64) {
	start, finish = t.ProbeBasic(req)
	if req.Dur <= 0 {
		return start, finish
	}
	t.insertSorted(Slot{Start: start, End: finish, Owner: owner})
	return start, finish
}

func (t *Timeline) insertSorted(s Slot) {
	// edgelint:ignore floateq — exact ordering comparison for sorted insert.
	i := sort.Search(len(t.slots), func(i int) bool { return t.slots[i].Start >= s.Start })
	t.slots = append(t.slots, Slot{})
	copy(t.slots[i+1:], t.slots[i:])
	t.slots[i] = s
}

// SlackFunc reports the longest deferrable time (Lemma 2) of the slot
// owned by the given owner on this link: how far its start may be
// postponed without violating the link causality condition with the
// owner's next route link. It must return 0 for the last link of the
// owner's route.
type SlackFunc func(o Owner) float64

// Shifted records a slot moved by optimal insertion so the caller can
// update the owning edge's bookkeeping.
type Shifted struct {
	Owner Owner
	Start float64
	End   float64
}

// ProbeOptimal computes, without mutating the timeline, the slot the
// optimal insertion policy (OIHSA §4.4) would allocate. Existing slots
// may be deferred within their accumulated slack (formula 2), so the
// returned start can be earlier than ProbeBasic's. It returns the
// insertion position as well (index among current slots; len(slots)
// means append).
func (t *Timeline) ProbeOptimal(req Request, slack SlackFunc) (start, finish float64, pos int) {
	lb := req.lowerBound()
	if req.Dur <= 0 {
		return lb, lb, len(t.slots)
	}
	n := len(t.slots)
	// Candidate: append after the last slot (always feasible).
	bestStart := lb
	if n > 0 && t.slots[n-1].End > bestStart {
		bestStart = t.slots[n-1].End
	}
	bestPos := n
	// Scan tail to head computing the accumulated deferrable time
	// accum_i = min(dt_i, accum_{i+1} + gap(i, i+1)) — formula (2) —
	// and test insertion before slot i with formula (3).
	accum := math.Inf(1)
	for i := n - 1; i >= 0; i-- {
		dt := slack(t.slots[i].Owner)
		if dt < 0 {
			dt = 0
		}
		gap := math.Inf(1)
		if i+1 < n {
			gap = t.slots[i+1].Start - t.slots[i].End
			if gap < 0 {
				gap = 0
			}
		}
		a := dt
		if accum+gap < a { // accum_{i+1} + gap may be +inf
			a = accum + gap
		}
		accum = a
		// Insertion before slot i: start at max(lb, end of slot i-1).
		sigma := lb
		if i > 0 && t.slots[i-1].End > sigma {
			sigma = t.slots[i-1].End
		}
		if fptime.LeqEps(sigma+req.Dur, t.slots[i].Start+accum) {
			// Feasible. Scanning towards the head, later discoveries
			// are earlier positions, so <= keeps the earliest start.
			if fptime.LeqEps(sigma, bestStart) {
				bestStart = sigma
				bestPos = i
			}
		}
	}
	return bestStart, bestStart + req.Dur, bestPos
}

// InsertOptimal allocates a slot by the optimal insertion policy,
// deferring the affected slots as needed, and records it. It returns
// the new slot's interval and the list of slots that were shifted
// (with their new intervals) so the caller can update the owning
// edges' placements.
func (t *Timeline) InsertOptimal(owner Owner, req Request, slack SlackFunc) (start, finish float64, moved []Shifted) {
	start, finish, pos := t.ProbeOptimal(req, slack)
	if req.Dur <= 0 {
		return start, finish, nil
	}
	// Defer the affected slots: every slot from pos onward whose start
	// precedes the space the new slot needs is pushed right just far
	// enough; the feasibility test guarantees each shift is within the
	// slot's slack.
	need := finish
	for i := pos; i < len(t.slots); i++ {
		if fptime.GeqEps(t.slots[i].Start, need) {
			break
		}
		delta := need - t.slots[i].Start
		t.slots[i].Start += delta
		t.slots[i].End += delta
		moved = append(moved, Shifted{Owner: t.slots[i].Owner, Start: t.slots[i].Start, End: t.slots[i].End})
		need = t.slots[i].End
	}
	t.insertSorted(Slot{Start: start, End: finish, Owner: owner})
	return start, finish, moved
}

// Validate checks the timeline's invariants: slots sorted, strictly
// non-overlapping (up to Eps), with non-negative times.
func (t *Timeline) Validate() error {
	prevEnd := 0.0
	for i, s := range t.slots {
		if fptime.LessEps(s.Start, 0) || fptime.LessEps(s.End, s.Start) {
			return fmt.Errorf("linksched: slot %d has invalid interval [%v, %v]", i, s.Start, s.End)
		}
		if fptime.LessEps(s.Start, prevEnd) {
			return fmt.Errorf("linksched: slot %d [%v, %v] overlaps previous end %v", i, s.Start, s.End, prevEnd)
		}
		if s.End > prevEnd {
			prevEnd = s.End
		}
	}
	return nil
}

// Snapshot captures the timeline state for later Restore. The snapshot
// is a value copy; subsequent timeline mutations do not affect it.
type Snapshot struct {
	slots []Slot
}

// Snapshot returns a restorable copy of the current state.
func (t *Timeline) Snapshot() Snapshot {
	return Snapshot{slots: append([]Slot(nil), t.slots...)}
}

// Restore resets the timeline to a previously captured snapshot.
func (t *Timeline) Restore(s Snapshot) {
	t.slots = append(t.slots[:0], s.slots...)
}

// Clone returns an independent deep copy of the timeline: mutations of
// either copy never affect the other. Used by forked scheduler states
// probing processor candidates in parallel.
func (t *Timeline) Clone() *Timeline {
	return &Timeline{slots: append([]Slot(nil), t.slots...)}
}

// LastEnd returns the end of the last occupied slot, or 0 for an empty
// timeline — the earliest time at which the link is free forever.
func (t *Timeline) LastEnd() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return t.slots[len(t.slots)-1].End
}

// Utilization returns the fraction of [0, horizon] occupied by slots.
func (t *Timeline) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	busy := 0.0
	for _, s := range t.slots {
		a, b := s.Start, s.End
		if b > horizon {
			b = horizon
		}
		if b > a {
			busy += b - a
		}
	}
	return busy / horizon
}
