// Package linksched provides the per-link data structures of the edge
// scheduling model: exclusive-slot timelines (used by BA's basic
// insertion and OIHSA's optimal insertion) and fractional-bandwidth
// timelines (used by BBSA).
//
// Times are float64; a tiny epsilon absorbs rounding noise in the
// interval arithmetic.
package linksched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fptime"
)

// Eps is the tolerance used in interval comparisons. It aliases the
// shared fptime epsilon so every package compares times identically.
const Eps = fptime.Eps

// Owner identifies which communication occupies a slot: the DAG edge's
// integer ID plus the leg (index of the link within the edge's route).
type Owner struct {
	Edge int // dag.EdgeID of the communication
	Leg  int // position of this link in the edge's route
}

// Slot is an occupied time interval on an exclusive-slot timeline.
type Slot struct {
	Start float64
	End   float64
	Owner Owner
}

// Dur returns the slot length.
func (s Slot) Dur() float64 { return s.End - s.Start }

// gapBlock is the number of slots summarized by one entry of the
// timeline's block index. Probes touch O(n/gapBlock) summaries plus
// O(gapBlock) slots in the few blocks that survive pruning, so the
// sweet spot sits near sqrt(n) for the timeline sizes the scheduler
// produces; a fixed power of two keeps the index maintenance branch-
// free and the summaries cache-resident.
const gapBlock = 32

// Timeline is the occupied-slot queue of one link under exclusive
// (full-bandwidth, non-preemptive) communication: at most one edge uses
// the link at a time. Slots are kept sorted by start time and never
// overlap.
//
// Alongside the sorted slots the timeline maintains a block-summary
// gap index: for each run of gapBlock consecutive slots, the maximum
// slot end within the block (blkEnd) and the maximum leading idle gap
// before any slot of the block (blkGap, measuring Start_i - End_{i-1}
// with End_{-1} = 0). ProbeBasic uses the summaries to skip whole
// blocks that provably contain no admissible idle interval, which
// makes the earliest-gap search sublinear while returning bit-
// identical results to the plain scan (kept as a reference oracle in
// reference.go and cross-checked by differential tests and fuzzing).
//
// The index is maintained incrementally on every mutation — never
// rebuilt lazily inside a probe — so probes stay strictly read-only:
// the txn journal, the rollback oracle and the parallel probe forks
// all rely on Probe* not writing through the receiver.
//
// The zero value is an empty timeline ready for use.
type Timeline struct {
	slots []Slot

	// Block summaries, len == ceil(len(slots)/gapBlock), or empty while
	// the timeline fits in a single block (probes take the linear path
	// there, see reindexFrom). Journaled and cloned together with the
	// slots (Snapshot/Restore/Clone) so a rollback or fork never leaves
	// a stale index behind.
	blkEnd []float64 // max End over the block's slots
	blkGap []float64 // max leading gap Start_i - End_{i-1} over the block

	// maxAbs is an upper bound on the magnitude of every time that ever
	// entered this timeline. It scales the conservative slack used when
	// pruning blocks, keeping the pruned search exactly equivalent to
	// the reference scan under floating-point rounding. Monotone within
	// a timeline's lifetime; Restore rewinds it together with the slots.
	maxAbs float64
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Len reports the number of occupied slots.
func (t *Timeline) Len() int { return len(t.slots) }

// Reset empties the timeline in place, retaining the slot and index
// backing arrays so a pooled scheduler state reuses them on its next
// request. The result is indistinguishable from a fresh zero-value
// timeline — maxAbs rewinds too, so the float-safe pruning slack of a
// reused timeline matches a cold run bit-for-bit.
func (t *Timeline) Reset() {
	t.slots = t.slots[:0]
	t.blkEnd = t.blkEnd[:0]
	t.blkGap = t.blkGap[:0]
	t.maxAbs = 0
}

// ResetTimelines empties every timeline of the column in place,
// retaining all backing capacity (see Reset).
func ResetTimelines(ts []Timeline) {
	for i := range ts {
		ts[i].Reset()
	}
}

// Slots returns the occupied slots in start order. The slice is shared;
// do not modify.
// edgelint:ignore aliasret — read-only iteration accessor on the hot path
func (t *Timeline) Slots() []Slot { return t.slots }

// Request describes the placement constraints of one edge on one link,
// derived from the link causality condition of cut-through routing:
//
//   - ES is the edge's start time on the previous route link (or the
//     source task's finish time on the first link); the slot must start
//     at or after ES.
//   - PF is the edge's finish time on the previous route link (or the
//     source task's finish time on the first link); the slot must end
//     at or after PF.
//   - Dur is the transfer time on this link, c(e)/s(L).
//
// The effective lower bound for the slot start is
// max(ES, PF-Dur): starting there makes both conditions hold with a
// slot of exactly Dur length (the paper's "virtual start time", §2.2).
type Request struct {
	ES  float64
	PF  float64
	Dur float64
}

// lowerBound returns the earliest admissible slot start.
func (r Request) lowerBound() float64 {
	lb := r.ES
	if v := r.PF - r.Dur; v > lb {
		lb = v
	}
	if lb < 0 {
		lb = 0
	}
	return lb
}

// ProbeBasic computes, without mutating the timeline, the slot the
// basic insertion policy (Sinnen's BA, §3) would allocate: the earliest
// idle interval at or after the request's lower bound that fits Dur.
// It returns the slot's start and end times.
//
// edgelint:noalloc
func (t *Timeline) ProbeBasic(req Request) (start, finish float64) {
	lb := req.lowerBound()
	if req.Dur <= 0 {
		return lb, lb
	}
	start = t.earliestGap(lb, req.Dur)
	return start, start + req.Dur
}

// earliestGap finds the start of the earliest idle interval of length
// dur beginning at or after lb, using the block index to skip runs of
// slots that cannot contain an admissible gap. Skipping is decided by
// two sufficient conditions, each provably implied by the reference
// test fptime.LeqEps(gapStart+dur, Start_i):
//
//  1. The block's largest Start (its last slot, since slots are
//     sorted) satisfies Start+Eps < lb+dur. Any admissible gap start
//     is >= lb and float addition is monotone, so no slot of the
//     block can pass the reference test.
//  2. The block's largest leading gap is below dur minus a
//     conservative slack covering Eps plus the worst-case rounding of
//     the handful of additions involved (bounded by the magnitude of
//     the times, tracked in maxAbs). A pass at slot i requires the
//     exact gap Start_i - End_{i-1} to reach at least that much, so
//     none can pass.
//
// Blocks that survive pruning run the reference loop verbatim, with
// prevEnd carried over from skipped blocks via their blkEnd summary —
// a fold of float64 max, which is order-insensitive, so the running
// value equals the sequential scan's exactly and the returned start is
// bit-identical to earliestGapLinear.
func (t *Timeline) earliestGap(lb, dur float64) float64 {
	n := len(t.slots)
	if n <= gapBlock {
		return earliestGapLinear(t.slots, lb, dur)
	}
	lbDur := lb + dur
	mag := t.maxAbs
	if m := math.Abs(lbDur); m > mag {
		mag = m
	}
	// Threshold for prune (2): gaps below dur-slack can never pass the
	// Eps-tolerant fit test. The 1e-13 magnitude factor overshoots the
	// true rounding bound (~1e-15 per addition) by two orders, erring
	// toward scanning a block rather than ever skipping a feasible one.
	thr := dur - (Eps + mag*1e-13)
	prevEnd := 0.0
	for b := range t.blkEnd {
		hi := (b + 1) * gapBlock
		if hi > n {
			hi = n
		}
		// edgelint:ignore floateq — conservative prune; exact fit test
		// below is authoritative.
		if t.slots[hi-1].Start+Eps < lbDur || t.blkGap[b] < thr {
			if e := t.blkEnd[b]; e > prevEnd {
				prevEnd = e
			}
			continue
		}
		for i := b * gapBlock; i < hi; i++ {
			s := t.slots[i]
			gapStart := prevEnd
			if gapStart < lb {
				gapStart = lb
			}
			if fptime.LeqEps(gapStart+dur, s.Start) {
				return gapStart
			}
			if s.End > prevEnd {
				prevEnd = s.End
			}
		}
	}
	if prevEnd < lb {
		return lb
	}
	return prevEnd
}

// InsertBasic allocates a slot by the basic insertion policy and
// records it. It returns the slot's start and end times.
//
// edgelint:noalloc
func (t *Timeline) InsertBasic(owner Owner, req Request) (start, finish float64) {
	start, finish = t.ProbeBasic(req)
	if req.Dur <= 0 {
		return start, finish
	}
	t.insertSorted(Slot{Start: start, End: finish, Owner: owner})
	return start, finish
}

func (t *Timeline) insertSorted(s Slot) {
	// edgelint:ignore floateq — exact ordering comparison for sorted insert.
	i := sort.Search(len(t.slots), func(i int) bool { return t.slots[i].Start >= s.Start })
	// edgelint:coldpath — amortized slot-array growth; capacity
	// persists across snapshots and transactions.
	t.slots = append(t.slots, Slot{})
	copy(t.slots[i+1:], t.slots[i:])
	t.slots[i] = s
	t.reindexFrom(i)
}

// reindexFrom recomputes the block summaries for every block holding a
// slot at position pos or later — the suffix a sorted insert or an
// optimal-insertion shift can have touched — and folds the affected
// times into maxAbs. O(len(slots) - pos + gapBlock).
//
// Timelines of at most one block keep no summaries at all: earliestGap
// takes the linear path below gapBlock slots anyway, so maintaining an
// index there is pure insert overhead (BA-style insert-heavy runs with
// short per-link queues pay it without ever probing through it). Only
// maxAbs is folded — ProbeOptimal scales its early-exit margin by it
// at every size. The index is built in full the first time a timeline
// outgrows one block.
func (t *Timeline) reindexFrom(pos int) {
	n := len(t.slots)
	if n <= gapBlock {
		t.blkEnd = t.blkEnd[:0]
		t.blkGap = t.blkGap[:0]
		mab := t.maxAbs
		for i := pos; i < n; i++ {
			if m := math.Abs(t.slots[i].End); m > mab {
				mab = m
			}
			if m := math.Abs(t.slots[i].Start); m > mab {
				mab = m
			}
		}
		t.maxAbs = mab
		return
	}
	nb := (n + gapBlock - 1) / gapBlock
	if len(t.blkEnd) == 0 {
		pos = 0 // first time past one block: build the index in full
	}
	for len(t.blkEnd) < nb {
		// edgelint:coldpath — amortized index growth (one float per
		// gapBlock slots).
		t.blkEnd = append(t.blkEnd, 0)
		// edgelint:coldpath — amortized index growth, as above.
		t.blkGap = append(t.blkGap, 0)
	}
	t.blkEnd = t.blkEnd[:nb]
	t.blkGap = t.blkGap[:nb]
	mab := t.maxAbs
	for b := pos / gapBlock; b < nb; b++ {
		lo := b * gapBlock
		hi := lo + gapBlock
		if hi > n {
			hi = n
		}
		prev := 0.0
		if lo > 0 {
			prev = t.slots[lo-1].End
		}
		maxEnd := math.Inf(-1)
		maxGap := math.Inf(-1)
		for i := lo; i < hi; i++ {
			s := t.slots[i]
			if g := s.Start - prev; g > maxGap {
				maxGap = g
			}
			if s.End > maxEnd {
				maxEnd = s.End
			}
			prev = s.End
			if m := math.Abs(s.End); m > mab {
				mab = m
			}
			if m := math.Abs(s.Start); m > mab {
				mab = m
			}
		}
		t.blkEnd[b] = maxEnd
		t.blkGap[b] = maxGap
	}
	t.maxAbs = mab
}

// SlackFunc reports the longest deferrable time (Lemma 2) of the slot
// owned by the given owner on this link: how far its start may be
// postponed without violating the link causality condition with the
// owner's next route link. It must return 0 for the last link of the
// owner's route.
type SlackFunc func(o Owner) float64

// Shifted records a slot moved by optimal insertion so the caller can
// update the owning edge's bookkeeping.
type Shifted struct {
	Owner Owner
	Start float64
	End   float64
}

// ProbeOptimal computes, without mutating the timeline, the slot the
// optimal insertion policy (OIHSA §4.4) would allocate. Existing slots
// may be deferred within their accumulated slack (formula 2), so the
// returned start can be earlier than ProbeBasic's. It returns the
// insertion position as well (index among current slots; len(slots)
// means append).
//
// edgelint:noalloc
func (t *Timeline) ProbeOptimal(req Request, slack SlackFunc) (start, finish float64, pos int) {
	lb := req.lowerBound()
	if req.Dur <= 0 {
		return lb, lb, len(t.slots)
	}
	n := len(t.slots)
	// Candidate: append after the last slot (always feasible).
	bestStart := lb
	if n > 0 && t.slots[n-1].End > bestStart {
		bestStart = t.slots[n-1].End
	}
	bestPos := n
	// Early-exit bound for the tail-to-head scan. The deferred
	// capacity phi_i = Start_i + accum_i is non-increasing toward the
	// head: accum_{i-1} <= accum_i + gap(i-1, i) and the gap telescopes
	// against the sorted starts. Feasibility before slot i requires
	// sigma + Dur <= phi_i + Eps with sigma >= lb, so once phi drops
	// below lb+Dur by more than a margin covering Eps plus the rounding
	// accumulated over the walked steps, no earlier position can be
	// feasible and the scan stops. The margin only delays the break —
	// extra iterations run the unchanged feasibility test — so results
	// stay bit-identical to the full reference scan (reference.go).
	lbDur := lb + req.Dur
	mag := t.maxAbs
	if m := math.Abs(lbDur); m > mag {
		mag = m
	}
	// Scan tail to head computing the accumulated deferrable time
	// accum_i = min(dt_i, accum_{i+1} + gap(i, i+1)) — formula (2) —
	// and test insertion before slot i with formula (3).
	accum := math.Inf(1)
	for i := n - 1; i >= 0; i-- {
		dt := slack(t.slots[i].Owner)
		if dt < 0 {
			dt = 0
		}
		gap := math.Inf(1)
		if i+1 < n {
			gap = t.slots[i+1].Start - t.slots[i].End
			if gap < 0 {
				gap = 0
			}
		}
		a := dt
		if accum+gap < a { // accum_{i+1} + gap may be +inf
			a = accum + gap
		}
		accum = a
		// Insertion before slot i: start at max(lb, end of slot i-1).
		sigma := lb
		if i > 0 && t.slots[i-1].End > sigma {
			sigma = t.slots[i-1].End
		}
		if fptime.LeqEps(sigma+req.Dur, t.slots[i].Start+accum) {
			// Feasible. Scanning towards the head, later discoveries
			// are earlier positions, so <= keeps the earliest start.
			if fptime.LeqEps(sigma, bestStart) {
				bestStart = sigma
				bestPos = i
			}
		}
		// edgelint:ignore floateq — conservative break per the phi
		// monotonicity argument above; never changes the result.
		if t.slots[i].Start+accum < lbDur-(Eps+mag*1e-13*float64(n-i)) {
			break
		}
	}
	return bestStart, bestStart + req.Dur, bestPos
}

// InsertOptimal allocates a slot by the optimal insertion policy,
// deferring the affected slots as needed, and records it. It returns
// the new slot's interval and the list of slots that were shifted
// (with their new intervals) so the caller can update the owning
// edges' placements.
func (t *Timeline) InsertOptimal(owner Owner, req Request, slack SlackFunc) (start, finish float64, moved []Shifted) {
	start, finish, pos := t.ProbeOptimal(req, slack)
	if req.Dur <= 0 {
		return start, finish, nil
	}
	// Defer the affected slots: every slot from pos onward whose start
	// precedes the space the new slot needs is pushed right just far
	// enough; the feasibility test guarantees each shift is within the
	// slot's slack.
	need := finish
	for i := pos; i < len(t.slots); i++ {
		if fptime.GeqEps(t.slots[i].Start, need) {
			break
		}
		delta := need - t.slots[i].Start
		t.slots[i].Start += delta
		t.slots[i].End += delta
		moved = append(moved, Shifted{Owner: t.slots[i].Owner, Start: t.slots[i].Start, End: t.slots[i].End})
		need = t.slots[i].End
	}
	t.insertSorted(Slot{Start: start, End: finish, Owner: owner})
	return start, finish, moved
}

// Validate checks the timeline's invariants: slots sorted, strictly
// non-overlapping (up to Eps), with non-negative times, and the block
// index consistent with the slots it summarizes.
func (t *Timeline) Validate() error {
	prevEnd := 0.0
	for i, s := range t.slots {
		if fptime.LessEps(s.Start, 0) || fptime.LessEps(s.End, s.Start) {
			return fmt.Errorf("linksched: slot %d has invalid interval [%v, %v]", i, s.Start, s.End)
		}
		if fptime.LessEps(s.Start, prevEnd) {
			return fmt.Errorf("linksched: slot %d [%v, %v] overlaps previous end %v", i, s.Start, s.End, prevEnd)
		}
		if s.End > prevEnd {
			prevEnd = s.End
		}
	}
	return t.validateIndex()
}

// validateIndex recomputes the block summaries and compares them with
// the maintained ones. Comparisons are exact: the summaries are folds
// of the same float64 values the recomputation reads, so any mismatch
// is a maintenance bug, not rounding.
func (t *Timeline) validateIndex() error {
	n := len(t.slots)
	nb := 0
	if n > gapBlock {
		nb = (n + gapBlock - 1) / gapBlock
	}
	if len(t.blkEnd) != nb || len(t.blkGap) != nb {
		return fmt.Errorf("linksched: index has %d/%d blocks, want %d", len(t.blkEnd), len(t.blkGap), nb)
	}
	if nb == 0 {
		for i, s := range t.slots {
			if math.Abs(s.Start) > t.maxAbs || math.Abs(s.End) > t.maxAbs {
				return fmt.Errorf("linksched: slot %d [%v, %v] exceeds maxAbs %v", i, s.Start, s.End, t.maxAbs)
			}
		}
		return nil
	}
	for b := 0; b < nb; b++ {
		lo := b * gapBlock
		hi := lo + gapBlock
		if hi > n {
			hi = n
		}
		prev := 0.0
		if lo > 0 {
			prev = t.slots[lo-1].End
		}
		maxEnd := math.Inf(-1)
		maxGap := math.Inf(-1)
		for i := lo; i < hi; i++ {
			s := t.slots[i]
			if g := s.Start - prev; g > maxGap {
				maxGap = g
			}
			if s.End > maxEnd {
				maxEnd = s.End
			}
			prev = s.End
			if m := math.Abs(s.Start); m > t.maxAbs {
				return fmt.Errorf("linksched: slot %d start %v exceeds maxAbs %v", i, s.Start, t.maxAbs)
			}
			if m := math.Abs(s.End); m > t.maxAbs {
				return fmt.Errorf("linksched: slot %d end %v exceeds maxAbs %v", i, s.End, t.maxAbs)
			}
		}
		// edgelint:ignore floateq — exact equality: same floats, same fold.
		if t.blkEnd[b] != maxEnd || t.blkGap[b] != maxGap {
			return fmt.Errorf("linksched: block %d summary (end %v, gap %v) != recomputed (%v, %v)",
				b, t.blkEnd[b], t.blkGap[b], maxEnd, maxGap)
		}
	}
	return nil
}

// Snapshot captures the timeline state for later Restore. The snapshot
// is a value copy; subsequent timeline mutations do not affect it. The
// block index travels with the slots so a Restore rewinds both in one
// copy instead of an O(n) rebuild.
type Snapshot struct {
	slots  []Slot
	blkEnd []float64
	blkGap []float64
	maxAbs float64
}

// Snapshot returns a restorable copy of the current state.
func (t *Timeline) Snapshot() Snapshot {
	return t.SnapshotInto(Snapshot{})
}

// SnapshotInto captures the current state reusing the buffers of a
// stale snapshot (one that will never be restored again). The probe
// transaction journal calls it with the snapshot left over from the
// previous transaction, making steady-state journaling allocation-free.
//
// edgelint:noalloc
func (t *Timeline) SnapshotInto(old Snapshot) Snapshot {
	return Snapshot{
		slots:  append(old.slots[:0], t.slots...),
		blkEnd: append(old.blkEnd[:0], t.blkEnd...),
		blkGap: append(old.blkGap[:0], t.blkGap...),
		maxAbs: t.maxAbs,
	}
}

// Restore resets the timeline to a previously captured snapshot.
//
// edgelint:noalloc
func (t *Timeline) Restore(s Snapshot) {
	t.slots = append(t.slots[:0], s.slots...)
	t.blkEnd = append(t.blkEnd[:0], s.blkEnd...)
	t.blkGap = append(t.blkGap[:0], s.blkGap...)
	t.maxAbs = s.maxAbs
}

// Clone returns an independent deep copy of the timeline: mutations of
// either copy never affect the other. Used by forked scheduler states
// probing processor candidates in parallel.
func (t *Timeline) Clone() *Timeline {
	return &Timeline{
		slots:  append([]Slot(nil), t.slots...),
		blkEnd: append([]float64(nil), t.blkEnd...),
		blkGap: append([]float64(nil), t.blkGap...),
		maxAbs: t.maxAbs,
	}
}

// CopyFrom makes t an independent deep copy of src, reusing t's
// backing buffers when they have capacity. The warm path — a pooled
// replica re-cloned from a same-topology state — is three copy calls
// and no allocation.
func (t *Timeline) CopyFrom(src *Timeline) {
	t.slots = append(t.slots[:0], src.slots...)
	t.blkEnd = append(t.blkEnd[:0], src.blkEnd...)
	t.blkGap = append(t.blkGap[:0], src.blkGap...)
	t.maxAbs = src.maxAbs
}

// carve copies src into dst if dst has the capacity, otherwise into a
// window carved off the front of arena. It returns the filled slice
// and the remaining arena. Carved windows are full-capacity subslices,
// so a later append on one timeline reallocates privately instead of
// growing into its arena neighbor.
func carve[T any](dst, src, arena []T) (out, rest []T) {
	n := len(src)
	if cap(dst) >= n {
		out, rest = dst[:n], arena
	} else {
		out, rest = arena[:n:n], arena[n:]
	}
	copy(out, src)
	return out, rest
}

// CopyTimelines deep-copies the timelines of src into dst, growing dst
// as needed and reusing every element buffer that already has
// capacity. Element buffers that must grow are carved out of one
// shared arena allocation per column rather than allocated one
// timeline at a time, so the cold path of a scheduler-state fork costs
// O(columns) allocations instead of O(links). A nil src yields a nil
// dst, preserving the parent's column shape exactly.
func CopyTimelines(dst, src []Timeline) []Timeline {
	if src == nil {
		return nil
	}
	if cap(dst) < len(src) {
		dst = make([]Timeline, len(src))
	}
	dst = dst[:len(src)]
	needSlots, needIdx := 0, 0
	for i := range src {
		if cap(dst[i].slots) < len(src[i].slots) {
			needSlots += len(src[i].slots)
		}
		if cap(dst[i].blkEnd) < len(src[i].blkEnd) {
			needIdx += len(src[i].blkEnd)
		}
		if cap(dst[i].blkGap) < len(src[i].blkGap) {
			needIdx += len(src[i].blkGap)
		}
	}
	var slotArena []Slot
	var idxArena []float64
	if needSlots > 0 {
		slotArena = make([]Slot, needSlots)
	}
	if needIdx > 0 {
		idxArena = make([]float64, needIdx)
	}
	for i := range src {
		s, d := &src[i], &dst[i]
		d.slots, slotArena = carve(d.slots, s.slots, slotArena)
		d.blkEnd, idxArena = carve(d.blkEnd, s.blkEnd, idxArena)
		d.blkGap, idxArena = carve(d.blkGap, s.blkGap, idxArena)
		d.maxAbs = s.maxAbs
	}
	return dst
}

// LastEnd returns the end of the last occupied slot, or 0 for an empty
// timeline — the earliest time at which the link is free forever.
func (t *Timeline) LastEnd() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return t.slots[len(t.slots)-1].End
}

// Utilization returns the fraction of [0, horizon] occupied by slots.
func (t *Timeline) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	busy := 0.0
	for _, s := range t.slots {
		a, b := s.Start, s.End
		if b > horizon {
			b = horizon
		}
		if b > a {
			busy += b - a
		}
	}
	return busy / horizon
}
