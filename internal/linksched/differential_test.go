package linksched

import (
	"math"
	"math/rand"
	"testing"
)

// This file cross-checks the indexed probe kernels (timeline.go)
// against the retained linear reference kernels (reference.go). The
// contract is bit-identity, not closeness: every comparison below is
// exact float equality, because the scheduler's determinism guarantees
// (Workers-1-vs-8, rollback oracle) assume probes are pure functions of
// the slot array regardless of how the search is organized.

// buildTimeline grows a timeline to n slots with the given source of
// randomness, mixing basic and optimal insertions (optimal with a
// deterministic pseudo-slack so shifts occur).
func buildRandomTimeline(r *rand.Rand, n int) *Timeline {
	tl := NewTimeline()
	for i := 0; i < n; i++ {
		req := Request{
			ES:  r.Float64() * 1000,
			PF:  r.Float64() * 1000,
			Dur: r.Float64()*10 + 0.01,
		}
		owner := Owner{Edge: i, Leg: 0}
		if i%7 == 3 {
			tl.InsertOptimal(owner, req, func(o Owner) float64 {
				return float64(o.Edge%5) * 0.5
			})
		} else {
			tl.InsertBasic(owner, req)
		}
	}
	return tl
}

func checkProbesAgree(t *testing.T, tl *Timeline, req Request, slack SlackFunc) {
	t.Helper()
	gs, gf := tl.ProbeBasic(req)
	ws, wf := probeBasicLinear(tl.slots, req)
	// edgelint:ignore floateq — bit-identity contract, exact by design.
	if gs != ws || gf != wf {
		t.Fatalf("ProbeBasic(%+v) = (%v, %v), reference = (%v, %v) at %d slots",
			req, gs, gf, ws, wf, tl.Len())
	}
	os, of, op := tl.ProbeOptimal(req, slack)
	rs, rf, rp := probeOptimalLinear(tl.slots, req, slack)
	// edgelint:ignore floateq — bit-identity contract, exact by design.
	if os != rs || of != rf || op != rp {
		t.Fatalf("ProbeOptimal(%+v) = (%v, %v, %d), reference = (%v, %v, %d) at %d slots",
			req, os, of, op, rs, rf, rp, tl.Len())
	}
}

// TestProbeDifferential drives the indexed and reference kernels over
// randomized timelines across the scaling range — well below one index
// block up to hundreds of blocks — and demands exactly equal answers.
func TestProbeDifferential(t *testing.T) {
	slack := func(o Owner) float64 { return float64(o.Edge%4) * 1.5 }
	for _, n := range []int{0, 1, 7, gapBlock - 1, gapBlock, gapBlock + 1, 100, 333, 1000, 4000} {
		r := rand.New(rand.NewSource(int64(n) + 1))
		tl := buildRandomTimeline(r, n)
		if err := tl.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for trial := 0; trial < 200; trial++ {
			req := Request{
				ES:  r.Float64() * 1200,
				PF:  r.Float64() * 1200,
				Dur: r.Float64()*20 + 0.001,
			}
			switch trial % 10 {
			case 7:
				req.Dur = r.Float64() * 1e-6 // sub-Eps durations
			case 8:
				req.ES, req.PF = 0, 0 // probe from the origin
			case 9:
				req.ES = 2000 // probe past every slot
			}
			checkProbesAgree(t, tl, req, slack)
		}
	}
}

// TestProbeDifferentialAdversarial aims randomized probes at the
// pruning margins: slot boundaries shifted by sub-Eps offsets, gaps
// exactly equal to the requested duration, and large magnitudes where
// rounding slack matters most.
func TestProbeDifferentialAdversarial(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	slack := func(o Owner) float64 { return float64(o.Edge%3) }
	for trial := 0; trial < 300; trial++ {
		tl := NewTimeline()
		base := math.Pow(10, float64(r.Intn(7))) // magnitudes 1 .. 1e6
		cur := 0.0
		n := gapBlock + r.Intn(3*gapBlock)
		for i := 0; i < n; i++ {
			gap := float64(r.Intn(3)) * base / 100
			if r.Intn(4) == 0 {
				gap += Eps * float64(r.Intn(5)) / 2 // sub-Eps jitter
			}
			durS := base/50 + float64(r.Intn(3))*base/200
			cur += gap
			tl.insertSorted(Slot{Start: cur, End: cur + durS, Owner: Owner{Edge: i}})
			cur += durS
		}
		if err := tl.Validate(); err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			// Durations at and around the exact gap sizes used above.
			dur := base/100 + float64(r.Intn(5)-2)*Eps/2
			if dur <= 0 {
				dur = base / 100
			}
			req := Request{ES: r.Float64() * cur, PF: r.Float64() * cur, Dur: dur}
			checkProbesAgree(t, tl, req, slack)
		}
	}
}

// TestSnapshotRoundTripKeepsIndex pins that Snapshot/Restore and Clone
// carry the block index: after a round trip the index must validate
// and probes must agree with the reference on the restored slots.
func TestSnapshotRoundTripKeepsIndex(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tl := buildRandomTimeline(r, 500)
	snap := tl.Snapshot()
	for i := 0; i < 100; i++ {
		tl.InsertBasic(Owner{Edge: 1000 + i}, Request{ES: r.Float64() * 2000, Dur: 1})
	}
	tl.Restore(snap)
	if err := tl.Validate(); err != nil {
		t.Fatalf("after restore: %v", err)
	}
	cl := tl.Clone()
	cl.InsertBasic(Owner{Edge: 1}, Request{ES: 3000, Dur: 5})
	if err := tl.Validate(); err != nil {
		t.Fatalf("clone mutation corrupted original: %v", err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatalf("clone: %v", err)
	}
	req := Request{ES: 123.4, PF: 130, Dur: 2.5}
	checkProbesAgree(t, tl, req, func(Owner) float64 { return 1 })
}

// FuzzTimelineDifferential fuzzes operation sequences against the
// reference kernels: every probe must match the linear scan exactly and
// the index must stay consistent after every mutation.
func FuzzTimelineDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x01, 0xfe, 0x55, 0xaa})
	seed := make([]byte, 6*(2*gapBlock+5))
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		tl := NewTimeline()
		slack := func(o Owner) float64 { return float64(o.Edge % 3) }
		for i := 0; i+6 <= len(data); i += 6 {
			op := data[i] % 4
			es := float64(data[i+1])*4 + float64(data[i+2])/64
			pf := es + float64(data[i+3])/8
			dur := float64(data[i+4])/16 + 0.01
			req := Request{ES: es, PF: pf, Dur: dur}
			owner := Owner{Edge: i, Leg: int(data[i+5] % 4)}
			switch op {
			case 0, 1:
				gs, _ := tl.ProbeBasic(req)
				ws, _ := probeBasicLinear(tl.slots, req)
				// edgelint:ignore floateq — bit-identity contract.
				if gs != ws {
					t.Fatalf("op %d: ProbeBasic %v != reference %v", i, gs, ws)
				}
				tl.InsertBasic(owner, req)
			case 2:
				os, _, op2 := tl.ProbeOptimal(req, slack)
				rs, _, rp := probeOptimalLinear(tl.slots, req, slack)
				// edgelint:ignore floateq — bit-identity contract.
				if os != rs || op2 != rp {
					t.Fatalf("op %d: ProbeOptimal (%v, %d) != reference (%v, %d)", i, os, op2, rs, rp)
				}
				tl.InsertOptimal(owner, req, slack)
			case 3:
				snap := tl.Snapshot()
				tl.InsertBasic(owner, req)
				tl.Restore(snap)
			}
			if err := tl.Validate(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	})
}
