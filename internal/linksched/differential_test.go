package linksched

import (
	"math"
	"math/rand"
	"testing"
)

// This file cross-checks the indexed probe kernels (timeline.go)
// against the retained linear reference kernels (reference.go). The
// contract is bit-identity, not closeness: every comparison below is
// exact float equality, because the scheduler's determinism guarantees
// (Workers-1-vs-8, rollback oracle) assume probes are pure functions of
// the slot array regardless of how the search is organized.

// buildTimeline grows a timeline to n slots with the given source of
// randomness, mixing basic and optimal insertions (optimal with a
// deterministic pseudo-slack so shifts occur).
func buildRandomTimeline(r *rand.Rand, n int) *Timeline {
	tl := NewTimeline()
	for i := 0; i < n; i++ {
		req := Request{
			ES:  r.Float64() * 1000,
			PF:  r.Float64() * 1000,
			Dur: r.Float64()*10 + 0.01,
		}
		owner := Owner{Edge: i, Leg: 0}
		if i%7 == 3 {
			tl.InsertOptimal(owner, req, func(o Owner) float64 {
				return float64(o.Edge%5) * 0.5
			})
		} else {
			tl.InsertBasic(owner, req)
		}
	}
	return tl
}

func checkProbesAgree(t *testing.T, tl *Timeline, req Request, slack SlackFunc) {
	t.Helper()
	gs, gf := tl.ProbeBasic(req)
	ws, wf := probeBasicLinear(tl.slots, req)
	// edgelint:ignore floateq — bit-identity contract, exact by design.
	if gs != ws || gf != wf {
		t.Fatalf("ProbeBasic(%+v) = (%v, %v), reference = (%v, %v) at %d slots",
			req, gs, gf, ws, wf, tl.Len())
	}
	os, of, op := tl.ProbeOptimal(req, slack)
	rs, rf, rp := probeOptimalLinear(tl.slots, req, slack)
	// edgelint:ignore floateq — bit-identity contract, exact by design.
	if os != rs || of != rf || op != rp {
		t.Fatalf("ProbeOptimal(%+v) = (%v, %v, %d), reference = (%v, %v, %d) at %d slots",
			req, os, of, op, rs, rf, rp, tl.Len())
	}
}

// TestProbeDifferential drives the indexed and reference kernels over
// randomized timelines across the scaling range — well below one index
// block up to hundreds of blocks — and demands exactly equal answers.
func TestProbeDifferential(t *testing.T) {
	slack := func(o Owner) float64 { return float64(o.Edge%4) * 1.5 }
	for _, n := range []int{0, 1, 7, gapBlock - 1, gapBlock, gapBlock + 1, 100, 333, 1000, 4000} {
		r := rand.New(rand.NewSource(int64(n) + 1))
		tl := buildRandomTimeline(r, n)
		if err := tl.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for trial := 0; trial < 200; trial++ {
			req := Request{
				ES:  r.Float64() * 1200,
				PF:  r.Float64() * 1200,
				Dur: r.Float64()*20 + 0.001,
			}
			switch trial % 10 {
			case 7:
				req.Dur = r.Float64() * 1e-6 // sub-Eps durations
			case 8:
				req.ES, req.PF = 0, 0 // probe from the origin
			case 9:
				req.ES = 2000 // probe past every slot
			}
			checkProbesAgree(t, tl, req, slack)
		}
	}
}

// TestProbeDifferentialAdversarial aims randomized probes at the
// pruning margins: slot boundaries shifted by sub-Eps offsets, gaps
// exactly equal to the requested duration, and large magnitudes where
// rounding slack matters most.
func TestProbeDifferentialAdversarial(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	slack := func(o Owner) float64 { return float64(o.Edge%3) }
	for trial := 0; trial < 300; trial++ {
		tl := NewTimeline()
		base := math.Pow(10, float64(r.Intn(7))) // magnitudes 1 .. 1e6
		cur := 0.0
		n := gapBlock + r.Intn(3*gapBlock)
		for i := 0; i < n; i++ {
			gap := float64(r.Intn(3)) * base / 100
			if r.Intn(4) == 0 {
				gap += Eps * float64(r.Intn(5)) / 2 // sub-Eps jitter
			}
			durS := base/50 + float64(r.Intn(3))*base/200
			cur += gap
			tl.insertSorted(Slot{Start: cur, End: cur + durS, Owner: Owner{Edge: i}})
			cur += durS
		}
		if err := tl.Validate(); err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			// Durations at and around the exact gap sizes used above.
			dur := base/100 + float64(r.Intn(5)-2)*Eps/2
			if dur <= 0 {
				dur = base / 100
			}
			req := Request{ES: r.Float64() * cur, PF: r.Float64() * cur, Dur: dur}
			checkProbesAgree(t, tl, req, slack)
		}
	}
}

// TestSnapshotRoundTripKeepsIndex pins that Snapshot/Restore and Clone
// carry the block index: after a round trip the index must validate
// and probes must agree with the reference on the restored slots.
func TestSnapshotRoundTripKeepsIndex(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tl := buildRandomTimeline(r, 500)
	snap := tl.Snapshot()
	for i := 0; i < 100; i++ {
		tl.InsertBasic(Owner{Edge: 1000 + i}, Request{ES: r.Float64() * 2000, Dur: 1})
	}
	tl.Restore(snap)
	if err := tl.Validate(); err != nil {
		t.Fatalf("after restore: %v", err)
	}
	cl := tl.Clone()
	cl.InsertBasic(Owner{Edge: 1}, Request{ES: 3000, Dur: 5})
	if err := tl.Validate(); err != nil {
		t.Fatalf("clone mutation corrupted original: %v", err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatalf("clone: %v", err)
	}
	req := Request{ES: 123.4, PF: 130, Dur: 2.5}
	checkProbesAgree(t, tl, req, func(Owner) float64 { return 1 })
}

// FuzzTimelineDifferential fuzzes operation sequences against the
// reference kernels: every probe must match the linear scan exactly and
// the index must stay consistent after every mutation.
func FuzzTimelineDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x01, 0xfe, 0x55, 0xaa})
	seed := make([]byte, 6*(2*gapBlock+5))
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		tl := NewTimeline()
		slack := func(o Owner) float64 { return float64(o.Edge % 3) }
		for i := 0; i+6 <= len(data); i += 6 {
			op := data[i] % 4
			es := float64(data[i+1])*4 + float64(data[i+2])/64
			pf := es + float64(data[i+3])/8
			dur := float64(data[i+4])/16 + 0.01
			req := Request{ES: es, PF: pf, Dur: dur}
			owner := Owner{Edge: i, Leg: int(data[i+5] % 4)}
			switch op {
			case 0, 1:
				gs, _ := tl.ProbeBasic(req)
				ws, _ := probeBasicLinear(tl.slots, req)
				// edgelint:ignore floateq — bit-identity contract.
				if gs != ws {
					t.Fatalf("op %d: ProbeBasic %v != reference %v", i, gs, ws)
				}
				tl.InsertBasic(owner, req)
			case 2:
				os, _, op2 := tl.ProbeOptimal(req, slack)
				rs, _, rp := probeOptimalLinear(tl.slots, req, slack)
				// edgelint:ignore floateq — bit-identity contract.
				if os != rs || op2 != rp {
					t.Fatalf("op %d: ProbeOptimal (%v, %d) != reference (%v, %d)", i, os, op2, rs, rp)
				}
				tl.InsertOptimal(owner, req, slack)
			case 3:
				snap := tl.Snapshot()
				tl.InsertBasic(owner, req)
				tl.Restore(snap)
			}
			if err := tl.Validate(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	})
}

// --- bandwidth ledger differential ----------------------------------
//
// The chunked, block-summary BWTimeline (bandwidth.go) against the
// retained flat linear ledger (bwRef in reference.go). Same contract as
// above: every chunk, segment, and estimate must match the reference
// bit-for-bit, after every operation.

// bwPair drives the chunked store and the linear reference through
// identical operations and compares the results and the full segment
// state exactly.
type bwPair struct {
	bw  *BWTimeline
	ref *bwRef
}

func newBWPair() *bwPair { return &bwPair{bw: NewBWTimeline(), ref: &bwRef{}} }

// checkState validates the chunked store (including the exact block-
// summary recomputation) and compares its segments one-to-one with the
// reference ledger.
func (p *bwPair) checkState(t *testing.T, ctx string) {
	t.Helper()
	if err := p.bw.Validate(); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	got := p.bw.Segments()
	if len(got) != len(p.ref.segs) || p.bw.NumSegments() != len(p.ref.segs) {
		t.Fatalf("%s: %d segments (NumSegments %d), reference %d",
			ctx, len(got), p.bw.NumSegments(), len(p.ref.segs))
	}
	for i, rs := range p.ref.segs {
		g := got[i]
		// edgelint:ignore floateq — bit-identity contract, exact by design.
		if g.Start != rs.start || g.End != rs.end || g.Avail != rs.avail {
			t.Fatalf("%s: segment %d = (%v, %v, avail %v), reference (%v, %v, avail %v)",
				ctx, i, g.Start, g.End, g.Avail, rs.start, rs.end, rs.avail)
		}
		if len(g.Uses) != len(rs.uses) {
			t.Fatalf("%s: segment %d has %d uses, reference %d", ctx, i, len(g.Uses), len(rs.uses))
		}
		for j, u := range rs.uses {
			// edgelint:ignore floateq — bit-identity contract.
			if g.Uses[j].Owner != u.owner || g.Uses[j].Rate != u.rate {
				t.Fatalf("%s: segment %d use %d = %+v, reference %+v", ctx, i, j, g.Uses[j], u)
			}
		}
	}
}

// bwChunksEqual is the exact chunk-sequence comparison.
func bwChunksEqual(a, b []Chunk) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// edgelint:ignore floateq — bit-identity contract.
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *bwPair) alloc(t *testing.T, owner Owner, es, vol, speed, cap float64) []Chunk {
	t.Helper()
	got := p.bw.Alloc(owner, es, vol, speed, cap)
	want := p.ref.alloc(owner, es, vol, speed, cap)
	if !bwChunksEqual(got, want) {
		t.Fatalf("Alloc(es=%v, vol=%v, speed=%v, cap=%v) = %+v, reference %+v at %d segments",
			es, vol, speed, cap, got, want, p.bw.NumSegments())
	}
	p.checkState(t, "after Alloc")
	return got
}

func (p *bwPair) forward(t *testing.T, owner Owner, in []Chunk, prevSpeed, speed, hop float64) []Chunk {
	t.Helper()
	got := p.bw.Forward(owner, in, prevSpeed, speed, hop)
	want := p.ref.forward(owner, in, prevSpeed, speed, hop)
	if !bwChunksEqual(got, want) {
		t.Fatalf("Forward(%d chunks, prevSpeed=%v, speed=%v, hop=%v) = %+v, reference %+v",
			len(in), prevSpeed, speed, hop, got, want)
	}
	p.checkState(t, "after Forward")
	return got
}

func (p *bwPair) estimate(t *testing.T, es, vol, speed float64) {
	t.Helper()
	gs, gf := p.bw.EstimateFinish(es, vol, speed)
	ws, wf := p.ref.estimateFinish(es, vol, speed)
	// edgelint:ignore floateq — bit-identity contract.
	if gs != ws || gf != wf {
		t.Fatalf("EstimateFinish(es=%v, vol=%v, speed=%v) = (%v, %v), reference (%v, %v) at %d segments",
			es, vol, speed, gs, gf, ws, wf, p.bw.NumSegments())
	}
}

// TestBWDifferential drives both ledgers over randomized mixed
// Alloc/Forward sequences across the scaling range — well below one
// slab up to many dozens — comparing chunks, segments, and estimates
// exactly after every operation.
func TestBWDifferential(t *testing.T) {
	for _, n := range []int{0, 1, 7, bwBlock - 1, bwBlock, 2*bwBlock + 1, 100, 333, 1000} {
		r := rand.New(rand.NewSource(int64(n) + 1))
		p := newBWPair()
		span := float64(n)*2 + 10
		for i := 0; i < n; i++ {
			owner := Owner{Edge: i, Leg: 0}
			es := r.Float64() * span
			vol := r.Float64()*50 + 1
			switch i % 5 {
			case 0, 1, 2:
				p.alloc(t, owner, es, vol, 2, 0)
			case 3:
				// Capped: partial rates fragment the ledger into
				// partially available segments.
				p.alloc(t, owner, es, vol, 1, 0.25+r.Float64()*0.5)
			case 4:
				in := []Chunk{
					{Start: es, End: es + vol/2, Rate: 0.5, Volume: vol / 4},
					{Start: es + vol/2 + 1, End: es + vol/2 + 1 + vol/4, Rate: 1, Volume: vol / 2},
				}
				p.forward(t, owner, in, 2, 1, r.Float64())
			}
		}
		// Probe-only estimates within, across, and beyond the ledger.
		for trial := 0; trial < 50; trial++ {
			p.estimate(t, r.Float64()*span*1.2, r.Float64()*100+0.1, 1+r.Float64())
		}
		p.estimate(t, 0, 1e-12, 1)   // sub-Eps volume
		p.estimate(t, span*10, 5, 1) // start past every segment
	}
}

// TestBWDifferentialAdversarial aims at the prune margins: long fully
// saturated runs whose boundaries carry sub-Eps jitter (so consecutive
// segment ends cluster within Eps of each other), across magnitudes
// from 1 to 1e8 — the slack threshold disables the slab hop above
// ~2.5e5, so both the engaged and the disabled regime are exercised.
func TestBWDifferentialAdversarial(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		base := math.Pow(10, float64(r.Intn(9))) // magnitudes 1 .. 1e8
		p := newBWPair()
		cur := 0.0
		n := 2*bwBlock + r.Intn(4*bwBlock)
		for i := 0; i < n; i++ {
			es := cur
			if r.Intn(3) == 0 {
				es += Eps * float64(r.Intn(5)) / 2 // sub-Eps jitter
			}
			if r.Intn(5) == 0 {
				es += base / 64 // a real idle gap
			}
			vol := base/8 + float64(r.Intn(4))*base/32
			// Uncapped at speed 1: rate 1, fully saturating [es, es+vol].
			cs := p.alloc(t, Owner{Edge: i}, es, vol, 1, 0)
			cur = cs[len(cs)-1].End
		}
		// Estimates that must crawl or hop through the saturated runs.
		for probe := 0; probe < 40; probe++ {
			p.estimate(t, r.Float64()*cur, base/16, 1)
		}
		// Capped allocations skip the same runs on the mutating path.
		for i := 0; i < 10; i++ {
			p.alloc(t, Owner{Edge: n + i, Leg: 1}, r.Float64()*cur, base/32, 1, 0.5)
		}
	}
}

// TestBWSnapshotRoundTripKeepsIndex pins that Snapshot/Restore and
// Clone carry the chunked store and its block summaries: after a round
// trip the store must validate (summaries recomputed exactly) and
// further operations must still track the reference.
func TestBWSnapshotRoundTripKeepsIndex(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := newBWPair()
	const span = 500.0
	for i := 0; i < 200; i++ {
		p.alloc(t, Owner{Edge: i}, r.Float64()*span, r.Float64()*20+1, 2, 0)
	}
	snap := p.bw.Snapshot()
	refSnap := copySegs(nil, p.ref.segs)
	for i := 0; i < 50; i++ {
		p.bw.Alloc(Owner{Edge: 1000 + i}, r.Float64()*span, 5, 1, 0)
	}
	p.bw.Restore(snap)
	p.ref.segs = copySegs(p.ref.segs, refSnap)
	p.checkState(t, "after restore")
	// A clone's mutations must not leak back, and the clone itself must
	// keep a valid index.
	cl := p.bw.Clone()
	cl.Alloc(Owner{Edge: 1}, 2*span, 100, 1, 0)
	p.checkState(t, "after clone mutation")
	if err := cl.Validate(); err != nil {
		t.Fatalf("clone: %v", err)
	}
	// The restored original keeps tracking the reference.
	for i := 0; i < 50; i++ {
		p.alloc(t, Owner{Edge: 2000 + i, Leg: 1}, r.Float64()*span, r.Float64()*10+1, 1, 0.5)
	}
}

// FuzzBWTimelineDifferential fuzzes Alloc/Forward/EstimateFinish/
// Snapshot/Restore sequences against the linear reference: chunks,
// estimates, and the full segment state must match exactly and the
// chunk invariants must hold after every operation.
func FuzzBWTimelineDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x01, 0xfe, 0x55, 0xaa})
	seed := make([]byte, 6*(2*bwBlock+5))
	for i := range seed {
		seed[i] = byte(i * 53)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := newBWPair()
		var snap BWSnapshot
		var refSnap []seg
		haveSnap := false
		for i := 0; i+6 <= len(data); i += 6 {
			op := data[i] % 8
			es := float64(data[i+1])*4 + float64(data[i+2])/64
			vol := float64(data[i+3])/4 + 0.01
			cap := float64(data[i+4]%5) / 4 // 0 = uncapped .. 1
			speed := 1 + float64(data[i+5]%4)
			owner := Owner{Edge: i, Leg: int(data[i+5] % 2)}
			switch op {
			case 0, 1, 2:
				p.alloc(t, owner, es, vol, speed, cap)
			case 3:
				rate := 0.25 + cap/2
				in := []Chunk{{Start: es, End: es + vol, Rate: rate, Volume: vol * rate * speed}}
				p.forward(t, owner, in, speed, 1, float64(data[i+4]%3))
			case 4:
				p.estimate(t, es, vol, speed)
			case 5:
				snap = p.bw.SnapshotInto(snap)
				refSnap = copySegs(refSnap, p.ref.segs)
				haveSnap = true
			default:
				if haveSnap {
					p.bw.Restore(snap)
					p.ref.segs = copySegs(p.ref.segs, refSnap)
				} else {
					p.alloc(t, owner, es, vol, speed, 0)
				}
			}
			if i%30 == 0 || op >= 5 {
				p.checkState(t, "post-op")
			}
		}
		p.checkState(t, "final")
	})
}
