package linksched

import (
	"math"
	"sort"

	"repro/internal/fptime"
)

// This file keeps the original linear-scan kernels as reference
// oracles: the exclusive-slot probes (earliestGap/probeBasic/
// probeOptimal) and the flat-slice bandwidth ledger (bwRef). The
// indexed kernels in timeline.go and the chunked store in bandwidth.go
// must return bit-identical results; the differential tests and the
// fuzz targets in differential_test.go drive both sides against the
// same operation sequences and compare with exact float equality. The
// reference functions are package-private and exercised only by tests
// — production callers go through the indexed types.

// earliestGapLinear is the reference earliest-gap search: one pass over
// the sorted slots tracking the running maximum end, testing each
// leading gap with the Eps-tolerant fit test.
func earliestGapLinear(slots []Slot, lb, dur float64) float64 {
	prevEnd := 0.0
	for _, s := range slots {
		gapStart := prevEnd
		if gapStart < lb {
			gapStart = lb
		}
		if fptime.LeqEps(gapStart+dur, s.Start) {
			return gapStart
		}
		if s.End > prevEnd {
			prevEnd = s.End
		}
	}
	if prevEnd < lb {
		return lb
	}
	return prevEnd
}

// probeBasicLinear is ProbeBasic over the reference kernel.
func probeBasicLinear(slots []Slot, req Request) (start, finish float64) {
	lb := req.lowerBound()
	if req.Dur <= 0 {
		return lb, lb
	}
	start = earliestGapLinear(slots, lb, req.Dur)
	return start, start + req.Dur
}

// probeOptimalLinear is the reference optimal-insertion probe: the full
// tail-to-head slack scan with no early exit.
func probeOptimalLinear(slots []Slot, req Request, slack SlackFunc) (start, finish float64, pos int) {
	lb := req.lowerBound()
	if req.Dur <= 0 {
		return lb, lb, len(slots)
	}
	n := len(slots)
	bestStart := lb
	if n > 0 && slots[n-1].End > bestStart {
		bestStart = slots[n-1].End
	}
	bestPos := n
	accum := math.Inf(1)
	for i := n - 1; i >= 0; i-- {
		dt := slack(slots[i].Owner)
		if dt < 0 {
			dt = 0
		}
		gap := math.Inf(1)
		if i+1 < n {
			gap = slots[i+1].Start - slots[i].End
			if gap < 0 {
				gap = 0
			}
		}
		a := dt
		if accum+gap < a {
			a = accum + gap
		}
		accum = a
		sigma := lb
		if i > 0 && slots[i-1].End > sigma {
			sigma = slots[i-1].End
		}
		if fptime.LeqEps(sigma+req.Dur, slots[i].Start+accum) {
			if fptime.LeqEps(sigma, bestStart) {
				bestStart = sigma
				bestPos = i
			}
		}
	}
	return bestStart, bestStart + req.Dur, bestPos
}

// --- bandwidth reference kernels ------------------------------------
//
// bwRef is the pre-chunking BWTimeline kept verbatim: one flat sorted
// segment slice, O(n) append+copy memmove on insert, and kernels that
// walk change points one segment at a time. The chunked, block-summary
// BWTimeline must reproduce its chunks, segments, and estimates
// bit-for-bit; the differential sweeps and FuzzBWTimelineDifferential
// in differential_test.go drive both sides through identical operation
// sequences and compare with exact float equality.

type bwRef struct {
	segs []seg
}

// refSplit ensures a segment boundary exists at time x and returns the
// index of the first segment whose end lies beyond x (after any
// insertion), so callers can keep walking without re-searching.
func (t *bwRef) split(x float64) int {
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].end > x })
	if i == len(t.segs) {
		return i
	}
	s := &t.segs[i]
	if fptime.GeqEps(s.start, x) || fptime.LeqEps(s.end, x) {
		return i // boundary already (approximately) present
	}
	left := seg{start: s.start, end: x, avail: s.avail, uses: append([]use(nil), s.uses...)}
	s.start = x
	t.segs = append(t.segs, seg{})
	copy(t.segs[i+1:], t.segs[i:])
	t.segs[i] = left
	return i + 1 // the right half, now starting at x
}

// reserve books rate bandwidth for owner over [a, b] with the original
// linear walk and memmove inserts.
func (t *bwRef) reserve(owner Owner, a, b, rate float64) {
	if b-a <= Eps || rate <= Eps {
		return
	}
	ia := t.split(a)
	t.split(b) // inserts at an index >= ia, so ia stays valid
	cur := a
	i := ia
	// edgelint:ignore floateq — exact replica of the former
	// sort.Search(end > a+Eps) predicate; must match it bit-for-bit.
	for i < len(t.segs) && t.segs[i].end <= a+Eps {
		i++
	}
	for fptime.LessEps(cur, b) {
		if i < len(t.segs) && fptime.LeqEps(t.segs[i].start, cur) {
			s := &t.segs[i]
			end := s.end
			if end > b {
				end = b
			}
			s.avail -= rate
			if s.avail < 0 {
				s.avail = 0
			}
			s.uses = append(s.uses, use{owner: owner, rate: rate})
			cur = end
			i++
			continue
		}
		// Idle gap from cur to the next segment start (or to b).
		gapEnd := b
		if i < len(t.segs) && t.segs[i].start < gapEnd {
			gapEnd = t.segs[i].start
		}
		ns := seg{start: cur, end: gapEnd, avail: 1 - rate, uses: []use{{owner: owner, rate: rate}}}
		t.segs = append(t.segs, seg{})
		copy(t.segs[i+1:], t.segs[i:])
		t.segs[i] = ns
		cur = gapEnd
		i++
	}
}

// availAt is the original binary-search availability lookup.
func (t *bwRef) availAt(x float64) (avail, until float64) {
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].end > x+Eps })
	if i == len(t.segs) {
		return 1, math.Inf(1)
	}
	s := t.segs[i]
	if s.start > x+Eps {
		return 1, s.start // idle gap before segment i
	}
	return s.avail, s.end
}

// alloc is BWTimeline.Alloc over the reference kernels.
func (t *bwRef) alloc(owner Owner, es, volume, speed, cap float64) []Chunk {
	if cap <= 0 || cap > 1 {
		cap = 1
	}
	if volume <= Eps {
		return []Chunk{{Start: es, End: es, Rate: 0, Volume: 0}}
	}
	var out []Chunk
	cur := math.Max(es, 0)
	remaining := volume
	for remaining > volume*1e-9+Eps/2 {
		avail, until := t.availAt(cur)
		rate := math.Min(avail, cap)
		if rate <= Eps {
			// Link saturated here; wait for the next change point.
			cur = until
			continue
		}
		need := remaining / (rate * speed)
		end := cur + need
		if end > until {
			end = until
		}
		// edgelint:ignore floateq — exact zero-progress guard; see
		// BWTimeline.Alloc.
		if end <= cur {
			break
		}
		moved := rate * speed * (end - cur)
		if moved > remaining {
			moved = remaining
		}
		t.reserve(owner, cur, end, rate)
		out = appendChunk(out, Chunk{Start: cur, End: end, Rate: rate, Volume: moved})
		remaining -= moved
		cur = end
	}
	return out
}

// estimateFinish is BWTimeline.EstimateFinish over the reference
// kernels: the monotone cursor advanced one segment at a time.
func (t *bwRef) estimateFinish(es, volume, speed float64) (start, finish float64) {
	if volume <= Eps {
		return es, es
	}
	cur := math.Max(es, 0)
	remaining := volume
	start = -1
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].end > cur+Eps })
	for remaining > volume*1e-9+Eps/2 {
		avail, until := 1.0, math.Inf(1)
		if i < len(t.segs) {
			if s := &t.segs[i]; s.start > cur+Eps {
				avail, until = 1, s.start // idle gap before segment i
			} else {
				avail, until = s.avail, s.end
			}
		}
		if avail <= Eps {
			cur = until
			// edgelint:ignore floateq — exact replica of availAt's
			// sort.Search(end > cur+Eps) predicate.
			for i < len(t.segs) && t.segs[i].end <= cur+Eps {
				i++
			}
			continue
		}
		if start < 0 {
			start = cur
		}
		need := remaining / (avail * speed)
		end := cur + need
		if end > until {
			end = until
		}
		// edgelint:ignore floateq — exact zero-progress guard.
		if end <= cur {
			break
		}
		remaining -= avail * speed * (end - cur)
		cur = end
		// edgelint:ignore floateq — exact replica of availAt's
		// sort.Search(end > cur+Eps) predicate.
		for i < len(t.segs) && t.segs[i].end <= cur+Eps {
			i++
		}
	}
	if start < 0 {
		start = cur
	}
	return start, cur
}

// forward is BWTimeline.Forward over the reference alloc.
func (t *bwRef) forward(owner Owner, in []Chunk, prevSpeed, speed, hopDelay float64) []Chunk {
	var out []Chunk
	cursor := 0.0
	for _, c := range in {
		if c.Volume <= Eps {
			if len(out) == 0 {
				out = append(out, Chunk{Start: c.Start + hopDelay, End: c.Start + hopDelay})
			}
			continue
		}
		es := math.Max(cursor, c.Start+hopDelay)
		cap := c.Rate * prevSpeed / speed
		cs := t.alloc(owner, es, c.Volume, speed, cap)
		for _, oc := range cs {
			out = appendChunk(out, oc)
		}
		if n := len(out); n > 0 {
			cursor = out[n-1].End
		}
	}
	if len(out) == 0 {
		out = append(out, Chunk{})
	}
	return out
}
