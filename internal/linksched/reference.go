package linksched

import (
	"math"

	"repro/internal/fptime"
)

// This file keeps the original linear-scan probe kernels as reference
// oracles. The indexed kernels in timeline.go must return bit-identical
// results; the differential tests and the fuzz target in
// differential_test.go drive both against the same slot sequences and
// compare with exact float equality. The reference functions are
// package-private and exercised only by tests — production callers go
// through ProbeBasic/ProbeOptimal.

// earliestGapLinear is the reference earliest-gap search: one pass over
// the sorted slots tracking the running maximum end, testing each
// leading gap with the Eps-tolerant fit test.
func earliestGapLinear(slots []Slot, lb, dur float64) float64 {
	prevEnd := 0.0
	for _, s := range slots {
		gapStart := prevEnd
		if gapStart < lb {
			gapStart = lb
		}
		if fptime.LeqEps(gapStart+dur, s.Start) {
			return gapStart
		}
		if s.End > prevEnd {
			prevEnd = s.End
		}
	}
	if prevEnd < lb {
		return lb
	}
	return prevEnd
}

// probeBasicLinear is ProbeBasic over the reference kernel.
func probeBasicLinear(slots []Slot, req Request) (start, finish float64) {
	lb := req.lowerBound()
	if req.Dur <= 0 {
		return lb, lb
	}
	start = earliestGapLinear(slots, lb, req.Dur)
	return start, start + req.Dur
}

// probeOptimalLinear is the reference optimal-insertion probe: the full
// tail-to-head slack scan with no early exit.
func probeOptimalLinear(slots []Slot, req Request, slack SlackFunc) (start, finish float64, pos int) {
	lb := req.lowerBound()
	if req.Dur <= 0 {
		return lb, lb, len(slots)
	}
	n := len(slots)
	bestStart := lb
	if n > 0 && slots[n-1].End > bestStart {
		bestStart = slots[n-1].End
	}
	bestPos := n
	accum := math.Inf(1)
	for i := n - 1; i >= 0; i-- {
		dt := slack(slots[i].Owner)
		if dt < 0 {
			dt = 0
		}
		gap := math.Inf(1)
		if i+1 < n {
			gap = slots[i+1].Start - slots[i].End
			if gap < 0 {
				gap = 0
			}
		}
		a := dt
		if accum+gap < a {
			a = accum + gap
		}
		accum = a
		sigma := lb
		if i > 0 && slots[i-1].End > sigma {
			sigma = slots[i-1].End
		}
		if fptime.LeqEps(sigma+req.Dur, slots[i].Start+accum) {
			if fptime.LeqEps(sigma, bestStart) {
				bestStart = sigma
				bestPos = i
			}
		}
	}
	return bestStart, bestStart + req.Dur, bestPos
}
