// Package refine improves a schedule by iterated local search over the
// task-to-processor assignment: starting from a constructive
// algorithm's schedule, it repeatedly moves one task to another
// processor (or swaps two tasks) and keeps the change when the
// contention-aware replay of the new assignment shortens the makespan.
//
// The paper's introduction cites genetic and simulated-annealing
// schedulers as the expensive end of the design space; this package is
// that end realized on top of the edge-scheduling model, useful both
// as a quality upper reference and as a post-pass on OIHSA/BBSA
// schedules.
package refine

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/fptime"
	"repro/internal/network"
	"repro/internal/sched"
)

// Options configures the refinement search.
type Options struct {
	// Base produces the initial schedule. Nil defaults to BBSA.
	Base sched.Algorithm
	// Eval is the edge-scheduling policy used to price every candidate
	// assignment. The zero value is BA's policy (BFS + basic
	// insertion), which is the cheapest; use OIHSA's options for
	// higher-fidelity pricing.
	Eval sched.Options
	// MaxIters bounds the number of candidate moves (default 200).
	MaxIters int
	// Patience stops the search after this many consecutive
	// non-improving moves (default 50; 0 means MaxIters only).
	Patience int
	// SwapEvery makes every n-th move a swap of two tasks' processors
	// instead of a single-task move (default 4; 0 disables swaps).
	SwapEvery int
	// Seed drives the move generator.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Base == nil {
		o.Base = sched.NewBBSA()
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 200
	}
	if o.Patience < 0 {
		o.Patience = 0
	}
	if o.Patience == 0 {
		o.Patience = 50
	}
	if o.SwapEvery < 0 {
		o.SwapEvery = 0
	}
	if o.SwapEvery == 0 {
		o.SwapEvery = 4
	}
	return o
}

// Stats reports what the search did.
type Stats struct {
	InitialMakespan float64
	FinalMakespan   float64
	Iterations      int
	Improvements    int
	Evaluations     int
}

// ImprovementPct returns the relative gain over the initial schedule.
func (s Stats) ImprovementPct() float64 {
	if s.InitialMakespan <= 0 {
		return 0
	}
	return 100 * (s.InitialMakespan - s.FinalMakespan) / s.InitialMakespan
}

// Refine runs the local search and returns the best schedule found
// (never worse than the base algorithm's schedule).
func Refine(g *dag.Graph, net *network.Topology, opt Options) (*sched.Schedule, Stats, error) {
	opt = opt.withDefaults()
	var st Stats

	base, err := opt.Base.Schedule(g, net)
	if err != nil {
		return nil, st, fmt.Errorf("refine: base: %w", err)
	}
	assign := make([]network.NodeID, g.NumTasks())
	for i, tp := range base.Tasks {
		assign[i] = tp.Proc
	}
	// Price the base assignment under the evaluation policy so all
	// comparisons share one cost model.
	name := fmt.Sprintf("Refined(%s)", opt.Base.Name())
	best, err := sched.ScheduleAssignment(g, net, assign, opt.Eval, name)
	if err != nil {
		return nil, st, fmt.Errorf("refine: evaluate base: %w", err)
	}
	st.Evaluations++
	// Keep whichever of (base schedule, re-priced schedule) is better
	// as the incumbent result; the search compares against the replay
	// cost model only.
	if base.Makespan < best.Makespan {
		st.InitialMakespan = base.Makespan
	} else {
		st.InitialMakespan = best.Makespan
	}

	procs := net.Processors()
	if len(procs) < 2 || g.NumTasks() == 0 {
		st.FinalMakespan = st.InitialMakespan
		if fptime.LeqEps(base.Makespan, best.Makespan) {
			return base, st, nil
		}
		return best, st, nil
	}
	r := rand.New(rand.NewSource(opt.Seed))
	sinceImprove := 0
	cur := append([]network.NodeID(nil), assign...)
	curCost := best.Makespan
	for st.Iterations = 0; st.Iterations < opt.MaxIters; st.Iterations++ {
		if sinceImprove >= opt.Patience {
			break
		}
		cand := append([]network.NodeID(nil), cur...)
		if opt.SwapEvery > 0 && (st.Iterations+1)%opt.SwapEvery == 0 && g.NumTasks() >= 2 {
			// Swap two distinct tasks on distinct processors.
			a := dag.TaskID(r.Intn(g.NumTasks()))
			b := dag.TaskID(r.Intn(g.NumTasks()))
			if a == b || cand[a] == cand[b] {
				sinceImprove++
				continue
			}
			cand[a], cand[b] = cand[b], cand[a]
		} else {
			t := dag.TaskID(r.Intn(g.NumTasks()))
			p := procs[r.Intn(len(procs))]
			if cand[t] == p {
				sinceImprove++
				continue
			}
			cand[t] = p
		}
		s, err := sched.ScheduleAssignment(g, net, cand, opt.Eval, name)
		if err != nil {
			return nil, st, fmt.Errorf("refine: evaluate move: %w", err)
		}
		st.Evaluations++
		if s.Makespan < curCost-1e-9 {
			cur = cand
			curCost = s.Makespan
			best = s
			st.Improvements++
			sinceImprove = 0
		} else {
			sinceImprove++
		}
	}
	// Never return something worse than the base algorithm produced.
	if base.Makespan < best.Makespan {
		st.FinalMakespan = base.Makespan
		return base, st, nil
	}
	st.FinalMakespan = best.Makespan
	return best, st, nil
}
