package refine

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/verify"
)

func randomInstance(t *testing.T, seed int64, tasks, procs int) (*dag.Graph, *network.Topology) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    tasks,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
	})
	net := network.RandomCluster(r, network.RandomClusterParams{
		Processors: procs, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
	return g, net
}

func TestAnnealNeverWorseThanBase(t *testing.T) {
	g, net := randomInstance(t, 21, 30, 6)
	for _, base := range []sched.Algorithm{sched.NewBA(), sched.NewOIHSA()} {
		bs, err := base.Schedule(g, net)
		if err != nil {
			t.Fatal(err)
		}
		s, st, err := Anneal(g, net, SAOptions{Base: base, Iters: 120, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res := verify.Verify(s); !res.OK() {
			t.Fatalf("annealed schedule invalid: %v", res.Err())
		}
		if s.Makespan > bs.Makespan+1e-6 {
			t.Errorf("annealed (%v) worse than base %s (%v)", s.Makespan, base.Name(), bs.Makespan)
		}
		if st.Evaluations == 0 {
			t.Error("no evaluations")
		}
	}
}

func TestAnnealEscapesBadStart(t *testing.T) {
	g := dag.New()
	g.AddTask("t1", 100)
	g.AddTask("t2", 100)
	g.AddTask("t3", 100)
	net := network.Star(3, network.Uniform(1), network.Uniform(1))
	s, _, err := Anneal(g, net, SAOptions{Base: badScheduler{}, Iters: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s)
	if s.Makespan > 100+1e-9 {
		t.Fatalf("annealing failed to spread independent tasks: %v", s.Makespan)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	g, net := randomInstance(t, 22, 25, 5)
	a, sa, err := Anneal(g, net, SAOptions{Iters: 80, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Anneal(g, net, SAOptions{Iters: 80, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, a)
	mustVerify(t, b)
	if a.Makespan != b.Makespan || sa != sb {
		t.Fatal("annealing nondeterministic for equal seeds")
	}
}

func TestEvolveNeverWorseThanBase(t *testing.T) {
	g, net := randomInstance(t, 23, 30, 6)
	for _, base := range []sched.Algorithm{sched.NewBA(), sched.NewBBSA()} {
		bs, err := base.Schedule(g, net)
		if err != nil {
			t.Fatal(err)
		}
		s, st, err := Evolve(g, net, GAOptions{Base: base, Population: 8, Generations: 6, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res := verify.Verify(s); !res.OK() {
			t.Fatalf("evolved schedule invalid: %v", res.Err())
		}
		if s.Makespan > bs.Makespan+1e-6 {
			t.Errorf("evolved (%v) worse than base %s (%v)", s.Makespan, base.Name(), bs.Makespan)
		}
		if st.Evaluations < 8 {
			t.Errorf("too few evaluations: %d", st.Evaluations)
		}
	}
}

func TestEvolveEscapesBadStart(t *testing.T) {
	g := dag.New()
	g.AddTask("t1", 100)
	g.AddTask("t2", 100)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s, _, err := Evolve(g, net, GAOptions{Base: badScheduler{}, Population: 10, Generations: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s)
	if s.Makespan > 100+1e-9 {
		t.Fatalf("GA failed to split independent tasks: %v", s.Makespan)
	}
}

func TestEvolveDeterministic(t *testing.T) {
	g, net := randomInstance(t, 24, 20, 4)
	a, _, err := Evolve(g, net, GAOptions{Population: 6, Generations: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Evolve(g, net, GAOptions{Population: 6, Generations: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, a)
	mustVerify(t, b)
	if a.Makespan != b.Makespan {
		t.Fatal("GA nondeterministic for equal seeds")
	}
}

func TestMetaheuristicsSingleProcessor(t *testing.T) {
	g := dag.Chain(3, 10, 10)
	net := network.Star(1, network.Uniform(1), network.Uniform(1))
	sa, _, err := Anneal(g, net, SAOptions{Seed: 1})
	if err != nil || sa.Makespan != 30 {
		t.Fatalf("anneal on 1 proc: %v, %v", sa, err)
	}
	mustVerify(t, sa)
	ga, _, err := Evolve(g, net, GAOptions{Seed: 1})
	if err != nil || ga.Makespan != 30 {
		t.Fatalf("evolve on 1 proc: %v, %v", ga, err)
	}
	mustVerify(t, ga)
}
