package refine

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/verify"
)

func TestRefineNeverWorseThanBase(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    30,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
		})
		net := network.RandomCluster(r, network.RandomClusterParams{
			Processors: 6, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
		for _, base := range []sched.Algorithm{sched.NewBA(), sched.NewOIHSA(), sched.NewBBSA()} {
			bs, err := base.Schedule(g, net)
			if err != nil {
				t.Fatal(err)
			}
			s, st, err := Refine(g, net, Options{Base: base, MaxIters: 60, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			if res := verify.Verify(s); !res.OK() {
				t.Fatalf("refined schedule invalid: %v", res.Err())
			}
			if s.Makespan > bs.Makespan+1e-6 {
				t.Errorf("refined (%v) worse than base %s (%v)", s.Makespan, base.Name(), bs.Makespan)
			}
			if st.Evaluations < 1 {
				t.Errorf("no evaluations recorded")
			}
			if st.FinalMakespan > st.InitialMakespan+1e-6 {
				t.Errorf("stats regressed: %+v", st)
			}
		}
	}
}

func mustVerify(t *testing.T, s *sched.Schedule) {
	t.Helper()
	if res := verify.Verify(s); !res.OK() {
		t.Fatalf("invalid schedule: %v", res.Err())
	}
}

func TestRefineFindsObviousImprovement(t *testing.T) {
	// Two independent heavy tasks and a machine with two processors:
	// a deliberately bad base that puts both on one processor must be
	// repaired by a single move.
	g := dag.New()
	g.AddTask("t1", 100)
	g.AddTask("t2", 100)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))

	bad := badScheduler{}
	s, st, err := Refine(g, net, Options{Base: bad, MaxIters: 100, Patience: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s)
	if s.Makespan > 100+1e-9 {
		t.Fatalf("refiner failed to split independent tasks: makespan %v", s.Makespan)
	}
	if st.Improvements == 0 {
		t.Fatal("no improvements recorded")
	}
	if st.ImprovementPct() <= 0 {
		t.Fatalf("improvement pct %v", st.ImprovementPct())
	}
}

// badScheduler dumps every task on the first processor.
type badScheduler struct{}

func (badScheduler) Name() string { return "bad" }

func (badScheduler) Schedule(g *dag.Graph, net *network.Topology) (*sched.Schedule, error) {
	assign := make([]network.NodeID, g.NumTasks())
	for i := range assign {
		assign[i] = net.Processors()[0]
	}
	return sched.ScheduleAssignment(g, net, assign, sched.Options{}, "bad")
}

func TestRefineSingleProcessorNoop(t *testing.T) {
	g := dag.Chain(4, 10, 10)
	net := network.Star(1, network.Uniform(1), network.Uniform(1))
	s, st, err := Refine(g, net, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s)
	if s.Makespan != 40 {
		t.Fatalf("makespan %v, want 40", s.Makespan)
	}
	if st.Iterations != 0 {
		t.Fatalf("search ran on a single-processor machine")
	}
}

func TestRefineDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    25,
		TaskCost: dag.CostDist{Lo: 1, Hi: 50},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 50},
	})
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	a, sa, err := Refine(g, net, Options{MaxIters: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Refine(g, net, Options{MaxIters: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, a)
	mustVerify(t, b)
	if a.Makespan != b.Makespan || sa != sb {
		t.Fatalf("nondeterministic refinement: %v/%v, %+v/%+v", a.Makespan, b.Makespan, sa, sb)
	}
}

func TestRefineWithHigherFidelityEval(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    25,
		TaskCost: dag.CostDist{Lo: 1, Hi: 50},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 150},
	})
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	eval := sched.NewOIHSA().Opts
	s, _, err := Refine(g, net, Options{Eval: eval, MaxIters: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res := verify.Verify(s); !res.OK() {
		t.Fatal(res.Err())
	}
}
