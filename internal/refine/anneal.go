package refine

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/fptime"
	"repro/internal/network"
	"repro/internal/sched"
)

// SAOptions configures the simulated-annealing refiner.
type SAOptions struct {
	// Base produces the initial schedule. Nil defaults to BBSA.
	Base sched.Algorithm
	// Eval is the edge-scheduling policy used to price candidates.
	Eval sched.Options
	// Iters is the number of annealing steps (default 500).
	Iters int
	// T0 is the initial temperature as a fraction of the initial
	// makespan (default 0.05): a move worsening the makespan by
	// T0·initial is accepted with probability 1/e at the start.
	T0 float64
	// Cooling is the per-step geometric cooling factor (default such
	// that the temperature decays to 1% of T0 over Iters).
	Cooling float64
	// Seed drives the proposal and acceptance randomness.
	Seed int64
}

func (o SAOptions) withDefaults() SAOptions {
	if o.Base == nil {
		o.Base = sched.NewBBSA()
	}
	if o.Iters <= 0 {
		o.Iters = 500
	}
	if o.T0 <= 0 {
		o.T0 = 0.05
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		// Decay to 1% of T0 over the full run.
		o.Cooling = math.Pow(0.01, 1/float64(o.Iters))
	}
	return o
}

// Anneal runs simulated annealing over the task-to-processor
// assignment (the SA family the paper's introduction cites, realized
// on the contention-aware model). The result is never worse than the
// base algorithm's schedule.
func Anneal(g *dag.Graph, net *network.Topology, opt SAOptions) (*sched.Schedule, Stats, error) {
	opt = opt.withDefaults()
	var st Stats

	base, err := opt.Base.Schedule(g, net)
	if err != nil {
		return nil, st, fmt.Errorf("refine: anneal base: %w", err)
	}
	assign := make([]network.NodeID, g.NumTasks())
	for i, tp := range base.Tasks {
		assign[i] = tp.Proc
	}
	name := fmt.Sprintf("Annealed(%s)", opt.Base.Name())
	cur, err := sched.ScheduleAssignment(g, net, assign, opt.Eval, name)
	if err != nil {
		return nil, st, fmt.Errorf("refine: anneal evaluate base: %w", err)
	}
	st.Evaluations++
	st.InitialMakespan = math.Min(base.Makespan, cur.Makespan)

	procs := net.Processors()
	if len(procs) < 2 || g.NumTasks() == 0 {
		st.FinalMakespan = st.InitialMakespan
		if fptime.LeqEps(base.Makespan, cur.Makespan) {
			return base, st, nil
		}
		return cur, st, nil
	}
	r := rand.New(rand.NewSource(opt.Seed))
	curAssign := append([]network.NodeID(nil), assign...)
	curCost := cur.Makespan
	best := cur
	temp := opt.T0 * curCost
	for st.Iterations = 0; st.Iterations < opt.Iters; st.Iterations++ {
		tid := dag.TaskID(r.Intn(g.NumTasks()))
		p := procs[r.Intn(len(procs))]
		if curAssign[tid] == p {
			temp *= opt.Cooling
			continue
		}
		old := curAssign[tid]
		curAssign[tid] = p
		s, err := sched.ScheduleAssignment(g, net, curAssign, opt.Eval, name)
		if err != nil {
			return nil, st, fmt.Errorf("refine: anneal evaluate: %w", err)
		}
		st.Evaluations++
		delta := s.Makespan - curCost
		if delta <= 0 || (temp > 0 && r.Float64() < math.Exp(-delta/temp)) {
			curCost = s.Makespan
			if s.Makespan < best.Makespan {
				best = s
				st.Improvements++
			}
		} else {
			curAssign[tid] = old // reject
		}
		temp *= opt.Cooling
	}
	if base.Makespan < best.Makespan {
		st.FinalMakespan = base.Makespan
		return base, st, nil
	}
	st.FinalMakespan = best.Makespan
	return best, st, nil
}

// GAOptions configures the genetic refiner.
type GAOptions struct {
	// Base produces the seed individual. Nil defaults to BBSA.
	Base sched.Algorithm
	// Eval is the edge-scheduling policy used to price candidates.
	Eval sched.Options
	// Population is the number of individuals (default 16).
	Population int
	// Generations is the number of evolution rounds (default 20).
	Generations int
	// MutationRate is the per-gene mutation probability (default 0.05).
	MutationRate float64
	// Seed drives all randomness.
	Seed int64
}

func (o GAOptions) withDefaults() GAOptions {
	if o.Base == nil {
		o.Base = sched.NewBBSA()
	}
	if o.Population <= 1 {
		o.Population = 16
	}
	if o.Generations <= 0 {
		o.Generations = 20
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 0.05
	}
	return o
}

// Evolve runs a steady-state genetic algorithm over assignments
// (chromosome = task→processor vector; one-point crossover; uniform
// mutation; tournament selection; elitism of one). The result is
// never worse than the base algorithm's schedule.
func Evolve(g *dag.Graph, net *network.Topology, opt GAOptions) (*sched.Schedule, Stats, error) {
	opt = opt.withDefaults()
	var st Stats

	base, err := opt.Base.Schedule(g, net)
	if err != nil {
		return nil, st, fmt.Errorf("refine: evolve base: %w", err)
	}
	name := fmt.Sprintf("Evolved(%s)", opt.Base.Name())
	procs := net.Processors()
	n := g.NumTasks()

	type indiv struct {
		genes []network.NodeID
		cost  float64
	}
	evalIndiv := func(genes []network.NodeID) (float64, *sched.Schedule, error) {
		s, err := sched.ScheduleAssignment(g, net, genes, opt.Eval, name)
		if err != nil {
			return 0, nil, err
		}
		st.Evaluations++
		return s.Makespan, s, nil
	}

	seed := make([]network.NodeID, n)
	for i, tp := range base.Tasks {
		seed[i] = tp.Proc
	}
	seedCost, seedSched, err := evalIndiv(seed)
	if err != nil {
		return nil, st, fmt.Errorf("refine: evolve evaluate seed: %w", err)
	}
	st.InitialMakespan = math.Min(base.Makespan, seedCost)
	best := seedSched

	if len(procs) < 2 || n == 0 {
		st.FinalMakespan = st.InitialMakespan
		if fptime.LeqEps(base.Makespan, best.Makespan) {
			return base, st, nil
		}
		return best, st, nil
	}
	r := rand.New(rand.NewSource(opt.Seed))
	pop := make([]indiv, opt.Population)
	pop[0] = indiv{genes: seed, cost: seedCost}
	for i := 1; i < opt.Population; i++ {
		genes := append([]network.NodeID(nil), seed...)
		// Diversify: remap a random fraction of tasks.
		for j := range genes {
			if r.Float64() < 0.2 {
				genes[j] = procs[r.Intn(len(procs))]
			}
		}
		cost, s, err := evalIndiv(genes)
		if err != nil {
			return nil, st, err
		}
		pop[i] = indiv{genes: genes, cost: cost}
		if cost < best.Makespan {
			best = s
		}
	}
	tournament := func() indiv {
		a := pop[r.Intn(len(pop))]
		b := pop[r.Intn(len(pop))]
		if fptime.LeqEps(a.cost, b.cost) {
			return a
		}
		return b
	}
	for gen := 0; gen < opt.Generations; gen++ {
		st.Iterations++
		next := make([]indiv, 0, opt.Population)
		// Elitism: carry the incumbent best individual.
		bestIdx := 0
		for i := range pop {
			if pop[i].cost < pop[bestIdx].cost {
				bestIdx = i
			}
		}
		next = append(next, pop[bestIdx])
		for len(next) < opt.Population {
			pa, pb := tournament(), tournament()
			cut := r.Intn(n)
			child := make([]network.NodeID, n)
			copy(child[:cut], pa.genes[:cut])
			copy(child[cut:], pb.genes[cut:])
			for j := range child {
				if r.Float64() < opt.MutationRate {
					child[j] = procs[r.Intn(len(procs))]
				}
			}
			cost, s, err := evalIndiv(child)
			if err != nil {
				return nil, st, err
			}
			if cost < best.Makespan {
				best = s
				st.Improvements++
			}
			next = append(next, indiv{genes: child, cost: cost})
		}
		pop = next
	}
	if base.Makespan < best.Makespan {
		st.FinalMakespan = base.Makespan
		return base, st, nil
	}
	st.FinalMakespan = best.Makespan
	return best, st, nil
}
