// Package xb merges over map iteration in one package while the fold
// predicate lives in another: the delegation is recognized only
// because xa.Better's edgelint:detfold mark arrived as a fact.
package xb

import "xa"

func merge(m map[int]float64) (int, float64) {
	bestID, bestF := -1, 0.0
	for id, f := range m {
		if xa.Better(f, id, bestF, bestID) { // delegated to a marked fold: conforming
			bestID, bestF = id, f
		}
	}
	return bestID, bestF
}

func badMerge(m map[int]float64) (int, float64) {
	bestID, bestF := -1, 0.0
	for id, f := range m {
		if f < bestF { // want "selection of bestF in a map iteration compares floats bare"
			bestID, bestF = id, f
		}
	}
	return bestID, bestF
}
