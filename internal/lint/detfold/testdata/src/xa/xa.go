// Package xa exports the deterministic-fold predicate. The
// edgelint:detfold mark is exported as a fact, so importing packages
// may delegate their merge-ordering decisions to Better.
package xa

import "repro/internal/fptime"

// Better reports whether candidate (f, id) beats the incumbent
// (bestF, bestID) under the deterministic fold contract: epsilon-less
// wins, epsilon-equal falls back to the lower ID.
// edgelint:detfold
func Better(f float64, id int, bestF float64, bestID int) bool {
	if bestID < 0 {
		return true
	}
	return fptime.LessEps(f, bestF) || (fptime.EqEps(f, bestF) && id < bestID)
}
