// Stub of repro/internal/fptime for the detfold fixtures: the epsilon
// comparison helpers the deterministic-fold contract is written in.
package fptime

const Eps = 1e-9

func LessEps(a, b float64) bool { return a < b-Eps }

func EqEps(a, b float64) bool {
	d := a - b
	return d < Eps && d > -Eps
}
