// Fixture for the detfold analyzer: folds over nondeterministically
// ordered sources — map iteration, channel receives, select clauses —
// must compare through fptime and break epsilon-ties on a total ID
// order; edgelint:detfold-marked folds may not compare floats bare.
package a

import "repro/internal/fptime"

type result struct {
	ID     int
	Finish float64
}

// mapReduce folds over map iteration order.
func mapReduce(m map[int]float64) float64 {
	var sum float64
	best := 0.0
	bestID := -1
	for id, v := range m {
		sum += v // want "order-dependent float accumulation into sum in a map iteration"

		if v < best { // want "selection of best in a map iteration compares floats bare"
			best = v
		}

		// Epsilon comparison plus integer tie-break: conforming.
		if fptime.LessEps(v, best) || (fptime.EqEps(v, best) && id < bestID) {
			best = v
			bestID = id
		}

		if fptime.LessEps(v, best) { // want "selection of best in a map iteration is lacking a tie-break"
			best = v
		}
	}
	return sum + best + float64(bestID)
}

// chanMerge selects by bare comparison on arrival order.
func chanMerge(ch chan result) result {
	var best result
	for r := range ch {
		if r.Finish < best.Finish { // want "selection of best in a channel merge compares floats bare"
			best = r
		}
	}
	return best
}

// chanMergeTieBreak is the conforming shape of the same merge.
func chanMergeTieBreak(ch chan result) result {
	var best result
	bestID := -1
	for r := range ch {
		if fptime.LessEps(r.Finish, best.Finish) ||
			(fptime.EqEps(r.Finish, best.Finish) && r.ID < bestID) {
			best, bestID = r, r.ID
		}
	}
	return best
}

// chanOpaque hides the ordering decision behind an unmarked helper:
// nothing establishes a deterministic order.
func chanOpaque(ch chan result, better func(a, b result) bool) result {
	var best result
	for r := range ch {
		if better(r, best) { // want "selection of best in a channel merge does not establish a deterministic order"
			best = r
		}
	}
	return best
}

// indexedGather writes each arrival into its ID-addressed slot: the
// final state is independent of arrival order, nothing to flag.
func indexedGather(ch chan result, out []float64) {
	for r := range ch {
		out[r.ID] = r.Finish
	}
}

// selectMerge merges two channels through select clauses.
func selectMerge(a, b chan result) result {
	var best result
	var total float64
	for i := 0; i < 4; i++ {
		select {
		case r := <-a:
			total += r.Finish // want "order-dependent float accumulation into total in a select merge"
			if r.Finish < best.Finish { // want "selection of best in a select merge compares floats bare"
				best = r
			}
		case r := <-b:
			if fptime.LessEps(r.Finish, best.Finish) { // want "selection of best in a select merge is lacking a tie-break"
				best = r
			}
		}
	}
	_ = total
	return best
}

// nonFloatMerge: selections that carry no floating-point state are out
// of scope (deduplication, error capture, counters).
func nonFloatMerge(ch chan error) error {
	var first error
	n := 0
	for err := range ch {
		n++
		if err != nil && first == nil {
			first = err
		}
	}
	_ = n
	return first
}

// selectBest is the canonical conforming fold over an ID-ordered slice:
// strict LessEps with first-wins scanning breaks ties to the lowest ID.
// edgelint:detfold
func selectBest(finish []float64) int {
	best := -1
	for id, f := range finish {
		if best < 0 || fptime.LessEps(f, finish[best]) {
			best = id
		}
	}
	return best
}

// badFold carries the mark but compares bare: inside a detfold fold
// every float ordering comparison must go through fptime.
// edgelint:detfold
func badFold(finish []float64) int {
	best := 0
	for id, f := range finish {
		if f < finish[best] { // want "bare float comparison in detfold-marked fold badFold"
			best = id
		}
	}
	return best
}

// annotated shows the escape hatch for a provably order-free reduce.
func annotated(m map[int]int) int {
	total := 0
	votes := 0.0
	for _, v := range m {
		total += v   // integer accumulation is exact: out of scope
		votes += 1.0 // edgelint:ignore detfold — fixture: counting arrivals, every order sums identically
	}
	_ = votes
	return total
}
