// Package detfold enforces the deterministic parallel-reduce contract
// that keeps the scheduler's parallel paths bit-identical to its serial
// ones (see selectByEFT in internal/sched/fork.go, the canonical
// conforming fold): candidates are compared with explicit fptime
// epsilon tolerance, and epsilon-equal candidates are ordered by an
// integer tie-break on a total ID order — never by arrival order.
//
// The analyzer looks at merge regions, where iteration order is
// nondeterministic by construction: range over a map, range over a
// channel, and the communication clauses of a select statement. Inside
// a merge region it flags
//
//   - compound floating-point accumulation (+=, -=, *=, /=) into a
//     variable declared outside the region — float addition is not
//     associative, so the result depends on arrival order. Accumulate
//     into ID-indexed slots (out[id] = v) and reduce in a second,
//     deterministically ordered pass instead;
//   - guarded selections — an if statement whose body assigns a
//     float-bearing variable declared outside the region — unless the
//     condition either calls a function marked `edgelint:detfold`
//     (delegating the ordering decision to a checked fold), or both
//     compares via an fptime epsilon helper (LessEps/EqEps) and
//     includes an integer comparison acting as the tie-break.
//
// Inside a function marked `edgelint:detfold` the contract inverts:
// the function IS the fold, so any bare float ordering comparison
// (<, >, <=, >=) in its body is flagged — it must route comparisons
// through fptime. The mark is exported as a fact, so delegation is
// recognized across package boundaries.
//
// False positives carry `edgelint:ignore detfold — reason`.
package detfold

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags order-dependent floating-point folds in merge regions.
var Analyzer = &lint.Analyzer{
	Name: "detfold",
	Doc: "parallel reduces must be deterministic: in merge regions (range " +
		"over map or channel, select clauses) float accumulation into outer " +
		"variables and guarded selections without fptime tolerance plus an " +
		"integer tie-break depend on arrival order. Mark conforming folds " +
		"with `edgelint:detfold` (their bodies may not compare floats bare) " +
		"and delegate to them; annotate provably order-free reductions with " +
		"`edgelint:ignore detfold — reason`.",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && fn != nil {
				if _, marked := pass.ImportFact(lint.FactFold, fn); marked {
					checkMarkedFold(pass, fd)
				}
			}
			findRegions(pass, fd.Body)
		}
	}
	return nil
}

// checkMarkedFold enforces the contract inside an edgelint:detfold
// function: every float ordering comparison must go through fptime.
func checkMarkedFold(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || !isOrdering(b.Op) {
			return true
		}
		if lint.IsFloat(info.TypeOf(b.X)) || lint.IsFloat(info.TypeOf(b.Y)) {
			pass.Reportf(b.Pos(),
				"bare float comparison in detfold-marked fold %s: compare via "+
					"fptime.LessEps/EqEps and break epsilon-ties on a total ID order",
				fd.Name.Name)
		}
		return true
	})
}

// findRegions walks a function body looking for merge regions and
// checks each one. Regions may nest; each is checked independently.
func findRegions(pass *lint.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			switch info.TypeOf(n.X).Underlying().(type) {
			case *types.Map:
				checkRegion(pass, n, n.Body, "map iteration")
			case *types.Chan:
				checkRegion(pass, n, n.Body, "channel merge")
			}
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				checkRegion(pass, n, &ast.BlockStmt{List: cc.Body}, "select merge")
			}
		}
		return true
	})
}

// checkRegion flags order-dependent folds inside one merge region.
// region is the enclosing statement (its source extent decides which
// variables count as "outer"); body is the code that runs per arrival.
func checkRegion(pass *lint.Pass, region ast.Node, body *ast.BlockStmt, kind string) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if isCompoundFloat(info, n) {
				if tgt := outerTarget(pass, region, n.Lhs[0]); tgt != "" {
					pass.Reportf(n.Pos(),
						"order-dependent float accumulation into %s in a %s: float "+
							"addition is not associative across arrival orders; accumulate "+
							"into ID-indexed slots and reduce in a deterministic pass",
						tgt, kind)
				}
			}
		case *ast.IfStmt:
			checkSelection(pass, region, n, kind)
			// The nested bodies are revisited when their own IfStmt is
			// reached; keep descending for assignments and deeper regions.
		}
		return true
	})
}

// checkSelection examines one guarded selection: an if statement whose
// body assigns a float-bearing variable declared outside the region.
func checkSelection(pass *lint.Pass, region ast.Node, ifs *ast.IfStmt, kind string) {
	tgt := selectionTarget(pass, region, ifs.Body)
	if tgt == "" {
		return
	}
	cond := analyzeCond(pass, ifs.Cond)
	switch {
	case cond.markedCall:
		// Delegated to a checked fold: conforming.
	case cond.bareFloatCmp != token.NoPos:
		pass.Reportf(cond.bareFloatCmp,
			"order-dependent selection of %s in a %s compares floats bare: use "+
				"fptime.LessEps/EqEps with an integer tie-break on a total ID order, "+
				"or delegate to an edgelint:detfold fold", tgt, kind)
	case cond.epsCall && cond.intCmp:
		// Epsilon comparison plus integer tie-break: conforming.
	case cond.epsCall:
		pass.Reportf(ifs.Cond.Pos(),
			"selection of %s in a %s is lacking a tie-break: epsilon-equal "+
				"candidates arrive in nondeterministic order; add an integer "+
				"tie-break on a total ID order", tgt, kind)
	default:
		pass.Reportf(ifs.Cond.Pos(),
			"selection of %s in a %s does not establish a deterministic order: "+
				"compare via fptime with an integer tie-break on a total ID order, "+
				"or delegate to an edgelint:detfold fold", tgt, kind)
	}
}

// selectionTarget returns the rendered name of the first float-bearing
// variable declared outside the region that the if body assigns to, or
// "" if there is none. Index-expression targets are exempt: a write to
// an ID-indexed slot is deterministic regardless of arrival order.
func selectionTarget(pass *lint.Pass, region ast.Node, body *ast.BlockStmt) string {
	tgt := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if tgt != "" {
			return false
		}
		if _, ok := n.(*ast.IfStmt); ok {
			return false // nested selections are judged by their own condition
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if t := outerTarget(pass, region, lhs); t != "" {
				tgt = t
				return false
			}
		}
		return true
	})
	return tgt
}

// outerTarget returns the rendered name of lhs if it is an identifier
// or selector whose root variable is float-bearing and declared outside
// the region, "" otherwise.
func outerTarget(pass *lint.Pass, region ast.Node, lhs ast.Expr) string {
	info := pass.TypesInfo
	lhs = ast.Unparen(lhs)
	switch lhs.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return "" // index targets are ID-addressed slots; others out of scope
	}
	if !bearsFloat(info.TypeOf(lhs), nil) {
		return ""
	}
	root, _ := lint.DecomposePath(info, lhs)
	id, ok := root.(*ast.Ident)
	if !ok {
		return ""
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return ""
	}
	if obj.Pos() >= region.Pos() && obj.Pos() < region.End() {
		return "" // declared inside the region: per-arrival scratch
	}
	return render(lhs)
}

// condFacts summarizes what a selection condition establishes.
type condFacts struct {
	markedCall   bool      // calls an edgelint:detfold-marked fold
	epsCall      bool      // calls an fptime epsilon helper
	intCmp       bool      // orders integers somewhere (the tie-break)
	bareFloatCmp token.Pos // position of a bare float ordering comparison
}

func analyzeCond(pass *lint.Pass, cond ast.Expr) condFacts {
	info := pass.TypesInfo
	var cf condFacts
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := lint.CalleeFunc(info, n)
			if fn == nil {
				return true
			}
			if _, ok := pass.ImportFact(lint.FactFold, fn); ok {
				cf.markedCall = true
			}
			if isEpsHelper(fn) {
				cf.epsCall = true
			}
		case *ast.BinaryExpr:
			if !isOrdering(n.Op) {
				return true
			}
			if lint.IsFloat(info.TypeOf(n.X)) || lint.IsFloat(info.TypeOf(n.Y)) {
				if cf.bareFloatCmp == token.NoPos {
					cf.bareFloatCmp = n.Pos()
				}
			} else if isInteger(info.TypeOf(n.X)) || isInteger(info.TypeOf(n.Y)) {
				cf.intCmp = true
			}
		}
		return true
	})
	return cf
}

// isEpsHelper recognizes the fptime tolerance helpers: any function of
// a package named fptime, or one whose name mentions Eps.
func isEpsHelper(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Name() == "fptime" {
		return true
	}
	return strings.Contains(fn.Name(), "Eps")
}

func isOrdering(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// isCompoundFloat reports whether as is a +=/-=/*=//= whose (single)
// target carries floating-point state.
func isCompoundFloat(info *types.Info, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	return len(as.Lhs) == 1 && lint.IsFloat(info.TypeOf(as.Lhs[0]))
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// bearsFloat reports whether t transitively carries floating-point
// state: a float basic type, or a struct/array/slice/map/pointer whose
// element or field does. seen guards recursive types.
func bearsFloat(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if bearsFloat(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return bearsFloat(u.Elem(), seen)
	case *types.Slice:
		return bearsFloat(u.Elem(), seen)
	case *types.Map:
		return bearsFloat(u.Elem(), seen)
	case *types.Pointer:
		return bearsFloat(u.Elem(), seen)
	}
	return false
}

// render prints an ident or selector path for diagnostics.
func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	}
	return "value"
}
