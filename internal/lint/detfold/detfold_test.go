package detfold_test

import (
	"testing"

	"repro/internal/lint/detfold"
	"repro/internal/lint/linttest"
)

func TestDetFold(t *testing.T) {
	linttest.Run(t, detfold.Analyzer, "a")
}

// TestDetFoldCrossPackage checks that the edgelint:detfold mark on
// xa.Better travels as a fact: xb's map merge is conforming only
// through that delegation.
func TestDetFoldCrossPackage(t *testing.T) {
	linttest.Run(t, detfold.Analyzer, "xa", "xb")
}
