package lint

import (
	"go/token"
	"reflect"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		comment string
		want    []string
	}{
		{"// edgelint:ignore floateq — deliberate exact comparison", []string{"floateq"}},
		{"// edgelint:ignore floateq, errflow -- both justified here", []string{"floateq", "errflow"}},
		{"// edgelint:ignore all — generated file", []string{"all"}},
		{"// plain comment", nil},
		{"/* edgelint:ignore seededrand — block form */", []string{"seededrand"}},
		{"// edgelint:ignore clonecheck,immutable — comma-joined multi-analyzer", []string{"clonecheck", "immutable"}},
		{"// edgelint:ignore clonecheck,immutable,aliasret -- three at once", []string{"clonecheck", "immutable", "aliasret"}},
		{"// edgelint:ignore", nil},
		{"// edgelint:ignorenothing — different directive", nil},
	}
	for _, c := range cases {
		if got := parseIgnore(c.comment); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.comment, got, c.want)
		}
	}
}

func TestDirective(t *testing.T) {
	cases := []struct {
		comment string
		name    string
		args    []string
		found   bool
	}{
		{"// edgelint:immutable AddTask AddEdge — frozen", "immutable", []string{"AddTask", "AddEdge"}, true},
		{"// edgelint:immutable — no constructors", "immutable", nil, true},
		{"// edgelint:immutable", "immutable", nil, true},
		{"// edgelint:shared routeCache — concurrency-safe", "shared", []string{"routeCache"}, true},
		{"// edgelint:shared — concurrency-safe", "shared", nil, true},
		{"// edgelint:sharedX — boundary must hold", "shared", nil, false},
		{"// a plain comment mentioning edgelint", "shared", nil, false},
		{"/* edgelint:immutable A,B — block, commas */", "immutable", []string{"A", "B"}, true},
	}
	for _, c := range cases {
		args, found := Directive(c.comment, c.name)
		if found != c.found || !reflect.DeepEqual(args, c.args) {
			t.Errorf("Directive(%q, %q) = %v, %v; want %v, %v",
				c.comment, c.name, args, found, c.args, c.found)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "floateq",
		Message:  "bare comparison",
	}
	if got, want := d.String(), "x.go:3:7: bare comparison (floateq)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
