package lint

import (
	"go/token"
	"reflect"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		comment string
		want    []string
	}{
		{"// edgelint:ignore floateq — deliberate exact comparison", []string{"floateq"}},
		{"// edgelint:ignore floateq, errflow -- both justified here", []string{"floateq", "errflow"}},
		{"// edgelint:ignore all — generated file", []string{"all"}},
		{"// plain comment", nil},
		{"/* edgelint:ignore seededrand — block form */", []string{"seededrand"}},
	}
	for _, c := range cases {
		if got := parseIgnore(c.comment); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.comment, got, c.want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "floateq",
		Message:  "bare comparison",
	}
	if got, want := d.String(), "x.go:3:7: bare comparison (floateq)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
