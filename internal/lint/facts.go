// Cross-package facts. The framework type-checks each package unit
// from source but resolves its imports through gc export data, which
// preserves types and nothing else: comments — and with them the
// edgelint:immutable / edgelint:shared / edgelint:detfold markers — do
// not survive the package boundary. Facts close that gap, in the
// spirit of golang.org/x/tools/go/analysis facts: while a unit is
// analyzed, marker directives and analyzer-computed function summaries
// are exported into a driver-wide store under a position-independent
// object key; units analyzed later (drivers process units in
// dependency order) look the facts up through the imported objects.
//
// Keys deliberately avoid types.Object identity: every unit
// type-checks in its own importer universe, so the *types.TypeName for
// dag.Graph seen by internal/sched is not pointer-identical to the one
// defined when internal/dag itself was analyzed. ObjectKey reduces
// both to "repro/internal/dag.Graph".

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Fact kinds exported by the framework's marker pre-pass. Analyzers
// export their own kinds (e.g. "txnjournal.summary") with Pass.ExportFact.
const (
	// FactImmutable marks a type frozen after construction
	// (edgelint:immutable on its declaration). Value: *ImmutableMark.
	FactImmutable = "mark.immutable"
	// FactShared lists the struct fields annotated shared-by-design
	// (edgelint:shared). Value: SharedFields.
	FactShared = "mark.shared"
	// FactFold marks a function as a conforming deterministic fold
	// (edgelint:detfold on its declaration). Value: *FoldMark.
	FactFold = "mark.detfold"
	// FactHasClone marks a type that declares a Clone (or clone)
	// method of signature func() T / func() *T. Value: *CloneMark.
	FactHasClone = "mark.clone"
	// FactNoAlloc marks a function whose steady-state paths must not
	// allocate (edgelint:noalloc on its declaration). Value: *NoAllocMark.
	FactNoAlloc = "mark.noalloc"
	// FactColdPath marks a function as a cold path: reachable from
	// noalloc roots but exempt from the allocation discipline
	// (edgelint:coldpath on its declaration). Value: *ColdMark.
	FactColdPath = "mark.coldpath"
)

// ImmutableMark is the FactImmutable value: where the marker was
// declared and which functions of that package may write the type.
type ImmutableMark struct {
	// Pkg is the declaring package's import path; constructor names
	// bind only there (a function named AddTask in another package is
	// not the constructor).
	Pkg string
	// Ctors are the allowed writer names, sorted.
	Ctors []string
}

// Allows reports whether fn, declared in package pkg, may write the
// marked type.
func (m *ImmutableMark) Allows(pkg, fn string) bool {
	if pkg != m.Pkg {
		return false
	}
	for _, c := range m.Ctors {
		if c == fn {
			return true
		}
	}
	return false
}

// CtorList renders the allowed writers for diagnostics.
func (m *ImmutableMark) CtorList() []string { return m.Ctors }

// SharedFields is the FactShared value: field names of a struct type
// annotated edgelint:shared.
type SharedFields map[string]bool

// FoldMark is the FactFold value.
type FoldMark struct{}

// CloneMark is the FactHasClone value.
type CloneMark struct{}

// NoAllocMark is the FactNoAlloc value.
type NoAllocMark struct{}

// ColdMark is the FactColdPath value.
type ColdMark struct{}

// Facts is the driver-wide fact store shared by every unit of one
// lint run. It is not safe for concurrent use; drivers analyze units
// sequentially in dependency order.
type Facts struct {
	m map[factKey]any
}

type factKey struct {
	kind string
	obj  string
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: map[factKey]any{}} }

// Export records a fact of the given kind about obj, replacing any
// previous value.
func (f *Facts) Export(kind string, obj types.Object, fact any) {
	f.m[factKey{kind: kind, obj: ObjectKey(obj)}] = fact
}

// Import returns the fact of the given kind about obj, however many
// packages away it was exported.
func (f *Facts) Import(kind string, obj types.Object) (any, bool) {
	v, ok := f.m[factKey{kind: kind, obj: ObjectKey(obj)}]
	return v, ok
}

// ObjectKey is the position- and universe-independent identity of a
// package-level object: "pkgpath.Name" for types, functions and
// variables, "pkgpath.Recv.Name" for methods. Objects from different
// type-check universes (source-checked vs export-data-imported) map to
// the same key.
func ObjectKey(obj types.Object) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if n := NamedOf(sig.Recv().Type()); n != nil {
				return pkg + "." + n.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return pkg + "." + obj.Name()
}

// ExportMarkers is the framework pre-pass run on every unit before its
// analyzers: it exports the directive-declared facts — immutable
// marks, shared fields, detfold marks — and the Clone-method
// classification, so downstream units (and this unit's own analyzers)
// see them uniformly through the fact store.
func ExportMarkers(u *Unit, facts *Facts) {
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok == token.TYPE {
					for _, s := range d.Specs {
						ts, ok := s.(*ast.TypeSpec)
						if !ok {
							continue
						}
						exportTypeMarkers(u, facts, d, ts)
					}
				}
			case *ast.FuncDecl:
				exportFuncMarkers(u, facts, d)
			}
		}
	}
}

// exportTypeMarkers handles one type spec: edgelint:immutable on the
// doc comment, edgelint:shared on the doc comment (naming fields) or
// on individual field doc/line comments.
func exportTypeMarkers(u *Unit, facts *Facts, gd *ast.GenDecl, ts *ast.TypeSpec) {
	obj, ok := u.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	doc := ts.Doc
	if doc == nil && len(gd.Specs) == 1 {
		doc = gd.Doc
	}
	var immutable bool
	var ctors []string
	shared := SharedFields{}
	if doc != nil {
		for _, c := range doc.List {
			if args, ok := Directive(c.Text, "immutable"); ok {
				immutable = true
				ctors = append(ctors, args...)
			}
			if args, ok := Directive(c.Text, "shared"); ok {
				for _, a := range args {
					shared[a] = true
				}
			}
		}
	}
	if st, ok := ts.Type.(*ast.StructType); ok {
		for _, field := range st.Fields.List {
			marked := false
			for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
				if cg == nil {
					continue
				}
				for _, c := range cg.List {
					if _, ok := Directive(c.Text, "shared"); ok {
						marked = true
					}
				}
			}
			if !marked {
				continue
			}
			for _, name := range field.Names {
				shared[name.Name] = true
			}
			if len(field.Names) == 0 { // embedded field
				if tv, ok := u.Info.Types[field.Type]; ok {
					if n := NamedOf(tv.Type); n != nil {
						shared[n.Obj().Name()] = true
					}
				}
			}
		}
	}
	if immutable {
		sort.Strings(ctors)
		pkg := ""
		if obj.Pkg() != nil {
			pkg = obj.Pkg().Path()
		}
		facts.Export(FactImmutable, obj, &ImmutableMark{Pkg: pkg, Ctors: ctors})
	}
	if len(shared) > 0 {
		facts.Export(FactShared, obj, shared)
	}
}

// exportFuncMarkers handles one function declaration: edgelint:detfold
// on the doc comment, and the Clone-method classification of its
// receiver type.
func exportFuncMarkers(u *Unit, facts *Facts, fd *ast.FuncDecl) {
	obj, ok := u.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if _, ok := Directive(c.Text, "detfold"); ok {
				facts.Export(FactFold, obj, &FoldMark{})
			}
			if _, ok := Directive(c.Text, "noalloc"); ok {
				facts.Export(FactNoAlloc, obj, &NoAllocMark{})
			}
			if _, ok := Directive(c.Text, "coldpath"); ok {
				facts.Export(FactColdPath, obj, &ColdMark{})
			}
		}
	}
	if fd.Recv == nil || (fd.Name.Name != "Clone" && fd.Name.Name != "clone") {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return
	}
	if recv := NamedOf(sig.Recv().Type()); recv != nil {
		facts.Export(FactHasClone, recv.Obj(), &CloneMark{})
	}
}
