package txnjournal_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/txnjournal"
)

func TestTxnJournal(t *testing.T) {
	linttest.Run(t, txnjournal.Analyzer, "a")
}

// TestTxnJournalCrossPackage checks that function summaries cross
// package boundaries: xb's placeTask must satisfy the journal
// requirements and alias-store proofs of helpers defined in xa.
func TestTxnJournalCrossPackage(t *testing.T) {
	linttest.Run(t, txnjournal.Analyzer, "xa", "xb")
}
