package txnjournal_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/txnjournal"
)

func TestTxnJournal(t *testing.T) {
	linttest.Run(t, txnjournal.Analyzer, "a")
}
