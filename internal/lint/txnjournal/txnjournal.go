// Package txnjournal enforces the copy-on-write transaction-journal
// discipline of the scheduler's probe rollback (internal/sched/txn.go):
// within the call graph reachable from placeTask, every store to a
// journaled state field must be dominated by the matching journal call
// on the same receiver, or rollback silently restores stale values —
// the silent-rollback hole this analyzer exists to close.
package txnjournal

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags un-journaled stores to transactional scheduler state.
var Analyzer = &lint.Analyzer{
	Name: "txnjournal",
	Doc: "Within the call graph reachable from a placeTask method, every " +
		"store to a journaled state field (tasks, procFinish, edges, tl, bw, " +
		"ptl, dups) — field assignment, element store, append, mutating " +
		"method call, or mutation through an aliased *EdgeSchedule — must be " +
		"dominated by the matching touchTask/touchProc/touchEdge/cowEdge/" +
		"touchTimeline/touchBWTimeline/touchProcTimeline/touchDup call on the " +
		"same receiver. Un-journaled stores survive rollback and corrupt " +
		"every later probe. Suppress intentional exceptions with " +
		"`edgelint:ignore txnjournal — reason`.",
	Run: run,
}

// journalFor maps each journaled field of the transactional state type
// to the journal calls that cover a store through it. The table mirrors
// the txn struct in internal/sched/txn.go.
var journalFor = map[string][]string{
	"tasks":      {"touchTask"},
	"procFinish": {"touchProc"},
	"edges":      {"touchEdge", "cowEdge"},
	"tl":         {"touchTimeline"},
	"bw":         {"touchBWTimeline"},
	"ptl":        {"touchProcTimeline"},
	"dups":       {"touchDup"},
}

// kernel names the journal primitives themselves: their bodies perform
// the journaled (and the restoring) stores and are trusted, and calls
// into them are never followed for reachability.
var kernel = map[string]bool{
	"touchTask": true, "touchProc": true, "touchEdge": true, "cowEdge": true,
	"touchTimeline": true, "touchBWTimeline": true, "touchProcTimeline": true,
	"touchDup": true, "begin": true, "rollback": true,
}

// readOnlyPrefixes classifies method calls on journaled timeline fields
// that inspect without mutating (probes, estimates, snapshots, sizes).
// Any other method name on a journaled field counts as a store.
var readOnlyPrefixes = []string{
	"Probe", "Estimate", "Snapshot", "Clone", "Num", "Len",
	"Slots", "Segments", "Last", "Util", "Valid", "String",
}

func readOnly(name string) bool {
	for _, p := range readOnlyPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	// Index every function declaration and find the placeTask roots.
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if fd.Recv != nil && fd.Name.Name == "placeTask" {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	reported := map[lineKey]bool{}
	for _, root := range roots {
		sig, ok := root.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		stateNamed := lint.NamedOf(sig.Recv().Type())
		if stateNamed == nil {
			continue
		}
		for _, fn := range reachable(pass.TypesInfo, decls, root) {
			checkFunc(pass, stateNamed, decls[fn], reported)
		}
	}
	return nil
}

// reachable returns the in-package functions reachable from root by
// direct calls, excluding the journal kernel.
func reachable(info *types.Info, decls map[*types.Func]*ast.FuncDecl, root *types.Func) []*types.Func {
	seen := map[*types.Func]bool{root: true}
	order := []*types.Func{root}
	for i := 0; i < len(order); i++ {
		fd := decls[order[i]]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lint.CalleeFunc(info, call)
			if callee == nil || seen[callee] || kernel[callee.Name()] {
				return true
			}
			if decls[callee] == nil {
				return true // other package, or no body in this unit
			}
			seen[callee] = true
			order = append(order, callee)
			return true
		})
	}
	return order
}

// lineKey dedups diagnostics: one report per file line and field.
type lineKey struct {
	file  string
	line  int
	field string
}

// event is a journal call or a store, located by position and by its
// chain of enclosing branch scopes.
type event struct {
	pos   token.Pos
	chain []ast.Node   // innermost-last branch scopes enclosing the event
	recv  types.Object // root receiver variable (the state value)
	name  string       // journal events: the journal method's name
	field string       // store events: the journaled field written
	desc  string       // store events: diagnostic phrasing of the store
}

// checkFunc verifies one reachable function: every store through a
// journaled field of stateNamed must be dominated — same receiver,
// earlier position, enclosing branch chain a prefix of the store's —
// by a covering journal call.
func checkFunc(pass *lint.Pass, stateNamed *types.Named, fd *ast.FuncDecl, reported map[lineKey]bool) {
	if fd == nil || fd.Body == nil {
		return
	}
	info := pass.TypesInfo
	fresh := lint.NewFreshness(info, fd.Body)
	esPtr := edgeElemType(stateNamed)

	var journals, stores []event
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		chain := branchChain(stack[:len(stack)-1])
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				// Builtin append/copy stores are collected below.
				if w := builtinStore(info, n); w != nil {
					if ev, ok := storeEvent(info, stateNamed, w, "append to"); ok {
						ev.chain = chain
						stores = append(stores, ev)
					}
				}
				return true
			}
			name := sel.Sel.Name
			if _, isJournal := kernel[name]; isJournal && name != "begin" && name != "rollback" {
				if field, root := stateField(info, stateNamed, sel.X); field == "" && root != nil {
					// Plain receiver (s.touchTask): record a journal event.
					if obj := identObj(info, root); obj != nil {
						journals = append(journals, event{pos: n.Pos(), chain: chain, recv: obj, name: name})
					}
				}
				return true
			}
			if readOnly(name) {
				return true
			}
			if field, root := stateField(info, stateNamed, sel.X); field != "" && journalFor[field] != nil && root != nil {
				if obj := identObj(info, root); obj != nil {
					stores = append(stores, event{
						pos: n.Pos(), chain: chain, recv: obj, field: field,
						desc: "mutating call " + name + " on",
					})
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if ev, ok := storeEvent(info, stateNamed, lhs, "store to"); ok {
					ev.chain = chain
					stores = append(stores, ev)
					continue
				}
				checkAliasStore(pass, stateNamed, esPtr, fresh, lhs, reported)
			}
		case *ast.IncDecStmt:
			if ev, ok := storeEvent(info, stateNamed, n.X, "store to"); ok {
				ev.chain = chain
				stores = append(stores, ev)
			} else {
				checkAliasStore(pass, stateNamed, esPtr, fresh, n.X, reported)
			}
		}
		return true
	})

	for _, st := range stores {
		if dominated(st, journals) {
			continue
		}
		// One diagnostic per field and line: `s.dups = append(s.dups, x)`
		// is one logical store, not an assignment plus an append.
		p := pass.Fset.Position(st.pos)
		key := lineKey{file: p.Filename, line: p.Line, field: st.field}
		if reported[key] {
			continue
		}
		reported[key] = true
		pass.Reportf(st.pos,
			"%s journaled field %s.%s is not dominated by %s on the same receiver; "+
				"rollback cannot restore this store (journal first, or annotate with edgelint:ignore txnjournal)",
			st.desc, stateNamed.Obj().Name(), st.field, orList(journalFor[st.field]))
	}
}

// dominated reports whether a covering journal call precedes the store
// within the same (or an enclosing) branch scope on the same receiver.
func dominated(st event, journals []event) bool {
	for _, j := range journals {
		if j.recv != st.recv || j.pos >= st.pos {
			continue
		}
		if !covers(j.name, st.field) {
			continue
		}
		if chainPrefix(j.chain, st.chain) {
			return true
		}
	}
	return false
}

func covers(journal, field string) bool {
	for _, n := range journalFor[field] {
		if n == journal {
			return true
		}
	}
	return false
}

// chainPrefix reports whether the journal call's branch chain is a
// prefix of the store's: the store then cannot execute without the
// journal call's scope having been entered first (and the position
// check orders them within it).
func chainPrefix(j, s []ast.Node) bool {
	if len(j) > len(s) {
		return false
	}
	for i := range j {
		if j[i] != s[i] {
			return false
		}
	}
	return true
}

// branchChain filters an ancestor stack down to the nodes that make
// execution conditional or repeated: loop statements, function
// literals, switch/select clauses, and the then/else arms of if
// statements (the arms themselves, so a journal call in one arm does
// not dominate a store in the other).
func branchChain(stack []ast.Node) []ast.Node {
	var chain []ast.Node
	for i, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit, *ast.CaseClause, *ast.CommClause:
			chain = append(chain, n)
		default:
			if i > 0 {
				if p, ok := stack[i-1].(*ast.IfStmt); ok && (n == p.Body || n == p.Else) {
					chain = append(chain, n)
				}
			}
		}
	}
	return chain
}

// storeEvent classifies a written path as a store through a journaled
// field of the state type, resolving the root receiver identifier.
func storeEvent(info *types.Info, stateNamed *types.Named, e ast.Expr, verb string) (event, bool) {
	field, root := stateField(info, stateNamed, e)
	if field == "" || journalFor[field] == nil || root == nil {
		return event{}, false
	}
	obj := identObj(info, root)
	if obj == nil {
		return event{}, false
	}
	return event{pos: e.Pos(), recv: obj, field: field, desc: verb}, true
}

// checkAliasStore flags stores through a local *EdgeSchedule that
// aliases the live s.edges slice: such a pointer must come from cowEdge
// (which journals and clones) — a pointer read straight from s.edges
// predates the transaction and rollback cannot restore writes through
// it. Fresh schedules (composite literals, constructor results) and
// unresolvable roots (parameters) are skipped.
func checkAliasStore(pass *lint.Pass, stateNamed *types.Named, esPtr types.Type, fresh *lint.Freshness, e ast.Expr, reported map[lineKey]bool) {
	if esPtr == nil {
		return
	}
	root, _ := lint.DecomposePath(pass.TypesInfo, e)
	id, ok := ast.Unparen(root).(*ast.Ident)
	if !ok || root == ast.Unparen(e) {
		return // bare variable overwrite, not a store through the alias
	}
	obj := identObj(pass.TypesInfo, id)
	if obj == nil || !types.Identical(obj.Type(), esPtr) {
		return
	}
	def := fresh.ResolveDef(obj, e.Pos())
	for i := 0; i < 10; i++ {
		did, ok := ast.Unparen(def).(*ast.Ident)
		if !ok {
			break
		}
		dobj := identObj(pass.TypesInfo, did)
		if dobj == nil {
			break
		}
		def = fresh.ResolveDef(dobj, did.Pos())
	}
	if def == nil {
		return // parameter or unknown origin: out of scope by design
	}
	if call, ok := ast.Unparen(def).(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "cowEdge" {
			return // journaled clone: safe to mutate
		}
	}
	if field, _ := stateField(pass.TypesInfo, stateNamed, def); field == "edges" {
		p := pass.Fset.Position(e.Pos())
		key := lineKey{file: p.Filename, line: p.Line, field: "edges-alias"}
		if !reported[key] {
			reported[key] = true
			pass.Reportf(e.Pos(),
				"store through *%s aliasing %s.edges; obtain the schedule from cowEdge so rollback can restore it "+
					"(or annotate with edgelint:ignore txnjournal)",
				lint.NamedOf(esPtr).Obj().Name(), stateNamed.Obj().Name())
		}
	}
	// Anything else — fresh allocation, clone result — is safe or out
	// of scope.
}

// stateField unwinds a path expression to its root identifier and
// returns the field name selected directly off the state type (the
// innermost such selector), or "" when the path never passes through
// the state.
func stateField(info *types.Info, stateNamed *types.Named, e ast.Expr) (string, *ast.Ident) {
	field := ""
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if t := info.TypeOf(x.X); t != nil {
				if n := lint.NamedOf(t); n != nil && n.Obj() == stateNamed.Obj() {
					field = x.Sel.Name
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return field, x
		default:
			return field, nil
		}
	}
}

// edgeElemType returns the element type of the state's edges field
// (the *EdgeSchedule pointer type), or nil.
func edgeElemType(stateNamed *types.Named) types.Type {
	st, ok := stateNamed.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "edges" {
			continue
		}
		switch u := f.Type().Underlying().(type) {
		case *types.Slice:
			return u.Elem()
		case *types.Map:
			return u.Elem()
		}
	}
	return nil
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// builtinStore returns the written path of a builtin append/copy call,
// or nil.
func builtinStore(info *types.Info, call *ast.CallExpr) ast.Expr {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if id.Name == "append" || id.Name == "copy" {
		return call.Args[0]
	}
	return nil
}

func orList(names []string) string {
	return strings.Join(names, " or ")
}
