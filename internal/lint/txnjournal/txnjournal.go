// Package txnjournal enforces the copy-on-write transaction-journal
// discipline of the scheduler's probe rollback (internal/sched/txn.go):
// within the call graph reachable from placeTask, every store to a
// journaled state field must be dominated by the matching journal call
// on the same receiver, or rollback silently restores stale values —
// the silent-rollback hole this analyzer exists to close.
//
// Domination is inter-procedural via function summaries. Each function
// is summarized bottom-up: a store not dominated by a journal call in
// its own body becomes a requirement the caller must satisfy (a
// covering journal on the same receiver before the call), and
// requirements that no caller satisfies surface at the placeTask root.
// Summaries are exported as facts, so a helper living in another
// package imposes its requirements on importing callers even though
// its body is never re-analyzed there. Functions that store through a
// *EdgeSchedule parameter are likewise summarized, and every call site
// must prove the argument came from cowEdge (or a fresh allocation)
// rather than the live edges slice.
//
// Transactional state types are recognized structurally: a named
// struct with at least one journaled field (tasks, procFinish, edges,
// tl, bw, ptl, dups) and at least one journal kernel method
// (touchTask, …, cowEdge, begin, rollback). Exported spellings count:
// a fixture or future package with Tasks/TouchTask fields and methods
// is held to the same discipline.
package txnjournal

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"repro/internal/lint"
)

// Analyzer flags un-journaled stores to transactional scheduler state.
var Analyzer = &lint.Analyzer{
	Name: "txnjournal",
	Doc: "Within the call graph reachable from a placeTask method, every " +
		"store to a journaled state field (tasks, procFinish, edges, tl, bw, " +
		"ptl, dups) — field assignment, element store, append, mutating " +
		"method call, or mutation through an aliased *EdgeSchedule — must be " +
		"dominated by the matching touchTask/touchProc/touchEdge/cowEdge/" +
		"touchTimeline/touchBWTimeline/touchProcTimeline/touchDup call on the " +
		"same receiver, in the storing function or (via function summaries, " +
		"which cross package boundaries as facts) in a caller. Un-journaled " +
		"stores survive rollback and corrupt every later probe. Suppress " +
		"intentional exceptions with `edgelint:ignore txnjournal — reason`.",
	Run: run,
}

// FactSummary carries a *Summary per function: the journal
// requirements its callers must satisfy and the pointer parameters it
// stores through.
const FactSummary = "txnjournal.summary"

// Req is one journal requirement a function imposes on its callers: a
// store to a journaled field that no journal call inside the function
// dominates.
type Req struct {
	// Param says which caller value the store goes through: -1 the
	// method receiver, >= 0 a parameter index, -2 unmappable (a local
	// alias of the state; no caller journal can be matched to it, so
	// the requirement escalates unconditionally).
	Param int
	// Field is the canonical (lowercased) journaled field key.
	Field string
	// FieldName and State carry the source spellings for diagnostics.
	FieldName string
	State     string
	// Desc phrases the store ("store to", "append to", "mutating call
	// InsertBasic on").
	Desc string
	// Pos anchors the diagnostic: the original store for requirements
	// that stayed inside their package, the call site where the
	// requirement crossed a package boundary.
	Pos token.Pos
	// Cross marks a requirement that crossed a package boundary; Where
	// then names the function containing the store.
	Cross bool
	Where string
}

// Summary is the exported per-function fact.
type Summary struct {
	Reqs []Req
	// AliasStores[i] reports that the function stores through its i-th
	// parameter (a pointer into journaled state, e.g. *EdgeSchedule):
	// callers must pass a cowEdge result or fresh allocation.
	AliasStores []bool
}

// journalFor maps each journaled field of the transactional state type
// to the journal calls that cover a store through it. The table mirrors
// the txn struct in internal/sched/txn.go.
var journalFor = map[string][]string{
	"tasks":      {"touchTask"},
	"procFinish": {"touchProc"},
	"edges":      {"touchEdge", "cowEdge"},
	"tl":         {"touchTimeline"},
	"bw":         {"touchBWTimeline"},
	"ptl":        {"touchProcTimeline"},
	"dups":       {"touchDup"},
}

// kernel names the journal primitives themselves: their bodies perform
// the journaled (and the restoring) stores and are trusted, and calls
// into them are never followed for reachability.
var kernel = map[string]bool{
	"touchTask": true, "touchProc": true, "touchEdge": true, "cowEdge": true,
	"touchTimeline": true, "touchBWTimeline": true, "touchProcTimeline": true,
	"touchDup": true, "begin": true, "rollback": true,
}

// readOnlyPrefixes classifies method calls on journaled timeline fields
// that inspect without mutating (probes, estimates, snapshots, sizes).
// Any other method name on a journaled field counts as a store.
var readOnlyPrefixes = []string{
	"Probe", "Estimate", "Snapshot", "Clone", "Num", "Len",
	"Slots", "Segments", "Last", "Util", "Valid", "String",
}

func readOnly(name string) bool {
	name = upperFirst(name)
	for _, p := range readOnlyPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// lowerFirst canonicalizes a field or kernel-method name: exported
// spellings (Tasks, TouchEdge) fold onto the lowercase table keys.
func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	r := []rune(s)
	r[0] = unicode.ToLower(r[0])
	return string(r)
}

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	r := []rune(s)
	r[0] = unicode.ToUpper(r[0])
	return string(r)
}

// analysis is the per-unit state of one txnjournal run.
type analysis struct {
	pass    *lint.Pass
	decls   map[*types.Func]*ast.FuncDecl
	sums    map[*types.Func]*Summary
	working map[*types.Func]bool
	// findings are alias-store diagnostics attached to the function
	// they occur in, reported only when that function is reachable
	// from a placeTask root (matching the store requirements, which
	// also only surface at roots).
	findings map[*types.Func][]finding
	// states memoizes structural transactional-state detection;
	// esTypes collects the edges element pointer types of detected
	// states (the *EdgeSchedule types whose aliasing is checked).
	states  map[*types.TypeName]bool
	esTypes []types.Type
}

type finding struct {
	pos token.Pos
	key string // dedup tag within a line
	msg string
}

func run(pass *lint.Pass) error {
	a := &analysis{
		pass:     pass,
		decls:    map[*types.Func]*ast.FuncDecl{},
		sums:     map[*types.Func]*Summary{},
		working:  map[*types.Func]bool{},
		findings: map[*types.Func][]finding{},
		states:   map[*types.TypeName]bool{},
	}
	// Register transactional state types up front — package-level types
	// here and in direct imports — so the aliasing checks know the
	// edges element types regardless of the order functions are
	// summarized in.
	scopes := []*types.Scope{pass.Pkg.Scope()}
	for _, imp := range pass.Pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, sc := range scopes {
		for _, name := range sc.Names() {
			if tn, ok := sc.Lookup(name).(*types.TypeName); ok {
				if n, ok := tn.Type().(*types.Named); ok {
					a.isTxnState(n)
				}
			}
		}
	}
	var order []*types.Func
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			a.decls[fn] = fd
			order = append(order, fn)
			if fd.Recv != nil && lowerFirst(fd.Name.Name) == "placeTask" {
				roots = append(roots, fn)
			}
		}
	}
	// Summarize every function (memoized, recursing through local
	// calls) and export the non-empty summaries for importing packages.
	for _, fn := range order {
		sum := a.summarize(fn)
		if len(sum.Reqs) > 0 || anyTrue(sum.AliasStores) {
			pass.ExportFact(FactSummary, fn, sum)
		}
	}
	// Requirements and alias findings surface only at placeTask roots:
	// helpers outside the transactional call graph stay unreported.
	reported := map[lineKey]bool{}
	for _, root := range roots {
		for _, r := range a.sums[root].Reqs {
			a.reportReq(r, reported)
		}
		for _, fn := range a.reachable(root) {
			for _, f := range a.findings[fn] {
				p := pass.Fset.Position(f.pos)
				key := lineKey{file: p.Filename, line: p.Line, field: f.key}
				if reported[key] {
					continue
				}
				reported[key] = true
				pass.Reportf(f.pos, "%s", f.msg)
			}
		}
	}
	return nil
}

func anyTrue(b []bool) bool {
	for _, v := range b {
		if v {
			return true
		}
	}
	return false
}

// lineKey dedups diagnostics: one report per file line and field.
type lineKey struct {
	file  string
	line  int
	field string
}

func (a *analysis) reportReq(r Req, reported map[lineKey]bool) {
	p := a.pass.Fset.Position(r.Pos)
	key := lineKey{file: p.Filename, line: p.Line, field: r.Field}
	if reported[key] {
		return
	}
	reported[key] = true
	if r.Cross {
		a.pass.Reportf(r.Pos,
			"call to %s reaches a store to journaled field %s.%s with no dominating %s on the same receiver; "+
				"rollback cannot restore it (journal before the call, or annotate with edgelint:ignore txnjournal)",
			r.Where, r.State, r.FieldName, orList(journalFor[r.Field]))
		return
	}
	a.pass.Reportf(r.Pos,
		"%s journaled field %s.%s is not dominated by %s on the same receiver; "+
			"rollback cannot restore this store (journal first, or annotate with edgelint:ignore txnjournal)",
		r.Desc, r.State, r.FieldName, orList(journalFor[r.Field]))
}

// reachable returns the in-package functions reachable from root by
// direct calls, excluding the journal kernel.
func (a *analysis) reachable(root *types.Func) []*types.Func {
	info := a.pass.TypesInfo
	seen := map[*types.Func]bool{root: true}
	order := []*types.Func{root}
	for i := 0; i < len(order); i++ {
		fd := a.decls[order[i]]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lint.CalleeFunc(info, call)
			if callee == nil || seen[callee] || kernel[lowerFirst(callee.Name())] {
				return true
			}
			if a.decls[callee] == nil {
				return true // other package, or no body in this unit
			}
			seen[callee] = true
			order = append(order, callee)
			return true
		})
	}
	return order
}

// event is a journal call, a store, or a summarized call site, located
// by position and by its chain of enclosing branch scopes.
type event struct {
	pos   token.Pos
	chain []ast.Node   // innermost-last branch scopes enclosing the event
	recv  types.Object // root receiver variable (the state value)
	name  string       // journal events: the (canonical) journal method name
	field string       // store events: canonical journaled field key
	// store events: source spellings and diagnostic phrasing
	fieldName string
	state     string
	desc      string
}

// summarize computes (and memoizes) fn's summary: the journal
// requirements its own stores and its callees' summaries impose on
// callers, and the pointer parameters it stores through. Recursion
// through a call cycle yields the in-progress (partial) summary, which
// under-approximates the cycle exactly once — acceptable, since the
// repository's transactional call graphs are acyclic.
func (a *analysis) summarize(fn *types.Func) *Summary {
	if s, ok := a.sums[fn]; ok {
		return s
	}
	if a.working[fn] {
		return &Summary{}
	}
	a.working[fn] = true
	defer func() { a.working[fn] = false }()

	sum := &Summary{}
	fd := a.decls[fn]
	if fd == nil || fd.Body == nil {
		a.sums[fn] = sum
		return sum
	}
	info := a.pass.TypesInfo
	fresh := lint.NewFreshness(info, fd.Body)
	paramOf := a.paramIndex(fd)
	sum.AliasStores = make([]bool, numParams(fn))

	type callSite struct {
		call   *ast.CallExpr
		callee *types.Func
		chain  []ast.Node
	}
	var journals, stores []event
	var calls []callSite
	var aliasExprs []ast.Expr // LHS paths checked for live-edges aliasing
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		chain := branchChain(stack[:len(stack)-1])
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !isSel {
				// Builtin append/copy stores are collected below.
				if w := builtinStore(info, n); w != nil {
					if ev, ok := a.storeEvent(w, "append to"); ok {
						ev.chain = chain
						stores = append(stores, ev)
						return true
					}
				}
				if callee := lint.CalleeFunc(info, n); callee != nil && !kernel[lowerFirst(callee.Name())] {
					calls = append(calls, callSite{call: n, callee: callee, chain: chain})
				}
				return true
			}
			name := sel.Sel.Name
			if kernel[lowerFirst(name)] {
				if lowerFirst(name) == "begin" || lowerFirst(name) == "rollback" {
					return true
				}
				if state, field, root := a.pathField(sel.X); state == "" && field == "" && root != nil {
					// Plain receiver (s.touchTask): record a journal event.
					if obj := identObj(info, root); obj != nil {
						journals = append(journals, event{pos: n.Pos(), chain: chain, recv: obj, name: lowerFirst(name)})
					}
				}
				return true
			}
			if readOnly(name) {
				return true
			}
			if state, field, root := a.pathField(sel.X); field != "" && root != nil {
				if obj := identObj(info, root); obj != nil {
					stores = append(stores, event{
						pos: n.Pos(), chain: chain, recv: obj, field: lowerFirst(field),
						fieldName: field, state: state,
						desc: "mutating call " + name + " on",
					})
				}
				return true
			}
			if callee := lint.CalleeFunc(info, n); callee != nil {
				calls = append(calls, callSite{call: n, callee: callee, chain: chain})
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if ev, ok := a.storeEvent(lhs, "store to"); ok {
					ev.chain = chain
					stores = append(stores, ev)
					continue
				}
				aliasExprs = append(aliasExprs, lhs)
			}
		case *ast.IncDecStmt:
			if ev, ok := a.storeEvent(n.X, "store to"); ok {
				ev.chain = chain
				stores = append(stores, ev)
			} else {
				aliasExprs = append(aliasExprs, n.X)
			}
		}
		return true
	})

	// Own stores: locally undominated ones become caller requirements.
	for _, st := range stores {
		if dominated(st, journals) {
			continue
		}
		param, ok := paramOf[st.recv]
		if !ok {
			param = -2
		}
		sum.Reqs = append(sum.Reqs, Req{
			Param: param, Field: st.field, FieldName: st.fieldName,
			State: st.state, Desc: st.desc, Pos: st.pos,
		})
	}

	// Own pointer-parameter stores: writes through a *EdgeSchedule
	// parameter make every call site prove its argument's origin.
	for _, e := range aliasExprs {
		a.checkAliasExpr(fn, fd, fresh, paramOf, sum, e)
	}

	// Callee requirements: satisfied by a covering journal before the
	// call on the same receiver, escalated into our own summary
	// otherwise (re-anchored at the call site when the callee lives in
	// another package — its file is not part of this unit's report).
	for _, cs := range calls {
		call := cs.call
		sub := a.calleeSummary(cs.callee)
		if sub == nil {
			continue
		}
		cross := cs.callee.Pkg() == nil || cs.callee.Pkg().Path() != a.pass.Pkg.Path()
		for _, r := range sub.Reqs {
			obj := a.mapParam(call, r.Param)
			if obj != nil && dominated(event{pos: call.Pos(), chain: cs.chain, recv: obj, field: r.Field}, journals) {
				continue
			}
			nr := r
			if obj != nil {
				if p, ok := paramOf[obj]; ok {
					nr.Param = p
				} else {
					nr.Param = -2
				}
			} else {
				nr.Param = -2
			}
			if cross && !r.Cross {
				nr.Cross = true
				nr.Pos = call.Pos()
				nr.Where = renderFunc(cs.callee)
			}
			sum.Reqs = append(sum.Reqs, nr)
		}
		for i, aliased := range sub.AliasStores {
			if !aliased || i >= len(call.Args) {
				continue
			}
			arg := call.Args[i]
			if t := info.TypeOf(arg); t == nil || !a.isEdgeElem(t) {
				continue
			}
			if org := a.aliasOrigin(fresh, arg); org.live {
				elem := "EdgeSchedule"
				if n := lint.NamedOf(info.TypeOf(arg)); n != nil {
					elem = n.Obj().Name()
				}
				a.findings[fn] = append(a.findings[fn], finding{
					pos: arg.Pos(), key: "edges-alias",
					msg: fmt.Sprintf("call to %s stores through a *%s aliasing %s.%s; "+
						"obtain the schedule from cowEdge so rollback can restore it (or annotate with edgelint:ignore txnjournal)",
						renderFunc(cs.callee), elem, org.state, org.fieldName),
				})
			}
		}
	}

	a.sums[fn] = sum
	return sum
}

// calleeSummary resolves a callee's summary: recursively for functions
// declared in this unit, through the fact store for imported ones.
func (a *analysis) calleeSummary(callee *types.Func) *Summary {
	if a.decls[callee] != nil {
		return a.summarize(callee)
	}
	if fact, ok := a.pass.ImportFact(FactSummary, callee); ok {
		return fact.(*Summary)
	}
	return nil
}

// mapParam resolves which caller variable a callee requirement's
// parameter corresponds to at this call site: the receiver expression
// for -1, the argument for an index. Returns the root identifier's
// object, or nil when unmappable.
func (a *analysis) mapParam(call *ast.CallExpr, param int) types.Object {
	var e ast.Expr
	switch {
	case param == -1:
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		e = sel.X
	case param >= 0 && param < len(call.Args):
		e = call.Args[param]
	default:
		return nil
	}
	root, _ := lint.DecomposePath(a.pass.TypesInfo, e)
	id, ok := ast.Unparen(root).(*ast.Ident)
	if !ok {
		return nil
	}
	return identObj(a.pass.TypesInfo, id)
}

// paramIndex maps the receiver variable to -1 and each named parameter
// to its index.
func (a *analysis) paramIndex(fd *ast.FuncDecl) map[types.Object]int {
	m := map[types.Object]int{}
	info := a.pass.TypesInfo
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		for _, name := range fd.Recv.List[0].Names {
			if obj := info.Defs[name]; obj != nil {
				m[obj] = -1
			}
		}
	}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					m[obj] = i
				}
				i++
			}
		}
	}
	return m
}

func numParams(fn *types.Func) int {
	if sig, ok := fn.Type().(*types.Signature); ok {
		return sig.Params().Len()
	}
	return 0
}

// renderFunc names a function for cross-package diagnostics:
// "xa.Scale", "xa.State.SetTask".
func renderFunc(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := lint.NamedOf(sig.Recv().Type()); n != nil {
			return pkg + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// dominated reports whether a covering journal call precedes the store
// within the same (or an enclosing) branch scope on the same receiver.
func dominated(st event, journals []event) bool {
	for _, j := range journals {
		if j.recv != st.recv || j.pos >= st.pos {
			continue
		}
		if !covers(j.name, st.field) {
			continue
		}
		if chainPrefix(j.chain, st.chain) {
			return true
		}
	}
	return false
}

func covers(journal, field string) bool {
	for _, n := range journalFor[field] {
		if n == journal {
			return true
		}
	}
	return false
}

// chainPrefix reports whether the journal call's branch chain is a
// prefix of the store's: the store then cannot execute without the
// journal call's scope having been entered first (and the position
// check orders them within it).
func chainPrefix(j, s []ast.Node) bool {
	if len(j) > len(s) {
		return false
	}
	for i := range j {
		if j[i] != s[i] {
			return false
		}
	}
	return true
}

// branchChain filters an ancestor stack down to the nodes that make
// execution conditional or repeated: loop statements, function
// literals, switch/select clauses, and the then/else arms of if
// statements (the arms themselves, so a journal call in one arm does
// not dominate a store in the other).
func branchChain(stack []ast.Node) []ast.Node {
	var chain []ast.Node
	for i, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit, *ast.CaseClause, *ast.CommClause:
			chain = append(chain, n)
		default:
			if i > 0 {
				if p, ok := stack[i-1].(*ast.IfStmt); ok && (n == p.Body || n == p.Else) {
					chain = append(chain, n)
				}
			}
		}
	}
	return chain
}

// storeEvent classifies a written path as a store through a journaled
// field of a transactional state type, resolving the root receiver
// identifier.
func (a *analysis) storeEvent(e ast.Expr, verb string) (event, bool) {
	state, field, root := a.pathField(e)
	if field == "" || root == nil {
		return event{}, false
	}
	obj := identObj(a.pass.TypesInfo, root)
	if obj == nil {
		return event{}, false
	}
	return event{
		pos: e.Pos(), recv: obj, field: lowerFirst(field),
		fieldName: field, state: state, desc: verb,
	}, true
}

// aliasOriginInfo describes what a *EdgeSchedule expression was read
// from.
type aliasOriginInfo struct {
	live      bool // read straight off the live edges slice
	state     string
	fieldName string
}

// aliasOrigin resolves what e's value aliases, following local
// definitions: a cowEdge result and fresh allocations are safe, a read
// of a state's live edges field is not, parameters and unknowns are
// out of scope.
func (a *analysis) aliasOrigin(fresh *lint.Freshness, e ast.Expr) aliasOriginInfo {
	def := ast.Unparen(e)
	for i := 0; i < 10; i++ {
		id, ok := ast.Unparen(def).(*ast.Ident)
		if !ok {
			break
		}
		obj := identObj(a.pass.TypesInfo, id)
		if obj == nil {
			return aliasOriginInfo{}
		}
		next := fresh.ResolveDef(obj, id.Pos())
		if next == nil {
			return aliasOriginInfo{} // parameter or unknown origin
		}
		def = next
	}
	if _, ok := ast.Unparen(def).(*ast.CallExpr); ok {
		// A call result: cowEdge (journaled clone), clones and
		// constructors are all safe to mutate.
		return aliasOriginInfo{}
	}
	if state, field, _ := a.pathField(def); lowerFirst(field) == "edges" {
		return aliasOriginInfo{live: true, state: state, fieldName: field}
	}
	return aliasOriginInfo{}
}

// checkAliasExpr flags stores through a local *EdgeSchedule that
// aliases the live edges slice: such a pointer must come from cowEdge
// (which journals and clones) — a pointer read straight from s.edges
// predates the transaction and rollback cannot restore writes through
// it. Fresh schedules (composite literals, constructor results) and
// unresolvable roots (parameters) are skipped, but a parameter that is
// stored through is recorded in the summary so call sites take over
// the proof.
func (a *analysis) checkAliasExpr(fn *types.Func, fd *ast.FuncDecl, fresh *lint.Freshness,
	paramOf map[types.Object]int, sum *Summary, e ast.Expr) {

	root, _ := lint.DecomposePath(a.pass.TypesInfo, e)
	id, ok := ast.Unparen(root).(*ast.Ident)
	if !ok || root == ast.Unparen(e) {
		return // bare variable overwrite, not a store through the alias
	}
	obj := identObj(a.pass.TypesInfo, id)
	if obj == nil || !a.isEdgeElem(obj.Type()) {
		return
	}
	if p, ok := paramOf[obj]; ok && p >= 0 {
		// Store through a pointer parameter: the origin proof moves to
		// the call sites via the summary.
		if p < len(sum.AliasStores) {
			sum.AliasStores[p] = true
		}
		return
	}
	if org := a.aliasOrigin(fresh, root); org.live {
		elem := "EdgeSchedule"
		if n := lint.NamedOf(obj.Type()); n != nil {
			elem = n.Obj().Name()
		}
		a.findings[fn] = append(a.findings[fn], finding{
			pos: e.Pos(), key: "edges-alias",
			msg: fmt.Sprintf("store through *%s aliasing %s.%s; "+
				"obtain the schedule from cowEdge so rollback can restore it (or annotate with edgelint:ignore txnjournal)",
				elem, org.state, org.fieldName),
		})
	}
}

// pathField unwinds a path expression to its root identifier and
// returns the field name selected directly off a transactional state
// type (the innermost such selector) together with that state type's
// name, or empty strings when the path never passes through one.
func (a *analysis) pathField(e ast.Expr) (state, field string, root *ast.Ident) {
	info := a.pass.TypesInfo
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if t := info.TypeOf(x.X); t != nil {
				if n := lint.NamedOf(t); n != nil && a.isTxnState(n) {
					if journalFor[lowerFirst(x.Sel.Name)] != nil {
						state, field = n.Obj().Name(), x.Sel.Name
					}
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return state, field, x
		default:
			return state, field, nil
		}
	}
}

// isTxnState structurally recognizes a transactional state type: a
// named struct declaring at least one journaled field and at least one
// journal kernel method (modulo exported spellings). Detected states
// also register their edges element type for the aliasing checks.
func (a *analysis) isTxnState(n *types.Named) bool {
	obj := n.Obj()
	if v, ok := a.states[obj]; ok {
		return v
	}
	a.states[obj] = false // cycle guard
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasField := false
	for i := 0; i < st.NumFields(); i++ {
		if journalFor[lowerFirst(st.Field(i).Name())] != nil {
			hasField = true
			break
		}
	}
	if !hasField {
		return false
	}
	hasKernel := false
	for i := 0; i < n.NumMethods(); i++ {
		if kernel[lowerFirst(n.Method(i).Name())] {
			hasKernel = true
			break
		}
	}
	if !hasKernel {
		return false
	}
	a.states[obj] = true
	if elem := edgeElemType(n); elem != nil {
		a.esTypes = append(a.esTypes, elem)
	}
	return true
}

// isEdgeElem reports whether t is the edges element pointer type of a
// detected transactional state.
func (a *analysis) isEdgeElem(t types.Type) bool {
	for _, et := range a.esTypes {
		if types.Identical(t, et) {
			return true
		}
	}
	return false
}

// edgeElemType returns the element type of the state's edges field
// (the *EdgeSchedule pointer type), or nil.
func edgeElemType(stateNamed *types.Named) types.Type {
	st, ok := stateNamed.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if lowerFirst(f.Name()) != "edges" {
			continue
		}
		switch u := f.Type().Underlying().(type) {
		case *types.Slice:
			return u.Elem()
		case *types.Map:
			return u.Elem()
		}
	}
	return nil
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// builtinStore returns the written path of a builtin append/copy call,
// or nil.
func builtinStore(info *types.Info, call *ast.CallExpr) ast.Expr {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if id.Name == "append" || id.Name == "copy" {
		return call.Args[0]
	}
	return nil
}

func orList(names []string) string {
	return strings.Join(names, " or ")
}
