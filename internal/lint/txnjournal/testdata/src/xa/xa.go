// Package xa declares an exported transactional state — journaled
// fields, journal kernel, and helpers — whose function summaries must
// reach importing packages as facts. Exported spellings (Tasks,
// TouchTask) fold onto the canonical journal table. No placeTask root
// lives here, so nothing is reported in this package; the summaries
// are the product.
package xa

type TaskID int
type EdgeID int

type EdgeSchedule struct {
	Start  float64
	Chunks []float64
}

type State struct {
	Tasks []float64
	Edges []*EdgeSchedule
}

func (s *State) TouchTask(id TaskID) {}
func (s *State) TouchEdge(id EdgeID) {}
func (s *State) CowEdge(id EdgeID) *EdgeSchedule {
	return s.Edges[id]
}

// SetTask stores without journaling: the summary carries the
// requirement to every caller.
func (s *State) SetTask(id TaskID, v float64) {
	s.Tasks[id] = v
}

// SetTaskSafe journals before storing: no requirement escapes.
func (s *State) SetTaskSafe(id TaskID, v float64) {
	s.TouchTask(id)
	s.Tasks[id] = v
}

// Scale stores through its *EdgeSchedule parameter: the alias-store
// summary makes every call site prove the argument came from CowEdge
// or a fresh allocation.
func Scale(es *EdgeSchedule, f float64) {
	es.Start *= f
}
