// Fixture for the txnjournal analyzer: a miniature of the scheduler's
// transactional state with journaled fields, journal primitives, and a
// placeTask root. Stores reachable from placeTask must be dominated by
// the matching journal call.
package a

type TaskID int
type NodeID int
type EdgeID int
type LinkID int

type Timeline struct{ slots []float64 }

func (t *Timeline) InsertBasic(x float64) float64        { return x }
func (t *Timeline) ProbeBasic(x float64) float64         { return x }
func (t *Timeline) Snapshot() []float64                  { return nil }
func (t *Timeline) SnapshotInto(old []float64) []float64 { return nil }
func (t *Timeline) Reindex(pos int)                      {}

type EdgeSchedule struct {
	Start, Finish float64
	Placements    []float64
}

type state struct {
	tasks      []float64
	procFinish []float64
	edges      []*EdgeSchedule
	tl         []*Timeline
	bw         []*Timeline
	ptl        []*Timeline
	dups       []float64
	scratch    []float64 // not journaled
}

func (s *state) touchTask(id TaskID)          {}
func (s *state) touchProc(id NodeID)          {}
func (s *state) touchEdge(id EdgeID)          {}
func (s *state) touchTimeline(id LinkID)      {}
func (s *state) touchBWTimeline(id LinkID)    {}
func (s *state) touchProcTimeline(id NodeID)  {}
func (s *state) touchDup()                    {}
func (s *state) cowEdge(id EdgeID) *EdgeSchedule {
	return s.edges[id]
}

func (s *state) placeTask(tid TaskID, proc NodeID, cond bool) {
	// Inter-procedural: interHelper's store is a summary requirement.
	// This bare call (before any touchTask) leaves it unsatisfied; the
	// journaled path through journalThenCall satisfies it.
	s.interHelper(tid)
	s.journalThenCall(tid)
	s.mid() // two-level propagation: mid -> deepStore

	// Dominated store: journal call precedes at the same nesting level.
	s.touchTask(tid)
	s.tasks[tid] = 1

	// Journal at outer level dominates a store in a nested branch.
	s.touchProc(proc)
	if cond {
		s.procFinish[proc] = 2
	}

	// Un-journaled store (no touchEdge anywhere before).
	s.edges[0] = nil // want "store to journaled field state.edges is not dominated"

	// Journal in one branch does not dominate a store after the if.
	if cond {
		s.touchTimeline(0)
	}
	s.tl[0].InsertBasic(1) // want "mutating call InsertBasic on journaled field state.tl is not dominated"

	// Read-only calls need no journal.
	_ = s.tl[0].ProbeBasic(1)
	_ = s.tl[0].Snapshot()

	// Non-journaled fields need no journal.
	s.scratch = append(s.scratch, 1)

	// Store textually before its journal call inside a loop: the first
	// iteration runs un-journaled.
	for i := 0; i < 2; i++ {
		s.dups = append(s.dups, 1) // want "journaled field state.dups is not dominated"
		s.touchDup()
	}

	s.helper(proc)
	s.aliasing(0)
	s.cowPattern(0)
	s.elseBranch(cond)
	s.indexMaintenance(cond)
	s.bwIndexMaintenance(cond)
	s.ignored(proc)
}

// indexMaintenance mirrors the gap-indexed timeline: the block-summary
// index is journaled state like the slots, so rebuilding it is a
// mutation that needs the same touchTimeline dominance — while the
// buffer-reusing SnapshotInto keeps the read-only Snapshot prefix and
// needs none.
func (s *state) indexMaintenance(cond bool) {
	if cond {
		s.touchTimeline(1)
		s.tl[1].Reindex(1)
	} else {
		s.tl[1].Reindex(2) // want "mutating call Reindex on journaled field state.tl is not dominated"
	}
	_ = s.tl[1].SnapshotInto(nil)
}

// bwIndexMaintenance mirrors the chunked bandwidth ledger: its slab
// summaries (max avail, max gap, end spacing) are journaled state
// exactly like the segments they index, so rebuilding them needs
// touchBWTimeline dominance — the bandwidth analogue of the Timeline's
// Reindex case above. Probe-only estimates stay read-only.
func (s *state) bwIndexMaintenance(cond bool) {
	if cond {
		s.touchBWTimeline(2)
		s.bw[2].Reindex(1)
	} else {
		s.bw[2].Reindex(2) // want "mutating call Reindex on journaled field state.bw is not dominated"
	}
	_ = s.bw[2].ProbeBasic(3)
	_ = s.bw[2].SnapshotInto(nil)
}

// helper is reachable from placeTask: its stores are checked.
func (s *state) helper(proc NodeID) {
	s.touchProc(proc)
	s.procFinish[proc] = 3
	s.ptl[proc].InsertBasic(4) // want "mutating call InsertBasic on journaled field state.ptl is not dominated"
}

// aliasing mutates through a pointer read straight off the live edges
// slice: rollback restores the slice entry, not the pointee.
func (s *state) aliasing(id EdgeID) {
	s.touchEdge(id)
	es := s.edges[id]
	es.Start = 5 // want "store through \\*EdgeSchedule aliasing state.edges"
}

// cowPattern obtains the schedule from cowEdge, which journals and
// clones; mutating the clone is safe.
func (s *state) cowPattern(id EdgeID) {
	es := s.edges[id]
	es = s.cowEdge(id)
	es.Start = 6
	fresh := &EdgeSchedule{}
	fresh.Finish = 7 // fresh allocation: not yet reachable from state
}

// elseBranch journals in the then-arm only: the else-arm store is not
// dominated.
func (s *state) elseBranch(cond bool) {
	if cond {
		s.touchBWTimeline(0)
		s.bw[0].InsertBasic(8)
	} else {
		s.bw[0].InsertBasic(9) // want "mutating call InsertBasic on journaled field state.bw is not dominated"
	}
}

// ignored demonstrates the escape hatch.
func (s *state) ignored(proc NodeID) {
	s.procFinish[proc] = 10 // edgelint:ignore txnjournal — fixture: deliberate un-journaled store
}

// interHelper stores without journaling: the store becomes a summary
// requirement its callers must satisfy. placeTask reaches it both bare
// (reported, anchored here at the store) and through journalThenCall
// (satisfied at that call site).
func (s *state) interHelper(id TaskID) {
	s.tasks[id] = 12 // want "store to journaled field state.tasks is not dominated"
}

// journalThenCall satisfies interHelper's requirement at the call
// site: the journal dominates the call, hence the callee's store.
func (s *state) journalThenCall(id TaskID) {
	s.touchTask(id)
	s.interHelper(id)
}

// deepStore's requirement propagates two levels, through mid, up to
// placeTask — which never journals dups outside the earlier loop.
func (s *state) deepStore() {
	s.dups = append(s.dups, 2) // want "journaled field state.dups is not dominated"
}

func (s *state) mid() {
	s.deepStore()
}

// unreachable is never called from placeTask: its stores are out of
// the transactional call graph and not checked.
func (s *state) unreachable() {
	s.tasks[0] = 11
	s.edges[0] = nil
}
