// Package xb roots a transaction over state imported from xa: its
// placeTask must satisfy the journal requirements and alias-store
// proofs imported from xa's function summaries — stores it can only
// reach through helpers defined in another package.
package xb

import "xa"

type sched struct {
	st *xa.State
}

func (sc *sched) placeTask(id xa.TaskID) {
	// Satisfied requirement: the journal dominates the call, on the
	// same receiver root, so SetTask's store is covered.
	sc.st.TouchTask(id)
	sc.st.SetTask(id, 1)

	// A journal inside one branch does not dominate a call after it.
	sc.other().SetTaskSafe(id, 2) // self-journaling helper needs nothing here

	// Unsatisfied requirement: no journal since the transaction for
	// this receiver... the call site is the anchor, since the store
	// itself lives in xa.
	sc2 := &sched{st: nil}
	sc2.st.SetTask(id, 3) // want "call to xa.State.SetTask reaches a store to journaled field State.Tasks"

	// Alias-store proof: a CowEdge result may be scaled, a pointer read
	// straight off the live Edges slice may not.
	es := sc.st.CowEdge(0)
	xa.Scale(es, 2)
	live := sc.st.Edges[0]
	xa.Scale(live, 3) // want "call to xa.Scale stores through a \\*EdgeSchedule aliasing State.Edges"
	live.Start = 4    // want "store through \\*EdgeSchedule aliasing State.Edges"
}

func (sc *sched) other() *xa.State {
	return sc.st
}
