// Package routerconfine enforces the ownership discipline of
// network.Router: a Router carries mutable scratch buffers and is NOT
// safe for concurrent use, so the only sound pattern is per-goroutine
// ownership — each fork of the scheduler state creates its own Router
// (see fork.go's Clone). The analyzer flags every construct that lets
// a *Router cross a goroutine boundary: capture by a go statement,
// channel send, aliasing stores into structs or collections, and
// escapes into interface values (where tracking ends). Exclusive
// handoffs (e.g. a sync.Pool that guarantees a single owner) are
// legitimate and should carry an `edgelint:ignore routerconfine`
// annotation explaining why.
package routerconfine

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags *network.Router values crossing goroutine boundaries.
var Analyzer = &lint.Analyzer{
	Name: "routerconfine",
	Doc: "network.Router is not concurrency-safe: each goroutine must own " +
		"its own Router (the per-fork pattern in internal/sched/fork.go). " +
		"Flags Routers captured by go statements, sent on channels, stored " +
		"into structs, collections or package-level variables by aliasing, " +
		"or escaping into interface values. Functions that hand a Router " +
		"parameter to a goroutine they spawn export a summary fact, so call " +
		"sites — including ones in other packages — must pass an argument " +
		"the caller does not retain. Annotate deliberate exclusive handoffs " +
		"with `edgelint:ignore routerconfine — reason`.",
	Run: run,
}

// FactSummary is the fact kind carrying a function's goroutine-capture
// summary: Params[i] is true when the function spawns a goroutine that
// captures its i-th parameter (a *network.Router). A caller that keeps
// a handle to the argument would share one Router across goroutines.
const FactSummary = "routerconfine.summary"

// Summary records which Router-typed parameters a function hands to
// goroutines it spawns.
type Summary struct {
	Params []bool
}

// isRouterType reports whether t is network.Router or a pointer to it.
func isRouterType(t types.Type) bool {
	if t == nil {
		return false
	}
	n := lint.NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Router" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/network")
}

func run(pass *lint.Pass) error {
	info := pass.TypesInfo
	// Export goroutine-capture summaries for every function first, so
	// same-package call sites see them regardless of declaration order
	// (cross-package call sites get them from dependency-ordered units).
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				exportSummary(pass, fd)
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
		// Package-level variable initializers aliasing a Router.
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					if isRouterType(info.TypeOf(v)) {
						checkCompositeEscape(pass, nil, v)
					}
				}
			}
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	fresh := lint.NewFreshness(info, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			checkGoCapture(pass, n)
		case *ast.SendStmt:
			if isRouterType(info.TypeOf(n.Value)) {
				pass.Reportf(n.Value.Pos(),
					"*network.Router sent on a channel: a Router is not concurrency-safe; "+
						"create one per goroutine (NewRouter) instead of sharing")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break // x, y := f() — call results are fresh
				}
				checkAliasingStore(pass, fresh, n.Tok, lhs, n.Rhs[i])
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isRouterType(info.TypeOf(v)) && !fresh.IsFresh(v) {
					pass.Reportf(v.Pos(),
						"*network.Router aliased into a composite literal: the literal may outlive "+
							"or be shared beyond the Router's owning goroutine; create a dedicated Router")
				}
			}
		case *ast.CallExpr:
			checkInterfaceEscape(pass, n)
			checkSummaryCall(pass, n)
		}
		return true
	})
}

// exportSummary records, as a fact on the function object, which of the
// function's Router-typed parameters are captured by a go statement in
// its body. The capture itself is flagged at the definition site by
// checkGoCapture; the summary lets call sites — in this package or an
// importing one — be checked too.
func exportSummary(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return
	}
	np := sig.Params().Len()
	caps := make([]bool, np)
	captured := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		ast.Inspect(g.Call, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := info.Uses[id].(*types.Var)
			if !ok || !isRouterType(obj.Type()) {
				return true
			}
			for i := 0; i < np; i++ {
				if sig.Params().At(i) == obj {
					caps[i] = true
					captured = true
				}
			}
			return true
		})
		return true
	})
	if captured {
		pass.ExportFact(FactSummary, fn, &Summary{Params: caps})
	}
}

// checkSummaryCall flags call sites that pass a retained Router to a
// parameter the callee's summary marks as goroutine-captured. Only an
// argument the caller cannot name afterwards — an inline constructor
// call or literal — is a sound handoff.
func checkSummaryCall(pass *lint.Pass, call *ast.CallExpr) {
	fn := lint.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	fact, ok := pass.ImportFact(FactSummary, fn)
	if !ok {
		return
	}
	sum := fact.(*Summary)
	for i, arg := range call.Args {
		if i >= len(sum.Params) || !sum.Params[i] {
			continue // positional match: variadic Router params don't arise
		}
		if !isRouterType(pass.TypesInfo.TypeOf(arg)) {
			continue
		}
		switch a := ast.Unparen(arg).(type) {
		case *ast.CallExpr, *ast.CompositeLit:
			continue // inline allocation: the caller keeps no handle
		case *ast.UnaryExpr:
			if a.Op == token.AND {
				if _, lit := a.X.(*ast.CompositeLit); lit {
					continue // &Router{...}: likewise unretained
				}
			}
		}
		pass.Reportf(arg.Pos(),
			"*network.Router passed to %s, which hands it to a goroutine it spawns: "+
				"two goroutines would share one Router; pass an inline NewRouter result "+
				"the caller does not retain", renderFunc(fn))
	}
}

// renderFunc names a function for diagnostics: pkg.Func or pkg.Recv.Method.
func renderFunc(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := lint.NamedOf(sig.Recv().Type()); n != nil {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// checkGoCapture flags identifiers of Router type referenced inside a
// go statement but defined outside it: the spawned goroutine would
// share the outer goroutine's Router.
func checkGoCapture(pass *lint.Pass, g *ast.GoStmt) {
	info := pass.TypesInfo
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || !isRouterType(obj.Type()) {
			return true
		}
		if obj.Pos() >= g.Pos() && obj.Pos() < g.End() {
			return true // defined inside the goroutine: owned by it
		}
		pass.Reportf(id.Pos(),
			"*network.Router %s crosses into a goroutine: a Router is not concurrency-safe; "+
				"create one per goroutine with NewRouter (per-fork ownership, see sched/fork.go)", id.Name)
		return true
	})
}

// checkAliasingStore flags assignments that store an existing (non-
// fresh) Router into a struct field, collection element, or package-
// level variable — any location other goroutines could read it from.
func checkAliasingStore(pass *lint.Pass, fresh *lint.Freshness, tok token.Token, lhs, rhs ast.Expr) {
	info := pass.TypesInfo
	if !isRouterType(info.TypeOf(rhs)) {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if fresh.IsFresh(rhs) {
			return // NewRouter(...) results and nil are owned by the storer
		}
		pass.Reportf(lhs.Pos(),
			"existing *network.Router aliased into shared storage: two owners of one Router race "+
				"on its scratch buffers; store a fresh NewRouter result instead")
	case *ast.Ident:
		if tok == token.DEFINE {
			return
		}
		// A global Router is shared even when freshly built: every
		// goroutine can reach a package-level variable.
		if obj, ok := info.Uses[l].(*types.Var); ok && obj.Parent() == pass.Pkg.Scope() {
			pass.Reportf(lhs.Pos(),
				"*network.Router stored in package-level variable %s: globals are visible to "+
					"every goroutine; Routers must stay goroutine-local", l.Name)
		}
	}
}

// checkInterfaceEscape flags passing a *Router as an interface-typed
// argument: once behind an interface (sync.Pool.Put, fmt args, ...)
// ownership can no longer be tracked.
func checkInterfaceEscape(pass *lint.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: any(r) and friends.
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if isRouterType(info.TypeOf(call.Args[0])) {
				pass.Reportf(call.Args[0].Pos(),
					"*network.Router converted to an interface value: ownership can no longer be "+
						"tracked; keep Routers goroutine-local or annotate the exclusive handoff")
			}
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if !isRouterType(info.TypeOf(arg)) {
			continue
		}
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); isIface {
			pass.Reportf(arg.Pos(),
				"*network.Router passed as interface-typed argument: ownership can no longer be "+
					"tracked; keep Routers goroutine-local or annotate the exclusive handoff")
		}
	}
}

// paramType returns the type of parameter i, accounting for variadics.
func paramType(sig *types.Signature, i int) types.Type {
	np := sig.Params().Len()
	if np == 0 {
		return nil
	}
	if sig.Variadic() && i >= np-1 {
		last := sig.Params().At(np - 1).Type()
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i >= np {
		return nil
	}
	return sig.Params().At(i).Type()
}

// checkCompositeEscape flags package-level initializers aliasing a
// Router (fresh is nil at package scope: only calls/literals are safe).
func checkCompositeEscape(pass *lint.Pass, _ *lint.Freshness, v ast.Expr) {
	switch ast.Unparen(v).(type) {
	case *ast.CallExpr, *ast.CompositeLit:
		return
	}
	pass.Reportf(v.Pos(),
		"*network.Router stored in a package-level variable: globals are visible to every "+
			"goroutine; Routers must stay goroutine-local")
}
