package routerconfine_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/routerconfine"
)

func TestRouterConfine(t *testing.T) {
	linttest.Run(t, routerconfine.Analyzer, "a")
}
