package routerconfine_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/routerconfine"
)

func TestRouterConfine(t *testing.T) {
	linttest.Run(t, routerconfine.Analyzer, "a")
}

// TestRouterConfineCrossPackage checks that the goroutine-capture
// summary exported for xa.Spawn reaches call sites in xb.
func TestRouterConfineCrossPackage(t *testing.T) {
	linttest.Run(t, routerconfine.Analyzer, "xa", "xb")
}
