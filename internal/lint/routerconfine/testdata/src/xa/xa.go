// Package xa exports a helper that hands its Router parameter to a
// goroutine it spawns. The capture is flagged here at the definition;
// the exported goroutine-capture summary travels as a fact so that
// callers in importing packages are checked at their call sites.
package xa

import "repro/internal/network"

// Spawn routes in the background on the caller's Router.
func Spawn(r *network.Router) {
	go func() {
		_, _ = r.BFSRoute(0, 1) // want "crosses into a goroutine"
	}()
}
