// Package xb calls xa.Spawn, whose goroutine-capture summary was
// exported as a fact: passing a Router the caller retains is flagged
// at the call site even though the go statement lives in xa.
package xb

import (
	"xa"

	"repro/internal/network"
)

var topo = &network.Topology{}

func fanOut() {
	r := topo.NewRouter(nil)
	xa.Spawn(r) // want "hands it to a goroutine it spawns"
	_, _ = r.BFSRoute(2, 3)

	// An inline constructor result is a sound handoff: the caller keeps
	// no handle the spawned goroutine could race with.
	xa.Spawn(topo.NewRouter(nil))
}
