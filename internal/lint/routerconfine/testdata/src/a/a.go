// Fixture for the routerconfine analyzer: ways a *network.Router can
// (and cannot) cross a goroutine boundary.
package a

import "repro/internal/network"

type holder struct {
	router *network.Router
}

type pool interface {
	Put(x any)
}

var topo = &network.Topology{}

// goodPerGoroutine creates one Router per goroutine: the ownership
// pattern the analyzer exists to protect.
func goodPerGoroutine() {
	for i := 0; i < 4; i++ {
		go func() {
			r := topo.NewRouter(nil)
			_, _ = r.BFSRoute(0, 1)
		}()
	}
}

// badCapture shares the outer goroutine's Router with a spawned one.
func badCapture() {
	r := topo.NewRouter(nil)
	go func() {
		_, _ = r.BFSRoute(0, 1) // want "crosses into a goroutine"
	}()
	_, _ = r.BFSRoute(2, 3)
}

// badChannelSend hands a Router to whoever receives.
func badChannelSend(ch chan *network.Router) {
	r := topo.NewRouter(nil)
	ch <- r // want "sent on a channel"
}

// badAliasStore stores an existing Router into a struct another
// goroutine could read; storing a fresh one is fine.
func badAliasStore(h *holder, src *holder) {
	h.router = topo.NewRouter(nil) // fresh: owned by h
	h.router = src.router          // want "aliased into shared storage"
}

// badCompositeAlias smuggles an existing Router through a literal.
func badCompositeAlias(r *network.Router) holder {
	return holder{router: r} // want "aliased into a composite literal"
}

// badInterfaceEscape loses track of ownership behind an interface —
// the sync.Pool handoff shape; deliberate exclusive handoffs carry an
// annotation instead.
func badInterfaceEscape(p pool) {
	r := topo.NewRouter(nil)
	p.Put(r) // want "passed as interface-typed argument"
}

// annotatedHandoff is the sanctioned form of the same shape.
func annotatedHandoff(p pool) {
	r := topo.NewRouter(nil)
	p.Put(r) // edgelint:ignore routerconfine — fixture: exclusive handoff, single owner by contract
}

// badGlobalStore parks a Router where every goroutine can see it.
var sharedRouter *network.Router

func badGlobalStore() {
	r := topo.NewRouter(nil)
	sharedRouter = r // want "package-level variable"
}

// spawnWith hands its parameter to a goroutine: the capture is flagged
// here, and the exported summary makes every call site prove the
// argument is not retained by the caller.
func spawnWith(r *network.Router) {
	go func() {
		_, _ = r.BFSRoute(0, 1) // want "crosses into a goroutine"
	}()
}

// badSummaryCall keeps a handle to the Router it hands to spawnWith:
// caller and spawned goroutine would share it.
func badSummaryCall() {
	r := topo.NewRouter(nil)
	spawnWith(r) // want "hands it to a goroutine it spawns"
	_, _ = r.BFSRoute(2, 3)
}

// goodInlineHandoff passes an inline constructor result: ownership
// transfers with the call, the caller keeps no name for it.
func goodInlineHandoff() {
	spawnWith(topo.NewRouter(nil))
}

// goodLocalUse keeps the Router confined to one goroutine.
func goodLocalUse() {
	r := topo.NewRouter(nil)
	_, _ = r.BFSRoute(0, 1)
	r2 := r // plain local copy stays in this goroutine
	_, _ = r2.BFSRoute(1, 2)
}
