// Stub of repro/internal/network for the routerconfine fixtures: just
// enough surface for a Router to be created, shared and smuggled.
package network

type NodeID int

type Route []int

type RouteCache struct{}

type Router struct {
	visited []bool
}

type Topology struct{}

func (t *Topology) NewRouter(cache *RouteCache) *Router { return &Router{} }

func (r *Router) BFSRoute(src, dst NodeID) (Route, error) { return nil, nil }
