package clonecheck_test

import (
	"testing"

	"repro/internal/lint/clonecheck"
	"repro/internal/lint/linttest"
)

func TestCloneCheck(t *testing.T) {
	linttest.Run(t, clonecheck.Analyzer, "a")
}
