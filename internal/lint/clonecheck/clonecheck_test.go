package clonecheck_test

import (
	"testing"

	"repro/internal/lint/clonecheck"
	"repro/internal/lint/linttest"
)

func TestCloneCheck(t *testing.T) {
	linttest.Run(t, clonecheck.Analyzer, "a")
}

// TestCloneCheckCrossPackage checks that annotations on imported types
// arrive as facts: xa's immutable mark exempts xb's frozen field while
// the unannotated imported Records type is still flagged.
func TestCloneCheckCrossPackage(t *testing.T) {
	linttest.Run(t, clonecheck.Analyzer, "xa", "xb")
}
