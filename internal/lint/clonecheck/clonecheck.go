// Package clonecheck verifies that Clone methods deep-copy every
// reference-bearing field of their type. Parallel EFT probing forks
// scheduler state with Clone; a field added to the state but not to
// Clone silently shares timelines or placement records across
// goroutines, breaking the bit-identical-schedules guarantee in ways
// no test catches until it does. This analyzer turns the convention
// into a build failure.
//
// For every type in the package with a Clone (or clone) method of
// signature func() *T or func() T, each field whose type carries
// references (slice, map, pointer, chan, func, interface, or a
// struct/array containing one) must end the method freshly allocated:
// built by make/new/a composite literal/append-to-nil, delegated to
// another Clone or constructor call, or left at its zero value.
// Fields that are deliberately shared — immutable inputs, or
// concurrency-safe structures — are exempted by annotating the field:
//
//	routeCache *network.RouteCache // edgelint:shared — concurrency-safe LRU
//
// The annotation is consumed through the fact store, so it also
// protects Clone methods in packages importing the annotated type; a
// field whose type carries an edgelint:immutable fact (local or
// imported) is implicitly shareable — frozen values cannot diverge
// between the original and the clone.
//
// A Clone whose construction the analyzer cannot follow (no composite
// literal, new(T), or dereferencing copy of the receiver) is itself
// reported, so the check fails loud rather than silently passing.
package clonecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "clonecheck",
	Doc:  "Clone methods that shallow-copy reference-bearing fields (annotate deliberate sharing with edgelint:shared)",
	Run:  run,
}

// field copy status inside one Clone construction.
const (
	statusZero    = iota // absent from the literal: zero value, shares nothing
	statusFresh          // freshly allocated / deep-copied
	statusShallow        // aliases the receiver's value
)

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Clone" && fd.Name.Name != "clone" {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
				continue
			}
			recv := lint.NamedOf(sig.Recv().Type())
			res := lint.NamedOf(sig.Results().At(0).Type())
			if recv == nil || res == nil || recv.Obj() != res.Obj() {
				continue
			}
			if recv.Obj().Pkg() != pass.Pkg {
				continue
			}
			st, ok := recv.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			checkClone(pass, fd, recv, st)
		}
	}
	return nil
}

// checkClone analyzes one Clone method body against the struct's
// reference-bearing fields.
func checkClone(pass *lint.Pass, fd *ast.FuncDecl, named *types.Named, st *types.Struct) {
	refFields := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if lint.RefBearing(f.Type()) {
			refFields[f.Name()] = true
		}
	}
	if len(refFields) == 0 {
		return
	}
	// Shared-field annotations arrive as facts from the framework's
	// marker pre-pass — the same mechanism that carries annotations on
	// imported types. A field whose own type is marked
	// edgelint:immutable is implicitly safe to share: frozen values
	// cannot diverge between the original and the clone.
	shared := map[string]bool{}
	if fact, ok := pass.ImportFact(lint.FactShared, named.Obj()); ok {
		for name := range fact.(lint.SharedFields) {
			shared[name] = true
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if n := lint.NamedOf(f.Type()); n != nil {
			if _, ok := pass.ImportFact(lint.FactImmutable, n.Obj()); ok {
				shared[f.Name()] = true
			}
		}
	}
	fresh := lint.NewFreshness(pass.TypesInfo, fd.Body)

	cons := findConstructions(pass, fd, named)
	if len(cons) == 0 {
		pass.Reportf(fd.Name.Pos(),
			"cannot find how %s.%s builds its copy (expected a %s composite literal, new(%s), or a dereferencing copy of the receiver); restructure or annotate",
			named.Obj().Name(), fd.Name.Name, named.Obj().Name(), named.Obj().Name())
		return
	}
	for _, c := range cons {
		checkConstruction(pass, fd, named, st, refFields, shared, fresh, c)
	}
}

// construction is one place a Clone body builds the copy.
type construction struct {
	mode   int // conLit, conNew, conDeref
	lit    *ast.CompositeLit
	varObj types.Object // the clone variable, nil for a direct return
	pos    token.Pos
}

const (
	conLit = iota
	conNew
	conDeref
)

// findConstructions locates composite literals of the receiver type,
// new(T) calls, and dereferencing copies of the receiver, together
// with the local variable (if any) they are assigned to.
func findConstructions(pass *lint.Pass, fd *ast.FuncDecl, named *types.Named) []construction {
	var cons []construction
	seen := map[*ast.CompositeLit]bool{}
	classify := func(rhs ast.Expr) (int, *ast.CompositeLit, bool) {
		e := ast.Unparen(rhs)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		switch e := e.(type) {
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[e]; ok {
				if n := lint.NamedOf(tv.Type); n != nil && n.Obj() == named.Obj() {
					return conLit, e, true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
				if tv, ok := pass.TypesInfo.Types[ast.Unparen(rhs)]; ok {
					if n := lint.NamedOf(tv.Type); n != nil && n.Obj() == named.Obj() {
						return conNew, nil, true
					}
				}
			}
		case *ast.StarExpr:
			if tv, ok := pass.TypesInfo.Types[e.X]; ok {
				if n := lint.NamedOf(tv.Type); n != nil && n.Obj() == named.Obj() {
					return conDeref, nil, true
				}
			}
		}
		return 0, nil, false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				mode, lit, ok := classify(rhs)
				if !ok {
					continue
				}
				id, isID := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !isID {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				cons = append(cons, construction{mode: mode, lit: lit, varObj: obj, pos: rhs.Pos()})
				if lit != nil {
					seen[lit] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mode, lit, ok := classify(r)
				if !ok || (lit != nil && seen[lit]) {
					continue
				}
				cons = append(cons, construction{mode: mode, lit: lit, pos: r.Pos()})
				if lit != nil {
					seen[lit] = true
				}
			}
		}
		return true
	})
	return cons
}

// checkConstruction resolves the final copy status of every
// reference-bearing field for one construction and reports the
// shallow ones.
func checkConstruction(pass *lint.Pass, fd *ast.FuncDecl, named *types.Named, st *types.Struct,
	refFields, shared map[string]bool, fresh *lint.Freshness, c construction) {

	status := map[string]int{}
	pos := map[string]token.Pos{}
	switch c.mode {
	case conLit:
		// Absent fields are zero-valued: safe by construction.
		if len(c.lit.Elts) > 0 {
			if _, keyed := c.lit.Elts[0].(*ast.KeyValueExpr); keyed {
				for _, elt := range c.lit.Elts {
					kv := elt.(*ast.KeyValueExpr)
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					setStatus(status, pos, key.Name, kv.Value, fresh)
				}
			} else {
				for i, elt := range c.lit.Elts {
					if i < st.NumFields() {
						setStatus(status, pos, st.Field(i).Name(), elt, fresh)
					}
				}
			}
		}
	case conDeref:
		// A dereferencing copy starts every reference field shallow.
		for name := range refFields {
			status[name] = statusShallow
			pos[name] = c.pos
		}
	case conNew:
		// new(T): all fields zero, safe until assigned.
	}

	// Subsequent whole-field assignments through the clone variable
	// override the construction-time status.
	if c.varObj != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok == token.DEFINE || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				base, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || pass.TypesInfo.Uses[base] != c.varObj {
					continue
				}
				if as.Pos() <= c.pos {
					continue
				}
				setStatus(status, pos, sel.Sel.Name, as.Rhs[i], fresh)
			}
			return true
		})
	}

	for i := 0; i < st.NumFields(); i++ {
		name := st.Field(i).Name()
		if !refFields[name] || shared[name] {
			continue
		}
		if status[name] != statusShallow {
			continue
		}
		at := pos[name]
		if at == token.NoPos {
			at = c.pos
		}
		pass.Reportf(at,
			"%s.%s shallow-copies reference field %s; deep-copy it or annotate the field with edgelint:shared",
			named.Obj().Name(), fd.Name.Name, name)
	}
}

func setStatus(status map[string]int, pos map[string]token.Pos, name string, rhs ast.Expr, fresh *lint.Freshness) {
	if fresh.IsFresh(rhs) {
		status[name] = statusFresh
	} else {
		status[name] = statusShallow
	}
	pos[name] = rhs.Pos()
}
