// Fixture for the clonecheck analyzer: one clean and one flagged case
// per rule. The Leaky and DerefBad types are the "removed copy line"
// shapes — deleting the deep-copy of a reference field must go red.
package a

// Tree deep-copies every reference field: composite literal with an
// append-to-nil, a post-construction make+loop, and a delegated Clone.
type Tree struct {
	vals  []float64
	name  string
	meta  map[string]int
	child *Tree
}

func (t *Tree) Clone() *Tree {
	c := &Tree{
		vals: append([]float64(nil), t.vals...),
		name: t.name,
	}
	c.meta = make(map[string]int, len(t.meta))
	for k, v := range t.meta {
		c.meta[k] = v
	}
	if t.child != nil {
		c.child = t.child.Clone()
	}
	return c
}

// Leaky shallow-copies its reference fields in the literal — the bug
// clonecheck exists to catch.
type Leaky struct {
	vals []float64
	meta map[string]int
	id   int
}

func (l *Leaky) Clone() *Leaky {
	return &Leaky{
		vals: l.vals, // want "Leaky.Clone shallow-copies reference field vals"
		meta: l.meta, // want "Leaky.Clone shallow-copies reference field meta"
		id:   l.id,
	}
}

// DerefBad copies the receiver by dereference and never re-copies the
// slice: every reference field starts shallow in a `cl := *d` clone.
type DerefBad struct {
	vals []float64
	id   int
}

func (d *DerefBad) Clone() *DerefBad {
	cl := *d // want "DerefBad.Clone shallow-copies reference field vals"
	return &cl
}

// DerefGood re-copies the only reference field after the dereferencing
// copy, the EdgeSchedule.clone idiom.
type DerefGood struct {
	vals []float64
	id   int
}

func (d *DerefGood) Clone() *DerefGood {
	cl := *d
	cl.vals = append([]float64(nil), d.vals...)
	return &cl
}

// Shared annotates a deliberately shared field; only the unannotated
// one must be deep-copied.
type Shared struct {
	cache map[string]int // edgelint:shared — concurrency-safe, shared by design
	vals  []float64
}

func (s *Shared) Clone() *Shared {
	return &Shared{
		cache: s.cache,
		vals:  append([]float64(nil), s.vals...),
	}
}

// Scratch omits its lazily rebuilt buffer from the literal: absent
// fields are zero-valued and share nothing.
type Scratch struct {
	data []float64
	buf  []float64
}

func (s *Scratch) Clone() *Scratch {
	return &Scratch{data: append([]float64(nil), s.data...)}
}

// Fixup sets a field shallow in the literal but deep-copies it before
// returning; the later assignment wins.
type Fixup struct {
	xs []int
}

func (f *Fixup) Clone() *Fixup {
	c := &Fixup{xs: f.xs}
	c.xs = append([]int(nil), f.xs...)
	return c
}

// Val exercises value receiver and result.
type Val struct {
	xs []int
}

func (v Val) Clone() Val {
	return Val{xs: v.xs} // want "Val.Clone shallow-copies reference field xs"
}

// Opaque builds its copy through a helper the analyzer cannot follow;
// that is reported rather than silently passing.
type Opaque struct {
	vals []float64
}

func (o *Opaque) Clone() *Opaque { // want "cannot find how Opaque.Clone builds its copy"
	return o.copyVia()
}

func (o *Opaque) copyVia() *Opaque { return o }

// Gapped mirrors the gap-indexed Timeline: derived index slices
// (block summaries) are state like any other reference field and must
// be deep-copied together with the slots — a shared summary array is
// silently corrupted for both copies by either copy's next insert.
type Gapped struct {
	slots  []float64
	blkEnd []float64
	blkGap []float64
	maxAbs float64
}

func (g *Gapped) Clone() *Gapped {
	return &Gapped{
		slots:  append([]float64(nil), g.slots...),
		blkEnd: append([]float64(nil), g.blkEnd...),
		blkGap: append([]float64(nil), g.blkGap...),
		maxAbs: g.maxAbs,
	}
}

// GappedLeaky deep-copies the slots but shares the index — the exact
// bug the Timeline index refactor must never reintroduce.
type GappedLeaky struct {
	slots  []float64
	blkEnd []float64
}

func (g *GappedLeaky) Clone() *GappedLeaky {
	return &GappedLeaky{
		slots:  append([]float64(nil), g.slots...),
		blkEnd: g.blkEnd, // want "GappedLeaky.Clone shallow-copies reference field blkEnd"
	}
}

// bwSlab mirrors one slab of the chunked bandwidth store: a segment
// slice plus its derived block summaries.
type bwSlab struct {
	segs     []float64
	maxAvail float64
}

// BWChunked mirrors the chunked-slab BWTimeline: the outer slab slice
// holds nested segment slices, so a correct Clone rebuilds the outer
// slice with make and deep-copies each slab's segments in the loop —
// the summary scalars ride along by value.
type BWChunked struct {
	chunks []bwSlab
	nsegs  int
	maxAbs float64
}

func (b *BWChunked) Clone() *BWChunked {
	cp := make([]bwSlab, len(b.chunks))
	for i := range b.chunks {
		cp[i] = bwSlab{
			segs:     append([]float64(nil), b.chunks[i].segs...),
			maxAvail: b.chunks[i].maxAvail,
		}
	}
	return &BWChunked{chunks: cp, nsegs: b.nsegs, maxAbs: b.maxAbs}
}

// BWChunkedLeaky shares the slab slice wholesale — both copies then
// mutate the same slabs (and the same block summaries) on their next
// reserve, the exact bug the chunked-store refactor must never
// reintroduce.
type BWChunkedLeaky struct {
	chunks []bwSlab
	nsegs  int
}

func (b *BWChunkedLeaky) Clone() *BWChunkedLeaky {
	return &BWChunkedLeaky{
		chunks: b.chunks, // want "BWChunkedLeaky.Clone shallow-copies reference field chunks"
		nsegs:  b.nsegs,
	}
}

// SpanArena mirrors the columnar edge store: fixed-width rows
// reference variable-length payloads by packed (offset, length) spans
// into a shared arena slice. The arena is state like any other
// reference field — spans are rewritten in place on copy-on-write, so
// a clone sharing the arena reads the parent's next rewrite.
type SpanArena struct {
	meta  []int64   // fixed-width rows holding packed spans
	arena []float64 // variable-length payloads, addressed by span
}

func (s *SpanArena) Clone() *SpanArena {
	return &SpanArena{
		meta:  append([]int64(nil), s.meta...),
		arena: append([]float64(nil), s.arena...),
	}
}

// SpanArenaLeaky deep-copies the row column but shares the payload
// arena — every span reads back fine until either copy's next
// copy-on-write append lands in the other's tail. The exact bug the
// flat-state refactor must never reintroduce.
type SpanArenaLeaky struct {
	meta  []int64
	arena []float64
}

func (s *SpanArenaLeaky) Clone() *SpanArenaLeaky {
	return &SpanArenaLeaky{
		meta:  append([]int64(nil), s.meta...),
		arena: s.arena, // want "SpanArenaLeaky.Clone shallow-copies reference field arena"
	}
}

// Hushed shares deliberately and suppresses both analyzers with one
// comma-separated ignore directive (no want: the finding must be
// filtered before expectation checking).
type Hushed struct {
	xs []int
}

func (h *Hushed) Clone() *Hushed {
	// edgelint:ignore clonecheck,aliasret — intentional alias, exercised by tests
	return &Hushed{xs: h.xs}
}
