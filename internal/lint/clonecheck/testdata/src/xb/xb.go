// Package xb forks state holding types imported from xa. Frozen is
// exempt through xa's edgelint:immutable fact; Records is mutable and
// must be deep-copied.
package xb

import "xa"

type state struct {
	frozen *xa.Frozen  // exempt: immutable fact imported from xa
	recs   *xa.Records // mutable: must not be shared
	ids    []int
}

func (s *state) Clone() *state {
	return &state{
		frozen: s.frozen,
		recs:   s.recs, // want "state.Clone shallow-copies reference field recs; deep-copy it or annotate the field with edgelint:shared"
		ids:    append([]int(nil), s.ids...),
	}
}
