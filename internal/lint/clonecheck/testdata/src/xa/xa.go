// Package xa declares annotated types imported by package xb's Clone:
// the immutable mark must reach xb as a fact and exempt the field that
// shares a Frozen across clones.
package xa

// Frozen is an immutable input shared by every fork.
// edgelint:immutable NewFrozen
type Frozen struct {
	Weights []float64
}

// NewFrozen is the declared constructor.
func NewFrozen(w []float64) *Frozen {
	return &Frozen{Weights: append([]float64(nil), w...)}
}

// Records is a plain mutable container: sharing it across clones is
// exactly the bug clonecheck exists for.
type Records struct {
	M map[int]int
}
