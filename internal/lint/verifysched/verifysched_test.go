package verifysched_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/verifysched"
)

func TestVerifySched(t *testing.T) {
	linttest.Run(t, verifysched.Analyzer, "a")
}
