// Package verifysched enforces the repository's "trusted nowhere"
// convention (internal/verify's package doc): every schedule produced
// in a test must flow through the verifier. It flags test functions
// that bind a *sched.Schedule obtained from any call to a
// variable but never reach the verifier — directly (verify.Verify,
// the edgesched.Verify facade, any callee whose name contains
// "verify") or through a package-local helper that transitively calls
// one (the mustSchedule(t, ...) idiom, which verifies before
// returning the schedule).
//
// Tests that only check the error result (discarding the schedule with
// a blank identifier) are not flagged; there is nothing to verify.
package verifysched

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags tests that schedule without verifying.
var Analyzer = &lint.Analyzer{
	Name: "verifysched",
	Doc:  "flags test functions that obtain a *sched.Schedule but never pass it through verify.Verify",
	Run:  run,
}

func run(pass *lint.Pass) error {
	verifiers := localVerifiers(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isTestFunc(pass, fd) {
				continue
			}
			if bindsSchedule(pass, fd.Body) && !callsVerify(pass, fd.Body, verifiers) {
				pass.Reportf(fd.Name.Pos(), "%s obtains a *sched.Schedule but never passes it to verify.Verify; the scheduling algorithms are trusted nowhere", fd.Name.Name)
			}
		}
	}
	return nil
}

// localVerifiers computes the package-local functions that
// (transitively) call the verifier, by iterating the direct-call
// relation to a fixed point. A test that obtains its schedule through
// mustSchedule(t, ...) — which verifies before returning — is covered
// by this closure.
func localVerifiers(pass *lint.Pass) map[*types.Func]bool {
	bodies := map[*types.Func]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil {
				bodies[obj] = fd.Body
			}
		}
	}
	verifiers := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for obj, body := range bodies {
			if !verifiers[obj] && callsVerify(pass, body, verifiers) {
				verifiers[obj] = true
				changed = true
			}
		}
	}
	return verifiers
}

// isTestFunc reports whether fd is a go test function:
// func TestXxx(t *testing.T).
func isTestFunc(pass *lint.Pass, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if fd.Recv != nil || !strings.HasPrefix(name, "Test") {
		return false
	}
	if len(name) > len("Test") {
		r := name[len("Test")]
		if r >= 'a' && r <= 'z' {
			return false
		}
	}
	obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "T" && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "testing"
}

// isSchedulePtr reports whether t is *sched.Schedule of this module.
func isSchedulePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Schedule" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/sched")
}

// bindsSchedule reports whether the body binds a *sched.Schedule
// result of any call (Schedule methods, constructors, helpers) to a
// non-blank variable.
func bindsSchedule(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		var lhs []ast.Expr
		var rhs []ast.Expr
		switch st := n.(type) {
		case *ast.AssignStmt:
			lhs, rhs = st.Lhs, st.Rhs
		case *ast.ValueSpec:
			for _, name := range st.Names {
				lhs = append(lhs, name)
			}
			rhs = st.Values
		default:
			return true
		}
		if len(rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || containsVerify(fn.Name()) {
			// Calls into verify helpers that hand back the schedule
			// (mustVerify-style) are themselves the verification.
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			return true
		}
		for i := 0; i < sig.Results().Len() && i < len(lhs); i++ {
			if !isSchedulePtr(sig.Results().At(i).Type()) {
				continue
			}
			if id, ok := lhs[i].(*ast.Ident); ok && id.Name != "_" {
				found = true
			}
		}
		return !found
	})
	return found
}

// callsVerify reports whether the body calls the schedule verifier:
// verify.Verify, the edgesched.Verify facade, any function or method
// whose name contains "verify", or a package-local helper already
// known to verify transitively.
func callsVerify(pass *lint.Pass, body *ast.BlockStmt, verifiers map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			// A call of a function-typed value (e.g. a verify helper
			// passed as a parameter): fall back to the source text.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				found = containsVerify(sel.Sel.Name)
			} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				found = containsVerify(id.Name)
			}
			return !found
		}
		found = containsVerify(fn.Name()) || verifiers[fn]
		return !found
	})
	return found
}

func containsVerify(name string) bool {
	return strings.Contains(strings.ToLower(name), "verify")
}
