// Package sched is a stub of the real repro/internal/sched, just large
// enough for the verifysched fixtures to type-check against the same
// import path the analyzer matches on.
package sched

// Schedule mirrors the real result type.
type Schedule struct {
	Makespan float64
}

// Lister mirrors the real list scheduler.
type Lister struct{}

// Schedule mirrors the real entry point's shape.
func (Lister) Schedule(procs int) (*Schedule, error) {
	return &Schedule{Makespan: float64(procs)}, nil
}

// Build is a package-level constructor with the same result shape.
func Build(procs int) (*Schedule, error) {
	return &Schedule{Makespan: float64(procs)}, nil
}
