// Package verify is a stub of the real repro/internal/verify.
package verify

import "repro/internal/sched"

// Verify mirrors the real checker's shape.
func Verify(s *sched.Schedule) error {
	if s == nil {
		panic("nil schedule")
	}
	return nil
}
