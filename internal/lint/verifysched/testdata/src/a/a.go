package a

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/verify"
)

func TestVerified(t *testing.T) {
	var l sched.Lister
	s, err := l.Schedule(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
}

func TestUnverified(t *testing.T) { // want "never passes it to verify.Verify"
	var l sched.Lister
	s, err := l.Schedule(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan <= 0 {
		t.Fatal("bad makespan")
	}
}

func TestUnverifiedFromBuild(t *testing.T) { // want "never passes it to verify.Verify"
	s, err := sched.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Makespan
}

func TestErrorPathOnly(t *testing.T) {
	// Discarding the schedule and checking only the error is fine:
	// there is nothing to verify.
	var l sched.Lister
	_, err := l.Schedule(0)
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestVerifiedViaHelper(t *testing.T) {
	var l sched.Lister
	s, err := l.Schedule(8)
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s)
}

// edgelint:ignore verifysched — exercising the suppression directive.
func TestSuppressed(t *testing.T) {
	s, err := sched.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Makespan
}

func TestVerifiedViaProducerHelper(t *testing.T) {
	// The mustSchedule idiom: the helper verifies before returning, so
	// the test is covered through the transitive closure.
	s := mustSchedule(t, 4)
	if s.Makespan <= 0 {
		t.Fatal("bad makespan")
	}
}

func mustSchedule(t *testing.T, procs int) *sched.Schedule {
	t.Helper()
	var l sched.Lister
	s, err := l.Schedule(procs)
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s)
	return s
}

func mustVerify(t *testing.T, s *sched.Schedule) {
	t.Helper()
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
}

// notATest binds a schedule without verifying, but is not a test
// function, so it is out of scope.
func notATest() float64 {
	s, err := sched.Build(3)
	if err != nil {
		return 0
	}
	return s.Makespan
}
