// Package xb is the middle of the cross-package chain: construct-free
// wrappers whose summaries escalate (or prove clean) what package xa
// does underneath.
package xb

import "xa"

// Wrap allocates only through xa.Grow.
func Wrap(x int) {
	xa.Grow(x)
}

// CleanWrap stays clean through xa.Clean.
func CleanWrap(x int) int { return xa.Clean(x) }

// ColdWrap stays clean because its callee is marked cold.
func ColdWrap(n int) { xa.ColdFill(n) }
