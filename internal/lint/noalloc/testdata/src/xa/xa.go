// Package xa is the bottom of the cross-package chain: it owns the
// allocation the xc root must reach two packages away.
package xa

var Sink []int

// Grow appends without a capacity reservation.
func Grow(x int) {
	Sink = append(Sink, x)
}

// Clean is proven allocation-free; its empty summary travels up the
// import chain.
func Clean(x int) int { return x + 1 }

// ColdFill allocates, but the coldpath mark makes it clean to callers.
//
// edgelint:coldpath — one-time fill
func ColdFill(n int) {
	Sink = make([]int, n)
}
