// Package xc holds the noalloc roots two imports above the allocation:
// the diagnostic must re-anchor at the local call site and name the
// full provenance chain down to xa.
package xc

import "xb"

// edgelint:noalloc
func Hot(x int) {
	xb.Wrap(x) // want "reaches allocation: append.*path: xc.Hot -> xb.Wrap -> xa.Grow"
}

// edgelint:noalloc
func CleanHot(x int) int {
	return xb.CleanWrap(x)
}

// edgelint:noalloc
func CleanColdHot(n int) {
	xb.ColdWrap(n)
}
