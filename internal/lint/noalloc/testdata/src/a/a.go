// Package a exercises the noalloc analyzer's construct classification
// inside one package: each hot* function demonstrates one allocating
// construct class, the clean functions pin the reuse idioms the
// analyzer must accept, and the cold* cases exercise both per-function
// and per-line coldpath waivers.
package a

import (
	"fmt"
	"strconv"
)

var (
	sink     []int
	sinkStr  string
	sinkMap  = map[int]int{}
	sinkNode *node
)

type node struct{ v int }

// edgelint:noalloc
func hotMake(n int) {
	sink = make([]int, n) // want "allocates: make"
}

// edgelint:noalloc
func hotNew() {
	_ = new(node) // want "allocates: new"
}

// edgelint:noalloc
func hotAppend(xs []int) {
	sink = append(xs, 1) // want "append without a capacity reservation"
}

// edgelint:noalloc
func hotSliceLiteral() {
	sink = []int{1, 2, 3} // want "non-empty slice literal"
}

// edgelint:noalloc
func hotMapLiteral() map[int]int {
	return map[int]int{} // want "map literal"
}

// edgelint:noalloc
func hotMapWrite(k int) {
	sinkMap[k] = k // want "map write"
}

// edgelint:noalloc
func hotAddrLiteral(v int) {
	sinkNode = &node{v: v} // want "address-taken composite literal"
}

// edgelint:noalloc
func hotBoxReturn(v int) interface{} {
	return v // want "boxes into an interface"
}

// edgelint:noalloc
func hotStringConv(b []byte) {
	sinkStr = string(b) // want "conversion copies the slice"
}

// edgelint:noalloc
func hotBytesConv(s string) []byte {
	return []byte(s) // want "conversion copies the string"
}

// edgelint:noalloc
func hotConcat(a, b string) {
	sinkStr = a + b // want "string concatenation"
}

// edgelint:noalloc
func hotClosure(n int) func() int {
	return func() int { return n } // want "closure captures n by reference"
}

// edgelint:noalloc
func hotGo() {
	go cleanHelper() // want "go statement"
}

// edgelint:noalloc
func hotVariadic(a, b int) {
	variadicCallee(a, b) // want "variadic call to a.variadicCallee"
}

// edgelint:noalloc
func hotErrorf(err error) error {
	return fmt.Errorf("wrap: %w", err) // want "variadic call to fmt.Errorf" "no noalloc summary"
}

type doer interface{ do() }

// edgelint:noalloc
func hotDynamic(d doer) {
	d.do() // want "dynamic call"
}

// hotIndirect itself is construct-free; the diagnostic points at the
// allocation inside the local helper, with the call path.
//
// edgelint:noalloc
func hotIndirect(n int) {
	helperAllocs(n)
}

func helperAllocs(n int) {
	sink = make([]int, n) // want "reaches allocation: make.* a.hotIndirect -> a.helperAllocs"
}

func variadicCallee(xs ...int) {
	for _, x := range xs {
		sink[0] += x
	}
}

func cleanHelper() {}

// cleanReuse pins the accepted steady-state idioms: truncate-append
// into an existing backing array, empty slice literals, map reads,
// spread variadic calls, constant arguments to interface parameters,
// and calls to proven-clean helpers.
//
// edgelint:noalloc
func cleanReuse(xs []int, vs []int) int {
	xs = append(xs[:0], vs...)
	var empty []int
	_ = empty
	cleanHelper()
	variadicCallee(vs...)
	total := 0
	for _, x := range xs {
		total += x
	}
	total += sinkMap[0]
	return total
}

// cleanPanicGuard pins the auto-cold panic path: argument expressions
// of a panic call may allocate freely — a function that is about to
// unwind the stack is off the steady-state path by definition.
//
// edgelint:noalloc
func cleanPanicGuard(n int) {
	if n < 0 {
		panic("bad n: " + strconv.Itoa(n))
	}
	sinkMap[0] = n // want "map write"
}

// coldSetup allocates, but the coldpath mark excuses the whole
// function and callers treat it as clean.
//
// edgelint:coldpath — one-time setup
func coldSetup(n int) {
	sink = make([]int, n)
}

// edgelint:noalloc
func cleanWithColdCallee(n int) {
	coldSetup(n)
}

// cleanWaivedGrowth pins the per-line waiver: a documented amortized
// growth site inside a noalloc function.
//
// edgelint:noalloc
func cleanWaivedGrowth(x int) {
	// edgelint:coldpath — amortized growth, capacity persists
	sink = append(sink, x)
}

// spanStore mirrors the columnar scheduler state: fixed-width rows
// hold packed (offset, length) spans into a payload arena. The hot
// mutation paths rewrite rows and span-addressed entries in place;
// only arena growth appends, each under a documented waiver.
type spanStore struct {
	meta  []int64
	arena []float64
}

var store spanStore

// cleanSpanWrite pins the steady-state columnar idiom: indexing
// through a span into an existing arena allocates nothing.
//
// edgelint:noalloc
func cleanSpanWrite(id, off, n int, v float64) {
	store.meta[id] = int64(off)<<32 | int64(n)
	for i := 0; i < n; i++ {
		store.arena[off+i] = v
	}
}

// cleanSpanCOW pins the copy-on-write idiom: relocating a span to the
// arena tail appends under a per-line amortized-growth waiver, then
// rewrites the row in place.
//
// edgelint:noalloc
func cleanSpanCOW(id int) {
	off := int(store.meta[id] >> 32)
	n := int(store.meta[id] & 0xffffffff)
	// edgelint:coldpath — amortized arena growth, capacity persists
	store.arena = append(store.arena, store.arena[off:off+n]...)
	store.meta[id] = int64(len(store.arena)-n)<<32 | int64(n)
}

// hotSpanAppend is the unwaived variant of the same growth site: an
// arena append on the hot path without a reservation or waiver.
//
// edgelint:noalloc
func hotSpanAppend(v float64) {
	store.arena = append(store.arena, v) // want "append without a capacity reservation"
}

// conflicted claims to be both allocation-free and cold; the analyzer
// refuses to guess which mark wins.
//
// edgelint:noalloc
// edgelint:coldpath — contradictory
func conflicted() {} // want "marked both"
