// Package noalloc enforces the repository's allocation discipline
// inter-procedurally: a function annotated
//
//	// edgelint:noalloc
//
// must contain no allocating constructs on its steady-state paths, and
// neither may anything it calls, however many packages away. The
// analyzer summarizes every function of every analyzed unit bottom-up
// — the allocation sites it contains plus the sites escalated from its
// callees — and exports the summaries as facts, so units analyzed
// later in dependency order see a callee's verdict ("allocates",
// "clean", "cold-only") without re-reading its body. Diagnostics
// surface only at the annotated roots and carry the provenance chain:
// which callee, in which package, introduced the allocation.
//
// Detected constructs: make/new, non-empty slice literals, map
// literals, address-taken composite literals, append without a
// provable capacity reservation (the first argument must be a slice
// expression over an existing base — the x[:0] / x[:cap(x)] reuse
// idiom), map writes, closure literals that capture variables by
// reference, interface boxing at call arguments and returns,
// string<->[]byte/[]rune conversions, non-constant string
// concatenation, variadic calls that materialize an argument slice
// (fmt.Errorf and friends), go statements, and calls into functions
// with no summary (unanalyzed packages, dynamic dispatch).
//
// Escape hatches, in order of preference:
//
//   - // edgelint:coldpath on a function declaration marks the whole
//     function cold — reachable from noalloc roots but exempt (one-time
//     setup, oracle capture, cache fill). Its body is not checked.
//   - // edgelint:coldpath as a line comment waives the allocation
//     sites on the covered lines (the documented amortized growth
//     sites: journal slab growth, snapshot buffer growth, slab
//     half-split).
//   - Allocations that appear inside the argument of a panic(...) call
//     are automatically cold: panic branches never run in steady state.
//
// Two deliberate soundness holes, chosen to match how the hot paths
// are written rather than to be watertight: calls through func-typed
// values are assumed clean (the closure's creation is where the charge
// lands — so cache your closures), and function literals passed
// directly to sort.Search are not charged as captures (the callback
// does not escape; its body is still scanned).
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// FactSummary is the fact kind carrying a *Summary for every function
// of every analyzed unit. An absent summary means the function was
// never analyzed (stdlib, dynamic dispatch) and is assumed to
// allocate; an empty one means it is proven clean.
const FactSummary = "noalloc.summary"

// maxSites bounds a single function's summary so pathological
// allocation-heavy functions do not balloon the fact store; Truncated
// records that the cap was hit.
const maxSites = 8

// AllocSite is one allocating construct reachable from a function: its
// own, or escalated from a callee.
type AllocSite struct {
	// Pos anchors the diagnostic; valid only within the unit that
	// built this summary level. Cross-package escalation re-anchors it
	// at the importing call site.
	Pos token.Pos
	// Desc names the allocating construct.
	Desc string
	// Where names the function whose body contains the raw construct;
	// empty when it is the summarized function itself.
	Where string
	// Chain is the call path from the summarized function down to
	// Where, nearest callee first.
	Chain []string
}

// Summary is the per-function allocation verdict exported as a fact.
type Summary struct {
	// Sites is empty for a clean function.
	Sites []AllocSite
	// Cold marks an edgelint:coldpath function: exempt, and clean from
	// its callers' point of view.
	Cold bool
	// Truncated records that Sites hit maxSites.
	Truncated bool
}

// Analyzer is the noalloc analyzer.
var Analyzer = &lint.Analyzer{
	Name: "noalloc",
	Doc: "noalloc checks that functions annotated edgelint:noalloc — and, transitively " +
		"through cross-package function summaries, everything they call — contain no " +
		"allocating constructs on their steady-state paths; edgelint:coldpath exempts " +
		"cold functions and documented amortized-growth lines",
	Run: run,
}

type analysis struct {
	pass    *lint.Pass
	decls   map[*types.Func]*ast.FuncDecl
	sums    map[*types.Func]*Summary
	working map[*types.Func]bool
	// coldLines are the lines covered by edgelint:coldpath line
	// directives, per file (same coverage rule as edgelint:ignore).
	coldLines map[string]map[int]bool
}

type lineKey struct {
	file string
	line int
	desc string
}

func run(pass *lint.Pass) error {
	a := &analysis{
		pass:      pass,
		decls:     map[*types.Func]*ast.FuncDecl{},
		sums:      map[*types.Func]*Summary{},
		working:   map[*types.Func]bool{},
		coldLines: lint.DirectiveLines(pass.Fset, pass.Files, "coldpath"),
	}
	var order, roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			a.decls[fn] = fd
			order = append(order, fn)
			if _, ok := pass.ImportFact(lint.FactNoAlloc, fn); ok {
				roots = append(roots, fn)
			}
		}
	}
	// Summarize and export every function — including the clean ones,
	// so importers can tell "proven clean" from "never analyzed".
	for _, fn := range order {
		pass.ExportFact(FactSummary, fn, a.summarize(fn))
	}
	reported := map[lineKey]bool{}
	for _, root := range roots {
		if _, cold := pass.ImportFact(lint.FactColdPath, root); cold {
			pass.Reportf(a.decls[root].Name.Pos(),
				"%s is marked both edgelint:noalloc and edgelint:coldpath; pick one", renderFunc(root))
			continue
		}
		sum := a.sums[root]
		for _, s := range sum.Sites {
			a.report(root, s, reported)
		}
		if sum.Truncated {
			pass.Reportf(a.decls[root].Name.Pos(),
				"noalloc function %s reaches more allocation sites than shown (summary truncated at %d)",
				renderFunc(root), maxSites)
		}
	}
	return nil
}

// report emits one root diagnostic, deduplicated per line and
// construct so a helper shared by several roots is reported once.
func (a *analysis) report(root *types.Func, s AllocSite, reported map[lineKey]bool) {
	p := a.pass.Fset.Position(s.Pos)
	key := lineKey{file: p.Filename, line: p.Line, desc: s.Desc}
	if reported[key] {
		return
	}
	reported[key] = true
	if len(s.Chain) == 0 {
		a.pass.Reportf(s.Pos, "noalloc function %s allocates: %s", renderFunc(root), s.Desc)
		return
	}
	path := renderFunc(root) + " -> " + strings.Join(s.Chain, " -> ")
	a.pass.Reportf(s.Pos, "noalloc function %s reaches allocation: %s (in %s; path: %s)",
		renderFunc(root), s.Desc, s.Where, path)
}

// summarize computes (memoized) the allocation summary of fn:
// the sites in its own body plus the sites escalated from callees.
// Cycles break by treating the back-edge as clean, like txnjournal.
func (a *analysis) summarize(fn *types.Func) *Summary {
	if s, ok := a.sums[fn]; ok {
		return s
	}
	if a.working[fn] {
		return &Summary{}
	}
	a.working[fn] = true
	defer func() { a.working[fn] = false }()

	sum := &Summary{}
	fd := a.decls[fn]
	if fd == nil || fd.Body == nil {
		a.sums[fn] = sum
		return sum
	}
	if _, cold := a.pass.ImportFact(lint.FactColdPath, fn); cold {
		sum.Cold = true
		a.sums[fn] = sum
		return sum
	}
	info := a.pass.TypesInfo
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if a.waived(n.Pos()) || inPanicArg(info, stack) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			a.checkCall(sum, n)
		case *ast.CompositeLit:
			a.checkComposite(sum, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					a.add(sum, AllocSite{Pos: n.Pos(), Desc: "address-taken composite literal allocates"})
				}
			}
		case *ast.FuncLit:
			a.checkFuncLit(sum, n, stack)
		case *ast.AssignStmt:
			a.checkMapWrite(sum, n)
		case *ast.BinaryExpr:
			a.checkConcat(sum, n)
		case *ast.ReturnStmt:
			a.checkReturn(sum, n, stack, fn)
		case *ast.GoStmt:
			a.add(sum, AllocSite{Pos: n.Pos(), Desc: "go statement allocates"})
		}
		return true
	})
	a.sums[fn] = sum
	return sum
}

// add appends a site to sum, honoring maxSites.
func (a *analysis) add(sum *Summary, s AllocSite) {
	if len(sum.Sites) >= maxSites {
		sum.Truncated = true
		return
	}
	sum.Sites = append(sum.Sites, s)
}

// waived reports whether pos lies on a line covered by an
// edgelint:coldpath line directive.
func (a *analysis) waived(pos token.Pos) bool {
	p := a.pass.Fset.Position(pos)
	return a.coldLines[p.Filename][p.Line]
}

// inPanicArg reports whether the innermost stack node sits inside the
// argument of a builtin panic call: panic branches are automatically
// cold.
func inPanicArg(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			continue
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	return false
}

// checkCall classifies one call expression: builtin allocators,
// allocating conversions, caller-side boxing and variadic
// materialization, and callee summary escalation.
func (a *analysis) checkCall(sum *Summary, call *ast.CallExpr) {
	info := a.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		a.checkConversion(sum, call, tv.Type)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				a.add(sum, AllocSite{Pos: call.Pos(), Desc: "make(" + types.ExprString(call.Args[0]) + ") allocates"})
			case "new":
				a.add(sum, AllocSite{Pos: call.Pos(), Desc: "new(" + types.ExprString(call.Args[0]) + ") allocates"})
			case "append":
				if len(call.Args) > 0 && !reuseAppend(call.Args[0]) {
					a.add(sum, AllocSite{Pos: call.Pos(),
						Desc: "append without a capacity reservation may grow its backing array"})
				}
			}
			return
		}
	}
	callee := lint.CalleeFunc(info, call)
	if callee == nil {
		// Call through a func-typed value (cached closures, slack
		// callbacks): assumed clean — the closure's creation is where
		// the allocation charge lands.
		return
	}
	callee = origin(callee)
	a.checkCallArgs(sum, call, callee)
	if whitelisted(callee) {
		return
	}
	cs := a.calleeSummary(callee)
	if cs == nil {
		desc := fmt.Sprintf("call to %s, which has no noalloc summary (unanalyzed package)", renderFunc(callee))
		if isInterfaceMethod(callee) {
			desc = fmt.Sprintf("dynamic call to %s cannot be proven allocation-free", renderFunc(callee))
		}
		a.add(sum, AllocSite{Pos: call.Pos(), Desc: desc})
		return
	}
	if cs.Truncated {
		sum.Truncated = true
	}
	if cs.Cold || len(cs.Sites) == 0 {
		return
	}
	local := a.decls[callee] != nil
	for _, s := range cs.Sites {
		ns := AllocSite{Desc: s.Desc, Where: s.Where,
			Chain: append([]string{renderFunc(callee)}, s.Chain...)}
		if ns.Where == "" {
			ns.Where = renderFunc(callee)
		}
		if local {
			// Same unit: the callee's positions are valid here, so the
			// diagnostic can point at the actual allocation.
			ns.Pos = s.Pos
		} else {
			// Imported summary: re-anchor at this call site.
			ns.Pos = call.Pos()
		}
		a.add(sum, ns)
	}
}

// checkCallArgs flags caller-side allocations of a resolved call:
// variadic argument-slice materialization and value->interface boxing
// of fixed arguments.
func (a *analysis) checkCallArgs(sum *Summary, call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	nfixed := sig.Params().Len()
	if sig.Variadic() {
		nfixed--
		if call.Ellipsis == token.NoPos && len(call.Args) > nfixed {
			a.add(sum, AllocSite{Pos: call.Pos(),
				Desc: fmt.Sprintf("variadic call to %s materializes an argument slice", renderFunc(callee))})
		}
	}
	for i, arg := range call.Args {
		if i >= nfixed {
			// Variadic elements are subsumed by the slice
			// materialization above; a spread passes an existing slice.
			break
		}
		pt := sig.Params().At(i).Type()
		if _, isTP := pt.(*types.TypeParam); isTP {
			// Generic parameter: instantiated by value at compile
			// time, no interface boxing happens.
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		a.checkBox(sum, arg, "argument")
	}
}

// checkBox flags e when assigning it to an interface heap-allocates:
// concrete, non-constant, non-pointer-shaped values box.
func (a *analysis) checkBox(sum *Summary, e ast.Expr, what string) {
	tv, ok := a.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	if tv.Value != nil {
		return // constants box to static data, no heap allocation
	}
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return // multi-value call forwarding
	}
	if types.IsInterface(tv.Type.Underlying()) || lint.BoxingFree(tv.Type) {
		return
	}
	a.add(sum, AllocSite{Pos: e.Pos(),
		Desc: fmt.Sprintf("%s of type %s boxes into an interface", what, tv.Type.String())})
}

// checkConversion flags allocating type conversions: conversions into
// interface types (boxing) and the copying string<->[]byte/[]rune
// conversions.
func (a *analysis) checkConversion(sum *Summary, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if types.IsInterface(target.Underlying()) {
		a.checkBox(sum, arg, "conversion operand")
		return
	}
	tv, ok := a.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	switch {
	case isString(target) && isByteOrRuneSlice(src):
		a.add(sum, AllocSite{Pos: call.Pos(), Desc: "string(...) conversion copies the slice"})
	case isByteOrRuneSlice(target) && isString(src):
		a.add(sum, AllocSite{Pos: call.Pos(), Desc: types.ExprString(call.Fun) + "(...) conversion copies the string"})
	}
}

// checkComposite flags reference-allocating composite literals: slice
// literals with elements and any map literal. Struct and array
// literals are values; an empty slice literal points at zerobase.
func (a *analysis) checkComposite(sum *Summary, lit *ast.CompositeLit) {
	tv, ok := a.pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		if len(lit.Elts) > 0 {
			a.add(sum, AllocSite{Pos: lit.Pos(), Desc: "non-empty slice literal allocates"})
		}
	case *types.Map:
		a.add(sum, AllocSite{Pos: lit.Pos(), Desc: "map literal allocates"})
	}
}

// checkFuncLit flags closure literals that capture enclosing variables
// by reference — each such literal is a heap allocation at every
// evaluation. Literals passed directly to sort.Search are exempt (the
// callback provably does not escape); their bodies are still scanned
// by the enclosing walk.
func (a *analysis) checkFuncLit(sum *Summary, lit *ast.FuncLit, stack []ast.Node) {
	if a.sortSearchArg(stack, lit) {
		return
	}
	if caps := capturedVars(a.pass.TypesInfo, lit); len(caps) > 0 {
		a.add(sum, AllocSite{Pos: lit.Pos(),
			Desc: "closure captures " + strings.Join(caps, ", ") + " by reference"})
	}
}

// capturedVars returns the names of the enclosing-function variables
// lit captures by reference, in source order: variables used in the
// body that are neither declared inside the literal (including its
// parameters) nor package-level. Any capture forces the closure onto
// the heap each time the literal is evaluated.
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	declared := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	seen := map[types.Object]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || declared[v] || seen[v] {
			return true
		}
		if v.Pkg() == nil || v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
			return true // package-level (or universe) — not a capture
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	return out
}

// sortSearchArg reports whether lit is a direct argument of a
// sort.Search call (stack top is lit itself).
func (a *analysis) sortSearchArg(stack []ast.Node, lit *ast.FuncLit) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := lint.CalleeFunc(a.pass.TypesInfo, call)
	if callee == nil || fullName(origin(callee)) != "sort.Search" {
		return false
	}
	for _, arg := range call.Args {
		if arg == lit {
			return true
		}
	}
	return false
}

// checkMapWrite flags assignments through a map index: any map write
// may trigger bucket allocation (and writes to nil maps panic).
func (a *analysis) checkMapWrite(sum *Summary, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		tv, ok := a.pass.TypesInfo.Types[ix.X]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			a.add(sum, AllocSite{Pos: lhs.Pos(), Desc: "map write may allocate"})
		}
	}
}

// checkConcat flags non-constant string concatenation.
func (a *analysis) checkConcat(sum *Summary, be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	tv, ok := a.pass.TypesInfo.Types[be]
	if !ok || tv.Type == nil || tv.Value != nil {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		a.add(sum, AllocSite{Pos: be.Pos(), Desc: "string concatenation allocates"})
	}
}

// checkReturn flags value->interface boxing at return statements,
// against the innermost enclosing function literal's signature (or the
// declared function's).
func (a *analysis) checkReturn(sum *Summary, ret *ast.ReturnStmt, stack []ast.Node, fn *types.Func) {
	var sig *types.Signature
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			sig, _ = a.pass.TypesInfo.Types[lit].Type.(*types.Signature)
			break
		}
	}
	if sig == nil {
		sig, _ = fn.Type().(*types.Signature)
	}
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return // bare return over named results, or multi-value forwarding
	}
	for i, e := range ret.Results {
		rt := sig.Results().At(i).Type()
		if types.IsInterface(rt.Underlying()) {
			a.checkBox(sum, e, "return value")
		}
	}
}

// calleeSummary resolves a callee's summary: local functions recurse,
// imported ones come from the fact store. Nil means never analyzed.
func (a *analysis) calleeSummary(callee *types.Func) *Summary {
	if a.decls[callee] != nil {
		return a.summarize(callee)
	}
	if fact, ok := a.pass.ImportFact(FactSummary, callee); ok {
		return fact.(*Summary)
	}
	return nil
}

// reuseAppend reports whether the first append argument is a slice
// expression over an existing base — the x[:0] / x[:n] / x[:cap(x)]
// buffer-reuse idiom this repository treats as a capacity reservation.
func reuseAppend(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.SliceExpr)
	return ok
}

// whitelist names the stdlib functions the hot paths may call: proven
// non-allocating and outside the summarized universe.
var whitelist = map[string]bool{
	"sort.Search":                     true,
	"sync.Mutex.Lock":                 true,
	"sync.Mutex.TryLock":              true,
	"sync.Mutex.Unlock":               true,
	"sync/atomic.Int64.Add":           true,
	"sync/atomic.Int64.Load":          true,
	"sync/atomic.Int64.Store":         true,
	"sync/atomic.Uint64.Add":          true,
	"sync.RWMutex.RLock":              true,
	"sync.RWMutex.RUnlock":            true,
	"sync.RWMutex.Lock":               true,
	"sync.RWMutex.Unlock":             true,
	"container/list.List.MoveToFront": true,
	"container/list.List.Len":         true,
}

func whitelisted(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "math" {
		return true // pure float kernels
	}
	return whitelist[fullName(fn)]
}

// origin maps an instantiated generic function or method back to its
// declared origin, so journal[V] method calls resolve to the decl the
// summarizer indexed.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type().Underlying())
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// fullName is the import-path-qualified function name used for
// whitelisting ("sort.Search", "sync.Mutex.Lock").
func fullName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := lint.NamedOf(sig.Recv().Type()); n != nil {
			return pkg + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// renderFunc is the short package-qualified name used in diagnostics
// ("sched.state.begin").
func renderFunc(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := lint.NamedOf(sig.Recv().Type()); n != nil {
			return pkg + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
