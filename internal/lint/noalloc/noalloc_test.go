package noalloc_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/noalloc"
)

func TestNoAlloc(t *testing.T) {
	linttest.Run(t, noalloc.Analyzer, "a")
}

// TestNoAllocCrossPackage checks that allocation summaries cross
// package boundaries: the xc roots reach (or are proven clear of) an
// allocation two imports down, and the diagnostic re-anchors at the
// local call site with the full xc -> xb -> xa provenance chain.
func TestNoAllocCrossPackage(t *testing.T) {
	linttest.Run(t, noalloc.Analyzer, "xa", "xb", "xc")
}
