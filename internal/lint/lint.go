// Package lint is a small, dependency-free analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built on the standard
// library's go/ast and go/types. It exists because this repository
// enforces domain invariants — tolerance-aware float time comparisons,
// seeded randomness, verified schedules, handled errors — mechanically
// rather than by reviewer vigilance, and the x/tools module is not a
// dependency of this offline-buildable module.
//
// An Analyzer inspects one type-checked package unit (a Pass) and
// reports diagnostics. Units are produced by the loader in load.go
// (driven by `go list -export`, exactly like `go vet` drives its
// analyzers) or by the fixture loader in the linttest subpackage.
//
// Diagnostics can be suppressed per line with a directive comment on
// the offending line or the line directly above it:
//
//	// edgelint:ignore floateq — exact ordering comparison
//
// naming one or more analyzers (or "all").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore
	// directives; it must be a lowercase identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer flags.
	Doc string
	// Run inspects the pass and reports diagnostics via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one type-checked package unit.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the run-wide fact store (see facts.go): marker facts
	// exported by the framework pre-pass plus whatever summaries
	// earlier-analyzed units exported. Shared by every unit of one
	// driver run, so facts exported here are visible to units analyzed
	// later in dependency order.
	Facts *Facts

	diags *[]Diagnostic
}

// ExportFact records a fact about obj for downstream units (and later
// analyzers of this unit) to import.
func (p *Pass) ExportFact(kind string, obj types.Object, fact any) {
	p.Facts.Export(kind, obj, fact)
}

// ImportFact retrieves a fact about obj, whether obj is local or
// reached through any number of imports.
func (p *Pass) ImportFact(kind string, obj types.Object) (any, bool) {
	return p.Facts.Import(kind, obj)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Unit is one type-checked package ready for analysis: either a plain
// package, a package augmented with its in-package test files, or an
// external (_test) test package.
type Unit struct {
	// Path is the unit's import path; external test units carry the
	// "_test" suffix ("repro/internal/sched_test").
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies the analyzers to the unit with a fresh fact store and
// returns the diagnostics that survive ignore directives, sorted by
// position. Single-unit analysis only sees the unit's own facts; a
// driver that wants cross-package facts threads one store through
// RunWith over all units in dependency order.
func (u *Unit) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	return u.RunWith(analyzers, NewFacts())
}

// RunWith is Run with a caller-owned fact store. The framework marker
// pre-pass (ExportMarkers) runs first, so the unit's directive facts
// are in the store before any analyzer sees the unit; the analyzers
// then run in order, each able to import facts exported by earlier
// units and to export its own.
func (u *Unit) RunWith(analyzers []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFacts()
	}
	ExportMarkers(u, facts)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			Facts:     facts,
			diags:     &diags,
		}
		if err := runAnalyzer(a, pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", u.Path, a.Name, err)
		}
	}
	diags = filterIgnored(u.Fset, u.Files, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// runAnalyzer invokes a.Run, converting a panic into an error so one
// analyzer crashing on one unit surfaces as a driver failure for that
// unit instead of killing the whole process (and with it the
// diagnostics of every other unit).
func runAnalyzer(a *Analyzer, pass *Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("analyzer panicked: %v", r)
		}
	}()
	return a.Run(pass)
}

// DirectiveLines maps, per file, the lines covered by an
// "edgelint:<name>" directive comment, using the same coverage rule as
// ignore filtering: the directive's own line, the rest of its comment
// group, and the first line after the group. Analyzers that must honor
// line-scoped waivers during summarization (before diagnostics exist to
// filter) — e.g. noalloc's edgelint:coldpath site waivers — consult
// this instead of filterIgnored.
func DirectiveLines(fset *token.FileSet, files []*ast.File, name string) map[string]map[int]bool {
	covered := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			groupEnd := fset.Position(cg.End()).Line
			for _, c := range cg.List {
				if _, ok := Directive(c.Text, name); !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m := covered[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					covered[pos.Filename] = m
				}
				for line := pos.Line; line <= groupEnd+1; line++ {
					m[line] = true
				}
			}
		}
	}
	return covered
}

// IsFloat reports whether t's underlying type is a floating-point
// basic type (including untyped float).
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// CalleeFunc resolves the called function or method of a call
// expression, or nil for builtins, type conversions and calls of
// function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// filterIgnored drops diagnostics on lines covered by an
// "edgelint:ignore" directive comment: the directive's own line, the
// rest of its comment group (the reason may wrap), and the first line
// after the group — so a directive placed above the offending code
// keeps working when its justification spans several comment lines.
func filterIgnored(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	// suppressed[filename][line] = set of analyzer names (or "all").
	suppressed := map[string]map[int]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			groupEnd := fset.Position(cg.End()).Line
			for _, c := range cg.List {
				names := parseIgnore(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := suppressed[pos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					suppressed[pos.Filename] = m
				}
				for line := pos.Line; line <= groupEnd+1; line++ {
					if m[line] == nil {
						m[line] = map[string]bool{}
					}
					for _, n := range names {
						m[line][n] = true
					}
				}
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		if s := suppressed[d.Pos.Filename][d.Pos.Line]; s != nil && (s[d.Analyzer] || s["all"]) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseIgnore extracts the analyzer names of an "edgelint:ignore"
// directive, or nil if the comment is not one. Names run until the
// end of the comment or an em/double dash starting a free-form reason,
// and may be separated by spaces, commas, or both
// ("clonecheck,immutable" and "clonecheck, immutable" are equivalent).
func parseIgnore(comment string) []string {
	args, ok := Directive(comment, "ignore")
	if !ok {
		return nil
	}
	var names []string
	for _, f := range args {
		ok := f != ""
		for _, r := range f {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		names = append(names, f)
	}
	return names
}

// Directive parses an "edgelint:<name>" directive comment and returns
// its arguments: comma- or space-separated tokens running until the
// end of the comment or an em/double dash that starts a free-form
// reason. The second result is false if the comment does not contain
// the directive at all; a bare directive yields (nil, true).
func Directive(comment, name string) ([]string, bool) {
	text := strings.TrimPrefix(strings.TrimPrefix(comment, "//"), "/*")
	marker := "edgelint:" + name
	idx := strings.Index(text, marker)
	if idx < 0 {
		return nil, false
	}
	rest := text[idx+len(marker):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != ',' {
		// "edgelint:ignorex" is not "edgelint:ignore".
		return nil, false
	}
	rest = strings.ReplaceAll(rest, ",", " ")
	var args []string
	for _, f := range strings.Fields(rest) {
		if f == "—" || f == "--" || f == "-" {
			break
		}
		args = append(args, f)
	}
	return args, true
}
