package errflow_test

import (
	"testing"

	"repro/internal/lint/errflow"
	"repro/internal/lint/linttest"
)

func TestErrFlow(t *testing.T) {
	linttest.Run(t, errflow.Analyzer, "a")
}
