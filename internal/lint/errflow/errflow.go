// Package errflow flags dropped error returns from this module's own
// exported APIs. The scheduling pipeline threads failure through
// errors (malformed DAGs, infeasible reservations, verifier reports);
// a call like
//
//	g.CriticalPathLength()        // result ignored entirely
//	order, _ := g.PriorityOrder() // error blanked
//
// silently turns "the input was invalid" into "the numbers are
// garbage". Third-party and stdlib calls are out of scope — this
// analyzer enforces the module's own contract, not general hygiene
// (fmt.Println's error is conventionally ignored).
package errflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags dropped errors from module APIs.
var Analyzer = &lint.Analyzer{
	Name: "errflow",
	Doc:  "flags dropped or blank-assigned error returns from this module's exported functions",
	Run:  run,
}

// modulePath is the module whose exported APIs are checked.
const modulePath = "repro"

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				checkDropped(pass, st.X)
			case *ast.GoStmt:
				checkDropped(pass, st.Call)
			case *ast.DeferStmt:
				checkDropped(pass, st.Call)
			case *ast.AssignStmt:
				checkBlanked(pass, st)
			}
			return true
		})
	}
	return nil
}

// moduleCallee returns the called module-exported function with an
// error result, or nil.
func moduleCallee(pass *lint.Pass, e ast.Expr) (*types.Func, *ast.CallExpr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	fn := lint.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !fn.Exported() {
		return nil, nil
	}
	path := fn.Pkg().Path()
	if path != modulePath && !strings.HasPrefix(path, modulePath+"/") {
		return nil, nil
	}
	return fn, call
}

// errResults returns the indices of error-typed results of fn.
func errResults(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if lint.IsErrorType(sig.Results().At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

// checkDropped flags a call statement that discards an error result
// outright.
func checkDropped(pass *lint.Pass, e ast.Expr) {
	fn, call := moduleCallee(pass, e)
	if fn == nil || len(errResults(fn)) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s.%s is dropped; handle it or assign it explicitly", fn.Pkg().Name(), fn.Name())
}

// checkBlanked flags `x, _ := Call()` where the blanked position is a
// module API's error result.
func checkBlanked(pass *lint.Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	fn, call := moduleCallee(pass, st.Rhs[0])
	if fn == nil {
		return
	}
	for _, i := range errResults(fn) {
		if i >= len(st.Lhs) {
			continue
		}
		if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(call.Pos(), "error returned by %s.%s is assigned to the blank identifier; handle it", fn.Pkg().Name(), fn.Name())
		}
	}
}
