// Package dag is a stub of a module package with error-returning
// exported APIs, for the errflow fixtures.
package dag

// Graph mirrors the real task-graph type's shape.
type Graph struct{ n int }

// New builds a graph or reports a malformed size.
func New(n int) (*Graph, error) {
	return &Graph{n: n}, nil
}

// Validate reports structural problems.
func (g *Graph) Validate() error { return nil }

// CriticalPathLength can fail on cyclic graphs.
func (g *Graph) CriticalPathLength() (float64, error) {
	return float64(g.n), nil
}

// Size never fails; calls to it are never flagged.
func (g *Graph) Size() int { return g.n }
