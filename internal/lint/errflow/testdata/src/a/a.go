package a

import (
	"fmt"

	"other"
	"repro/internal/dag"
)

func f() {
	g, err := dag.New(3)
	if err != nil {
		return
	}

	g.Validate()     // want "error returned by dag.Validate is dropped"
	_ = g.Validate() // want "assigned to the blank identifier"

	cp, _ := g.CriticalPathLength() // want "assigned to the blank identifier"
	_ = cp

	if err := g.Validate(); err != nil { // handled: fine
		return
	}
	v, verr := g.CriticalPathLength() // captured: fine
	if verr != nil {
		return
	}
	_ = v

	defer g.Validate() // want "error returned by dag.Validate is dropped"
	go g.Validate()    // want "error returned by dag.Validate is dropped"

	_ = g.Size()     // no error result: fine
	other.Do()       // not this module: fine
	fmt.Println("x") // stdlib: fine

	// edgelint:ignore errflow — best-effort cleanup, failure is acceptable.
	g.Validate()
}
