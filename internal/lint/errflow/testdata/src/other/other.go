// Package other stands in for a third-party dependency: its errors
// are outside errflow's scope.
package other

// Do returns an error that errflow must not police.
func Do() error { return nil }
