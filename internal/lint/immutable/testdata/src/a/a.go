// Fixture for the immutable analyzer: a marked struct with a
// constructor allow-list, and a marked named slice with none.
package a

// Config is frozen after construction.
// edgelint:immutable NewConfig AddRow — built by NewConfig/AddRow, then read-only
type Config struct {
	rows []int
	name string
}

func NewConfig(n int) *Config {
	c := &Config{}
	c.rows = make([]int, 0, n) // clean: declared constructor
	c.name = "config"
	return c
}

func (c *Config) AddRow(v int) {
	c.rows = append(c.rows, v) // clean: declared constructor
}

func (c *Config) Reset() {
	c.rows = nil // want "assignment to Config"
}

func (c *Config) Bump() {
	c.rows[0]++ // want "increment/decrement of Config"
}

func Mutate(c *Config) {
	c.name = "x" // want "assignment to Config"
}

func CopyInto(c *Config, src []int) {
	copy(c.rows, src) // want "copy into Config"
}

// Rebuild writes only through a freshly allocated local: values under
// construction are not frozen yet.
func Rebuild() *Config {
	c := &Config{}
	c.rows = append(c.rows, 1)
	c.name = "rebuilt"
	return c
}

// Route is a frozen named slice: cached values are shared, so element
// stores and appends through the type are writes.
// edgelint:immutable — cached route values are shared read-only
type Route []int

func Extend(r Route, v int) Route {
	return append(r, v) // want "append through Route"
}

func Stamp(r Route) {
	r[0] = 9 // want "assignment to Route"
}

// Build constructs a Route in a fresh local, the route-builder idiom.
func Build(n int) Route {
	route := make(Route, 0, n)
	for i := 0; i < n; i++ {
		route = append(route, i)
	}
	return route
}

// Plain is unmarked: writes anywhere are fine.
type Plain struct {
	rows []int
}

func (p *Plain) Set(v int) {
	p.rows = append(p.rows, v)
}
