// Package xb imports xa and writes its immutable types: every write
// must be flagged via the imported facts, and xa's constructor
// allowance must not leak into this package.
package xb

import "xa"

func mutate(g *xa.Graph) {
	g.Tasks[0] = 9    // want "assignment to Graph, which is marked edgelint:immutable, outside its constructors \\(allowed writers: AddTask, NewGraph in xa\\)"
	g.Costs[3] = 1.5  // want "assignment to Graph"
	g.Tasks[0]++      // want "increment/decrement of Graph"
}

// AddTask shares a constructor's name, but the allowance is scoped to
// the declaring package: here it is just another illegal writer.
func AddTask(g *xa.Graph, id int) {
	g.Tasks = append(g.Tasks, id) // want "append through Graph" "assignment to Graph"
}

func stompRoute(r xa.Route) {
	r[0] = 7 // want "assignment to Route, which is marked edgelint:immutable, outside its constructors \\(no declared constructors\\)"
}

// build mutates graphs that are still under construction; freshness
// exempts them exactly as it does inside xa.
func build() *xa.Graph {
	g := xa.NewGraph()
	g.Tasks[0] = 1
	h := &xa.Graph{Costs: map[int]float64{}}
	h.Costs[0] = 2.5
	return h
}
