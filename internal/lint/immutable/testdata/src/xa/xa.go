// Package xa declares immutable-marked types imported by package xb;
// the markers must reach xb through the fact store, since this is
// exactly the dag.Graph / network.Topology situation: the directive
// comment does not survive export data.
package xa

// Graph is a task graph frozen once handed out.
// edgelint:immutable NewGraph AddTask — construction API only
type Graph struct {
	Tasks []int
	Costs map[int]float64
}

// NewGraph is a declared constructor.
func NewGraph() *Graph {
	g := &Graph{Costs: map[int]float64{}}
	g.Tasks = append(g.Tasks, 0)
	return g
}

// AddTask is a declared constructor.
func (g *Graph) AddTask(id int, cost float64) {
	g.Tasks = append(g.Tasks, id)
	g.Costs[id] = cost
}

// Route is a marked named slice with no declared constructors.
// edgelint:immutable
type Route []int
