// Package immutable enforces frozen-after-construction types. The
// shared RouteCache behind parallel EFT probing is sound only because
// network.Topology and the cached Route values are never written after
// they are built; a stray store corrupts every fork at once. Types opt
// in with a marker directive on their declaration naming the functions
// allowed to write them:
//
//	// Topology is the static interconnect.
//	// edgelint:immutable AddProcessor AddSwitch AddLink — frozen after construction
//	type Topology struct { ... }
//
// Everywhere outside the listed constructors, the analyzer flags field
// assignments, element stores, ++/--, copy destinations, and appends
// that reach through a marked type. Writes rooted at a freshly
// allocated local (a new value still under construction, as in a Clone
// or a route builder) are permitted: immutability freezes values after
// they escape, not while they are built.
//
// Markers cross package boundaries as facts: the framework's marker
// pre-pass exports each edgelint:immutable directive, the driver
// analyzes packages in dependency order, and this analyzer imports the
// fact through whatever named type a write reaches — so a write to an
// exported field of dag.Graph from another package is flagged even
// though the directive comment does not survive export data.
// Constructor allowances are scoped to the declaring package: AddTask
// may write dag.Graph only inside internal/dag.
package immutable

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "immutable",
	Doc:  "writes to edgelint:immutable types outside their declared constructors",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc flags writes through marked types in one function. The
// marks come from the fact store, so locally declared and imported
// immutable types are enforced identically. A function named in a
// type's constructor list — and declared in the type's own package —
// may write that type; closures inside it inherit the allowance (they
// are part of the construction).
func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	// Built lazily: most functions never touch a marked type and the
	// freshness scan is the expensive part.
	var fresh *lint.Freshness
	for _, w := range lint.Writes(pass.TypesInfo, fd.Body) {
		root, owners := lint.DecomposePath(pass.TypesInfo, w.Expr)
		// The written expression's own named type matters for appends
		// and copies into a marked named slice (e.g. a cached Route).
		if w.Kind == "append" || w.Kind == "copy" {
			if t := exprType(pass, w.Expr); t != nil {
				if n := lint.NamedOf(t); n != nil {
					owners = append(owners, n)
				}
			}
		}
		for _, owner := range owners {
			fact, ok := pass.ImportFact(lint.FactImmutable, owner.Obj())
			if !ok {
				continue
			}
			m := fact.(*lint.ImmutableMark)
			if m.Allows(pass.Pkg.Path(), fd.Name.Name) {
				continue
			}
			if fresh == nil {
				fresh = lint.NewFreshness(pass.TypesInfo, fd.Body)
			}
			if fresh.IsFresh(root) {
				continue // still under construction
			}
			verb := map[string]string{
				"assign": "assignment to", "incdec": "increment/decrement of",
				"copy": "copy into", "append": "append through",
			}[w.Kind]
			allowed := "no declared constructors"
			if ctors := m.CtorList(); len(ctors) > 0 {
				allowed = "allowed writers: " + strings.Join(ctors, ", ")
				if m.Pkg != pass.Pkg.Path() {
					allowed += " in " + m.Pkg
				}
			}
			pass.Reportf(w.Pos,
				"%s %s, which is marked edgelint:immutable, outside its constructors (%s)",
				verb, owner.Obj().Name(), allowed)
			break
		}
	}
}

func exprType(pass *lint.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}
