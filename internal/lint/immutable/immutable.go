// Package immutable enforces frozen-after-construction types. The
// shared RouteCache behind parallel EFT probing is sound only because
// network.Topology and the cached Route values are never written after
// they are built; a stray store corrupts every fork at once. Types opt
// in with a marker directive on their declaration naming the functions
// allowed to write them:
//
//	// Topology is the static interconnect.
//	// edgelint:immutable AddProcessor AddSwitch AddLink — frozen after construction
//	type Topology struct { ... }
//
// Everywhere outside the listed constructors, the analyzer flags field
// assignments, element stores, ++/--, copy destinations, and appends
// that reach through a marked type. Writes rooted at a freshly
// allocated local (a new value still under construction, as in a Clone
// or a route builder) are permitted: immutability freezes values after
// they escape, not while they are built.
//
// The marker is visible only within the declaring package (the
// framework analyzes one package at a time and comments do not survive
// export data), which matches how these types are protected anyway:
// their fields are unexported, so cross-package writes cannot compile.
package immutable

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "immutable",
	Doc:  "writes to edgelint:immutable types outside their declared constructors",
	Run:  run,
}

// marker is one edgelint:immutable declaration.
type marker struct {
	named *types.Named
	ctors map[string]bool // function names allowed to write
}

func run(pass *lint.Pass) error {
	markers := collectMarkers(pass)
	if len(markers) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, markers, fd)
		}
	}
	return nil
}

// collectMarkers finds edgelint:immutable directives on type
// declarations in this package.
func collectMarkers(pass *lint.Pass) map[*types.TypeName]*marker {
	markers := map[*types.TypeName]*marker{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if doc == nil {
					continue
				}
				var ctors []string
				found := false
				for _, c := range doc.List {
					if args, ok := lint.Directive(c.Text, "immutable"); ok {
						found = true
						ctors = append(ctors, args...)
					}
				}
				if !found {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				m := &marker{named: named, ctors: map[string]bool{}}
				for _, c := range ctors {
					m.ctors[c] = true
				}
				markers[obj] = m
			}
		}
	}
	return markers
}

// checkFunc flags writes through marked types in one function. A
// function named in a type's constructor list may write that type;
// closures inside it inherit the allowance (they are part of the
// construction).
func checkFunc(pass *lint.Pass, markers map[*types.TypeName]*marker, fd *ast.FuncDecl) {
	fresh := lint.NewFreshness(pass.TypesInfo, fd.Body)
	for _, w := range lint.Writes(pass.TypesInfo, fd.Body) {
		root, owners := lint.DecomposePath(pass.TypesInfo, w.Expr)
		// The written expression's own named type matters for appends
		// and copies into a marked named slice (e.g. a cached Route).
		if w.Kind == "append" || w.Kind == "copy" {
			if t := exprType(pass, w.Expr); t != nil {
				if n := lint.NamedOf(t); n != nil {
					owners = append(owners, n)
				}
			}
		}
		for _, owner := range owners {
			m := markers[owner.Obj()]
			if m == nil {
				continue
			}
			if m.ctors[fd.Name.Name] {
				continue
			}
			if fresh.IsFresh(root) {
				continue // still under construction
			}
			verb := map[string]string{
				"assign": "assignment to", "incdec": "increment/decrement of",
				"copy": "copy into", "append": "append through",
			}[w.Kind]
			allowed := "no declared constructors"
			if len(m.ctors) > 0 {
				names := make([]string, 0, len(m.ctors))
				for n := range m.ctors {
					names = append(names, n)
				}
				sortStrings(names)
				allowed = "allowed writers: " + strings.Join(names, ", ")
			}
			pass.Reportf(w.Pos,
				"%s %s, which is marked edgelint:immutable, outside its constructors (%s)",
				verb, owner.Obj().Name(), allowed)
			break
		}
	}
}

func exprType(pass *lint.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// sortStrings is an insertion sort; the ctor lists are tiny and this
// avoids importing sort for one call.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
