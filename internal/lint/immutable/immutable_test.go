package immutable_test

import (
	"testing"

	"repro/internal/lint/immutable"
	"repro/internal/lint/linttest"
)

func TestImmutable(t *testing.T) {
	linttest.Run(t, immutable.Analyzer, "a")
}
