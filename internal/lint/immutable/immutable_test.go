package immutable_test

import (
	"testing"

	"repro/internal/lint/immutable"
	"repro/internal/lint/linttest"
)

func TestImmutable(t *testing.T) {
	linttest.Run(t, immutable.Analyzer, "a")
}

// TestImmutableCrossPackage checks that edgelint:immutable markers
// reach importing packages as facts: xb writes xa's marked types.
func TestImmutableCrossPackage(t *testing.T) {
	linttest.Run(t, immutable.Analyzer, "xa", "xb")
}
