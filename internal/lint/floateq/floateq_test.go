package floateq_test

import (
	"testing"

	"repro/internal/lint/floateq"
	"repro/internal/lint/linttest"
)

func TestFloatEq(t *testing.T) {
	linttest.Run(t, floateq.Analyzer, "a")
}
