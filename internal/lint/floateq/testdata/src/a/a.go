package a

type task struct {
	Start, Finish float64
	Cost          float64
	Weight        int
}

func cmp(a, b task, x, y float64) {
	_ = a.Start == b.Start  // want "bare float64"
	_ = a.Finish >= b.Start // want "GeqEps or Geq"
	_ = a.Cost <= b.Cost    // want "LeqEps or Leq"
	_ = a.Start != b.Finish // want "Close or CloseRel"

	end := a.Finish
	_ = end >= x // want "GeqEps or Geq"

	_ = a.Start < b.Start    // strict ordering is allowed
	_ = a.Start >= 0         // constant threshold is allowed
	_ = a.Finish <= 1.5      // constant threshold is allowed
	_ = x == y               // no scheduling vocabulary
	_ = a.Weight == b.Weight // ints are exact

	// edgelint:ignore floateq — deliberate exact comparison for the test.
	_ = a.Start == b.Start
}
