// Package floateq flags bare float64 equality and ordering
// comparisons between time/cost/bandwidth expressions. Schedules are
// built from long chains of float divisions and summations; comparing
// two derived times with ==, !=, >= or <= is an off-by-epsilon bug
// waiting to happen (a slot rejected from a gap it fits into up to
// rounding noise, a causality check tripped by a 1e-13 deficit). All
// such decisions must go through repro/internal/fptime's
// tolerance-aware helpers.
//
// Heuristics that keep the analyzer focused on its domain:
//
//   - Only ==, !=, >= and <= are flagged. Strict < and > are how the
//     tolerant helpers themselves are built, and are the conventional
//     (exact) comparison in sort functions.
//   - Comparisons against compile-time constants ("x <= 0",
//     "rate > 1+Eps") are allowed: they are explicit thresholds, not
//     derived-time comparisons.
//   - At least one operand must mention scheduling-time vocabulary
//     (start, finish, arrival, makespan, cost, bandwidth, ...).
//   - Test files and the fptime package itself are exempt; exact
//     assertions in tests are deliberate, and the helpers must compare
//     bare floats to exist at all.
package floateq

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags bare float64 time/cost comparisons.
var Analyzer = &lint.Analyzer{
	Name: "floateq",
	Doc:  "flags bare float64 ==/!=/>=/<= between time, cost or bandwidth expressions; use repro/internal/fptime helpers",
	Run:  run,
}

// vocabulary are the identifier fragments that mark an expression as a
// scheduling time, cost or bandwidth quantity (matched
// case-insensitively against every identifier in the operand).
var vocabulary = []string{
	"start", "finish", "end", "arriv", "makespan", "ready", "slack",
	"deadline", "cost", "bandwidth", "speed", "rate", "delay", "dur",
	"time", "level", "drt", "span", "horizon",
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() == "fptime" {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ, token.GEQ, token.LEQ:
			default:
				return true
			}
			tx := pass.TypesInfo.TypeOf(be.X)
			ty := pass.TypesInfo.TypeOf(be.Y)
			if tx == nil || ty == nil || !lint.IsFloat(tx) || !lint.IsFloat(ty) {
				return true
			}
			if isConst(pass, be.X) || isConst(pass, be.Y) {
				return true
			}
			if !mentionsTime(be.X) && !mentionsTime(be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "bare float64 %q comparison of time/cost values; use repro/internal/fptime (%s)", be.Op, suggestion(be.Op))
			return true
		})
	}
	return nil
}

func suggestion(op token.Token) string {
	switch op {
	case token.GEQ:
		return "GeqEps or Geq"
	case token.LEQ:
		return "LeqEps or Leq"
	default:
		return "Close or CloseRel"
	}
}

// isConst reports whether the expression is a compile-time constant.
func isConst(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// mentionsTime reports whether any identifier within the expression
// carries scheduling-time vocabulary.
func mentionsTime(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		name := strings.ToLower(id.Name)
		for _, v := range vocabulary {
			if strings.Contains(name, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
