// Mutation- and aliasing-analysis helpers shared by the clonecheck,
// immutable and aliasret analyzers: classifying which types carry
// references, which local expressions are freshly allocated, and which
// named types an assignment path writes through.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RefBearing reports whether values of type t carry references —
// i.e. whether a shallow copy of a t aliases mutable state with the
// original. Slices, maps, pointers, channels, funcs, interfaces and
// unsafe pointers are ref-bearing, as are structs and arrays that
// contain any ref-bearing field or element. Strings are immutable in
// Go and therefore not ref-bearing.
func RefBearing(t types.Type) bool {
	return refBearing(t, map[types.Type]bool{})
}

func refBearing(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		// Recursive type: a cycle can only close through a pointer,
		// slice or map, which is already reported as ref-bearing at
		// the point of recursion.
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refBearing(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return refBearing(u.Elem(), seen)
	default:
		// Named types reach here only via Underlying; anything
		// unrecognized is treated as ref-bearing to stay conservative.
		return true
	}
}

// BoxingFree reports whether converting a value of type t to an
// interface cannot heap-allocate: pointers, channels, maps, funcs,
// unsafe pointers and nil-able interfaces are pointer-shaped and fit an
// interface word directly. Everything else (ints, floats, strings,
// slices, structs, arrays, bools) boxes — the runtime copies the value
// to the heap unless escape analysis intervenes, which a static
// discipline cannot rely on.
func BoxingFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil
	}
	return false
}

// NamedOf resolves t to its named type, looking through one level of
// pointer indirection (the shape of method receivers and struct-field
// owners). Returns nil for unnamed types.
func NamedOf(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// Freshness classifies expressions within one function body as
// freshly allocated or potentially aliasing pre-existing state. It
// resolves local variables through their defining assignment, so
//
//	cp := make([]seg, len(b.segs))
//	...
//	return &BWTimeline{segs: cp}
//
// recognizes cp as fresh.
type Freshness struct {
	info *types.Info
	defs map[types.Object][]defEntry
}

// defEntry is one assignment to a local variable. End is the position
// just past the assignment's RHS: a use of the variable resolves to
// the last entry ending before it, so `x = append(x, y)` resolves the
// x inside its own RHS to the previous definition rather than cycling.
type defEntry struct {
	end token.Pos
	rhs ast.Expr
}

// NewFreshness builds the local-definition map for body. A use of a
// variable resolves through the textually latest assignment completed
// before the use; element stores (cp[i] = ...) do not redefine cp.
func NewFreshness(info *types.Info, body *ast.BlockStmt) *Freshness {
	f := &Freshness{info: info, defs: map[types.Object][]defEntry{}}
	if body == nil {
		return f
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				f.defs[obj] = append(f.defs[obj], defEntry{end: as.Rhs[i].End(), rhs: as.Rhs[i]})
			}
		}
		return true
	})
	return f
}

// ResolveDef returns the expression that last defined obj before pos
// (the RHS of its textually latest completed assignment), or nil for
// parameters and variables assigned outside the analyzed body. Used by
// analyzers that must classify what a local variable aliases — e.g.
// whether a *EdgeSchedule came from cowEdge or from the live journaled
// slice.
func (f *Freshness) ResolveDef(obj types.Object, pos token.Pos) ast.Expr {
	return f.resolve(obj, pos)
}

// resolve returns the latest definition of obj completed before pos,
// or nil.
func (f *Freshness) resolve(obj types.Object, pos token.Pos) ast.Expr {
	var best ast.Expr
	var bestEnd token.Pos
	for _, d := range f.defs[obj] {
		if d.end <= pos && d.end >= bestEnd {
			best, bestEnd = d.rhs, d.end
		}
	}
	return best
}

// IsFresh reports whether e denotes a freshly allocated value: a
// composite literal (plain or address-taken), make/new, nil, append
// with a fresh first argument, a conversion of a fresh operand, a
// non-conversion call (constructors and Clone methods are assumed to
// return fresh values), or a local variable defined by any of the
// above. Receiver-rooted selectors, derefs and unresolved identifiers
// are not fresh.
func (f *Freshness) IsFresh(e ast.Expr) bool {
	return f.isFresh(e, 0)
}

func (f *Freshness) isFresh(e ast.Expr, depth int) bool {
	if depth > 20 {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.BasicLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return f.isFresh(e.X, depth+1)
		}
		return true // arithmetic on scalars carries no references
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		obj := f.info.Uses[e]
		if obj == nil {
			obj = f.info.Defs[e]
		}
		if def := f.resolve(obj, e.Pos()); def != nil {
			return f.isFresh(def, depth+1)
		}
		return false
	case *ast.CallExpr:
		if tv, ok := f.info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: []T(x) aliases x's backing store.
			if len(e.Args) == 1 {
				return f.isFresh(e.Args[0], depth+1)
			}
			return false
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make", "new":
				return true
			case "append":
				return len(e.Args) > 0 && f.isFresh(e.Args[0], depth+1)
			}
		}
		// Any other call — a constructor, a Clone method — is assumed
		// to return a fresh value; its own Clone is checked separately.
		return true
	default:
		return false
	}
}

// Write is one mutation of an addressable path: an assignment,
// inc/dec, copy destination, or append through a named slice type.
type Write struct {
	// Expr is the written path (the LHS, the copy destination, or the
	// first append argument).
	Expr ast.Expr
	// Pos anchors the diagnostic.
	Pos token.Pos
	// Kind is "assign", "incdec", "copy" or "append".
	Kind string
}

// Writes collects every mutation of an addressable path in body:
// assignment LHSs (excluding the new variables of :=), ++/--, copy
// destinations, and first arguments of append calls (appending may
// write the shared backing array in place when capacity allows).
func Writes(info *types.Info, body ast.Node) []Write {
	var out []Write
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if n.Tok == token.DEFINE {
					continue // := introduces variables, writes nothing pre-existing
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				out = append(out, Write{Expr: lhs, Pos: lhs.Pos(), Kind: "assign"})
			}
		case *ast.IncDecStmt:
			out = append(out, Write{Expr: n.X, Pos: n.X.Pos(), Kind: "incdec"})
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || len(n.Args) == 0 {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "copy":
				out = append(out, Write{Expr: n.Args[0], Pos: n.Args[0].Pos(), Kind: "copy"})
			case "append":
				out = append(out, Write{Expr: n.Args[0], Pos: n.Args[0].Pos(), Kind: "append"})
			}
		}
		return true
	})
	return out
}

// DecomposePath unwinds a written path expression — selectors, index
// expressions, derefs, parens — to its root expression, collecting the
// named types the path writes through. For g.tasks[id].Cost the owners
// are (Task's named type if any omitted intermediates) … practically:
// the type of every prefix the path selects or indexes into, resolved
// through NamedOf. The root is the leftmost expression (usually an
// identifier).
func DecomposePath(info *types.Info, e ast.Expr) (root ast.Expr, owners []*types.Named) {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if t := typeOf(info, x.X); t != nil {
				if n := NamedOf(t); n != nil {
					owners = append(owners, n)
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if t := typeOf(info, x.X); t != nil {
				if n := NamedOf(t); n != nil {
					owners = append(owners, n)
				}
			}
			e = x.X
		case *ast.SliceExpr:
			if t := typeOf(info, x.X); t != nil {
				if n := NamedOf(t); n != nil {
					owners = append(owners, n)
				}
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e, owners
		}
	}
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
