// Package aliasret flags methods on clone-forked or immutable types
// that return internal slices or maps without copying — the aliasing
// leak that lets a caller mutate a cached route or a timeline behind
// the owner's back. A type is in scope if it declares a Clone (or
// clone) method or carries an edgelint:immutable marker; for its
// methods, any return expression that is a selector/index chain rooted
// at the receiver and whose type is a slice or map is reported.
//
// Accessors that intentionally expose internals for read-only
// iteration (documented "shared; do not modify") suppress the finding
// with an ignore directive:
//
//	// edgelint:ignore aliasret — read-only iteration accessor
//	func (t *Timeline) Slots() []Slot { return t.slots }
package aliasret

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "aliasret",
	Doc:  "methods on cloned/immutable types returning internal slices or maps without copying",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			recv := lint.NamedOf(sig.Recv().Type())
			if recv == nil || !inScope(pass, recv) {
				continue
			}
			recvObj := receiverObj(pass, fd)
			if recvObj == nil {
				continue
			}
			checkReturns(pass, fd, recv, recvObj)
		}
	}
	return nil
}

// inScope reports whether the receiver type's internals must not leak:
// it declares a Clone/clone method or is marked edgelint:immutable.
// Both classifications come from the fact store, exported by the
// framework's marker pre-pass — so methods declared in a different
// file, or scope established by markers the package cannot even see in
// source (imported type aliases), resolve uniformly.
func inScope(pass *lint.Pass, recv *types.Named) bool {
	if _, ok := pass.ImportFact(lint.FactHasClone, recv.Obj()); ok {
		return true
	}
	_, ok := pass.ImportFact(lint.FactImmutable, recv.Obj())
	return ok
}

// receiverObj resolves the receiver variable object of a method decl,
// or nil for anonymous receivers.
func receiverObj(pass *lint.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// checkReturns flags return expressions that alias the receiver's
// internals. Returns inside nested function literals belong to the
// closure, not the method, and are skipped.
func checkReturns(pass *lint.Pass, fd *ast.FuncDecl, recv *types.Named, recvObj types.Object) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if !aliasesReceiver(pass, r, recvObj) {
					continue
				}
				t := pass.TypesInfo.Types[r].Type
				kind := "slice"
				if _, ok := t.Underlying().(*types.Map); ok {
					kind = "map"
				}
				pass.Reportf(r.Pos(),
					"%s.%s returns an internal %s of the receiver without copying; copy it or annotate edgelint:ignore aliasret",
					recv.Obj().Name(), fd.Name.Name, kind)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// aliasesReceiver reports whether e is a selector/index/deref chain
// rooted at the receiver with slice or map type — a value sharing the
// receiver's backing store.
func aliasesReceiver(pass *lint.Pass, e ast.Expr, recvObj types.Object) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
	default:
		return false
	}
	root, _ := lint.DecomposePath(pass.TypesInfo, e)
	id, ok := root.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj != recvObj {
		return false
	}
	// A bare receiver of named-slice type returning itself (func (r
	// Route) ...) — still an alias; selector/index chains and the
	// receiver itself all qualify. Slicing expressions (e[a:b]) are
	// not decomposed by DecomposePath and root != ident, handled
	// above only when the chain is pure selector/index/deref.
	return true
}
