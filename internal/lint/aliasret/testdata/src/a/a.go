// Fixture for the aliasret analyzer: accessors on cloned and
// immutable types that leak internal slices/maps, next to accessors
// that copy or return values.
package a

// Box has a Clone method, so it is in scope.
type Box struct {
	items []int
	index map[string]int
	name  string
}

func (b *Box) Clone() *Box {
	return &Box{
		items: append([]int(nil), b.items...),
		index: cloneMap(b.index),
		name:  b.name,
	}
}

func cloneMap(m map[string]int) map[string]int {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func (b *Box) Items() []int {
	return b.items // want "Box.Items returns an internal slice"
}

func (b *Box) Index() map[string]int {
	return b.index // want "Box.Index returns an internal map"
}

// ItemsCopy returns a fresh copy: clean.
func (b *Box) ItemsCopy() []int {
	return append([]int(nil), b.items...)
}

// Name returns a string, which is a value: clean.
func (b *Box) Name() string { return b.name }

// Raw deliberately exposes the backing slice for read-only iteration.
// edgelint:ignore aliasret — read-only iteration accessor, documented shared
func (b *Box) Raw() []int { return b.items }

// Grid is in scope through the immutable marker.
// edgelint:immutable NewGrid — frozen after construction
type Grid struct {
	cells []int
}

func NewGrid(n int) *Grid { return &Grid{cells: make([]int, n)} }

func (g *Grid) Cells() []int {
	return g.cells // want "Grid.Cells returns an internal slice"
}

func (g *Grid) Row(i, w int) []int {
	return g.cells[i*w : (i+1)*w] // want "Grid.Row returns an internal slice"
}

// Sum returns a scalar: clean.
func (g *Grid) Sum() int {
	s := 0
	for _, c := range g.cells {
		s += c
	}
	return s
}

// Loose has neither Clone nor a marker: out of scope, leaking is the
// caller's problem.
type Loose struct {
	items []int
}

func (l *Loose) Items() []int { return l.items }
