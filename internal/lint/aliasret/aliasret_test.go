package aliasret_test

import (
	"testing"

	"repro/internal/lint/aliasret"
	"repro/internal/lint/linttest"
)

func TestAliasRet(t *testing.T) {
	linttest.Run(t, aliasret.Analyzer, "a")
}
