// Package linttest runs lint analyzers over fixture packages, in the
// spirit of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under testdata/src/<importpath>/ next to the analyzer
// package. Each fixture file marks the diagnostics it expects with a
// trailing comment on the offending line:
//
//	a := x == y // want "bare float64"
//
// Each quoted string is a regular expression that must match exactly
// one diagnostic reported on that line; diagnostics without a matching
// expectation (and expectations without a matching diagnostic) fail
// the test. Fixture imports resolve against sibling directories under
// testdata/src first ("repro/internal/sched" → stub packages) and the
// standard library otherwise.
package linttest

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// stdlib export data is shared across all Run calls in one process.
var (
	stdlibOnce sync.Once
	stdlib     lint.ExportLookup
	stdlibErr  error
)

func stdlibExports(t *testing.T) lint.ExportLookup {
	t.Helper()
	stdlibOnce.Do(func() {
		// The closure of these roots covers everything fixtures may
		// import from the standard library.
		stdlib, stdlibErr = lint.StdlibExports(".",
			"testing", "math/rand", "math/rand/v2", "time", "fmt", "errors", "os", "strconv")
	})
	if stdlibErr != nil {
		t.Fatalf("linttest: loading stdlib export data: %v", stdlibErr)
	}
	return stdlib
}

// fixtureImporter type-checks fixture packages from source, falling
// back to stdlib export data for everything else.
type fixtureImporter struct {
	fset    *token.FileSet
	srcRoot string
	dirs    map[string]string // import path -> directory
	cache   map[string]*lint.Unit
	// order lists the loaded fixture units in load completion order.
	// Imports finish loading before their importers (load recurses
	// through the type-checker), so this is a dependency order — the
	// order facts must be computed in.
	order []*lint.Unit
	std   types.ImporterFrom
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	return fi.ImportFrom(path, "", 0)
}

func (fi *fixtureImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := fi.dirs[path]; ok {
		u, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return fi.std.ImportFrom(path, dir, mode)
}

func (fi *fixtureImporter) load(path string) (*lint.Unit, error) {
	if u, ok := fi.cache[path]; ok {
		return u, nil
	}
	dir := fi.dirs[path]
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	u, err := lint.TypeCheck(fi.fset, path, dir, names, fi)
	if err != nil {
		return nil, err
	}
	fi.cache[path] = u
	fi.order = append(fi.order, u)
	return u, nil
}

// Run loads the fixture packages at testdata/src/<path>, applies the
// analyzer, and checks the diagnostics against each fixture's want
// comments. With several paths the fixtures share one fact store: the
// analyzer runs over every loaded unit (the requested packages and
// their fixture-local imports) in dependency order, so a later package
// sees the facts and summaries of the packages it imports —
// cross-package propagation is tested exactly the way the edgelint
// driver exercises it. Diagnostics are checked only for the requested
// packages; imported helper fixtures just contribute facts.
func Run(t *testing.T, a *lint.Analyzer, paths ...string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	fi := &fixtureImporter{
		fset:    fset,
		srcRoot: srcRoot,
		dirs:    fixtureDirs(t, srcRoot),
		cache:   map[string]*lint.Unit{},
	}
	fi.std = lint.NewGCImporter(fset, stdlibExports(t), nil)
	requested := map[*lint.Unit]bool{}
	for _, path := range paths {
		unit, err := fi.load(path)
		if err != nil {
			t.Fatalf("linttest: loading fixture %s: %v", path, err)
		}
		requested[unit] = true
	}
	facts := lint.NewFacts()
	for _, unit := range fi.order {
		diags, err := unit.RunWith([]*lint.Analyzer{a}, facts)
		if err != nil {
			t.Fatalf("linttest: running %s on %s: %v", a.Name, unit.Path, err)
		}
		if requested[unit] {
			checkWants(t, unit, diags)
		}
	}
}

// fixtureDirs maps import paths to directories: every directory under
// srcRoot containing .go files is importable by its relative path.
func fixtureDirs(t *testing.T, srcRoot string) map[string]string {
	t.Helper()
	dirs := map[string]string{}
	err := filepath.WalkDir(srcRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(srcRoot, dir)
		if err != nil {
			return err
		}
		dirs[filepath.ToSlash(rel)] = dir
		return nil
	})
	if err != nil {
		t.Fatalf("linttest: scanning %s: %v", srcRoot, err)
	}
	return dirs
}

// wantRE extracts the quoted expectations of a want comment.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// checkWants compares diagnostics against the fixture's want comments.
func checkWants(t *testing.T, u *lint.Unit, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				k := key{file: pos.Filename, line: pos.Line}
				for _, q := range wantRE.FindAllString(text[idx+len("want "):], -1) {
					unq, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s:%d: bad want expectation %s: %v", pos.Filename, pos.Line, q, err)
						continue
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, unq, err)
						continue
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	matched := map[*regexp.Regexp]bool{}
	for _, d := range diags {
		k := key{file: d.Pos.Filename, line: d.Pos.Line}
		found := false
		for _, re := range wants[k] {
			if !matched[re] && re.MatchString(d.Message) {
				matched[re] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			if !matched[re] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}
