// Package seededrand enforces the repository's reproducibility claim
// (EXPERIMENTS.md: "All runs are seeded and reproducible"). It flags:
//
//   - calls to math/rand's (and math/rand/v2's) package-level
//     functions, which draw from the process-wide source — every
//     generator must be an explicit rand.New(rand.NewSource(seed));
//   - rand.New / rand.NewSource seeded from time.Now(), the classic
//     "unseeded" idiom that silently destroys reproducibility;
//   - time.Now() anywhere outside package main — library and
//     experiment code must not depend on wall-clock time (binaries may
//     time themselves, but must derive all randomness from a -seed
//     flag or a documented fixed seed).
package seededrand

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer flags unseeded or wall-clock-derived randomness.
var Analyzer = &lint.Analyzer{
	Name: "seededrand",
	Doc:  "flags global math/rand functions, time-seeded rand.New, and time.Now in library packages",
	Run:  run,
}

// constructors are the math/rand functions that build explicit
// generators rather than using the global source.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if constructors[fn.Name()] {
					if tn := findTimeNow(pass.TypesInfo, call); tn != nil {
						pass.Reportf(call.Pos(), "rand.%s seeded from time.Now() is not reproducible; derive the seed from a -seed flag or a documented constant", fn.Name())
					}
				} else {
					pass.Reportf(call.Pos(), "global %s.%s draws from the process-wide source; use an explicit seeded generator (rand.New(rand.NewSource(seed)))", fn.Pkg().Name(), fn.Name())
				}
			case "time":
				if fn.Name() == "Now" && pass.Pkg.Name() != "main" {
					pass.Reportf(call.Pos(), "time.Now() in library package %s breaks determinism; thread times through explicitly (EXPERIMENTS.md promises seeded, reproducible runs)", pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}

// findTimeNow returns the first time.Now() call within the arguments
// of call, or nil.
func findTimeNow(info *types.Info, call *ast.CallExpr) *ast.CallExpr {
	var found *ast.CallExpr
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := lint.CalleeFunc(info, c); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = c
				return false
			}
			return true
		})
	}
	return found
}
