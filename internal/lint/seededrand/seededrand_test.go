package seededrand_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/seededrand"
)

func TestLibraryPackage(t *testing.T) {
	linttest.Run(t, seededrand.Analyzer, "a")
}

func TestMainPackage(t *testing.T) {
	linttest.Run(t, seededrand.Analyzer, "b")
}
