package a

import (
	"math/rand"
	"time"
)

func f() {
	_ = rand.Int()                     // want "global rand.Int draws from the process-wide source"
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle"

	r := rand.New(rand.NewSource(42)) // explicit fixed seed is fine
	_ = r.Int()                       // method on an explicit generator is fine

	src := rand.NewSource(time.Now().UnixNano()) // want "rand.NewSource seeded from time.Now" "time.Now\\(\\) in library package"
	_ = rand.New(src)

	_ = time.Now() // want "time.Now\\(\\) in library package"

	// edgelint:ignore seededrand — throwaway demo value, determinism irrelevant.
	_ = rand.Float64()
}
