package main

import (
	"math/rand"
	"time"
)

func main() {
	start := time.Now() // binaries may time themselves
	r := rand.New(rand.NewSource(2006))
	_ = r.Float64()
	_ = rand.Intn(10) // want "global rand.Intn"
	_ = time.Since(start)

	// Seeding from the wall clock is flagged even in package main.
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.New seeded from time.Now" "rand.NewSource seeded from time.Now"
}
