package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// ListedPackage is the subset of `go list -json` output the loader
// consumes.
type ListedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	Export       string
	Standard     bool
	ForTest      string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	ImportMap    map[string]string
	Error        *struct{ Err string }
}

// GoList runs `go list -json` with the given arguments in dir and
// decodes the package stream.
func GoList(dir string, args ...string) ([]*ListedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := &ListedPackage{}
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportLookup resolves import paths to compiled export-data files, as
// produced by `go list -export`. It implements the lookup half of the
// gc importer.
type ExportLookup map[string]string

// StdlibExports returns the export-data index for the dependency
// closure of the given stdlib packages (run from dir, which must be
// inside a module). Used by fixture loading, where only stdlib imports
// must resolve outside the fixture tree.
func StdlibExports(dir string, roots ...string) (ExportLookup, error) {
	pkgs, err := GoList(dir, append([]string{"-deps", "-export"}, roots...)...)
	if err != nil {
		return nil, err
	}
	exports := ExportLookup{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewGCImporter builds a types importer that reads gc export data via
// the lookup index, remapping paths through importMap first
// (test-variant resolution, like the go command's own ImportMap).
func NewGCImporter(fset *token.FileSet, exports ExportLookup, importMap map[string]string) types.ImporterFrom {
	return gcImporter(fset, exports, importMap, nil)
}

// gcImporter is NewGCImporter with an optional fallback importer for
// paths without export data.
func gcImporter(fset *token.FileSet, exports ExportLookup, importMap map[string]string, fallback types.ImporterFrom) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		if m, ok := importMap[path]; ok {
			path = m
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	if fallback == nil {
		return imp
	}
	return &chainImporter{first: imp, exports: exports, importMap: importMap, second: fallback}
}

// chainImporter tries gc export data first and falls back to a second
// importer for paths without export data (fixture-local packages).
type chainImporter struct {
	first     types.ImporterFrom
	exports   ExportLookup
	importMap map[string]string
	second    types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	p := path
	if m, ok := c.importMap[path]; ok {
		p = m
	}
	if _, ok := c.exports[p]; ok {
		return c.first.ImportFrom(path, dir, mode)
	}
	return c.second.ImportFrom(path, dir, mode)
}

// newInfo returns a types.Info with all maps the analyzers need.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// TypeCheck parses and type-checks one package unit.
func TypeCheck(fset *token.FileSet, path, dir string, fileNames []string, imp types.Importer) (*Unit, error) {
	var files []*ast.File
	for _, name := range fileNames {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Unit{Path: path, Dir: dir, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// topoUnits orders the selected units in dependency order: every unit
// comes after the units providing its imports, so a driver threading
// one fact store through the units sees each package's facts before
// its importers are analyzed. go list's own output order does not
// guarantee this for test-augmented variants ("dag [dag.test]" carries
// no ordering relative to "sched [sched.test]" even though sched
// imports dag), hence the explicit sort. Input must already be sorted
// by import path; the DFS visits in that order, so the result is
// deterministic (alphabetical among units with no ordering constraint).
func topoUnits(units []*ListedPackage) []*ListedPackage {
	// cover resolves an import path to the unit analyzing that
	// package's files: the plain path of an un-augmented unit, or the
	// stripped path of the in-package test variant that replaced it
	// ("dag" → "dag [dag.test]").
	cover := map[string]*ListedPackage{}
	for _, p := range units {
		cover[p.ImportPath] = p
		if i := strings.Index(p.ImportPath, " ["); i >= 0 && p.ImportPath[:i] == p.ForTest {
			cover[p.ForTest] = p
		}
	}
	order := make([]*ListedPackage, 0, len(units))
	visited := map[*ListedPackage]bool{}
	var visit func(p *ListedPackage)
	visit = func(p *ListedPackage) {
		if visited[p] {
			return
		}
		visited[p] = true
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, im := range deps {
			if m, ok := p.ImportMap[im]; ok {
				im = m
			}
			if d, ok := cover[im]; ok && d != p {
				visit(d)
			}
		}
		order = append(order, p)
	}
	for _, p := range units {
		visit(p)
	}
	return order
}

// Failure records one package unit the loader could not deliver — a
// go list load error or a type-check failure. Drivers report failures
// and exit non-zero for them: a package that cannot be analyzed must
// not read as a clean pass.
type Failure struct {
	// Path is the unit's import path (test-variant suffix stripped).
	Path string
	// Err describes what went wrong.
	Err error
}

func (f Failure) String() string { return f.Path + ": " + f.Err.Error() }

// LoadPackages loads the module packages matched by the go package
// patterns — including their in-package and external test files as
// separate analysis units — type-checked against gc export data, the
// same way `go vet` feeds its analyzers. dir is the working directory
// for the go command.
//
// Units that fail to load or type-check come back as Failures rather
// than aborting the run, so the healthy packages are still analyzed;
// the error return is reserved for whole-run problems (go list itself
// failing, no such pattern).
func LoadPackages(dir string, patterns []string) ([]*Unit, []Failure, error) {
	// -e keeps go list alive on broken packages: they arrive with
	// p.Error set and become Failures instead of killing the run.
	args := append([]string{"-e", "-deps", "-test", "-export"}, patterns...)
	pkgs, err := GoList(dir, args...)
	if err != nil {
		return nil, nil, err
	}
	exports := ExportLookup{}
	byPath := map[string]*ListedPackage{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		byPath[p.ImportPath] = p
	}

	// Pick the units to analyze. For a package p with test files,
	// `go list -test` emits "p [p.test]" (p augmented with in-package
	// test files) and "p_test [p.test]" (the external test package);
	// analyzing the augmented variant instead of plain p covers the
	// union of files exactly once.
	var units []*ListedPackage
	var failures []Failure
	hasAugmented := map[string]bool{}
	for _, p := range pkgs {
		if p.ForTest != "" && byPath[p.ForTest] != nil && p.Name == byPath[p.ForTest].Name {
			hasAugmented[p.ForTest] = true
		}
	}
	for _, p := range pkgs {
		switch {
		case p.Standard:
		case p.Error != nil:
			failures = append(failures, Failure{
				Path: p.ImportPath,
				Err:  fmt.Errorf("go list: %s", p.Error.Err),
			})
		case strings.HasSuffix(p.ImportPath, ".test"):
			// Synthesized test-main binary; nothing human-written.
		case p.ForTest != "":
			units = append(units, p)
		case hasAugmented[p.ImportPath]:
			// Covered by the augmented variant.
		default:
			units = append(units, p)
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].ImportPath < units[j].ImportPath })
	units = topoUnits(units)

	fset := token.NewFileSet()
	var out []*Unit
	for _, p := range units {
		path := p.ImportPath
		if i := strings.Index(path, " ["); i >= 0 {
			path = path[:i] // strip the test-variant suffix
		}
		imp := gcImporter(fset, exports, p.ImportMap, nil)
		u, err := TypeCheck(fset, path, p.Dir, p.GoFiles, imp)
		if err != nil {
			failures = append(failures, Failure{Path: path, Err: err})
			continue
		}
		out = append(out, u)
	}
	return out, failures, nil
}
