package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/verify"
)

// FamilyConfig controls the per-DAG-family comparison: the same
// machine and the same algorithms, one series per structured graph
// family, so structure-dependent effects become visible.
type FamilyConfig struct {
	// Processors is the machine size (default 8).
	Processors int
	// Heterogeneous selects U(1,10) speeds.
	Heterogeneous bool
	// CCR rescales every family instance (default 2).
	CCR float64
	// Reps is the number of machine samples per family (default 3);
	// the graphs themselves are deterministic per family except the
	// random families, which resample per rep.
	Reps int
	// Seed drives machine generation and the random families.
	Seed int64
	// Verify runs the model checker on every schedule.
	Verify bool
	// Algorithms are the contenders; the first is the baseline. Nil
	// defaults to [BA, OIHSA, BBSA].
	Algorithms []sched.Algorithm
}

func (c FamilyConfig) withDefaults() FamilyConfig {
	if c.Processors <= 0 {
		c.Processors = 8
	}
	if c.CCR <= 0 {
		c.CCR = 2
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Algorithms == nil {
		c.Algorithms = []sched.Algorithm{sched.NewBA(), sched.NewOIHSA(), sched.NewBBSA()}
	}
	return c
}

// FamilyRow is one family's aggregated result.
type FamilyRow struct {
	Family string
	Tasks  int
	Width  int
	// BaseMakespan summarizes the baseline across reps.
	BaseMakespan stats.Summary
	// Improvement maps non-baseline algorithm names to improvement
	// percentage summaries.
	Improvement map[string]stats.Summary
}

// FamilyResult is the full per-family comparison.
type FamilyResult struct {
	Algorithms []string
	Rows       []FamilyRow
}

// familyGenerators builds each benchmark family at a size comparable
// to ~100-200 tasks.
func familyGenerators(r *rand.Rand) []struct {
	name string
	gen  func() *dag.Graph
} {
	return []struct {
		name string
		gen  func() *dag.Graph
	}{
		{"random-layered", func() *dag.Graph {
			return dag.RandomLayered(r, dag.RandomLayeredParams{
				Tasks:    150,
				TaskCost: dag.CostDist{Lo: 1, Hi: 1000},
				EdgeCost: dag.CostDist{Lo: 1, Hi: 1000},
			})
		}},
		{"series-parallel", func() *dag.Graph {
			return dag.RandomSeriesParallel(r, 6,
				dag.CostDist{Lo: 1, Hi: 1000}, dag.CostDist{Lo: 1, Hi: 1000})
		}},
		{"fft", func() *dag.Graph { return dag.FFT(5, 100, 100) }},
		{"gauss", func() *dag.Graph { return dag.GaussianElimination(16, 100, 100) }},
		{"lu", func() *dag.Graph { return dag.LU(7, 100, 100) }},
		{"cholesky", func() *dag.Graph { return dag.Cholesky(8, 100, 100) }},
		{"stencil", func() *dag.Graph { return dag.Stencil(12, 12, 100, 100) }},
		{"laplace", func() *dag.Graph { return dag.Laplace(12, 100, 100) }},
		{"montage", func() *dag.Graph { return dag.Montage(30, 100, 100) }},
		{"epigenomics", func() *dag.Graph { return dag.Epigenomics(8, 15, 100, 100) }},
		{"mapreduce", func() *dag.Graph { return dag.MapReduce(24, 8, 100, 200, 100) }},
		{"divide-conquer", func() *dag.Graph { return dag.DivideConquer(6, 50, 100, 80, 100) }},
	}
}

// Families runs the per-family comparison.
func Families(cfg FamilyConfig) (*FamilyResult, error) {
	cfg = cfg.withDefaults()
	res := &FamilyResult{}
	for _, a := range cfg.Algorithms {
		res.Algorithms = append(res.Algorithms, a.Name())
	}
	baseline := cfg.Algorithms[0]
	r := rand.New(rand.NewSource(cfg.Seed))
	for _, fam := range familyGenerators(r) {
		row := FamilyRow{Family: fam.name, Improvement: map[string]stats.Summary{}}
		var base []float64
		imps := map[string][]float64{}
		for rep := 0; rep < cfg.Reps; rep++ {
			g := fam.gen()
			g.ScaleToCCR(cfg.CCR)
			row.Tasks = g.NumTasks()
			row.Width = g.Width()
			proc := network.Uniform(1)
			link := network.Uniform(1)
			if cfg.Heterogeneous {
				proc = network.UniformRange(r, 1, 10)
				link = network.UniformRange(r, 1, 10)
			}
			net := network.RandomCluster(r, network.RandomClusterParams{
				Processors: cfg.Processors, ProcSpeed: proc, LinkSpeed: link,
			})
			bs, err := baseline.Schedule(g, net)
			if err != nil {
				return nil, fmt.Errorf("experiment: families: %s on %s: %w", baseline.Name(), fam.name, err)
			}
			if cfg.Verify {
				if err := verify.Verify(bs).Err(); err != nil {
					return nil, fmt.Errorf("experiment: families: %s on %s: %w", baseline.Name(), fam.name, err)
				}
			}
			base = append(base, bs.Makespan)
			for _, a := range cfg.Algorithms[1:] {
				s, err := a.Schedule(g, net)
				if err != nil {
					return nil, fmt.Errorf("experiment: families: %s on %s: %w", a.Name(), fam.name, err)
				}
				if cfg.Verify {
					if err := verify.Verify(s).Err(); err != nil {
						return nil, fmt.Errorf("experiment: families: %s on %s: %w", a.Name(), fam.name, err)
					}
				}
				imps[a.Name()] = append(imps[a.Name()], stats.ImprovementPct(bs.Makespan, s.Makespan))
			}
		}
		row.BaseMakespan = stats.Summarize(base)
		for name, xs := range imps {
			row.Improvement[name] = stats.Summarize(xs)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTable renders the family comparison as an aligned text table.
func (r *FamilyResult) WriteTable(w io.Writer) error {
	header := fmt.Sprintf("%-16s %6s %6s %14s", "family", "tasks", "width", "base-makespan")
	for _, name := range r.Algorithms[1:] {
		header += fmt.Sprintf(" %16s", "+"+name+"%")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, row := range r.Rows {
		line := fmt.Sprintf("%-16s %6d %6d %14.1f", row.Family, row.Tasks, row.Width, row.BaseMakespan.Mean)
		for _, name := range r.Algorithms[1:] {
			imp := row.Improvement[name]
			line += fmt.Sprintf(" %9.1f ±%5.1f", imp.Mean, imp.CI95())
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
