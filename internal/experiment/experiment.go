// Package experiment regenerates the paper's evaluation (§6): the four
// figures comparing OIHSA and BBSA against BA over CCR and machine-size
// sweeps in homogeneous and heterogeneous systems, plus the ablations
// of DESIGN.md. Results are aggregated as per-instance improvement
// percentages exactly as the paper plots them:
// 100 * (makespan(BA) - makespan(X)) / makespan(BA).
package experiment

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/verify"
	"repro/internal/workload"
)

// Config controls a sweep run. The zero value is filled with reduced
// but representative defaults; use PaperConfig for the full §6 setup.
type Config struct {
	// Reps is the number of random instances per sweep cell.
	Reps int
	// Seed drives instance generation; cell seeds are derived from it.
	Seed int64
	// MinTasks/MaxTasks bound the per-instance task count.
	MinTasks, MaxTasks int
	// Procs are the machine sizes: the x-axis of processor sweeps and
	// the averaged-over dimension of CCR sweeps.
	Procs []int
	// CCRs are the communication-computation ratios: the x-axis of CCR
	// sweeps and the averaged-over dimension of processor sweeps.
	CCRs []float64
	// Heterogeneous selects U(1,10) speeds (Figures 3 and 4).
	Heterogeneous bool
	// Verify runs the schedule verifier on every produced schedule and
	// fails the sweep on any violation.
	Verify bool
	// Algorithms are the contenders; the first is the baseline. Nil
	// defaults to [BA, OIHSA, BBSA].
	Algorithms []sched.Algorithm
	// Workers bounds the number of sweep cells scheduled concurrently.
	// 0 uses GOMAXPROCS; 1 forces a serial run. Instance seeds are
	// derived from cell coordinates, so results are identical at any
	// parallelism.
	Workers int
	// ProbeWorkers, when non-zero, overrides Options.ProbeWorkers on
	// every *sched.ListScheduler contender: the goroutines used for
	// parallel EFT processor probing inside each Schedule call.
	// Schedules are bit-identical at any setting (see sched/fork.go),
	// so this is purely a throughput knob. Use 1 when Workers already
	// saturates the machine with concurrent cells.
	ProbeWorkers int
}

func (c Config) withDefaults() Config {
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.MinTasks <= 0 {
		c.MinTasks = 40
	}
	if c.MaxTasks < c.MinTasks {
		c.MaxTasks = 1000
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{4, 16}
	}
	if len(c.CCRs) == 0 {
		c.CCRs = []float64{0.5, 2, 8}
	}
	if c.Algorithms == nil {
		c.Algorithms = []sched.Algorithm{sched.NewBA(), sched.NewOIHSA(), sched.NewBBSA()}
	}
	applyProbeWorkers(c.Algorithms, c.ProbeWorkers)
	return c
}

// applyProbeWorkers pushes a non-zero ProbeWorkers setting into every
// ListScheduler contender's options.
func applyProbeWorkers(algos []sched.Algorithm, workers int) {
	if workers == 0 {
		return
	}
	for _, a := range algos {
		if ls, ok := a.(*sched.ListScheduler); ok {
			ls.Opts.ProbeWorkers = workers
		}
	}
}

// PaperConfig returns the full §6 configuration of the paper for the
// given figure's system type: the complete CCR and processor sweeps
// with tasks U(40, 1000). It is expensive; the reduced defaults are
// used by tests.
func PaperConfig(heterogeneous bool) Config {
	return Config{
		Reps:          5,
		Seed:          2006,
		MinTasks:      40,
		MaxTasks:      1000,
		Procs:         workload.PaperProcessorCounts(),
		CCRs:          workload.PaperCCRs(),
		Heterogeneous: heterogeneous,
	}
}

// Point is one x-position of a sweep.
type Point struct {
	X float64
	// BaseMakespan summarizes the baseline's makespans at this x.
	BaseMakespan stats.Summary
	// Improvement maps each non-baseline algorithm name to the summary
	// of per-instance improvement percentages over the baseline.
	Improvement map[string]stats.Summary
}

// Sweep is a completed figure: one improvement series per algorithm
// over an x-axis.
type Sweep struct {
	Label      string   // e.g. "Figure 1"
	Title      string   // human description
	XLabel     string   // "CCR" or "processors"
	Algorithms []string // series names, baseline first
	Points     []Point
	Instances  int // total instances scheduled
}

// cellResult holds the measurements of one (procs, ccr) sweep cell.
type cellResult struct {
	base []float64            // baseline makespans, one per rep
	imp  map[string][]float64 // per-algorithm improvement percentages
}

// runCell schedules all algorithms on the instances of one sweep cell.
// The instance seeds depend only on (cfg.Seed, procs, ccr, rep), so
// cells can run in any order or concurrently with identical results.
func runCell(cfg Config, procs int, ccr float64) (cellResult, error) {
	baseline := cfg.Algorithms[0]
	res := cellResult{imp: map[string][]float64{}}
	for rep := 0; rep < cfg.Reps; rep++ {
		seed := cfg.Seed
		seed = seed*1000003 + int64(procs)*131 + int64(ccr*10)*7 + int64(rep)
		inst := workload.Generate(workload.Params{
			Processors:    procs,
			CCR:           ccr,
			Heterogeneous: cfg.Heterogeneous,
			MinTasks:      cfg.MinTasks,
			MaxTasks:      cfg.MaxTasks,
			Seed:          seed,
		})
		bs, err := baseline.Schedule(inst.Graph, inst.Net)
		if err != nil {
			return res, fmt.Errorf("experiment: %s: %w", baseline.Name(), err)
		}
		if cfg.Verify {
			if err := verify.Verify(bs).Err(); err != nil {
				return res, fmt.Errorf("experiment: %s: %w", baseline.Name(), err)
			}
		}
		res.base = append(res.base, bs.Makespan)
		for _, a := range cfg.Algorithms[1:] {
			s, err := a.Schedule(inst.Graph, inst.Net)
			if err != nil {
				return res, fmt.Errorf("experiment: %s: %w", a.Name(), err)
			}
			if cfg.Verify {
				if err := verify.Verify(s).Err(); err != nil {
					return res, fmt.Errorf("experiment: %s: %w", a.Name(), err)
				}
			}
			res.imp[a.Name()] = append(res.imp[a.Name()], stats.ImprovementPct(bs.Makespan, s.Makespan))
		}
	}
	return res, nil
}

// cellJob identifies one cell and the x-point it belongs to.
type cellJob struct {
	point int // index into the sweep's x-axis
	procs int
	ccr   float64
}

// runCells evaluates all cells with a bounded worker pool and returns
// their results grouped by x-point, in deterministic order.
func runCells(cfg Config, jobs []cellJob, points int) ([][]cellResult, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]cellResult, len(jobs))
	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = runCell(cfg, jobs[i].procs, jobs[i].ccr)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	grouped := make([][]cellResult, points)
	for i, job := range jobs {
		grouped[job.point] = append(grouped[job.point], results[i])
	}
	return grouped, nil
}

// sweepOver runs the generic sweep: xs are the x-axis values, and
// cells(xIdx) lists the (procs, ccr) cells aggregated at that point.
func sweepOver(cfg Config, xLabel string, xs []float64, cells func(i int) []cellJob) (*Sweep, error) {
	sw := &Sweep{XLabel: xLabel}
	for _, a := range cfg.Algorithms {
		sw.Algorithms = append(sw.Algorithms, a.Name())
	}
	var jobs []cellJob
	for i := range xs {
		jobs = append(jobs, cells(i)...)
	}
	grouped, err := runCells(cfg, jobs, len(xs))
	if err != nil {
		return nil, err
	}
	for i, x := range xs {
		var base []float64
		acc := map[string][]float64{}
		for _, cell := range grouped[i] {
			base = append(base, cell.base...)
			for name, vs := range cell.imp {
				acc[name] = append(acc[name], vs...)
			}
		}
		pt := Point{X: x, BaseMakespan: stats.Summarize(base), Improvement: map[string]stats.Summary{}}
		for name, vs := range acc {
			pt.Improvement[name] = stats.Summarize(vs)
		}
		sw.Points = append(sw.Points, pt)
		sw.Instances += len(base)
	}
	return sw, nil
}

// CCRSweep produces an improvement-vs-CCR figure (the paper's Figures
// 1 and 3): for each CCR, improvements are averaged over all machine
// sizes in cfg.Procs and all replications. Cells run concurrently up
// to cfg.Workers.
func CCRSweep(cfg Config) (*Sweep, error) {
	cfg = cfg.withDefaults()
	return sweepOver(cfg, "CCR", cfg.CCRs, func(i int) []cellJob {
		var out []cellJob
		for _, procs := range cfg.Procs {
			out = append(out, cellJob{point: i, procs: procs, ccr: cfg.CCRs[i]})
		}
		return out
	})
}

// ProcSweep produces an improvement-vs-machine-size figure (the
// paper's Figures 2 and 4): for each processor count, improvements are
// averaged over all CCRs in cfg.CCRs and all replications. Cells run
// concurrently up to cfg.Workers.
func ProcSweep(cfg Config) (*Sweep, error) {
	cfg = cfg.withDefaults()
	xs := make([]float64, len(cfg.Procs))
	for i, p := range cfg.Procs {
		xs[i] = float64(p)
	}
	return sweepOver(cfg, "processors", xs, func(i int) []cellJob {
		var out []cellJob
		for _, ccr := range cfg.CCRs {
			out = append(out, cellJob{point: i, procs: cfg.Procs[i], ccr: ccr})
		}
		return out
	})
}

// Figure regenerates one of the paper's figures (1–4) under the given
// config; pass PaperConfig(...) for the full-scale version. The
// config's Heterogeneous flag is overridden to match the figure.
func Figure(n int, cfg Config) (*Sweep, error) {
	var (
		sw  *Sweep
		err error
	)
	switch n {
	case 1:
		cfg.Heterogeneous = false
		sw, err = CCRSweep(cfg)
	case 2:
		cfg.Heterogeneous = false
		sw, err = ProcSweep(cfg)
	case 3:
		cfg.Heterogeneous = true
		sw, err = CCRSweep(cfg)
	case 4:
		cfg.Heterogeneous = true
		sw, err = ProcSweep(cfg)
	default:
		return nil, fmt.Errorf("experiment: figure %d does not exist (paper has 1-4)", n)
	}
	if err != nil {
		return nil, err
	}
	sw.Label = fmt.Sprintf("Figure %d", n)
	system := "homogeneous"
	if n >= 3 {
		system = "heterogeneous"
	}
	axis := "CCR"
	if n == 2 || n == 4 {
		axis = "number of processors"
	}
	sw.Title = fmt.Sprintf("%% improved makespan vs BA over %s (%s systems)", axis, system)
	return sw, nil
}

// WriteTable renders the sweep as an aligned text table of mean
// improvement percentages (±95% CI).
func (sw *Sweep) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", sw.Label, sw.Title); err != nil {
		return err
	}
	header := fmt.Sprintf("%-12s %14s", sw.XLabel, "base-makespan")
	for _, name := range sw.Algorithms[1:] {
		header += fmt.Sprintf(" %18s", "+"+name+"%")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, pt := range sw.Points {
		row := fmt.Sprintf("%-12.4g %14.1f", pt.X, pt.BaseMakespan.Mean)
		for _, name := range sw.Algorithms[1:] {
			imp := pt.Improvement[name]
			row += fmt.Sprintf(" %11.1f ±%5.1f", imp.Mean, imp.CI95())
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "(%d instances)\n", sw.Instances)
	return err
}

// WriteCSV renders the sweep as CSV with one row per x-position.
func (sw *Sweep) WriteCSV(w io.Writer) error {
	cols := []string{sw.XLabel, "base_mean_makespan"}
	for _, name := range sw.Algorithms[1:] {
		cols = append(cols, "improvement_"+name+"_pct", "improvement_"+name+"_ci95")
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, pt := range sw.Points {
		row := []string{
			fmt.Sprintf("%g", pt.X),
			fmt.Sprintf("%.3f", pt.BaseMakespan.Mean),
		}
		for _, name := range sw.Algorithms[1:] {
			imp := pt.Improvement[name]
			row = append(row, fmt.Sprintf("%.3f", imp.Mean), fmt.Sprintf("%.3f", imp.CI95()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
