package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// SuiteSpec declares a whole experiment campaign in one document, so a
// paper-style evaluation is reproducible from a single JSON file.
type SuiteSpec struct {
	// Name labels the campaign (used in the summary output).
	Name string `json:"name"`
	// Figures lists figure regenerations to run.
	Figures []FigureSpec `json:"figures,omitempty"`
	// Ablations lists ablation studies to run.
	Ablations []AblationSpec `json:"ablations,omitempty"`
}

// SpecConfig is the JSON shape of a sweep configuration; zero fields
// fall back to the harness defaults (or the full paper config when
// Full is set).
type SpecConfig struct {
	Full          bool      `json:"full,omitempty"`
	Reps          int       `json:"reps,omitempty"`
	Seed          int64     `json:"seed,omitempty"`
	MinTasks      int       `json:"minTasks,omitempty"`
	MaxTasks      int       `json:"maxTasks,omitempty"`
	Procs         []int     `json:"procs,omitempty"`
	CCRs          []float64 `json:"ccrs,omitempty"`
	Heterogeneous bool      `json:"heterogeneous,omitempty"`
	Verify        bool      `json:"verify,omitempty"`
	Workers       int       `json:"workers,omitempty"`
}

func (sc SpecConfig) toConfig() Config {
	var cfg Config
	if sc.Full {
		cfg = PaperConfig(sc.Heterogeneous)
	}
	cfg.Heterogeneous = sc.Heterogeneous
	cfg.Verify = sc.Verify
	cfg.Workers = sc.Workers
	if sc.Reps > 0 {
		cfg.Reps = sc.Reps
	}
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.MinTasks > 0 {
		cfg.MinTasks = sc.MinTasks
	}
	if sc.MaxTasks > 0 {
		cfg.MaxTasks = sc.MaxTasks
	}
	if len(sc.Procs) > 0 {
		cfg.Procs = sc.Procs
	}
	if len(sc.CCRs) > 0 {
		cfg.CCRs = sc.CCRs
	}
	return cfg
}

// FigureSpec declares one figure regeneration.
type FigureSpec struct {
	// Figure is the paper figure number (1-4).
	Figure int `json:"figure"`
	// Output is the file basename (without extension) results are
	// written to; defaults to "figureN".
	Output string `json:"output,omitempty"`
	// CSV additionally writes a .csv file next to the .txt table.
	CSV bool `json:"csv,omitempty"`
	SpecConfig
}

// AblationSpec declares one ablation run.
type AblationSpec struct {
	// Ablation is the study key; see AblationNames.
	Ablation string `json:"ablation"`
	// Output is the file basename; defaults to the ablation key.
	Output string `json:"output,omitempty"`
	SpecConfig
}

// LoadSuite parses a SuiteSpec from JSON, rejecting unknown fields and
// invalid references early.
func LoadSuite(r io.Reader) (*SuiteSpec, error) {
	var spec SuiteSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("experiment: suite: %w", err)
	}
	for i, f := range spec.Figures {
		if f.Figure < 1 || f.Figure > 4 {
			return nil, fmt.Errorf("experiment: suite figure entry %d: figure %d does not exist", i, f.Figure)
		}
	}
	for i, a := range spec.Ablations {
		if _, ok := ablations[a.Ablation]; !ok {
			return nil, fmt.Errorf("experiment: suite ablation entry %d: unknown ablation %q", i, a.Ablation)
		}
	}
	if len(spec.Figures) == 0 && len(spec.Ablations) == 0 {
		return nil, fmt.Errorf("experiment: suite declares no work")
	}
	return &spec, nil
}

// RunSuite executes every entry of the suite, writing one .txt table
// (and optionally .csv) per entry into outDir, and a summary line per
// entry to log. It stops at the first failing entry.
func RunSuite(spec *SuiteSpec, outDir string, log io.Writer) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("experiment: suite: %w", err)
	}
	for _, f := range spec.Figures {
		sw, err := Figure(f.Figure, f.toConfig())
		if err != nil {
			return err
		}
		base := f.Output
		if base == "" {
			base = fmt.Sprintf("figure%d", f.Figure)
		}
		if err := writeTo(filepath.Join(outDir, base+".txt"), sw.WriteTable); err != nil {
			return err
		}
		if f.CSV {
			if err := writeTo(filepath.Join(outDir, base+".csv"), sw.WriteCSV); err != nil {
				return err
			}
		}
		fmt.Fprintf(log, "suite %s: %s done (%d instances) -> %s.txt\n", spec.Name, sw.Label, sw.Instances, base)
	}
	for _, a := range spec.Ablations {
		res, err := Ablation(a.Ablation, a.toConfig())
		if err != nil {
			return err
		}
		base := a.Output
		if base == "" {
			base = a.Ablation
		}
		if err := writeTo(filepath.Join(outDir, base+".txt"), res.WriteTable); err != nil {
			return err
		}
		fmt.Fprintf(log, "suite %s: ablation %s done (%d instances) -> %s.txt\n", spec.Name, a.Ablation, res.Instances, base)
	}
	return nil
}

// writeTo writes with fn into a freshly created file.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: suite: %w", err)
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
