package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleSuite = `{
  "name": "smoke",
  "figures": [
    {"figure": 1, "csv": true, "reps": 1, "seed": 3,
     "minTasks": 30, "maxTasks": 40, "procs": [4], "ccrs": [2]}
  ],
  "ablations": [
    {"ablation": "routing", "reps": 1, "seed": 3,
     "minTasks": 30, "maxTasks": 40, "procs": [4], "ccrs": [2]}
  ]
}`

func TestLoadSuite(t *testing.T) {
	spec, err := LoadSuite(strings.NewReader(sampleSuite))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "smoke" || len(spec.Figures) != 1 || len(spec.Ablations) != 1 {
		t.Fatalf("spec %+v", spec)
	}
}

func TestLoadSuiteRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"unknown field":    `{"name":"x","bogus":1}`,
		"bad figure":       `{"name":"x","figures":[{"figure":9}]}`,
		"bad ablation":     `{"name":"x","ablations":[{"ablation":"nope"}]}`,
		"empty suite":      `{"name":"x"}`,
		"unknown sub-knob": `{"name":"x","figures":[{"figure":1,"turbo":true}]}`,
	}
	for name, in := range cases {
		if _, err := LoadSuite(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunSuite(t *testing.T) {
	spec, err := LoadSuite(strings.NewReader(sampleSuite))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var log bytes.Buffer
	if err := RunSuite(spec, dir, &log); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figure1.txt", "figure1.csv", "routing.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, want))
		if err != nil {
			t.Fatalf("missing output %s: %v", want, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", want)
		}
	}
	if !strings.Contains(log.String(), "Figure 1 done") {
		t.Errorf("log output %q", log.String())
	}
}

func TestSpecConfigFullOverride(t *testing.T) {
	sc := SpecConfig{Full: true, Reps: 2, Heterogeneous: true}
	cfg := sc.toConfig()
	if len(cfg.CCRs) != 19 || len(cfg.Procs) != 7 {
		t.Fatalf("full config not applied: %+v", cfg)
	}
	if cfg.Reps != 2 {
		t.Fatalf("reps override lost")
	}
	if !cfg.Heterogeneous {
		t.Fatalf("hetero lost")
	}
}
