package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/verify"
	"repro/internal/workload"
)

// AblationResult compares a family of scheduler variants over a common
// instance set: mean makespans plus the per-instance improvement of
// each variant over the first (the reference).
type AblationResult struct {
	Name       string
	Question   string
	Algorithms []string
	// MeanMakespan maps algorithm name to its mean makespan.
	MeanMakespan map[string]float64
	// Improvement maps each non-reference algorithm to the summary of
	// per-instance improvement percentages over the reference.
	Improvement map[string]stats.Summary
	Instances   int
}

// RunVariants schedules every algorithm on the instance grid defined
// by cfg (all procs × all CCRs × reps) and aggregates. The first
// algorithm is the reference.
func RunVariants(name, question string, cfg Config, algos []sched.Algorithm) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	cfg.Algorithms = algos
	applyProbeWorkers(algos, cfg.ProbeWorkers)
	res := &AblationResult{
		Name:         name,
		Question:     question,
		MeanMakespan: map[string]float64{},
		Improvement:  map[string]stats.Summary{},
	}
	for _, a := range algos {
		res.Algorithms = append(res.Algorithms, a.Name())
	}
	sums := map[string][]float64{}
	imps := map[string][]float64{}
	for _, procs := range cfg.Procs {
		for _, ccr := range cfg.CCRs {
			for rep := 0; rep < cfg.Reps; rep++ {
				seed := cfg.Seed*1000003 + int64(procs)*131 + int64(ccr*10)*7 + int64(rep)
				inst := workload.Generate(workload.Params{
					Processors:    procs,
					CCR:           ccr,
					Heterogeneous: cfg.Heterogeneous,
					MinTasks:      cfg.MinTasks,
					MaxTasks:      cfg.MaxTasks,
					Seed:          seed,
				})
				var ref float64
				for i, a := range algos {
					s, err := a.Schedule(inst.Graph, inst.Net)
					if err != nil {
						return nil, fmt.Errorf("experiment: ablation %s: %s: %w", name, a.Name(), err)
					}
					if cfg.Verify && !s.Ideal {
						if err := verify.Verify(s).Err(); err != nil {
							return nil, fmt.Errorf("experiment: ablation %s: %s: %w", name, a.Name(), err)
						}
					}
					sums[a.Name()] = append(sums[a.Name()], s.Makespan)
					if i == 0 {
						ref = s.Makespan
					} else {
						imps[a.Name()] = append(imps[a.Name()], stats.ImprovementPct(ref, s.Makespan))
					}
				}
				res.Instances++
			}
		}
	}
	for name, xs := range sums {
		res.MeanMakespan[name] = stats.Mean(xs)
	}
	for name, xs := range imps {
		res.Improvement[name] = stats.Summarize(xs)
	}
	return res, nil
}

// AblationNames lists the predefined ablations in DESIGN.md order.
func AblationNames() []string {
	names := make([]string, 0, len(ablations))
	for k := range ablations {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

type ablationSpec struct {
	question string
	algos    func() []sched.Algorithm
}

var ablations = map[string]ablationSpec{
	"routing": {
		question: "A1: does load-aware Dijkstra routing beat BFS minimal routing, all else fixed (OIHSA stack)?",
		algos: func() []sched.Algorithm {
			base := sched.NewOIHSA().Opts
			bfs := base
			bfs.Routing = sched.RoutingBFS
			return []sched.Algorithm{
				sched.NewCustom("OIHSA/bfs", bfs),
				sched.NewCustom("OIHSA/dijkstra", base),
			}
		},
	},
	"insertion": {
		question: "A2: does optimal insertion beat basic insertion, all else fixed (OIHSA stack)?",
		algos: func() []sched.Algorithm {
			base := sched.NewOIHSA().Opts
			basic := base
			basic.Insertion = sched.InsertionBasic
			return []sched.Algorithm{
				sched.NewCustom("OIHSA/basic-ins", basic),
				sched.NewCustom("OIHSA/optimal-ins", base),
			}
		},
	},
	"edgeorder": {
		question: "A3: does scheduling costly edges first beat FIFO and cheapest-first (OIHSA stack)?",
		algos: func() []sched.Algorithm {
			base := sched.NewOIHSA().Opts
			fifo, asc := base, base
			fifo.EdgeOrder = sched.EdgeOrderFIFO
			asc.EdgeOrder = sched.EdgeOrderAscCost
			return []sched.Algorithm{
				sched.NewCustom("OIHSA/fifo", fifo),
				sched.NewCustom("OIHSA/desc", base),
				sched.NewCustom("OIHSA/asc", asc),
			}
		},
	},
	"classic": {
		question: "A4: how much worse is a classic contention-free assignment once replayed on the real network, vs contention-aware scheduling?",
		algos: func() []sched.Algorithm {
			return []sched.Algorithm{
				sched.NewClassicReplay(),
				sched.NewBA(),
				sched.NewOIHSA(),
				sched.NewBBSA(),
			}
		},
	},
	"procchoice": {
		question: "A5: processor selection policies on the OIHSA stack: communication-blind (BA-style) vs §4.1 estimate vs tentative contention-aware EFT (Sinnen-style)",
		algos: func() []sched.Algorithm {
			base := sched.NewOIHSA().Opts
			nocomm, eft := base, base
			nocomm.ProcSelect = sched.ProcSelectNoComm
			eft.ProcSelect = sched.ProcSelectEFT
			return []sched.Algorithm{
				sched.NewCustom("OIHSA/nocomm", nocomm),
				sched.NewCustom("OIHSA/estimate", base),
				sched.NewCustom("OIHSA/eft", eft),
			}
		},
	},
	"duplication": {
		question: "A12: does duplicating predecessor-free tasks (re-executing instead of transferring) reduce makespans under contention?",
		algos: func() []sched.Algorithm {
			oi := sched.NewOIHSA().Opts
			oiDup := oi
			oiDup.Duplication = true
			ba := sched.NewBA().Opts
			baDup := ba
			baDup.Duplication = true
			return []sched.Algorithm{
				sched.NewCustom("OIHSA", oi),
				sched.NewCustom("OIHSA+dup", oiDup),
				sched.NewCustom("BA", ba),
				sched.NewCustom("BA+dup", baDup),
			}
		},
	},
	"priority": {
		question: "A11: does the task priority scheme (bl with comm, computation-only bl, criticality bl+tl) matter under contention?",
		algos: func() []sched.Algorithm {
			base := sched.NewOIHSA().Opts
			comp, crit := base, base
			comp.Priority = sched.PriorityCompBottomLevel
			crit.Priority = sched.PriorityCriticality
			return []sched.Algorithm{
				sched.NewCustom("OIHSA/bl", base),
				sched.NewCustom("OIHSA/bl-comp", comp),
				sched.NewCustom("OIHSA/bl+tl", crit),
			}
		},
	},
	"packetsize": {
		question: "A10: does dividing messages into packets (pipelining across hops) beat circuit switching, and where does per-packet overhead turn the tide?",
		algos: func() []sched.Algorithm {
			base := sched.NewOIHSA().Opts
			base.Insertion = sched.InsertionBasic
			mk := func(size, overhead float64) sched.Options {
				o := base
				o.Engine = sched.EnginePackets
				o.PacketSize = size
				o.PacketOverhead = overhead
				return o
			}
			return []sched.Algorithm{
				sched.NewCustom("circuit", base),
				sched.NewCustom("pkt-500", mk(500, 0)),
				sched.NewCustom("pkt-100", mk(100, 0)),
				sched.NewCustom("pkt-100+ovh", mk(100, 5)),
				sched.NewCustom("pkt-20+ovh", mk(20, 5)),
			}
		},
	},
	"taskpolicy": {
		question: "A9: does insertion-based task placement (HEFT-style, beyond the paper's append-only model) further reduce makespans?",
		algos: func() []sched.Algorithm {
			oi := sched.NewOIHSA().Opts
			oiIns := oi
			oiIns.TaskPolicy = sched.TaskInsertion
			ba := sched.NewBA().Opts
			baIns := ba
			baIns.TaskPolicy = sched.TaskInsertion
			return []sched.Algorithm{
				sched.NewCustom("OIHSA/append", oi),
				sched.NewCustom("OIHSA/insertion", oiIns),
				sched.NewCustom("BA/append", ba),
				sched.NewCustom("BA/insertion", baIns),
			}
		},
	},
	"switching": {
		question: "A8: how much does cut-through routing buy over store-and-forward (the technique the paper's model deliberately avoids)?",
		algos: func() []sched.Algorithm {
			oi := sched.NewOIHSA().Opts
			oiSF := oi
			oiSF.Switching = sched.StoreAndForward
			bb := sched.NewBBSA().Opts
			bbSF := bb
			bbSF.Switching = sched.StoreAndForward
			return []sched.Algorithm{
				sched.NewCustom("OIHSA/cut-through", oi),
				sched.NewCustom("OIHSA/store-forward", oiSF),
				sched.NewCustom("BBSA/cut-through", bb),
				sched.NewCustom("BBSA/store-forward", bbSF),
			}
		},
	},
	"hopdelay": {
		question: "A7: how sensitive are the results to the per-hop switching delay the paper neglects (§2.2)?",
		algos: func() []sched.Algorithm {
			base := sched.NewOIHSA().Opts
			small, large := base, base
			small.HopDelay = 1
			large.HopDelay = 20
			return []sched.Algorithm{
				sched.NewCustom("OIHSA/delay-0", base),
				sched.NewCustom("OIHSA/delay-1", small),
				sched.NewCustom("OIHSA/delay-20", large),
			}
		},
	},
	"commstart": {
		question: "A6: paper's at-ready communication start vs eager per-source start (extension), on the OIHSA and BBSA stacks",
		algos: func() []sched.Algorithm {
			oi := sched.NewOIHSA().Opts
			oiEager := oi
			oiEager.CommStart = sched.CommAtSourceFinish
			bb := sched.NewBBSA().Opts
			bbEager := bb
			bbEager.CommStart = sched.CommAtSourceFinish
			return []sched.Algorithm{
				sched.NewCustom("OIHSA/ready", oi),
				sched.NewCustom("OIHSA/eager", oiEager),
				sched.NewCustom("BBSA/ready", bb),
				sched.NewCustom("BBSA/eager", bbEager),
			}
		},
	},
}

// Ablation runs one of the predefined ablations by key; see
// AblationNames for the available keys.
func Ablation(key string, cfg Config) (*AblationResult, error) {
	spec, ok := ablations[key]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown ablation %q (have %s)", key, strings.Join(AblationNames(), ", "))
	}
	return RunVariants(key, spec.question, cfg, spec.algos())
}

// WriteTable renders the ablation as an aligned text table.
func (r *AblationResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "ablation %s\n%s\n", r.Name, r.Question); err != nil {
		return err
	}
	ref := r.Algorithms[0]
	for _, name := range r.Algorithms {
		line := fmt.Sprintf("%-22s mean makespan %12.1f", name, r.MeanMakespan[name])
		if name != ref {
			imp := r.Improvement[name]
			line += fmt.Sprintf("   vs %s: %+6.1f%% ±%.1f", ref, imp.Mean, imp.CI95())
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "(%d instances)\n", r.Instances)
	return err
}
