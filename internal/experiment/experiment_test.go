package experiment

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sched"
)

// tiny returns a config small enough for unit tests.
func tiny() Config {
	return Config{
		Reps:     2,
		Seed:     7,
		MinTasks: 30,
		MaxTasks: 40,
		Procs:    []int{4},
		CCRs:     []float64{1, 5},
		Verify:   true,
	}
}

func TestFigureNumbers(t *testing.T) {
	for n := 1; n <= 4; n++ {
		sw, err := Figure(n, tiny())
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		if sw.Label == "" || sw.Title == "" {
			t.Errorf("figure %d: missing labels", n)
		}
		wantHetero := n >= 3
		_ = wantHetero
		wantX := "CCR"
		wantPoints := 2
		if n == 2 || n == 4 {
			wantX = "processors"
			wantPoints = 1
		}
		if sw.XLabel != wantX {
			t.Errorf("figure %d: x-label %q, want %q", n, sw.XLabel, wantX)
		}
		if len(sw.Points) != wantPoints {
			t.Errorf("figure %d: %d points, want %d", n, len(sw.Points), wantPoints)
		}
		for _, pt := range sw.Points {
			if pt.BaseMakespan.N == 0 || pt.BaseMakespan.Mean <= 0 {
				t.Errorf("figure %d: empty base summary at x=%v", n, pt.X)
			}
			for _, name := range sw.Algorithms[1:] {
				if pt.Improvement[name].N == 0 {
					t.Errorf("figure %d: no improvements for %s", n, name)
				}
			}
		}
	}
	if _, err := Figure(5, tiny()); err == nil {
		t.Fatal("figure 5 accepted")
	}
}

func TestFigureDeterministic(t *testing.T) {
	a, err := Figure(1, tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure(1, tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].BaseMakespan.Mean != b.Points[i].BaseMakespan.Mean {
			t.Fatal("same config produced different results")
		}
	}
}

func TestSweepTableAndCSV(t *testing.T) {
	sw, err := Figure(1, tiny())
	if err != nil {
		t.Fatal(err)
	}
	var table bytes.Buffer
	if err := sw.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	out := table.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "OIHSA") {
		t.Errorf("table output %q", out)
	}
	var csv bytes.Buffer
	if err := sw.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(sw.Points) {
		t.Fatalf("csv rows %d, want %d", len(lines), 1+len(sw.Points))
	}
	if !strings.HasPrefix(lines[0], "CCR,base_mean_makespan,improvement_OIHSA_pct") {
		t.Errorf("csv header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != len(strings.Split(lines[0], ",")) {
			t.Errorf("ragged csv row %q", l)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := tiny()
	cfg.CCRs = []float64{2}
	for _, name := range AblationNames() {
		res, err := Ablation(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Algorithms) < 2 {
			t.Errorf("%s: fewer than two variants", name)
		}
		for _, a := range res.Algorithms {
			if res.MeanMakespan[a] <= 0 {
				t.Errorf("%s: empty makespan for %s", name, a)
			}
		}
		var buf bytes.Buffer
		if err := res.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), res.Algorithms[0]) {
			t.Errorf("%s: table missing reference row", name)
		}
	}
	if _, err := Ablation("nope", cfg); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestCustomAlgorithmsInSweep(t *testing.T) {
	cfg := tiny()
	cfg.Algorithms = []sched.Algorithm{sched.NewBA(), sched.NewBASinnen()}
	sw, err := CCRSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Algorithms) != 2 || sw.Algorithms[1] != "BA-EFT" {
		t.Fatalf("algorithms %v", sw.Algorithms)
	}
	// The strong baseline should never lose to BA on average by much;
	// mostly it wins.
	for _, pt := range sw.Points {
		if pt.Improvement["BA-EFT"].Mean < -20 {
			t.Errorf("BA-EFT unexpectedly terrible at x=%v: %+v", pt.X, pt.Improvement["BA-EFT"])
		}
	}
}

func TestParallelEqualsSerial(t *testing.T) {
	cfg := tiny()
	cfg.Procs = []int{2, 4}
	cfg.CCRs = []float64{0.5, 2, 8}
	serial := cfg
	serial.Workers = 1
	parallel := cfg
	parallel.Workers = 8
	a, err := CCRSweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CCRSweep(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ")
	}
	for i := range a.Points {
		if a.Points[i].BaseMakespan != b.Points[i].BaseMakespan {
			t.Fatalf("point %d base differs: %+v vs %+v", i, a.Points[i].BaseMakespan, b.Points[i].BaseMakespan)
		}
		for name, imp := range a.Points[i].Improvement {
			if b.Points[i].Improvement[name] != imp {
				t.Fatalf("point %d improvement for %s differs", i, name)
			}
		}
	}
}

func TestPaperConfigShape(t *testing.T) {
	cfg := PaperConfig(true)
	if !cfg.Heterogeneous {
		t.Error("hetero flag lost")
	}
	if len(cfg.CCRs) != 19 || len(cfg.Procs) != 7 {
		t.Errorf("paper sweep sizes: %d ccrs, %d procs", len(cfg.CCRs), len(cfg.Procs))
	}
	if cfg.MinTasks != 40 || cfg.MaxTasks != 1000 {
		t.Errorf("paper task bounds %d-%d", cfg.MinTasks, cfg.MaxTasks)
	}
}

func TestFamilies(t *testing.T) {
	res, err := Families(FamilyConfig{Processors: 4, Reps: 1, Seed: 3, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 10 {
		t.Fatalf("only %d families", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Tasks <= 0 || row.Width <= 0 || row.BaseMakespan.Mean <= 0 {
			t.Errorf("family %s has empty results: %+v", row.Family, row)
		}
		for _, name := range res.Algorithms[1:] {
			if row.Improvement[name].N == 0 {
				t.Errorf("family %s missing improvements for %s", row.Family, name)
			}
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fft") {
		t.Error("family table incomplete")
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the regression test for
// the runner's determinism contract: instance seeds depend only on
// (Seed, procs, ccr, rep) and results are indexed by job order, so a
// serial run and a maximally parallel run must produce identical
// sweeps. Run under -race in CI, this also shakes out data races in
// the worker pool.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, run := range []struct {
		name  string
		sweep func(Config) (*Sweep, error)
	}{
		{"ccr", CCRSweep},
		{"proc", ProcSweep},
	} {
		t.Run(run.name, func(t *testing.T) {
			serialCfg := tiny()
			serialCfg.Workers = 1
			parallelCfg := tiny()
			parallelCfg.Workers = 8

			serial, err := run.sweep(serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := run.sweep(parallelCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("Workers=1 and Workers=8 disagree:\n%#v\n%#v", serial, parallel)
			}
		})
	}
}

// TestSweepDeterministicAcrossProbeWorkers mirrors the Workers test one
// level down: the EFT scheduler's internal probe fan-out must never
// change sweep results. BA-EFT is the only default-suite algorithm that
// uses EFT probing, so it is pitted against BA explicitly.
func TestSweepDeterministicAcrossProbeWorkers(t *testing.T) {
	run := func(probeWorkers int) *Sweep {
		t.Helper()
		cfg := tiny()
		cfg.Algorithms = []sched.Algorithm{sched.NewBA(), sched.NewBASinnen()}
		cfg.ProbeWorkers = probeWorkers
		sw, err := CCRSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("ProbeWorkers=1 and ProbeWorkers=8 disagree:\n%#v\n%#v", serial, parallel)
	}
}

// TestProbeWorkersAppliedToListSchedulers checks the Config plumbing:
// withDefaults must push ProbeWorkers into every ListScheduler option
// set (and leave it alone when unset).
func TestProbeWorkersAppliedToListSchedulers(t *testing.T) {
	cfg := Config{ProbeWorkers: 3}
	cfg = cfg.withDefaults()
	for _, a := range cfg.Algorithms {
		ls, ok := a.(*sched.ListScheduler)
		if !ok {
			continue
		}
		if ls.Opts.ProbeWorkers != 3 {
			t.Fatalf("%s: ProbeWorkers %d, want 3", ls.Name(), ls.Opts.ProbeWorkers)
		}
	}
	def := Config{}.withDefaults()
	for _, a := range def.Algorithms {
		if ls, ok := a.(*sched.ListScheduler); ok && ls.Opts.ProbeWorkers != 0 {
			t.Fatalf("%s: zero config mutated ProbeWorkers to %d", ls.Name(), ls.Opts.ProbeWorkers)
		}
	}
}
