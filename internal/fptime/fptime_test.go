package fptime

import "testing"

func TestEpsHelpers(t *testing.T) {
	cases := []struct {
		a, b           float64
		geq, leq, less bool
	}{
		{1, 1, true, true, false},
		{1 + 1e-12, 1, true, true, false},  // equal up to noise
		{1 - 1e-12, 1, true, true, false},  // equal up to noise
		{1, 2, false, true, true},          // clearly smaller
		{2, 1, true, false, false},         // clearly larger
		{1 - 0.5e-9, 1, true, true, false}, // within Eps
		{1 - 2e-9, 1, false, true, true},   // beyond Eps
		{0, 0, true, true, false},
		{-1e-12, 0, true, true, false},
	}
	for _, c := range cases {
		if got := GeqEps(c.a, c.b); got != c.geq {
			t.Errorf("GeqEps(%v, %v) = %v, want %v", c.a, c.b, got, c.geq)
		}
		if got := LeqEps(c.a, c.b); got != c.leq {
			t.Errorf("LeqEps(%v, %v) = %v, want %v", c.a, c.b, got, c.leq)
		}
		if got := LessEps(c.a, c.b); got != c.less {
			t.Errorf("LessEps(%v, %v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestVerificationHelpers(t *testing.T) {
	if !Geq(1-1e-7, 1) {
		t.Error("Geq should absorb sub-AbsTol deficits")
	}
	if Geq(1-1e-5, 1) {
		t.Error("Geq should reject deficits beyond AbsTol")
	}
	// The relative term matters at large magnitudes: 1e9 * RelTol = 1.
	if !Geq(1e9-0.5, 1e9) {
		t.Error("Geq should scale its tolerance with |b|")
	}
	if !Leq(1+1e-7, 1) || Leq(1+1e-5, 1) {
		t.Error("Leq tolerance wrong")
	}
	if !Close(1+1e-7, 1) || Close(1+1e-5, 1) {
		t.Error("Close tolerance wrong")
	}
	if !Close(1e9+0.5, 1e9) {
		t.Error("Close should scale with |want|")
	}
	if !CloseRel(100+5e-5, 100, 1e-6) || CloseRel(100+2e-4, 100, 1e-6) {
		t.Error("CloseRel tolerance wrong")
	}
	// Symmetry of the asymmetric reference: Geq(a,b) uses |b|.
	if !Geq(0, 0) || !Leq(0, 0) || !Close(0, 0) {
		t.Error("zero cases must hold")
	}
}
