// Package fptime centralizes the floating-point time arithmetic of the
// edge-scheduling model. All times, costs, bandwidth fractions and
// speeds in this repository are float64; comparing them bare invites
// off-by-epsilon bugs (a transfer that "finishes after" its
// predecessor by 1e-13, a slot rejected from a gap it fits into up to
// rounding noise). Every start/finish/arrival decision must go through
// the helpers in this package; the floateq analyzer in internal/lint
// mechanically enforces that convention.
//
// Two tolerance regimes coexist, matching the two kinds of decisions
// the schedulers make:
//
//   - Interval arithmetic (Eps): the link timelines and the list
//     scheduler compare candidate starts, gap fits and score
//     improvements with a tiny absolute epsilon that only absorbs
//     accumulated rounding noise. Use GeqEps/LeqEps/LessEps.
//   - Verification (AbsTol/RelTol): the schedule verifier tolerates
//     the slightly larger error produced by long chains of
//     divisions/summations, scaled with the magnitude of the compared
//     values. Use Geq/Leq/Close/CloseRel.
package fptime

import "math"

const (
	// Eps is the absolute tolerance of interval arithmetic on link and
	// processor timelines (slot fitting, causality lower bounds, score
	// comparisons).
	Eps = 1e-9

	// AbsTol and RelTol are the verification tolerances: a quantity is
	// acceptable within AbsTol + RelTol*|reference| of its reference.
	AbsTol = 1e-6
	RelTol = 1e-9
)

// GeqEps reports a >= b under the interval-arithmetic tolerance.
func GeqEps(a, b float64) bool { return a >= b-Eps }

// LeqEps reports a <= b under the interval-arithmetic tolerance.
func LeqEps(a, b float64) bool { return a <= b+Eps }

// LessEps reports a < b by more than the interval-arithmetic
// tolerance, i.e. a is strictly smaller beyond rounding noise.
func LessEps(a, b float64) bool { return a < b-Eps }

// Geq reports a >= b under the verification tolerance, which scales
// with |b|.
func Geq(a, b float64) bool { return a >= b-AbsTol-RelTol*math.Abs(b) }

// Leq reports a <= b under the verification tolerance, which scales
// with |b|.
func Leq(a, b float64) bool { return a <= b+AbsTol+RelTol*math.Abs(b) }

// Close reports |got-want| within the verification tolerance, scaled
// with |want|.
func Close(got, want float64) bool {
	return math.Abs(got-want) <= AbsTol+RelTol*math.Abs(want)
}

// CloseRel reports |got-want| within AbsTol plus an explicit relative
// tolerance of |want| — for accumulation-heavy quantities (chunk
// volumes, bandwidth sums) that need a looser relative term than
// RelTol.
func CloseRel(got, want, rel float64) bool {
	return math.Abs(got-want) <= AbsTol+rel*math.Abs(want)
}

// LeqRel reports a <= b within AbsTol plus an explicit relative
// tolerance of |b| — the one-sided counterpart of CloseRel.
func LeqRel(a, b, rel float64) bool {
	return a <= b+AbsTol+rel*math.Abs(b)
}
