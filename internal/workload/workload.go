// Package workload generates the random problem instances of the
// paper's evaluation (§6): task graphs with |V| ∈ U(40, 1000) tasks and
// costs ∈ U(1, 1000) rescaled to a target CCR, scheduled onto random
// switched clusters where every switch hosts U(4, 16) processors and
// the switch graph is randomly connected. All generation is driven by
// an explicit seed so every experiment is reproducible.
package workload

import (
	"math/rand"

	"repro/internal/dag"
	"repro/internal/network"
)

// Params describes one experimental cell of the paper's §6 setup.
type Params struct {
	// Processors is the machine size; the paper sweeps
	// {2, 4, 8, 16, 32, 64, 128}.
	Processors int
	// CCR is the communication-to-computation ratio the task graph is
	// rescaled to; the paper sweeps 0.1–10.
	CCR float64
	// Heterogeneous selects U(1,10) processor and link speeds; when
	// false all speeds are 1 (the paper's homogeneous systems).
	Heterogeneous bool
	// MinTasks/MaxTasks bound the task count, drawn uniformly; the
	// paper uses U(40, 1000). Zero values default to the paper's.
	MinTasks, MaxTasks int
	// Seed drives all randomness of the instance.
	Seed int64
}

// withDefaults fills zero fields with the paper's values.
func (p Params) withDefaults() Params {
	if p.Processors <= 0 {
		p.Processors = 8
	}
	if p.CCR <= 0 {
		p.CCR = 1
	}
	if p.MinTasks <= 0 {
		p.MinTasks = 40
	}
	if p.MaxTasks < p.MinTasks {
		p.MaxTasks = 1000
	}
	return p
}

// Instance is one generated problem: a task graph plus a target
// machine.
type Instance struct {
	Graph  *dag.Graph
	Net    *network.Topology
	Params Params
}

// Generate builds one reproducible instance from the parameters.
func Generate(p Params) Instance {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed))
	tasks := p.MinTasks
	if p.MaxTasks > p.MinTasks {
		tasks += r.Intn(p.MaxTasks - p.MinTasks + 1)
	}
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    tasks,
		TaskCost: dag.CostDist{Lo: 1, Hi: 1000},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 1000},
	})
	g.ScaleToCCR(p.CCR)

	proc := network.Uniform(1)
	link := network.Uniform(1)
	if p.Heterogeneous {
		proc = network.UniformRange(r, 1, 10)
		link = network.UniformRange(r, 1, 10)
	}
	net := network.RandomCluster(r, network.RandomClusterParams{
		Processors: p.Processors,
		ProcSpeed:  proc,
		LinkSpeed:  link,
	})
	return Instance{Graph: g, Net: net, Params: p}
}

// PaperCCRs returns the CCR sweep of Figures 1 and 3:
// 0.1–1.0 in steps of 0.1, then 2.0–10.0 in steps of 1.0.
func PaperCCRs() []float64 {
	var out []float64
	for i := 1; i <= 10; i++ {
		out = append(out, float64(i)/10)
	}
	for i := 2; i <= 10; i++ {
		out = append(out, float64(i))
	}
	return out
}

// PaperProcessorCounts returns the machine-size sweep of Figures 2
// and 4: {2, 4, 8, 16, 32, 64, 128}.
func PaperProcessorCounts() []int {
	return []int{2, 4, 8, 16, 32, 64, 128}
}
