package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDefaults(t *testing.T) {
	inst := Generate(Params{Seed: 1})
	if err := inst.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	n := inst.Graph.NumTasks()
	if n < 40 || n > 1000 {
		t.Fatalf("task count %d outside U(40,1000)", n)
	}
	if inst.Net.NumProcessors() != 8 {
		t.Fatalf("default processors %d, want 8", inst.Net.NumProcessors())
	}
	if got := inst.Graph.CCR(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("default CCR %v, want 1", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Processors: 12, CCR: 3, Heterogeneous: true, Seed: 42}
	a := Generate(p)
	b := Generate(p)
	if a.Graph.NumTasks() != b.Graph.NumTasks() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Graph.Tasks() {
		if a.Graph.Tasks()[i] != b.Graph.Tasks()[i] {
			t.Fatal("same seed produced different task costs")
		}
	}
	if a.Net.NumNodes() != b.Net.NumNodes() || a.Net.NumLinks() != b.Net.NumLinks() {
		t.Fatal("same seed produced different networks")
	}
	c := Generate(Params{Processors: 12, CCR: 3, Heterogeneous: true, Seed: 43})
	if c.Graph.NumTasks() == a.Graph.NumTasks() && c.Graph.NumEdges() == a.Graph.NumEdges() &&
		c.Net.NumLinks() == a.Net.NumLinks() {
		t.Log("different seeds produced structurally identical instances (unlikely but possible)")
	}
}

func TestGenerateRespectsCCRAndTasks(t *testing.T) {
	f := func(seed int64, procs, ccrTenths uint8) bool {
		p := Params{
			Processors: int(procs%32) + 1,
			CCR:        (float64(ccrTenths%100) + 1) / 10,
			MinTasks:   50,
			MaxTasks:   60,
			Seed:       seed,
		}
		inst := Generate(p)
		n := inst.Graph.NumTasks()
		if n < 50 || n > 60 {
			return false
		}
		if inst.Net.NumProcessors() != p.Processors {
			return false
		}
		return math.Abs(inst.Graph.CCR()-p.CCR) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateHeterogeneousSpeeds(t *testing.T) {
	inst := Generate(Params{Processors: 30, Heterogeneous: true, Seed: 5})
	varied := false
	first := inst.Net.Node(inst.Net.Processors()[0]).Speed
	for _, p := range inst.Net.Processors() {
		sp := inst.Net.Node(p).Speed
		if sp < 1 || sp > 10 {
			t.Fatalf("processor speed %v outside U(1,10)", sp)
		}
		if sp != first {
			varied = true
		}
	}
	if !varied {
		t.Error("heterogeneous system has uniform processor speeds")
	}
	homo := Generate(Params{Processors: 30, Seed: 5})
	for _, p := range homo.Net.Processors() {
		if homo.Net.Node(p).Speed != 1 {
			t.Fatalf("homogeneous processor speed %v, want 1", homo.Net.Node(p).Speed)
		}
	}
}

func TestPaperSweeps(t *testing.T) {
	ccrs := PaperCCRs()
	if len(ccrs) != 19 {
		t.Fatalf("PaperCCRs has %d entries, want 19", len(ccrs))
	}
	if math.Abs(ccrs[0]-0.1) > 1e-12 || ccrs[len(ccrs)-1] != 10 {
		t.Fatalf("CCR endpoints %v ... %v", ccrs[0], ccrs[len(ccrs)-1])
	}
	for i := 1; i < len(ccrs); i++ {
		if ccrs[i] <= ccrs[i-1] {
			t.Fatalf("CCRs not increasing at %d", i)
		}
	}
	procs := PaperProcessorCounts()
	want := []int{2, 4, 8, 16, 32, 64, 128}
	if len(procs) != len(want) {
		t.Fatalf("processor counts %v", procs)
	}
	for i := range want {
		if procs[i] != want[i] {
			t.Fatalf("processor counts %v, want %v", procs, want)
		}
	}
}
