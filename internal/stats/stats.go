// Package stats provides the small set of summary statistics the
// experiment harness reports: mean, standard deviation, min/max, and
// normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes a Summary of the sample. An empty sample yields
// the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean under the normal approximation (z = 1.96). It returns 0 for
// samples of fewer than two observations.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f ±%.3f [%.3f, %.3f]", s.N, s.Mean, s.CI95(), s.Min, s.Max)
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Median returns the sample median (0 for an empty sample). The input
// is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// ImprovementPct returns the percentage by which "better" improves on
// "base": 100*(base-better)/base. A non-positive base yields 0.
func ImprovementPct(base, better float64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (base - better) / base
}

// GeoMean returns the geometric mean of positive samples; zero or
// negative entries are skipped. An effectively empty sample yields 0.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
