package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almost(s.Mean, 2.5) || !almost(s.Min, 1) || !almost(s.Max, 4) {
		t.Fatalf("summary %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if !almost(s.Stddev, want) {
		t.Fatalf("stddev %v, want %v", s.Stddev, want)
	}
	if s.CI95() <= 0 {
		t.Fatalf("CI95 %v", s.CI95())
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Stddev != 0 || s.CI95() != 0 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); !almost(m, 2) {
		t.Fatalf("odd median %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); !almost(m, 2.5) {
		t.Fatalf("even median %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Fatalf("empty median %v", m)
	}
	// Median must not modify its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("median mutated input")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {62.5, 35},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%.1f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestImprovementPct(t *testing.T) {
	if got := ImprovementPct(200, 150); !almost(got, 25) {
		t.Fatalf("improvement %v, want 25", got)
	}
	if got := ImprovementPct(100, 120); !almost(got, -20) {
		t.Fatalf("regression %v, want -20", got)
	}
	if got := ImprovementPct(0, 5); got != 0 {
		t.Fatalf("zero base %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almost(got, 10) {
		t.Fatalf("geomean %v, want 10", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Fatalf("non-positive geomean %v", got)
	}
	if got := GeoMean([]float64{-5, 4, 9}); !almost(got, 6) {
		t.Fatalf("mixed geomean %v, want 6", got)
	}
}

func TestSummarizeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// Screen non-finite values from the fuzzer.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e15 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if s.N != len(clean) {
			return false
		}
		if len(clean) == 0 {
			return true
		}
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
