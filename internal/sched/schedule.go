// Package sched implements the contention-aware list-scheduling
// algorithms of Han & Wang (ICPP 2006) — OIHSA and BBSA — together with
// their baseline, Sinnen & Sousa's Basic Algorithm (BA), and a classic
// contention-free list scheduler. All algorithms share one list
// scheduling framework whose policies (routing, insertion, edge order,
// processor selection, transfer engine) are selectable, which also
// powers the ablation experiments.
package sched

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/linksched"
	"repro/internal/network"
)

// TaskPlacement is the scheduled execution of one task.
type TaskPlacement struct {
	Task   dag.TaskID
	Proc   network.NodeID
	Start  float64
	Finish float64
}

// EdgePlacement is the scheduled occupation of one route link by one
// edge. For the exclusive-slot engine the occupation is the single
// interval [Start, Finish]; for the bandwidth engine it is the Chunks,
// with Start/Finish the envelope.
type EdgePlacement struct {
	Link   network.LinkID
	Start  float64
	Finish float64
	Chunks []linksched.Chunk // bandwidth engine only
}

// EdgeSchedule is the scheduled communication of one DAG edge across
// the network. Intra-processor edges have no EdgeSchedule (their
// communication cost is zero by the model).
type EdgeSchedule struct {
	Edge       dag.EdgeID
	SrcProc    network.NodeID
	DstProc    network.NodeID
	Route      network.Route
	Placements []EdgePlacement // one per route link, in route order
	Arrival    float64         // time the data is available at DstProc
	// Base is the earliest time the communication was allowed to enter
	// the network (the destination task's ready time under the paper's
	// model). Arrival − Base − uncontended transfer time is the delay
	// attributable to contention and routing.
	Base float64
}

// Schedule is the complete result of a scheduling run.
type Schedule struct {
	Algorithm string
	Graph     *dag.Graph
	Net       *network.Topology
	// Tasks is indexed by TaskID.
	Tasks []TaskPlacement
	// Edges is indexed by EdgeID; nil entries are intra-processor
	// communications (or ideal-model schedules that do not route).
	Edges []*EdgeSchedule
	// Makespan is the maximum task finish time.
	Makespan float64
	// Ideal marks schedules produced under the classic contention-free
	// model; their Edges are nil and link feasibility is not claimed.
	Ideal bool
	// HopDelay is the per-hop switching delay the schedule was built
	// with (0 unless the extension was enabled); the verifier uses it
	// when checking link causality.
	HopDelay float64
	// Switching records the switching technique the schedule was built
	// with; the verifier checks the matching causality rule.
	Switching Switching
	// Duplicates lists re-executions of predecessor-free tasks placed
	// by the Duplication extension: a cross-processor edge without a
	// network schedule is legal when a duplicate of its source task
	// finishes on the destination processor before the consumer starts.
	Duplicates []TaskPlacement
}

// TaskOn returns the placement of the given task.
func (s *Schedule) TaskOn(id dag.TaskID) TaskPlacement { return s.Tasks[id] }

// ProcOf returns the processor the task was mapped to.
func (s *Schedule) ProcOf(id dag.TaskID) network.NodeID { return s.Tasks[id].Proc }

// ArrivalOf returns the time the data of edge e becomes available at
// its destination processor: the edge schedule's arrival, or the source
// task's finish time for intra-processor edges.
func (s *Schedule) ArrivalOf(e dag.EdgeID) float64 {
	if es := s.Edges[e]; es != nil {
		return es.Arrival
	}
	return s.Tasks[s.Graph.Edge(e).From].Finish
}

// ProcUtilization returns, per processor node ID, the fraction of
// [0, makespan] spent computing.
func (s *Schedule) ProcUtilization() map[network.NodeID]float64 {
	busy := map[network.NodeID]float64{}
	for _, tp := range s.Tasks {
		busy[tp.Proc] += tp.Finish - tp.Start
	}
	for _, tp := range s.Duplicates {
		busy[tp.Proc] += tp.Finish - tp.Start
	}
	out := map[network.NodeID]float64{}
	for _, p := range s.Net.Processors() {
		if s.Makespan > 0 {
			out[p] = busy[p] / s.Makespan
		} else {
			out[p] = 0
		}
	}
	return out
}

// CommStats summarizes the communication side of a schedule.
type CommStats struct {
	RoutedEdges int     // edges that crossed the network
	LocalEdges  int     // intra-processor edges
	TotalHops   int     // sum of route lengths
	MeanHops    float64 // TotalHops / RoutedEdges
	MaxArrival  float64 // latest data arrival
}

// CommStats computes communication statistics.
func (s *Schedule) CommStats() CommStats {
	var cs CommStats
	for _, es := range s.Edges {
		if es == nil {
			cs.LocalEdges++
			continue
		}
		cs.RoutedEdges++
		cs.TotalHops += len(es.Route)
		if es.Arrival > cs.MaxArrival {
			cs.MaxArrival = es.Arrival
		}
	}
	if s.Graph != nil {
		cs.LocalEdges = s.Graph.NumEdges() - cs.RoutedEdges
	}
	if cs.RoutedEdges > 0 {
		cs.MeanHops = float64(cs.TotalHops) / float64(cs.RoutedEdges)
	}
	return cs
}

// String returns a one-line summary.
func (s *Schedule) String() string {
	return fmt.Sprintf("%s: makespan=%.3f tasks=%d", s.Algorithm, s.Makespan, len(s.Tasks))
}

// Algorithm is the common interface of all schedulers in this package.
type Algorithm interface {
	// Name returns the algorithm's display name.
	Name() string
	// Schedule maps every task of g onto a processor of net and every
	// inter-processor edge onto a route of links, returning the
	// complete schedule.
	Schedule(g *dag.Graph, net *network.Topology) (*Schedule, error)
}

// makespan computes the maximum task finish.
func makespan(tasks []TaskPlacement) float64 {
	m := 0.0
	for _, t := range tasks {
		if t.Finish > m {
			m = t.Finish
		}
	}
	return m
}
