package sched

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/network"
)

// Classic is the contention-free list scheduler of the idealized model
// the paper criticizes: processors are assumed fully connected and all
// communications proceed concurrently without contention, each taking
// c(e)/MLS time (zero within a processor). It serves as the "what the
// traditional literature would predict" baseline and as the assignment
// source for ClassicReplay.
type Classic struct{}

// NewClassic returns the contention-free baseline scheduler.
func NewClassic() *Classic { return &Classic{} }

// Name implements Algorithm.
func (c *Classic) Name() string { return "Classic" }

// Schedule implements Algorithm under the ideal model. The returned
// schedule has Ideal set and no edge schedules; its makespan is the
// ideal-model prediction, not a network-feasible value.
func (c *Classic) Schedule(g *dag.Graph, net *network.Topology) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	order, err := g.PriorityOrder()
	if err != nil {
		return nil, err
	}
	mls := net.MeanLinkSpeed()
	tasks := make([]TaskPlacement, g.NumTasks())
	for i := range tasks {
		tasks[i] = TaskPlacement{Task: dag.TaskID(i), Proc: -1}
	}
	procFinish := make([]float64, net.NumNodes())
	for _, tid := range order {
		best := network.NodeID(-1)
		bestFinish := math.Inf(1)
		bestStart := 0.0
		for _, p := range net.Processors() {
			drt := 0.0
			for _, eid := range g.Pred(tid) {
				e := g.Edge(eid)
				src := tasks[e.From]
				arr := src.Finish
				if src.Proc != p {
					arr += e.Cost / mls
				}
				if arr > drt {
					drt = arr
				}
			}
			start := drt
			if procFinish[p] > start {
				start = procFinish[p]
			}
			finish := start + g.Task(tid).Cost/net.Node(p).Speed
			if finish < bestFinish-1e-12 {
				bestFinish = finish
				bestStart = start
				best = p
			}
		}
		tasks[tid] = TaskPlacement{Task: tid, Proc: best, Start: bestStart, Finish: bestFinish}
		procFinish[best] = bestFinish
	}
	return &Schedule{
		Algorithm: "Classic",
		Graph:     g,
		Net:       net,
		Tasks:     tasks,
		Edges:     make([]*EdgeSchedule, g.NumEdges()),
		Makespan:  makespan(tasks),
		Ideal:     true,
	}, nil
}

// ClassicReplay runs Classic to obtain a task-to-processor assignment
// under the ideal model, then replays that assignment on the real
// network: every inter-processor edge is routed (BFS) and placed
// (basic insertion) under contention, and task times are recomputed.
// The gap between Classic's predicted makespan and ClassicReplay's
// actual makespan quantifies how wrong the ideal model is (ablation A4
// in DESIGN.md).
type ClassicReplay struct{}

// NewClassicReplay returns the replay scheduler.
func NewClassicReplay() *ClassicReplay { return &ClassicReplay{} }

// Name implements Algorithm.
func (c *ClassicReplay) Name() string { return "Classic+Replay" }

// Schedule implements Algorithm.
func (c *ClassicReplay) Schedule(g *dag.Graph, net *network.Topology) (*Schedule, error) {
	ideal, err := NewClassic().Schedule(g, net)
	if err != nil {
		return nil, err
	}
	return ReplayAssignment(g, net, ideal, "Classic+Replay")
}

// ReplayAssignment keeps the task-to-processor mapping of the given
// schedule but recomputes all times on the real network with BFS
// routing and basic insertion. Tasks are processed in the bottom-level
// priority order, so per-processor execution order may legitimately
// differ from the donor schedule when contention moves data arrivals.
func ReplayAssignment(g *dag.Graph, net *network.Topology, donor *Schedule, name string) (*Schedule, error) {
	assign := make([]network.NodeID, len(donor.Tasks))
	for i, tp := range donor.Tasks {
		assign[i] = tp.Proc
	}
	return ScheduleAssignment(g, net, assign, Options{
		Routing: RoutingBFS, Insertion: InsertionBasic,
		EdgeOrder: EdgeOrderFIFO, ProcSelect: ProcSelectEstimate, Engine: EngineSlots,
	}, name)
}

// ScheduleAssignment schedules the graph with a fixed task-to-processor
// assignment (indexed by TaskID) under the given edge-scheduling
// policies, skipping processor selection entirely. It is the evaluation
// primitive of replay baselines and the local-search refiner.
func ScheduleAssignment(g *dag.Graph, net *network.Topology, assign []network.NodeID, opts Options, name string) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if len(assign) != g.NumTasks() {
		return nil, fmt.Errorf("sched: assignment covers %d tasks, graph has %d", len(assign), g.NumTasks())
	}
	for tid, p := range assign {
		if p < 0 || int(p) >= net.NumNodes() || net.Node(p).Kind != network.Processor {
			return nil, fmt.Errorf("sched: task %d assigned to invalid processor %d", tid, p)
		}
	}
	s, err := newState(g, net, opts)
	if err != nil {
		return nil, err
	}
	order, err := priorityOrder(g, opts.Priority)
	if err != nil {
		return nil, err
	}
	for _, tid := range order {
		if _, err := s.placeTask(tid, assign[tid]); err != nil {
			return nil, err
		}
	}
	return &Schedule{
		Algorithm: name,
		Graph:     g,
		Net:       net,
		Tasks:     s.tasks,
		Edges:     s.edges.materialize(),
		Makespan:  makespan(s.tasks),
		HopDelay:  opts.HopDelay,
		Switching: opts.Switching,
	}, nil
}
