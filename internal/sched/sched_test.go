package sched_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/verify"
)

func algorithms() []sched.Algorithm {
	return []sched.Algorithm{
		sched.NewBA(),
		sched.NewBASinnen(),
		sched.NewOIHSA(),
		sched.NewBBSA(),
		sched.NewClassicReplay(),
	}
}

func mustSchedule(t *testing.T, a sched.Algorithm, g *dag.Graph, net *network.Topology) *sched.Schedule {
	t.Helper()
	s, err := a.Schedule(g, net)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	if res := verify.Verify(s); !res.OK() {
		for i, v := range res.Violations {
			if i >= 10 {
				t.Errorf("... and %d more", len(res.Violations)-10)
				break
			}
			t.Errorf("%s: %s", a.Name(), v)
		}
		t.FailNow()
	}
	return s
}

func TestSingleTask(t *testing.T) {
	g := dag.New()
	g.AddTask("only", 10)
	net := network.Star(3, network.Uniform(2), network.Uniform(1))
	for _, a := range algorithms() {
		s := mustSchedule(t, a, g, net)
		if math.Abs(s.Makespan-5) > 1e-9 { // 10 / speed 2
			t.Errorf("%s: makespan=%v, want 5", a.Name(), s.Makespan)
		}
	}
}

func TestChainOnSingleProcessor(t *testing.T) {
	// One processor: no communication, makespan = total work.
	g := dag.Chain(5, 4, 100)
	net := network.Star(1, network.Uniform(1), network.Uniform(1))
	for _, a := range algorithms() {
		s := mustSchedule(t, a, g, net)
		if math.Abs(s.Makespan-20) > 1e-9 {
			t.Errorf("%s: makespan=%v, want 20", a.Name(), s.Makespan)
		}
	}
}

func TestChainStaysLocalWhenCommDominates(t *testing.T) {
	// Communication is so expensive that spreading the chain is never
	// worthwhile; every algorithm should keep the whole chain local and
	// hit exactly the serial makespan.
	g := dag.Chain(6, 1, 1000)
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	for _, a := range algorithms() {
		s := mustSchedule(t, a, g, net)
		if math.Abs(s.Makespan-6) > 1e-9 {
			t.Errorf("%s: makespan=%v, want 6", a.Name(), s.Makespan)
		}
	}
}

func TestForkJoinUsesParallelism(t *testing.T) {
	// Cheap communication: a 2-wide fork-join on 2 processors should
	// beat serial execution.
	g := dag.ForkJoin(4, 100, 1)
	net := network.FullyConnected(4, network.Uniform(1), network.Uniform(100))
	serial := g.TotalTaskCost() // 600
	for _, a := range algorithms() {
		s := mustSchedule(t, a, g, net)
		if s.Makespan >= serial {
			t.Errorf("%s: makespan=%v did not beat serial %v", a.Name(), s.Makespan, serial)
		}
	}
}

func TestDiamondExactMakespanTwoProcs(t *testing.T) {
	// Diamond a->{b,c}->d, task cost 10, edge cost 10, two processors
	// joined by one duplex link of speed 1.
	// Optimal: a,b,d on P0; c on P1. a:[0,10]; edge a->c:[10,20];
	// b:[10,20] local; c:[20,30]; edge c->d:[30,40]; d:[40,50].
	g := dag.Diamond(10, 10)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	for _, a := range algorithms() {
		s := mustSchedule(t, a, g, net)
		if s.Makespan < 40-1e-9 {
			t.Errorf("%s: makespan=%v below feasible bound 40", a.Name(), s.Makespan)
		}
		if s.Makespan > 50+1e-9 {
			t.Errorf("%s: makespan=%v worse than two-proc plan 50", a.Name(), s.Makespan)
		}
	}
}

func TestContentionForcesSerializedTransfers(t *testing.T) {
	// Star with one hub: two edges from the same source processor must
	// share the source's uplink; with exclusive slots they serialize.
	g := dag.New()
	src := g.AddTask("src", 1)
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.AddEdge(src, a, 50)
	g.AddEdge(src, b, 50)
	net := network.Star(3, network.Uniform(1), network.Uniform(1))
	s := mustSchedule(t, sched.NewBA(), g, net)
	// If a and b land on distinct non-source processors, both transfers
	// cross the source uplink: second arrival ≥ 1 + 50 + 50 = 101.
	pa, pb := s.ProcOf(1), s.ProcOf(2)
	ps := s.ProcOf(0)
	if pa != ps && pb != ps && pa != pb {
		arr1, arr2 := s.ArrivalOf(0), s.ArrivalOf(1)
		later := math.Max(arr1, arr2)
		if later < 101-1e-9 {
			t.Errorf("BA: second arrival %v ignores uplink contention", later)
		}
	}
}

func TestBBSASharesBandwidthOnUplink(t *testing.T) {
	// Same scenario: BBSA may overlap the two transfers at half rate
	// each; both arrive by 1 + 100 = 101 but can also interleave.
	g := dag.New()
	src := g.AddTask("src", 1)
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.AddEdge(src, a, 50)
	g.AddEdge(src, b, 50)
	net := network.Star(3, network.Uniform(1), network.Uniform(1))
	s := mustSchedule(t, sched.NewBBSA(), g, net)
	if s.Makespan <= 0 {
		t.Fatalf("BBSA produced empty makespan")
	}
}

func TestOIHSANotWorseThanBAOnAverage(t *testing.T) {
	// The paper's headline claim, checked in expectation over random
	// instances: OIHSA and BBSA average makespan ≤ BA's.
	r := rand.New(rand.NewSource(11))
	var sumBA, sumOI, sumBB float64
	for trial := 0; trial < 12; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    60,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
		})
		g.ScaleToCCR(2.0)
		net := network.RandomCluster(r, network.RandomClusterParams{
			Processors: 8,
			ProcSpeed:  network.Uniform(1),
			LinkSpeed:  network.Uniform(1),
		})
		sumBA += mustSchedule(t, sched.NewBA(), g, net).Makespan
		sumOI += mustSchedule(t, sched.NewOIHSA(), g, net).Makespan
		sumBB += mustSchedule(t, sched.NewBBSA(), g, net).Makespan
	}
	if sumOI > sumBA*1.02 {
		t.Errorf("OIHSA mean makespan %.1f worse than BA %.1f", sumOI, sumBA)
	}
	if sumBB > sumBA*1.02 {
		t.Errorf("BBSA mean makespan %.1f worse than BA %.1f", sumBB, sumBB)
	}
}

func TestAllAlgorithmsOnAllTopologies(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    40,
		TaskCost: dag.CostDist{Lo: 1, Hi: 50},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 50},
	})
	topos := map[string]*network.Topology{
		"fully":     network.FullyConnected(4, network.Uniform(1), network.Uniform(1)),
		"ring":      network.Ring(5, network.Uniform(1), network.Uniform(1)),
		"line":      network.Line(4, network.Uniform(1), network.Uniform(1)),
		"star":      network.Star(6, network.Uniform(1), network.Uniform(1)),
		"mesh":      network.Mesh2D(2, 3, network.Uniform(1), network.Uniform(1)),
		"torus":     network.Torus2D(3, 3, network.Uniform(1), network.Uniform(1)),
		"hypercube": network.Hypercube(3, network.Uniform(1), network.Uniform(1)),
		"fattree":   network.FatTree(3, 2, network.Uniform(1), network.Uniform(1)),
		"bus":       network.Bus(4, network.Uniform(1), 1),
		"cluster": network.RandomCluster(r, network.RandomClusterParams{
			Processors: 12, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)}),
		"hetero": network.RandomCluster(r, network.RandomClusterParams{
			Processors: 12,
			ProcSpeed:  network.UniformRange(r, 1, 10),
			LinkSpeed:  network.UniformRange(r, 1, 10)}),
		"torus3d":   network.Torus3D(2, 2, 2, network.Uniform(1), network.Uniform(1)),
		"tree":      network.SwitchTree(2, 2, 2, network.Uniform(1), network.Uniform(1)),
		"dumbbell":  network.Dumbbell(3, 3, network.Uniform(1), network.Uniform(2), 0.5),
		"dragonfly": network.Dragonfly(3, 3, network.Uniform(1), network.Uniform(4), network.Uniform(1)),
		"butterfly": network.ButterflyNet(2, network.Uniform(1), network.Uniform(1)),
	}
	for name, net := range topos {
		for _, a := range algorithms() {
			s := mustSchedule(t, a, g, net)
			if s.Makespan <= 0 {
				t.Errorf("%s on %s: non-positive makespan %v", a.Name(), name, s.Makespan)
			}
		}
	}
}

func TestSchedulePropertyRandomInstances(t *testing.T) {
	// Broad randomized soak: every produced schedule must verify.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    10 + r.Intn(80),
			TaskCost: dag.CostDist{Lo: 1, Hi: 1000},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 1000},
			FanOut:   1 + r.Intn(5),
		})
		g.ScaleToCCR(0.1 + r.Float64()*9.9)
		procs := 2 + r.Intn(15)
		var net *network.Topology
		switch trial % 3 {
		case 0:
			net = network.RandomCluster(r, network.RandomClusterParams{
				Processors: procs,
				ProcSpeed:  network.UniformRange(r, 1, 10),
				LinkSpeed:  network.UniformRange(r, 1, 10),
			})
		case 1:
			net = network.Ring(procs, network.Uniform(1), network.UniformRange(r, 1, 10))
		default:
			net = network.Star(procs, network.UniformRange(r, 1, 10), network.Uniform(1))
		}
		for _, a := range algorithms() {
			mustSchedule(t, a, g, net)
		}
	}
}

func TestClassicIdealIsOptimistic(t *testing.T) {
	// The ideal model must never predict a longer makespan than the
	// replay of its own assignment on the real network.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    50,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 500},
		})
		net := network.RandomCluster(r, network.RandomClusterParams{
			Processors: 8, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
		ideal, err := sched.NewClassic().Schedule(g, net)
		if err != nil {
			t.Fatal(err)
		}
		if res := verify.Verify(ideal); !res.OK() {
			t.Fatalf("ideal schedule invalid: %v", res.Err())
		}
		replay := mustSchedule(t, sched.NewClassicReplay(), g, net)
		if ideal.Makespan > replay.Makespan+1e-6 {
			t.Errorf("trial %d: ideal %v > replay %v — replay should never beat the optimistic model",
				trial, ideal.Makespan, replay.Makespan)
		}
	}
}

func TestDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    60,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
	})
	net := network.RandomCluster(r, network.RandomClusterParams{
		Processors: 10, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
	for _, a := range algorithms() {
		s1 := mustSchedule(t, a, g, net)
		s2 := mustSchedule(t, a, g, net)
		if s1.Makespan != s2.Makespan {
			t.Errorf("%s: nondeterministic makespan %v vs %v", a.Name(), s1.Makespan, s2.Makespan)
		}
		for i := range s1.Tasks {
			if s1.Tasks[i] != s2.Tasks[i] {
				t.Errorf("%s: task %d placement differs across runs", a.Name(), i)
				break
			}
		}
	}
}

func TestCommStats(t *testing.T) {
	g := dag.ForkJoin(3, 10, 10)
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	s := mustSchedule(t, sched.NewBA(), g, net)
	cs := s.CommStats()
	if cs.RoutedEdges+cs.LocalEdges != g.NumEdges() {
		t.Errorf("stats do not cover all edges: %+v", cs)
	}
	if cs.RoutedEdges > 0 && cs.MeanHops < 1 {
		t.Errorf("mean hops %v < 1 with routed edges", cs.MeanHops)
	}
}

func TestOptionStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{sched.RoutingBFS.String(), "bfs"},
		{sched.RoutingDijkstra.String(), "dijkstra"},
		{sched.InsertionBasic.String(), "basic"},
		{sched.InsertionOptimal.String(), "optimal"},
		{sched.EdgeOrderFIFO.String(), "fifo"},
		{sched.EdgeOrderDescCost.String(), "desc"},
		{sched.EdgeOrderAscCost.String(), "asc"},
		{sched.ProcSelectEFT.String(), "eft"},
		{sched.ProcSelectEstimate.String(), "estimate"},
		{sched.ProcSelectNoComm.String(), "nocomm"},
		{sched.EngineSlots.String(), "slots"},
		{sched.EngineBandwidth.String(), "bandwidth"},
		{sched.EnginePackets.String(), "packets"},
		{sched.CommAtReady.String(), "ready"},
		{sched.CommAtSourceFinish.String(), "eager"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestHopDelaySchedulesVerifyAndSlowDown(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    40,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 300},
	})
	net := network.RandomCluster(r, network.RandomClusterParams{
		Processors: 8, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
	for _, preset := range []sched.Options{
		sched.NewOIHSA().Opts,
		sched.NewBBSA().Opts,
		sched.NewBA().Opts,
	} {
		prev := -1.0
		for _, hd := range []float64{0, 5, 50} {
			opts := preset
			opts.HopDelay = hd
			s := mustSchedule(t, sched.NewCustom("hd", opts), g, net)
			if s.HopDelay != hd {
				t.Fatalf("schedule lost hop delay: %v", s.HopDelay)
			}
			// Every consecutive leg must respect the delay exactly.
			for _, es := range s.Edges {
				if es == nil {
					continue
				}
				for i := 1; i < len(es.Placements); i++ {
					if es.Placements[i].Start < es.Placements[i-1].Start+hd-1e-6 {
						t.Fatalf("hop delay %v violated on edge %d", hd, es.Edge)
					}
				}
			}
			if s.Makespan < prev-1e-6 {
				// Not guaranteed in theory (placement decisions shift),
				// but a large systematic inversion signals a bug.
				if prev-s.Makespan > prev*0.2 {
					t.Fatalf("makespan dropped sharply with larger hop delay: %v -> %v", prev, s.Makespan)
				}
			}
			prev = s.Makespan
		}
	}
}

func TestStoreAndForwardVerifiesAndIsSlower(t *testing.T) {
	// Store-and-forward serializes a message across its route, so for
	// any multi-hop transfer its arrival can only be later than under
	// cut-through on the same route; on average makespans must not
	// improve.
	r := rand.New(rand.NewSource(44))
	var ctSum, sfSum float64
	for trial := 0; trial < 6; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    50,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 400},
		})
		net := network.RandomCluster(r, network.RandomClusterParams{
			Processors: 10, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
		for _, engine := range []sched.CommEngine{sched.EngineSlots, sched.EngineBandwidth} {
			ct := sched.NewOIHSA().Opts
			ct.Engine = engine
			if engine == sched.EngineBandwidth {
				ct.Insertion = sched.InsertionBasic
			}
			sf := ct
			sf.Switching = sched.StoreAndForward
			sct := mustSchedule(t, sched.NewCustom("ct", ct), g, net)
			ssf := mustSchedule(t, sched.NewCustom("sf", sf), g, net)
			if ssf.Switching != sched.StoreAndForward {
				t.Fatalf("schedule lost switching mode")
			}
			ctSum += sct.Makespan
			sfSum += ssf.Makespan
			// Check the per-edge serialization property directly.
			for _, es := range ssf.Edges {
				if es == nil {
					continue
				}
				for i := 1; i < len(es.Placements); i++ {
					if es.Placements[i].Start < es.Placements[i-1].Finish-1e-6 {
						t.Fatalf("store-and-forward edge %d overlaps legs", es.Edge)
					}
				}
			}
		}
	}
	if sfSum < ctSum*0.98 {
		t.Errorf("store-and-forward (%.0f) substantially beat cut-through (%.0f)", sfSum, ctSum)
	}
}

func TestPacketEngineVerifiesAndPipelines(t *testing.T) {
	// A single big transfer across a 3-processor line (2 hops): with
	// circuit switching the arrival is ≈ base + c/s (cut-through), but
	// with per-packet store-and-forward the arrival is
	// base + c/s + pktSize/s: packetization costs one packet per extra
	// hop. Under *store-and-forward circuit* switching the arrival
	// would be base + 2c/s, so packets beat S&F circuits on multi-hop
	// routes.
	g := dag.Chain(2, 1, 1000)
	net := network.Line(3, network.Uniform(1), network.Uniform(1))
	// Put the two tasks at the ends by scheduling with a fixed
	// assignment.
	ps := net.Processors()
	assign := []network.NodeID{ps[0], ps[2]}

	run := func(opts sched.Options) *sched.Schedule {
		s, err := sched.ScheduleAssignment(g, net, assign, opts, "t")
		if err != nil {
			t.Fatal(err)
		}
		if res := verify.Verify(s); !res.OK() {
			t.Fatalf("invalid: %v", res.Err())
		}
		return s
	}
	circuit := run(sched.Options{Engine: sched.EngineSlots})
	pkts := run(sched.Options{Engine: sched.EnginePackets, PacketSize: 100})
	sf := run(sched.Options{Engine: sched.EngineSlots, Switching: sched.StoreAndForward})

	// Task 0 finishes at 1; transfers start at 1.
	wantCircuit := 1.0 + 1000 // cut-through: bottleneck link time
	wantPkts := 1.0 + 1000 + 100
	wantSF := 1.0 + 2000
	if math.Abs(circuit.Makespan-(wantCircuit+1)) > 1e-6 {
		t.Errorf("circuit makespan %v, want %v", circuit.Makespan, wantCircuit+1)
	}
	if math.Abs(pkts.Makespan-(wantPkts+1)) > 1e-6 {
		t.Errorf("packet makespan %v, want %v", pkts.Makespan, wantPkts+1)
	}
	if math.Abs(sf.Makespan-(wantSF+1)) > 1e-6 {
		t.Errorf("store-and-forward makespan %v, want %v", sf.Makespan, wantSF+1)
	}
}

func TestPacketEngineRandomInstancesVerify(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    40,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 500},
		})
		net := network.RandomCluster(r, network.RandomClusterParams{
			Processors: 8,
			ProcSpeed:  network.UniformRange(r, 1, 10),
			LinkSpeed:  network.UniformRange(r, 1, 10),
		})
		for _, cfg := range []struct {
			size, ovh float64
		}{{50, 0}, {200, 0}, {100, 3}} {
			opts := sched.NewOIHSA().Opts
			opts.Engine = sched.EnginePackets
			opts.Insertion = sched.InsertionBasic
			opts.PacketSize = cfg.size
			opts.PacketOverhead = cfg.ovh
			mustSchedule(t, sched.NewCustom("pkt", opts), g, net)
		}
	}
}

func TestPacketOverheadHurts(t *testing.T) {
	// More overhead can only lengthen transfers on average.
	r := rand.New(rand.NewSource(78))
	var free, costly float64
	for trial := 0; trial < 5; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    40,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 500},
		})
		net := network.Star(6, network.Uniform(1), network.Uniform(1))
		for _, ovh := range []float64{0, 10} {
			opts := sched.NewBA().Opts
			opts.Engine = sched.EnginePackets
			opts.PacketSize = 50
			opts.PacketOverhead = ovh
			s := mustSchedule(t, sched.NewCustom("pkt", opts), g, net)
			if ovh == 0 {
				free += s.Makespan
			} else {
				costly += s.Makespan
			}
		}
	}
	if costly < free-1e-6 {
		t.Errorf("overhead reduced mean makespan: %v vs %v", costly, free)
	}
}

func TestSwitchingString(t *testing.T) {
	if sched.CutThrough.String() != "cut-through" || sched.StoreAndForward.String() != "store-and-forward" {
		t.Fatal("switching strings")
	}
	if sched.TaskAppend.String() != "append" || sched.TaskInsertion.String() != "insertion" {
		t.Fatal("task policy strings")
	}
}

func TestDuplicationAvoidsExpensiveTransfer(t *testing.T) {
	// A cheap source feeding two consumers with huge edges: with
	// duplication, each consumer's processor re-runs the source and no
	// data crosses the network.
	g := dag.New()
	src := g.AddTask("src", 2)
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.AddEdge(src, a, 500)
	g.AddEdge(src, b, 500)
	net := network.Star(3, network.Uniform(1), network.Uniform(1))

	plain := sched.NewOIHSA().Opts
	dup := plain
	dup.Duplication = true
	sp := mustSchedule(t, sched.NewCustom("plain", plain), g, net)
	sd := mustSchedule(t, sched.NewCustom("dup", dup), g, net)
	if sd.Makespan >= sp.Makespan {
		t.Fatalf("duplication did not help: %v vs %v", sd.Makespan, sp.Makespan)
	}
	if len(sd.Duplicates) == 0 {
		t.Fatal("no duplicates recorded")
	}
	// With full duplication the makespan is just src + consumer work
	// wherever they are colocated.
	if sd.Makespan > 14+1e-9 {
		t.Fatalf("duplication makespan %v, expected ≤ 14", sd.Makespan)
	}
}

func TestDuplicationVerifiesOnRandomInstances(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 6; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    50,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 500},
		})
		net := network.RandomCluster(r, network.RandomClusterParams{
			Processors: 8,
			ProcSpeed:  network.UniformRange(r, 1, 10),
			LinkSpeed:  network.UniformRange(r, 1, 10),
		})
		for _, preset := range []sched.Options{sched.NewBA().Opts, sched.NewOIHSA().Opts, sched.NewBBSA().Opts} {
			opts := preset
			opts.Duplication = true
			mustSchedule(t, sched.NewCustom("dup", opts), g, net)
		}
	}
}

func TestDuplicationWithEFTRollsBack(t *testing.T) {
	// EFT probes every processor tentatively; duplicates placed during
	// rejected probes must vanish.
	g := dag.New()
	src := g.AddTask("src", 2)
	a := g.AddTask("a", 10)
	g.AddEdge(src, a, 500)
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	opts := sched.NewBASinnen().Opts
	opts.Duplication = true
	s := mustSchedule(t, sched.NewCustom("dup-eft", opts), g, net)
	// At most one committed duplicate (for a's processor) may remain.
	if len(s.Duplicates) > 1 {
		t.Fatalf("stale duplicates from rolled-back probes: %+v", s.Duplicates)
	}
}

func TestDuplicationRequiresAppendPolicy(t *testing.T) {
	opts := sched.NewOIHSA().Opts
	opts.Duplication = true
	opts.TaskPolicy = sched.TaskInsertion
	g := dag.Chain(2, 1, 1)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	if _, err := sched.NewCustom("bad", opts).Schedule(g, net); err == nil {
		t.Fatal("duplication+insertion accepted")
	}
}

func TestTaskInsertionVerifiesAndHelps(t *testing.T) {
	// Insertion-based placement must produce valid schedules and, on
	// average, not hurt (it strictly widens the choice per task, though
	// greedy interactions can occasionally backfire).
	r := rand.New(rand.NewSource(55))
	var appSum, insSum float64
	for trial := 0; trial < 8; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    60,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
		})
		net := network.RandomCluster(r, network.RandomClusterParams{
			Processors: 8, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
		app := sched.NewOIHSA().Opts
		ins := app
		ins.TaskPolicy = sched.TaskInsertion
		appSum += mustSchedule(t, sched.NewCustom("app", app), g, net).Makespan
		insSum += mustSchedule(t, sched.NewCustom("ins", ins), g, net).Makespan
	}
	if insSum > appSum*1.05 {
		t.Errorf("insertion policy (%.0f) notably worse than append (%.0f)", insSum, appSum)
	}
}

func TestTaskInsertionFillsGap(t *testing.T) {
	// One processor, a chain creating a gap, then an independent task
	// that fits in the gap: insertion must use it, append must not.
	g := dag.New()
	a := g.AddTask("a", 10) // [0,10]
	b := g.AddTask("b", 10) // needs a's data via the network → gap on P0
	gap := g.AddTask("gap", 5)
	_ = gap
	g.AddEdge(a, b, 30)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	// Force with a custom scheduler that places everything on P0 except
	// b on P1... simpler: single-processor machine has no gaps, so use
	// the EFT policy on the 2-proc line and check validity of both.
	for _, tp := range []sched.TaskPolicy{sched.TaskAppend, sched.TaskInsertion} {
		opts := sched.NewBASinnen().Opts
		opts.TaskPolicy = tp
		mustSchedule(t, sched.NewCustom("tp", opts), g, net)
	}
}

func TestCustomAblationCombos(t *testing.T) {
	// Every knob combination must produce verifiable schedules.
	r := rand.New(rand.NewSource(17))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    30,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 300},
	})
	net := network.RandomCluster(r, network.RandomClusterParams{
		Processors: 6, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
	for _, routing := range []sched.Routing{sched.RoutingBFS, sched.RoutingDijkstra} {
		for _, ins := range []sched.Insertion{sched.InsertionBasic, sched.InsertionOptimal} {
			for _, eo := range []sched.EdgeOrder{sched.EdgeOrderFIFO, sched.EdgeOrderDescCost, sched.EdgeOrderAscCost} {
				for _, ps := range []sched.ProcSelect{sched.ProcSelectEFT, sched.ProcSelectEstimate, sched.ProcSelectNoComm} {
					for _, en := range []sched.CommEngine{sched.EngineSlots, sched.EngineBandwidth, sched.EnginePackets} {
						for _, cs := range []sched.CommStart{sched.CommAtReady, sched.CommAtSourceFinish} {
							a := sched.NewCustom("combo", sched.Options{
								Routing: routing, Insertion: ins, EdgeOrder: eo,
								ProcSelect: ps, Engine: en, CommStart: cs,
							})
							mustSchedule(t, a, g, net)
						}
					}
				}
			}
		}
	}
}

func TestEFTSelectsContentionAwareBest(t *testing.T) {
	// Two big edges from one source: EFT should discover that fanning
	// both children out saturates the source's uplink and colocate at
	// least one child with the source.
	g := dag.New()
	src := g.AddTask("src", 1)
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.AddEdge(src, a, 1000)
	g.AddEdge(src, b, 1000)
	net := network.Star(3, network.Uniform(1), network.Uniform(1))
	s := mustSchedule(t, sched.NewBASinnen(), g, net)
	onSrc := 0
	for _, tid := range []dag.TaskID{a, b} {
		if s.Tasks[tid].Proc == s.Tasks[src].Proc {
			onSrc++
		}
	}
	if onSrc == 0 {
		t.Fatalf("EFT fanned out both children despite 1000-cost edges (makespan %v)", s.Makespan)
	}
}

func TestZeroCostEdgesAndTasks(t *testing.T) {
	// Zero-cost tasks and edges must not break any engine.
	g := dag.New()
	a := g.AddTask("a", 0)
	b := g.AddTask("b", 0)
	c := g.AddTask("c", 5)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	for _, alg := range []sched.Algorithm{sched.NewBA(), sched.NewOIHSA(), sched.NewBBSA()} {
		s := mustSchedule(t, alg, g, net)
		if s.Makespan != 5 {
			t.Errorf("%s: makespan %v, want 5", alg.Name(), s.Makespan)
		}
	}
}
