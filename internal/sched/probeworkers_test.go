package sched_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
)

// TestScheduleBitIdenticalAcrossProbeWorkers runs the EFT scheduler at
// several ProbeWorkers settings over seeded random instances and
// requires byte-identical schedules: parallel probing is a pure
// throughput knob, never a result knob.
func TestScheduleBitIdenticalAcrossProbeWorkers(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    40,
			TaskCost: dag.CostDist{Lo: 1, Hi: 50},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
		})
		net := network.RandomCluster(r, network.RandomClusterParams{Processors: 8})

		schedule := func(workers int) *sched.Schedule {
			a := sched.NewBASinnen()
			a.Opts.ProbeWorkers = workers
			return mustSchedule(t, a, g, net)
		}
		base := schedule(1)
		for _, workers := range []int{2, 8} {
			got := schedule(workers)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("seed %d: schedule at ProbeWorkers=%d differs from sequential", seed, workers)
			}
		}
	}
}
