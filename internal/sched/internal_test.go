package sched

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/linksched"
	"repro/internal/network"
)

// mkState builds a fresh state for white-box tests.
func mkState(t *testing.T, g *dag.Graph, net *network.Topology, opts Options) *state {
	t.Helper()
	s, err := newState(g, net, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// edgeView materializes the columnar store's record of one edge (nil if
// unscheduled) for white-box assertions against the public shape.
func (s *state) edgeView(id dag.EdgeID) *EdgeSchedule {
	return s.edges.materialize()[id]
}

func TestReadyTime(t *testing.T) {
	g := dag.New()
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 20)
	c := g.AddTask("c", 1)
	g.AddEdge(a, c, 5)
	g.AddEdge(b, c, 5)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{})
	p := net.Processors()
	if _, err := s.placeTask(a, p[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.placeTask(b, p[1]); err != nil {
		t.Fatal(err)
	}
	// a finishes at 10, b at 20 → c ready at 20.
	if got := s.readyTime(c); got != 20 {
		t.Fatalf("readyTime=%v, want 20", got)
	}
	if got := s.readyTime(a); got != 0 {
		t.Fatalf("source readyTime=%v, want 0", got)
	}
}

func TestCommAtReadyDelaysEarlyPredecessor(t *testing.T) {
	// a (fast) and b (slow) feed c. Under CommAtReady, a's data may not
	// enter the network before b finishes.
	g := dag.New()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 50)
	c := g.AddTask("c", 1)
	ea := g.AddEdge(a, c, 10)
	g.AddEdge(b, c, 10)
	net := network.Line(3, network.Uniform(1), network.Uniform(1))
	p := net.Processors()

	run := func(cs CommStart) *state {
		s := mkState(t, g, net, Options{CommStart: cs})
		if _, err := s.placeTask(a, p[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.placeTask(b, p[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.placeTask(c, p[2]); err != nil {
			t.Fatal(err)
		}
		return s
	}

	ready := run(CommAtReady)
	if es := ready.edgeView(ea); es == nil || es.Placements[0].Start < 50 {
		t.Fatalf("at-ready: edge a->c entered the network at %v, want ≥ 50 (b's finish)",
			es.Placements[0].Start)
	}
	eager := run(CommAtSourceFinish)
	if es := eager.edgeView(ea); es == nil || es.Placements[0].Start >= 50 {
		t.Fatalf("eager: edge a->c entered the network at %v, want < 50",
			es.Placements[0].Start)
	}
}

func TestTxnRollbackRestoresEverything(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    20,
		TaskCost: dag.CostDist{Lo: 1, Hi: 50},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
	})
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{Insertion: InsertionOptimal, ProcSelect: ProcSelectEFT})
	order, err := g.PriorityOrder()
	if err != nil {
		t.Fatal(err)
	}
	// Commit the first half of the tasks.
	half := len(order) / 2
	for _, tid := range order[:half] {
		proc, err := s.selectProcessor(tid)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.placeTask(tid, proc); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot observable state.
	type snap struct {
		tasks      []TaskPlacement
		procFinish []float64
		slotCounts []int
		placements map[dag.EdgeID][]EdgePlacement
	}
	capture := func() snap {
		sn := snap{
			tasks:      append([]TaskPlacement(nil), s.tasks...),
			procFinish: append([]float64(nil), s.procFinish...),
			placements: map[dag.EdgeID][]EdgePlacement{},
		}
		for _, tl := range s.tl {
			sn.slotCounts = append(sn.slotCounts, tl.Len())
		}
		for i, es := range s.edges.materialize() {
			if es != nil {
				sn.placements[dag.EdgeID(i)] = append([]EdgePlacement(nil), es.Placements...)
			}
		}
		return sn
	}
	before := capture()
	// Tentatively place the next task on every processor and roll back.
	next := order[half]
	for _, p := range net.Processors() {
		s.begin()
		if _, err := s.placeTask(next, p); err != nil {
			t.Fatal(err)
		}
		s.rollback()
	}
	after := capture()
	for i := range before.tasks {
		if before.tasks[i] != after.tasks[i] {
			t.Fatalf("task %d placement changed by rollback: %+v -> %+v", i, before.tasks[i], after.tasks[i])
		}
	}
	for i := range before.procFinish {
		if before.procFinish[i] != after.procFinish[i] {
			t.Fatalf("proc %d clock changed by rollback", i)
		}
	}
	for i := range before.slotCounts {
		if before.slotCounts[i] != after.slotCounts[i] {
			t.Fatalf("link %d slot count changed by rollback", i)
		}
	}
	for id, pls := range before.placements {
		got := after.placements[id]
		if len(got) != len(pls) {
			t.Fatalf("edge %d placements changed by rollback", id)
		}
		for i := range pls {
			if pls[i].Link != got[i].Link || pls[i].Start != got[i].Start || pls[i].Finish != got[i].Finish {
				t.Fatalf("edge %d leg %d changed by rollback: %+v -> %+v", id, i, pls[i], got[i])
			}
		}
	}
}

func TestTxnRollbackRestoresBandwidth(t *testing.T) {
	g := dag.Diamond(10, 50)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{Engine: EngineBandwidth, ProcSelect: ProcSelectEFT})
	order, err := g.PriorityOrder()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.placeTask(order[0], net.Processors()[0]); err != nil {
		t.Fatal(err)
	}
	segs := make([]int, len(s.bw))
	for i, bw := range s.bw {
		segs[i] = bw.NumSegments()
	}
	s.begin()
	if _, err := s.placeTask(order[1], net.Processors()[1]); err != nil {
		t.Fatal(err)
	}
	s.rollback()
	for i, bw := range s.bw {
		if bw.NumSegments() != segs[i] {
			t.Fatalf("bw timeline %d changed by rollback", i)
		}
	}
}

// TestCowEdgeLegsJournalsUntouchedEdge reproduces the span-level
// silent-rollback hole: mutating a committed edge's leg records in
// place would corrupt arena entries below the rollback watermark,
// which truncation cannot restore. cowEdgeLegs must journal the
// pre-copy meta on the spot and re-point the span at a
// transaction-private copy above the watermark.
func TestCowEdgeLegsJournalsUntouchedEdge(t *testing.T) {
	g := dag.Chain(2, 1, 100)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{})
	p := net.Processors()
	if _, err := s.placeTask(0, p[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.placeTask(1, p[1]); err != nil {
		t.Fatal(err)
	}
	m := s.edges.meta[0]
	if !m.scheduled || m.legs.n == 0 {
		t.Fatalf("chain edge has no schedule: %+v", m)
	}
	want := s.edges.legs[m.legs.off]
	nLegs := len(s.edges.legs)

	// Probe-style transaction that shifts the edge without any prior
	// touchEdge — exactly what a buggy placement path would do.
	s.begin()
	s.cowEdgeLegs(0)
	if !s.tx.edgeOld.has(0) {
		t.Fatal("cowEdgeLegs did not journal the pre-copy meta")
	}
	cowOff := s.edges.meta[0].legs.off
	if int(cowOff) < s.tx.marks.legs {
		t.Fatal("cowEdgeLegs left a committed edge's legs below the rollback watermark")
	}
	s.edges.legs[cowOff].start += 17
	s.edges.legs[cowOff].finish += 17
	s.rollback()

	if got := s.edges.meta[0]; got != m {
		t.Fatalf("rollback did not restore the pre-transaction meta: %+v -> %+v", m, got)
	}
	if got := s.edges.legs[m.legs.off]; got != want {
		t.Fatalf("rollback left a corrupted leg record: %+v, want %+v", got, want)
	}
	if len(s.edges.legs) != nLegs {
		t.Fatalf("rollback did not truncate the legs arena: %d entries, want %d", len(s.edges.legs), nLegs)
	}
}

// TestProbePanicSafe locks in the open-transaction fix: a panic inside
// placeTask must not leave s.tx set (which would poison the replica —
// every later probe would die with "nested transaction").
func TestProbePanicSafe(t *testing.T) {
	g := dag.Chain(2, 1, 10)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{VerifyRollback: true})
	p := net.Processors()
	if _, err := s.placeTask(0, p[0]); err != nil {
		t.Fatal(err)
	}
	before := captureSnap(s)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("probe of a nonexistent processor did not panic")
			}
		}()
		s.probe(1, network.NodeID(9999)) // edgelint:ignore errflow — the call panics before returning
	}()

	if s.tx != nil {
		t.Fatal("panicking probe left the transaction open")
	}
	if after := captureSnap(s); !snapsEqual(before, after) {
		t.Fatal("panicking probe left the state mutated")
	}
	// The replica must still be usable: a later probe and commit work.
	if _, err := s.probe(1, p[1]); err != nil {
		t.Fatalf("probe after recovered panic: %v", err)
	}
	if _, err := s.placeTask(1, p[1]); err != nil {
		t.Fatalf("placement after recovered panic: %v", err)
	}
}

// TestRollbackOracleDetectsUnjournaledWrites arms VerifyRollback and
// commits un-journaled writes inside a transaction: rollback must panic
// and name the corrupted field.
func TestRollbackOracleDetectsUnjournaledWrites(t *testing.T) {
	corrupt := map[string]func(s *state){
		"task": func(s *state) {
			s.tasks[0] = TaskPlacement{Task: 0, Proc: 0, Start: 1, Finish: 2}
		},
		"processor": func(s *state) {
			s.procFinish[0] += 5
		},
		"edge": func(s *state) {
			// In-place mutation of a committed leg record, bypassing
			// touchEdge/cowEdgeLegs — the span-level silent-rollback hole.
			s.edges.legs[s.edges.meta[0].legs.off].start += 3
		},
		"link": func(s *state) {
			s.tl[0].InsertBasic(linksched.Owner{Edge: 99, Leg: 0}, linksched.Request{ES: 500, PF: 500, Dur: 1})
		},
	}
	for name, mutate := range corrupt {
		t.Run(name, func(t *testing.T) {
			g := dag.Chain(2, 1, 100)
			net := network.Line(2, network.Uniform(1), network.Uniform(1))
			s := mkState(t, g, net, Options{VerifyRollback: true})
			p := net.Processors()
			if _, err := s.placeTask(0, p[0]); err != nil {
				t.Fatal(err)
			}
			if _, err := s.placeTask(1, p[1]); err != nil {
				t.Fatal(err)
			}
			s.begin()
			mutate(s)
			defer func() {
				if r := recover(); r == nil {
					t.Fatal("rollback oracle missed an un-journaled write")
				}
			}()
			s.rollback()
		})
	}
}

// TestBeginReusesJournalMaps pins the allocation fix: the six
// slice-backed journals are owned by the state and reused across
// transactions. (The name predates the switch from maps to epoch-
// marked slices; the invariant is the same.)
func TestBeginReusesJournalMaps(t *testing.T) {
	g := dag.Chain(2, 1, 10)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{})
	p := net.Processors()
	if _, err := s.placeTask(0, p[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.probe(1, p[1]); err != nil {
		t.Fatal(err)
	}
	first := s.txFree
	if first == nil {
		t.Fatal("no reusable journal after the first probe")
	}
	if n := first.taskOld.size() + first.procOld.size() + first.edgeOld.size() +
		first.tlSnaps.size() + first.bwSnaps.size() + first.ptlSnaps.size(); n != 0 {
		t.Fatalf("rollback left %d journal entries behind", n)
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.begin()
		s.rollback()
	})
	if allocs != 0 {
		t.Fatalf("empty transaction allocates %v times, want 0", allocs)
	}
	if s.txFree != first {
		t.Fatal("journal not reused across transactions")
	}
}

// TestProbeJournalingIsAllocationFree extends the journal-reuse pin
// from empty transactions to ones that journal real state: after one
// warm-up round has sized the journal value slots, a transaction that
// touches every timeline, a task and a processor clock — then rolls
// back — must not allocate. This pins the SnapshotInto buffer
// recycling: before it, every touchTimeline allocated a fresh snapshot
// slot copy, the dominant allocation of the EFT probe loop.
func TestProbeJournalingIsAllocationFree(t *testing.T) {
	g := dag.Chain(4, 1, 10)
	net := network.Line(3, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{})
	p := net.Processors()
	if _, err := s.placeTask(0, p[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.placeTask(1, p[1]); err != nil {
		t.Fatal(err)
	}
	journalAll := func() {
		s.begin()
		for i := range s.tl {
			s.touchTimeline(network.LinkID(i))
		}
		s.touchTask(1)
		s.touchProc(p[1])
		s.rollback()
	}
	journalAll() // warm up: allocate journal arrays and snapshot buffers
	if allocs := testing.AllocsPerRun(50, journalAll); allocs != 0 {
		t.Fatalf("journaling allocates %v times per transaction, want 0", allocs)
	}
}

// TestCallbackClosuresAreCached pins the relaxFunc/slackFunc caching:
// the engine closures are built once per state and parameterized
// through s.relaxEdgeCost, so the route-search hot path hands out
// callbacks without allocating a fresh capture per edge. A fork must
// rebuild its own closures (Clone omits them): a copied closure would
// capture — and keep mutating — the original state.
func TestCallbackClosuresAreCached(t *testing.T) {
	g := dag.Chain(3, 1, 100)
	net := network.Line(3, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{})
	e := g.Edge(0)
	s.relaxFunc(e) // warm up: build and cache the closures
	s.slackFunc()
	if allocs := testing.AllocsPerRun(50, func() {
		s.relaxFunc(e)
		s.slackFunc()
	}); allocs != 0 {
		t.Fatalf("cached callbacks allocate %v times per probe, want 0", allocs)
	}
	// The closure must read the per-call edge cost through the state,
	// not a stale capture.
	e2 := g.Edge(1)
	s.relaxFunc(e2)
	if s.relaxEdgeCost != e2.Cost {
		t.Fatalf("relaxEdgeCost %v, want %v", s.relaxEdgeCost, e2.Cost)
	}
	f := s.Clone()
	if f.relaxFn != nil || f.slackFn != nil {
		t.Fatal("clone inherited the parent's cached closures")
	}
}

// TestVerifyRollbackEverySamples pins the sampled oracle's cadence:
// with VerifyRollbackEvery=3, transactions 0, 3, 6, ... capture a
// fingerprint and the others must not.
func TestVerifyRollbackEverySamples(t *testing.T) {
	g := dag.Chain(2, 1, 10)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{VerifyRollbackEvery: 3})
	for i := 0; i < 9; i++ {
		s.begin()
		got := s.tx.fp != nil
		want := i%3 == 0
		if got != want {
			t.Fatalf("transaction %d: fingerprint captured = %v, want %v", i, got, want)
		}
		s.rollback()
	}
}

// TestVerifyRollbackEveryDetects arms the sampled oracle at N=1 (every
// transaction) via the sampling path and checks it still catches an
// un-journaled write — the sampled mode must lose cadence, not teeth.
func TestVerifyRollbackEveryDetects(t *testing.T) {
	g := dag.Chain(2, 1, 100)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{VerifyRollbackEvery: 1})
	p := net.Processors()
	if _, err := s.placeTask(0, p[0]); err != nil {
		t.Fatal(err)
	}
	s.begin()
	s.tl[0].InsertBasic(linksched.Owner{Edge: 7, Leg: 0}, linksched.Request{ES: 50, PF: 50, Dur: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("sampled rollback oracle missed an un-journaled write")
		}
	}()
	s.rollback()
}

func TestNestedTxnPanics(t *testing.T) {
	g := dag.Chain(2, 1, 1)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{})
	s.begin()
	defer func() {
		if recover() == nil {
			t.Fatal("nested begin did not panic")
		}
	}()
	s.begin()
}

func TestRollbackWithoutTxnIsNoop(t *testing.T) {
	g := dag.Chain(2, 1, 1)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{})
	s.rollback() // must not panic
}

func TestOrderedPreds(t *testing.T) {
	g := dag.New()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	d := g.AddTask("d", 1)
	e1 := g.AddEdge(a, d, 10)
	e2 := g.AddEdge(b, d, 30)
	e3 := g.AddEdge(c, d, 20)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))

	s := mkState(t, g, net, Options{EdgeOrder: EdgeOrderFIFO})
	if got := s.orderedPreds(d); got[0] != e1 || got[1] != e2 || got[2] != e3 {
		t.Fatalf("fifo order %v", got)
	}
	s = mkState(t, g, net, Options{EdgeOrder: EdgeOrderDescCost})
	if got := s.orderedPreds(d); got[0] != e2 || got[1] != e3 || got[2] != e1 {
		t.Fatalf("desc order %v", got)
	}
	s = mkState(t, g, net, Options{EdgeOrder: EdgeOrderAscCost})
	if got := s.orderedPreds(d); got[0] != e1 || got[1] != e3 || got[2] != e2 {
		t.Fatalf("asc order %v", got)
	}
}

func TestSlackFuncMatchesPlacements(t *testing.T) {
	g := dag.Chain(2, 1, 100)
	net := network.Line(3, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{})
	p := net.Processors()
	if _, err := s.placeTask(0, p[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.placeTask(1, p[2]); err != nil {
		t.Fatal(err)
	}
	// The chain edge crosses two links.
	es := s.edgeView(0)
	if es == nil || len(es.Placements) != 2 {
		t.Fatalf("edge schedule %+v", es)
	}
	slack := s.slackFunc()
	// Last leg always has zero slack.
	if got := slack(linksched.Owner{Edge: 0, Leg: 1}); got != 0 {
		t.Fatalf("last-leg slack %v, want 0", got)
	}
	want := es.Placements[1].Start - es.Placements[0].Start
	if v := es.Placements[1].Finish - es.Placements[0].Finish; v < want {
		want = v
	}
	if got := slack(linksched.Owner{Edge: 0, Leg: 0}); got != want {
		t.Fatalf("slack %v, want %v", got, want)
	}
	// Unknown owner → zero slack.
	if got := slack(linksched.Owner{Edge: 0, Leg: 99}); got != 0 {
		t.Fatalf("out-of-range slack %v", got)
	}
}

func TestSelectByEstimatePrefersPredecessorProcessor(t *testing.T) {
	// One predecessor with a huge edge: the §4.1 criterion must keep
	// the successor on the predecessor's processor (comm term 0 there).
	g := dag.Chain(2, 10, 1000)
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{ProcSelect: ProcSelectEstimate})
	p := net.Processors()
	if _, err := s.placeTask(0, p[2]); err != nil {
		t.Fatal(err)
	}
	if got := s.selectByEstimate(1, true); got != p[2] {
		t.Fatalf("estimate chose %v, want predecessor's processor %v", got, p[2])
	}
	// The communication-blind variant just load-balances: processor 0
	// is idle and first, so it wins.
	if got := s.selectByEstimate(1, false); got == p[2] {
		t.Fatalf("nocomm variant unexpectedly stuck to the predecessor's processor")
	}
}

func TestTaskInsertionUsesGapWhiteBox(t *testing.T) {
	g := dag.New()
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	c := g.AddTask("c", 5)
	g.AddEdge(a, b, 30)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	p := net.Processors()

	place := func(policy TaskPolicy) (bStart, cStart float64) {
		s := mkState(t, g, net, Options{TaskPolicy: policy})
		if _, err := s.placeTask(a, p[1]); err != nil { // a on P1: [0,10]
			t.Fatal(err)
		}
		if _, err := s.placeTask(b, p[0]); err != nil { // comm 30 → b on P0 at [40,50]
			t.Fatal(err)
		}
		if _, err := s.placeTask(c, p[0]); err != nil {
			t.Fatal(err)
		}
		return s.tasks[b].Start, s.tasks[c].Start
	}

	bs, cs := place(TaskAppend)
	if bs != 40 || cs != 50 {
		t.Fatalf("append: b at %v (want 40), c at %v (want 50)", bs, cs)
	}
	bs, cs = place(TaskInsertion)
	if bs != 40 || cs != 0 {
		t.Fatalf("insertion: b at %v (want 40), c at %v (want 0 — the gap)", bs, cs)
	}
}

func TestScheduleRejectsInvalidInputs(t *testing.T) {
	// Cyclic graph.
	g := dag.New()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.AddEdge(a, b, 1)
	g.AddEdge(b, a, 1)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	if _, err := NewBA().Schedule(g, net); err == nil {
		t.Fatal("cyclic graph accepted")
	}
	// Disconnected network.
	g2 := dag.Chain(2, 1, 1)
	bad := network.NewTopology()
	bad.AddProcessor("a", 1)
	bad.AddProcessor("b", 1)
	if _, err := NewBA().Schedule(g2, bad); err == nil {
		t.Fatal("disconnected network accepted")
	}
	if _, err := NewClassic().Schedule(g, net); err == nil {
		t.Fatal("classic accepted cyclic graph")
	}
	if _, err := NewClassicReplay().Schedule(g, net); err == nil {
		t.Fatal("replay accepted cyclic graph")
	}
}
