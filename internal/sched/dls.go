package sched

import (
	"math"

	"repro/internal/dag"
	"repro/internal/network"
)

// DLS is contention-aware Dynamic Level Scheduling (Sih & Lee, TPDS
// 1993, adapted to the edge-scheduling model): instead of a static
// task order, every step picks the (ready task, processor) pair with
// the maximal dynamic level
//
//	DL(n, P) = bl*(n) − max(EDA(n, P), t_f(P))
//
// where bl* is the computation-only bottom level normalized by the
// processor's speed and EDA estimates the earliest data arrival using
// the mean link speed. Edges are then scheduled under contention with
// the configured engine, like every other algorithm in this package.
type DLS struct {
	// Opts selects the edge-scheduling machinery (routing, insertion,
	// engine, ...); ProcSelect is ignored because DLS's pair selection
	// replaces it.
	Opts Options
}

// NewDLS returns a contention-aware DLS scheduler with OIHSA's edge
// machinery.
func NewDLS() *DLS {
	return &DLS{Opts: Options{
		Routing: RoutingDijkstra, Insertion: InsertionOptimal,
		EdgeOrder: EdgeOrderDescCost, Engine: EngineSlots,
	}}
}

// Name implements Algorithm.
func (d *DLS) Name() string { return "DLS" }

// Schedule implements Algorithm.
func (d *DLS) Schedule(g *dag.Graph, net *network.Topology) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	s, err := newState(g, net, d.Opts)
	if err != nil {
		return nil, err
	}
	// Static levels: computation-only bottom level (classic DLS uses
	// median execution times; with per-processor speeds we use raw
	// costs and divide by speed at selection time).
	bl, err := compBottomLevels(g)
	if err != nil {
		return nil, err
	}

	remainingPreds := make([]int, g.NumTasks())
	ready := map[dag.TaskID]bool{}
	for i := 0; i < g.NumTasks(); i++ {
		remainingPreds[i] = g.InDegree(dag.TaskID(i))
		if remainingPreds[i] == 0 {
			ready[dag.TaskID(i)] = true
		}
	}
	for scheduled := 0; scheduled < g.NumTasks(); scheduled++ {
		bestTask := dag.TaskID(-1)
		bestProc := network.NodeID(-1)
		bestDL := math.Inf(-1)
		// Deterministic iteration: ascending task IDs.
		for tid := dag.TaskID(0); int(tid) < g.NumTasks(); tid++ {
			if !ready[tid] {
				continue
			}
			for _, p := range net.Processors() {
				eda := s.procFinish[p]
				for _, eid := range g.Pred(tid) {
					e := g.Edge(eid)
					src := s.tasks[e.From]
					arr := src.Finish
					if src.Proc != p {
						arr += e.Cost / s.mls
					}
					if arr > eda {
						eda = arr
					}
				}
				dl := bl[tid]/net.Node(p).Speed - eda
				if dl > bestDL {
					bestDL = dl
					bestTask = tid
					bestProc = p
				}
			}
		}
		if _, err := s.placeTask(bestTask, bestProc); err != nil {
			return nil, err
		}
		delete(ready, bestTask)
		for _, eid := range g.Succ(bestTask) {
			to := g.Edge(eid).To
			remainingPreds[to]--
			if remainingPreds[to] == 0 {
				ready[to] = true
			}
		}
	}
	return &Schedule{
		Algorithm: d.Name(),
		Graph:     g,
		Net:       net,
		Tasks:     s.tasks,
		Edges:     s.edges.materialize(),
		Makespan:  makespan(s.tasks),
		HopDelay:  d.Opts.HopDelay,
		Switching: d.Opts.Switching,
	}, nil
}

// compBottomLevels returns computation-only bottom levels (no
// communication costs) per task.
func compBottomLevels(g *dag.Graph) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, g.NumTasks())
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		for _, eid := range g.Succ(id) {
			if v := bl[g.Edge(eid).To]; v > best {
				best = v
			}
		}
		bl[id] = g.Task(id).Cost + best
	}
	return bl, nil
}

// CPOP is contention-aware Critical-Path-On-a-Processor (Topcuoglu et
// al., TPDS 2002, adapted): tasks on the critical path (maximal
// bl + tl) are all pinned to the single processor minimizing the
// path's total execution time; every other task picks its processor
// by the §4.1-style estimate. Edge scheduling runs under contention
// with the configured engine.
type CPOP struct {
	// Opts selects the edge-scheduling machinery; ProcSelect is
	// ignored (CPOP's placement rule replaces it).
	Opts Options
}

// NewCPOP returns a contention-aware CPOP scheduler with OIHSA's edge
// machinery.
func NewCPOP() *CPOP {
	return &CPOP{Opts: Options{
		Routing: RoutingDijkstra, Insertion: InsertionOptimal,
		EdgeOrder: EdgeOrderDescCost, Engine: EngineSlots,
	}}
}

// Name implements Algorithm.
func (c *CPOP) Name() string { return "CPOP" }

// Schedule implements Algorithm.
func (c *CPOP) Schedule(g *dag.Graph, net *network.Topology) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	s, err := newState(g, net, c.Opts)
	if err != nil {
		return nil, err
	}
	bl, err := g.BottomLevels()
	if err != nil {
		return nil, err
	}
	tl, err := g.TopLevels()
	if err != nil {
		return nil, err
	}
	// Critical path: tasks with bl + tl == max over graph (within a
	// tolerance for float noise).
	cpLen := 0.0
	for i := range bl {
		if v := bl[i] + tl[i]; v > cpLen {
			cpLen = v
		}
	}
	onCP := make([]bool, g.NumTasks())
	cpWork := 0.0
	for i := range bl {
		if bl[i]+tl[i] >= cpLen-1e-9 {
			onCP[i] = true
			cpWork += g.Task(dag.TaskID(i)).Cost
		}
	}
	// The critical-path processor: fastest processor (minimizes
	// cpWork / speed; ties by ID).
	cpProc := net.Processors()[0]
	for _, p := range net.Processors() {
		if net.Node(p).Speed > net.Node(cpProc).Speed {
			cpProc = p
		}
	}
	order, err := g.PriorityOrder()
	if err != nil {
		return nil, err
	}
	for _, tid := range order {
		var proc network.NodeID
		if onCP[tid] {
			proc = cpProc
		} else {
			proc = s.selectByEstimate(tid, true)
		}
		if _, err := s.placeTask(tid, proc); err != nil {
			return nil, err
		}
	}
	return &Schedule{
		Algorithm: c.Name(),
		Graph:     g,
		Net:       net,
		Tasks:     s.tasks,
		Edges:     s.edges.materialize(),
		Makespan:  makespan(s.tasks),
		HopDelay:  c.Opts.HopDelay,
		Switching: c.Opts.Switching,
	}, nil
}
