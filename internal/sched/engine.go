package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/linksched"
	"repro/internal/network"
)

// This file implements the long-lived scheduling engine: one immutable
// topology loaded once, many Schedule(dag) calls served concurrently.
// A one-shot ListScheduler.Schedule rebuilds its world per call — a
// fresh route cache (so BFS route work is re-done every run), fresh
// timeline columns, fresh journals, a fresh router. The engine splits
// that world by mutability instead:
//
//   - shared immutable: the Topology, the Options and the warmed
//     RouteCache. The topology is frozen after construction (analyzer
//     enforced), routes are pure functions of it, and the cache is
//     concurrency-safe and sharded, so every request may read them at
//     once.
//   - pooled mutable: the per-request scheduler state (timeline
//     columns, columnar edge arenas, transaction journals, router
//     scratch, fork replicas). Drawn from a sync.Pool and fully reset
//     between requests (resetFor), so steady-state requests reuse the
//     arena capacity of their predecessors instead of reallocating it.
//   - per request: the task placements and the materialized Schedule,
//     which escape to the caller and are always freshly allocated.
//
// Determinism is unchanged: a state never crosses goroutines while in
// use, the shared cache only memoizes pure functions, and the fold
// rules of parallel probing are untouched — so every engine schedule
// is bit-identical to a cold single-threaded run. SelfCheckEvery turns
// that claim into a runtime oracle.

// ErrEngineClosed is returned by Schedule after Drain (or Close) has
// begun: the engine finishes in-flight requests but admits no new ones.
var ErrEngineClosed = errors.New("sched: engine draining")

// ErrOverloaded is returned when admission control rejects a request
// because MaxQueue requests are already waiting for a worker slot.
var ErrOverloaded = errors.New("sched: engine overloaded")

// EngineOptions configures a scheduling engine.
type EngineOptions struct {
	// Name is the display name stamped on produced schedules. Empty
	// defaults to "engine".
	Name string
	// Opts selects the scheduling policies, exactly as for NewCustom.
	// Opts.RouteCache is ignored: the engine always installs its own
	// shared cache. Opts.ProbeWorkers applies per request; under
	// concurrent load keep it at 1 (the default) and let concurrency
	// come from the requests themselves.
	Opts Options
	// MaxConcurrent bounds the requests scheduled simultaneously (the
	// worker pool). 0 uses GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds the requests allowed to wait for a worker slot
	// before Schedule fails fast with ErrOverloaded. 0 means unbounded
	// waiting (backpressure by blocking).
	MaxQueue int
	// RouteCacheSize is the shared route cache capacity. 0 auto-sizes
	// to cover every ordered processor pair, clamped to
	// [DefaultRouteCacheSize, 1<<22].
	RouteCacheSize int
	// RouteCacheShards is the cache's lock-shard count. 0 picks a
	// power of two near 4×MaxConcurrent so concurrent lookups of
	// distinct pairs rarely share a mutex.
	RouteCacheShards int
	// WarmRoutes precomputes the BFS route of every ordered processor
	// pair at construction, so even the first requests hit the cache.
	// Skipped (routes warm on demand) when the pair count exceeds the
	// cache capacity — warming would only evict itself.
	WarmRoutes bool
	// SelfCheckEvery, when N > 0, re-runs every Nth request cold — a
	// fresh single-threaded state with a private route cache — and
	// fails the request if the engine's schedule is not bit-identical.
	// The determinism oracle for serving: leave it on at a generous N
	// in production, or 1 in tests.
	SelfCheckEvery int
}

// EngineStats is a snapshot of the engine's counters.
type EngineStats struct {
	Requests  int64 // admitted requests (incl. failures)
	Failures  int64 // requests that returned an error
	Rejected  int64 // requests refused by admission control
	InFlight  int64 // requests currently holding a worker slot
	ColdState int64 // requests that built a state instead of pooling one

	SelfChecks int64 // cold re-runs performed by the determinism oracle

	CacheHits       int64   // shared route cache hits
	CacheMisses     int64   // shared route cache misses
	CacheHitRate    float64 // hits / (hits+misses), 0 before any lookup
	CacheLen        int     // cached routes
	CacheShards     int     // lock shards
	CacheContention int64   // lock acquisitions that had to wait
}

// Engine is a long-lived, concurrency-safe scheduling engine: it loads
// one immutable Topology plus one policy set and serves many
// Schedule(dag) calls in parallel against a shared warmed route cache
// and a pool of reusable scheduler states. See the file comment for
// the sharing discipline. Create with NewEngine; Drain before
// discarding if callers may still be scheduling.
type Engine struct {
	name  string
	opts  Options
	net   *network.Topology
	cache *network.RouteCache

	maxConcurrent int
	maxQueue      int
	sem           chan struct{} // worker slots
	waiting       atomic.Int64  // requests blocked on sem

	mu       sync.RWMutex // guards closed vs inflight.Add
	closed   bool
	inflight sync.WaitGroup

	pool sync.Pool // *state, all built against net+opts+cache

	selfCheckEvery int

	requests   atomic.Int64
	failures   atomic.Int64
	rejected   atomic.Int64
	active     atomic.Int64
	coldStates atomic.Int64
	selfChecks atomic.Int64
	reqSeq     atomic.Uint64
}

// NewEngine validates the topology once and builds an engine serving
// the given policies against it. The topology must not be mutated for
// the engine's lifetime (the frozen-after-construction contract all
// schedulers already rely on).
func NewEngine(net *network.Topology, eo EngineOptions) (*Engine, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if eo.Opts.Duplication && eo.Opts.TaskPolicy != TaskAppend {
		return nil, fmt.Errorf("sched: duplication requires the append task policy")
	}
	name := eo.Name
	if name == "" {
		name = "engine"
	}
	workers := eo.MaxConcurrent
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	procs := net.NumProcessors()
	pairs := procs * (procs - 1)
	size := eo.RouteCacheSize
	if size <= 0 {
		size = pairs
		if size < network.DefaultRouteCacheSize {
			size = network.DefaultRouteCacheSize
		}
		if size > 1<<22 {
			size = 1 << 22
		}
	}
	shards := eo.RouteCacheShards
	if shards <= 0 {
		shards = 4 * workers
		if shards > 256 {
			shards = 256
		}
	}
	e := &Engine{
		name:          name,
		opts:          eo.Opts,
		net:           net,
		cache:         network.NewShardedRouteCache(size, shards),
		maxConcurrent: workers,
		maxQueue:      eo.MaxQueue,
		sem:           make(chan struct{}, workers),
	}
	e.opts.RouteCache = nil // installed per state below; never trust the caller's
	if eo.SelfCheckEvery < 0 {
		return nil, fmt.Errorf("sched: negative SelfCheckEvery %d", eo.SelfCheckEvery)
	}
	e.selfCheckEvery = eo.SelfCheckEvery
	if eo.WarmRoutes && pairs <= size {
		e.warmRoutes()
	}
	return e, nil
}

// warmRoutes fills the shared cache with the BFS route of every
// ordered processor pair. Routes are pure functions of the topology,
// so warming changes nothing but first-request latency.
func (e *Engine) warmRoutes() {
	r := e.net.NewRouter(e.cache)
	procs := e.net.Processors()
	for _, src := range procs {
		for _, dst := range procs {
			if src != dst {
				// edgelint:ignore errflow — warming is best-effort; an
				// unroutable pair caches its error and requests that
				// need the pair will surface it.
				_, _ = r.BFSRoute(src, dst)
			}
		}
	}
}

// Name returns the display name stamped on produced schedules.
func (e *Engine) Name() string { return e.name }

// RouteCache returns the engine's shared route cache, for callers that
// want to share its warmth with one-shot Schedule runs (via
// Options.RouteCache) or inspect it directly.
func (e *Engine) RouteCache() *network.RouteCache { return e.cache }

// Topology returns the engine's (immutable) topology.
func (e *Engine) Topology() *network.Topology { return e.net }

// Schedule maps every task of g onto a processor and every
// inter-processor edge onto a route of links, exactly as the matching
// one-shot scheduler would, and returns the complete schedule. Safe
// for concurrent use; requests beyond MaxConcurrent wait their turn
// (or fail fast with ErrOverloaded once MaxQueue are already waiting).
// After Drain it fails with ErrEngineClosed.
func (e *Engine) Schedule(g *dag.Graph) (*Schedule, error) {
	if err := e.begin(); err != nil {
		return nil, err
	}
	defer e.inflight.Done()
	if err := e.acquire(); err != nil {
		e.rejected.Add(1)
		return nil, err
	}
	defer e.release()
	s, err := e.run(g, nil)
	return s, err
}

// ScheduleBatch schedules the graphs in order on ONE pooled state
// under ONE admission slot, amortizing admission, pool traffic and
// journal resizing across many small DAGs. Results align positionally
// with gs; the first error aborts the batch. Each schedule is
// bit-identical to its own one-shot run — batching shares warmth, not
// state: the state is fully reset between graphs.
func (e *Engine) ScheduleBatch(gs []*dag.Graph) ([]*Schedule, error) {
	if err := e.begin(); err != nil {
		return nil, err
	}
	defer e.inflight.Done()
	if err := e.acquire(); err != nil {
		e.rejected.Add(1)
		return nil, err
	}
	defer e.release()
	out := make([]*Schedule, len(gs))
	var st *state
	for i, g := range gs {
		s, err := e.run(g, &st)
		if err != nil {
			return nil, fmt.Errorf("sched: batch graph %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// begin gates admission on the drain flag and registers the request
// in-flight. The RWMutex pairs the closed check with inflight.Add so
// Drain's Wait cannot race a late Add.
func (e *Engine) begin() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.inflight.Add(1)
	return nil
}

// acquire takes a worker slot, failing fast when the waiting line
// exceeds MaxQueue.
func (e *Engine) acquire() error {
	select {
	case e.sem <- struct{}{}:
	default:
		if e.maxQueue > 0 && e.waiting.Load() >= int64(e.maxQueue) {
			return ErrOverloaded
		}
		e.waiting.Add(1)
		e.sem <- struct{}{}
		e.waiting.Add(-1)
	}
	e.active.Add(1)
	return nil
}

func (e *Engine) release() {
	e.active.Add(-1)
	<-e.sem
}

// run schedules one graph on a pooled state. With stp == nil the state
// is taken from and returned to the pool inside the call; with a
// non-nil stp the caller owns the state across calls (batching) and
// run leaves it in *stp, returning it to the pool only on error.
func (e *Engine) run(g *dag.Graph, stp **state) (*Schedule, error) {
	e.requests.Add(1)
	seq := e.reqSeq.Add(1)
	if err := g.Validate(); err != nil {
		e.failures.Add(1)
		return nil, err
	}
	var s *state
	if stp != nil && *stp != nil {
		s = *stp
		s.resetFor(g)
	} else {
		var err error
		if s, err = e.get(g); err != nil {
			e.failures.Add(1)
			return nil, err
		}
		if stp != nil {
			*stp = s
		}
	}
	out, err := scheduleOn(s, e.name)
	if err != nil {
		e.failures.Add(1)
		if stp != nil {
			*stp = nil
		}
		e.put(s)
		return nil, err
	}
	if stp == nil {
		e.put(s)
	}
	if n := e.selfCheckEvery; n > 0 && seq%uint64(n) == 0 {
		if err := e.selfCheck(g, out); err != nil {
			e.failures.Add(1)
			return nil, err
		}
	}
	return out, nil
}

// get draws a state from the pool (resetting it for g) or builds one
// cold against the engine's topology, options and shared cache.
func (e *Engine) get(g *dag.Graph) (*state, error) {
	if v := e.pool.Get(); v != nil {
		s := v.(*state)
		s.resetFor(g)
		return s, nil
	}
	e.coldStates.Add(1)
	opts := e.opts
	opts.RouteCache = e.cache
	return newState(g, e.net, opts)
}

// put returns a state to the pool. The task and duplicate columns
// escaped into the returned Schedule and the graph belongs to the
// caller, so they are dropped here; everything else — timeline slabs,
// edge arenas, journals, router scratch, closure caches — retains its
// capacity for the next request.
func (e *Engine) put(s *state) {
	if s == nil || s.tx != nil {
		return // a state stuck in a transaction is corrupt; drop it
	}
	s.g = nil
	s.tasks = nil
	s.dups = nil
	e.pool.Put(s)
}

// selfCheck re-runs the request cold — fresh state, private route
// cache, sequential probes — and fails if the engine's schedule is not
// bit-identical. This is the serving-path twin of the rollback oracle:
// it turns "pooling and sharing change nothing" into a checked
// runtime contract.
func (e *Engine) selfCheck(g *dag.Graph, got *Schedule) error {
	e.selfChecks.Add(1)
	opts := e.opts
	opts.RouteCache = nil
	opts.ProbeWorkers = 1
	s, err := newState(g, e.net, opts)
	if err != nil {
		return fmt.Errorf("sched: engine self-check setup: %w", err)
	}
	want, err := scheduleOn(s, e.name)
	if err != nil {
		return fmt.Errorf("sched: engine self-check run: %w", err)
	}
	if d := DiffSchedules(want, got); d != "" {
		return fmt.Errorf("sched: engine schedule diverged from cold run: %s", d)
	}
	return nil
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() EngineStats {
	hits, misses := e.cache.Stats()
	st := EngineStats{
		Requests:        e.requests.Load(),
		Failures:        e.failures.Load(),
		Rejected:        e.rejected.Load(),
		InFlight:        e.active.Load(),
		ColdState:       e.coldStates.Load(),
		SelfChecks:      e.selfChecks.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheHitRate:    e.cache.HitRate(),
		CacheLen:        e.cache.Len(),
		CacheShards:     e.cache.NumShards(),
		CacheContention: e.cache.Contention(),
	}
	return st
}

// Drain stops admitting new requests and blocks until every in-flight
// request has finished. Idempotent; Schedule returns ErrEngineClosed
// afterwards (and immediately on concurrent calls that lose the race).
func (e *Engine) Drain() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.inflight.Wait()
}

// resetFor reconfigures a pooled state for a new graph against the
// state's existing topology and options — the engine-pool twin of
// cloneInto. Everything request-visible is rewound to the cold-start
// value (timelines emptied with their pruning bounds, arenas
// truncated, journals resized with their epochs intact, processor
// clocks zeroed), while every backing capacity is retained. The task
// and duplicate columns are rebuilt fresh because the previous
// request's Schedule owns the old ones. The cached relaxFn/slackFn
// closures survive: they capture only s itself, whose options and
// topology do not change inside one engine.
func (s *state) resetFor(g *dag.Graph) {
	if s.tx != nil {
		panic("sched: resetFor inside a transaction")
	}
	s.g = g
	linksched.ResetTimelines(s.tl)
	linksched.ResetBWTimelines(s.bw)
	linksched.ResetTimelines(s.ptl)
	clear(s.procFinish)
	s.tasks = make([]TaskPlacement, g.NumTasks())
	for i := range s.tasks {
		s.tasks[i] = TaskPlacement{Task: dag.TaskID(i), Proc: -1}
	}
	s.dups = nil
	s.edges.init(g.NumEdges())
	s.txSeq = 0
	if s.txFree != nil {
		s.txFree.taskOld.resize(len(s.tasks))
		s.txFree.procOld.resize(len(s.procFinish))
		s.txFree.edgeOld.resize(len(s.edges.meta))
		s.txFree.tlSnaps.resize(len(s.tl))
		s.txFree.bwSnaps.resize(len(s.bw))
		s.txFree.ptlSnaps.resize(len(s.ptl))
	}
	s.stats.probes.Store(0)
	s.stats.pruned.Store(0)
	s.forks = s.forks[:0]
	s.forkErrs = s.forkErrs[:0]
}
