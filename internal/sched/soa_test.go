package sched

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/linksched"
	"repro/internal/network"
)

// TestCloneShapeMatchesParent is the nil-vs-empty regression test: the
// old Clone built some columns with append([]T(nil), ...) — nil for
// empty inputs — and others with make, so a clone's shape differed
// from its parent on degenerate topologies and the fingerprint oracle
// could not compare them field-for-field. copyColumn preserves the
// parent's shape exactly: nil stays nil, empty-non-nil stays
// empty-non-nil.
func TestCloneShapeMatchesParent(t *testing.T) {
	// One task, zero edges, no duplicates: every edge column and the
	// dups column are degenerate.
	g := dag.New()
	g.AddTask("only", 1)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{ProcSelect: ProcSelectEFT})
	c := s.Clone()

	shape := func(name string, parent, clone any) {
		t.Helper()
		pv, cv := reflect.ValueOf(parent), reflect.ValueOf(clone)
		if pv.IsNil() != cv.IsNil() {
			t.Errorf("%s shape differs: parent nil=%v, clone nil=%v", name, pv.IsNil(), cv.IsNil())
		}
		if pv.Len() != cv.Len() {
			t.Errorf("%s length differs: parent %d, clone %d", name, pv.Len(), cv.Len())
		}
	}
	shape("tasks", s.tasks, c.tasks)
	shape("procFinish", s.procFinish, c.procFinish)
	shape("dups", s.dups, c.dups)
	shape("edges.meta", s.edges.meta, c.edges.meta)
	shape("edges.routes", s.edges.routes, c.edges.routes)
	shape("edges.legs", s.edges.legs, c.edges.legs)
	shape("edges.chunks", s.edges.chunks, c.edges.chunks)
	shape("tl", s.tl, c.tl)
	shape("bw", s.bw, c.bw)
	shape("ptl", s.ptl, c.ptl)
}

// TestJournalSizeDriftPanics pins the begin-time size check: a journal
// sized for a different entity census must fail with the named panic
// instead of corrupting memory inside journal.put.
func TestJournalSizeDriftPanics(t *testing.T) {
	g := dag.Chain(3, 1, 10)
	net := network.Line(2, network.Uniform(1), network.Uniform(1))
	s := mkState(t, g, net, Options{})
	p := net.Processors()
	if _, err := s.placeTask(0, p[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.probe(1, p[1]); err != nil { // sizes the reusable journal
		t.Fatal(err)
	}
	s.tasks = s.tasks[:len(s.tasks)-1] // simulate entity-count drift
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("begin accepted a journal sized for a different entity count")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "sched: journal size drift") {
			t.Fatalf("drift panic not named: %v", msg)
		}
	}()
	s.begin()
}

// TestJournalResizeClearsStaleMarks covers the resize hazard directly:
// shrinking and re-growing a journal within its capacity re-exposes
// mark words from a previous life; if they survived, a stale stamp
// equal to the current epoch would make has() report membership that
// was never journaled this transaction.
func TestJournalResizeClearsStaleMarks(t *testing.T) {
	var j journal[int]
	j.init(4)
	j.put(3, 30)
	j.resize(2)
	j.resize(4) // re-grow within capacity, re-exposing index 3's mark
	if j.has(3) {
		t.Fatal("resize re-exposed a stale mark as current membership")
	}
	if j.size() != 0 {
		t.Fatalf("resize left %d touched IDs", j.size())
	}
	j.put(1, 10)
	if !j.has(1) || j.stale(1) != 10 {
		t.Fatal("journal unusable after resize")
	}
}

// TestJournalResetEpochWraparound drives the epoch-overflow path of
// reset directly: at epoch 2^32-1 the increment wraps, the marks must
// be cleared the slow way, and no membership from the final epoch may
// leak into the restarted one.
func TestJournalResetEpochWraparound(t *testing.T) {
	var j journal[int]
	j.init(3)
	j.epoch = ^uint32(0)
	j.put(0, 10)
	j.put(2, 30)
	if !j.has(0) || !j.has(2) {
		t.Fatal("puts at the final epoch not visible")
	}
	j.reset()
	if j.epoch != 1 {
		t.Fatalf("epoch after wraparound = %d, want 1", j.epoch)
	}
	for id := 0; id < 3; id++ {
		if j.has(id) {
			t.Fatalf("stale membership leaked through the epoch wraparound: id %d", id)
		}
	}
	if j.size() != 0 {
		t.Fatalf("reset left %d touched IDs", j.size())
	}
	j.put(1, 20)
	if !j.has(1) || j.has(0) || j.has(2) {
		t.Fatal("journal membership wrong after wraparound reset")
	}
}

// TestForkColumnIndependence is the clone-independence property test
// over the span-arena storage: after a fork, mutating EVERY column of
// the fork — placement columns, edge meta, all three arenas, timeline
// slabs — must leave the parent bit-identical under the fingerprint
// oracle's exact comparison. A single shared backing array anywhere
// fails this.
func TestForkColumnIndependence(t *testing.T) {
	for name, opts := range forkOptionSets() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			g, net := forkInstance(11)
			s := mkState(t, g, net, opts)
			order, err := g.PriorityOrder()
			if err != nil {
				t.Fatal(err)
			}
			// Commit enough tasks that every column holds real data.
			for _, tid := range order[:len(order)/2] {
				proc, err := s.selectProcessor(tid)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.placeTask(tid, proc); err != nil {
					t.Fatal(err)
				}
			}
			fp := s.captureFingerprint()
			f := s.Clone()

			for i := range f.tasks {
				f.tasks[i].Start += 1
				f.tasks[i].Finish += 2
			}
			for i := range f.procFinish {
				f.procFinish[i] += 3
			}
			for i := range f.dups {
				f.dups[i].Start += 1
			}
			for i := range f.edges.meta {
				f.edges.meta[i].arrival += 5
				f.edges.meta[i].base += 5
				f.edges.meta[i].scheduled = !f.edges.meta[i].scheduled
			}
			for i := range f.edges.routes {
				f.edges.routes[i]++
			}
			for i := range f.edges.legs {
				f.edges.legs[i].start += 7
				f.edges.legs[i].finish += 7
			}
			for i := range f.edges.chunks {
				f.edges.chunks[i].Volume += 9
				f.edges.chunks[i].Rate += 1
			}
			for i := range f.tl {
				f.tl[i].InsertBasic(linksched.Owner{Edge: 999, Leg: 0},
					linksched.Request{ES: 1e6, PF: 1e6, Dur: 1})
			}
			for i := range f.bw {
				f.bw[i].Alloc(linksched.Owner{Edge: 999, Leg: 0}, 1e6, 10, 1, 0)
			}
			for i := range f.ptl {
				f.ptl[i].InsertBasic(linksched.Owner{Edge: 998, Leg: -1},
					linksched.Request{ES: 1e6, PF: 1e6, Dur: 1})
			}

			if d := fp.diff(s); d != "" {
				t.Fatalf("mutating the fork's columns changed the parent: %s", d)
			}
		})
	}
}

// The end-to-end companions of these tests — bit-identical schedules
// across ProbeWorkers settings and across pooled-fork reuse — live in
// soa_ext_test.go (package sched_test) so they can validate every
// schedule through verify.Verify, which imports this package.
