// End-to-end tests for the long-lived scheduling engine, in the
// external test package so every schedule can run through the full
// validator (verify imports sched, so the in-package tests cannot).
//
// The contract under test is the engine's whole reason to exist:
// sharing a warmed route cache and pooling scheduler states across
// concurrent requests must change THROUGHPUT ONLY — every schedule
// stays bit-identical to a cold, sequential, single-threaded run of
// the same algorithm on the same inputs.
package sched_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/verify"
)

// enginePresets are the named algorithms the engine must serve
// faithfully, including the expensive tentative-EFT baseline.
func enginePresets() map[string]*sched.ListScheduler {
	return map[string]*sched.ListScheduler{
		"BA":     sched.NewBA(),
		"BA-EFT": sched.NewBASinnen(),
		"OIHSA":  sched.NewOIHSA(),
		"BBSA":   sched.NewBBSA(),
	}
}

// engineGraph builds the i'th distinct request DAG: sizes, shapes and
// costs vary with i so consecutive pooled requests never share a
// shape.
func engineGraph(i int) *dag.Graph {
	r := rand.New(rand.NewSource(int64(1000 + i)))
	return dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    10 + (i*7)%30,
		TaskCost: dag.CostDist{Lo: 1, Hi: 40 + i%20},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 150 + (i*13)%100},
	})
}

func engineTopology() *network.Topology {
	return network.Star(6, network.Uniform(1), network.Uniform(1))
}

// coldRun schedules g exactly as a one-shot scheduler would: fresh
// state, private route cache, sequential probes.
func coldRun(t *testing.T, name string, opts sched.Options, g *dag.Graph, net *network.Topology) *sched.Schedule {
	t.Helper()
	opts.RouteCache = nil
	opts.ProbeWorkers = 1
	s, err := sched.NewCustom(name, opts).Schedule(g, net)
	if err != nil {
		t.Fatalf("cold %s: %v", name, err)
	}
	return s
}

// mustVerify runs the full validator on a schedule.
func mustVerify(t *testing.T, s *sched.Schedule) {
	t.Helper()
	if res := verify.Verify(s); !res.OK() {
		t.Fatalf("invalid schedule: %v", res)
	}
}

// TestEngineMatchesColdRun drives every preset through a warmed engine
// — twice per graph, so the second pass runs entirely on pooled states
// — and demands bit-identical agreement with cold one-shot runs.
func TestEngineMatchesColdRun(t *testing.T) {
	for name, ls := range enginePresets() {
		name, ls := name, ls
		t.Run(name, func(t *testing.T) {
			net := engineTopology()
			eng, err := sched.NewEngine(net, sched.EngineOptions{
				Name: name, Opts: ls.Opts, WarmRoutes: true, SelfCheckEvery: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Drain()
			for pass := 0; pass < 2; pass++ {
				for i := 0; i < 6; i++ {
					g := engineGraph(i)
					got, err := eng.Schedule(g)
					if err != nil {
						t.Fatalf("pass %d graph %d: %v", pass, i, err)
					}
					mustVerify(t, got)
					want := coldRun(t, name, ls.Opts, g, net)
					if d := sched.DiffSchedules(want, got); d != "" {
						t.Fatalf("pass %d graph %d diverged from cold run: %s", pass, i, d)
					}
				}
			}
			st := eng.Stats()
			if st.Requests != 12 || st.Failures != 0 {
				t.Fatalf("stats: %+v", st)
			}
			if st.SelfChecks == 0 {
				t.Fatal("self-check oracle never ran")
			}
		})
	}
}

// TestEngineConcurrentStress is the shared-topology race pin: 32
// goroutines schedule distinct DAGs against ONE topology and ONE
// shared route cache. Under -race this proves the sharing discipline;
// the per-result checks prove concurrency changed nothing — every
// schedule verifies and is bit-identical to its cold sequential run.
func TestEngineConcurrentStress(t *testing.T) {
	const goroutines = 32
	net := engineTopology()
	opts := sched.NewBASinnen().Opts // tentative EFT: heaviest cache traffic
	eng, err := sched.NewEngine(net, sched.EngineOptions{
		Name: "BA-EFT", Opts: opts, MaxConcurrent: 8, WarmRoutes: true, SelfCheckEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Drain()

	got := make([]*sched.Schedule, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = eng.Schedule(engineGraph(i))
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		mustVerify(t, got[i])
		want := coldRun(t, "BA-EFT", opts, engineGraph(i), net)
		if d := sched.DiffSchedules(want, got[i]); d != "" {
			t.Fatalf("request %d diverged from cold run: %s", i, d)
		}
	}
	if st := eng.Stats(); st.Requests != goroutines || st.Failures != 0 || st.InFlight != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestEngineCacheHitRate pins the amortization claim: after warmup,
// steady-state requests should find well over 90% of their route
// lookups already cached — the static BFS work is paid once, not per
// request.
func TestEngineCacheHitRate(t *testing.T) {
	net := engineTopology()
	eng, err := sched.NewEngine(net, sched.EngineOptions{
		Name: "BA-EFT", Opts: sched.NewBASinnen().Opts, WarmRoutes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Drain()
	for i := 0; i < 8; i++ {
		s, err := eng.Schedule(engineGraph(i))
		if err != nil {
			t.Fatal(err)
		}
		mustVerify(t, s)
	}
	st := eng.Stats()
	if st.CacheHits == 0 {
		t.Fatal("no route cache hits recorded")
	}
	if st.CacheHitRate < 0.9 {
		t.Fatalf("warm cache hit rate %.3f, want > 0.9 (hits %d, misses %d)",
			st.CacheHitRate, st.CacheHits, st.CacheMisses)
	}
}

// TestEngineScheduleBatch pins that batching amortizes state reuse
// without coupling the DAGs: every batched schedule verifies and is
// bit-identical to its own individual engine run.
func TestEngineScheduleBatch(t *testing.T) {
	net := engineTopology()
	eng, err := sched.NewEngine(net, sched.EngineOptions{
		Name: "OIHSA", Opts: sched.NewOIHSA().Opts, WarmRoutes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Drain()
	gs := make([]*dag.Graph, 5)
	for i := range gs {
		gs[i] = engineGraph(i)
	}
	batch, err := eng.ScheduleBatch(gs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(gs) {
		t.Fatalf("%d results for %d graphs", len(batch), len(gs))
	}
	for i, s := range batch {
		mustVerify(t, s)
		single, err := eng.Schedule(gs[i])
		if err != nil {
			t.Fatal(err)
		}
		if d := sched.DiffSchedules(single, s); d != "" {
			t.Fatalf("batched graph %d diverged from individual run: %s", i, d)
		}
	}
}

// TestEngineDrain pins the lifecycle: Drain waits for in-flight work,
// then every later request fails with ErrEngineClosed.
func TestEngineDrain(t *testing.T) {
	net := engineTopology()
	eng, err := sched.NewEngine(net, sched.EngineOptions{
		Name: "BA", Opts: sched.NewBA().Opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	const inflight = 4
	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func(i int) {
			s, err := eng.Schedule(engineGraph(i))
			if err == nil {
				if res := verify.Verify(s); !res.OK() {
					err = fmt.Errorf("invalid schedule: %v", res)
				}
			}
			results <- err
		}(i)
	}
	eng.Drain()
	// Drain returned: the admitted subset has fully finished. Requests
	// that lost the admission race fail cleanly instead of hanging.
	for i := 0; i < inflight; i++ {
		if err := <-results; err != nil && !errors.Is(err, sched.ErrEngineClosed) {
			t.Fatalf("in-flight request: %v", err)
		}
	}
	if _, err := eng.Schedule(engineGraph(0)); !errors.Is(err, sched.ErrEngineClosed) {
		t.Fatalf("post-drain Schedule: %v, want ErrEngineClosed", err)
	}
	if _, err := eng.ScheduleBatch([]*dag.Graph{engineGraph(0)}); !errors.Is(err, sched.ErrEngineClosed) {
		t.Fatalf("post-drain ScheduleBatch: %v, want ErrEngineClosed", err)
	}
}

// TestEngineSharedCacheWithOneShot pins satellite interop: a one-shot
// ListScheduler handed the engine's warmed cache via Options.RouteCache
// produces the bit-identical schedule and actually hits the cache.
func TestEngineSharedCacheWithOneShot(t *testing.T) {
	net := engineTopology()
	opts := sched.NewBASinnen().Opts
	eng, err := sched.NewEngine(net, sched.EngineOptions{
		Name: "BA-EFT", Opts: opts, WarmRoutes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Drain()
	g := engineGraph(3)
	want := coldRun(t, "BA-EFT", opts, g, net)

	hits0, _ := eng.RouteCache().Stats()
	shared := opts
	shared.RouteCache = eng.RouteCache()
	got, err := sched.NewCustom("BA-EFT", shared).Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, got)
	if d := sched.DiffSchedules(want, got); d != "" {
		t.Fatalf("shared-cache run diverged from cold run: %s", d)
	}
	if hits1, _ := eng.RouteCache().Stats(); hits1 <= hits0 {
		t.Fatal("one-shot run never hit the shared warmed cache")
	}
}
