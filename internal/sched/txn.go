package sched

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/linksched"
	"repro/internal/network"
)

// txn journals every piece of scheduler state the current tentative
// placement touches, so that BA's earliest-finish-time processor probe
// can be rolled back cheaply: only the timelines, task/edge records and
// processor clocks actually modified are saved (copy-on-write), not the
// whole network. The journals are slice-backed (see journal) and their
// snapshot buffers are recycled across transactions, so a steady-state
// probe journals without allocating.
type txn struct {
	taskOld  journal[TaskPlacement]
	procOld  journal[float64]
	edgeOld  journal[edgeMeta]
	tlSnaps  journal[linksched.Snapshot]
	bwSnaps  journal[linksched.BWSnapshot]
	ptlSnaps journal[linksched.Snapshot]
	// dupsLen is the duplicates count at transaction start; rollback
	// truncates to it (duplicates are append-only).
	dupsLen int
	// marks are the edge-store arena lengths at transaction start;
	// rollback truncates the arenas to them, discarding every
	// route/leg/chunk entry the transaction appended. Committed records
	// all live below the marks, so restoring the journaled edgeMeta
	// values plus this truncation restores the store exactly.
	marks arenaMarks
	// fp is the rollback oracle's deep fingerprint of the whole state,
	// captured at begin when Options.VerifyRollback is set (or on every
	// VerifyRollbackEvery'th transaction); rollback re-fingerprints
	// after restoring and panics on any difference, naming the
	// corrupted field and ID.
	fp *fingerprint
}

// begin opens a transaction. Transactions do not nest. The journal
// arrays are owned by the state and reused across transactions, so a
// probe transaction allocates nothing in steady state.
//
// edgelint:noalloc
func (s *state) begin() {
	if s.tx != nil {
		panic("sched: nested transaction")
	}
	if s.txFree == nil {
		s.txFree = s.newTxn()
	} else {
		s.checkJournalSizes(s.txFree)
	}
	s.tx = s.txFree
	s.tx.dupsLen = len(s.dups)
	s.tx.marks = s.edges.marks()
	if s.opts.VerifyRollback ||
		(s.opts.VerifyRollbackEvery > 0 && s.txSeq%uint64(s.opts.VerifyRollbackEvery) == 0) {
		s.tx.fp = s.captureFingerprint()
	}
	s.txSeq++
}

// newTxn builds the state's reusable transaction journal, sized to the
// state's entity counts. Runs once per state (per fork): every later
// begin reuses the journal via s.txFree.
//
// edgelint:coldpath — one-time journal construction, reused via txFree
func (s *state) newTxn() *txn {
	tx := &txn{}
	tx.taskOld.init(len(s.tasks))
	tx.procOld.init(len(s.procFinish))
	tx.edgeOld.init(len(s.edges.meta))
	tx.tlSnaps.init(len(s.tl))
	tx.bwSnaps.init(len(s.bw))
	tx.ptlSnaps.init(len(s.ptl))
	return tx
}

// checkJournalSizes verifies that the reusable journals still match the
// state's entity counts: journal.put indexes mark[id] unchecked, so a
// journal sized for a different entity census would corrupt memory or
// panic opaquely deep inside a probe. Drift can only come from a bug in
// the clone/pool plumbing (cloneInto resizes the journals), so this
// fails loudly with a named panic rather than limping on.
//
// edgelint:noalloc
func (s *state) checkJournalSizes(tx *txn) {
	if len(tx.taskOld.mark) != len(s.tasks) ||
		len(tx.procOld.mark) != len(s.procFinish) ||
		len(tx.edgeOld.mark) != len(s.edges.meta) ||
		len(tx.tlSnaps.mark) != len(s.tl) ||
		len(tx.bwSnaps.mark) != len(s.bw) ||
		len(tx.ptlSnaps.mark) != len(s.ptl) {
		s.journalSizeDrift(tx)
	}
}

// journalSizeDrift formats the named size-drift panic off the hot path.
//
// edgelint:coldpath — panic formatting, unreachable unless state is corrupt
func (s *state) journalSizeDrift(tx *txn) {
	panic(fmt.Sprintf("sched: journal size drift: journals sized for "+
		"%d tasks/%d procs/%d edges/%d tl/%d bw/%d ptl, state has %d/%d/%d/%d/%d/%d",
		len(tx.taskOld.mark), len(tx.procOld.mark), len(tx.edgeOld.mark),
		len(tx.tlSnaps.mark), len(tx.bwSnaps.mark), len(tx.ptlSnaps.mark),
		len(s.tasks), len(s.procFinish), len(s.edges.meta),
		len(s.tl), len(s.bw), len(s.ptl)))
}

// rollback restores everything the transaction touched and closes it.
// The journals are walked with plain loops rather than each callbacks:
// a closure capturing s would be a fresh heap allocation on every
// rollback, and rollback runs once per EFT probe.
//
// edgelint:noalloc
func (s *state) rollback() {
	tx := s.tx
	if tx == nil {
		return
	}
	for _, id := range tx.taskOld.ids {
		s.tasks[id] = tx.taskOld.vals[id]
	}
	for _, id := range tx.procOld.ids {
		s.procFinish[id] = tx.procOld.vals[id]
	}
	for _, id := range tx.edgeOld.ids {
		s.edges.meta[id] = tx.edgeOld.vals[id]
	}
	s.edges.truncate(tx.marks)
	for _, id := range tx.tlSnaps.ids {
		s.tl[id].Restore(tx.tlSnaps.vals[id])
	}
	for _, id := range tx.bwSnaps.ids {
		s.bw[id].Restore(tx.bwSnaps.vals[id])
	}
	for _, id := range tx.ptlSnaps.ids {
		s.ptl[id].Restore(tx.ptlSnaps.vals[id])
	}
	if len(s.dups) > tx.dupsLen {
		s.dups = s.dups[:tx.dupsLen]
	}
	if tx.fp != nil {
		fp := tx.fp
		tx.fp = nil
		if d := fp.diff(s); d != "" {
			panic("sched: incomplete rollback (un-journaled write?): " + d)
		}
	}
	tx.taskOld.reset()
	tx.procOld.reset()
	tx.edgeOld.reset()
	tx.tlSnaps.reset()
	tx.bwSnaps.reset()
	tx.ptlSnaps.reset()
	s.tx = nil
}

// touchTask journals a task placement before modification.
//
// edgelint:noalloc
func (s *state) touchTask(id dag.TaskID) {
	if s.tx == nil {
		return
	}
	if !s.tx.taskOld.has(int(id)) {
		s.tx.taskOld.put(int(id), s.tasks[id])
	}
}

// touchProc journals a processor clock before modification.
//
// edgelint:noalloc
func (s *state) touchProc(id network.NodeID) {
	if s.tx == nil {
		return
	}
	if !s.tx.procOld.has(int(id)) {
		s.tx.procOld.put(int(id), s.procFinish[id])
	}
}

// touchEdge journals an edge's fixed-width meta record before
// replacement or mutation. The meta value carries the edge's spans, so
// restoring it re-points the edge at its committed arena data; arena
// entries themselves are only ever appended inside a transaction and
// are discarded wholesale by the rollback truncation.
//
// edgelint:noalloc
func (s *state) touchEdge(id dag.EdgeID) {
	if s.tx == nil {
		return
	}
	if !s.tx.edgeOld.has(int(id)) {
		s.tx.edgeOld.put(int(id), s.edges.meta[id])
	}
}

// cowEdgeLegs makes edge id's leg records safe to mutate in place:
// inside a transaction, legs that predate the transaction — they live
// below the rollback watermark, where truncation cannot discard a
// write — are copied to the arena tail first, and the meta span is
// re-pointed at the copy. The pre-copy meta is journaled on the spot:
// skipping that would let the caller mutate committed arena entries
// that rollback cannot restore (the span-level silent-rollback hole).
// Legs already above the watermark are transaction-private and mutable
// as they are.
func (s *state) cowEdgeLegs(id dag.EdgeID) {
	if s.tx == nil {
		return
	}
	s.touchEdge(id)
	m := &s.edges.meta[id]
	if m.legs.n == 0 || int(m.legs.off) >= s.tx.marks.legs {
		return // transaction-private (or empty): in-place writes roll back fine
	}
	off := int32(len(s.edges.legs))
	// edgelint:coldpath — amortized arena growth; capacity persists
	// across transactions and pooled reuse.
	s.edges.legs = append(s.edges.legs, s.edges.legs[m.legs.off:m.legs.off+m.legs.n]...)
	m.legs.off = off
}

// touchTimeline journals a slot timeline before modification. The
// snapshot reuses the buffers left in the journal's value slot by an
// earlier transaction, so steady-state journaling is allocation-free.
//
// edgelint:noalloc
func (s *state) touchTimeline(id network.LinkID) {
	if s.tx == nil {
		return
	}
	if !s.tx.tlSnaps.has(int(id)) {
		s.tx.tlSnaps.put(int(id), s.tl[id].SnapshotInto(s.tx.tlSnaps.stale(int(id))))
	}
}

// touchDup is a no-op marker: duplicates are append-only and rolled
// back by truncation to the length recorded at begin.
//
// edgelint:noalloc
func (s *state) touchDup() {}

// touchProcTimeline journals a processor timeline (task insertion
// policy) before modification.
//
// edgelint:noalloc
func (s *state) touchProcTimeline(id network.NodeID) {
	if s.tx == nil {
		return
	}
	if !s.tx.ptlSnaps.has(int(id)) {
		s.tx.ptlSnaps.put(int(id), s.ptl[id].SnapshotInto(s.tx.ptlSnaps.stale(int(id))))
	}
}

// touchBWTimeline journals a bandwidth timeline before modification.
// The snapshot carries the chunked slabs and their block summaries
// wholesale (buffer-reused via the stale snapshot), so a rollback
// restores the availability index without any reindexing.
//
// edgelint:noalloc
func (s *state) touchBWTimeline(id network.LinkID) {
	if s.tx == nil {
		return
	}
	if !s.tx.bwSnaps.has(int(id)) {
		s.tx.bwSnaps.put(int(id), s.bw[id].SnapshotInto(s.tx.bwSnaps.stale(int(id))))
	}
}
