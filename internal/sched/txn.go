package sched

import (
	"repro/internal/dag"
	"repro/internal/linksched"
	"repro/internal/network"
)

// txn journals every piece of scheduler state the current tentative
// placement touches, so that BA's earliest-finish-time processor probe
// can be rolled back cheaply: only the timelines, task/edge records and
// processor clocks actually modified are saved (copy-on-write), not the
// whole network.
type txn struct {
	taskOld  map[dag.TaskID]TaskPlacement
	procOld  map[network.NodeID]float64
	edgeOld  map[dag.EdgeID]*EdgeSchedule
	tlSnaps  map[network.LinkID]linksched.Snapshot
	bwSnaps  map[network.LinkID]linksched.BWSnapshot
	ptlSnaps map[network.NodeID]linksched.Snapshot
	// dupsLen is the duplicates count at transaction start; rollback
	// truncates to it (duplicates are append-only).
	dupsLen int
	// fp is the rollback oracle's deep fingerprint of the whole state,
	// captured at begin when Options.VerifyRollback is set; rollback
	// re-fingerprints after restoring and panics on any difference,
	// naming the corrupted field and ID.
	fp *fingerprint
}

// begin opens a transaction. Transactions do not nest. The journal maps
// are owned by the state and reused across transactions (cleared by
// rollback), so a probe transaction allocates nothing in steady state.
func (s *state) begin() {
	if s.tx != nil {
		panic("sched: nested transaction")
	}
	if s.txFree == nil {
		s.txFree = &txn{
			taskOld:  map[dag.TaskID]TaskPlacement{},
			procOld:  map[network.NodeID]float64{},
			edgeOld:  map[dag.EdgeID]*EdgeSchedule{},
			tlSnaps:  map[network.LinkID]linksched.Snapshot{},
			bwSnaps:  map[network.LinkID]linksched.BWSnapshot{},
			ptlSnaps: map[network.NodeID]linksched.Snapshot{},
		}
	}
	s.tx = s.txFree
	s.tx.dupsLen = len(s.dups)
	if s.opts.VerifyRollback {
		s.tx.fp = s.captureFingerprint()
	}
}

// rollback restores everything the transaction touched and closes it.
func (s *state) rollback() {
	tx := s.tx
	if tx == nil {
		return
	}
	for id, old := range tx.taskOld {
		s.tasks[id] = old
	}
	for id, old := range tx.procOld {
		s.procFinish[id] = old
	}
	for id, old := range tx.edgeOld {
		s.edges[id] = old
	}
	for id, snap := range tx.tlSnaps {
		s.tl[id].Restore(snap)
	}
	for id, snap := range tx.bwSnaps {
		s.bw[id].Restore(snap)
	}
	for id, snap := range tx.ptlSnaps {
		s.ptl[id].Restore(snap)
	}
	if len(s.dups) > tx.dupsLen {
		s.dups = s.dups[:tx.dupsLen]
	}
	if tx.fp != nil {
		fp := tx.fp
		tx.fp = nil
		if d := fp.diff(s); d != "" {
			panic("sched: incomplete rollback (un-journaled write?): " + d)
		}
	}
	clear(tx.taskOld)
	clear(tx.procOld)
	clear(tx.edgeOld)
	clear(tx.tlSnaps)
	clear(tx.bwSnaps)
	clear(tx.ptlSnaps)
	s.tx = nil
}

// touchTask journals a task placement before modification.
func (s *state) touchTask(id dag.TaskID) {
	if s.tx == nil {
		return
	}
	if _, ok := s.tx.taskOld[id]; !ok {
		s.tx.taskOld[id] = s.tasks[id]
	}
}

// touchProc journals a processor clock before modification.
func (s *state) touchProc(id network.NodeID) {
	if s.tx == nil {
		return
	}
	if _, ok := s.tx.procOld[id]; !ok {
		s.tx.procOld[id] = s.procFinish[id]
	}
}

// touchEdge journals an edge schedule pointer before replacement or
// mutation.
func (s *state) touchEdge(id dag.EdgeID) {
	if s.tx == nil {
		return
	}
	if _, ok := s.tx.edgeOld[id]; !ok {
		s.tx.edgeOld[id] = s.edges[id]
	}
}

// cowEdge returns an edge schedule safe to mutate in place: inside a
// transaction, a schedule that predates the transaction is cloned
// first so the journaled pointer keeps the original values. An edge
// that was never journaled is journaled on the spot — returning the
// live pre-transaction pointer here would let the caller mutate state
// that rollback cannot restore (the silent-rollback hole).
func (s *state) cowEdge(id dag.EdgeID) *EdgeSchedule {
	cur := s.edges[id]
	if s.tx == nil || cur == nil {
		return cur
	}
	if old, ok := s.tx.edgeOld[id]; !ok {
		s.tx.edgeOld[id] = cur // journal now; clone below
	} else if old != cur {
		return cur // created or already cloned inside this transaction
	}
	cl := *cur
	cl.Placements = append([]EdgePlacement(nil), cur.Placements...)
	cl.Route = append(network.Route(nil), cur.Route...)
	s.edges[id] = &cl
	return &cl
}

// touchTimeline journals a slot timeline before modification.
func (s *state) touchTimeline(id network.LinkID) {
	if s.tx == nil {
		return
	}
	if _, ok := s.tx.tlSnaps[id]; !ok {
		s.tx.tlSnaps[id] = s.tl[id].Snapshot()
	}
}

// touchDup is a no-op marker: duplicates are append-only and rolled
// back by truncation to the length recorded at begin.
func (s *state) touchDup() {}

// touchProcTimeline journals a processor timeline (task insertion
// policy) before modification.
func (s *state) touchProcTimeline(id network.NodeID) {
	if s.tx == nil {
		return
	}
	if _, ok := s.tx.ptlSnaps[id]; !ok {
		s.tx.ptlSnaps[id] = s.ptl[id].Snapshot()
	}
}

// touchBWTimeline journals a bandwidth timeline before modification.
func (s *state) touchBWTimeline(id network.LinkID) {
	if s.tx == nil {
		return
	}
	if _, ok := s.tx.bwSnaps[id]; !ok {
		s.tx.bwSnaps[id] = s.bw[id].Snapshot()
	}
}
