package sched

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/network"
)

// Pool-hygiene tests for the engine's state reuse. These live in the
// package so they can drive resetFor directly and point the rollback
// oracle's fingerprint machinery at the pooled state: the contract is
// that a state which served request N and was reset for request N+1 is
// indistinguishable — bit for bit, arenas, journals, timelines — from
// a state built cold for request N+1.

// hygieneOptions are the policy sets whose states exercise every
// column family: slot timelines with insertion + duplication, and
// bandwidth timelines with chunk arenas.
func hygieneOptions() map[string]Options {
	return map[string]Options{
		"slots-full": {ProcSelect: ProcSelectEFT, Insertion: InsertionOptimal,
			EdgeOrder: EdgeOrderDescCost, Duplication: true},
		"insertion": {ProcSelect: ProcSelectEFT, TaskPolicy: TaskInsertion},
		"bandwidth": {ProcSelect: ProcSelectEFT, Engine: EngineBandwidth},
	}
}

func hygieneGraph(seed int64, tasks int) *dag.Graph {
	r := rand.New(rand.NewSource(seed))
	return dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    tasks,
		TaskCost: dag.CostDist{Lo: 1, Hi: 50},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
	})
}

// TestResetForNoResidue is the fingerprint oracle for pooled reuse: a
// state that scheduled a LARGE graph — populating arenas, journals and
// timelines — then was reset for a small, differently shaped graph
// must match a cold state for that graph exactly, and must go on to
// produce the bit-identical schedule.
//
// edgelint:ignore verifysched — in-package (verify would cycle); the
// schedules here are compared bit-for-bit against cold runs, and the
// same engine paths run under the full validator in engine_ext_test.go.
func TestResetForNoResidue(t *testing.T) {
	for name, opts := range hygieneOptions() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			net := network.Star(5, network.Uniform(1), network.Uniform(1))
			big := hygieneGraph(7, 40)
			small := hygieneGraph(8, 9)

			pooled, err := newState(big, net, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := scheduleOn(pooled, "big"); err != nil {
				t.Fatal(err)
			}
			// The engine's put/get cycle: detach the escaped columns,
			// then reset for the next request.
			pooled.g = nil
			pooled.tasks = nil
			pooled.dups = nil
			pooled.resetFor(small)

			fresh, err := newState(small, net, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Shape first: the oracle's diff indexes by the fresh
			// state's entity counts, so any size residue is named here.
			if len(pooled.tasks) != len(fresh.tasks) ||
				len(pooled.procFinish) != len(fresh.procFinish) ||
				len(pooled.edges.meta) != len(fresh.edges.meta) ||
				len(pooled.tl) != len(fresh.tl) ||
				len(pooled.bw) != len(fresh.bw) ||
				len(pooled.ptl) != len(fresh.ptl) {
				t.Fatalf("reset state shape differs from cold state")
			}
			if len(pooled.edges.routes) != 0 || len(pooled.edges.legs) != 0 ||
				len(pooled.edges.chunks) != 0 {
				t.Fatalf("arena residue after reset: %d routes, %d legs, %d chunks",
					len(pooled.edges.routes), len(pooled.edges.legs), len(pooled.edges.chunks))
			}
			if d := fresh.captureFingerprint().diff(pooled); d != "" {
				t.Fatalf("request N residue visible to request N+1: %s", d)
			}

			// The ground truth: the reused state schedules the small
			// graph bit-identically to the cold state.
			got, err := scheduleOn(pooled, "x")
			if err != nil {
				t.Fatal(err)
			}
			want, err := scheduleOn(fresh, "x")
			if err != nil {
				t.Fatal(err)
			}
			if d := DiffSchedules(want, got); d != "" {
				t.Fatalf("pooled state's schedule diverged from cold: %s", d)
			}
		})
	}
}

// TestResetForJournalSizes pins that reset resizes the reusable
// transaction journals to the new graph's census — otherwise the first
// probe of the next request would trip begin's size-drift panic (or
// worse, index out of bounds).
func TestResetForJournalSizes(t *testing.T) {
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	opts := Options{ProcSelect: ProcSelectEFT}
	s, err := newState(hygieneGraph(11, 30), net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scheduleOn(s, "x"); err != nil {
		t.Fatal(err)
	}
	if s.txFree == nil {
		t.Fatal("schedule run left no reusable journal")
	}
	s.tasks, s.dups, s.g = nil, nil, nil
	g2 := hygieneGraph(12, 50) // larger: journals must grow
	s.resetFor(g2)
	s.checkJournalSizes(s.txFree) // panics on drift
	if _, err := scheduleOn(s, "x"); err != nil {
		t.Fatal(err)
	}
}

// TestEngineOverload pins the fail-fast admission path without racing:
// with one worker slot occupied and one request already waiting, the
// next acquire must return ErrOverloaded immediately.
func TestEngineOverload(t *testing.T) {
	net := network.Star(3, network.Uniform(1), network.Uniform(1))
	e, err := NewEngine(net, EngineOptions{Opts: Options{}, MaxConcurrent: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.sem <- struct{}{} // occupy the only worker slot
	waiterDone := make(chan error, 1)
	go func() { waiterDone <- e.acquire() }() // fills the queue
	for e.waiting.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	if err := e.acquire(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire with full queue: %v, want ErrOverloaded", err)
	}
	<-e.sem // free the slot; the waiter acquires it
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	e.release()
	if got := e.active.Load(); got != 0 {
		t.Fatalf("active count after release: %d", got)
	}
}
