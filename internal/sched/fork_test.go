package sched

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/fptime"
	"repro/internal/network"
)

// forkInstance builds a random DAG/topology pair for fork tests.
func forkInstance(seed int64) (*dag.Graph, *network.Topology) {
	r := rand.New(rand.NewSource(seed))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    25,
		TaskCost: dag.CostDist{Lo: 1, Hi: 50},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
	})
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	return g, net
}

// forkOptionSets are the engine/policy combinations Clone must cover.
func forkOptionSets() map[string]Options {
	return map[string]Options{
		"slots-basic":   {ProcSelect: ProcSelectEFT},
		"slots-optimal": {ProcSelect: ProcSelectEFT, Insertion: InsertionOptimal, EdgeOrder: EdgeOrderDescCost},
		"bandwidth":     {ProcSelect: ProcSelectEFT, Engine: EngineBandwidth},
		"packets":       {ProcSelect: ProcSelectEFT, Engine: EnginePackets, PacketSize: 40},
		"insertion":     {ProcSelect: ProcSelectEFT, TaskPolicy: TaskInsertion},
		"duplication":   {ProcSelect: ProcSelectEFT, Duplication: true},
	}
}

// captureState snapshots everything placeTask can mutate.
type stateSnap struct {
	tasks      []TaskPlacement
	dups       []TaskPlacement
	procFinish []float64
	slots      [][]float64
	bwSegs     []int
}

func captureSnap(s *state) stateSnap {
	sn := stateSnap{
		tasks:      append([]TaskPlacement(nil), s.tasks...),
		dups:       append([]TaskPlacement(nil), s.dups...),
		procFinish: append([]float64(nil), s.procFinish...),
	}
	for _, tl := range s.tl {
		var times []float64
		for _, slot := range tl.Slots() {
			times = append(times, slot.Start, slot.End)
		}
		sn.slots = append(sn.slots, times)
	}
	for _, bw := range s.bw {
		sn.bwSegs = append(sn.bwSegs, bw.NumSegments())
	}
	return sn
}

func snapsEqual(a, b stateSnap) bool {
	if len(a.tasks) != len(b.tasks) || len(a.dups) != len(b.dups) {
		return false
	}
	for i := range a.tasks {
		if a.tasks[i] != b.tasks[i] {
			return false
		}
	}
	for i := range a.dups {
		if a.dups[i] != b.dups[i] {
			return false
		}
	}
	for i := range a.procFinish {
		if a.procFinish[i] != b.procFinish[i] {
			return false
		}
	}
	for i := range a.slots {
		if len(a.slots[i]) != len(b.slots[i]) {
			return false
		}
		for j := range a.slots[i] {
			if a.slots[i][j] != b.slots[i][j] {
				return false
			}
		}
	}
	for i := range a.bwSegs {
		if a.bwSegs[i] != b.bwSegs[i] {
			return false
		}
	}
	return true
}

// TestClonePlacementEqualsTxnProbe is the Clone property test: at every
// scheduling step, placing the task on a forked copy of the state must
// yield exactly the finish time the original computes with a
// transaction probe — and must leave the original untouched.
func TestClonePlacementEqualsTxnProbe(t *testing.T) {
	for name, opts := range forkOptionSets() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				g, net := forkInstance(seed)
				s := mkState(t, g, net, opts)
				order, err := g.PriorityOrder()
				if err != nil {
					t.Fatal(err)
				}
				for _, tid := range order {
					before := captureSnap(s)
					for _, p := range net.Processors() {
						want, werr := s.probe(tid, p)
						c := s.Clone()
						got, gerr := c.placeTask(tid, p)
						if (werr == nil) != (gerr == nil) {
							t.Fatalf("seed %d task %d proc %v: clone err %v, probe err %v", seed, tid, p, gerr, werr)
						}
						if werr == nil && got != want {
							t.Fatalf("seed %d task %d proc %v: clone finish %v, probe finish %v", seed, tid, p, got, want)
						}
					}
					if after := captureSnap(s); !snapsEqual(before, after) {
						t.Fatalf("seed %d task %d: probing/cloning mutated the original state", seed, tid)
					}
					proc, err := s.selectProcessor(tid)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := s.placeTask(tid, proc); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestCloneIndependence drives a cloned state through a full schedule
// while the original sits untouched, then the reverse — the dynamic
// ground truth the clonecheck analyzer mirrors statically. Every
// engine/policy combination is covered so all timeline variants (slot,
// bandwidth, packet, processor-insertion) prove their deep copies.
func TestCloneIndependence(t *testing.T) {
	for name, opts := range forkOptionSets() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			g, net := forkInstance(7)
			s := mkState(t, g, net, opts)
			order, err := g.PriorityOrder()
			if err != nil {
				t.Fatal(err)
			}
			// Place the first half on the original so the clone starts
			// from a non-trivial state.
			half := order[:len(order)/2]
			for _, tid := range half {
				proc, err := s.selectProcessor(tid)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.placeTask(tid, proc); err != nil {
					t.Fatal(err)
				}
			}
			before := captureSnap(s)
			c := s.Clone()

			// Run the clone to completion; the original must not move.
			for _, tid := range order[len(order)/2:] {
				proc, err := c.selectProcessor(tid)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.placeTask(tid, proc); err != nil {
					t.Fatal(err)
				}
			}
			if after := captureSnap(s); !snapsEqual(before, after) {
				t.Fatalf("%s: completing a cloned schedule mutated the original state", name)
			}

			// And the reverse: mutating the original must not reach the
			// (already completed) clone.
			cb := captureSnap(c)
			for _, tid := range order[len(order)/2:] {
				proc, err := s.selectProcessor(tid)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.placeTask(tid, proc); err != nil {
					t.Fatal(err)
				}
			}
			if got := captureSnap(c); !snapsEqual(cb, got) {
				t.Fatalf("%s: completing the original schedule mutated its clone", name)
			}
		})
	}
}

func TestCloneInsideTxnPanics(t *testing.T) {
	g, net := forkInstance(1)
	s := mkState(t, g, net, Options{})
	s.begin()
	defer func() {
		if recover() == nil {
			t.Fatal("Clone inside a transaction did not panic")
		}
	}()
	s.Clone()
}

// referenceEFT is the original unpruned sequential policy: probe every
// processor, keep the earliest finish beyond the fptime tolerance.
func referenceEFT(t *testing.T, s *state, tid dag.TaskID) network.NodeID {
	t.Helper()
	best := network.NodeID(-1)
	bestFinish := math.Inf(1)
	for _, p := range s.net.Processors() {
		finish, err := s.probe(tid, p)
		if err != nil {
			t.Fatal(err)
		}
		if fptime.LessEps(finish, bestFinish) {
			bestFinish = finish
			best = p
		}
	}
	return best
}

// TestEFTPruningMatchesReference steps two identical states through a
// schedule, one with the pruned selectByEFT and one with the exhaustive
// reference, asserting the same processor choice at every step — and
// that the pruning actually fires.
func TestEFTPruningMatchesReference(t *testing.T) {
	totalPruned := int64(0)
	for seed := int64(1); seed <= 5; seed++ {
		g, net := forkInstance(seed)
		s := mkState(t, g, net, Options{ProcSelect: ProcSelectEFT})
		ref := mkState(t, g, net, Options{ProcSelect: ProcSelectEFT})
		order, err := g.PriorityOrder()
		if err != nil {
			t.Fatal(err)
		}
		for _, tid := range order {
			got, err := s.selectByEFT(tid)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceEFT(t, ref, tid)
			if got != want {
				t.Fatalf("seed %d task %d: pruned EFT chose %v, reference chose %v", seed, tid, got, want)
			}
			if _, err := s.placeTask(tid, got); err != nil {
				t.Fatal(err)
			}
			if _, err := ref.placeTask(tid, want); err != nil {
				t.Fatal(err)
			}
		}
		totalPruned += s.stats.pruned.Load()
		if probes := s.stats.probes.Load(); probes <= 0 {
			t.Fatalf("seed %d: probe counter not incremented", seed)
		}
	}
	if totalPruned == 0 {
		t.Fatal("lower-bound pruning never fired across any seed; the bound is vacuous")
	}
}

// TestParallelEFTMatchesSequentialWhiteBox steps a forked state and a
// sequential state through the same schedule and asserts identical
// selections and finish times at every step.
func TestParallelEFTMatchesSequentialWhiteBox(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g, net := forkInstance(seed)
		seq := mkState(t, g, net, Options{ProcSelect: ProcSelectEFT, ProbeWorkers: 1})
		par := mkState(t, g, net, Options{ProcSelect: ProcSelectEFT, ProbeWorkers: 8})
		par.fork(8)
		order, err := g.PriorityOrder()
		if err != nil {
			t.Fatal(err)
		}
		for _, tid := range order {
			sp, err := seq.selectByEFT(tid)
			if err != nil {
				t.Fatal(err)
			}
			pp, err := par.selectByEFT(tid)
			if err != nil {
				t.Fatal(err)
			}
			if sp != pp {
				t.Fatalf("seed %d task %d: sequential chose %v, parallel chose %v", seed, tid, sp, pp)
			}
			sf, err := seq.placeTask(tid, sp)
			if err != nil {
				t.Fatal(err)
			}
			pf, err := par.placeAndCommit(tid, pp)
			if err != nil {
				t.Fatal(err)
			}
			if sf != pf {
				t.Fatalf("seed %d task %d: finish %v sequential vs %v parallel", seed, tid, sf, pf)
			}
		}
	}
}

// TestProbeStatsAgreeAcrossTopologySizes pins the probe accounting
// invariant: every task's selection evaluates |P| placements, as
// probes + pruned. The 1-processor early return used to skip the
// counter entirely, so reported probe counts disagreed between
// 1-processor and n-processor topologies.
func TestProbeStatsAgreeAcrossTopologySizes(t *testing.T) {
	g, _ := forkInstance(2)
	one := network.NewTopology()
	one.AddProcessor("p0", 1)
	for name, net := range map[string]*network.Topology{
		"1-proc": one,
		"4-proc": network.Star(4, network.Uniform(1), network.Uniform(1)),
	} {
		s := mkState(t, g, net, Options{ProcSelect: ProcSelectEFT})
		order, err := g.PriorityOrder()
		if err != nil {
			t.Fatal(err)
		}
		for _, tid := range order {
			proc, err := s.selectByEFT(tid)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.placeTask(tid, proc); err != nil {
				t.Fatal(err)
			}
		}
		total := s.stats.probes.Load() + s.stats.pruned.Load()
		want := int64(g.NumTasks() * len(net.Processors()))
		if total != want {
			t.Fatalf("%s: probes(%d) + pruned(%d) = %d, want tasks×|P| = %d",
				name, s.stats.probes.Load(), s.stats.pruned.Load(), total, want)
		}
		if p := s.stats.probes.Load(); p < int64(g.NumTasks()) {
			t.Fatalf("%s: probes %d < one per task (%d)", name, p, g.NumTasks())
		}
	}
}

func TestProbeErrorNamesProcessor(t *testing.T) {
	g, net := forkInstance(1)
	s := mkState(t, g, net, Options{})
	p := net.Processors()[2]
	err := s.probeError(0, p, &network.ErrNoRoute{From: 0, To: 1})
	if err == nil || !strings.Contains(err.Error(), net.Node(p).Name) {
		t.Fatalf("probe error %q does not name processor %s", err, net.Node(p).Name)
	}
}

func TestProbeWorkersResolution(t *testing.T) {
	if got := probeWorkers(Options{ProbeWorkers: 1}); got != 1 {
		t.Fatalf("ProbeWorkers 1 resolved to %d", got)
	}
	if got := probeWorkers(Options{ProbeWorkers: -3}); got != 1 {
		t.Fatalf("ProbeWorkers -3 resolved to %d, want 1", got)
	}
	if got := probeWorkers(Options{ProbeWorkers: 6}); got != 6 {
		t.Fatalf("ProbeWorkers 6 resolved to %d", got)
	}
	if got := probeWorkers(Options{}); got < 1 {
		t.Fatalf("default ProbeWorkers resolved to %d", got)
	}
}
