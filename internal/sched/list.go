package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/fptime"
	"repro/internal/linksched"
	"repro/internal/network"
)

// Routing selects the route-finding policy.
type Routing int

const (
	// RoutingBFS is minimal (fewest-links) routing via breadth-first
	// search — the Basic Algorithm's policy.
	RoutingBFS Routing = iota
	// RoutingDijkstra is the paper's modified routing (§4.3): Dijkstra
	// whose distance is the edge's finish time on each link, probed
	// against the current link workload.
	RoutingDijkstra
)

func (r Routing) String() string {
	switch r {
	case RoutingBFS:
		return "bfs"
	case RoutingDijkstra:
		return "dijkstra"
	}
	return fmt.Sprintf("Routing(%d)", int(r))
}

// Insertion selects the slot insertion policy on route links
// (exclusive-slot engine only).
type Insertion int

const (
	// InsertionBasic places each edge in the earliest idle interval
	// without touching existing slots (BA, §3).
	InsertionBasic Insertion = iota
	// InsertionOptimal may defer already-scheduled edges within their
	// causality slack to open an earlier interval (OIHSA, §4.4).
	InsertionOptimal
)

func (i Insertion) String() string {
	switch i {
	case InsertionBasic:
		return "basic"
	case InsertionOptimal:
		return "optimal"
	}
	return fmt.Sprintf("Insertion(%d)", int(i))
}

// EdgeOrder selects the order in which a ready task's incoming
// communications are scheduled.
type EdgeOrder int

const (
	// EdgeOrderFIFO schedules incoming edges in graph insertion order
	// (the Basic Algorithm does not prioritize edges).
	EdgeOrderFIFO EdgeOrder = iota
	// EdgeOrderDescCost schedules the costliest edge first (§4.2):
	// the large edge dominates the task's start time, and small edges
	// can still find earlier idle intervals afterwards.
	EdgeOrderDescCost
	// EdgeOrderAscCost schedules the cheapest edge first (ablation).
	EdgeOrderAscCost
)

func (o EdgeOrder) String() string {
	switch o {
	case EdgeOrderFIFO:
		return "fifo"
	case EdgeOrderDescCost:
		return "desc"
	case EdgeOrderAscCost:
		return "asc"
	}
	return fmt.Sprintf("EdgeOrder(%d)", int(o))
}

// ProcSelect selects the processor-choice policy for a ready task.
type ProcSelect int

const (
	// ProcSelectEFT tentatively schedules the task (and all its
	// incoming communications) on every processor and keeps the one
	// with the earliest finish time — BA's policy. It is accurate but
	// expensive: it schedules each task |P| times.
	ProcSelectEFT ProcSelect = iota
	// ProcSelectEstimate is OIHSA's closed-form criterion (§4.1):
	// minimize max(max_j(tf(n_j) + c(e_j)/MLS), tf(P)) + w(n)/s(P),
	// with MLS the mean link speed and the communication term dropped
	// for predecessors already on P.
	ProcSelectEstimate
	// ProcSelectNoComm is the Basic Algorithm's processor choice as the
	// paper characterizes it (§4.1: BA picks "the earliest finish time
	// of the task ... while ignoring the effect of edge communication"):
	// minimize max(ready(n), tf(P)) + w(n)/s(P) with no communication
	// term at all.
	ProcSelectNoComm
)

func (p ProcSelect) String() string {
	switch p {
	case ProcSelectEFT:
		return "eft"
	case ProcSelectEstimate:
		return "estimate"
	case ProcSelectNoComm:
		return "nocomm"
	}
	return fmt.Sprintf("ProcSelect(%d)", int(p))
}

// CommEngine selects the link transfer model. (Formerly named Engine;
// that name now belongs to the long-lived scheduling engine.)
type CommEngine int

const (
	// EngineSlots gives each communication exclusive use of a link for
	// a contiguous interval (BA, OIHSA).
	EngineSlots CommEngine = iota
	// EngineBandwidth lets communications share a link's bandwidth in
	// fractions, forwarding chunks downstream no faster than they
	// arrive (BBSA, §5).
	EngineBandwidth
	// EnginePackets divides every message into packets of
	// Options.PacketSize volume units; each packet occupies each route
	// link exclusively and is forwarded only after it is fully
	// received (packet store-and-forward), so packets of one message
	// pipeline across the route. The paper assumes circuit switching
	// and notes BA "does not consider the possible division of
	// communication into packets" — this engine is that extension.
	EnginePackets
)

func (e CommEngine) String() string {
	switch e {
	case EngineSlots:
		return "slots"
	case EngineBandwidth:
		return "bandwidth"
	case EnginePackets:
		return "packets"
	}
	return fmt.Sprintf("CommEngine(%d)", int(e))
}

// Switching selects the network switching technique, i.e. how a
// message propagates across the links of its route.
type Switching int

const (
	// CutThrough lets a message stream through intermediate stations:
	// its occupation of the next link may start as soon as it started
	// on the previous one (§2.2, the paper's model).
	CutThrough Switching = iota
	// StoreAndForward buffers the whole message at every intermediate
	// station: the next link's transfer starts only after the previous
	// link's transfer completed. The paper contrasts its model against
	// this technique (§2.2); it is provided as an extension so the
	// difference can be measured (ablation A8).
	StoreAndForward
)

func (s Switching) String() string {
	switch s {
	case CutThrough:
		return "cut-through"
	case StoreAndForward:
		return "store-and-forward"
	}
	return fmt.Sprintf("Switching(%d)", int(s))
}

// CommStart selects when a ready task's incoming communications may
// enter the network.
type CommStart int

const (
	// CommAtReady starts every incoming communication at the ready
	// task's ready time — the finish of its latest predecessor. This is
	// the paper's dynamic-scheduling semantics (§4.1: "the start time
	// of the communication data from predecessors to the ready task is
	// all the same, that is, the finish time of the predecessor which
	// finishes latest at runtime"): the task's target processor is only
	// decided once the task is ready, so no data can be shipped before.
	CommAtReady CommStart = iota
	// CommAtSourceFinish lets each communication enter the network as
	// soon as its own source task finishes — an eager extension beyond
	// the paper that presumes the mapping is known in advance.
	CommAtSourceFinish
)

func (c CommStart) String() string {
	switch c {
	case CommAtReady:
		return "ready"
	case CommAtSourceFinish:
		return "eager"
	}
	return fmt.Sprintf("CommStart(%d)", int(c))
}

// Priority selects the static task ordering of the list scheduler.
type Priority int

const (
	// PriorityBottomLevel orders by decreasing bottom level including
	// communication costs — the paper's scheme (§2.1).
	PriorityBottomLevel Priority = iota
	// PriorityCompBottomLevel orders by decreasing computation-only
	// bottom level (classic DLS-style static levels).
	PriorityCompBottomLevel
	// PriorityCriticality orders by decreasing bl+tl (critical-path
	// tasks first), clamped to stay topological.
	PriorityCriticality
)

func (p Priority) String() string {
	switch p {
	case PriorityBottomLevel:
		return "bl"
	case PriorityCompBottomLevel:
		return "bl-comp"
	case PriorityCriticality:
		return "bl+tl"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// TaskPolicy selects how tasks are placed on processor timelines.
type TaskPolicy int

const (
	// TaskAppend starts a task no earlier than everything already
	// scheduled on its processor: start = max(DRT, t_f(P)). This is
	// the paper's model (§2.1 uses the processor's current finish
	// time t_f(P)).
	TaskAppend TaskPolicy = iota
	// TaskInsertion allows a task into an earlier idle gap of its
	// processor, like insertion-based variants of HEFT — an extension
	// beyond the paper (ablation A9).
	TaskInsertion
)

func (p TaskPolicy) String() string {
	switch p {
	case TaskAppend:
		return "append"
	case TaskInsertion:
		return "insertion"
	}
	return fmt.Sprintf("TaskPolicy(%d)", int(p))
}

// Options configures the unified contention-aware list scheduler.
type Options struct {
	Routing    Routing
	Insertion  Insertion
	EdgeOrder  EdgeOrder
	ProcSelect ProcSelect
	Engine     CommEngine
	CommStart  CommStart
	// HopDelay is the switching delay added at every hop along a
	// route. The paper neglects it ("this delay is typically very
	// small ... but it can be included if necessary", §2.2); setting it
	// non-zero enables the extension: an edge's admissible start and
	// required finish on link k+1 are those of link k plus HopDelay.
	HopDelay float64
	// Switching selects cut-through (the paper's model, default) or
	// store-and-forward message propagation.
	Switching Switching
	// TaskPolicy selects append-only (the paper's model, default) or
	// insertion-based task placement on processors.
	TaskPolicy TaskPolicy
	// PacketSize is the volume units per packet for EnginePackets
	// (default 100 when that engine is selected).
	PacketSize float64
	// PacketOverhead models per-packet header/switching cost as extra
	// link occupation time per packet (default 0). Smaller packets
	// pipeline better but pay this overhead more often.
	PacketOverhead float64
	// Priority selects the static task ordering (default: bottom
	// levels with communication, the paper's scheme).
	Priority Priority
	// Duplication enables source-task duplication (an extension in the
	// spirit of the duplication-based algorithms the paper's intro
	// cites): when a ready task's data from a predecessor-free task
	// would arrive later than simply re-executing that task locally,
	// the predecessor is duplicated onto the destination processor and
	// the communication is dropped. Requires TaskAppend placement.
	Duplication bool
	// RouteCache, when non-nil, is consulted and warmed by this run
	// instead of a fresh per-run cache, so the static BFS route work is
	// amortized across every Schedule call sharing the cache. The cache
	// is concurrency-safe and routes are pure functions of the
	// topology, so sharing never changes a schedule — it only skips
	// recomputing routes a previous run (or a concurrent one, see
	// Engine) already found. It must have been used only with the same
	// topology the run schedules against. nil keeps the historical
	// behaviour: a private cache per run, warmed and then discarded.
	RouteCache *network.RouteCache
	// ProbeWorkers bounds the goroutines evaluating earliest-finish
	// processor candidates concurrently (ProcSelectEFT only): the
	// scheduler state is forked into that many replicas and the
	// candidate probes are partitioned among them. 0 uses GOMAXPROCS;
	// 1 keeps the probes sequential on the primary state. Schedules
	// are bit-identical at any setting — see fork.go.
	ProbeWorkers int
	// VerifyRollback arms the rollback oracle: every probe transaction
	// captures a deep fingerprint of the scheduler state at begin and
	// re-checks it after rollback, panicking with the offending
	// field/link ID on any difference. A debugging and property-test
	// aid — fingerprinting costs O(state) per probe, so leave it off
	// in production runs.
	VerifyRollback bool
	// VerifyRollbackEvery is the sampled variant of the oracle: when
	// N > 0 (and VerifyRollback is off), every Nth probe transaction is
	// fingerprinted instead of all of them. An un-journaled write on
	// any probe of a deterministic schedule run repeats on the sampled
	// ones, so sampling keeps the detection power at 1/N of the cost —
	// cheap enough for ordinary test runs, not just the dedicated
	// oracle CI job.
	VerifyRollbackEvery int
}

// priorityOrder returns the task order selected by the options.
func priorityOrder(g *dag.Graph, p Priority) ([]dag.TaskID, error) {
	switch p {
	case PriorityCompBottomLevel:
		return g.CompPriorityOrder()
	case PriorityCriticality:
		return g.CriticalityPriorityOrder()
	default:
		return g.PriorityOrder()
	}
}

// ListScheduler is the unified contention-aware list scheduler. The
// three named algorithms are fixed Options presets; see NewBA,
// NewOIHSA and NewBBSA.
type ListScheduler struct {
	AlgorithmName string
	Opts          Options
}

// NewBA returns the Basic Algorithm as Han & Wang characterize it
// (§3, §4.1): static bottom-level order, BFS minimal routing, basic
// insertion on every route link, and earliest-finish processor
// selection that ignores edge communication. This is the baseline all
// of the paper's figures compare against.
func NewBA() *ListScheduler {
	return &ListScheduler{AlgorithmName: "BA", Opts: Options{
		Routing: RoutingBFS, Insertion: InsertionBasic,
		EdgeOrder: EdgeOrderFIFO, ProcSelect: ProcSelectNoComm, Engine: EngineSlots,
	}}
}

// NewBASinnen returns the stronger reading of Sinnen & Sousa's Basic
// Algorithm in which the earliest finish time of each candidate
// processor is evaluated by tentatively scheduling the task and all of
// its incoming communications under contention. It is far more
// expensive (|P| tentative schedules per task) and serves as the
// strong-baseline ablation (A5 in DESIGN.md).
func NewBASinnen() *ListScheduler {
	return &ListScheduler{AlgorithmName: "BA-EFT", Opts: Options{
		Routing: RoutingBFS, Insertion: InsertionBasic,
		EdgeOrder: EdgeOrderFIFO, ProcSelect: ProcSelectEFT, Engine: EngineSlots,
	}}
}

// NewOIHSA returns the paper's Optimal Insertion Hybrid Scheduling
// Algorithm.
func NewOIHSA() *ListScheduler {
	return &ListScheduler{AlgorithmName: "OIHSA", Opts: Options{
		Routing: RoutingDijkstra, Insertion: InsertionOptimal,
		EdgeOrder: EdgeOrderDescCost, ProcSelect: ProcSelectEstimate, Engine: EngineSlots,
	}}
}

// NewBBSA returns the paper's Bandwidth Based Scheduling Algorithm.
// (The paper does not spell out BBSA's processor choice; we reuse
// OIHSA's §4.1 criterion — see DESIGN.md.)
func NewBBSA() *ListScheduler {
	return &ListScheduler{AlgorithmName: "BBSA", Opts: Options{
		Routing: RoutingDijkstra, EdgeOrder: EdgeOrderDescCost,
		ProcSelect: ProcSelectEstimate, Engine: EngineBandwidth,
	}}
}

// NewCustom returns a scheduler with explicit options, used by the
// ablation experiments.
func NewCustom(name string, opts Options) *ListScheduler {
	return &ListScheduler{AlgorithmName: name, Opts: opts}
}

// Name implements Algorithm.
func (l *ListScheduler) Name() string { return l.AlgorithmName }

// state carries all mutable data of one scheduling run.
type state struct {
	g    *dag.Graph        // edgelint:shared — immutable input, frozen after construction
	net  *network.Topology // edgelint:shared — immutable input, frozen after construction
	opts Options

	// The timelines are stored by value in flat columns — one Timeline
	// per link ID — so cloning a state copies backing slabs instead of
	// chasing one heap object per link. Zero values are valid empty
	// timelines, so non-processor entries of ptl need no sentinel.
	tl  []linksched.Timeline   // per link, slots engine
	bw  []linksched.BWTimeline // per link, bandwidth engine
	ptl []linksched.Timeline   // per processor node, insertion policy only
	mls float64

	procFinish []float64 // per node ID (processor entries only)
	tasks      []TaskPlacement
	edges      edgeStore // columnar edge schedules, see edgestore.go
	dups       []TaskPlacement // duplicated source tasks (Duplication)

	tx *txn // active transaction, or nil
	// txFree is the reusable transaction journal: begin takes it,
	// rollback resets it and leaves it for the next probe, so the six
	// slice-backed journals are allocated once per state, not per
	// probe, and their snapshot buffers recycle across probes.
	txFree *txn
	// txSeq counts opened transactions, driving the sampled rollback
	// oracle (Options.VerifyRollbackEvery).
	txSeq uint64

	// router performs route searches with reused scratch buffers;
	// routeCache memoizes the static BFS routes and is shared (it is
	// concurrency-safe) with every fork of this state. routerNet records
	// the topology the router was built against so a pooled replica
	// reuses its router's scratch arrays when re-cloned onto the same
	// topology and cache (see cloneInto).
	router     *network.Router
	routerNet  *network.Topology   // edgelint:shared — identity tag only, never dereferenced for mutation
	routeCache *network.RouteCache // edgelint:shared — concurrency-safe LRU, shared with forks
	stats      *probeStats         // edgelint:shared — shared across forks, atomic

	// forks are the worker replicas for parallel EFT probing (empty in
	// sequential runs); forkErrs is their per-commit error scratch.
	forks    []*state
	forkErrs []error
	eft      eftScratch

	predBuf  []dag.EdgeID      // orderedPreds scratch
	pktBuf   []float64         // placeEdgePackets scratch
	chunkBuf []linksched.Chunk // placeEdgePackets per-leg chunk scratch

	// relaxFn and slackFn are the cached Dijkstra relaxation and
	// Lemma-2 slack closures: built once per state on first use (they
	// capture only s), so route searches and optimal insertions on the
	// probe hot path do not allocate a fresh closure per call. The
	// relaxation reads the current edge's cost from relaxEdgeCost,
	// which relaxFunc sets before handing the closure out. Clone
	// deliberately omits all three fields — a copied closure would
	// still capture the ORIGINAL state — so each fork lazily rebuilds
	// its own.
	relaxEdgeCost float64
	relaxFn       network.RelaxFunc
	slackFn       linksched.SlackFunc
}

// newState builds the mutable scheduling state for one run.
func newState(g *dag.Graph, net *network.Topology, opts Options) (*state, error) {
	if opts.Duplication && opts.TaskPolicy != TaskAppend {
		return nil, fmt.Errorf("sched: duplication requires the append task policy")
	}
	s := &state{g: g, net: net, opts: opts, mls: net.MeanLinkSpeed(), stats: &probeStats{}}
	s.routeCache = opts.RouteCache
	if s.routeCache == nil {
		// No shared cache supplied: a private per-run cache still
		// amortizes routes across the probes within this run, but its
		// warmup is lost when the run ends.
		s.routeCache = network.NewRouteCache(0)
	}
	s.router = net.NewRouter(s.routeCache)
	s.routerNet = net
	nl := net.NumLinks()
	switch opts.Engine {
	case EngineSlots, EnginePackets:
		s.tl = make([]linksched.Timeline, nl)
	case EngineBandwidth:
		s.bw = make([]linksched.BWTimeline, nl)
	default:
		return nil, fmt.Errorf("sched: unknown engine %v", opts.Engine)
	}
	s.procFinish = make([]float64, net.NumNodes())
	if opts.TaskPolicy == TaskInsertion {
		s.ptl = make([]linksched.Timeline, net.NumNodes())
	}
	s.tasks = make([]TaskPlacement, g.NumTasks())
	for i := range s.tasks {
		s.tasks[i] = TaskPlacement{Task: dag.TaskID(i), Proc: -1}
	}
	s.edges.init(g.NumEdges())
	return s, nil
}

// Schedule implements Algorithm.
func (l *ListScheduler) Schedule(g *dag.Graph, net *network.Topology) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	s, err := newState(g, net, l.Opts)
	if err != nil {
		return nil, err
	}
	return scheduleOn(s, l.AlgorithmName)
}

// scheduleOn runs the unified list-scheduling loop on a prepared state
// and materializes the Schedule. It is shared by the one-shot
// ListScheduler entry point and the long-lived Engine, whose pooled
// states arrive here via resetFor instead of newState. The returned
// Schedule owns s.tasks and s.dups (they escape; see Engine.put) but
// no other state memory — materialize builds a private view.
func scheduleOn(s *state, name string) (*Schedule, error) {
	order, err := priorityOrder(s.g, s.opts.Priority)
	if err != nil {
		return nil, err
	}
	if s.opts.ProcSelect == ProcSelectEFT && s.net.NumProcessors() > 1 {
		s.fork(probeWorkers(s.opts))
		defer s.releaseForks()
	}
	for _, tid := range order {
		proc, err := s.selectProcessor(tid)
		if err != nil {
			return nil, err
		}
		if _, err := s.placeAndCommit(tid, proc); err != nil {
			return nil, err
		}
	}
	return &Schedule{
		Algorithm:  name,
		Graph:      s.g,
		Net:        s.net,
		Tasks:      s.tasks,
		Edges:      s.edges.materialize(),
		Makespan:   makespan(s.tasks),
		HopDelay:   s.opts.HopDelay,
		Switching:  s.opts.Switching,
		Duplicates: s.dups,
	}, nil
}

// selectProcessor picks the processor for a ready task per the
// configured policy.
func (s *state) selectProcessor(tid dag.TaskID) (network.NodeID, error) {
	switch s.opts.ProcSelect {
	case ProcSelectEstimate:
		return s.selectByEstimate(tid, true), nil
	case ProcSelectNoComm:
		return s.selectByEstimate(tid, false), nil
	case ProcSelectEFT:
		return s.selectByEFT(tid)
	default:
		return -1, fmt.Errorf("sched: unknown processor selection %v", s.opts.ProcSelect)
	}
}

// selectByEstimate implements the closed-form processor criteria: the
// paper's §4.1 formula when withComm is true (communication estimated
// as c(e)/MLS for predecessors on other processors), or the
// communication-blind variant the paper attributes to BA when withComm
// is false.
func (s *state) selectByEstimate(tid dag.TaskID, withComm bool) network.NodeID {
	task := s.g.Task(tid)
	best := network.NodeID(-1)
	bestScore := math.Inf(1)
	for _, p := range s.net.Processors() {
		ready := s.procFinish[p]
		for _, eid := range s.g.Pred(tid) {
			e := s.g.Edge(eid)
			src := s.tasks[e.From]
			arr := src.Finish
			if withComm && src.Proc != p {
				comm := e.Cost / s.mls
				if s.opts.Duplication && s.g.InDegree(e.From) == 0 {
					// The transfer can be replaced by re-running the
					// predecessor-free source locally.
					if rerun := s.g.Task(e.From).Cost / s.net.Node(p).Speed; rerun < comm {
						comm = rerun
					}
				}
				arr += comm
			}
			if arr > ready {
				ready = arr
			}
		}
		score := ready + task.Cost/s.net.Node(p).Speed
		if fptime.LessEps(score, bestScore) {
			bestScore = score
			best = p
		}
	}
	return best
}

// readyTime returns the time tid becomes ready: the latest finish of
// its predecessors (0 for sources). Under the paper's dynamic model
// this is also when the task's incoming communications may start.
func (s *state) readyTime(tid dag.TaskID) float64 {
	ready := 0.0
	for _, eid := range s.g.Pred(tid) {
		if f := s.tasks[s.g.Edge(eid).From].Finish; f > ready {
			ready = f
		}
	}
	return ready
}

// placeTask schedules all incoming communications of tid towards proc,
// then the task itself, and returns the task's finish time.
func (s *state) placeTask(tid dag.TaskID, proc network.NodeID) (float64, error) {
	preds := s.orderedPreds(tid)
	ready := s.readyTime(tid)
	drt := ready
	for _, eid := range preds {
		base := ready
		if s.opts.CommStart == CommAtSourceFinish {
			base = s.tasks[s.g.Edge(eid).From].Finish
		}
		if s.opts.Duplication && s.tryDuplicate(eid, proc, base) {
			if f := s.procFinish[proc]; f > drt {
				drt = f
			}
			continue
		}
		arr, err := s.scheduleEdge(eid, proc, base)
		if err != nil {
			return 0, err
		}
		if arr > drt {
			drt = arr
		}
	}
	dur := s.g.Task(tid).Cost / s.net.Node(proc).Speed
	var start, finish float64
	if s.opts.TaskPolicy == TaskInsertion {
		s.touchProcTimeline(proc)
		owner := linksched.Owner{Edge: int(tid), Leg: -1}
		start, finish = s.ptl[proc].InsertBasic(owner, linksched.Request{ES: drt, PF: drt, Dur: dur})
	} else {
		start = drt
		if f := s.procFinish[proc]; f > start {
			start = f
		}
		finish = start + dur
	}
	s.touchTask(tid)
	s.tasks[tid] = TaskPlacement{Task: tid, Proc: proc, Start: start, Finish: finish}
	s.touchProc(proc)
	if finish > s.procFinish[proc] {
		s.procFinish[proc] = finish
	}
	return finish, nil
}

// tryDuplicate decides whether to satisfy edge eid by re-executing its
// (predecessor-free) source task on the destination processor instead
// of transferring the data. Returns true when the duplicate was placed
// (the edge then has no network schedule). The decision compares the
// duplicate's local finish against the mean-link-speed transfer
// estimate, so it stays cheap; the actual gain is whatever contention
// would have added on top.
func (s *state) tryDuplicate(eid dag.EdgeID, proc network.NodeID, base float64) bool {
	e := s.g.Edge(eid)
	src := s.tasks[e.From]
	if src.Proc == proc {
		return false // local anyway
	}
	if s.g.InDegree(e.From) != 0 {
		return false // only predecessor-free tasks are duplicated
	}
	// Reuse an existing duplicate of the same task on this processor.
	for _, d := range s.dups {
		if d.Task == e.From && d.Proc == proc {
			s.touchEdge(eid)
			s.edges.clear(eid)
			return true
		}
	}
	dupStart := s.procFinish[proc]
	dupFinish := dupStart + s.g.Task(e.From).Cost/s.net.Node(proc).Speed
	estArrival := base + e.Cost/s.mls
	if fptime.GeqEps(dupFinish, estArrival) {
		return false // duplication must win by more than rounding noise
	}
	s.touchDup()
	s.dups = append(s.dups, TaskPlacement{Task: e.From, Proc: proc, Start: dupStart, Finish: dupFinish})
	s.touchProc(proc)
	s.procFinish[proc] = dupFinish
	s.touchEdge(eid)
	s.edges.clear(eid)
	return true
}

// orderedPreds returns the incoming edge IDs of tid in the configured
// scheduling order. The returned slice is scratch owned by the state
// and valid until the next call.
func (s *state) orderedPreds(tid dag.TaskID) []dag.EdgeID {
	in := s.g.Pred(tid)
	out := append(s.predBuf[:0], in...)
	s.predBuf = out
	switch s.opts.EdgeOrder {
	case EdgeOrderFIFO:
		// keep insertion order
	case EdgeOrderDescCost:
		sort.SliceStable(out, func(i, j int) bool {
			return s.g.Edge(out[i]).Cost > s.g.Edge(out[j]).Cost
		})
	case EdgeOrderAscCost:
		sort.SliceStable(out, func(i, j int) bool {
			return s.g.Edge(out[i]).Cost < s.g.Edge(out[j]).Cost
		})
	}
	return out
}

// scheduleEdge routes and places edge eid towards destination processor
// dstProc, returning the data arrival time there. base is the earliest
// time the communication may enter the network (the task's ready time
// under the paper's model, or the source finish for eager starts).
func (s *state) scheduleEdge(eid dag.EdgeID, dstProc network.NodeID, base float64) (float64, error) {
	e := s.g.Edge(eid)
	src := s.tasks[e.From]
	if src.Proc < 0 {
		return 0, fmt.Errorf("sched: edge %d scheduled before its source task %d", eid, e.From)
	}
	if src.Proc == dstProc {
		// Intra-processor communication is free; ensure no stale
		// schedule lingers from a previous tentative placement.
		s.touchEdge(eid)
		s.edges.clear(eid)
		return src.Finish, nil
	}
	route, err := s.findRoute(e, src.Proc, dstProc, base)
	if err != nil {
		return 0, err
	}
	// Open the columnar record first (the route is copied into the
	// arena, one zero leg per link reserved), but leave it unscheduled
	// until every leg is placed: the engines below run slack/shift
	// callbacks that must not see the half-built record — the same
	// invisibility the edge had while the old code built its schedule on
	// a private heap object.
	s.touchEdge(eid)
	s.edges.place(eid, src.Proc, dstProc, route, base)
	switch s.opts.Engine {
	case EngineSlots:
		s.placeEdgeSlots(eid, e, route, base)
	case EngineBandwidth:
		s.placeEdgeBandwidth(eid, e, route, base)
	case EnginePackets:
		s.placeEdgePackets(eid, e, route, base)
	}
	return s.edges.finish(eid, base), nil
}

// findRoute picks the route per the configured policy.
func (s *state) findRoute(e dag.Edge, src, dst network.NodeID, base float64) (network.Route, error) {
	switch s.opts.Routing {
	case RoutingBFS:
		return s.router.BFSRoute(src, dst)
	case RoutingDijkstra:
		init := network.Label{Start: base, Finish: base}
		route, _, err := s.router.DijkstraRoute(src, dst, init, s.relaxFunc(e))
		return route, err
	default:
		return nil, fmt.Errorf("sched: unknown routing %v", s.opts.Routing)
	}
}

// relaxFunc returns the modified-Dijkstra relaxation for edge e: the
// label after a link is the (start, finish) the edge would get on that
// link by basic insertion (slots engine) or by a greedy bandwidth
// estimate (bandwidth engine). The closure is cached on the state and
// parameterized through s.relaxEdgeCost — building a fresh capture of
// e here would allocate on every route search of the probe hot path.
//
// edgelint:noalloc
func (s *state) relaxFunc(e dag.Edge) network.RelaxFunc {
	s.relaxEdgeCost = e.Cost
	if s.relaxFn == nil {
		s.relaxFn = s.buildRelaxFn()
	}
	return s.relaxFn
}

// buildRelaxFn constructs the engine-specific relaxation closure, once
// per state on its first Dijkstra route search (the engine is fixed in
// Options for the lifetime of the state).
//
// edgelint:coldpath — one-time closure construction, cached in relaxFn
func (s *state) buildRelaxFn() network.RelaxFunc {
	switch s.opts.Engine {
	case EngineBandwidth:
		return func(l network.Link, cur network.Label) network.Label {
			es := cur.Start
			if s.opts.Switching == StoreAndForward {
				es = cur.Finish
			}
			if cur.Hops > 0 {
				es += s.opts.HopDelay
			}
			start, finish := s.bw[l.ID].EstimateFinish(es, s.relaxEdgeCost, l.Speed)
			if finish < cur.Finish {
				finish = cur.Finish
			}
			return network.Label{Start: start, Finish: finish}
		}
	default:
		return func(l network.Link, cur network.Label) network.Label {
			req := linksched.Request{ES: cur.Start, PF: cur.Finish, Dur: s.relaxEdgeCost / l.Speed}
			if s.opts.Switching == StoreAndForward {
				req.ES = cur.Finish
			}
			if cur.Hops > 0 {
				req.ES += s.opts.HopDelay
				req.PF += s.opts.HopDelay
			}
			start, finish := s.tl[l.ID].ProbeBasic(req)
			return network.Label{Start: start, Finish: finish}
		}
	}
}

// placeEdgeSlots walks the route placing one exclusive slot per link,
// propagating the link causality lower bounds. Leg records are written
// through setLeg, which re-derives the arena position per write: an
// applyShift of another edge may copy-on-write its legs mid-loop and
// grow (reallocate) the shared legs arena.
func (s *state) placeEdgeSlots(eid dag.EdgeID, e dag.Edge, route network.Route, base float64) {
	prevStart, prevFinish := base, base
	for leg, lid := range route {
		link := s.net.Link(lid)
		req := linksched.Request{ES: prevStart, PF: prevFinish, Dur: e.Cost / link.Speed}
		if s.opts.Switching == StoreAndForward {
			req.ES = prevFinish
		}
		if leg > 0 {
			req.ES += s.opts.HopDelay
			req.PF += s.opts.HopDelay
		}
		owner := linksched.Owner{Edge: int(eid), Leg: leg}
		s.touchTimeline(lid)
		var start, finish float64
		if s.opts.Insertion == InsertionOptimal {
			var moved []linksched.Shifted
			start, finish, moved = s.tl[lid].InsertOptimal(owner, req, s.slackFunc())
			for _, m := range moved {
				s.applyShift(m)
			}
		} else {
			start, finish = s.tl[lid].InsertBasic(owner, req)
		}
		s.edges.setLeg(eid, leg, legMeta{link: lid, start: start, finish: finish})
		prevStart, prevFinish = start, finish
	}
}

// slackFunc returns the deferrable-time callback (Lemma 2) for
// already scheduled slots, cached on the state: optimal insertion
// calls it once per placed leg, and a fresh closure per call would
// allocate on the probe hot path.
//
// edgelint:noalloc
func (s *state) slackFunc() linksched.SlackFunc {
	if s.slackFn == nil {
		s.slackFn = s.buildSlackFn()
	}
	return s.slackFn
}

// buildSlackFn constructs the slack closure: the deferrable time of an
// already scheduled slot is bounded by the owner edge's placement on
// its next route link, zero on its last link. Edges without a sealed
// record — including the one currently being placed — have no slack.
//
// edgelint:coldpath — one-time closure construction, cached in slackFn
func (s *state) buildSlackFn() linksched.SlackFunc {
	return func(o linksched.Owner) float64 {
		m := s.edges.meta[o.Edge]
		if !m.scheduled || o.Leg >= int(m.legs.n)-1 {
			return 0
		}
		cur := s.edges.legs[int(m.legs.off)+o.Leg]
		next := s.edges.legs[int(m.legs.off)+o.Leg+1]
		var dt float64
		if s.opts.Switching == StoreAndForward {
			// Next link starts only after this one finishes.
			dt = next.start - cur.finish - s.opts.HopDelay
		} else {
			dt = next.start - cur.start - s.opts.HopDelay
			if v := next.finish - cur.finish - s.opts.HopDelay; v < dt {
				dt = v
			}
		}
		if dt < 0 {
			dt = 0
		}
		return dt
	}
}

// applyShift updates the placement record of a slot deferred by
// optimal insertion.
func (s *state) applyShift(m linksched.Shifted) {
	eid := dag.EdgeID(m.Owner.Edge)
	if !s.edges.scheduled(eid) {
		// The in-flight edge (or a cleared one) has no record to move.
		return
	}
	// The edge's legs may predate the open transaction, in which case
	// they live below the rollback watermark and must be copied to the
	// arena tail before mutation (span-level copy-on-write).
	s.cowEdgeLegs(eid)
	l := &s.edges.legs[int(s.edges.meta[eid].legs.off)+m.Owner.Leg]
	l.start = m.Start
	l.finish = m.End
}

// placeEdgePackets divides the edge's volume into packets and
// schedules each packet as an exclusive slot on every route link.
// Packet p may enter link m+1 only after it fully left link m (packet
// store-and-forward) and after packet p-1 entered that link (in-order
// delivery); packets of one message therefore pipeline across the
// route. PacketOverhead extends each packet's occupation, modelled as
// a bandwidth-efficiency loss so the verifier's volume accounting
// stays exact.
func (s *state) placeEdgePackets(eid dag.EdgeID, e dag.Edge, route network.Route, base float64) {
	size := s.opts.PacketSize
	if size <= 0 {
		size = 100
	}
	nPkts := int(math.Ceil(e.Cost / size))
	if nPkts < 1 {
		nPkts = 1
	}
	// prevFinish[p] is packet p's finish on the previous link. The
	// buffer is scratch owned by the state, reused across placements.
	if cap(s.pktBuf) < nPkts {
		s.pktBuf = make([]float64, nPkts)
	}
	prevFinish := s.pktBuf[:nPkts]
	for p := range prevFinish {
		prevFinish[p] = base
	}
	for leg, lid := range route {
		link := s.net.Link(lid)
		s.touchTimeline(lid)
		var legStart, legFinish float64
		lastOnLink := 0.0 // finish of packet p-1 on this link
		legChunks := s.chunkBuf[:0]
		for p := 0; p < nPkts; p++ {
			vol := size
			if p == nPkts-1 {
				vol = e.Cost - size*float64(nPkts-1)
			}
			dur := vol/link.Speed + s.opts.PacketOverhead
			lb := prevFinish[p]
			if leg > 0 {
				lb += s.opts.HopDelay
			}
			if lastOnLink > lb {
				lb = lastOnLink
			}
			owner := linksched.Owner{Edge: int(eid), Leg: leg}
			start, finish := s.tl[lid].InsertBasic(owner, linksched.Request{ES: lb, PF: lb, Dur: dur})
			if p == 0 {
				legStart = start
			}
			legFinish = finish
			lastOnLink = finish
			prevFinish[p] = finish
			rate := 1.0
			if dur > 0 {
				rate = vol / (link.Speed * dur) // < 1 with overhead
			}
			legChunks = append(legChunks, linksched.Chunk{
				Start: start, End: finish, Rate: rate, Volume: vol,
			})
		}
		s.chunkBuf = legChunks
		s.edges.setLeg(eid, leg, legMeta{
			link:   lid,
			start:  legStart,
			finish: legFinish,
			chunks: s.edges.appendChunks(legChunks),
		})
	}
}

// placeEdgeBandwidth transfers the edge's volume over the route using
// fractional bandwidth per BBSA.
func (s *state) placeEdgeBandwidth(eid dag.EdgeID, e dag.Edge, route network.Route, base float64) {
	var chunks []linksched.Chunk
	prevSpeed := 0.0
	for leg, lid := range route {
		link := s.net.Link(lid)
		owner := linksched.Owner{Edge: int(eid), Leg: leg}
		s.touchBWTimeline(lid)
		switch {
		case leg == 0:
			chunks = s.bw[lid].Alloc(owner, base, e.Cost, link.Speed, 0)
		case s.opts.Switching == StoreAndForward:
			// The whole message is buffered at the station; the next
			// link transfers it afresh, unconstrained by arrival rate.
			arrived := chunks[len(chunks)-1].End
			chunks = s.bw[lid].Alloc(owner, arrived+s.opts.HopDelay, e.Cost, link.Speed, 0)
		default:
			chunks = s.bw[lid].Forward(owner, chunks, prevSpeed, link.Speed, s.opts.HopDelay)
		}
		start, finish := base, base
		if len(chunks) > 0 {
			start = chunks[0].Start
			finish = chunks[len(chunks)-1].End
		}
		s.edges.setLeg(eid, leg, legMeta{
			link:   lid,
			start:  start,
			finish: finish,
			chunks: s.edges.appendChunks(chunks),
		})
		prevSpeed = link.Speed
	}
}
