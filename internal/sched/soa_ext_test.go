// End-to-end pins for the columnar scheduler state, in the external
// test package so each schedule can run through the full validator
// (verify imports sched, so the in-package tests cannot use it).
package sched_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/verify"
)

// soaInstance mirrors the in-package fork tests' workload: a small
// layered DAG on a star, large enough that every engine places
// multi-leg edges through the span arenas.
func soaInstance(seed int64) (*dag.Graph, *network.Topology) {
	r := rand.New(rand.NewSource(seed))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    25,
		TaskCost: dag.CostDist{Lo: 1, Hi: 50},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
	})
	net := network.Star(4, network.Uniform(1), network.Uniform(1))
	return g, net
}

// soaOptionSets are the engine/policy combinations the probe replicas
// must reproduce exactly.
func soaOptionSets() map[string]sched.Options {
	return map[string]sched.Options{
		"slots-basic": {ProcSelect: sched.ProcSelectEFT},
		"slots-optimal": {ProcSelect: sched.ProcSelectEFT,
			Insertion: sched.InsertionOptimal, EdgeOrder: sched.EdgeOrderDescCost},
		"bandwidth":   {ProcSelect: sched.ProcSelectEFT, Engine: sched.EngineBandwidth},
		"packets":     {ProcSelect: sched.ProcSelectEFT, Engine: sched.EnginePackets, PacketSize: 40},
		"insertion":   {ProcSelect: sched.ProcSelectEFT, TaskPolicy: sched.TaskInsertion},
		"duplication": {ProcSelect: sched.ProcSelectEFT, Duplication: true},
	}
}

// TestScheduleIdenticalAcrossProbeWorkers is the end-to-end
// determinism pin for the columnar refactor: full schedules must be
// bit-identical at ProbeWorkers 1 and 8, with the sampled rollback
// fingerprint oracle armed so an un-journaled write in the columnar
// store would panic rather than skew a replica.
func TestScheduleIdenticalAcrossProbeWorkers(t *testing.T) {
	for name, opts := range soaOptionSets() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			g, net := soaInstance(23)
			opts.VerifyRollbackEvery = 7
			opts.ProbeWorkers = 1
			seq, err := sched.NewCustom("seq", opts).Schedule(g, net)
			if err != nil {
				t.Fatal(err)
			}
			opts.ProbeWorkers = 8
			par, err := sched.NewCustom("par", opts).Schedule(g, net)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []*sched.Schedule{seq, par} {
				if res := verify.Verify(s); !res.OK() {
					t.Fatalf("invalid schedule: %v", res)
				}
			}
			if !reflect.DeepEqual(seq.Tasks, par.Tasks) {
				t.Fatal("task placements differ between ProbeWorkers 1 and 8")
			}
			if !reflect.DeepEqual(seq.Edges, par.Edges) {
				t.Fatal("edge schedules differ between ProbeWorkers 1 and 8")
			}
			if !reflect.DeepEqual(seq.Duplicates, par.Duplicates) {
				t.Fatal("duplicates differ between ProbeWorkers 1 and 8")
			}
			// edgelint:ignore floateq — bit-identical by construction
			if seq.Makespan != par.Makespan {
				t.Fatalf("makespan differs: %v vs %v", seq.Makespan, par.Makespan)
			}
		})
	}
}

// TestPooledForkReuse runs the same parallel instance twice in a row:
// the second run's forks come out of the state pool, so any stale
// buffer, mark array or cached closure surviving the pooled re-clone
// would skew its schedule relative to the first run.
func TestPooledForkReuse(t *testing.T) {
	g, net := soaInstance(31)
	opts := sched.Options{ProcSelect: sched.ProcSelectEFT, Insertion: sched.InsertionOptimal,
		EdgeOrder: sched.EdgeOrderDescCost, ProbeWorkers: 4, VerifyRollbackEvery: 5}
	first, err := sched.NewCustom("x", opts).Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	if res := verify.Verify(first); !res.OK() {
		t.Fatalf("invalid schedule: %v", res)
	}
	// A differently shaped instance in between forces the pooled
	// replicas through the journal and column resize paths.
	g2 := dag.Chain(4, 1, 10)
	net2 := network.Star(6, network.Uniform(2), network.Uniform(1))
	mid, err := sched.NewCustom("y", opts).Schedule(g2, net2)
	if err != nil {
		t.Fatal(err)
	}
	if res := verify.Verify(mid); !res.OK() {
		t.Fatalf("invalid schedule: %v", res)
	}
	second, err := sched.NewCustom("x", opts).Schedule(g, net)
	if err != nil {
		t.Fatal(err)
	}
	if res := verify.Verify(second); !res.OK() {
		t.Fatalf("invalid schedule: %v", res)
	}
	if !reflect.DeepEqual(first.Tasks, second.Tasks) || !reflect.DeepEqual(first.Edges, second.Edges) {
		t.Fatal("pooled fork reuse changed the schedule across runs")
	}
}
