package sched_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
)

func TestDLSBasics(t *testing.T) {
	g := dag.Chain(4, 10, 5)
	net := network.Star(3, network.Uniform(1), network.Uniform(1))
	s := mustSchedule(t, sched.NewDLS(), g, net)
	// A chain stays serial: makespan ≥ 40; local execution gives exactly 40.
	if s.Makespan < 40-1e-9 {
		t.Fatalf("makespan %v below serial chain bound", s.Makespan)
	}
	if s.Algorithm != "DLS" {
		t.Fatalf("name %q", s.Algorithm)
	}
}

func TestDLSAllTasksScheduledOnce(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    50,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
	})
	net := network.RandomCluster(r, network.RandomClusterParams{
		Processors: 6, ProcSpeed: network.UniformRange(r, 1, 10),
		LinkSpeed: network.UniformRange(r, 1, 10)})
	s := mustSchedule(t, sched.NewDLS(), g, net)
	for i, tp := range s.Tasks {
		if tp.Proc < 0 {
			t.Fatalf("task %d unscheduled", i)
		}
	}
}

func TestDLSPrefersFastProcessors(t *testing.T) {
	// Independent tasks, one fast and one slow processor: DLS's
	// dynamic level (bl/speed) must favour the fast one for the bulk
	// of the work.
	g := dag.New()
	for i := 0; i < 8; i++ {
		g.AddTask("", 100)
	}
	net := network.NewTopology()
	fast := net.AddProcessor("fast", 10)
	slow := net.AddProcessor("slow", 1)
	net.AddDuplex(fast, slow, 1)
	s := mustSchedule(t, sched.NewDLS(), g, net)
	onFast := 0
	for _, tp := range s.Tasks {
		if tp.Proc == fast {
			onFast++
		}
	}
	if onFast < 5 {
		t.Fatalf("only %d of 8 tasks on the 10x faster processor", onFast)
	}
}

func TestCPOPPinsCriticalPath(t *testing.T) {
	// A chain plus a cheap side task: the whole chain is the critical
	// path and must land on one processor (the fastest).
	g := dag.New()
	a := g.AddTask("a", 100)
	b := g.AddTask("b", 100)
	c := g.AddTask("c", 100)
	g.AddEdge(a, b, 50)
	g.AddEdge(b, c, 50)
	side := g.AddTask("side", 1)
	_ = side
	net := network.NewTopology()
	p0 := net.AddProcessor("p0", 1)
	p1 := net.AddProcessor("p1", 2) // fastest
	net.AddDuplex(p0, p1, 1)
	s := mustSchedule(t, sched.NewCPOP(), g, net)
	for _, tid := range []dag.TaskID{a, b, c} {
		if s.Tasks[tid].Proc != p1 {
			t.Fatalf("critical-path task %d not on the fastest processor", tid)
		}
	}
	// The chain executes back to back on p1: 300/2 = 150.
	if math.Abs(s.Tasks[c].Finish-150) > 1e-9 {
		t.Fatalf("critical path finished at %v, want 150", s.Tasks[c].Finish)
	}
}

func TestCPOPVerifiesOnRandomInstances(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 5; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    50,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
		})
		net := network.RandomCluster(r, network.RandomClusterParams{
			Processors: 8,
			ProcSpeed:  network.UniformRange(r, 1, 10),
			LinkSpeed:  network.UniformRange(r, 1, 10),
		})
		mustSchedule(t, sched.NewCPOP(), g, net)
		mustSchedule(t, sched.NewDLS(), g, net)
	}
}

func TestDLSAndCPOPCompetitive(t *testing.T) {
	// Sanity: the extra baselines should land in the same order of
	// magnitude as OIHSA on random instances (they share the edge
	// machinery), not collapse to something pathological.
	r := rand.New(rand.NewSource(16))
	var oihsa, dls, cpop float64
	for trial := 0; trial < 6; trial++ {
		g := dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    60,
			TaskCost: dag.CostDist{Lo: 1, Hi: 100},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
		})
		net := network.RandomCluster(r, network.RandomClusterParams{
			Processors: 8, ProcSpeed: network.Uniform(1), LinkSpeed: network.Uniform(1)})
		oihsa += mustSchedule(t, sched.NewOIHSA(), g, net).Makespan
		dls += mustSchedule(t, sched.NewDLS(), g, net).Makespan
		cpop += mustSchedule(t, sched.NewCPOP(), g, net).Makespan
	}
	if dls > 3*oihsa || cpop > 3*oihsa {
		t.Fatalf("baselines pathological: OIHSA %.0f, DLS %.0f, CPOP %.0f", oihsa, dls, cpop)
	}
}
