package sched_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sched"
)

// oracleAlgorithms are the engine/policy combinations the rollback
// oracle property test drives: the paper's named algorithms plus the
// probing variants where every placement runs inside a transaction —
// including the combinations that exercise optimal-insertion shifts
// (cowEdge), bandwidth and packet timelines, processor-timeline
// insertion, and duplication.
func oracleAlgorithms() map[string]*sched.ListScheduler {
	algos := map[string]*sched.ListScheduler{
		"BA":     sched.NewBA(),
		"BA-EFT": sched.NewBASinnen(),
		"OIHSA":  sched.NewOIHSA(),
		"BBSA":   sched.NewBBSA(),
	}
	algos["EFT-optimal"] = sched.NewCustom("EFT-optimal", sched.Options{
		Routing: sched.RoutingDijkstra, Insertion: sched.InsertionOptimal,
		EdgeOrder: sched.EdgeOrderDescCost, ProcSelect: sched.ProcSelectEFT,
	})
	algos["EFT-bandwidth"] = sched.NewCustom("EFT-bandwidth", sched.Options{
		Routing: sched.RoutingDijkstra, ProcSelect: sched.ProcSelectEFT,
		Engine: sched.EngineBandwidth,
	})
	algos["EFT-packets"] = sched.NewCustom("EFT-packets", sched.Options{
		ProcSelect: sched.ProcSelectEFT, Engine: sched.EnginePackets, PacketSize: 40,
	})
	algos["EFT-duplication"] = sched.NewCustom("EFT-duplication", sched.Options{
		ProcSelect: sched.ProcSelectEFT, Duplication: true,
	})
	return algos
}

// TestRollbackOracleProperty is the rollback-completeness property
// test: every algorithm × task policy × random DAG/topology seed runs
// with the rollback oracle armed, so each probe transaction proves its
// rollback restored the state bit-for-bit (the oracle panics otherwise,
// naming the corrupted field). Schedules must additionally be
// bit-identical at ProbeWorkers 1 and 8 — the oracle must never be a
// result knob, and neither is parallel probing.
// TestRollbackOracleSampled runs the paper's presets with the sampled
// oracle (Options.VerifyRollbackEvery) armed: every 7th probe
// transaction is fingerprinted. Sampling cuts the oracle's O(state)
// per-probe cost enough to keep this in the ordinary `go test` run —
// an un-journaled write in a deterministic scheduler corrupts probes
// repeatedly, so the sampled fingerprints still catch it — while the
// exhaustive every-probe property test above stays the CI oracle
// job's responsibility. The sampled run must also leave results
// untouched: the schedule is compared against an oracle-free run.
func TestRollbackOracleSampled(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    40,
		TaskCost: dag.CostDist{Lo: 1, Hi: 50},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
	})
	net := network.RandomCluster(r, network.RandomClusterParams{Processors: 6})
	for name, algo := range oracleAlgorithms() {
		algo := algo
		t.Run(name, func(t *testing.T) {
			run := func(every int) *sched.Schedule {
				a := sched.NewCustom(algo.AlgorithmName, algo.Opts)
				a.Opts.VerifyRollbackEvery = every
				return mustSchedule(t, a, g, net)
			}
			base := run(0)
			if got := run(7); !reflect.DeepEqual(got, base) {
				t.Fatalf("%s: sampled oracle changed the schedule", name)
			}
		})
	}
}

func TestRollbackOracleProperty(t *testing.T) {
	for name, algo := range oracleAlgorithms() {
		algo := algo
		t.Run(name, func(t *testing.T) {
			for _, policy := range []sched.TaskPolicy{sched.TaskAppend, sched.TaskInsertion} {
				if algo.Opts.Duplication && policy != sched.TaskAppend {
					continue // duplication requires append placement
				}
				for seed := int64(1); seed <= 3; seed++ {
					r := rand.New(rand.NewSource(seed))
					g := dag.RandomLayered(r, dag.RandomLayeredParams{
						Tasks:    30,
						TaskCost: dag.CostDist{Lo: 1, Hi: 50},
						EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
					})
					net := network.RandomCluster(r, network.RandomClusterParams{Processors: 6})

					run := func(workers int) *sched.Schedule {
						a := sched.NewCustom(algo.AlgorithmName, algo.Opts)
						a.Opts.TaskPolicy = policy
						a.Opts.VerifyRollback = true
						a.Opts.ProbeWorkers = workers
						return mustSchedule(t, a, g, net)
					}
					base := run(1)
					if got := run(8); !reflect.DeepEqual(got, base) {
						t.Fatalf("%s policy=%v seed %d: schedule under the oracle differs between ProbeWorkers 1 and 8",
							name, policy, seed)
					}
				}
			}
		})
	}
}
