package sched

import (
	"repro/internal/dag"
	"repro/internal/linksched"
	"repro/internal/network"
)

// The columnar edge store. Edge schedules used to live as one heap
// *EdgeSchedule per edge with nested Route/Placements/Chunks slices —
// forking a state meant O(|E|·route length) small allocations and the
// same again for the rollback fingerprint. Here the records are
// struct-of-arrays: one fixed-width edgeMeta per edge ID in a flat
// column, with the variable-length route, per-leg placement and
// bandwidth-chunk data appended to shared arena slices and addressed
// by (offset, length) spans. Cloning the store is four bulk copies;
// rolling back a probe transaction is restoring the journaled edgeMeta
// values and truncating the arenas to their begin-time watermarks
// (committed data is never appended inside a transaction's tail, so
// truncation can only discard transaction-private entries).
//
// Offsets are int32: the committed arenas hold at most one record per
// scheduled edge (re-placements overwrite the meta and probe tails are
// truncated), so even 10^7-edge graphs with long routes stay far from
// the 2^31 boundary.

// span addresses a run of entries in one of the store's arenas.
type span struct {
	off int32
	n   int32
}

// edgeMeta is the fixed-width column record of one edge's schedule.
// The zero value means "no schedule" (intra-processor communication or
// a duplicated source). While an edge is being placed, scheduled stays
// false so slack/shift bookkeeping ignores the half-built record — the
// same invisibility the old nil pointer provided.
type edgeMeta struct {
	scheduled bool
	srcProc   network.NodeID
	dstProc   network.NodeID
	arrival   float64
	base      float64
	route     span // into edgeStore.routes
	legs      span // into edgeStore.legs; n == route.n
}

// legMeta is the fixed-width record of one route-leg placement.
type legMeta struct {
	link   network.LinkID
	start  float64
	finish float64
	chunks span // into edgeStore.chunks; empty for the slots engine
}

// arenaMarks are the arena lengths at transaction begin; rollback
// truncates back to them.
type arenaMarks struct {
	routes int
	legs   int
	chunks int
}

// edgeStore holds every edge schedule of one scheduler state.
type edgeStore struct {
	meta   []edgeMeta
	routes []network.LinkID
	legs   []legMeta
	chunks []linksched.Chunk
}

// init sizes the store for edge IDs in [0, n) and empties the arenas,
// reusing backing arrays a pooled state already owns.
func (st *edgeStore) init(n int) {
	if cap(st.meta) < n {
		st.meta = make([]edgeMeta, n)
	} else {
		st.meta = st.meta[:n]
		clear(st.meta)
	}
	st.routes = st.routes[:0]
	st.legs = st.legs[:0]
	st.chunks = st.chunks[:0]
}

// scheduled reports whether edge id has a completed schedule record.
func (st *edgeStore) scheduled(id dag.EdgeID) bool { return st.meta[id].scheduled }

// clear removes edge id's schedule record. The caller journals the
// prior meta (touchEdge) first; arena entries the record addressed
// become unreachable garbage, bounded by one generation per edge
// because committed placements happen once per edge.
func (st *edgeStore) clear(id dag.EdgeID) { st.meta[id] = edgeMeta{} }

// place starts a fresh schedule record for edge id: the route is
// copied into the route arena and one zero-valued leg per route link
// is reserved in the legs arena. The record stays invisible
// (scheduled == false) until finish seals it.
func (st *edgeStore) place(id dag.EdgeID, src, dst network.NodeID, route network.Route, base float64) {
	ro := int32(len(st.routes))
	// edgelint:coldpath — amortized arena growth; capacity persists
	// across transactions and pooled reuse.
	st.routes = append(st.routes, route...)
	lo := int32(len(st.legs))
	for range route {
		// edgelint:coldpath — amortized arena growth, as above.
		st.legs = append(st.legs, legMeta{})
	}
	n := int32(len(route))
	st.meta[id] = edgeMeta{
		srcProc: src,
		dstProc: dst,
		base:    base,
		route:   span{off: ro, n: n},
		legs:    span{off: lo, n: n},
	}
}

// finish seals edge id's record: the arrival (the finish on the last
// route leg, or base for an empty route) is recorded and the edge
// becomes visible to slack/shift bookkeeping. Returns the arrival.
func (st *edgeStore) finish(id dag.EdgeID, base float64) float64 {
	m := &st.meta[id]
	m.arrival = base
	if m.legs.n > 0 {
		m.arrival = st.legs[m.legs.off+m.legs.n-1].finish
	}
	m.scheduled = true
	return m.arrival
}

// routeAt returns the link of route position leg of edge id.
func (st *edgeStore) routeAt(id dag.EdgeID, leg int) network.LinkID {
	return st.routes[int(st.meta[id].route.off)+leg]
}

// legCount returns the number of route legs reserved for edge id.
func (st *edgeStore) legCount(id dag.EdgeID) int { return int(st.meta[id].legs.n) }

// setLeg writes the placement record of route position leg of edge id.
// The write position is re-derived from the meta column on every call:
// a copy-on-write of another edge may have grown the legs arena (and
// reallocated it) since the caller last looked.
func (st *edgeStore) setLeg(id dag.EdgeID, leg int, lm legMeta) {
	st.legs[int(st.meta[id].legs.off)+leg] = lm
}

// legsView returns edge id's legs as a mutable window into the arena,
// valid only until the next arena append.
func (st *edgeStore) legsView(id dag.EdgeID) []legMeta {
	m := st.meta[id].legs
	return st.legs[m.off : m.off+m.n]
}

// appendChunks copies cs into the chunk arena and returns its span.
func (st *edgeStore) appendChunks(cs []linksched.Chunk) span {
	off := int32(len(st.chunks))
	// edgelint:coldpath — amortized arena growth; capacity persists
	// across transactions and pooled reuse.
	st.chunks = append(st.chunks, cs...)
	return span{off: off, n: int32(len(cs))}
}

// marks returns the current arena watermarks, recorded at transaction
// begin.
func (st *edgeStore) marks() arenaMarks {
	return arenaMarks{routes: len(st.routes), legs: len(st.legs), chunks: len(st.chunks)}
}

// truncate discards every arena entry appended past the watermarks —
// the transaction-private tail.
func (st *edgeStore) truncate(m arenaMarks) {
	st.routes = st.routes[:m.routes]
	st.legs = st.legs[:m.legs]
	st.chunks = st.chunks[:m.chunks]
}

// copyFrom makes st an independent deep copy of src: one bulk copy per
// column, reusing st's backing arrays when they have capacity. Shapes
// are preserved exactly (see copyColumn) for the fingerprint-shape
// contract.
func (st *edgeStore) copyFrom(src *edgeStore) {
	st.meta = copyColumn(st.meta, src.meta)
	st.routes = copyColumn(st.routes, src.routes)
	st.legs = copyColumn(st.legs, src.legs)
	st.chunks = copyColumn(st.chunks, src.chunks)
}

// materialize builds the public []*EdgeSchedule view of the store, nil
// entries for unscheduled edges. All backing storage is bulk-allocated
// — one slice per column — and handed out as full-capacity subslices,
// so the view costs O(1) allocations and callers appending to a
// Route/Placements/Chunks slice reallocate privately.
func (st *edgeStore) materialize() []*EdgeSchedule {
	out := make([]*EdgeSchedule, len(st.meta))
	nSched, nLegs, nRoute, nChunks := 0, 0, 0, 0
	for i := range st.meta {
		m := &st.meta[i]
		if !m.scheduled {
			continue
		}
		nSched++
		nRoute += int(m.route.n)
		nLegs += int(m.legs.n)
		for _, l := range st.legsView(dag.EdgeID(i)) {
			nChunks += int(l.chunks.n)
		}
	}
	if nSched == 0 {
		return out
	}
	back := make([]EdgeSchedule, 0, nSched)
	routes := make([]network.LinkID, 0, nRoute)
	plcs := make([]EdgePlacement, 0, nLegs)
	chunks := make([]linksched.Chunk, 0, nChunks)
	for i := range st.meta {
		m := &st.meta[i]
		if !m.scheduled {
			continue
		}
		id := dag.EdgeID(i)
		r0 := len(routes)
		routes = append(routes, st.routes[m.route.off:m.route.off+m.route.n]...)
		p0 := len(plcs)
		for _, l := range st.legsView(id) {
			ep := EdgePlacement{Link: l.link, Start: l.start, Finish: l.finish}
			if l.chunks.n > 0 {
				c0 := len(chunks)
				chunks = append(chunks, st.chunks[l.chunks.off:l.chunks.off+l.chunks.n]...)
				ep.Chunks = chunks[c0:len(chunks):len(chunks)]
			}
			plcs = append(plcs, ep)
		}
		back = append(back, EdgeSchedule{
			Edge:       id,
			SrcProc:    m.srcProc,
			DstProc:    m.dstProc,
			Route:      network.Route(routes[r0:len(routes):len(routes)]),
			Placements: plcs[p0:len(plcs):len(plcs)],
			Arrival:    m.arrival,
			Base:       m.base,
		})
		out[i] = &back[len(back)-1]
	}
	return out
}

// copyColumn copies src into dst's backing array, reusing capacity and
// preserving src's shape exactly: a nil column stays nil and an empty
// non-nil column stays non-nil, so a clone fingerprints with the same
// shape as its parent even on degenerate topologies.
func copyColumn[T any](dst, src []T) []T {
	if src == nil {
		return nil
	}
	if dst == nil && len(src) == 0 {
		return make([]T, 0)
	}
	return append(dst[:0], src...)
}
