package sched

// journal is the dense-keyed copy-on-write log backing a probe
// transaction. Every journaled entity — tasks, processors, edges,
// link/processor timelines — is identified by a small dense integer ID
// (an index into the state's backing slice), so the journal stores
// prior values in a flat array indexed by ID instead of a map: no
// hashing on the probe hot path, no per-transaction bucket clearing,
// and the value slots persist across transactions so snapshot buffers
// can be reused (see Timeline.SnapshotInto).
//
// Membership is tracked by an epoch stamp per ID: an ID belongs to the
// open transaction iff mark[id] equals the current epoch. Closing a
// transaction is O(1) — truncate the touched-ID list and bump the
// epoch — rather than O(touched) map deletions.
type journal[V any] struct {
	mark  []uint32 // mark[id] == epoch ⇔ id journaled this transaction
	vals  []V      // vals[id]: journaled prior value (persists across epochs)
	ids   []int32  // touched IDs in journaling order
	epoch uint32
}

// init sizes the journal for IDs in [0, n). Epochs start at 1 so the
// zero-valued mark array means "nothing journaled".
//
// edgelint:coldpath — one-time journal sizing at newTxn
func (j *journal[V]) init(n int) {
	j.mark = make([]uint32, n)
	j.vals = make([]V, n)
	j.ids = make([]int32, 0, 16)
	j.epoch = 1
}

// resize re-sizes the journal for IDs in [0, n), keeping whatever
// buffers it can: the value slots persist (their snapshot buffers stay
// reusable via stale) and the touched-ID list keeps its capacity. The
// marks are cleared on any length change — shrinking and re-growing
// within capacity would otherwise re-expose epoch stamps from a
// previous life of the journal, and a stale stamp equal to the current
// epoch would silently skip journaling. Called when a pooled state is
// re-cloned onto a differently sized problem.
//
// edgelint:coldpath — pooled-state re-sizing at clone time
func (j *journal[V]) resize(n int) {
	if n == len(j.mark) {
		return
	}
	if cap(j.mark) < n {
		j.mark = make([]uint32, n)
		j.vals = make([]V, n)
	} else {
		j.mark = j.mark[:n]
		j.vals = j.vals[:n]
		clear(j.mark)
	}
	j.ids = j.ids[:0]
	j.epoch = 1
}

// has reports whether id was journaled in the open transaction.
func (j *journal[V]) has(id int) bool { return j.mark[id] == j.epoch }

// put journals id's prior value. The caller checks has first.
//
// edgelint:noalloc
func (j *journal[V]) put(id int, v V) {
	j.mark[id] = j.epoch
	j.vals[id] = v
	// edgelint:coldpath — amortized growth: ids' capacity persists
	// across transactions, so steady-state probes append in place.
	j.ids = append(j.ids, int32(id))
}

// stale returns the value slot left over from an earlier transaction
// (the zero V if id was never journaled). Its buffers may be reused
// when capturing a fresh value to put.
func (j *journal[V]) stale(id int) V { return j.vals[id] }

// size reports how many IDs the open transaction journaled.
func (j *journal[V]) size() int { return len(j.ids) }

// reset closes the transaction in O(1): forget the touched IDs and
// invalidate all marks by bumping the epoch. On the (once per 4 billion
// transactions) epoch wraparound the marks are cleared the slow way so
// stale marks from epoch 1 can never be mistaken for fresh ones.
func (j *journal[V]) reset() {
	j.ids = j.ids[:0]
	j.epoch++
	if j.epoch == 0 {
		clear(j.mark)
		j.epoch = 1
	}
}
