package sched

import (
	"fmt"

	"repro/internal/linksched"
)

// The rollback oracle. A probe transaction is only correct if rollback
// restores the state bit-for-bit: a single store that is not journaled
// by the matching touch*/cowEdge call corrupts the committed schedule
// silently — the transactional sibling of a forgotten Clone copy. With
// Options.VerifyRollback set, begin captures a deep fingerprint of
// every journaled piece of state and rollback re-checks it, panicking
// with the offending field and ID instead of letting the corruption
// propagate into an unreproducible wrong schedule. The txnjournal
// static analyzer enforces the same invariant at build time; the
// oracle is the runtime ground truth it mirrors.

// fingerprint is a deep copy of everything rollback must restore.
type fingerprint struct {
	tasks      []TaskPlacement
	procFinish []float64
	dups       []TaskPlacement
	edges      []*EdgeSchedule
	tl         [][]linksched.Slot
	bw         [][]linksched.SegmentInfo
	ptl        [][]linksched.Slot
}

// captureFingerprint deep-copies the rollback-visible state.
//
// edgelint:coldpath — rollback oracle, runs only under VerifyRollback
func (s *state) captureFingerprint() *fingerprint {
	fp := &fingerprint{
		tasks:      append([]TaskPlacement(nil), s.tasks...),
		procFinish: append([]float64(nil), s.procFinish...),
		dups:       append([]TaskPlacement(nil), s.dups...),
		edges:      make([]*EdgeSchedule, len(s.edges)),
	}
	for i, es := range s.edges {
		if es != nil {
			fp.edges[i] = es.clone()
		}
	}
	if s.tl != nil {
		fp.tl = make([][]linksched.Slot, len(s.tl))
		for i, tl := range s.tl {
			fp.tl[i] = append([]linksched.Slot(nil), tl.Slots()...)
		}
	}
	if s.bw != nil {
		fp.bw = make([][]linksched.SegmentInfo, len(s.bw))
		for i, bw := range s.bw {
			fp.bw[i] = bw.Segments()
		}
	}
	if s.ptl != nil {
		fp.ptl = make([][]linksched.Slot, len(s.ptl))
		for i, tl := range s.ptl {
			if tl != nil {
				fp.ptl[i] = append([]linksched.Slot(nil), tl.Slots()...)
			}
		}
	}
	return fp
}

// diff compares the fingerprint against the state's current contents
// and returns a description of the first difference, or "" when the
// state matches bit-for-bit. All comparisons are deliberately exact:
// rollback restores saved values, so even a 1-ulp drift is a bug.
//
// edgelint:coldpath — rollback oracle, runs only under VerifyRollback
func (fp *fingerprint) diff(s *state) string {
	for i, want := range fp.tasks {
		if s.tasks[i] != want {
			return fmt.Sprintf("task %d placement: %+v -> %+v", i, want, s.tasks[i])
		}
	}
	for i, want := range fp.procFinish {
		// edgelint:ignore floateq — oracle checks bit-identical restore
		if s.procFinish[i] != want {
			return fmt.Sprintf("processor %d clock: %v -> %v", i, want, s.procFinish[i])
		}
	}
	if len(s.dups) != len(fp.dups) {
		return fmt.Sprintf("duplicates count: %d -> %d", len(fp.dups), len(s.dups))
	}
	for i, want := range fp.dups {
		if s.dups[i] != want {
			return fmt.Sprintf("duplicate %d: %+v -> %+v", i, want, s.dups[i])
		}
	}
	for i, want := range fp.edges {
		if d := diffEdge(i, want, s.edges[i]); d != "" {
			return d
		}
	}
	for i, want := range fp.tl {
		if d := diffSlots("link", i, want, s.tl[i].Slots()); d != "" {
			return d
		}
	}
	for i, want := range fp.bw {
		if d := diffSegments(i, want, s.bw[i].Segments()); d != "" {
			return d
		}
	}
	for i, want := range fp.ptl {
		if s.ptl[i] == nil {
			continue
		}
		if d := diffSlots("processor timeline", i, want, s.ptl[i].Slots()); d != "" {
			return d
		}
	}
	return ""
}

// diffEdge compares one edge schedule deeply (route, per-leg
// placements, bandwidth chunks).
func diffEdge(id int, want, got *EdgeSchedule) string {
	switch {
	case want == nil && got == nil:
		return ""
	case want == nil:
		return fmt.Sprintf("edge %d: schedule appeared (%+v)", id, got)
	case got == nil:
		return fmt.Sprintf("edge %d: schedule vanished (was %+v)", id, want)
	}
	if got.Edge != want.Edge || got.SrcProc != want.SrcProc || got.DstProc != want.DstProc {
		return fmt.Sprintf("edge %d endpoints: %d %d->%d became %d %d->%d",
			id, want.Edge, want.SrcProc, want.DstProc, got.Edge, got.SrcProc, got.DstProc)
	}
	// edgelint:ignore floateq — oracle checks bit-identical restore
	if got.Arrival != want.Arrival || got.Base != want.Base {
		return fmt.Sprintf("edge %d arrival/base: %v/%v -> %v/%v",
			id, want.Arrival, want.Base, got.Arrival, got.Base)
	}
	if len(got.Route) != len(want.Route) {
		return fmt.Sprintf("edge %d route length: %d -> %d", id, len(want.Route), len(got.Route))
	}
	for i := range want.Route {
		if got.Route[i] != want.Route[i] {
			return fmt.Sprintf("edge %d route hop %d: link %d -> link %d", id, i, want.Route[i], got.Route[i])
		}
	}
	if len(got.Placements) != len(want.Placements) {
		return fmt.Sprintf("edge %d placements: %d legs -> %d legs", id, len(want.Placements), len(got.Placements))
	}
	for leg := range want.Placements {
		wp, gp := want.Placements[leg], got.Placements[leg]
		// edgelint:ignore floateq — oracle checks bit-identical restore
		if gp.Link != wp.Link || gp.Start != wp.Start || gp.Finish != wp.Finish {
			return fmt.Sprintf("edge %d leg %d on link %d: [%v,%v] -> link %d [%v,%v]",
				id, leg, wp.Link, wp.Start, wp.Finish, gp.Link, gp.Start, gp.Finish)
		}
		if len(gp.Chunks) != len(wp.Chunks) {
			return fmt.Sprintf("edge %d leg %d chunk count: %d -> %d", id, leg, len(wp.Chunks), len(gp.Chunks))
		}
		for c := range wp.Chunks {
			if gp.Chunks[c] != wp.Chunks[c] {
				return fmt.Sprintf("edge %d leg %d chunk %d: %+v -> %+v", id, leg, c, wp.Chunks[c], gp.Chunks[c])
			}
		}
	}
	return ""
}

// diffSlots compares one exclusive-slot timeline.
func diffSlots(kind string, id int, want, got []linksched.Slot) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%s %d slot count: %d -> %d", kind, id, len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("%s %d slot %d: %+v -> %+v", kind, id, i, want[i], got[i])
		}
	}
	return ""
}

// diffSegments compares one bandwidth timeline.
func diffSegments(id int, want, got []linksched.SegmentInfo) string {
	if len(got) != len(want) {
		return fmt.Sprintf("bandwidth link %d segment count: %d -> %d", id, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		// edgelint:ignore floateq — oracle checks bit-identical restore
		if g.Start != w.Start || g.End != w.End || g.Avail != w.Avail {
			return fmt.Sprintf("bandwidth link %d segment %d: [%v,%v] avail %v -> [%v,%v] avail %v",
				id, i, w.Start, w.End, w.Avail, g.Start, g.End, g.Avail)
		}
		if len(g.Uses) != len(w.Uses) {
			return fmt.Sprintf("bandwidth link %d segment %d use count: %d -> %d", id, i, len(w.Uses), len(g.Uses))
		}
		for u := range w.Uses {
			if g.Uses[u] != w.Uses[u] {
				return fmt.Sprintf("bandwidth link %d segment %d use %d: %+v -> %+v", id, i, u, w.Uses[u], g.Uses[u])
			}
		}
	}
	return ""
}
