package sched

import (
	"fmt"

	"repro/internal/linksched"
	"repro/internal/network"
)

// The rollback oracle. A probe transaction is only correct if rollback
// restores the state bit-for-bit: a single store that is not journaled
// by the matching touch*/cowEdgeLegs call corrupts the committed
// schedule silently — the transactional sibling of a forgotten Clone
// copy. With Options.VerifyRollback set, begin captures a deep
// fingerprint of every journaled piece of state and rollback re-checks
// it, panicking with the offending field and ID instead of letting the
// corruption propagate into an unreproducible wrong schedule. The
// txnjournal static analyzer enforces the same invariant at build
// time; the oracle is the runtime ground truth it mirrors.

// fingerprint is a deep copy of everything rollback must restore. The
// edge store is captured column by column: comparing the raw meta and
// arena columns (including the arena lengths, which the rollback
// truncation must rewind exactly) catches both value corruption and
// span aliasing that a per-edge logical comparison could miss.
type fingerprint struct {
	tasks      []TaskPlacement
	procFinish []float64
	dups       []TaskPlacement
	meta       []edgeMeta
	routes     []network.LinkID
	legs       []legMeta
	chunks     []linksched.Chunk
	tl         [][]linksched.Slot
	bw         [][]linksched.SegmentInfo
	ptl        [][]linksched.Slot
}

// captureFingerprint deep-copies the rollback-visible state.
//
// edgelint:coldpath — rollback oracle, runs only under VerifyRollback
func (s *state) captureFingerprint() *fingerprint {
	fp := &fingerprint{
		tasks:      append([]TaskPlacement(nil), s.tasks...),
		procFinish: append([]float64(nil), s.procFinish...),
		dups:       append([]TaskPlacement(nil), s.dups...),
		meta:       append([]edgeMeta(nil), s.edges.meta...),
		routes:     append([]network.LinkID(nil), s.edges.routes...),
		legs:       append([]legMeta(nil), s.edges.legs...),
		chunks:     append([]linksched.Chunk(nil), s.edges.chunks...),
	}
	if s.tl != nil {
		fp.tl = make([][]linksched.Slot, len(s.tl))
		for i := range s.tl {
			fp.tl[i] = append([]linksched.Slot(nil), s.tl[i].Slots()...)
		}
	}
	if s.bw != nil {
		fp.bw = make([][]linksched.SegmentInfo, len(s.bw))
		for i := range s.bw {
			fp.bw[i] = s.bw[i].Segments()
		}
	}
	if s.ptl != nil {
		fp.ptl = make([][]linksched.Slot, len(s.ptl))
		for i := range s.ptl {
			fp.ptl[i] = append([]linksched.Slot(nil), s.ptl[i].Slots()...)
		}
	}
	return fp
}

// diff compares the fingerprint against the state's current contents
// and returns a description of the first difference, or "" when the
// state matches bit-for-bit. All comparisons are deliberately exact:
// rollback restores saved values, so even a 1-ulp drift is a bug.
//
// edgelint:coldpath — rollback oracle, runs only under VerifyRollback
func (fp *fingerprint) diff(s *state) string {
	for i, want := range fp.tasks {
		if s.tasks[i] != want {
			return fmt.Sprintf("task %d placement: %+v -> %+v", i, want, s.tasks[i])
		}
	}
	for i, want := range fp.procFinish {
		// edgelint:ignore floateq — oracle checks bit-identical restore
		if s.procFinish[i] != want {
			return fmt.Sprintf("processor %d clock: %v -> %v", i, want, s.procFinish[i])
		}
	}
	if len(s.dups) != len(fp.dups) {
		return fmt.Sprintf("duplicates count: %d -> %d", len(fp.dups), len(s.dups))
	}
	for i, want := range fp.dups {
		if s.dups[i] != want {
			return fmt.Sprintf("duplicate %d: %+v -> %+v", i, want, s.dups[i])
		}
	}
	if d := fp.diffEdgeStore(&s.edges); d != "" {
		return d
	}
	for i, want := range fp.tl {
		if d := diffSlots("link", i, want, s.tl[i].Slots()); d != "" {
			return d
		}
	}
	for i, want := range fp.bw {
		if d := diffSegments(i, want, s.bw[i].Segments()); d != "" {
			return d
		}
	}
	for i, want := range fp.ptl {
		if d := diffSlots("processor timeline", i, want, s.ptl[i].Slots()); d != "" {
			return d
		}
	}
	return ""
}

// diffEdgeStore compares the columnar edge store against the captured
// columns. Arena lengths are part of the contract: a rollback that
// fails to truncate a transaction's appends leaves a longer arena even
// when every committed span still reads back correctly.
func (fp *fingerprint) diffEdgeStore(st *edgeStore) string {
	for i, want := range fp.meta {
		if st.meta[i] != want {
			return fmt.Sprintf("edge %d meta: %+v -> %+v", i, want, st.meta[i])
		}
	}
	if len(st.routes) != len(fp.routes) {
		return fmt.Sprintf("edge route arena: %d entries -> %d", len(fp.routes), len(st.routes))
	}
	for i, want := range fp.routes {
		if st.routes[i] != want {
			return fmt.Sprintf("edge route arena entry %d: link %d -> link %d", i, want, st.routes[i])
		}
	}
	if len(st.legs) != len(fp.legs) {
		return fmt.Sprintf("edge leg arena: %d entries -> %d", len(fp.legs), len(st.legs))
	}
	for i, want := range fp.legs {
		if st.legs[i] != want {
			return fmt.Sprintf("edge leg arena entry %d: %+v -> %+v", i, want, st.legs[i])
		}
	}
	if len(st.chunks) != len(fp.chunks) {
		return fmt.Sprintf("edge chunk arena: %d entries -> %d", len(fp.chunks), len(st.chunks))
	}
	for i, want := range fp.chunks {
		if st.chunks[i] != want {
			return fmt.Sprintf("edge chunk arena entry %d: %+v -> %+v", i, want, st.chunks[i])
		}
	}
	return ""
}

// diffSlots compares one exclusive-slot timeline.
func diffSlots(kind string, id int, want, got []linksched.Slot) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%s %d slot count: %d -> %d", kind, id, len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("%s %d slot %d: %+v -> %+v", kind, id, i, want[i], got[i])
		}
	}
	return ""
}

// diffSegments compares one bandwidth timeline.
func diffSegments(id int, want, got []linksched.SegmentInfo) string {
	if len(got) != len(want) {
		return fmt.Sprintf("bandwidth link %d segment count: %d -> %d", id, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		// edgelint:ignore floateq — oracle checks bit-identical restore
		if g.Start != w.Start || g.End != w.End || g.Avail != w.Avail {
			return fmt.Sprintf("bandwidth link %d segment %d: [%v,%v] avail %v -> [%v,%v] avail %v",
				id, i, w.Start, w.End, w.Avail, g.Start, g.End, g.Avail)
		}
		if len(g.Uses) != len(w.Uses) {
			return fmt.Sprintf("bandwidth link %d segment %d use count: %d -> %d", id, i, len(w.Uses), len(g.Uses))
		}
		for u := range w.Uses {
			if g.Uses[u] != w.Uses[u] {
				return fmt.Sprintf("bandwidth link %d segment %d use %d: %+v -> %+v", id, i, u, w.Uses[u], g.Uses[u])
			}
		}
	}
	return ""
}
