package sched

import "fmt"

// DiffSchedules reports the first difference between two schedules, or
// "" when they are bit-identical. Comparison is exact — == on every
// float — because the schedules being compared are supposed to be the
// SAME deterministic computation (an engine run vs its cold re-run, a
// parallel-probe run vs sequential, a replayed run vs its original);
// any drift, however small, is a determinism bug, so no tolerance is
// applied. The Graph and Net pointers are not compared: callers decide
// whether the inputs match; this compares the outputs.
func DiffSchedules(a, b *Schedule) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return "one schedule is nil"
	}
	if a.Algorithm != b.Algorithm {
		return fmt.Sprintf("algorithm %q vs %q", a.Algorithm, b.Algorithm)
	}
	if a.Ideal != b.Ideal {
		return fmt.Sprintf("ideal %v vs %v", a.Ideal, b.Ideal)
	}
	if a.Switching != b.Switching {
		return fmt.Sprintf("switching %v vs %v", a.Switching, b.Switching)
	}
	// edgelint:ignore floateq — bit-identity oracle, exact by design
	if a.HopDelay != b.HopDelay {
		return fmt.Sprintf("hop delay %v vs %v", a.HopDelay, b.HopDelay)
	}
	// edgelint:ignore floateq — bit-identity oracle, exact by design
	if a.Makespan != b.Makespan {
		return fmt.Sprintf("makespan %v vs %v", a.Makespan, b.Makespan)
	}
	if len(a.Tasks) != len(b.Tasks) {
		return fmt.Sprintf("%d tasks vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			return fmt.Sprintf("task %d placement %+v vs %+v", i, a.Tasks[i], b.Tasks[i])
		}
	}
	if len(a.Duplicates) != len(b.Duplicates) {
		return fmt.Sprintf("%d duplicates vs %d", len(a.Duplicates), len(b.Duplicates))
	}
	for i := range a.Duplicates {
		if a.Duplicates[i] != b.Duplicates[i] {
			return fmt.Sprintf("duplicate %d %+v vs %+v", i, a.Duplicates[i], b.Duplicates[i])
		}
	}
	if len(a.Edges) != len(b.Edges) {
		return fmt.Sprintf("%d edges vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if d := diffEdge(i, a.Edges[i], b.Edges[i]); d != "" {
			return d
		}
	}
	return ""
}

// diffEdge compares one edge schedule pair exactly.
func diffEdge(i int, a, b *EdgeSchedule) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return fmt.Sprintf("edge %d scheduled in one run only", i)
	}
	if a.Edge != b.Edge || a.SrcProc != b.SrcProc || a.DstProc != b.DstProc {
		return fmt.Sprintf("edge %d endpoints (%d %d→%d) vs (%d %d→%d)",
			i, a.Edge, a.SrcProc, a.DstProc, b.Edge, b.SrcProc, b.DstProc)
	}
	// edgelint:ignore floateq — bit-identity oracle, exact by design
	if a.Arrival != b.Arrival || a.Base != b.Base {
		return fmt.Sprintf("edge %d arrival/base (%v, %v) vs (%v, %v)",
			i, a.Arrival, a.Base, b.Arrival, b.Base)
	}
	if len(a.Route) != len(b.Route) {
		return fmt.Sprintf("edge %d route length %d vs %d", i, len(a.Route), len(b.Route))
	}
	for j := range a.Route {
		if a.Route[j] != b.Route[j] {
			return fmt.Sprintf("edge %d route hop %d: link %d vs %d",
				i, j, a.Route[j], b.Route[j])
		}
	}
	if len(a.Placements) != len(b.Placements) {
		return fmt.Sprintf("edge %d has %d placements vs %d",
			i, len(a.Placements), len(b.Placements))
	}
	for j := range a.Placements {
		pa, pb := &a.Placements[j], &b.Placements[j]
		// edgelint:ignore floateq — bit-identity oracle, exact by design
		if pa.Link != pb.Link || pa.Start != pb.Start || pa.Finish != pb.Finish {
			return fmt.Sprintf("edge %d leg %d (%d [%v,%v]) vs (%d [%v,%v])",
				i, j, pa.Link, pa.Start, pa.Finish, pb.Link, pb.Start, pb.Finish)
		}
		if len(pa.Chunks) != len(pb.Chunks) {
			return fmt.Sprintf("edge %d leg %d has %d chunks vs %d",
				i, j, len(pa.Chunks), len(pb.Chunks))
		}
		for k := range pa.Chunks {
			if pa.Chunks[k] != pb.Chunks[k] {
				return fmt.Sprintf("edge %d leg %d chunk %d %+v vs %+v",
					i, j, k, pa.Chunks[k], pb.Chunks[k])
			}
		}
	}
	return ""
}
